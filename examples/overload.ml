(* Traffic surges and the overload control plane.

   Three identical two-firewall chains sit behind one classifier,
   steered by destination port, at admission classes bronze (0),
   silver (1) and gold (2). A seeded surge plan triples the offered
   load mid-run; the example runs it twice:

   - unarmed: every class suffers alike — entry rings overflow and the
     losses are indiscriminate NIC drops;
   - armed (~overload): ring watermarks latch, the admission controller
     sheds bronze first and silver next (each keeping a 1-in-16
     trickle), and gold rides through the surge untouched.

   Run with: dune exec examples/overload.exe *)

open Nfp_core

let class_labels = [| "bronze"; "silver"; "gold" |]

let graphs () =
  List.map
    (fun cls ->
      let label = class_labels.(cls) in
      let names = [ label ^ "-fw0"; label ^ "-fw1" ] in
      let graph = Graph.seq (List.map Graph.nf names) in
      let profile_of _ = Nfp_nf.Registry.profile_of "Firewall" in
      let plan =
        match Tables.plan ~profile_of ~priority:cls graph with
        | Ok p -> p
        | Error e -> failwith e
      in
      let table = Hashtbl.create 4 in
      List.iter
        (fun n ->
          Hashtbl.replace table n
            (fst (Nfp_nf.Firewall.create ~name:n ~extra_cycles:800 ())))
        names;
      ( Nfp_packet.Flow_match.make ~dport_range:(1000 + cls, 1000 + cls) (),
        plan,
        Hashtbl.find table ))
    [ 0; 1; 2 ]

(* Packet i belongs to chain (i mod 3). *)
let gen =
  let flows =
    Array.init 3 (fun cls ->
        Nfp_packet.Flow.make
          ~sip:(Option.get (Nfp_packet.Flow.ip_of_string "10.0.0.1"))
          ~dip:(Option.get (Nfp_packet.Flow.ip_of_string "10.0.0.2"))
          ~sport:(5000 + cls) ~dport:(1000 + cls) ~proto:6)
  in
  fun i ->
    Nfp_packet.Packet.create ~flow:flows.(i mod 3)
      ~payload:(String.make 18 'x') ()

(* A 3x spike across the middle of the run, on top of a base load the
   rig handles comfortably. Surge plans are seeded and deterministic —
   as replayable as the fault plans in examples/fault_tolerance.exe. *)
let surge =
  Nfp_sim.Fault.surge ~base_mpps:6.0
    [ Nfp_sim.Fault.Spike { at_ns = 300_000.0; duration_ns = 600_000.0; factor = 3.0 } ]

let run ?overload label =
  let delivered = Array.make 3 0 in
  let make engine ~output =
    Nfp_infra.System.make_multi ?overload ~graphs:(graphs ()) engine
      ~output:(fun ~pid pkt ->
        let c = Int64.to_int (Int64.rem pid 3L) in
        delivered.(c) <- delivered.(c) + 1;
        output ~pid pkt)
  in
  let r =
    Nfp_sim.Harness.run ~make ~gen
      ~arrivals:(Nfp_sim.Harness.Surge surge) ~packets:12000 ()
  in
  let d = r.health.Nfp_sim.Harness.drops in
  let shed c =
    match List.assoc_opt c d.Nfp_sim.Harness.shed_by_class with
    | Some n -> n
    | None -> 0
  in
  Format.printf "@.%s@." label;
  Format.printf "  offered %d  completed %d  NIC drops %d  shed %d@." r.offered
    r.completed r.ring_drops r.shed;
  Array.iteri
    (fun c n ->
      Format.printf "  %-6s delivered %5d   shed %5d@." class_labels.(c) n
        (shed c))
    delivered;
  Format.printf "  pressure episodes %d@." r.health.Nfp_sim.Harness.pressure_episodes

let () =
  Format.printf "surge plan: base 6.0 Mpps, 3x spike from 0.3 ms to 0.9 ms@.";
  run "unarmed (no overload config): losses are indiscriminate";
  run
    ~overload:
      {
        Nfp_infra.System.default_overload_config with
        high_watermark = 32;
        low_watermark = 8;
      }
    "armed (~overload): bronze sheds first, gold rides through"
