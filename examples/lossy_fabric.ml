(* Lossy fabric + reliable channels: a chain that survives 2% link
   loss and a hard 5 ms partition with zero delivered-packet loss.

   Every inter-core edge of the deployment is promoted to a modeled
   link: the seeded plan below drops 2% of all transits everywhere,
   duplicates a further 1%, and cuts the firewall's ingress link
   outright for 5 ms in the middle of the run. The example runs the
   same traffic three ways:

   - lossless: no link plan — the reference delivery count;
   - raw fabric: the faults applied with no protocol on top — every
     fabric drop is a delivered-packet loss, visible in the ledger's
     in_flight residual;
   - reliable (default links config): per-link seq/ack channels
     retransmit the losses, suppress the duplicates, release arrivals
     in order, and when health probes declare the partitioned link
     Down they detour traffic around it until the window closes —
     completed = offered, nothing lost.

   Run with: dune exec examples/lossy_fabric.exe *)

module F = Nfp_sim.Fault

let kinds = [ ("gw", "Gateway"); ("fw", "Firewall"); ("mon", "Monitor") ]

let plan () =
  let profile_of n = Nfp_nf.Registry.profile_of (List.assoc n kinds) in
  match
    Nfp_core.Tables.plan ~profile_of
      (Nfp_core.Graph.seq (List.map (fun (n, _) -> Nfp_core.Graph.nf n) kinds))
  with
  | Ok p -> p
  | Error e -> failwith e

let gen =
  let g =
    Nfp_traffic.Pktgen.create
      { Nfp_traffic.Pktgen.default with
        sizes = Nfp_traffic.Size_dist.fixed 128;
        flows = 128 }
  in
  Nfp_traffic.Pktgen.packet g

(* 2% i.i.d. loss + 1% duplication on every edge, and a hard 5 ms
   outage of the firewall's ingress link mid-run. Link plans are
   seeded and deterministic — rerunning replays the same drops. *)
let specs =
  [
    F.loss ~probability:0.02 "*";
    F.duplicate ~probability:0.01 "*";
    F.partition ~at_ns:2_000_000.0 ~duration_ns:5_000_000.0 "mid1:fw";
  ]

let run ?links label =
  let nfs =
    let table = Hashtbl.create 4 in
    List.iter
      (fun (name, kind) ->
        Hashtbl.replace table name
          (Option.get (Nfp_nf.Registry.instantiate kind ~name)))
      kinds;
    Hashtbl.find table
  in
  let config =
    { Nfp_infra.System.default_config with ring_capacity = 8192 }
  in
  let make engine ~output =
    Nfp_infra.System.make ?links ~config ~plan:(plan ()) ~nfs engine ~output
  in
  let r =
    Nfp_sim.Harness.run ~make ~gen ~arrivals:(Nfp_sim.Harness.Uniform 0.5)
      ~packets:10_000 ()
  in
  let l = r.health.Nfp_sim.Harness.links in
  Format.printf "@.%s@." label;
  Format.printf "  offered %d  completed %d  lost %d@." r.offered r.completed
    (r.offered - r.completed - r.ring_drops - r.nf_drops);
  Format.printf
    "  link taxonomy: drops %d  retransmits %d  dups suppressed %d  reordered %d@."
    l.Nfp_sim.Harness.link_drops l.Nfp_sim.Harness.retransmits
    l.Nfp_sim.Harness.duplicates_suppressed l.Nfp_sim.Harness.reordered;
  Format.printf "                 partitions declared %d  packets rerouted %d@."
    l.Nfp_sim.Harness.partitions l.Nfp_sim.Harness.reroutes;
  r

let () =
  Format.printf
    "link plan: 2%% loss + 1%% duplication on *, 5 ms partition of mid1:fw@.";
  let lossless = run "lossless fabric (no links config): the reference" in
  let raw =
    run
      ~links:
        {
          Nfp_infra.System.default_links_config with
          link_plan = F.link_plan specs;
          reliable = false;
        }
      "raw fabric: every drop is a delivered-packet loss"
  in
  let reliable =
    run
      ~links:
        {
          Nfp_infra.System.default_links_config with
          link_plan = F.link_plan specs;
        }
      "reliable channels: seq/ack + retransmit + reorder + reroute"
  in
  Format.printf "@.raw fabric lost %d of %d packets; reliable lost %d@."
    (raw.offered - raw.completed)
    raw.offered
    (reliable.offered - reliable.completed);
  assert (reliable.completed = reliable.offered);
  assert (lossless.completed = lossless.offered);
  Format.printf "zero delivered-packet loss over the same lossy fabric.@."
