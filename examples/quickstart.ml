(* Quickstart: write an NFP policy, compile it into a service graph,
   look at the dataplane tables, check correctness against sequential
   execution, and measure the latency win on the simulated dataplane.

   Run with: dune exec examples/quickstart.exe *)

open Nfp_core

let policy_text =
  {|
# Bind instance names to NF types from the registry (paper Table 2).
NF(fw,  Firewall)
NF(mon, Monitor)
NF(lb,  LoadBalancer)

# Describe intent with Order rules; NFP finds the parallelism itself.
Order(fw, before, mon)
Order(mon, before, lb)
|}

(* One NF instance per name; both executions below get fresh state. *)
let instances () =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (name, kind) ->
      match Nfp_nf.Registry.instantiate kind ~name with
      | Some nf -> Hashtbl.replace table name nf
      | None -> assert false)
    [ ("fw", "Firewall"); ("mon", "Monitor"); ("lb", "LoadBalancer") ];
  fun name -> Hashtbl.find table name

let () =
  (* 1. Compile the policy. *)
  let out =
    match Compiler.compile_text policy_text with
    | Ok o -> o
    | Error es -> failwith (String.concat "; " es)
  in
  Format.printf "service graph    : %a@." Graph.pp out.graph;
  Format.printf "equivalent length: %d (sequential would be %d)@."
    (Graph.equivalent_length out.graph)
    (Graph.nf_count out.graph);

  (* 2. Generate the dataplane tables (classifier / FT / merger). *)
  let plan =
    match Tables.of_output out with Ok p -> p | Error e -> failwith e
  in
  Format.printf "@.%a@.@." Tables.pp plan;

  (* 3. Result correctness: replay the same packets through the
        sequential chain and the parallel graph (paper §6.4). *)
  let gen =
    Nfp_traffic.Pktgen.create
      { Nfp_traffic.Pktgen.default with payload_style = Nfp_traffic.Pktgen.Tagged }
  in
  let outcome =
    Nfp_traffic.Replay.run
      ~chain:(fun () ->
        let lookup = instances () in
        [ lookup "fw"; lookup "mon"; lookup "lb" ])
      ~deployment:(fun () -> (plan, instances ()))
      ~gen:(Nfp_traffic.Pktgen.packet gen) ~packets:1000
  in
  Format.printf "replay: %d/%d packets identical to sequential execution@."
    outcome.agreements outcome.total;

  (* 3b. Replication analysis: what each NF's state-access profile
         allows, and how many instances an illustrative replicas=2
         deployment would give it ([replicas] on
         {!Nfp_infra.System.config}, or [?replicas] on [System.make];
         the default 1 keeps today's single-instance layout). *)
  let lookup = instances () in
  Format.printf "@.replication analysis (replicas=2 would deploy):@.";
  List.iter
    (fun name ->
      let nf = lookup name in
      let shardable = Replication.shardable ~plan ~nf_of:lookup name in
      Format.printf "  %-4s %-13s %-19s -> %d instance(s)@." name nf.Nfp_nf.Nf.kind
        (Replication.to_string (Replication.derive nf))
        (if shardable then 2 else 1))
    [ "fw"; "mon"; "lb" ];

  (* 4. Measure: NFP graph vs the same NFs chained sequentially. The
        NFP deployment below runs the default execution configuration —
        compiled fast path, cached microflow classifier, and the batch
        "breath" engine at the cost model's burst size ([batch_size] on
        {!Nfp_infra.System.config} overrides it; 1 is per-packet). *)
  Format.printf "execution config : path=compiled  classify=cached  batch=%d@."
    Nfp_infra.System.default_config.batch_size;
  (* Overload control is opt-in ([?overload] on [System.make]); the
     defaults below are what [default_overload_config] would arm —
     ring watermarks, priority-aware admission with a per-class
     trickle, and pressure-degrade modes (see examples/overload.exe). *)
  let oc = Nfp_infra.System.default_overload_config in
  Format.printf
    "overload config  : off by default; ~overload arms watermarks %d/%d  \
     trickle 1-in-%d  degrade=%b  poll %.1f us@."
    oc.Nfp_infra.System.high_watermark oc.Nfp_infra.System.low_watermark
    oc.Nfp_infra.System.shed_trickle oc.Nfp_infra.System.degrade_enabled
    (oc.Nfp_infra.System.pressure_poll_ns /. 1000.0);
  let pkt i = Nfp_traffic.Pktgen.packet gen i in
  let measure label make =
    let mx =
      Nfp_sim.Harness.max_lossless_mpps ~make ~gen:pkt ~packets:15000 ~hi:14.88 ()
    in
    let r =
      Nfp_sim.Harness.run ~make ~gen:pkt
        ~arrivals:(Nfp_sim.Harness.Burst (0.9 *. mx, 32))
        ~packets:30000 ()
    in
    Format.printf "%-12s max %5.2f Mpps   mean latency %5.1f us@." label mx
      (Nfp_algo.Stats.mean r.latency /. 1000.);
    Nfp_algo.Stats.mean r.latency
  in
  let nfp_make engine ~output =
    Nfp_infra.System.make ~plan ~nfs:(instances ()) engine ~output
  in
  let onvm_make engine ~output =
    let lookup = instances () in
    Nfp_baseline.Opennetvm.make ~nfs:[ lookup "fw"; lookup "mon"; lookup "lb" ] engine
      ~output
  in
  let l_seq = measure "sequential" onvm_make in
  let l_nfp = measure "NFP" nfp_make in
  Format.printf "latency reduction: %.1f%%@." (100. *. (l_seq -. l_nfp) /. l_seq)
