(* Multi-tenant deployment: one NFP server hosting several service
   graphs behind a single classifier — the paper's Classification Table
   (Fig. 4). Each tenant's flows match a CT entry and are steered into
   that tenant's graph; merger instances are shared across graphs
   (paper §5.3).

   Tenant A (web traffic to 10.8.0.0/16:443): monitor ∥ firewall.
   Tenant B (UDP media):                      gateway -> shaper.
   Everything else:                           a default deny firewall.

   Run with: dune exec examples/multi_tenant.exe *)

open Nfp_core
open Nfp_packet

let compile text =
  match Compiler.compile_text text with
  | Ok o -> o
  | Error es -> failwith (String.concat "; " es)

let plan_of out =
  match Tables.of_output out with Ok p -> p | Error e -> failwith e

let () =
  (* Tenant A: the paper's flagship monitor ∥ firewall parallelism. *)
  let tenant_a = compile "NF(mon, Monitor)\nNF(fw, Firewall)\nOrder(mon, before, fw)" in
  let a_mon, a_stats = Nfp_nf.Monitor.create ~name:"mon" () in
  let a_fw, _ = Nfp_nf.Firewall.create ~name:"fw" () in
  let a_lookup = function "mon" -> a_mon | _ -> a_fw in

  (* Tenant B: sequential media pipeline. *)
  let tenant_b = compile "NF(gw, Gateway)\nNF(shp, TrafficShaper)\nOrder(gw, before, shp)" in
  let b_gw, b_stats = Nfp_nf.Gateway.create ~name:"gw" () in
  let b_shp, _, b_clock = Nfp_nf.Traffic_shaper.create ~name:"shp" ~rate_bps:5e9 () in
  ignore b_clock;
  let b_lookup = function "gw" -> b_gw | _ -> b_shp in

  (* Default: deny. *)
  let deny = compile "NF(deny, Firewall)\nPosition(deny, first)" in
  let deny_fw, deny_stats =
    Nfp_nf.Firewall.create ~name:"deny" ~acl:[ Nfp_nf.Firewall.any_rule ~permit:false ] ()
  in

  Format.printf "tenant A graph: %a@." Graph.pp tenant_a.graph;
  (* NFP parallelizes tenant B too: the gateway only reads addresses and
     the policer only reads the length before its drop verdict. *)
  Format.printf "tenant B graph: %a@." Graph.pp tenant_b.graph;

  let graphs =
    [
      ( Flow_match.make
          ~dip_prefix:(Option.get (Flow.ip_of_string "10.8.0.0"), 16)
          ~dport_range:(443, 443) ~proto:6 (),
        plan_of tenant_a,
        a_lookup );
      (Flow_match.make ~proto:17 (), plan_of tenant_b, b_lookup);
      (Flow_match.any, plan_of deny, fun _ -> deny_fw);
    ]
  in
  let engine = Nfp_sim.Engine.create () in
  let delivered = ref 0 in
  let system =
    Nfp_infra.System.make_multi ~graphs engine ~output:(fun ~pid:_ _ -> incr delivered)
  in

  (* 300 web flows, 200 media packets, 100 strays. *)
  let ip s = Option.get (Flow.ip_of_string s) in
  (* Pace arrivals at 2 Mpps so the classifier ring never overflows. *)
  let inject i flow =
    Nfp_sim.Engine.schedule engine
      ~delay:(float_of_int i *. 500.0)
      (fun () ->
        system.Nfp_sim.Harness.inject ~pid:(Int64.of_int i)
          (Packet.create ~flow ~payload:"DATA-0123456789" ()))
  in
  for i = 0 to 299 do
    inject i
      (Flow.make ~sip:(ip "10.0.1.2") ~dip:(ip "10.8.3.4") ~sport:(20000 + i) ~dport:443
         ~proto:6)
  done;
  for i = 300 to 499 do
    inject i
      (Flow.make ~sip:(ip "10.0.2.9") ~dip:(ip "10.9.1.1") ~sport:5004 ~dport:5004 ~proto:17)
  done;
  for i = 500 to 599 do
    inject i
      (Flow.make ~sip:(ip "10.0.3.3") ~dip:(ip "10.9.9.9") ~sport:1234 ~dport:8080 ~proto:6)
  done;
  Nfp_sim.Engine.run engine;

  Format.printf "delivered      : %d packets@." !delivered;
  Format.printf "tenant A saw   : %d packets over %d flows@." (a_stats.total_packets ())
    (a_stats.flows ());
  Format.printf "tenant B saw   : %d media sessions@." (b_stats.sessions ());
  Format.printf "default denied : %d packets@." (deny_stats.dropped ());
  (* The classifier resolves each 5-tuple through its microflow cache:
     every flow pays one tuple-space miss on its first packet, then
     hits. 300 web packets on 300 distinct flows miss 300 times; the
     media and stray packets reuse one flow each. *)
  let c = system.Nfp_sim.Harness.classifier () in
  Format.printf "classifier     : %d cache hits, %d misses, %d evictions@."
    c.Nfp_sim.Harness.hits c.misses c.evictions;
  Format.printf "unmatched      : %d packets@."
    (system.Nfp_sim.Harness.unmatched ())
