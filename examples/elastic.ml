(* Elastic scale-out: a surge absorbed by live NF replication.

   Two cheap forwarders feed an expensive IDS. A seeded surge plan
   multiplies the offered load mid-run far past what a single IDS core
   can serve; the example runs it twice:

   - static: the graph→core mapping is frozen at deployment — the IDS
     ring overflows and the excess is dropped at the NIC;
   - elastic (~elastic): the scale controller watches per-replica ring
     occupancy, activates standby IDS replicas as the surge hits,
     live-migrates per-flow state between RSS shards (freeze →
     snapshot → transfer → atomic steering flip), and retires the
     extra replicas on the quiet tail.

   The migration protocol is crash-safe and trace-preserving: the same
   controller is driven through seeded mid-migration crashes in
   test/test_elastic.ml and must stay bit-identical to a static run.

   Run with: dune exec examples/elastic.exe *)

open Nfp_core

let kinds = [ ("fwd0", "Forwarder"); ("fwd1", "Forwarder"); ("ids", "IDS") ]

let plan () =
  let profile_of n = Nfp_nf.Registry.profile_of (List.assoc n kinds) in
  match Tables.plan ~profile_of (Graph.seq (List.map (fun (n, _) -> Graph.nf n) kinds)) with
  | Ok p -> p
  | Error e -> failwith e

let gen =
  let g =
    Nfp_traffic.Pktgen.create
      { Nfp_traffic.Pktgen.default with
        sizes = Nfp_traffic.Size_dist.fixed 64;
        flows = 256 }
  in
  Nfp_traffic.Pktgen.packet g

(* A 4x spike across the middle of the run, on top of a base load one
   IDS replica handles comfortably. Surge plans are seeded and
   deterministic — as replayable as the fault plans in
   examples/fault_tolerance.exe. *)
let surge =
  Nfp_sim.Fault.surge ~base_mpps:0.8
    [ Nfp_sim.Fault.Spike { at_ns = 200_000.0; duration_ns = 800_000.0; factor = 4.0 } ]

let run ?elastic label =
  let nfs =
    let table = Hashtbl.create 4 in
    List.iter
      (fun (name, kind) ->
        Hashtbl.replace table name
          (Option.get (Nfp_nf.Registry.instantiate kind ~name)))
      kinds;
    Hashtbl.find table
  in
  let make engine ~output =
    Nfp_infra.System.make ?elastic ~plan:(plan ()) ~nfs engine ~output
  in
  let r =
    Nfp_sim.Harness.run ~make ~gen ~arrivals:(Nfp_sim.Harness.Surge surge)
      ~packets:8000 ()
  in
  let h = r.health in
  Format.printf "@.%s@." label;
  Format.printf "  offered %d  completed %d  NIC drops %d@." r.offered
    r.completed r.ring_drops;
  Format.printf "  scale-outs %d  scale-ins %d  migrations %d (aborted %d)@."
    h.Nfp_sim.Harness.scale_outs h.Nfp_sim.Harness.scale_ins
    h.Nfp_sim.Harness.migrations h.Nfp_sim.Harness.migration_aborts;
  Format.printf "  packets re-homed mid-flight %d@."
    h.Nfp_sim.Harness.migrated_packets

let () =
  Format.printf
    "surge plan: base 0.8 Mpps, 4x spike from 0.2 ms to 1.0 ms@.";
  run "static (no elastic config): the IDS core saturates and drops";
  run
    ~elastic:
      {
        Nfp_infra.System.default_elastic_config with
        max_replicas = 4;
        control_interval_ns = 10_000.0;
        cooldown_ns = 30_000.0;
      }
    "elastic (~elastic): standby replicas absorb the spike live"
