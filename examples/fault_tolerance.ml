(* Fault injection and graceful degradation on the NFP dataplane.

   The paper assumes NFs never fail; a production NFV operator cannot.
   This example deploys the paper's parallel Monitor | Firewall graph,
   crashes the monitor core mid-run, and shows the recovery policies
   side by side:

   - Restart:  respawn the core. With checkpointing disarmed
     (interval 0) its backlog is flushed; mergers time out
     accumulations the dead branch would wedge.
   - Lossless: Restart with checkpointing armed — the core restores
     its last snapshot, replays its input log, and re-admits the work
     the crash reclaimed, so nothing admitted is lost.
   - Bypass:   remove the optional monitor from the graph entirely,
   - Degrade:  fall back to the sequential order of the same plan
     until the core returns.

   Run with: dune exec examples/fault_tolerance.exe *)

open Nfp_core

let policy_text = "NF(mon, Monitor)\nNF(fw, Firewall)\nOrder(mon, before, fw)"

let bindings = [ ("mon", "Monitor"); ("fw", "Firewall") ]

let plan =
  match Compiler.compile_text policy_text with
  | Error es -> failwith (String.concat "; " es)
  | Ok out -> (
      match Tables.of_output out with Ok p -> p | Error e -> failwith e)

let nfs () =
  let table = Hashtbl.create 4 in
  List.iter
    (fun (name, kind) ->
      match Nfp_nf.Registry.instantiate kind ~name with
      | Some nf -> Hashtbl.replace table name nf
      | None -> failwith ("no implementation for " ^ kind))
    bindings;
  Hashtbl.find table

let gen i =
  Nfp_packet.Packet.create
    ~flow:
      (Nfp_packet.Flow.make
         ~sip:(Option.get (Nfp_packet.Flow.ip_of_string "10.0.0.1"))
         ~dip:(Option.get (Nfp_packet.Flow.ip_of_string "10.8.0.2"))
         ~sport:(10000 + (i mod 500))
         ~dport:80 ~proto:6)
    ~payload:"hello" ()

(* Crash the monitor core 0.5 ms in; at 0.5 Mpps over 2000 packets the
   run lasts 4 ms, so the watchdog detects, recovers, and the tail of
   the traffic flows through the repaired (or reshaped) dataplane. *)
let run ?(checkpoint_interval_ns = 0.0) label recovery =
  let fault =
    {
      Nfp_infra.System.default_fault_config with
      plan = Nfp_sim.Fault.plan [ Nfp_sim.Fault.crash ~at_ns:500_000.0 "mid1:mon" ];
      recovery_of = (fun _ -> recovery);
      checkpoint_interval_ns;
    }
  in
  let make engine ~output =
    Nfp_infra.System.make ~fault ~plan ~nfs:(nfs ()) engine ~output
  in
  let r =
    Nfp_sim.Harness.run ~make ~gen ~arrivals:(Nfp_sim.Harness.Uniform 0.5)
      ~packets:2000 ()
  in
  let h = r.health in
  Format.printf
    "%-8s: %4d/%d delivered (%.1f%%), p99 %.0f us | detections %d, restarts %d, \
     bypasses %d, degrades %d, merge timeouts %d, flushed %d@."
    label r.completed r.offered
    (100.0 *. float_of_int r.completed /. float_of_int r.offered)
    (Nfp_algo.Stats.percentile r.latency 99.0 /. 1000.0)
    h.detections h.restarts h.bypasses h.degrades h.merge_timeouts h.flushed;
  if checkpoint_interval_ns > 0.0 then
    Format.printf
      "          checkpoints %d, replayed %d, salvaged %d, deduped %d@."
      h.checkpoints h.replayed h.salvaged h.deduped;
  List.iter
    (fun (c : Nfp_sim.Harness.core_health) ->
      if c.state <> "up" then
        Format.printf "          core %s ended the run %s@." c.core c.state)
    h.cores

let () =
  Format.printf "crashing mid1:mon at t=0.5ms under each recovery policy:@.@.";
  run "Restart" Nfp_infra.System.Restart;
  run "Lossless" Nfp_infra.System.Restart ~checkpoint_interval_ns:100_000.0;
  run "Bypass" Nfp_infra.System.Bypass;
  run "Degrade" Nfp_infra.System.Degrade;
  Format.printf
    "@.Plain Restart flushes the outage window's backlog; Lossless restores the@.";
  Format.printf
    "monitor's last checkpoint, replays its input log to rebuild state, and@.";
  Format.printf
    "re-admits the reclaimed work (flushed stays 0). Bypass reroutes around@.";
  Format.printf
    "the optional monitor almost losslessly; Degrade runs the sequential@.";
  Format.printf "fallback chain until the core returns, trading latency for delivery.@."
