(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) on the simulated dataplane, plus bechamel
   microbenchmarks of the per-packet primitives.

     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- fig7    # one experiment

   Experiments: stats fig7 fig8 fig9 fig11 fig12 fig13 table4 merger
   overhead replay fig15 ablation classify micro.

   Absolute microseconds depend on the calibrated cost model
   (lib/sim/cost.ml); the claims under reproduction are the *shapes* —
   who wins, by what factor, and where crossovers sit. EXPERIMENTS.md
   records paper-vs-measured for each experiment. *)

open Nfp_core

let section title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n%!"

let note fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* Measurement helpers                                                 *)
(* ------------------------------------------------------------------ *)

let search_packets = 16000
let latency_packets = 20000

(* Pktgen is pure per index, so a generator caches the packets it has
   built: the probe runs of a bisection and the latency run afterwards
   re-inject the same traffic, and handing out a fresh copy of a cached
   packet is far cheaper than regenerating payload bytes (dominant for
   large frames). Copies keep runs independent — systems mutate packets
   in place. *)
let memoized gen =
  let cache : (int, Nfp_packet.Packet.t) Hashtbl.t = Hashtbl.create 4096 in
  fun i ->
    match Hashtbl.find_opt cache i with
    | Some p -> Nfp_packet.Packet.full_copy p
    | None ->
        let p = gen i in
        Hashtbl.replace cache i p;
        Nfp_packet.Packet.full_copy p

let gen_of_size ?(style = Nfp_traffic.Pktgen.Ascii) size =
  let g =
    Nfp_traffic.Pktgen.create
      {
        Nfp_traffic.Pktgen.default with
        sizes = Nfp_traffic.Size_dist.fixed size;
        payload_style = style;
        flows = 256;
      }
  in
  memoized (Nfp_traffic.Pktgen.packet g)

let gen_datacenter () =
  let g =
    Nfp_traffic.Pktgen.create
      {
        Nfp_traffic.Pktgen.default with
        sizes = Nfp_traffic.Size_dist.datacenter;
        flows = 256;
      }
  in
  memoized (Nfp_traffic.Pktgen.packet g)

(* Where a sample came from: the scenario/chain label and the execution
   configuration (path, classifier, batch size) it ran under. Emitted
   with every JSON measurement so BENCH_*.json rows are self-describing
   — a sweep over batch sizes or classifier modes is otherwise just an
   anonymous list of rates. *)
type provenance = { label : string; path : string; classify : string; batch : int }

let default_prov =
  {
    label = "";
    path = "compiled";
    classify = "cached";
    batch = Nfp_sim.Cost.default.batch;
  }

let prov label = { default_prov with label }

type measurement = {
  mpps : float;
  latency_us : float;
  p99_us : float;
  prov : provenance;
  extra : (string * float) list;
      (* experiment-specific counters (migrations, aborts, offered
         load, ...) appended verbatim to the sample's JSON object *)
}

(* With --json every measurement of the selected experiment is collected
   and dumped to BENCH_<experiment>.json. The mutex makes recording safe
   from Harness.parallel_runs workers (sample order then follows
   completion order; at one domain it matches print order). *)
let json_mode = ref false
let json_mutex = Mutex.create ()
let json_samples : measurement list ref = ref []

let record_sample m =
  if !json_mode then begin
    Mutex.lock json_mutex;
    json_samples := m :: !json_samples;
    Mutex.unlock json_mutex
  end

let measure ?(hi = 14.88) ?(prov = default_prov) ~gen make =
  let mpps =
    Nfp_sim.Harness.max_lossless_mpps ~make ~gen ~packets:search_packets ~hi
      ~iterations:8 ()
  in
  let r =
    Nfp_sim.Harness.run ~make ~gen
      ~arrivals:(Nfp_sim.Harness.Burst (0.9 *. mpps, 32))
      ~packets:latency_packets ()
  in
  if r.unmatched <> 0 then
    failwith
      (Printf.sprintf "measure: %d packets missed the classification table"
         r.unmatched);
  let m =
    {
      mpps;
      latency_us = Nfp_algo.Stats.mean r.latency /. 1000.0;
      p99_us = Nfp_algo.Stats.percentile r.latency 99.0 /. 1000.0;
      prov;
      extra = [];
    }
  in
  record_sample m;
  m

(* Fresh NF instances per deployment; [kinds] maps instance -> type. *)
let lookup_of kinds () =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (name, kind) ->
      match Nfp_nf.Registry.instantiate kind ~name with
      | Some nf -> Hashtbl.replace table name nf
      | None -> failwith ("no implementation for " ^ kind))
    kinds;
  Hashtbl.find table

let nfp_make ?(copy_mode = `Auto) ?(mergers = 1) ~kinds graph =
  let profile_of n = Nfp_nf.Registry.profile_of (List.assoc n kinds) in
  let plan =
    match Tables.plan ~copy_mode ~profile_of graph with
    | Ok p -> p
    | Error e -> failwith e
  in
  fun engine ~output ->
    Nfp_infra.System.make
      ~config:{ Nfp_infra.System.default_config with mergers }
      ~plan
      ~nfs:(lookup_of kinds ())
      engine ~output

let onvm_make ~kinds order engine ~output =
  let lookup = lookup_of kinds () in
  Nfp_baseline.Opennetvm.make ~nfs:(List.map lookup order) engine ~output

(* ------------------------------------------------------------------ *)
(* stats: Table 3 and the §4 NF-pair statistics                        *)
(* ------------------------------------------------------------------ *)

let run_stats () =
  section "§4  Action dependency table (Table 3) and NF-pair statistics";
  Format.printf "%a@." Dependency.pp_table ();
  let s = Analysis.run () in
  note "NF pairs parallelizable : %.1f%%   (paper: 53.8%%)" s.parallelizable_pct;
  note "  without packet copies : %.1f%%   (paper: 41.5%%)" s.no_copy_pct;
  note "  needing packet copies : %.1f%%   (paper: 12.3%%)" s.with_copy_pct;
  note "";
  note "Per-pair verdicts over the Table 2 population (weights in %%):";
  List.iter
    (fun p ->
      note "  %-13s before %-13s %5.2f  %s" p.Analysis.nf1 p.Analysis.nf2
        (100.0 *. p.Analysis.weight)
        (Dependency.verdict_to_string p.Analysis.verdict))
    s.pairs

(* ------------------------------------------------------------------ *)
(* fig7: sequential forwarder chains, OpenNetVM vs NFP                 *)
(* ------------------------------------------------------------------ *)

let forwarder_kinds n =
  List.init n (fun i -> (Printf.sprintf "fwd%d" i, "Forwarder"))

let run_fig7 () =
  section "Fig. 7  Sequential service chains (1-5 forwarders)";
  note "(a) latency, 64B packets (paper: both systems ~5-17us, linear in chain length,";
  note "    NFP within a few us of OpenNetVM):";
  note "    %-6s %-22s %-22s" "NFs" "OpenNetVM (us)" "NFP (us)";
  let gen = gen_of_size 64 in
  for n = 1 to 5 do
    let kinds = forwarder_kinds n in
    let order = List.map fst kinds in
    let onvm =
      measure
        ~prov:
          {
            default_prov with
            label = Printf.sprintf "fig7a:onvm:%dnf" n;
            path = "onvm";
            classify = "none";
          }
        ~gen (onvm_make ~kinds order)
    in
    let nfp =
      measure
        ~prov:(prov (Printf.sprintf "fig7a:nfp:%dnf" n))
        ~gen
        (nfp_make ~kinds (Graph.seq (List.map Graph.nf order)))
    in
    note "    %-6d %-22.1f %-22.1f" n onvm.latency_us nfp.latency_us
  done;
  note "";
  note "(b) processing rate vs packet size, Mpps (paper: NFP at line rate for any";
  note "    length; OpenNetVM slightly below and roughly flat in chain length):";
  note "    %-8s %-10s %-12s %-12s %-12s %-10s" "size" "line" "NFP-5NF" "ONVM-1NF" "ONVM-3NF"
    "ONVM-5NF";
  (* Size points are independent sweeps, so they run on the domain pool;
     each thunk builds its own generator (the memo cache is mutable) and
     every simulation inside is self-seeded, so results are identical at
     any worker count. Rows print in order after collection. *)
  let rows =
    Nfp_sim.Harness.parallel_runs
      (List.map
         (fun size () ->
           let gen = gen_of_size size in
           let hi = Nfp_sim.Nic.max_mpps ~frame_bytes:size in
           let rate sys n make =
             let p =
               if sys = "nfp" then prov (Printf.sprintf "fig7b:%s:%dnf:%dB" sys n size)
               else
                 {
                   default_prov with
                   label = Printf.sprintf "fig7b:%s:%dnf:%dB" sys n size;
                   path = "onvm";
                   classify = "none";
                 }
             in
             (measure ~hi ~prov:p ~gen (make n)).mpps
           in
           let nfp n =
             let kinds = forwarder_kinds n in
             nfp_make ~kinds (Graph.seq (List.map Graph.nf (List.map fst kinds)))
           in
           let onvm n =
             let kinds = forwarder_kinds n in
             onvm_make ~kinds (List.map fst kinds)
           in
           let nfp5 = rate "nfp" 5 nfp in
           let onvm1 = rate "onvm" 1 onvm in
           let onvm3 = rate "onvm" 3 onvm in
           let onvm5 = rate "onvm" 5 onvm in
           (size, hi, nfp5, onvm1, onvm3, onvm5))
         [ 64; 256; 1024; 1500 ])
  in
  List.iter
    (fun (size, hi, nfp5, onvm1, onvm3, onvm5) ->
      note "    %-8d %-10.2f %-12.2f %-12.2f %-12.2f %-10.2f" size hi nfp5 onvm1
        onvm3 onvm5)
    rows

(* ------------------------------------------------------------------ *)
(* fig8/fig9/fig11 rigs: 2..d instances of one NF (Fig. 10 setups)     *)
(* ------------------------------------------------------------------ *)

let rig_kinds kind d = List.init d (fun i -> (Printf.sprintf "nf%d" i, kind))

let rig_measurements ?(mergers = 1) ?(gen = gen_of_size 64) ?(hi = 14.88) kind d =
  let kinds = rig_kinds kind d in
  let names = List.map fst kinds in
  let seq_graph = Graph.seq (List.map Graph.nf names) in
  let par_graph = Graph.par (List.map Graph.nf names) in
  let onvm = measure ~hi ~gen (onvm_make ~kinds names) in
  let nfp_seq = measure ~hi ~gen (nfp_make ~kinds seq_graph) in
  let par_nc = measure ~hi ~gen (nfp_make ~copy_mode:`Share_all ~mergers ~kinds par_graph) in
  let par_c = measure ~hi ~gen (nfp_make ~copy_mode:`Copy_all ~mergers ~kinds par_graph) in
  (onvm, nfp_seq, par_nc, par_c)

let print_rig_row label (onvm, nfp_seq, par_nc, par_c) =
  note "  %-12s | %7.1f %7.2f | %7.1f %7.2f | %7.1f %7.2f (%4.0f%%) | %7.1f %7.2f (%4.0f%%)"
    label onvm.latency_us onvm.mpps nfp_seq.latency_us nfp_seq.mpps par_nc.latency_us
    par_nc.mpps
    (100.0 *. (nfp_seq.latency_us -. par_nc.latency_us) /. nfp_seq.latency_us)
    par_c.latency_us par_c.mpps
    (100.0 *. (nfp_seq.latency_us -. par_c.latency_us) /. nfp_seq.latency_us)

let rig_header () =
  note "  %-12s | %-15s | %-15s | %-24s | %-24s" "" "ONVM-seq" "NFP-seq" "NFP-par-nocopy"
    "NFP-par-copy";
  note "  %-12s | %7s %7s | %7s %7s | %7s %7s %7s | %7s %7s %7s" "" "us" "Mpps" "us" "Mpps"
    "us" "Mpps" "(red.)" "us" "Mpps" "(red.)"

let run_fig8 () =
  section "Fig. 8  Two instances of each NF type, sequential vs parallel (64B)";
  note "(paper: latency rises with NF complexity left to right; parallel beats";
  note " sequential, and the gain grows with complexity; copies cost little)";
  rig_header ();
  List.iter
    (fun kind -> print_rig_row kind (rig_measurements kind 2))
    [ "Forwarder"; "LoadBalancer"; "Firewall"; "Monitor"; "VPN"; "IDS" ]

(* The registry cannot instantiate parameterized firewall variants, so
   Fig. 9/11 build their deployments from explicit instances. *)
let fw_deploy ?(copy_mode = `Auto) ?(mergers = 1) ?ring_capacity ?fault ~extra
    ~graph names =
  let profile_of _ = Nfp_nf.Registry.profile_of "Firewall" in
  let plan =
    match Tables.plan ~copy_mode ~profile_of graph with
    | Ok p -> p
    | Error e -> failwith e
  in
  let ring_capacity =
    match ring_capacity with
    | Some c -> c
    | None -> Nfp_infra.System.default_config.ring_capacity
  in
  fun engine ~output ->
    let table = Hashtbl.create 8 in
    List.iter
      (fun n ->
        Hashtbl.replace table n (fst (Nfp_nf.Firewall.create ~name:n ~extra_cycles:extra ())))
      names;
    Nfp_infra.System.make
      ~config:{ Nfp_infra.System.default_config with mergers; ring_capacity }
      ?fault ~plan ~nfs:(Hashtbl.find table) engine ~output

let fw_onvm ~extra names engine ~output =
  let nfs =
    List.map (fun n -> fst (Nfp_nf.Firewall.create ~name:n ~extra_cycles:extra ())) names
  in
  Nfp_baseline.Opennetvm.make ~nfs engine ~output

let run_fig9 () =
  section "Fig. 9  Firewall complexity sweep (two instances, 1-3000 extra cycles, 64B)";
  note "(paper: latency reduction from parallelism grows with per-packet cycles,";
  note " reaching ~45%% at 3000 cycles; copy overhead stays minimal)";
  rig_header ();
  let gen = gen_of_size 64 in
  List.iter
    (fun extra ->
      let names = [ "fw0"; "fw1" ] in
      let seq = Graph.seq (List.map Graph.nf names) in
      let par = Graph.par (List.map Graph.nf names) in
      let onvm = measure ~gen (fw_onvm ~extra names) in
      let nfp_seq = measure ~gen (fw_deploy ~extra ~graph:seq names) in
      let par_nc = measure ~gen (fw_deploy ~copy_mode:`Share_all ~extra ~graph:par names) in
      let par_c = measure ~gen (fw_deploy ~copy_mode:`Copy_all ~extra ~graph:par names) in
      print_rig_row (Printf.sprintf "%d cyc" extra) (onvm, nfp_seq, par_nc, par_c))
    [ 1; 600; 1200; 1800; 2400; 3000 ]

let run_fig11 () =
  section "Fig. 11  Parallelism degree 2-5 (firewall + 300 cycles, 64B)";
  note "(paper: latency reduction grows 33%%->52%% with degree for no-copy and up to";
  note " 32%% with copies; processing rate roughly unaffected; two merger instances";
  note " serve degree >= 4)";
  rig_header ();
  let gen = gen_of_size 64 in
  List.iter
    (fun d ->
      let names = List.init d (fun i -> Printf.sprintf "fw%d" i) in
      let mergers = if d >= 4 then 2 else 1 in
      let seq = Graph.seq (List.map Graph.nf names) in
      let par = Graph.par (List.map Graph.nf names) in
      let onvm = measure ~gen (fw_onvm ~extra:300 names) in
      let nfp_seq = measure ~gen (fw_deploy ~extra:300 ~graph:seq names) in
      let par_nc =
        measure ~gen (fw_deploy ~copy_mode:`Share_all ~mergers ~extra:300 ~graph:par names)
      in
      let par_c =
        measure ~gen (fw_deploy ~copy_mode:`Copy_all ~mergers ~extra:300 ~graph:par names)
      in
      print_rig_row (Printf.sprintf "degree %d" d) (onvm, nfp_seq, par_nc, par_c))
    [ 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* fig12: the six four-NF graph structures of Fig. 14                  *)
(* ------------------------------------------------------------------ *)

let run_fig12 () =
  section "Fig. 12  Service-graph structures with 4 NFs (firewall + 300 cycles, 64B)";
  note "(paper: latency tracks the equivalent chain length; structure (2) wins,";
  note " structure (5), equivalent length 3, sees little reduction)";
  let names = [ "fw0"; "fw1"; "fw2"; "fw3" ] in
  let n i = Graph.nf (List.nth names i) in
  let shapes =
    [
      ("(1) seq", Graph.seq [ n 0; n 1; n 2; n 3 ]);
      ("(2) 1|1|1|1", Graph.par [ n 0; n 1; n 2; n 3 ]);
      ("(3) 1->3par", Graph.seq [ n 0; Graph.par [ n 1; n 2; n 3 ] ]);
      ("(4) 1|2seq|1", Graph.par [ n 0; Graph.seq [ n 1; n 2 ]; n 3 ]);
      ("(5) 1|3seq", Graph.par [ n 0; Graph.seq [ n 1; n 2; n 3 ] ]);
      ("(6) 2seq|2seq", Graph.par [ Graph.seq [ n 0; n 1 ]; Graph.seq [ n 2; n 3 ] ]);
    ]
  in
  let gen = gen_of_size 64 in
  note "  %-14s %-7s | %-17s | %-17s" "structure" "eq.len" "no copy (us, Mpps)"
    "copy (us, Mpps)";
  let baseline = ref 0.0 in
  List.iter
    (fun (label, graph) ->
      let nc = measure ~gen (fw_deploy ~copy_mode:`Share_all ~mergers:2 ~extra:300 ~graph names) in
      let c = measure ~gen (fw_deploy ~copy_mode:`Copy_all ~mergers:2 ~extra:300 ~graph names) in
      if !baseline = 0.0 then baseline := nc.latency_us;
      note "  %-14s %-7d | %7.1f  %6.2f   | %7.1f  %6.2f   (vs seq: %4.0f%%)" label
        (Graph.equivalent_length graph) nc.latency_us nc.mpps c.latency_us c.mpps
        (100.0 *. (!baseline -. nc.latency_us) /. !baseline))
    shapes

(* ------------------------------------------------------------------ *)
(* fig13: real-world data-center service chains                        *)
(* ------------------------------------------------------------------ *)

let run_fig13 () =
  section "Fig. 13  Real-world service chains (IMC data-center packet sizes)";
  let chains =
    [
      ( "north-south",
        [ ("vpn", "VPN"); ("mon", "Monitor"); ("fw", "Firewall"); ("lb", "LoadBalancer") ],
        [ "vpn"; "mon"; "fw"; "lb" ],
        "paper: 241us -> 210us (12.9% reduction), 0% overhead" );
      ( "west-east",
        [ ("ids", "IPS"); ("mon", "Monitor"); ("lb", "LoadBalancer") ],
        [ "ids"; "mon"; "lb" ],
        "paper: 220us -> 141us (35.9% reduction), 8.8% overhead" );
    ]
  in
  List.iter
    (fun (label, kinds, order, paper) ->
      let policy =
        { Nfp_policy.Rule.bindings = kinds; rules = Nfp_policy.Rule.of_chain order }
      in
      let out =
        match Compiler.compile policy with
        | Ok o -> o
        | Error es -> failwith (String.concat ";" es)
      in
      let plan =
        match Tables.of_output out with Ok p -> p | Error e -> failwith e
      in
      note "";
      note "%s   [%s]" label paper;
      note "  chain : %s" (String.concat " -> " order);
      note "  graph : %s   (equivalent length %d of %d)" (Graph.to_string out.graph)
        (Graph.equivalent_length out.graph)
        (Graph.nf_count out.graph);
      let mean_size =
        int_of_float (Nfp_traffic.Size_dist.mean Nfp_traffic.Size_dist.datacenter)
      in
      note "  resource overhead: %.1f%% of packet memory (paper formula: %.1f%%)"
        (100.0 *. Overhead.plan_overhead plan ~packet_bytes:mean_size)
        (100.0
        *. Overhead.ratio_distribution ~sizes:Nfp_traffic.Size_dist.datacenter
             ~degree:(if plan.header_copies + plan.full_copies > 0 then 2 else 1));
      let gen = gen_datacenter () in
      let hi = Nfp_sim.Nic.max_mpps ~frame_bytes:724 in
      let run_variant tag uniform =
        let wrap lookup n =
          let nf = lookup n in
          if uniform then { nf with Nfp_nf.Nf.cost_cycles = (fun _ -> 1200) } else nf
        in
        let onvm =
          measure ~hi ~gen (fun engine ~output ->
              let lookup = lookup_of kinds () in
              Nfp_baseline.Opennetvm.make ~nfs:(List.map (wrap lookup) order) engine ~output)
        in
        let nfp =
          measure ~hi ~gen (fun engine ~output ->
              let lookup = lookup_of kinds () in
              Nfp_infra.System.make ~plan ~nfs:(wrap lookup) engine ~output)
        in
        note "  %-22s OpenNetVM %6.1f us  ->  NFP %6.1f us   (%.1f%% reduction)" tag
          onvm.latency_us nfp.latency_us
          (100.0 *. (onvm.latency_us -. nfp.latency_us) /. onvm.latency_us)
      in
      run_variant "cost-faithful NFs :" false;
      run_variant "cost-uniform NFs  :" true)
    chains;
  note "";
  note "(cost-uniform rows equalize per-NF cycles, the regime the paper's uniform";
  note " per-stage latencies imply; cost-faithful rows keep Fig. 8's cost ordering,";
  note " where the heavyweight VPN/IDS stage dominates and parallelizing the light";
  note " NFs moves the total far less -- see EXPERIMENTS.md)"

(* ------------------------------------------------------------------ *)
(* table4: OpenNetVM vs NFP vs BESS                                    *)
(* ------------------------------------------------------------------ *)

let run_table4 () =
  section "Table 4  Pipelining vs run-to-completion (1-3 firewalls, 64B, n+2 cores)";
  note "(paper: ONVM 25/33/47us at ~9.4Mpps flat; NFP 23/27/31us at ~10.9Mpps;";
  note " BESS 11.3us flat at 14.7Mpps line rate)";
  note "  %-6s | %-16s | %-16s | %-16s" "chain" "OpenNetVM" "NFP (parallel)" "BESS (RTC)";
  note "  %-6s | %7s %8s | %7s %8s | %7s %8s" "len" "us" "Mpps" "us" "Mpps" "us" "Mpps";
  let gen = gen_of_size 64 in
  List.iter
    (fun n ->
      let names = List.init n (fun i -> Printf.sprintf "fw%d" i) in
      let onvm = measure ~gen (fw_onvm ~extra:0 names) in
      let nfp_graph =
        if n = 1 then Graph.nf "fw0" else Graph.par (List.map Graph.nf names)
      in
      let nfp =
        measure ~gen (fw_deploy ~copy_mode:`Share_all ~extra:0 ~graph:nfp_graph names)
      in
      let bess =
        measure ~gen (fun engine ~output ->
            Nfp_baseline.Bess.make ~cores:(n + 2)
              ~chain:(fun () ->
                List.map (fun nm -> fst (Nfp_nf.Firewall.create ~name:nm ())) names)
              engine ~output)
      in
      note "  %-6d | %7.1f %8.2f | %7.1f %8.2f | %7.1f %8.2f" n onvm.latency_us onvm.mpps
        nfp.latency_us nfp.mpps bess.latency_us bess.mpps)
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* merger: §6.3.3 merger load balancing                                *)
(* ------------------------------------------------------------------ *)

let run_merger () =
  section "§6.3.3  Merger capacity and load balancing (firewall, 64B)";
  note "(paper: one merger instance sustains 10.7 Mpps at degree 2; two instances";
  note " suffice for full speed up to degree 5)";
  let gen = gen_of_size 64 in
  let rate ~d ~mergers =
    let names = List.init d (fun i -> Printf.sprintf "fw%d" i) in
    let graph = Graph.par (List.map Graph.nf names) in
    (measure ~gen (fw_deploy ~copy_mode:`Share_all ~mergers ~extra:0 ~graph names)).mpps
  in
  note "  %-8s %-14s %-14s" "degree" "1 merger" "2 mergers";
  List.iter
    (fun d ->
      note "  %-8d %-14.2f %-14.2f" d (rate ~d ~mergers:1) (rate ~d ~mergers:2))
    [ 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* overhead: §6.3.1 resource overhead                                  *)
(* ------------------------------------------------------------------ *)

let run_overhead () =
  section "§6.3.1  Resource overhead of header-only copying";
  note "ro = 64 x (d-1) / s, in %% of packet memory:";
  note "  %-8s %8s %8s %8s %8s" "size" "d=2" "d=3" "d=4" "d=5";
  List.iter
    (fun s ->
      note "  %-8d %7.1f%% %7.1f%% %7.1f%% %7.1f%%" s
        (100.0 *. Overhead.ratio ~packet_bytes:s ~degree:2)
        (100.0 *. Overhead.ratio ~packet_bytes:s ~degree:3)
        (100.0 *. Overhead.ratio ~packet_bytes:s ~degree:4)
        (100.0 *. Overhead.ratio ~packet_bytes:s ~degree:5))
    Nfp_traffic.Size_dist.common_sizes;
  note "";
  note "Data-center mix (IMC'10, mean %.0fB):"
    (Nfp_traffic.Size_dist.mean Nfp_traffic.Size_dist.datacenter);
  List.iter
    (fun d ->
      note "  degree %d: %.1f%%   (paper: 0.088 x (d-1) = %.1f%%)" d
        (100.0
        *. Overhead.ratio_distribution ~sizes:Nfp_traffic.Size_dist.datacenter ~degree:d)
        (100.0 *. Overhead.datacenter_ratio ~degree:d))
    [ 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* replay: §6.4 result correctness                                     *)
(* ------------------------------------------------------------------ *)

let run_replay () =
  section "§6.4  Result correctness: replay against sequential execution";
  let run_chain label kinds order =
    let policy =
      { Nfp_policy.Rule.bindings = kinds; rules = Nfp_policy.Rule.of_chain order }
    in
    let out =
      match Compiler.compile policy with Ok o -> o | Error es -> failwith (String.concat ";" es)
    in
    let plan = match Tables.of_output out with Ok p -> p | Error e -> failwith e in
    let gen =
      Nfp_traffic.Pktgen.create
        {
          Nfp_traffic.Pktgen.default with
          payload_style = Nfp_traffic.Pktgen.Tagged;
          sizes = Nfp_traffic.Size_dist.datacenter;
          flows = 512;
        }
    in
    let o =
      Nfp_traffic.Replay.run
        ~chain:(fun () ->
          let lookup = lookup_of kinds () in
          List.map lookup order)
        ~deployment:(fun () -> (plan, lookup_of kinds ()))
        ~gen:(Nfp_traffic.Pktgen.packet gen) ~packets:2000
    in
    note "  %-12s %d/%d packets identical (%s)" label o.agreements o.total
      (if Nfp_traffic.Replay.agrees o then "PASS" else "FAIL")
  in
  run_chain "north-south"
    [ ("vpn", "VPN"); ("mon", "Monitor"); ("fw", "Firewall"); ("lb", "LoadBalancer") ]
    [ "vpn"; "mon"; "fw"; "lb" ];
  run_chain "west-east"
    [ ("ids", "IPS"); ("mon", "Monitor"); ("lb", "LoadBalancer") ]
    [ "ids"; "mon"; "lb" ]

(* ------------------------------------------------------------------ *)
(* fig15: OpenBox block-level parallelism                              *)
(* ------------------------------------------------------------------ *)

let run_fig15 () =
  section "Fig. 15  OpenBox+NFP block-level parallelism (firewall + IPS)";
  let fw = Nfp_openbox.Pipeline.firewall () in
  let ips = Nfp_openbox.Pipeline.ips () in
  let merged = Nfp_openbox.Pipeline.merge fw ips in
  let stages = Nfp_openbox.Pipeline.stages merged in
  note "  shared prefix: %d blocks" (List.length merged.shared);
  Format.printf "  merged graph : %a@." Nfp_openbox.Pipeline.pp_stages stages;
  let seq = Nfp_openbox.Pipeline.total_cycles fw + Nfp_openbox.Pipeline.total_cycles ips in
  let staged = Nfp_openbox.Pipeline.staged_cycles stages in
  note "  critical path: %d cycles vs %d for the two chains (%.1f%% saved)" staged seq
    (100.0 *. float_of_int (seq - staged) /. float_of_int seq);
  (* Deploy the three variants on the dataplane and measure. *)
  let rename suffix (b : Nfp_openbox.Block.t) = { b with Nfp_openbox.Block.name = b.name ^ suffix } in
  let chained =
    List.map
      (fun b -> [ b ])
      (List.map (rename "_f") fw @ List.map (rename "_i") ips)
  in
  let merged_seq = List.concat_map (fun stage -> List.map (fun b -> [ b ]) stage) stages in
  let gen = gen_of_size 256 in
  let hi = Nfp_sim.Nic.max_mpps ~frame_bytes:256 in
  let deploy block_stages =
    let graph, nfs = Nfp_openbox.Pipeline.to_deployment block_stages in
    let plan =
      match Tables.plan ~profile_of:(fun n -> (nfs n).Nfp_nf.Nf.profile) graph with
      | Ok p -> p
      | Error e -> failwith e
    in
    fun engine ~output -> Nfp_infra.System.make ~plan ~nfs engine ~output
  in
  (* All three variants are DPI-bound; compare latency at a common
     offered rate below that bound. *)
  let variants =
    [
      ("two chains, sequential", chained);
      ("OpenBox merged, sequential", merged_seq);
      ("OpenBox + NFP parallel", stages);
    ]
  in
  let rates =
    List.map
      (fun (_, bs) ->
        Nfp_sim.Harness.max_lossless_mpps ~make:(deploy bs) ~gen ~packets:search_packets
          ~hi ~iterations:8 ())
      variants
  in
  let common = 0.7 *. List.fold_left min hi rates in
  note "";
  note "  measured on the dataplane (256B packets, common load %.2f Mpps);" common;
  note "  the DPI block dominates every variant, so block sharing/parallelism of";
  note "  the cheap blocks moves end-to-end latency only marginally -- the same";
  note "  cost-threshold effect as Fig. 8:";
  List.iter2
    (fun (label, bs) rate ->
      let r =
        Nfp_sim.Harness.run ~make:(deploy bs) ~gen
          ~arrivals:(Nfp_sim.Harness.Burst (common, 32))
          ~packets:latency_packets ()
      in
      note "  %-28s %6.1f us   (max %5.2f Mpps)" label
        (Nfp_algo.Stats.mean r.latency /. 1000.0)
        rate)
    variants rates

(* ------------------------------------------------------------------ *)
(* ablation: field-sensitive write-read                                *)
(* ------------------------------------------------------------------ *)

let run_ablation () =
  section "Ablation  Field-sensitive write-before-read (beyond the paper's Table 3)";
  let strict = Analysis.run () in
  let relaxed = Analysis.run ~field_sensitive_write_read:true () in
  note "  paper-strict Table 3     : %.1f%% parallelizable (%.1f%% no-copy)"
    strict.parallelizable_pct strict.no_copy_pct;
  note "  field-sensitive W-then-R : %.1f%% parallelizable (%.1f%% no-copy)"
    relaxed.parallelizable_pct relaxed.no_copy_pct;
  let show text =
    let graph fswr =
      match Compiler.compile_text ~field_sensitive_write_read:fswr text with
      | Ok o -> Graph.to_string o.graph
      | Error es -> String.concat ";" es
    in
    note "  %-34s strict: %-24s relaxed: %s" text (graph false) (graph true)
  in
  show "Chain(Compression, Gateway)";
  show "Chain(Compression, Monitor)";
  show "Chain(Proxy, Gateway)"

(* ------------------------------------------------------------------ *)
(* micro: bechamel microbenchmarks of the per-packet primitives        *)
(* ------------------------------------------------------------------ *)

let run_micro () =
  section "Microbenchmarks  Per-packet primitives (bechamel, ns/op)";
  let open Bechamel in
  let open Toolkit in
  let flow =
    Nfp_packet.Flow.make
      ~sip:(Option.get (Nfp_packet.Flow.ip_of_string "10.0.1.1"))
      ~dip:(Option.get (Nfp_packet.Flow.ip_of_string "10.8.2.10"))
      ~sport:12000 ~dport:61080 ~proto:6
  in
  let pkt1500 = Nfp_packet.Packet.create ~flow ~payload:(String.make 1446 'x') () in
  let aes = Nfp_algo.Aes.expand_key "0123456789abcdef" in
  let block = Bytes.make 16 'b' in
  let lpm =
    let t = Nfp_algo.Lpm.create () in
    for i = 0 to 999 do
      Nfp_algo.Lpm.add t
        ~prefix:(Int32.of_int ((10 lsl 24) lor (i lsl 8)))
        ~len:24 i
    done;
    t
  in
  let aho = Nfp_algo.Aho_corasick.build (Nfp_nf.Ids.default_signatures 100) in
  let payload = String.make 1446 'Q' in
  let v2 = Nfp_packet.Packet.full_copy pkt1500 in
  Nfp_packet.Packet.set_sip v2 42l;
  let get = function 1 -> Some pkt1500 | 2 -> Some v2 | _ -> None in
  let tests =
    Test.make_grouped ~name:"nfp" ~fmt:"%s %s"
      [
        Test.make ~name:"header-only copy"
          (Staged.stage (fun () -> Nfp_packet.Packet.header_only_copy pkt1500 ~version:2));
        Test.make ~name:"full copy 1500B"
          (Staged.stage (fun () -> Nfp_packet.Packet.full_copy pkt1500));
        Test.make ~name:"5-tuple hash" (Staged.stage (fun () -> Nfp_packet.Flow.hash flow));
        Test.make ~name:"LPM lookup (1000 routes)"
          (Staged.stage (fun () -> Nfp_algo.Lpm.lookup lpm 0x0a1702a9l));
        Test.make ~name:"AES-128 block"
          (Staged.stage (fun () -> Nfp_algo.Aes.encrypt_block aes block ~pos:0));
        Test.make ~name:"DPI scan 1446B (100 sigs)"
          (Staged.stage (fun () -> Nfp_algo.Aho_corasick.matches aho payload));
        Test.make ~name:"merge op (modify sip)"
          (Staged.stage (fun () ->
               Nfp_core.Merge_op.apply
                 (Nfp_core.Merge_op.Modify { dst = 1; src = 2; field = Nfp_packet.Field.Sip })
                 ~get));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] -> note "  %-32s %10.1f ns/op" name ns
      | _ -> note "  %-32s (no estimate)" name)
    results

(* ------------------------------------------------------------------ *)
(* partition: §7 cross-server NF parallelism                           *)
(* ------------------------------------------------------------------ *)

let run_partition () =
  section "§7  Cross-server partitioning (six firewalls + 300 cycles, 64B)";
  note "(extension of the paper's scalability sketch: cuts only where one merged";
  note " copy flows; each inter-server handoff pays the link plus both NICs)";
  let names = List.init 6 (fun i -> Printf.sprintf "fw%d" i) in
  let graph =
    Graph.seq
      [
        Graph.nf "fw0";
        Graph.par [ Graph.nf "fw1"; Graph.nf "fw2" ];
        Graph.nf "fw3";
        Graph.par [ Graph.nf "fw4"; Graph.nf "fw5" ];
      ]
  in
  let profile_of _ = Nfp_nf.Registry.profile_of "Firewall" in
  let nfs () =
    let t = Hashtbl.create 8 in
    List.iter
      (fun n -> Hashtbl.replace t n (fst (Nfp_nf.Firewall.create ~name:n ~extra_cycles:300 ())))
      names;
    Hashtbl.find t
  in
  let gen = gen_of_size 64 in
  let single engine ~output = Nfp_infra.System.make ~plan:(Result.get_ok (Tables.plan ~profile_of graph)) ~nfs:(nfs ()) engine ~output in
  let m1 = measure ~gen single in
  note "  single server (%d cores): %.1f us, %.2f Mpps" (Partition.cores_needed graph)
    m1.latency_us m1.mpps;
  List.iter
    (fun cores ->
      match Partition.partition ~cores_per_server:cores graph with
      | Error e -> note "  %d cores/server: %s" cores e
      | Ok assignments ->
          let clustered engine ~output =
            match
              Nfp_infra.Cluster.of_partition ~assignments ~profile_of ~nfs:(nfs ()) engine
                ~output
            with
            | Ok s -> s
            | Error e -> failwith e
          in
          let m = measure ~gen clustered in
          note "  %d servers x %d cores (%d link hops): %.1f us, %.2f Mpps"
            (List.length assignments) cores
            (Partition.inter_server_hops assignments)
            m.latency_us m.mpps)
    [ 6; 4 ]

(* ------------------------------------------------------------------ *)
(* Overload rig: three identical firewall chains behind one            *)
(* classifier, steered by destination port, admitted at classes 0/1/2  *)
(* (bronze/silver/gold). Shared by loadsweep's per-priority breakdown  *)
(* and the overload experiment.                                        *)
(* ------------------------------------------------------------------ *)

let overload_classes = [ (0, "bronze"); (1, "silver"); (2, "gold") ]

let overload_graphs ~extra () =
  List.map
    (fun (cls, label) ->
      let names = [ label ^ "-fw0"; label ^ "-fw1" ] in
      let graph = Graph.seq (List.map Graph.nf names) in
      let profile_of _ = Nfp_nf.Registry.profile_of "Firewall" in
      let plan =
        match Tables.plan ~profile_of ~priority:cls graph with
        | Ok p -> p
        | Error e -> failwith e
      in
      let table = Hashtbl.create 4 in
      List.iter
        (fun n ->
          Hashtbl.replace table n
            (fst (Nfp_nf.Firewall.create ~name:n ~extra_cycles:extra ())))
        names;
      ( Nfp_packet.Flow_match.make ~dport_range:(1000 + cls, 1000 + cls) (),
        plan,
        Hashtbl.find table ))
    overload_classes

(* Packet i belongs to chain (i mod 3); one flow per class keeps the
   microflow cache hot, so classification cost is flat across rates. *)
let overload_gen =
  let flows =
    Array.init 3 (fun cls ->
        Nfp_packet.Flow.make
          ~sip:(Option.get (Nfp_packet.Flow.ip_of_string "10.0.0.1"))
          ~dip:(Option.get (Nfp_packet.Flow.ip_of_string "10.0.0.2"))
          ~sport:(5000 + cls) ~dport:(1000 + cls) ~proto:6)
  in
  fun i ->
    Nfp_packet.Packet.create ~flow:flows.(i mod 3) ~payload:(String.make 18 'x') ()

let class_of_pid pid = Int64.to_int (Int64.rem pid 3L)

(* One load point on the rig: per-class delivery counts and latency via
   wrappers around the system's inject/output (the class is recoverable
   from the pid). Returns the harness result plus per-class delivered
   counts and latency accumulators. *)
let overload_run ?overload ~rate ~packets () =
  let lat = Array.init 3 (fun _ -> Nfp_algo.Stats.create ()) in
  let delivered = Array.make 3 0 in
  let t0 = Hashtbl.create 4096 in
  let make engine ~output =
    let output ~pid pkt =
      let c = class_of_pid pid in
      delivered.(c) <- delivered.(c) + 1;
      (match Hashtbl.find_opt t0 pid with
      | Some ts ->
          Hashtbl.remove t0 pid;
          Nfp_algo.Stats.add lat.(c) (Nfp_sim.Engine.now engine -. ts)
      | None -> ());
      output ~pid pkt
    in
    let system =
      Nfp_infra.System.make_multi ?overload ~graphs:(overload_graphs ~extra:300 ())
        engine ~output
    in
    {
      system with
      Nfp_sim.Harness.inject =
        (fun ~pid pkt ->
          Hashtbl.replace t0 pid (Nfp_sim.Engine.now engine);
          system.Nfp_sim.Harness.inject ~pid pkt);
    }
  in
  let r =
    Nfp_sim.Harness.run ~make ~gen:overload_gen
      ~arrivals:(Nfp_sim.Harness.Uniform rate) ~packets ()
  in
  (r, delivered, lat)

let shed_of_class (drops : Nfp_sim.Harness.drops) c =
  match List.assoc_opt c drops.shed_by_class with Some n -> n | None -> 0

(* ------------------------------------------------------------------ *)
(* Elastic rig: cheap forwarders feed the expensive IDS, whose         *)
(* read-mostly profile clears it for RSS-sharded replicas and runtime  *)
(* state migration. The static rig pins the IDS to one core and        *)
(* saturates at its knee; arming the controller lets the same          *)
(* deployment scale the IDS out live. Shared by loadsweep's elastic    *)
(* breakdown and the elastic experiment.                               *)
(* ------------------------------------------------------------------ *)

let elastic_kinds = forwarder_kinds 2 @ [ ("ids", "IDS") ]

let elastic_plan () =
  let profile_of n = Nfp_nf.Registry.profile_of (List.assoc n elastic_kinds) in
  match
    Tables.plan ~profile_of
      (Graph.seq (List.map (fun (n, _) -> Graph.nf n) elastic_kinds))
  with
  | Ok p -> p
  | Error e -> failwith e

let elastic_point ?elastic ~rate ~packets () =
  let plan = elastic_plan () in
  let make engine ~output =
    Nfp_infra.System.make ?elastic ~plan ~nfs:(lookup_of elastic_kinds ())
      engine ~output
  in
  Nfp_sim.Harness.run ~make ~gen:(gen_of_size 64)
    ~arrivals:(Nfp_sim.Harness.Uniform rate) ~packets ()

let elastic_knee () =
  let plan = elastic_plan () in
  let make engine ~output =
    Nfp_infra.System.make ~plan ~nfs:(lookup_of elastic_kinds ()) engine ~output
  in
  Nfp_sim.Harness.max_lossless_mpps ~make ~gen:(gen_of_size 64)
    ~packets:search_packets ~hi:14.88 ~iterations:8 ()

(* ------------------------------------------------------------------ *)
(* loadsweep: latency vs offered load (methodology check)              *)
(* ------------------------------------------------------------------ *)

let run_loadsweep () =
  section "Load sweep  Latency vs offered load (north-south chain, 64B)";
  note "(methodology: the evaluation reports latency at 90%% of each setup's";
  note " max lossless rate; this sweep shows where that sits on the knee)";
  let kinds =
    [ ("vpn", "VPN"); ("mon", "Monitor"); ("fw", "Firewall"); ("lb", "LoadBalancer") ]
  in
  let policy =
    { Nfp_policy.Rule.bindings = kinds; rules = Nfp_policy.Rule.of_chain (List.map fst kinds) }
  in
  let out =
    match Compiler.compile policy with Ok o -> o | Error es -> failwith (String.concat ";" es)
  in
  let plan = match Tables.of_output out with Ok p -> p | Error e -> failwith e in
  let make engine ~output =
    Nfp_infra.System.make ~plan ~nfs:(lookup_of kinds ()) engine ~output
  in
  let gen = gen_of_size 64 in
  let mx =
    Nfp_sim.Harness.max_lossless_mpps ~make ~gen ~packets:search_packets ~hi:14.88
      ~iterations:8 ()
  in
  note "  max lossless rate: %.2f Mpps" mx;
  note "  %-10s %-12s %-12s %-10s %-10s %s" "load" "mean (us)" "p99 (us)" "ingress"
    "internal" "stall (us)";
  (* Each load point is an independent simulation; sweep them on the
     domain pool (per-thunk generators and stats cells — both are
     mutable) and print in order once all are collected. *)
  let fracs = [ 0.2; 0.4; 0.6; 0.8; 0.9; 1.0; 1.1 ] in
  let rows =
    Nfp_sim.Harness.parallel_runs
      (List.map
         (fun frac () ->
           let gen = gen_of_size 64 in
           let cell = ref (fun () -> []) in
           let make engine ~output =
             Nfp_infra.System.make ~stats:cell ~plan ~nfs:(lookup_of kinds ()) engine
               ~output
           in
           let r =
             Nfp_sim.Harness.run ~make ~gen
               ~arrivals:(Nfp_sim.Harness.Burst (frac *. mx, 32))
               ~packets:latency_packets ()
           in
           (* The unified drop taxonomy localizes where the knee comes
              from: [ingress_rejected] are true losses at the NIC
              boundary, [internal_rejected] are in-graph backpressure
              retry events (not losses), and core stall time shows
              where emission waits. *)
           let d = r.health.Nfp_sim.Harness.drops in
           let cores = !cell () in
           let stalled_us =
             List.fold_left (fun a c -> a +. c.Nfp_infra.System.stalled_ns) 0.0 cores
             /. 1000.0
           in
           ( frac,
             Nfp_algo.Stats.mean r.latency /. 1000.0,
             Nfp_algo.Stats.percentile r.latency 99.0 /. 1000.0,
             d.Nfp_sim.Harness.ingress_rejected,
             d.Nfp_sim.Harness.internal_rejected,
             stalled_us ))
         fracs)
  in
  List.iter
    (fun (frac, mean_us, p99_us, ingress, internal, stalled_us) ->
      note "  %3.0f%%       %-12.1f %-12.1f %-10d %-10d %.0f" (100.0 *. frac) mean_us
        p99_us ingress internal stalled_us)
    rows;
  (* Per-priority breakdown: the same sweep on the three-class overload
     rig with the admission controller armed. Below the knee nothing
     sheds; past it the bronze chain gives way first, then silver, and
     gold keeps its goodput. *)
  note "";
  let oc = Nfp_infra.System.default_overload_config in
  note "  overload control plane armed (3 admission classes, watermarks %d/%d):"
    oc.Nfp_infra.System.high_watermark oc.Nfp_infra.System.low_watermark;
  let rig_make engine ~output =
    Nfp_infra.System.make_multi ~graphs:(overload_graphs ~extra:300 ()) engine ~output
  in
  let mx3 =
    Nfp_sim.Harness.max_lossless_mpps ~make:rig_make ~gen:overload_gen
      ~packets:search_packets ~hi:14.88 ~iterations:8 ()
  in
  note "  rig knee: %.2f Mpps; per class: delivered (shed)" mx3;
  note "  %-10s %-18s %-18s %-18s %s" "load" "bronze" "silver" "gold" "p99 (us)";
  let rows =
    Nfp_sim.Harness.parallel_runs
      (List.map
         (fun frac () ->
           let r, delivered, _lat =
             overload_run ~overload:Nfp_infra.System.default_overload_config
               ~rate:(frac *. mx3) ~packets:latency_packets ()
           in
           let d = r.health.Nfp_sim.Harness.drops in
           ( frac,
             Array.to_list delivered,
             List.map (shed_of_class d) [ 0; 1; 2 ],
             Nfp_algo.Stats.percentile r.latency 99.0 /. 1000.0 ))
         [ 0.6; 0.8; 1.0; 1.2; 1.5; 2.0 ])
  in
  List.iter
    (fun (frac, delivered, shed, p99_us) ->
      match (delivered, shed) with
      | [ db; ds; dg ], [ sb; ss; sg ] ->
          note "  %3.0f%%       %-18s %-18s %-18s %.1f" (100.0 *. frac)
            (Printf.sprintf "%d (%d)" db sb)
            (Printf.sprintf "%d (%d)" ds ss)
            (Printf.sprintf "%d (%d)" dg sg)
            p99_us
      | _ -> ())
    rows;
  (* Elastic breakdown: the same sweep idea on the scale rig with the
     elastic controller armed — the migration/abort columns show the
     controller re-homing RSS buckets as each load point passes the
     single-IDS knee. *)
  note "";
  note "  elastic controller armed (fwd-fwd-ids chain, default policy):";
  let mxe = elastic_knee () in
  note "  static knee: %.2f Mpps" mxe;
  note "  %-10s %-12s %-12s %-8s %-6s %-6s %s" "load" "mean (us)" "p99 (us)"
    "ingress" "migr" "abort" "replicas out/in";
  let rows =
    Nfp_sim.Harness.parallel_runs
      (List.map
         (fun frac () ->
           let r =
             elastic_point
               ~elastic:Nfp_infra.System.default_elastic_config
               ~rate:(frac *. mxe) ~packets:latency_packets ()
           in
           (frac, r))
         [ 0.6; 0.9; 1.1; 1.5 ])
  in
  List.iter
    (fun (frac, (r : Nfp_sim.Harness.result)) ->
      let h = r.health in
      note "  %3.0f%%       %-12.1f %-12.1f %-8d %-6d %-6d %d/%d" (100.0 *. frac)
        (Nfp_algo.Stats.mean r.latency /. 1000.0)
        (Nfp_algo.Stats.percentile r.latency 99.0 /. 1000.0)
        h.drops.ingress_rejected h.migrations h.migration_aborts h.scale_outs
        h.scale_ins)
    rows;
  (* Lossy-fabric breakdown: the same chain sweep with 1% loss on every
     inter-core link and the reliable channels armed — the taxonomy
     columns show the ARQ recovering what the fabric drops while the
     latency columns price the retransmissions at each load point. *)
  note "";
  note "  lossy fabric armed (1%% loss on every link, reliable channels):";
  note "  %-10s %-12s %-12s %-8s %-8s %-8s %s" "load" "mean (us)" "p99 (us)"
    "drops" "retx" "dedup" "lost";
  let lossy_links =
    {
      Nfp_infra.System.default_links_config with
      link_plan = Nfp_sim.Fault.link_plan [ Nfp_sim.Fault.loss ~probability:0.01 "*" ];
    }
  in
  let rows =
    Nfp_sim.Harness.parallel_runs
      (List.map
         (fun frac () ->
           let gen = gen_of_size 64 in
           let make engine ~output =
             Nfp_infra.System.make ~links:lossy_links
               ~config:{ Nfp_infra.System.default_config with ring_capacity = 8192 }
               ~plan ~nfs:(lookup_of kinds ()) engine ~output
           in
           let r =
             Nfp_sim.Harness.run ~make ~gen
               ~arrivals:(Nfp_sim.Harness.Burst (frac *. mx, 32))
               ~packets:latency_packets ()
           in
           (frac, r))
         [ 0.2; 0.6; 0.9; 1.0 ])
  in
  List.iter
    (fun (frac, (r : Nfp_sim.Harness.result)) ->
      let l = r.health.Nfp_sim.Harness.links in
      note "  %3.0f%%       %-12.1f %-12.1f %-8d %-8d %-8d %d" (100.0 *. frac)
        (Nfp_algo.Stats.mean r.latency /. 1000.0)
        (Nfp_algo.Stats.percentile r.latency 99.0 /. 1000.0)
        l.Nfp_sim.Harness.link_drops l.Nfp_sim.Harness.retransmits
        l.Nfp_sim.Harness.duplicates_suppressed
        (r.offered - r.completed - r.ring_drops))
    rows

(* ------------------------------------------------------------------ *)
(* scale: §7 NF scaling inside one server                              *)
(* ------------------------------------------------------------------ *)

let run_scale () =
  section "§7  Scaling a bottleneck NF inside one server (intra-NF replication, 64B)";
  note "(paper: \"NFP can support NF scaling inside one server by allocating";
  note " remaining CPU cores to new NF instances with new IDs and constructing";
  note " service graphs containing these new instances\" -- realized here by the";
  note " state-access replication analysis: the IDS's read-only/commutative";
  note " profile clears it for RSS-sharded replicas, while the forwarders'";
  note " last-hop telemetry cell keeps them Sequential on a single instance)";
  let gen = gen_of_size 64 in
  (* A chain of cheap forwarders feeding the expensive IDS: the IDS core
     saturates an order of magnitude before anything else, so uncapped
     throughput tracks its replica count until the forwarders' own
     ceiling. The replicas knob asks for N everywhere; only the IDS is
     actually sharded. *)
  let kinds = forwarder_kinds 4 @ [ ("ids", "IDS") ] in
  let profile_of n = Nfp_nf.Registry.profile_of (List.assoc n kinds) in
  let plan =
    match
      Tables.plan ~profile_of (Graph.seq (List.map (fun (n, _) -> Graph.nf n) kinds))
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let shown = ref false in
  let baseline = ref 0.0 in
  List.iter
    (fun replicas ->
      let replication = ref (fun () -> []) in
      let make engine ~output =
        Nfp_infra.System.make ~replicas ~replication ~plan
          ~nfs:(lookup_of kinds ()) engine ~output
      in
      let m =
        measure ~hi:30.0
          ~prov:(prov (Printf.sprintf "scale:replicas-%d" replicas))
          ~gen make
      in
      let report = !replication () in
      if not !shown then begin
        shown := true;
        note "  derived strategies:";
        List.iter
          (fun (rr : Nfp_infra.System.replica_report) ->
            note "    %-6s %-12s %s" rr.rr_nf rr.rr_kind
              (Replication.to_string rr.rr_strategy))
          report
      end;
      let deployed =
        match
          List.find_opt
            (fun (rr : Nfp_infra.System.replica_report) -> rr.rr_nf = "ids")
            report
        with
        | Some rr -> rr.rr_replicas
        | None -> 1
      in
      if replicas = 1 then baseline := m.mpps;
      note "  replicas=%d (ids x%d): %6.2f Mpps  (%.2fx), p99 %.2f us" replicas
        deployed m.mpps
        (m.mpps /. !baseline)
        m.p99_us)
    [ 1; 2; 3; 4; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* elastic: offered-load sweep, static rig vs live scale-out           *)
(* ------------------------------------------------------------------ *)

let run_elastic () =
  section "Elastic  Riding through the static knee (fwd-fwd-ids chain, 64B)";
  note "(the static rig pins one IDS replica and saturates at its knee; the";
  note " elastic rig arms the default scale controller, which shards the IDS";
  note " across RSS buckets at runtime and migrates per-flow state live --";
  note " goodput follows the offered load past the static saturation point)";
  let knee = elastic_knee () in
  note "  static knee (one IDS replica, lossless): %.2f Mpps" knee;
  let fracs = [ 0.6; 0.8; 1.0; 1.5; 2.0; 3.0 ] in
  let variants =
    [
      ("static", None);
      ("elastic", Some Nfp_infra.System.default_elastic_config);
    ]
  in
  let rows =
    Nfp_sim.Harness.parallel_runs
      (List.concat_map
         (fun (vlabel, elastic) ->
           List.map
             (fun frac () ->
               let r =
                 elastic_point ?elastic ~rate:(frac *. knee)
                   ~packets:latency_packets ()
               in
               (vlabel, frac, r))
             fracs)
         variants)
  in
  let last = ref "" in
  List.iter
    (fun (vlabel, frac, (r : Nfp_sim.Harness.result)) ->
      if !last <> vlabel then begin
        last := vlabel;
        note "";
        note "  %s rig:" vlabel;
        note "  %-8s %-10s %-10s %-8s %-6s %-6s %-6s %s" "load" "goodput"
          "p99 (us)" "ingress" "outs" "ins" "migr" "aborts"
      end;
      let h = r.health in
      let goodput = float_of_int r.completed /. r.duration_ns *. 1000.0 in
      let p99 = Nfp_algo.Stats.percentile r.latency 99.0 /. 1000.0 in
      note "  %3.0f%%     %-10.2f %-10.1f %-8d %-6d %-6d %-6d %d"
        (100.0 *. frac) goodput p99 h.drops.ingress_rejected h.scale_outs
        h.scale_ins h.migrations h.migration_aborts;
      record_sample
        {
          mpps = goodput;
          latency_us = Nfp_algo.Stats.mean r.latency /. 1000.0;
          p99_us = p99;
          prov = prov (Printf.sprintf "elastic:%s:load-%.1fx" vlabel frac);
          extra =
            [
              ("offered_mpps", frac *. knee);
              ("ingress_drops", float_of_int h.drops.ingress_rejected);
              ("scale_outs", float_of_int h.scale_outs);
              ("scale_ins", float_of_int h.scale_ins);
              ("migrations", float_of_int h.migrations);
              ("aborts", float_of_int h.migration_aborts);
              ("migrated_packets", float_of_int h.migrated_packets);
            ];
        })
    rows

(* ------------------------------------------------------------------ *)
(* vm: §7 containers vs virtual machines                               *)
(* ------------------------------------------------------------------ *)

let run_vm () =
  section "§7  Containers vs virtual machines (north-south chain, 64B)";
  note "(paper: the prototype uses containers for light-weight rings; a VM port";
  note " pays NetVM-style delivery costs on every hop)";
  let kinds =
    [ ("vpn", "VPN"); ("mon", "Monitor"); ("fw", "Firewall"); ("lb", "LoadBalancer") ]
  in
  let policy =
    { Nfp_policy.Rule.bindings = kinds; rules = Nfp_policy.Rule.of_chain (List.map fst kinds) }
  in
  let out =
    match Compiler.compile policy with Ok o -> o | Error es -> failwith (String.concat ";" es)
  in
  let plan = match Tables.of_output out with Ok p -> p | Error e -> failwith e in
  let gen = gen_of_size 64 in
  let run label cost =
    let make engine ~output =
      Nfp_infra.System.make
        ~config:{ Nfp_infra.System.default_config with cost }
        ~plan ~nfs:(lookup_of kinds ()) engine ~output
    in
    let m = measure ~gen make in
    note "  %-12s %.1f us, %.2f Mpps" label m.latency_us m.mpps
  in
  run "containers" Nfp_sim.Cost.default;
  run "VMs" Nfp_sim.Cost.vm

(* ------------------------------------------------------------------ *)
(* classify: §5.1 two-level classifier vs linear scan                  *)
(* ------------------------------------------------------------------ *)

let run_classify () =
  section "§5.1  Flow-aware classification: microflow cache + tuple space";
  note "(the Classification Table resolves each packet's 5-tuple to a service";
  note " graph; a linear scan examines O(rules) entries per packet, the";
  note " two-level classifier pays one exact-match probe on a microflow-cache";
  note " hit and one hash probe per mask shape on a miss; Cost.classified";
  note " charges both as delay ahead of the classifier core)";
  let rate = 1.0 (* Mpps, fixed and far below saturation: the latency
                    delta between the two runs is pure lookup cost *) in
  let flows = 1024 in
  let packets = latency_packets in
  (* Tenant [t] owns dip 10.0.t.0/24; odd tenants also pin the protocol
     and tenants with bit 1 set also carry a source-port range, so the
     table spans four mask shapes however many tenants there are. *)
  let rule t =
    let dip = Int32.of_int ((10 lsl 24) lor ((t land 0xff) lsl 8)) in
    Nfp_packet.Flow_match.make ~dip_prefix:(dip, 24)
      ?proto:(if t land 1 = 1 then Some 17 else None)
      ?sport_range:(if t land 2 = 2 then Some (1024, 65535) else None)
      ()
  in
  let flow_of tenants fid =
    let t = fid mod tenants in
    let host = (fid / tenants) land 0xff in
    let dip = Int32.of_int ((10 lsl 24) lor ((t land 0xff) lsl 8) lor host) in
    let sip = Int32.of_int ((10 lsl 24) lor (200 lsl 16) lor fid) in
    Nfp_packet.Flow.make ~sip ~dip ~sport:(10000 + fid) ~dport:80
      ~proto:(if t land 1 = 1 then 17 else 6)
  in
  note "  %-8s %-6s %-7s %-11s %-11s %-9s %s" "tenants" "rules" "shapes"
    "scan (us)" "cached (us)" "hit rate" "evictions";
  List.iter
    (fun tenants ->
      let graphs =
        List.init tenants (fun t ->
            let name = Printf.sprintf "fwd%d" t in
            let profile_of _ = Nfp_nf.Registry.profile_of "Forwarder" in
            let plan =
              match Tables.plan ~profile_of (Graph.nf name) with
              | Ok p -> p
              | Error e -> failwith e
            in
            ( rule t,
              plan,
              fun n ->
                match Nfp_nf.Registry.instantiate "Forwarder" ~name:n with
                | Some nf -> nf
                | None -> failwith "no Forwarder implementation" ))
      in
      let shapes =
        Nfp_packet.Classifier.group_count
          (Nfp_packet.Classifier.create
             (Array.init tenants (fun t -> rule t)))
      in
      let gen =
        memoized (fun i ->
            let fid =
              Int64.to_int (Nfp_algo.Hashing.mix64 (Int64.of_int i))
              land (flows - 1)
            in
            Nfp_packet.Packet.create ~flow:(flow_of tenants fid)
              ~payload:(String.make 46 'x') ())
      in
      let run_mode classify =
        let sys = ref None in
        let make engine ~output =
          let s =
            Nfp_infra.System.make_multi ~classify
              ~config:
                { Nfp_infra.System.default_config with
                  cost = Nfp_sim.Cost.classified }
              ~graphs engine ~output
          in
          sys := Some s;
          s
        in
        let r =
          Nfp_sim.Harness.run ~make ~gen
            ~arrivals:(Nfp_sim.Harness.Uniform rate) ~packets ()
        in
        if r.unmatched <> 0 then
          failwith
            (Printf.sprintf "classify: %d packets missed the table" r.unmatched);
        let counters =
          match !sys with
          | Some s -> s.Nfp_sim.Harness.classifier ()
          | None -> Nfp_sim.Harness.no_classifier_counters
        in
        let us = Nfp_algo.Stats.mean r.latency /. 1000.0 in
        record_sample
          {
            mpps = rate;
            latency_us = us;
            p99_us = Nfp_algo.Stats.percentile r.latency 99.0 /. 1000.0;
            prov =
              {
                default_prov with
                label = Printf.sprintf "classify:%d-tenants" tenants;
                classify =
                  (match classify with `Scan -> "scan" | `Cached -> "cached");
              };
            extra = [];
          };
        (us, counters)
      in
      let scan_us, _ = run_mode `Scan in
      let cached_us, c = run_mode `Cached in
      let hit_rate =
        100.0 *. float_of_int c.Nfp_sim.Harness.hits
        /. float_of_int (max 1 (c.hits + c.misses))
      in
      note "  %-8d %-6d %-7d %-11.2f %-11.2f %7.1f%%  %d" tenants tenants
        shapes scan_us cached_us hit_rate c.evictions)
    [ 1; 8; 64; 256 ]

(* ------------------------------------------------------------------ *)
(* batch: breath size sweep on the fig7 forwarder chain                *)
(* ------------------------------------------------------------------ *)

let run_batch () =
  section "Batch  Breath size sweep (5-forwarder chain, 64B, NIC cap lifted)";
  note "(the fig7 rig saturates the 14.88 Mpps line rate at every batch size, so";
  note " this sweep lifts the NIC cap to expose the engine's own ceiling: Mpps is";
  note " the max lossless rate, wall is host seconds for the whole measurement.";
  note " Batch 1 is the per-packet legacy path; the breath engine's dispatch";
  note " amortization shows up as the throughput step and the wall-clock drop)";
  let kinds = forwarder_kinds 5 in
  let names = List.map fst kinds in
  let profile_of n = Nfp_nf.Registry.profile_of (List.assoc n kinds) in
  let plan =
    match Tables.plan ~profile_of (Graph.seq (List.map Graph.nf names)) with
    | Ok p -> p
    | Error e -> failwith e
  in
  let gen = gen_of_size 64 in
  note "";
  note "  %-7s %-9s %-10s %-10s %s" "batch" "Mpps" "mean(us)" "p99(us)" "wall(s)";
  List.iter
    (fun batch ->
      let make engine ~output =
        Nfp_infra.System.make ~batch_size:batch ~plan ~nfs:(lookup_of kinds ())
          engine ~output
      in
      let t0 = Unix.gettimeofday () in
      let m =
        measure ~hi:200.0
          ~prov:{ (prov (Printf.sprintf "batch:%d" batch)) with batch }
          ~gen make
      in
      let wall = Unix.gettimeofday () -. t0 in
      note "  %-7d %-9.2f %-10.2f %-10.2f %.2f" batch m.mpps m.latency_us m.p99_us
        wall)
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

(* ------------------------------------------------------------------ *)
(* faults: availability under crash storms, per recovery policy        *)
(* ------------------------------------------------------------------ *)

let run_faults () =
  section "Faults  Availability under crash storms (4 parallel firewalls, 64B)";
  note "(crash-rate sweep over the degree-4 rig of Fig. 11: every NF core crashes";
  note " at exponential intervals with the given MTBF; the watchdog detects each";
  note " failure from progress heartbeats and applies the recovery policy, while";
  note " mergers time out accumulations a dead branch would wedge. Availability";
  note " is completed/offered at a fixed 2.0 Mpps load; in BENCH_faults.json the";
  note " \"mpps\" field carries availability, not a rate)";
  let names = [ "fw0"; "fw1"; "fw2"; "fw3" ] in
  let nf_cores = List.map (fun n -> "mid1:" ^ n) names in
  let graph = Graph.par (List.map Graph.nf names) in
  let rate = 2.0 in
  let packets = 20000 in
  let horizon_ns = float_of_int packets /. rate *. 1000.0 in
  let policies =
    [
      ("Restart", Nfp_infra.System.Restart);
      ("Bypass", Nfp_infra.System.Bypass);
      ("Degrade", Nfp_infra.System.Degrade);
    ]
  in
  let mtbfs = [ None; Some 2.0e6; Some 1.0e6; Some 0.5e6 ] in
  let mtbf_label = function
    | None -> "none"
    | Some m -> Printf.sprintf "%.1f ms" (m /. 1e6)
  in
  note "";
  note "  %-9s %-8s | %-7s %-9s %-9s | %-8s %-8s %-8s %s" "policy" "MTBF" "avail"
    "mean(us)" "p99(us)" "crashes" "detects" "m.t.o." "lost";
  (* Policy x MTBF points are independent simulations; sweep them on
     the domain pool and print in submission order. *)
  let rows =
    Nfp_sim.Harness.parallel_runs
      (List.concat_map
         (fun (plabel, policy) ->
           List.map
             (fun mtbf () ->
               let gen = gen_of_size 64 in
               let plan =
                 match mtbf with
                 | None -> Nfp_sim.Fault.empty
                 | Some mtbf_ns ->
                     Nfp_sim.Fault.storm ~cores:nf_cores ~mtbf_ns ~horizon_ns ()
               in
               let fault =
                 {
                   Nfp_infra.System.default_fault_config with
                   plan;
                   recovery_of = (fun _ -> policy);
                 }
               in
               let make engine ~output =
                 fw_deploy ~copy_mode:`Share_all ~mergers:2 ~extra:300 ~graph names
                   ~fault engine ~output
               in
               let r =
                 Nfp_sim.Harness.run ~make ~gen
                   ~arrivals:(Nfp_sim.Harness.Uniform rate) ~packets ()
               in
               let h = r.health in
               let avail = float_of_int r.completed /. float_of_int r.offered in
               ( plabel,
                 mtbf_label mtbf,
                 avail,
                 Nfp_algo.Stats.mean r.latency /. 1000.0,
                 Nfp_algo.Stats.percentile r.latency 99.0 /. 1000.0,
                 h.crashes,
                 h.detections,
                 h.merge_timeouts,
                 r.offered - r.completed ))
             mtbfs)
         policies)
  in
  List.iter
    (fun (plabel, mlabel, avail, mean_us, p99_us, crashes, detects, mto, lost) ->
      record_sample
        {
          mpps = avail;
          latency_us = mean_us;
          p99_us;
          prov = prov (Printf.sprintf "faults:%s:mtbf-%s" plabel mlabel);
          extra = [];
        };
      note "  %-9s %-8s | %6.2f%% %-9.1f %-9.1f | %-8d %-8d %-8d %d" plabel mlabel
        (100.0 *. avail) mean_us p99_us crashes detects mto lost)
    rows

(* ------------------------------------------------------------------ *)
(* recovery: lossless restart vs checkpoint interval x crash rate      *)
(* ------------------------------------------------------------------ *)

let run_recovery () =
  section "Recovery  Availability vs checkpoint interval (4 parallel firewalls, 64B)";
  note "(Restart recovery on the degree-4 rig of Fig. 11 under crash storms. With";
  note " checkpointing on, a restarting core restores its last snapshot, replays";
  note " its input log — output suppressed, duplicates deduped at the mergers —";
  note " and re-admits the work the crash reclaimed; interval 0 is the lossy";
  note " flush-the-backlog baseline. Availability is completed/offered at a fixed";
  note " 2.0 Mpps load; in BENCH_recovery.json the \"mpps\" field carries";
  note " availability, not a rate)";
  let names = [ "fw0"; "fw1"; "fw2"; "fw3" ] in
  let nf_cores = List.map (fun n -> "mid1:" ^ n) names in
  let graph = Graph.par (List.map Graph.nf names) in
  let rate = 2.0 in
  let packets = 20000 in
  let horizon_ns = float_of_int packets /. rate *. 1000.0 in
  let intervals =
    [
      ("lossy", 0.0);
      ("400 us", 400_000.0);
      ("100 us", 100_000.0);
      ("25 us", 25_000.0);
    ]
  in
  let mtbfs = [ 2.0e6; 1.0e6; 0.5e6 ] in
  note "";
  note "  %-8s %-8s | %-7s %-9s %-9s | %-6s %-7s %-8s %s" "ckpt" "MTBF" "avail"
    "mean(us)" "p99(us)" "ckpts" "replay" "salvage" "lost";
  let rows =
    Nfp_sim.Harness.parallel_runs
      (List.concat_map
         (fun (ilabel, interval_ns) ->
           List.map
             (fun mtbf_ns () ->
               let gen = gen_of_size 64 in
               let fault =
                 {
                   Nfp_infra.System.default_fault_config with
                   plan = Nfp_sim.Fault.storm ~cores:nf_cores ~mtbf_ns ~horizon_ns ();
                   checkpoint_interval_ns = interval_ns;
                 }
               in
               (* Rings deep enough to buffer a typical outage. Lossless
                  restart never flushes admitted work, so any residual
                  loss here is admission refusal at the entry ring while
                  a replay-extended outage drains. *)
               let make engine ~output =
                 fw_deploy ~copy_mode:`Share_all ~mergers:2 ~ring_capacity:2048
                   ~extra:300 ~graph names ~fault engine ~output
               in
               let r =
                 Nfp_sim.Harness.run ~make ~gen
                   ~arrivals:(Nfp_sim.Harness.Uniform rate) ~packets ()
               in
               let h = r.health in
               let avail = float_of_int r.completed /. float_of_int r.offered in
               ( ilabel,
                 Printf.sprintf "%.1f ms" (mtbf_ns /. 1e6),
                 avail,
                 Nfp_algo.Stats.mean r.latency /. 1000.0,
                 Nfp_algo.Stats.percentile r.latency 99.0 /. 1000.0,
                 h.checkpoints,
                 h.replayed,
                 h.salvaged,
                 r.offered - r.completed ))
             mtbfs)
         intervals)
  in
  List.iter
    (fun (ilabel, mlabel, avail, mean_us, p99_us, ckpts, replayed, salvaged, lost) ->
      record_sample
        {
          mpps = avail;
          latency_us = mean_us;
          p99_us;
          prov = prov (Printf.sprintf "recovery:ckpt-%s:mtbf-%s" ilabel mlabel);
          extra = [];
        };
      note "  %-8s %-8s | %6.2f%% %-9.1f %-9.1f | %-6d %-7d %-8d %d" ilabel mlabel
        (100.0 *. avail) mean_us p99_us ckpts replayed salvaged lost)
    rows

(* ------------------------------------------------------------------ *)
(* overload: per-class goodput and tail latency past the knee          *)
(* ------------------------------------------------------------------ *)

let run_overload () =
  section "Overload  Per-class goodput and p99 past the knee (3 chains, 64B)";
  note "(three identical firewall chains at admission classes bronze/silver/gold;";
  note " past the knee the armed control plane sheds bronze first and preserves";
  note " gold's goodput and tail, where the unarmed rig degrades uniformly)";
  let make engine ~output =
    Nfp_infra.System.make_multi ~graphs:(overload_graphs ~extra:300 ()) engine
      ~output
  in
  let mx =
    Nfp_sim.Harness.max_lossless_mpps ~make ~gen:overload_gen
      ~packets:search_packets ~hi:14.88 ~iterations:8 ()
  in
  note "  rig knee (unarmed, all classes lossless): %.2f Mpps" mx;
  let fracs = [ 0.8; 1.0; 1.2; 1.5; 2.0 ] in
  let variants =
    [ ("off", None); ("on", Some Nfp_infra.System.default_overload_config) ]
  in
  let rows =
    Nfp_sim.Harness.parallel_runs
      (List.concat_map
         (fun (vlabel, overload) ->
           List.map
             (fun frac () ->
               let r, delivered, lat =
                 overload_run ?overload ~rate:(frac *. mx)
                   ~packets:latency_packets ()
               in
               let d = r.health.Nfp_sim.Harness.drops in
               (* Goodput in Mpps = packets per ns x 1000. *)
               let per_class =
                 List.map
                   (fun (cls, clabel) ->
                     let goodput =
                       float_of_int delivered.(cls) /. r.duration_ns *. 1000.0
                     in
                     let mean_us, p99_us =
                       if Nfp_algo.Stats.count lat.(cls) = 0 then (0.0, 0.0)
                       else
                         ( Nfp_algo.Stats.mean lat.(cls) /. 1000.0,
                           Nfp_algo.Stats.percentile lat.(cls) 99.0 /. 1000.0 )
                     in
                     (clabel, goodput, mean_us, p99_us, shed_of_class d cls))
                   overload_classes
               in
               (vlabel, frac, per_class, r.health))
             fracs)
         variants)
  in
  let last = ref "" in
  List.iter
    (fun (vlabel, frac, per_class, (h : Nfp_sim.Harness.health)) ->
      if !last <> vlabel then begin
        last := vlabel;
        note "";
        note "  admission %s: goodput Mpps / p99 us (shed)" vlabel;
        note "  %-8s %-22s %-22s %-22s %s" "load" "bronze" "silver" "gold"
          "episodes/degr"
      end;
      let cell (_, gp, _, p99, shed) =
        Printf.sprintf "%.2f/%.1f (%d)" gp p99 shed
      in
      (match per_class with
      | [ b; s; g ] ->
          note "  %3.0f%%     %-22s %-22s %-22s %d/%d" (100.0 *. frac) (cell b)
            (cell s) (cell g) h.Nfp_sim.Harness.pressure_episodes
            h.Nfp_sim.Harness.degrade_switches
      | _ -> ());
      (* One sample per class per load point; "mpps" carries the class's
         goodput, not a lossless-rate search result. *)
      List.iter
        (fun (clabel, gp, mean_us, p99_us, _) ->
          record_sample
            {
              mpps = gp;
              latency_us = mean_us;
              p99_us;
              prov =
                prov
                  (Printf.sprintf "overload:admission-%s:load-%.1fx:%s" vlabel
                     frac clabel);
              extra = [];
            })
        per_class)
    rows

(* ------------------------------------------------------------------ *)
(* links: goodput/latency vs fabric loss rate and partition duration   *)
(* ------------------------------------------------------------------ *)

let run_links () =
  section "Links  Goodput and latency over a lossy fabric (3-NF chain, 128B)";
  note "(every inter-core edge carries i.i.d. loss at the given rate; the raw";
  note " fabric delivers what survives, the reliable channels recover the rest";
  note " with seq/ack + NACK/RTO retransmission. Goodput is delivered Mpps at a";
  note " fixed 2.0 Mpps offered load; the partition sweep cuts the middle NF's";
  note " ingress link for the given window and reroutes around it once health";
  note " probes declare it Down — availability stays 1.0 at every duration)";
  let kinds = [ ("gw", "Gateway"); ("fw", "Firewall"); ("mon", "Monitor") ] in
  let graph = Graph.seq (List.map (fun (n, _) -> Graph.nf n) kinds) in
  let plan =
    let profile_of n = Nfp_nf.Registry.profile_of (List.assoc n kinds) in
    match Tables.plan ~profile_of graph with
    | Ok p -> p
    | Error e -> failwith e
  in
  let rate = 2.0 in
  let packets = 20000 in
  let deploy ?links engine ~output =
    Nfp_infra.System.make ?links
      ~config:{ Nfp_infra.System.default_config with ring_capacity = 8192 }
      ~plan
      ~nfs:(lookup_of kinds ())
      engine ~output
  in
  let sweep_point ?links label extras () =
    let gen = gen_of_size 128 in
    let r =
      Nfp_sim.Harness.run ~make:(deploy ?links) ~gen
        ~arrivals:(Nfp_sim.Harness.Uniform rate) ~packets ()
    in
    let l = r.health.Nfp_sim.Harness.links in
    let goodput =
      float_of_int r.completed /. r.duration_ns *. 1000.0
    in
    ( label,
      goodput,
      float_of_int r.completed /. float_of_int r.offered,
      Nfp_algo.Stats.mean r.latency /. 1000.0,
      Nfp_algo.Stats.percentile r.latency 99.0 /. 1000.0,
      l,
      extras )
  in
  let loss_rates = [ 0.0; 0.005; 0.01; 0.02; 0.05 ] in
  let loss_points =
    List.concat_map
      (fun p ->
        let specs =
          if p = 0.0 then [] else [ Nfp_sim.Fault.loss ~probability:p "*" ]
        in
        List.map
          (fun (mode, reliable) ->
            let links =
              {
                Nfp_infra.System.default_links_config with
                link_plan = Nfp_sim.Fault.link_plan specs;
                reliable;
              }
            in
            sweep_point ~links
              (Printf.sprintf "loss-%.3f:%s" p mode)
              [ ("loss_rate", p) ])
          [ ("raw", false); ("reliable", true) ])
      loss_rates
  in
  let durations = [ 0.0; 50_000.0; 200_000.0; 1_000_000.0; 5_000_000.0 ] in
  let partition_points =
    List.map
      (fun d ->
        let specs =
          if d = 0.0 then []
          else [ Nfp_sim.Fault.partition ~at_ns:2_000_000.0 ~duration_ns:d "mid1:fw" ]
        in
        let links =
          {
            Nfp_infra.System.default_links_config with
            link_plan = Nfp_sim.Fault.link_plan specs;
          }
        in
        sweep_point ~links
          (Printf.sprintf "partition-%.0fus:reliable" (d /. 1000.0))
          [ ("partition_us", d /. 1000.0) ])
      durations
  in
  note "";
  note "  %-26s | %-8s %-6s | %-9s %-9s | %-7s %-7s %-7s %s" "scenario" "goodput"
    "avail" "mean(us)" "p99(us)" "drops" "retx" "dedup" "reroutes";
  let rows = Nfp_sim.Harness.parallel_runs (loss_points @ partition_points) in
  List.iter
    (fun (label, goodput, avail, mean_us, p99_us, (l : Nfp_sim.Harness.link_stats), extras) ->
      record_sample
        {
          mpps = goodput;
          latency_us = mean_us;
          p99_us;
          prov = prov ("links:" ^ label);
          extra =
            extras
            @ [
                ("availability", avail);
                ("link_drops", float_of_int l.link_drops);
                ("retransmits", float_of_int l.retransmits);
                ("duplicates_suppressed", float_of_int l.duplicates_suppressed);
                ("reordered", float_of_int l.reordered);
                ("partitions", float_of_int l.partitions);
                ("reroutes", float_of_int l.reroutes);
              ];
        };
      note "  %-26s | %-8.3f %-6.3f | %-9.1f %-9.1f | %-7d %-7d %-7d %d" label
        goodput avail mean_us p99_us l.link_drops l.retransmits
        l.duplicates_suppressed l.reroutes)
    rows

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("stats", run_stats);
    ("fig7", run_fig7);
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("fig11", run_fig11);
    ("fig12", run_fig12);
    ("fig13", run_fig13);
    ("table4", run_table4);
    ("merger", run_merger);
    ("overhead", run_overhead);
    ("replay", run_replay);
    ("fig15", run_fig15);
    ("partition", run_partition);
    ("loadsweep", run_loadsweep);
    ("scale", run_scale);
    ("elastic", run_elastic);
    ("vm", run_vm);
    ("classify", run_classify);
    ("batch", run_batch);
    ("faults", run_faults);
    ("links", run_links);
    ("recovery", run_recovery);
    ("overload", run_overload);
    ("ablation", run_ablation);
    ("micro", run_micro);
  ]

let write_json name ~wall_clock_s samples =
  let file = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"experiment\": %S,\n  \"wall_clock_s\": %.3f,\n"
    name wall_clock_s;
  Printf.fprintf oc "  \"measurements\": [";
  List.iteri
    (fun i m ->
      Printf.fprintf oc
        "%s\n    { \"label\": %S, \"path\": %S, \"classify\": %S, \"batch\": %d,\n\
        \      \"mpps\": %.6f, \"latency_us\": %.6f, \"p99_us\": %.6f"
        (if i = 0 then "" else ",")
        m.prov.label m.prov.path m.prov.classify m.prov.batch m.mpps m.latency_us
        m.p99_us;
      List.iter (fun (k, v) -> Printf.fprintf oc ", \"%s\": %.6f" k v) m.extra;
      Printf.fprintf oc " }")
    samples;
  Printf.fprintf oc "%s]\n}\n" (if samples = [] then "" else "\n  ");
  close_out oc;
  note "wrote %s (%d measurements, %.1fs)" file (List.length samples) wall_clock_s

let run_experiment name f =
  if not !json_mode then f ()
  else begin
    json_samples := [];
    let t0 = Unix.gettimeofday () in
    f ();
    let wall_clock_s = Unix.gettimeofday () -. t0 in
    write_json name ~wall_clock_s (List.rev !json_samples)
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, selected = List.partition (fun a -> a = "--json") args in
  if flags <> [] then json_mode := true;
  match selected with
  | _ :: _ ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> run_experiment name f
          | None ->
              Printf.eprintf "unknown experiment %S; known: %s\n" name
                (String.concat " " (List.map fst experiments));
              exit 1)
        selected
  | [] -> List.iter (fun (name, f) -> run_experiment name f) experiments
