open Nfp_packet

type stats = { hits : unit -> int; misses : unit -> int; entries : unit -> int }

type Nf.state += State of (int, unit) Hashtbl.t * int Queue.t * int * int

let profile = Action.[ Read Field.Sip; Read Field.Dip; Read Field.Payload ]

(* The FIFO eviction order interleaves keys from every flow: which
   entry a miss evicts — and therefore which future packets hit —
   depends on the global arrival order, so the cache is honestly
   Sequential. *)
let state_access =
  State_access.
    [
      global General "object-table+fifo";
      global Commutative "hit-counter";
      global Commutative "miss-counter";
    ]

let create ?(name = "cache") ?(capacity = 4096) () =
  let table : (int, unit) Hashtbl.t ref = ref (Hashtbl.create 1024) in
  let order = ref (Queue.create ()) in
  let hits = ref 0 and misses = ref 0 in
  let process pkt =
    let key =
      Nfp_algo.Hashing.combine
        (Int32.to_int (Packet.dip pkt))
        (Nfp_algo.Hashing.fnv1a32 (Packet.payload pkt))
    in
    if Hashtbl.mem !table key then incr hits
    else begin
      incr misses;
      Hashtbl.add !table key ();
      Queue.add key !order;
      if Hashtbl.length !table > capacity then
        match Queue.take_opt !order with
        | Some old -> Hashtbl.remove !table old
        | None -> ()
    end;
    Nf.Forward
  in
  (* The digest covers the cache contents, not just its size: a restore
     that reconstructed the wrong keys (or the wrong FIFO order, which
     decides future evictions) must be detectable. *)
  let state_digest () =
    let acc =
      Hashtbl.fold
        (fun key () acc -> Nfp_algo.Hashing.combine acc key)
        !table
        (Nfp_algo.Hashing.combine !hits !misses)
    in
    Queue.fold Nfp_algo.Hashing.combine acc !order
  in
  let snapshot () = State (Hashtbl.copy !table, Queue.copy !order, !hits, !misses) in
  let restore = function
    | State (t, q, h, m) ->
        table := Hashtbl.copy t;
        order := Queue.copy q;
        hits := h;
        misses := m
    | _ -> invalid_arg "Caching.restore: foreign state"
  in
  ( Nf.make ~name ~kind:"Caching" ~profile
      ~cost_cycles:(fun _ -> 260)
      ~state_digest ~snapshot ~restore ~state_access process,
    {
      hits = (fun () -> !hits);
      misses = (fun () -> !misses);
      entries = (fun () -> Hashtbl.length !table);
    } )
