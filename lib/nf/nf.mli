(** The network-function abstraction.

    An NF is a named packet processor with a declared action profile and
    a cycle-cost model. Instances carry their own internal state
    (counters, tables, crypto contexts); construct one instance per
    deployed NF. The simulator charges [cost_cycles] per packet; the
    semantics come from [process]. *)

open Nfp_packet

type verdict =
  | Forward  (** packet (possibly modified in place) continues *)
  | Dropped  (** NF decided to drop; the runtime emits a nil packet *)

type state = ..
(** Opaque checkpoint payload. Each NF module extends this with its own
    constructor; the recovery subsystem only moves values of this type
    between {!t.snapshot} and {!t.restore}. *)

type degrade = {
  d_label : string;  (** e.g. ["sampled-1/8"], ["passthrough"] *)
  d_cost_cycles : Packet.t -> int;  (** must be cheaper than the full mode *)
  d_process : Packet.t -> verdict;  (** the coarsened semantics *)
}
(** A cheaper processing mode an NF can fall back to when its core is
    under occupancy pressure — distinct from the fault-[Degrade]
    recovery policy (which swaps the whole graph for a sequential
    twin). The coarsened semantics must stay safe: never corrupt
    packets, never violate the chain's merge discipline. The runtime
    marks every packet that took the degraded path so differential
    tests can separate them from full-fidelity traffic. *)

type t = {
  name : string;  (** instance name, unique within a deployment *)
  kind : string;  (** NF type, e.g. "Firewall" — keys into the registry *)
  profile : Action.t list;  (** declared action profile (paper Table 2) *)
  cost_cycles : Packet.t -> int;
      (** per-packet processing cost charged by the simulator *)
  process : Packet.t -> verdict;  (** the packet-processing semantics *)
  state_digest : unit -> int;
      (** hash of internal state; the action inspector uses it to detect
          reads that have no packet-visible effect (e.g. counters), and
          the recovery equivalence suite uses it to prove a replayed NF
          re-converged with the fault-free run *)
  snapshot : (unit -> state) option;
      (** capture the NF's internal state as an immutable checkpoint;
          the returned value must not alias live mutable structures *)
  restore : (state -> unit) option;
      (** install a previously captured checkpoint; must copy out of the
          state value so one checkpoint can be restored repeatedly *)
  state_access : State_access.t option;
      (** declared state-access profile; [None] means the NF makes no
          claim about its state, which the replication analysis treats
          as unsafe to replicate (strategy [Sequential]) *)
  fresh : (unit -> t) option;
      (** factory for a brand-new instance with the same construction
          parameters and empty state — the orchestrator calls it once
          per extra replica when sharding an NF across cores *)
  merge : (state list -> state) option;
      (** combine the snapshots of all replicas into the state a single
          unreplicated instance would hold: per-flow entries are
          disjoint-unioned, commutative components summed. Must be
          insensitive to the order of the snapshot list. Required (with
          [snapshot]/[restore]) for the [Shared_nothing] strategy. *)
  degrade : degrade option;
      (** optional pressure-degrade mode; [None] means the NF always
          runs at full fidelity (overload can only queue or shed around
          it) *)
  extract : ((Flow.t -> bool) -> state) option;
      (** [extract pred] removes every per-flow entry whose flow
          satisfies [pred] from the live state and returns a state value
          carrying exactly those entries (commutative scalar components
          are returned as zeros — they stay where they were counted,
          since they sum under {!t.merge}). The elastic controller uses
          this as the source half of a live migration; {!absorb} is the
          destination half. NFs with no per-flow state return their
          zero state. Required (on top of the [Shared_nothing]
          machinery) for an NF to be migrated at runtime. *)
}

val make :
  name:string ->
  kind:string ->
  profile:Action.t list ->
  cost_cycles:(Packet.t -> int) ->
  ?state_digest:(unit -> int) ->
  ?snapshot:(unit -> state) ->
  ?restore:(state -> unit) ->
  ?state_access:State_access.t ->
  ?fresh:(unit -> t) ->
  ?merge:(state list -> state) ->
  ?degrade:degrade ->
  ?extract:((Flow.t -> bool) -> state) ->
  (Packet.t -> verdict) ->
  t
(** Profile is normalized. [state_digest] defaults to a constant.
    [snapshot]/[restore] default to [None]: the recovery subsystem only
    arms checkpoint/replay for NFs that provide both. [state_access],
    [fresh] and [merge] default to [None]: the replication analysis only
    shards NFs that declare their state and provide the machinery.
    [extract] defaults to [None]: such NFs replicate but never migrate
    at runtime. *)

val absorb : t -> state -> unit
(** [absorb t shard] merges a state shard (typically the result of
    another replica's {!t.extract}) into [t]'s live state:
    [restore (merge [snapshot (); shard])].
    @raise Invalid_argument when [t] lacks snapshot/restore/merge. *)

val rename : t -> string -> t
(** Same NF type/state sharing the underlying closures under a new
    instance name (used to deploy several instances of one NF). *)

val pp : Format.formatter -> t -> unit
