open Nfp_packet

type mode = [ `Detect | `Prevent ]

type stats = { alerts : unit -> int; scanned : unit -> int }

type Nf.state += State of int * int

let default_signatures n =
  List.init n (fun i ->
      (* Snort-style payload tokens; deterministic, length 6-14. *)
      let len = 6 + (i mod 9) in
      String.init len (fun j -> Char.chr (97 + ((i * 31) + (j * 7)) mod 26)))

let base_profile =
  Action.
    [
      Read Field.Sip;
      Read Field.Dip;
      Read Field.Sport;
      Read Field.Dport;
      Read Field.Payload;
    ]

(* The Prevent verdict depends only on the packet's own payload and the
   immutable automaton, never on the counters, so IDS and IPS are both
   shardable: replicas reach identical per-packet verdicts. *)
let state_access =
  State_access.
    [
      global Read_only "signature-automaton";
      global Commutative "alerts-counter";
      global Commutative "scanned-counter";
    ]

let merge states =
  let alerts = ref 0 and scanned = ref 0 in
  List.iter
    (function
      | State (a, s) ->
          alerts := !alerts + a;
          scanned := !scanned + s
      | _ -> invalid_arg "Ids.merge: foreign state")
    states;
  State (!alerts, !scanned)

let rec create ?(name = "ids") ?(mode = `Detect) ?signatures () =
  let signatures = match signatures with Some s -> s | None -> default_signatures 100 in
  let automaton = Nfp_algo.Aho_corasick.build signatures in
  let alerts = ref 0 and scanned = ref 0 in
  let process pkt =
    incr scanned;
    if Nfp_algo.Aho_corasick.matches automaton (Packet.payload pkt) then begin
      incr alerts;
      match mode with `Detect -> Nf.Forward | `Prevent -> Nf.Dropped
    end
    else Nf.Forward
  in
  let profile = match mode with `Detect -> base_profile | `Prevent -> Action.Drop :: base_profile in
  let cost_cycles pkt = 2400 + (5 * String.length (Packet.payload pkt)) in
  (* Pressure-degrade mode: sampled inspection. Every 8th packet gets
     the full automaton scan; the rest are waved through for the flat
     dispatch cost. Deterministic (a plain counter, no PRNG) so a
     degraded run is replayable. *)
  let tick = ref 0 in
  let degrade =
    {
      Nf.d_label = "sampled-1/8";
      d_cost_cycles =
        (fun pkt ->
          if !tick mod 8 = 0 then 2400 + (5 * String.length (Packet.payload pkt))
          else 300);
      d_process =
        (fun pkt ->
          let sampled = !tick mod 8 = 0 in
          incr tick;
          if sampled then process pkt
          else Nf.Forward);
    }
  in
  (* The automaton is immutable after build; only the counters move. *)
  let snapshot () = State (!alerts, !scanned) in
  let restore = function
    | State (a, s) ->
        alerts := a;
        scanned := s
    | _ -> invalid_arg "Ids.restore: foreign state"
  in
  ( Nf.make ~name ~kind:(match mode with `Detect -> "IDS" | `Prevent -> "IPS") ~profile
      ~cost_cycles
      ~state_digest:(fun () -> Nfp_algo.Hashing.combine !alerts !scanned)
      ~snapshot ~restore ~state_access
      ~fresh:(fun () -> fst (create ~name ~mode ~signatures ()))
      ~merge ~degrade
        (* Only commutative counters: migration moves the zero state. *)
      ~extract:(fun _ -> State (0, 0))
      process,
    { alerts = (fun () -> !alerts); scanned = (fun () -> !scanned) } )
