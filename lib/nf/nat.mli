(** Source NAT (paper Table 2: iptables NAT, R/W on all 5-tuple
    fields).

    Outbound packets get their source rewritten to the public address
    and a port allocated from a pool; the translation table is kept so
    the same flow keeps its binding and return traffic can be reversed
    with {!translate_back}. *)

type stats = { active_bindings : unit -> int; exhausted : unit -> int }

val create :
  ?name:string ->
  ?public_ip:int32 ->
  ?port_base:int ->
  ?port_count:int ->
  ?alloc:[ `Sequential | `Hashed ] ->
  unit ->
  Nf.t * stats
(** Packets are dropped when the port pool is exhausted.

    [alloc] picks the port allocator (default [`Sequential], a global
    cursor — bit-identical to the historical behaviour). The cursor is
    a global general write, so a sequential-alloc NAT derives the
    [Sequential] replication strategy; [`Hashed] computes each flow's
    port from the flow hash instead (distinct flows may share a port),
    which removes the global write and makes the NAT RSS-shardable
    ([Shared_nothing]). *)
