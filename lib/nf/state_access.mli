(** State-access profiles: what Table 2's action profiles say about
    packets, these say about NF-internal state.

    Each stateful NF declares its state as named components, each with
    a scope and an access mode. The replication analysis
    (Nfp_core.Replication) derives a safe intra-NF replication strategy
    from the declaration alone, Maestro-style: per-flow state shards
    behind an RSS stage, commutative state replicates and merges on
    digest, and any globally-ordered write pins the NF to a single
    sequential instance. *)

type scope =
  | Per_flow
      (** keyed by (a function of) the packet's 5-tuple: every access a
          packet triggers lands in the partition its flow hashes to, so
          flow-sharded replicas never touch each other's entries *)
  | Global  (** shared across flows *)

type mode =
  | Read_only  (** never written after construction (rulesets, FIBs) *)
  | Commutative
      (** writes commute and the NF's packet-visible behaviour never
          reads the value (counters, byte tallies): replicas may each
          hold a partial value, recombined by [Nf.merge] *)
  | General
      (** order-dependent read-modify-write that can influence output
          (allocators, token buckets, FIFO evictions) *)

type component = { label : string; scope : scope; mode : mode }

type t = component list
(** A declared profile. The empty list means "provably stateless". *)

val component : label:string -> scope:scope -> mode:mode -> component

val per_flow : mode -> string -> component
(** [per_flow mode label] — scope {!Per_flow}. *)

val global : mode -> string -> component
(** [global mode label] — scope {!Global}. *)

val scope_to_string : scope -> string
val mode_to_string : mode -> string
val pp_component : Format.formatter -> component -> unit
val pp : Format.formatter -> t -> unit
