open Nfp_packet

type stats = { redirected : unit -> int }

type Nf.state += State of int

let profile =
  Action.
    [
      Read Field.Dip; Write Field.Dip; Read Field.Payload; Write Field.Payload;
      Write Field.Len;
    ]

let default_origin = Int32.of_int ((198 lsl 24) lor (51 lsl 16) lor (100 lsl 8) lor 10)

let state_access = State_access.[ global Commutative "redirected-counter" ]

let merge states =
  let redirected = ref 0 in
  List.iter
    (function
      | State r -> redirected := !redirected + r
      | _ -> invalid_arg "Proxy.merge: foreign state")
    states;
  State !redirected

let rec create ?(name = "proxy") ?(origin = default_origin) ?(via = "Via:nfp-proxy ") () =
  let redirected = ref 0 in
  let process pkt =
    Packet.set_dip pkt origin;
    Packet.set_payload pkt (via ^ Packet.payload pkt);
    incr redirected;
    Nf.Forward
  in
  let snapshot () = State !redirected in
  let restore = function
    | State r -> redirected := r
    | _ -> invalid_arg "Proxy.restore: foreign state"
  in
  ( Nf.make ~name ~kind:"Proxy" ~profile
      ~cost_cycles:(fun _ -> 380)
      ~state_digest:(fun () -> !redirected)
      ~snapshot ~restore ~state_access
      ~fresh:(fun () -> fst (create ~name ~origin ~via ()))
      ~merge
        (* Only a commutative counter: migration moves the zero state. *)
      ~extract:(fun _ -> State 0)
      process,
    { redirected = (fun () -> !redirected) } )
