open Nfp_packet

type stats = { active_bindings : unit -> int; exhausted : unit -> int }

type Nf.state += State of (Flow.t, int) Hashtbl.t * int * int

let profile =
  Action.
    [
      Read Field.Sip;
      Write Field.Sip;
      Read Field.Dip;
      Write Field.Dip;
      Read Field.Sport;
      Write Field.Sport;
      Read Field.Dport;
      Write Field.Dport;
      Drop;
    ]

let default_public = Int32.of_int ((203 lsl 24) lor (113 lsl 8) lor 7)

let create ?(name = "nat") ?(public_ip = default_public) ?(port_base = 20000)
    ?(port_count = 10000) () =
  (* State sits behind a ref so restore can swap in a [Hashtbl.copy] of
     the checkpoint: the copy preserves bucket structure, which keeps
     the order-dependent fold in [state_digest] byte-stable across a
     snapshot/restore/replay cycle. *)
  let bindings : (Flow.t, int) Hashtbl.t ref = ref (Hashtbl.create 1024) in
  let next_port = ref 0 in
  let exhausted = ref 0 in
  let process pkt =
    let flow = Packet.flow pkt in
    let port =
      match Hashtbl.find_opt !bindings flow with
      | Some p -> Some p
      | None ->
          if !next_port >= port_count then None
          else begin
            let p = port_base + !next_port in
            incr next_port;
            Hashtbl.add !bindings flow p;
            Some p
          end
    in
    match port with
    | None ->
        incr exhausted;
        Nf.Dropped
    | Some p ->
        Packet.set_sip pkt public_ip;
        Packet.set_sport pkt p;
        Nf.Forward
  in
  let state_digest () =
    Hashtbl.fold
      (fun flow port acc ->
        Nfp_algo.Hashing.combine acc (Nfp_algo.Hashing.combine (Flow.hash flow) port))
      !bindings
      (Nfp_algo.Hashing.combine !next_port !exhausted)
  in
  let snapshot () = State (Hashtbl.copy !bindings, !next_port, !exhausted) in
  let restore = function
    | State (b, np, ex) ->
        bindings := Hashtbl.copy b;
        next_port := np;
        exhausted := ex
    | _ -> invalid_arg "Nat.restore: foreign state"
  in
  ( Nf.make ~name ~kind:"NAT" ~profile ~cost_cycles:(fun _ -> 240) ~state_digest
      ~snapshot ~restore process,
    {
      active_bindings = (fun () -> Hashtbl.length !bindings);
      exhausted = (fun () -> !exhausted);
    } )
