open Nfp_packet

type stats = { active_bindings : unit -> int; exhausted : unit -> int }

type Nf.state += State of (Flow.t, int) Hashtbl.t * int * int

let profile =
  Action.
    [
      Read Field.Sip;
      Write Field.Sip;
      Read Field.Dip;
      Write Field.Dip;
      Read Field.Sport;
      Write Field.Sport;
      Read Field.Dport;
      Write Field.Dport;
      Drop;
    ]

let default_public = Int32.of_int ((203 lsl 24) lor (113 lsl 8) lor 7)

(* The binding table is per-flow, but the default port allocator is a
   global cursor: which port a flow gets depends on the cross-flow
   arrival order, so a sharded run could hand out different ports than
   a sequential one. `Hashed derives the port from the flow itself
   (collisions between flows are acceptable in this one-way simulator —
   two flows sharing a public port still translate deterministically),
   which removes the global write and makes the NAT shardable. *)
let state_access_of = function
  | `Sequential ->
      State_access.
        [
          per_flow General "binding-table";
          global General "port-allocator";
          global Commutative "exhausted-counter";
        ]
  | `Hashed ->
      State_access.
        [
          per_flow General "binding-table"; global Commutative "exhausted-counter";
        ]

(* Under `Hashed the same flow maps to the same port in every replica,
   so a duplicate binding (e.g. one left behind by a Degrade twin
   chain) carries an equal value and the union is conflict-free. *)
let merge states =
  let bindings = Hashtbl.create 1024 in
  let next_port = ref 0 and exhausted = ref 0 in
  List.iter
    (function
      | State (b, np, ex) ->
          next_port := !next_port + np;
          exhausted := !exhausted + ex;
          Hashtbl.iter (fun flow port -> Hashtbl.replace bindings flow port) b
      | _ -> invalid_arg "Nat.merge: foreign state")
    states;
  State (bindings, !next_port, !exhausted)

let rec create ?(name = "nat") ?(public_ip = default_public) ?(port_base = 20000)
    ?(port_count = 10000) ?(alloc = `Sequential) () =
  (* State sits behind a ref so restore can swap in a [Hashtbl.copy] of
     the checkpoint. *)
  let bindings : (Flow.t, int) Hashtbl.t ref = ref (Hashtbl.create 1024) in
  let next_port = ref 0 in
  let exhausted = ref 0 in
  let alloc_port flow =
    match alloc with
    | `Sequential ->
        if !next_port >= port_count then None
        else begin
          let p = port_base + !next_port in
          incr next_port;
          Some p
        end
    | `Hashed -> Some (port_base + (Flow.hash flow mod port_count))
  in
  let process pkt =
    let flow = Packet.flow pkt in
    let port =
      match Hashtbl.find_opt !bindings flow with
      | Some p -> Some p
      | None -> (
          match alloc_port flow with
          | Some p ->
              Hashtbl.add !bindings flow p;
              Some p
          | None -> None)
    in
    match port with
    | None ->
        incr exhausted;
        Nf.Dropped
    | Some p ->
        Packet.set_sip pkt public_ip;
        Packet.set_sport pkt p;
        Nf.Forward
  in
  (* Commutative fold (sum of per-entry hashes) so the digest is
     insensitive to iteration order — both the snapshot/restore/replay
     cycle and shard merging permute Hashtbl internals. *)
  let state_digest () =
    Hashtbl.fold
      (fun flow port acc ->
        (acc + Nfp_algo.Hashing.combine (Flow.hash flow) port) land max_int)
      !bindings
      (Nfp_algo.Hashing.combine !next_port !exhausted)
  in
  let snapshot () = State (Hashtbl.copy !bindings, !next_port, !exhausted) in
  let restore = function
    | State (b, np, ex) ->
        bindings := Hashtbl.copy b;
        next_port := np;
        exhausted := ex
    | _ -> invalid_arg "Nat.restore: foreign state"
  in
  (* Migration source half: the matching flows' bindings move with the
     flows (the per-flow General component); the exhausted counter is
     commutative and stays put; the port cursor only exists under
     `Sequential, which is never shardable, so 0 is carried. *)
  let extract pred =
    let moved = Hashtbl.create 64 in
    Hashtbl.iter (fun flow p -> if pred flow then Hashtbl.replace moved flow p) !bindings;
    Hashtbl.iter (fun flow _ -> Hashtbl.remove !bindings flow) moved;
    State (moved, 0, 0)
  in
  ( Nf.make ~name ~kind:"NAT" ~profile ~cost_cycles:(fun _ -> 240) ~state_digest
      ~snapshot ~restore ~state_access:(state_access_of alloc)
      ~fresh:(fun () ->
        fst (create ~name ~public_ip ~port_base ~port_count ~alloc ()))
      ~merge ~extract process,
    {
      active_bindings = (fun () -> Hashtbl.length !bindings);
      exhausted = (fun () -> !exhausted);
    } )
