open Nfp_packet

type rule = {
  sip_prefix : int32 * int;
  dip_prefix : int32 * int;
  sport_range : int * int;
  dport_range : int * int;
  proto : int option;
  permit : bool;
}

let any_rule ~permit =
  {
    sip_prefix = (0l, 0);
    dip_prefix = (0l, 0);
    sport_range = (0, 0xffff);
    dport_range = (0, 0xffff);
    proto = None;
    permit;
  }

let prefix_matches (prefix, len) addr =
  len = 0
  ||
  let mask = Int32.shift_left (-1l) (32 - len) in
  Int32.equal (Int32.logand addr mask) (Int32.logand prefix mask)

let in_range (lo, hi) v = v >= lo && v <= hi

let matches rule pkt =
  prefix_matches rule.sip_prefix (Packet.sip pkt)
  && prefix_matches rule.dip_prefix (Packet.dip pkt)
  && in_range rule.sport_range (Packet.sport pkt)
  && in_range rule.dport_range (Packet.dport pkt)
  && match rule.proto with None -> true | Some p -> p = Packet.proto pkt

let default_acl n =
  (* Deny a spread of /24s and port bands; deterministic so tests and
     benches see identical behaviour. *)
  List.init n (fun i ->
      let octet2 = (i * 7) mod 250 in
      let octet3 = (i * 13) mod 250 in
      {
        sip_prefix = (Int32.of_int ((10 lsl 24) lor (octet2 lsl 16) lor (octet3 lsl 8)), 24);
        dip_prefix = (0l, 0);
        sport_range = (0, 0xffff);
        dport_range = ((i * 101) mod 60000, ((i * 101) mod 60000) + 50);
        proto = None;
        permit = false;
      })

type stats = { passed : unit -> int; dropped : unit -> int }

type Nf.state += State of int * int

let profile =
  Action.
    [ Read Field.Sip; Read Field.Dip; Read Field.Sport; Read Field.Dport; Drop ]

let state_access =
  State_access.
    [
      global Read_only "acl";
      global Commutative "passed-counter";
      global Commutative "dropped-counter";
    ]

let merge states =
  let passed = ref 0 and dropped = ref 0 in
  List.iter
    (function
      | State (p, d) ->
          passed := !passed + p;
          dropped := !dropped + d
      | _ -> invalid_arg "Firewall.merge: foreign state")
    states;
  State (!passed, !dropped)

let rec create ?(name = "fw") ?(extra_cycles = 0) ?acl () =
  let acl = match acl with Some a -> a | None -> default_acl 100 in
  let passed = ref 0 and dropped = ref 0 in
  let process pkt =
    let verdict =
      match List.find_opt (fun r -> matches r pkt) acl with
      | Some r when not r.permit -> Nf.Dropped
      | Some _ | None -> Nf.Forward
    in
    (match verdict with Nf.Forward -> incr passed | Nf.Dropped -> incr dropped);
    verdict
  in
  let cost_cycles _ = 190 + extra_cycles in
  let snapshot () = State (!passed, !dropped) in
  let restore = function
    | State (p, d) ->
        passed := p;
        dropped := d
    | _ -> invalid_arg "Firewall.restore: foreign state"
  in
  ( Nf.make ~name ~kind:"Firewall" ~profile ~cost_cycles
      ~state_digest:(fun () -> Nfp_algo.Hashing.combine !passed !dropped)
      ~snapshot ~restore ~state_access
      ~fresh:(fun () -> fst (create ~name ~extra_cycles ~acl ()))
      ~merge
        (* Only commutative counters: migration moves the zero state. *)
      ~extract:(fun _ -> State (0, 0))
      process,
    { passed = (fun () -> !passed); dropped = (fun () -> !dropped) } )
