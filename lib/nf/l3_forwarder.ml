open Nfp_packet

type stats = {
  forwarded : unit -> int;
  no_route : unit -> int;
  last_next_hop : unit -> int option;
}

type Nf.state += State of int * int * int option

let build_table n =
  let table : int Nfp_algo.Lpm.t = Nfp_algo.Lpm.create () in
  for i = 0 to n - 1 do
    (* Prefixes spread over 10.0.0.0/8 with lengths 16..28. *)
    let len = 16 + (i mod 13) in
    let prefix =
      Int32.of_int ((10 lsl 24) lor ((i * 2654435761) land 0x00ffff00))
    in
    Nfp_algo.Lpm.add table ~prefix ~len (i mod 16)
  done;
  table

(* [last] is a last-writer-wins cell read back by telemetry and folded
   into the digest: its final value depends on which packet the NF saw
   last across all flows, a global general write. That one cell pins
   the forwarder to Sequential — an honest cost of keeping the
   telemetry; a deployment that dropped [last_next_hop] would be
   Shared_nothing like the firewall. *)
let state_access =
  State_access.
    [
      global Read_only "fib";
      global Commutative "forwarded-counter";
      global Commutative "no-route-counter";
      global General "last-next-hop";
    ]

let create ?(name = "fwd") ?(routes = 1000) () =
  let table = build_table routes in
  let forwarded = ref 0 and no_route = ref 0 in
  let last : int option ref = ref None in
  let process pkt =
    (match Nfp_algo.Lpm.lookup table (Packet.dip pkt) with
    | Some hop -> last := Some hop
    | None ->
        incr no_route;
        last := Some 0);
    incr forwarded;
    Nf.Forward
  in
  let snapshot () = State (!forwarded, !no_route, !last) in
  let restore = function
    | State (f, n, l) ->
        forwarded := f;
        no_route := n;
        last := l
    | _ -> invalid_arg "L3_forwarder.restore: foreign state"
  in
  ( Nf.make ~name ~kind:"Forwarder"
      ~profile:[ Action.Read Field.Dip ]
      ~cost_cycles:(fun _ -> 110)
      ~state_digest:(fun () ->
        Nfp_algo.Hashing.combine !forwarded
          (Nfp_algo.Hashing.combine !no_route (match !last with Some h -> h + 1 | None -> 0)))
      ~snapshot ~restore ~state_access process,
    {
      forwarded = (fun () -> !forwarded);
      no_route = (fun () -> !no_route);
      last_next_hop = (fun () -> !last);
    } )
