open Nfp_packet

type stats = { sessions : unit -> int; packets : unit -> int }

type Nf.state += State of (int32 * int32, int) Hashtbl.t * int

let profile = Action.[ Read Field.Sip; Read Field.Dip ]

let create ?(name = "gw") () =
  let sessions : (int32 * int32, int) Hashtbl.t ref = ref (Hashtbl.create 256) in
  let packets = ref 0 in
  let process pkt =
    let key = (Packet.sip pkt, Packet.dip pkt) in
    let n = match Hashtbl.find_opt !sessions key with Some n -> n | None -> 0 in
    Hashtbl.replace !sessions key (n + 1);
    incr packets;
    Nf.Forward
  in
  let state_digest () =
    Hashtbl.fold
      (fun (sip, dip) n acc ->
        Nfp_algo.Hashing.combine acc
          (Nfp_algo.Hashing.combine (Int32.to_int sip)
             (Nfp_algo.Hashing.combine (Int32.to_int dip) n)))
      !sessions 17
  in
  let snapshot () = State (Hashtbl.copy !sessions, !packets) in
  let restore = function
    | State (s, n) ->
        sessions := Hashtbl.copy s;
        packets := n
    | _ -> invalid_arg "Gateway.restore: foreign state"
  in
  ( Nf.make ~name ~kind:"Gateway" ~profile ~cost_cycles:(fun _ -> 150) ~state_digest
      ~snapshot ~restore process,
    { sessions = (fun () -> Hashtbl.length !sessions); packets = (fun () -> !packets) } )
