open Nfp_packet

type stats = { sessions : unit -> int; packets : unit -> int }

type Nf.state += State of (int32 * int32, int) Hashtbl.t * int

let profile = Action.[ Read Field.Sip; Read Field.Dip ]

(* The (sip, dip) session key is coarser than a 5-tuple, so flows from
   different shards can touch the same entry — but the only write is a
   commutative increment the NF never reads back, so partial counts sum
   across replicas. Hence Global/Commutative, not Per_flow. *)
let state_access =
  State_access.
    [
      global Commutative "session-counters"; global Commutative "packet-counter";
    ]

let merge states =
  let sessions = Hashtbl.create 256 and packets = ref 0 in
  List.iter
    (function
      | State (s, n) ->
          packets := !packets + n;
          Hashtbl.iter
            (fun key c ->
              let prev =
                match Hashtbl.find_opt sessions key with Some p -> p | None -> 0
              in
              Hashtbl.replace sessions key (prev + c))
            s
      | _ -> invalid_arg "Gateway.merge: foreign state")
    states;
  State (sessions, !packets)

let rec create ?(name = "gw") () =
  let sessions : (int32 * int32, int) Hashtbl.t ref = ref (Hashtbl.create 256) in
  let packets = ref 0 in
  let process pkt =
    let key = (Packet.sip pkt, Packet.dip pkt) in
    let n = match Hashtbl.find_opt !sessions key with Some n -> n | None -> 0 in
    Hashtbl.replace !sessions key (n + 1);
    incr packets;
    Nf.Forward
  in
  (* Commutative fold (sum of per-entry hashes) so the digest survives
     shard merging, which permutes iteration order. *)
  let state_digest () =
    Hashtbl.fold
      (fun (sip, dip) n acc ->
        (acc
        + Nfp_algo.Hashing.combine (Int32.to_int sip)
            (Nfp_algo.Hashing.combine (Int32.to_int dip) n))
        land max_int)
      !sessions !packets
  in
  let snapshot () = State (Hashtbl.copy !sessions, !packets) in
  let restore = function
    | State (s, n) ->
        sessions := Hashtbl.copy s;
        packets := n
    | _ -> invalid_arg "Gateway.restore: foreign state"
  in
  (* Migration source half: nothing is per-flow here — the (sip, dip)
     session key is coarser than a 5-tuple and both components are
     commutative — so the zero state moves and the counts stay where
     they were made; [merge] sums them back together. *)
  let extract _pred = State (Hashtbl.create 1, 0) in
  ( Nf.make ~name ~kind:"Gateway" ~profile ~cost_cycles:(fun _ -> 150) ~state_digest
      ~snapshot ~restore ~state_access
      ~fresh:(fun () -> fst (create ~name ()))
      ~merge ~extract process,
    { sessions = (fun () -> Hashtbl.length !sessions); packets = (fun () -> !packets) } )
