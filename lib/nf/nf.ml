open Nfp_packet

type verdict = Forward | Dropped

(* Extensible so every NF module can declare its own checkpoint payload
   without this module knowing about NAT bindings or cache tables. *)
type state = ..

(* A cheaper processing mode an NF can fall back to when its core is
   under occupancy pressure — distinct from the fault-Degrade recovery
   policy (which swaps the whole graph for a sequential twin). The
   semantics may coarsen (sampled inspection, passthrough compression)
   but must stay safe: never corrupt packets, never violate the chain's
   merge discipline. *)
type degrade = {
  d_label : string;  (* e.g. "sampled-1/8", "passthrough" *)
  d_cost_cycles : Packet.t -> int;
  d_process : Packet.t -> verdict;
}

type t = {
  name : string;
  kind : string;
  profile : Action.t list;
  cost_cycles : Packet.t -> int;
  process : Packet.t -> verdict;
  state_digest : unit -> int;
  snapshot : (unit -> state) option;
  restore : (state -> unit) option;
  state_access : State_access.t option;
  fresh : (unit -> t) option;
  merge : (state list -> state) option;
  degrade : degrade option;
  extract : ((Flow.t -> bool) -> state) option;
}

let make ~name ~kind ~profile ~cost_cycles ?(state_digest = fun () -> 0) ?snapshot
    ?restore ?state_access ?fresh ?merge ?degrade ?extract process =
  {
    name;
    kind;
    profile = Action.normalize profile;
    cost_cycles;
    process;
    state_digest;
    snapshot;
    restore;
    state_access;
    fresh;
    merge;
    degrade;
    extract;
  }

(* Fold a shard of state carved out of another replica into this one:
   merge the carried per-flow entries (and any commutative increments)
   with a snapshot of the live state, then restore the union. The
   elastic migration commit pairs this with [extract] on the source —
   entries move exactly once, so the deployment-wide merged digest is
   invariant across the handover. *)
let absorb t shard =
  match (t.snapshot, t.restore, t.merge) with
  | Some snapshot, Some restore, Some merge -> restore (merge [ snapshot (); shard ])
  | _ -> invalid_arg "Nf.absorb: NF lacks snapshot/restore/merge"

let rename t name = { t with name }

let pp fmt t = Format.fprintf fmt "%s:%s %a" t.name t.kind Action.pp_profile t.profile
