open Nfp_packet

type verdict = Forward | Dropped

(* Extensible so every NF module can declare its own checkpoint payload
   without this module knowing about NAT bindings or cache tables. *)
type state = ..

type t = {
  name : string;
  kind : string;
  profile : Action.t list;
  cost_cycles : Packet.t -> int;
  process : Packet.t -> verdict;
  state_digest : unit -> int;
  snapshot : (unit -> state) option;
  restore : (state -> unit) option;
  state_access : State_access.t option;
  fresh : (unit -> t) option;
  merge : (state list -> state) option;
}

let make ~name ~kind ~profile ~cost_cycles ?(state_digest = fun () -> 0) ?snapshot
    ?restore ?state_access ?fresh ?merge process =
  {
    name;
    kind;
    profile = Action.normalize profile;
    cost_cycles;
    process;
    state_digest;
    snapshot;
    restore;
    state_access;
    fresh;
    merge;
  }

let rename t name = { t with name }

let pp fmt t = Format.fprintf fmt "%s:%s %a" t.name t.kind Action.pp_profile t.profile
