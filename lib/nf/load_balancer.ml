open Nfp_packet

type stats = { per_backend : unit -> int array }

type Nf.state += State of int array

let default_backends =
  Array.init 8 (fun i -> Int32.of_int ((172 lsl 24) lor (16 lsl 16) lor (i + 1)))

let default_vip = Int32.of_int ((192 lsl 24) lor (168 lsl 16) lor 1)

let profile =
  Action.
    [
      Read Field.Sip;
      Write Field.Sip;
      Read Field.Dip;
      Write Field.Dip;
      Read Field.Sport;
      Read Field.Dport;
    ]

(* The backend pick is a pure function of the flow hash, not of the
   counters — the counters only tally the choice — so replicas reach
   identical rewrites and the per-backend counts sum. *)
let state_access =
  State_access.[ global Commutative "backend-counters" ]

let merge states =
  match states with
  | [] -> invalid_arg "Load_balancer.merge: no states"
  | State first :: _ ->
      let counts = Array.make (Array.length first) 0 in
      List.iter
        (function
          | State c ->
              Array.iteri (fun i n -> counts.(i) <- counts.(i) + n) c
          | _ -> invalid_arg "Load_balancer.merge: foreign state")
        states;
      State counts
  | _ -> invalid_arg "Load_balancer.merge: foreign state"

let rec create ?(name = "lb") ?(vip = default_vip) ?(backends = default_backends) () =
  if Array.length backends = 0 then invalid_arg "Load_balancer.create: no backends";
  let counts = Array.make (Array.length backends) 0 in
  let process pkt =
    let h = Flow.hash (Packet.flow pkt) in
    let i = h mod Array.length backends in
    counts.(i) <- counts.(i) + 1;
    Packet.set_dip pkt backends.(i);
    Packet.set_sip pkt vip;
    Nf.Forward
  in
  let snapshot () = State (Array.copy counts) in
  let restore = function
    | State saved -> Array.blit saved 0 counts 0 (Array.length counts)
    | _ -> invalid_arg "Load_balancer.restore: foreign state"
  in
  ( Nf.make ~name ~kind:"LoadBalancer" ~profile
      ~cost_cycles:(fun _ -> 200)
      ~state_digest:(fun () -> Array.fold_left Nfp_algo.Hashing.combine 17 counts)
      ~snapshot ~restore ~state_access
      ~fresh:(fun () -> fst (create ~name ~vip ~backends ()))
      ~merge
        (* Only commutative counters: migration moves the zero state. *)
      ~extract:(fun _ -> State (Array.make (Array.length backends) 0))
      process,
    { per_backend = (fun () -> Array.copy counts) } )
