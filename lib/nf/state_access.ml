type scope = Per_flow | Global
type mode = Read_only | Commutative | General
type component = { label : string; scope : scope; mode : mode }
type t = component list

let component ~label ~scope ~mode = { label; scope; mode }
let per_flow mode label = { label; scope = Per_flow; mode }
let global mode label = { label; scope = Global; mode }

let scope_to_string = function Per_flow -> "per-flow" | Global -> "global"

let mode_to_string = function
  | Read_only -> "read-only"
  | Commutative -> "commutative-write"
  | General -> "general-write"

let pp_component fmt c =
  Format.fprintf fmt "%s:%s/%s" c.label (scope_to_string c.scope) (mode_to_string c.mode)

let pp fmt t =
  if t = [] then Format.pp_print_string fmt "stateless"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      pp_component fmt t
