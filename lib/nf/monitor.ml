open Nfp_packet

type counter = { packets : int; bytes : int }

type stats = {
  flows : unit -> int;
  lookup : Flow.t -> counter option;
  total_packets : unit -> int;
}

type Nf.state += State of (Flow.t, counter) Hashtbl.t * int

let profile =
  Action.
    [ Read Field.Sip; Read Field.Dip; Read Field.Sport; Read Field.Dport; Read Field.Len ]

let create ?(name = "mon") () =
  let table : (Flow.t, counter) Hashtbl.t ref = ref (Hashtbl.create 1024) in
  let total = ref 0 in
  let process pkt =
    let flow = Packet.flow pkt in
    let prev =
      match Hashtbl.find_opt !table flow with Some c -> c | None -> { packets = 0; bytes = 0 }
    in
    Hashtbl.replace !table flow
      { packets = prev.packets + 1; bytes = prev.bytes + Packet.wire_length pkt };
    incr total;
    Nf.Forward
  in
  let state_digest () =
    Hashtbl.fold
      (fun flow c acc ->
        Nfp_algo.Hashing.combine acc
          (Nfp_algo.Hashing.combine (Flow.hash flow)
             (Nfp_algo.Hashing.combine c.packets c.bytes)))
      !table 17
  in
  let snapshot () = State (Hashtbl.copy !table, !total) in
  let restore = function
    | State (t, n) ->
        table := Hashtbl.copy t;
        total := n
    | _ -> invalid_arg "Monitor.restore: foreign state"
  in
  ( Nf.make ~name ~kind:"Monitor" ~profile ~cost_cycles:(fun _ -> 220) ~state_digest
      ~snapshot ~restore process,
    {
      flows = (fun () -> Hashtbl.length !table);
      lookup = (fun f -> Hashtbl.find_opt !table f);
      total_packets = (fun () -> !total);
    } )
