open Nfp_packet

type counter = { packets : int; bytes : int }

type stats = {
  flows : unit -> int;
  lookup : Flow.t -> counter option;
  total_packets : unit -> int;
}

type Nf.state += State of (Flow.t, counter) Hashtbl.t * int

let profile =
  Action.
    [ Read Field.Sip; Read Field.Dip; Read Field.Sport; Read Field.Dport; Read Field.Len ]

let state_access =
  State_access.
    [
      per_flow Commutative "flow-counters"; global Commutative "total-packets";
    ]

(* Shards recombine by summing, so the merged table's iteration order
   differs from a single instance's — the digest must be a commutative
   fold (a sum of per-entry hashes), not an order-dependent chain. *)
let merge states =
  let table = Hashtbl.create 1024 and total = ref 0 in
  List.iter
    (function
      | State (t, n) ->
          total := !total + n;
          Hashtbl.iter
            (fun flow c ->
              let prev =
                match Hashtbl.find_opt table flow with
                | Some p -> p
                | None -> { packets = 0; bytes = 0 }
              in
              Hashtbl.replace table flow
                { packets = prev.packets + c.packets; bytes = prev.bytes + c.bytes })
            t
      | _ -> invalid_arg "Monitor.merge: foreign state")
    states;
  State (table, !total)

let rec create ?(name = "mon") () =
  let table : (Flow.t, counter) Hashtbl.t ref = ref (Hashtbl.create 1024) in
  let total = ref 0 in
  let process pkt =
    let flow = Packet.flow pkt in
    let prev =
      match Hashtbl.find_opt !table flow with Some c -> c | None -> { packets = 0; bytes = 0 }
    in
    Hashtbl.replace !table flow
      { packets = prev.packets + 1; bytes = prev.bytes + Packet.wire_length pkt };
    incr total;
    Nf.Forward
  in
  let state_digest () =
    Hashtbl.fold
      (fun flow c acc ->
        (acc
        + Nfp_algo.Hashing.combine (Flow.hash flow)
            (Nfp_algo.Hashing.combine c.packets c.bytes))
        land max_int)
      !table !total
  in
  let snapshot () = State (Hashtbl.copy !table, !total) in
  let restore = function
    | State (t, n) ->
        table := Hashtbl.copy t;
        total := n
    | _ -> invalid_arg "Monitor.restore: foreign state"
  in
  (* Migration source half: carve the matching flows' counters out of
     the live table. The global total is commutative — it stays where
     the packets were counted and sums back under [merge]. *)
  let extract pred =
    let moved = Hashtbl.create 64 in
    Hashtbl.iter (fun flow c -> if pred flow then Hashtbl.replace moved flow c) !table;
    Hashtbl.iter (fun flow _ -> Hashtbl.remove !table flow) moved;
    State (moved, 0)
  in
  ( Nf.make ~name ~kind:"Monitor" ~profile ~cost_cycles:(fun _ -> 220) ~state_digest
      ~snapshot ~restore ~state_access
      ~fresh:(fun () -> fst (create ~name ()))
      ~merge ~extract process,
    {
      flows = (fun () -> Hashtbl.length !table);
      lookup = (fun f -> Hashtbl.find_opt !table f);
      total_packets = (fun () -> !total);
    } )
