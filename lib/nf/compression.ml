open Nfp_packet

type stats = {
  compressed : unit -> int;
  skipped : unit -> int;
  bytes_saved : unit -> int;
}

type Nf.state += State of int * int * int

let profile = Action.[ Read Field.Payload; Write Field.Payload; Write Field.Len ]

let state_access =
  State_access.
    [
      global Commutative "compressed-counter";
      global Commutative "skipped-counter";
      global Commutative "bytes-saved-counter";
    ]

let merge states =
  let compressed = ref 0 and skipped = ref 0 and saved = ref 0 in
  List.iter
    (function
      | State (c, sk, sv) ->
          compressed := !compressed + c;
          skipped := !skipped + sk;
          saved := !saved + sv
      | _ -> invalid_arg "Compression.merge: foreign state")
    states;
  State (!compressed, !skipped, !saved)

let rec create ?(name = "comp") () =
  let compressed = ref 0 and skipped = ref 0 and saved = ref 0 in
  let process pkt =
    let payload = Packet.payload pkt in
    let packed = Nfp_algo.Lz77.compress payload in
    if String.length packed < String.length payload then begin
      Packet.set_payload pkt packed;
      incr compressed;
      saved := !saved + String.length payload - String.length packed
    end
    else incr skipped;
    Nf.Forward
  in
  let cost_cycles pkt = 1200 + (8 * String.length (Packet.payload pkt)) in
  (* Pressure-degrade mode: passthrough. Compression is an optimization,
     not a correctness requirement, so under pressure the NF forwards
     payloads untouched for a flat token cost (the skipped counter still
     moves — operators see how much traffic went uncompressed). *)
  let degrade =
    {
      Nf.d_label = "passthrough";
      d_cost_cycles = (fun _ -> 200);
      d_process =
        (fun _ ->
          incr skipped;
          Nf.Forward);
    }
  in
  let snapshot () = State (!compressed, !skipped, !saved) in
  let restore = function
    | State (c, sk, sv) ->
        compressed := c;
        skipped := sk;
        saved := sv
    | _ -> invalid_arg "Compression.restore: foreign state"
  in
  ( Nf.make ~name ~kind:"Compression" ~profile ~cost_cycles
      ~state_digest:(fun () ->
        Nfp_algo.Hashing.combine !compressed (Nfp_algo.Hashing.combine !skipped !saved))
      ~snapshot ~restore ~state_access
      ~fresh:(fun () -> fst (create ~name ()))
      ~merge ~degrade
        (* Only commutative counters: migration moves the zero state. *)
      ~extract:(fun _ -> State (0, 0, 0))
      process,
    {
      compressed = (fun () -> !compressed);
      skipped = (fun () -> !skipped);
      bytes_saved = (fun () -> !saved);
    } )
