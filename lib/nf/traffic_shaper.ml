open Nfp_packet

type stats = { conformed : unit -> int; policed : unit -> int }

type Nf.state += State of (float * int64) * int64 * int * int

(* The token bucket is drained by every flow and decides per-packet
   admit/police verdicts: a read-modify-write on shared state that
   shapes output, the canonical Sequential NF. *)
let state_access =
  State_access.
    [
      global General "token-bucket";
      global Commutative "conformed-counter";
      global Commutative "policed-counter";
    ]

let create ?(name = "shaper") ?(rate_bps = 1e9) ?(burst_bytes = 65536) () =
  let bucket = Nfp_algo.Token_bucket.create ~rate_bps ~burst_bytes in
  let now = ref 0L in
  let conformed = ref 0 and policed = ref 0 in
  let process pkt =
    if Nfp_algo.Token_bucket.admit bucket ~now_ns:!now ~size:(Packet.wire_length pkt) then begin
      incr conformed;
      Nf.Forward
    end
    else begin
      incr policed;
      Nf.Dropped
    end
  in
  (* The bucket level and refill timestamp are real NF state: two runs
     that diverge there will police different packets later, so the
     digest must see them (the float is hashed by its bit pattern). *)
  let state_digest () =
    let tokens, last_ns = Nfp_algo.Token_bucket.snapshot bucket in
    Nfp_algo.Hashing.combine
      (Int64.to_int (Int64.bits_of_float tokens))
      (Nfp_algo.Hashing.combine (Int64.to_int last_ns)
         (Nfp_algo.Hashing.combine (Int64.to_int !now)
            (Nfp_algo.Hashing.combine !conformed !policed)))
  in
  let snapshot () =
    State (Nfp_algo.Token_bucket.snapshot bucket, !now, !conformed, !policed)
  in
  let restore = function
    | State (b, n, c, p) ->
        Nfp_algo.Token_bucket.restore bucket b;
        now := n;
        conformed := c;
        policed := p
    | _ -> invalid_arg "Traffic_shaper.restore: foreign state"
  in
  ( Nf.make ~name ~kind:"TrafficShaper"
      ~profile:[ Action.Read Field.Len; Action.Drop ]
      ~cost_cycles:(fun _ -> 130)
      ~state_digest ~snapshot ~restore ~state_access process,
    { conformed = (fun () -> !conformed); policed = (fun () -> !policed) },
    fun t -> now := t )
