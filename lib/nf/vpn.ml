open Nfp_packet

type stats = { encrypted : unit -> int; sequence : unit -> int32 }

type Nf.state += State of int32 * int

let default_key = "nfp-vpn-aes-key!"

let profile =
  Action.
    [
      Read Field.Sip;
      Read Field.Dip;
      Read Field.Payload;
      Write Field.Payload;
      Add_rm_header;
    ]

let nonce_of ~spi ~seq =
  Int64.logor
    (Int64.shift_left (Int64.of_int32 spi) 32)
    (Int64.logand (Int64.of_int32 seq) 0xffffffffL)

(* The sequence counter feeds every packet's nonce: ciphertext depends
   on the exact cross-flow packet order, so sharding would change the
   bytes on the wire. Sequential. *)
let state_access =
  State_access.
    [
      global Read_only "aes-key-schedule";
      global General "sequence-counter";
      global Commutative "encrypted-counter";
    ]

let create ?(name = "vpn") ?(key = default_key) ?(spi = 0x1001l) () =
  let aes = Nfp_algo.Aes.expand_key key in
  let seq = ref 0l in
  let encrypted = ref 0 in
  let process pkt =
    seq := Int32.add !seq 1l;
    let payload = Bytes.of_string (Packet.payload pkt) in
    Nfp_algo.Aes.ctr_transform aes ~nonce:(nonce_of ~spi ~seq:!seq) payload ~pos:0
      ~len:(Bytes.length payload);
    Packet.set_payload pkt (Bytes.to_string payload);
    let icv =
      Int32.of_int (Nfp_algo.Hashing.fnv1a32_bytes payload ~pos:0 ~len:(Bytes.length payload))
    in
    (* A packet already inside a tunnel is not re-encapsulated — this
       also keeps the evaluation's forced-no-copy rig (two VPN instances
       sharing one buffer) from tripping on a double header. *)
    if not (Packet.has_ah pkt) then Packet.add_ah pkt ~spi ~seq:!seq ~icv;
    incr encrypted;
    Nf.Forward
  in
  let cost_cycles pkt = 2000 + (10 * String.length (Packet.payload pkt)) in
  (* The sequence counter is the security-critical state: replaying the
     input log after a restore re-issues the exact nonce sequence, so
     re-encrypted payloads are byte-identical to the fault-free run. *)
  let snapshot () = State (!seq, !encrypted) in
  let restore = function
    | State (s, e) ->
        seq := s;
        encrypted := e
    | _ -> invalid_arg "Vpn.restore: foreign state"
  in
  ( Nf.make ~name ~kind:"VPN" ~profile ~cost_cycles
      ~state_digest:(fun () -> Nfp_algo.Hashing.combine (Int32.to_int !seq) !encrypted)
      ~snapshot ~restore ~state_access process,
    { encrypted = (fun () -> !encrypted); sequence = (fun () -> !seq) } )

let decrypt ~key pkt =
  match Packet.remove_ah pkt with
  | None -> false
  | Some (spi, seq, _icv) ->
      let aes = Nfp_algo.Aes.expand_key key in
      let payload = Bytes.of_string (Packet.payload pkt) in
      Nfp_algo.Aes.ctr_transform aes ~nonce:(nonce_of ~spi ~seq) payload ~pos:0
        ~len:(Bytes.length payload);
      Packet.set_payload pkt (Bytes.to_string payload);
      true
