open Nfp_packet

(* [slots] starts with room for version 1 only and grows to the full 17
   slots the first time a copy materializes a higher version: most
   packets of most service graphs (every pure chain) never hold more
   than one version, and a context is allocated per packet on the
   dataplane's hot path — a 2-slot array is 15 words cheaper than the
   full table. Growth is a one-time cost charged only to packets whose
   graph actually copies. *)
type t = { pid : int64; mid : int; mutable slots : Packet.t option array }

let max_versions = 16

let create ~pid ~mid pkt =
  let slots = Array.make 2 None in
  Packet.stamp pkt ~mid ~pid ~version:1;
  slots.(1) <- Some pkt;
  { pid; mid; slots }

let pid t = t.pid

let mid t = t.mid

let get t v = if v < 1 || v >= Array.length t.slots then None else t.slots.(v)

let set t v pkt =
  if v < 1 || v > max_versions then invalid_arg "Context.set: version out of range";
  if v >= Array.length t.slots then begin
    let grown = Array.make (max_versions + 1) None in
    Array.blit t.slots 0 grown 0 (Array.length t.slots);
    t.slots <- grown
  end;
  t.slots.(v) <- Some pkt

let copy t ~src ~dst ~full =
  match get t src with
  | None -> invalid_arg "Context.copy: source version missing"
  | Some pkt ->
      let copy =
        if full then begin
          let c = Packet.full_copy pkt in
          Packet.set_version c dst;
          c
        end
        else Packet.header_only_copy pkt ~version:dst
      in
      set t dst copy;
      Packet.wire_length copy

let versions t =
  let acc = ref [] in
  for v = Array.length t.slots - 1 downto 1 do
    match t.slots.(v) with Some p -> acc := (v, p) :: !acc | None -> ()
  done;
  !acc
