(** Link channels: the modeled fabric edge in front of every
    destination core's ring.

    All edges landing on one core (classifier->NF, NF->NF,
    branch->merger, merger->delivery, migration transfers) share its
    channel, the way they share the physical ingress port; the
    channel's fault processes come from a {!Nfp_sim.Fault.link_plan}
    resolved by link name. A {e raw} channel applies the fabric's
    faults and nothing else — with no matching link spec it is a
    transparent function call, byte-identical to no channel at all. A
    {e reliable} channel layers an ARQ protocol on the same lossy
    fabric: per-link sequence numbers, a bounded sender window (a full
    window refuses the send, preserving upstream cursor-retry
    backpressure), cumulative acks on a breath-completion cadence,
    NACK- and RTO-driven retransmission with exponential backoff and a
    per-packet budget, a bounded reorder buffer releasing strictly in
    sequence order, receiver-side dedup, and health probes that declare
    the link Down after [probe_timeout_k] consecutive timeouts —
    detouring unacked packets through the caller's [reroute] path and
    recovering when a later send finds the partition over.

    Every timer self-quenches when its work drains, so an idle channel
    schedules nothing and the simulation's event heap empties. *)

type stats = {
  mutable link_drops : int;
  mutable retransmits : int;
  mutable duplicates_suppressed : int;
  mutable reordered : int;
  mutable partitions : int;
  mutable reroutes : int;
}
(** Shared mutable taxonomy counters, aggregated across every channel
    of a deployment and surfaced as {!Nfp_sim.Harness.link_stats}. *)

val fresh_stats : unit -> stats

type reliability = {
  window : int;
  ack_interval_ns : float;
  rto_ns : float;
  rto_backoff : float;
  rto_max_ns : float;
  retransmit_budget : int;
  reorder_window : int;
  probe_interval_ns : float;
  probe_timeout_k : int;
  ack_ns : float;
  retransmit_ns : float;
}
(** ARQ knobs; see {!Nfp_infra.System.links_config} for the deployment
    defaults and documentation of each. *)

type 'a t

val create :
  engine:Nfp_sim.Engine.t ->
  name:string ->
  ?state:Nfp_sim.Fault.link_state ->
  ?reliability:reliability ->
  deliver:('a -> bool) ->
  reroute:('a -> unit) ->
  stats:stats ->
  unit ->
  'a t
(** [deliver] offers to the destination ring ([false] = full: a raw
    channel propagates the refusal to the sender, a reliable channel
    buffers and retries at the stall-poll cadence). [reroute] detours a
    packet around a Down link (reliable mode only) and must always
    succeed — e.g. by driving a bypass-style emission off-core. *)

val send : 'a t -> 'a -> bool
(** Put one payload on the link. [false] means backpressure — the ring
    (raw) or the sender window (reliable) is full — and the caller must
    retry the same payload later, exactly like {!Nfp_sim.Server.offer}.
    Everything else (loss, duplication, reordering, retransmission,
    reroute) is absorbed by the channel and reported in {!stats}. *)

val is_down : 'a t -> bool
(** Whether the link is currently declared Down — the elastic
    controller consults this to stop migrating toward partitioned
    replicas. *)

val in_flight : 'a t -> int
(** Unacked sends currently held in the retransmit buffer. *)

val name : 'a t -> string
