open Nfp_packet
open Nfp_core

let log_src = Logs.Src.create "nfp.system" ~doc:"NFP dataplane"

module Log = (val Logs.src_log log_src)

type config = {
  cost : Nfp_sim.Cost.t;
  ring_capacity : int;
  mergers : int;
  jitter : float;
  seed : int64;
  batch_size : int;  (* poll-loop breath size on every core; 1 = per-packet legacy *)
  replicas : int;
      (* target replica count for NFs whose state-access profile makes
         them safe to shard (Replication.eligible); ineligible NFs
         always keep a single instance. 1 = bit-identical legacy *)
}

let default_config =
  {
    cost = Nfp_sim.Cost.default;
    ring_capacity = 128;
    mergers = 1;
    jitter = 0.05;
    seed = 7L;
    batch_size = Nfp_sim.Cost.default.batch;
    replicas = 1;
  }

(* ------------------------------------------------------------------ *)
(* Overload control plane: ring watermarks, priority-aware admission,  *)
(* pressure-degrade modes.                                             *)
(* ------------------------------------------------------------------ *)

(* Opt-in: a deployment built without an overload config is bit-for-bit
   the pre-overload system (no watermarks armed, admission controller
   absent, every NF at full fidelity). With one, every compiled-path
   ring arms the high/low watermark latch, the classifier front end
   sheds low-priority chains first when pressure persists, and NFs
   that declare a [Nf.degrade] mode coarsen while their own ring sits
   above the watermark. *)
type overload_config = {
  high_watermark : int;
      (* ring occupancy at which a core raises pressure; must satisfy
         0 <= low < high <= ring_capacity *)
  low_watermark : int;  (* occupancy at which pressure releases (hysteresis) *)
  shed_trickle : int;
      (* anti-starvation: of every [shed_trickle] consecutive packets
         of a class the controller is shedding, one is admitted anyway;
         0 sheds the class outright *)
  degrade_enabled : bool;
      (* let NFs with a declared degrade mode coarsen under pressure *)
  pressure_poll_ns : float;
      (* minimum interval between shed-level re-evaluations at ingress;
         the level moves one step per poll (escalate under pressure,
         relax when it clears), so the ladder cannot flap faster than
         this cadence *)
}

(* 3/4 and 3/8 of the default ring capacity; one shed-level step every
   2 us; a 1-in-16 trickle for shed classes. *)
let default_overload_config =
  {
    high_watermark = 96;
    low_watermark = 48;
    shed_trickle = 16;
    degrade_enabled = true;
    pressure_poll_ns = 2_000.0;
  }

(* ------------------------------------------------------------------ *)
(* Elastic scale-out: runtime replica activation with crash-safe live  *)
(* NF state migration.                                                 *)
(* ------------------------------------------------------------------ *)

(* Opt-in, like overload: a deployment built without an elastic config
   is bit-for-bit the pre-elastic system, and one built with a
   never-triggering config (thresholds no run reaches) must produce the
   same packet trace — standby replicas draw jitter from an independent
   PRNG stream and the steering map starts as the identity sharding, so
   the machinery is invisible until the controller acts. *)
type elastic_config = {
  min_replicas : int;  (* scale-in floor (also the initial active count) *)
  max_replicas : int;
      (* scale-out ceiling; replicas beyond the static count are built
         at deployment as standby cores and activated at runtime *)
  buckets : int;
      (* steering-map granularity: flows hash into [buckets] RSS
         buckets, each owned by one replica; migrations re-home whole
         buckets. Must be >= max_replicas. *)
  control_interval_ns : float;  (* controller tick period *)
  scale_out_occupancy : float;
      (* scale out when any active replica's queue occupancy (fraction
         of ring capacity) reaches this *)
  scale_in_occupancy : float;
      (* scale in when every active replica sits at or below this;
         must be < scale_out_occupancy (hysteresis) *)
  migration_batch : int;  (* max buckets re-homed per migration *)
  transfer_ns : float;
      (* modeled state-transfer window: the source stays frozen this
         long between freeze and commit *)
  migration_deadline_ns : float;
      (* a migration that cannot commit by freeze-time + this deadline
         (destination full, party down) aborts and rolls back to the
         old steering map *)
  commit_retry_ns : float;
      (* retry period of a commit blocked on destination ring space *)
  cooldown_ns : float;  (* minimum time between scale decisions per slot *)
}

let default_elastic_config =
  {
    min_replicas = 1;
    max_replicas = 4;
    buckets = 64;
    control_interval_ns = 20_000.0;
    scale_out_occupancy = 0.5;
    scale_in_occupancy = 0.05;
    migration_batch = 16;
    transfer_ns = 30_000.0;
    migration_deadline_ns = 200_000.0;
    commit_retry_ns = 2_000.0;
    cooldown_ns = 50_000.0;
  }

(* ------------------------------------------------------------------ *)
(* Lossy fabric: link fault domain + opt-in reliable channels.         *)
(* ------------------------------------------------------------------ *)

(* Opt-in, like fault/overload/elastic: a deployment built without a
   links config is bit-for-bit the pre-links system — no channel is
   constructed, every send site keeps its direct [Server.offer] call
   path. With one, every inter-core edge (classifier->NF, NF->NF,
   branch->merger, merger->delivery, migration transfers) crosses a
   [Channel] named after its destination port ("link:mid1:NAT",
   "link:merger#0", "link:delivery", "link:migrate:mid1:NAT@2"), so a
   link plan can perturb any edge family by name or prefix pattern.
   [reliable = false] models the raw fabric (drops lose packets into
   the ledger's in-flight residual, duplicates deliver twice); [true]
   arms the ARQ layer that makes delivery lossless over the lossy
   fabric — the differential suite holds a lossy reliable run to the
   same delivery multisets and state digests as the lossless run. *)
type links_config = {
  link_plan : Nfp_sim.Fault.link_plan;
  reliable : bool;  (* arm the seq/ack/retransmit channels *)
  link_window : int;
      (* sender window per link: max unacked sends before the channel
         refuses (backpressure, upstream cursor-retry) *)
  ack_interval_ns : float;
      (* cumulative-ack cadence — the granularity at which acks ride
         breath completions *)
  rto_ns : float;  (* initial head-of-line retransmit timeout *)
  rto_backoff : float;  (* RTO multiplier per consecutive firing without progress *)
  rto_max_ns : float;  (* RTO ceiling *)
  retransmit_budget : int;
      (* per-packet retransmissions before the link is declared Down *)
  reorder_window : int;
      (* receiver reorder-buffer span; arrivals beyond it are refused
         at the port and recovered by retransmission *)
  probe_interval_ns : float;
      (* health-probe cadence while data is outstanding; 0 disables
         probing (budget exhaustion still detects partitions) *)
  probe_timeout_k : int;  (* consecutive probe timeouts declaring Down *)
}

let default_links_config =
  {
    link_plan = Nfp_sim.Fault.no_links;
    reliable = true;
    link_window = 256;
    ack_interval_ns = 1_000.0;
    rto_ns = 25_000.0;
    rto_backoff = 2.0;
    rto_max_ns = 400_000.0;
    retransmit_budget = 16;
    reorder_window = 256;
    probe_interval_ns = 5_000.0;
    probe_timeout_k = 3;
  }

(* One in-flight bucket migration: two-phase. Phase 1 (freeze) pauses
   the source replica and schedules the commit [transfer_ns] later;
   phase 2 (commit) either aborts — any party down, or no destination
   ring space by the deadline — rolling back to the old map with the
   source unfrozen and nothing observable changed, or atomically (one
   simulation event): carves the moving flows' state out of the source
   NF, folds it into the destination, re-homes the frozen in-flight
   packets, flips the map buckets and bumps the epoch. *)
type migration = {
  mg_src : int;
  mg_dst : int;
  mg_buckets : int list;
  mg_deadline : float;
}

(* Steering state of one scalable NF slot. [st_map.(b)] is the replica
   index owning bucket [b]; the send sites read it per attempt, so a
   single-event flip can never race an in-flight packet. *)
type steer = {
  mutable st_map : int array;
  mutable st_epoch : int;  (* bumped at every committed flip *)
  mutable st_active : int;  (* replicas 0 .. active-1 receive traffic *)
  mutable st_draining : int;  (* replica being scaled in; -1 = none *)
  mutable st_last_op : float;  (* cooldown clock *)
  mutable st_backoff : float;
  (* no migration may start before this time: set after an abort so the
     just-unfrozen source drains its backlog before the controller can
     freeze it again (otherwise a hopeless migration — e.g. a moved set
     larger than the destination ring — restarts every tick and the
     source starves forever) *)
  mutable st_mig : migration option;  (* at most one in flight per slot *)
}

(* ------------------------------------------------------------------ *)
(* Fault tolerance: injection plan, watchdog, recovery policies        *)
(* ------------------------------------------------------------------ *)

(* What the watchdog does with an NF core that stopped making progress:
   - [Restart]: the core comes back [restart_ns] later; whatever sat in
     its ring is dropped (and accounted in [health.flushed]).
   - [Bypass]: the core is removed from the graph — packets headed to it
     skip straight through its action program unprocessed, so mergers
     are never again left waiting on its branch. For read-only or
     optional NFs (monitors, taps) this loses nothing but telemetry.
   - [Degrade]: the core's whole service graph falls back to the
     sequential order of the same plan ([Tables.serial_order]) on a twin
     chain of fresh cores until the failed core has restarted; parallel
     wedging is impossible while degraded.
   Infrastructure cores (classifier, mergers, merger agent, twin-chain
   cores) always use Restart. *)
type recovery = Restart | Bypass | Degrade

type fault_config = {
  plan : Nfp_sim.Fault.plan;
  watchdog_interval_ns : float;  (* heartbeat sampling period *)
  watchdog_deadline_ns : float;
      (* a core with queued work but no progress (neither a processed
         packet nor a backpressure retry) for this long is declared
         failed; backpressure alone never trips it *)
  merge_timeout_ns : float;
      (* mergers force-complete an accumulation this old with the
         versions that did arrive; 0.0 disables the timeout *)
  restart_ns : float;  (* downtime of a Restart / Degrade recovery *)
  recovery_of : string -> recovery;  (* policy per NF instance name *)
  checkpoint_interval_ns : float;
      (* period of the per-NF state snapshots that arm lossless
         recovery; 0.0 disables checkpointing, reverting Restart to the
         lossy flush-the-backlog semantics *)
  log_capacity : int;
      (* bound of each core's input log (packets since its last
         checkpoint); a full log forces a checkpoint early rather than
         ever silently losing an entry *)
  breaker_threshold : int;
      (* circuit breaker: after this many consecutive watchdog
         detections of the same NF core without observed progress, stop
         restarting it and fall to [breaker_fallback]; 0 disables the
         breaker (and the restart backoff), keeping the pre-breaker
         recover-forever behavior *)
  backoff_factor : float;
      (* restart delay multiplier per consecutive detection: the n-th
         consecutive restart waits restart_ns * factor^(n-1), capped at
         [backoff_max_ns] — a restart-looping core backs off instead of
         thrashing *)
  backoff_max_ns : float;  (* ceiling of the backed-off restart delay *)
  breaker_fallback : recovery;
      (* what a tripped breaker does with the core: [Bypass] removes it
         from the graph; [Degrade] pins its whole graph to the
         sequential twin and removes the core. [Restart] is treated as
         [Bypass] (the breaker exists to stop restarting). Infrastructure
         cores never trip — they have no bypass semantics — and only
         back off. *)
  dedup_capacity : int;
      (* bound of each (pid, version) dedup table (the delivery filter
         and every merger's completed-merge memory). Tables prune
         generationally: entries survive at least [dedup_capacity / 2]
         further insertions, far longer than any replay or
         retransmission can lag, so the exactly-once guarantee holds
         while memory stays pinned however long a lossy run goes. *)
}

let default_fault_config =
  {
    plan = Nfp_sim.Fault.empty;
    watchdog_interval_ns = 30_000.0;
    watchdog_deadline_ns = 120_000.0;
    merge_timeout_ns = 250_000.0;
    restart_ns = Nfp_sim.Cost.default.restart_ns;
    recovery_of = (fun _ -> Restart);
    checkpoint_interval_ns = 100_000.0;
    log_capacity = 4096;
    breaker_threshold = 0;
    backoff_factor = 2.0;
    backoff_max_ns = 2_000_000.0;
    breaker_fallback = Bypass;
    dedup_capacity = 65_536;
  }

(* Bounded (pid, version) memory with generational pruning: two
   hash tables, [g_cur] receiving inserts and [g_prev] holding the
   previous generation; membership consults both. When [g_cur] reaches
   half the capacity the generations rotate and the oldest half is
   dropped, so the table never holds more than [capacity] entries yet
   any entry survives at least [capacity / 2] subsequent insertions —
   the dedup window a late retransmission or replayed branch must fit
   inside (satellite: previously these tables grew without bound). *)
module Dedup = struct
  type 'k t = {
    half : int;
    mutable g_cur : ('k, unit) Hashtbl.t;
    mutable g_prev : ('k, unit) Hashtbl.t;
  }

  let create capacity =
    let half = max 1 (capacity / 2) in
    { half; g_cur = Hashtbl.create 64; g_prev = Hashtbl.create 64 }

  let mem t key = Hashtbl.mem t.g_cur key || Hashtbl.mem t.g_prev key

  let add t key =
    if not (mem t key) then begin
      if Hashtbl.length t.g_cur >= t.half then begin
        let retired = t.g_prev in
        Hashtbl.reset retired;
        t.g_prev <- t.g_cur;
        t.g_cur <- retired
      end;
      Hashtbl.replace t.g_cur key ()
    end

  let length t = Hashtbl.length t.g_cur + Hashtbl.length t.g_prev
end

(* The uniform control surface the watchdog holds over every core,
   whatever its job type. *)
type probe = {
  pr_name : string;
  pr_nf : (int * string) option;  (* mid, NF instance name; None = infrastructure *)
  pr_processed : unit -> int;
  pr_queue : unit -> int;
  pr_stalled : unit -> float;
  pr_busy : unit -> bool;
  pr_down : unit -> bool;
  pr_paused : unit -> bool;
      (* quiesced as a live-migration source: healthy, deliberately
         frozen — the watchdog must not declare it dead *)
  pr_kill : unit -> unit;
  pr_revive : flush:bool -> int;
  pr_drain : unit -> int;  (* NF cores: reroute the backlog around the core *)
  pr_crashes : unit -> int;
  pr_fault_drops : unit -> int;
  pr_flushed : unit -> int;
  pr_rejected : unit -> int;  (* ring-full offer refusals at this core *)
  pr_pressured : unit -> bool;  (* watermark latch currently raised *)
  pr_pressure_episodes : unit -> int;  (* pressure onsets so far *)
  pr_casualties : unit -> int;  (* reclaimed in-flight work awaiting recovery *)
  pr_checkpoint : unit -> unit;  (* NF cores with snapshot support: take one now *)
  pr_replay : unit -> float;
      (* restore the last checkpoint and replay the input log; returns
         the replay's contribution to the core's downtime (0.0 for
         infrastructure cores and NFs without snapshot support) *)
}

let core_count config (plan : Tables.plan) =
  1
  + List.length plan.Tables.nf_entries
  + config.mergers
  + if config.mergers > 1 then 1 else 0

type core_stats = {
  core : string;
  busy_ns : float;
  stalled_ns : float;
  processed : int;
  rejected : int;
  queue : int;
}

let stats_of_server (type a) (s : a Nfp_sim.Server.t) =
  {
    core = Nfp_sim.Server.name s;
    busy_ns = Nfp_sim.Server.busy_ns s;
    stalled_ns = Nfp_sim.Server.stalled_ns s;
    processed = Nfp_sim.Server.processed s;
    rejected = Nfp_sim.Server.rejected s;
    queue = Nfp_sim.Server.queue_length s;
  }

(* What the replication analysis decided for one NF of the deployment,
   plus per-replica observables: the differential suite checks the
   merged digest against an unreplicated run's, and the ledger tests
   check the per-replica processed counts. *)
type replica_report = {
  rr_mid : int;
  rr_nf : string;
  rr_kind : string;
  rr_strategy : Replication.strategy;
  rr_replicas : int;
  rr_processed : int list;  (* per replica, in shard order *)
  rr_merged_digest : int;
      (* replicas = 1: the instance digest. Shared_nothing: all replica
         snapshots merged, restored into a fresh scratch instance, and
         digested — equal to a sequential run's digest when the merge
         is faithful. Replicated_readonly: replica 0's digest (all
         replicas are identical by construction). *)
}

(* Shared no-op completion thunk: the common "nothing left to emit"
   result costs no allocation. *)
let const_true () = true

(* ------------------------------------------------------------------ *)
(* Interpretive path: walks the plan's tables per packet. Kept as the  *)
(* executable reference semantics for the compiled fast path; the      *)
(* differential test in test/test_fastpath.ml holds the two to         *)
(* packet-for-packet agreement.                                        *)
(* ------------------------------------------------------------------ *)

type delivery = {
  ctx : Context.t;
  merge_id : int;
  deliverer : Tables.deliverer;
  version : int;
  nil : bool;
}

type at_entry = { mutable received : int; mutable nil_from : Tables.deliverer list }

(* A retryable emission: a mutable worklist of sends; each call pushes
   as many as fit downstream and reports whether everything left. *)
let emitter sends =
  let remaining = ref sends in
  fun () ->
    let rec go () =
      match !remaining with
      | [] -> true
      | send :: rest ->
          if send () then begin
            remaining := rest;
            go ()
          end
          else false
    in
    go ()

(* ------------------------------------------------------------------ *)
(* Compiled path: the plan is translated once, at deployment time,     *)
(* into a preresolved runtime program — merge specs in arrays indexed  *)
(* by merge id, NF and merger targets resolved to direct server slots, *)
(* static cycle costs folded into one constant (only the per-byte      *)
(* full-copy term stays dynamic), and emissions as arrays walked by a  *)
(* cursor instead of per-packet closure lists.                         *)
(* ------------------------------------------------------------------ *)

type ccopy = { c_src : int; c_dst : int; c_full : bool }

type csend =
  | S_nf of int  (* slot in the dense NF-server array *)
  | S_merge of { merge : cmerge; branch : int; nil : bool }
  | S_deliver of int  (* packet version to emit *)

and cprog = {
  p_copies : ccopy array;
  p_sends : csend array;
  p_static : int;  (* constant cycles of the action list *)
  p_full_srcs : int array;  (* src versions of full copies (dynamic per-byte term) *)
}

and cmerge = {
  m_mid : int;
  m_id : int;
  m_spec : Tables.merge_spec;  (* compile-time only: branch resolution *)
  m_expected : int;
  m_versions : int array;  (* per-branch packet version *)
  m_result_version : int;
  m_ops : Merge_op.t array;
  m_drop_any : bool;
  m_winner : int;  (* branch index for `Priority_to; -1 when unresolved *)
  mutable m_next : cprog;
  mutable m_nil_sends : csend array;  (* upward nil propagation, precompiled *)
  mutable m_completion_static : int;  (* |ops|*merge_op + m_next.p_static *)
}

type cdelivery = { d_ctx : Context.t; d_merge : cmerge; d_branch : int; d_nil : bool }

type cat_entry = {
  mutable c_received : int;
  mutable c_nil_mask : int;
  mutable c_arrived_mask : int;  (* branches seen, for merger-timeout completion *)
}

(* First branch of [spec] the deliverer satisfies, mirroring the
   interpretive path's [branch_of] — resolved once at compile time. *)
let branch_index (spec : Tables.merge_spec) (deliverer : Tables.deliverer) =
  let rec go i = function
    | [] -> -1
    | (e : Tables.expect) :: rest ->
        if
          e.deliverer = deliverer
          || match deliverer with Tables.D_nf n -> List.mem n e.members | _ -> false
        then i
        else go (i + 1) rest
  in
  go 0 spec.expected

let empty_prog = { p_copies = [||]; p_sends = [||]; p_static = 0; p_full_srcs = [||] }

let make_multi ?(path = `Compiled) ?(classify = `Cached) ?(config = default_config)
    ?batch_size ?replicas ?fault ?overload ?elastic ?links ?stats ?replication
    ~graphs engine ~output =
  if graphs = [] then invalid_arg "System.make_multi: no service graphs";
  (match (fault, path) with
  | Some _, `Interpretive ->
      invalid_arg "System.make_multi: fault injection requires the `Compiled path"
  | _ -> ());
  (match (overload, path) with
  | Some _, `Interpretive ->
      invalid_arg "System.make_multi: overload control requires the `Compiled path"
  | _ -> ());
  (match overload with
  | Some (oc : overload_config) ->
      if
        not
          (0 <= oc.low_watermark
          && oc.low_watermark < oc.high_watermark
          && oc.high_watermark <= config.ring_capacity)
      then
        invalid_arg
          "System.make_multi: overload watermarks must satisfy 0 <= low < high <= \
           ring_capacity";
      if oc.pressure_poll_ns <= 0.0 then
        invalid_arg "System.make_multi: overload pressure_poll_ns must be positive"
  | None -> ());
  (match elastic with
  | Some (ec : elastic_config) ->
      if path = `Interpretive then
        invalid_arg "System.make_multi: elastic scale-out requires the `Compiled path";
      if ec.min_replicas < 1 || ec.max_replicas < ec.min_replicas then
        invalid_arg
          "System.make_multi: elastic replica bounds must satisfy 1 <= min <= max";
      if ec.buckets < ec.max_replicas then
        invalid_arg "System.make_multi: elastic buckets must be >= max_replicas";
      if
        ec.control_interval_ns <= 0.0 || ec.transfer_ns < 0.0
        || ec.migration_deadline_ns <= 0.0
        || ec.commit_retry_ns <= 0.0 || ec.cooldown_ns < 0.0
      then invalid_arg "System.make_multi: elastic periods must be positive";
      if not (ec.scale_in_occupancy < ec.scale_out_occupancy) then
        invalid_arg
          "System.make_multi: elastic occupancy thresholds must satisfy in < out";
      if ec.migration_batch < 1 then
        invalid_arg "System.make_multi: elastic migration_batch must be >= 1"
  | None -> ());
  let elastic_on = elastic <> None in
  (* A links config with an empty plan and no reliability layer is
     normalized away entirely — nothing to perturb, nothing to arm, so
     the send sites keep their direct call path (bit-identity). *)
  let links =
    match links with
    | Some (lc : links_config)
      when Nfp_sim.Fault.links_empty lc.link_plan && not lc.reliable ->
        None
    | other -> other
  in
  (match links with
  | Some (lc : links_config) ->
      if path = `Interpretive then
        invalid_arg "System.make_multi: link channels require the `Compiled path";
      if lc.link_window < 1 then
        invalid_arg "System.make_multi: links link_window must be >= 1";
      if lc.reorder_window < 1 then
        invalid_arg "System.make_multi: links reorder_window must be >= 1";
      if lc.retransmit_budget < 1 then
        invalid_arg "System.make_multi: links retransmit_budget must be >= 1";
      if
        lc.ack_interval_ns <= 0.0 || lc.rto_ns <= 0.0 || lc.rto_max_ns <= 0.0
        || lc.probe_interval_ns < 0.0
      then invalid_arg "System.make_multi: links periods must be positive";
      if lc.rto_backoff < 1.0 then
        invalid_arg "System.make_multi: links rto_backoff must be >= 1.0";
      if lc.probe_timeout_k < 1 then
        invalid_arg "System.make_multi: links probe_timeout_k must be >= 1"
  | None -> ());
  let links_on = links <> None in
  (* Watermarks for every compiled-path ring; [None] (no overload
     config) leaves each ring's latch disarmed — the bit-identity
     guarantee. *)
  let wm =
    match overload with
    | Some (oc : overload_config) -> Some (oc.high_watermark, oc.low_watermark)
    | None -> None
  in
  let degrade_on =
    match overload with Some oc -> oc.degrade_enabled | None -> false
  in
  (* Replica target for strategy-eligible NFs; 1 (the default) keeps
     the deployment bit-identical to the pre-replication system. *)
  let replicas_knob =
    max 1 (match replicas with Some r -> r | None -> config.replicas)
  in
  if replicas_knob > 1 && path = `Interpretive then
    invalid_arg "System.make_multi: replicas require the `Compiled path";
  let cost = config.cost in
  (* Breath size for every core's poll loop; 1 restores per-packet
     (legacy) execution exactly. Both execution paths get the same
     value and the same per-breath amortization, so the
     interpretive/compiled differential is undisturbed at any size. *)
  let batch = max 1 (match batch_size with Some b -> b | None -> config.batch_size) in
  let burst_saving_ns = Nfp_sim.Cost.ns_of_cycles cost cost.burst_saving in
  (* Faults are resolved per core by name; [None] everywhere when no
     fault config is given, and [Server.create ?fault:None] is exactly
     the pre-fault server. *)
  let fault_for name =
    match fault with
    | None -> None
    | Some (fc : fault_config) -> Nfp_sim.Fault.for_core fc.plan name
  in
  let merge_timeout_ns = match fault with Some fc -> fc.merge_timeout_ns | None -> 0.0 in
  (* Everything the recovery subsystem adds — input logging, snapshot
     charges, dedup filters — is gated on [armed]: a fault config with
     an empty plan must leave the packet trace byte-identical to a
     system built without one (the differential test enforces this). *)
  let armed =
    match fault with
    | Some (fc : fault_config) -> not (Nfp_sim.Fault.is_empty fc.plan)
    | None -> false
  in
  let lossless =
    armed
    && match fault with Some fc -> fc.checkpoint_interval_ns > 0.0 | None -> false
  in
  (* The (pid, version) dedup filters also arm under elastic: a crash
     landing mid-migration can re-home a packet whose original emission
     is still in flight, and exactly-once delivery must hold. Pure
     bookkeeping — on a duplicate-free run the filters never fire, so
     the trace is untouched. *)
  (* ... and under links: a retransmitted branch racing its own
     timeout-completed merge, or a fabric duplicate on a raw channel,
     must be dropped at the merge/delivery filters just like a replayed
     emission. *)
  let dedup_on = armed || elastic_on || links_on in
  let log_capacity =
    match fault with Some fc -> max 1 fc.log_capacity | None -> 1
  in
  let checkpoints = ref 0
  and forced_checkpoints = ref 0
  and replayed = ref 0
  and deduped = ref 0
  and salvaged = ref 0 in
  (* MIDs are 1-based positions in the classification table. *)
  let table = Array.of_list graphs in
  let plan_of_mid mid : Tables.plan =
    let _, p, _ = table.(mid - 1) in
    p
  in
  (* Shard only NFs the profile analysis clears within their graph:
     {!Replication.shardable} additionally vetoes any NF with an
     order-sensitive (Sequential-strategy) NF downstream, since
     sharding changes the cross-flow arrival order those cores see. *)
  let replica_count mid name =
    if
      replicas_knob > 1
      && Replication.shardable ~plan:(plan_of_mid mid)
           ~nf_of:(fun n ->
             let _, _, nfs = table.(mid - 1) in
             nfs n)
           name
    then replicas_knob
    else 1
  in
  (* Resolve every plan's NF implementations up front. *)
  let nf_impls =
    List.concat
      (List.mapi
         (fun i (_, (plan : Tables.plan), nfs) ->
           List.map
             (fun (e : Tables.nf_entry) ->
               match nfs e.nf with
               | nf -> (i + 1, e, nf)
               | exception _ ->
                   invalid_arg (Printf.sprintf "System.make: no NF named %S" e.nf))
             plan.nf_entries)
         graphs)
  in
  let ring_drops = ref 0 and nf_drops = ref 0 and unmatched = ref 0 in
  (* Overload counters, shared by the admission controller (built after
     the cores, next to the watchdog) and the per-NF degrade switches
     (inside the replica closures below). *)
  let shed_total = ref 0
  and degraded_packets = ref 0
  and degrade_switches = ref 0 in
  (* Highest admission class any hosted chain declares: the shed ladder
     never climbs past it, so the top class is never shed (anti-
     starvation holds even before the trickle). *)
  let max_class =
    Array.fold_left
      (fun acc (_, (p : Tables.plan), _) -> max acc (max 0 p.Tables.priority))
      0 table
  in
  let shed_class = Array.make (max_class + 1) 0 in
  let prng = Nfp_algo.Prng.create ~seed:config.seed in
  let jitter_for () = (config.jitter, Nfp_algo.Prng.split prng) in
  (* Standby replicas (indices past the static count) draw jitter from
     an independent stream, like the degrade twins: building them must
     not shift the main PRNG and perturb a never-scaling trace. *)
  let elastic_prng =
    Nfp_algo.Prng.create ~seed:(Int64.logxor config.seed 0x31a5_71c5L)
  in
  let elastic_jitter_for () = (config.jitter, Nfp_algo.Prng.split elastic_prng) in
  let packet_bytes ctx version =
    match Context.get ctx version with Some p -> Packet.wire_length p | None -> 1500
  in
  let wire_delay = cost.wire_ns /. 2.0 in
  (* Output-side dedup backstop (armed runs only): a replayed or
     timeout-completed branch must never deliver the same (pid, version)
     twice. Version 0 marks deliveries with no version identity (twin
     chains tag version 1, compiled/interpretive paths their plan
     version), which pass through unfiltered. *)
  let dedup_capacity =
    match fault with Some fc -> max 2 fc.dedup_capacity | None -> 65_536
  in
  let delivered_versions : (int64 * int) Dedup.t = Dedup.create dedup_capacity in
  let merger_dedups : (int * int * int64) Dedup.t list ref = ref [] in
  let dedup_entries () =
    Dedup.length delivered_versions
    + List.fold_left (fun acc d -> acc + Dedup.length d) 0 !merger_dedups
  in
  let deliver_out ?(version = 0) ~pid pkt =
    if dedup_on && version > 0 && Dedup.mem delivered_versions (pid, version) then
      incr deduped
    else begin
      if dedup_on && version > 0 then Dedup.add delivered_versions (pid, version);
      Nfp_sim.Engine.schedule engine ~delay:wire_delay (fun () -> output ~pid pkt)
    end
  in
  (* Link channels: one per destination port, shared by every edge into
     that core. [channel_for] returns [None] when links are off — the
     caller keeps its direct offer path, compiled away from the trace.
     All channels share one stats record (the run ledger's link
     taxonomy) and draw fault state from the link plan by name. *)
  let link_stats = Channel.fresh_stats () in
  let link_reliability =
    match links with
    | Some (lc : links_config) when lc.reliable ->
        Some
          {
            Channel.window = max 1 lc.link_window;
            ack_interval_ns = lc.ack_interval_ns;
            rto_ns = lc.rto_ns;
            rto_backoff = lc.rto_backoff;
            rto_max_ns = lc.rto_max_ns;
            retransmit_budget = lc.retransmit_budget;
            reorder_window = max 1 lc.reorder_window;
            probe_interval_ns = lc.probe_interval_ns;
            probe_timeout_k = lc.probe_timeout_k;
            ack_ns = Nfp_sim.Cost.ns_of_cycles cost cost.ack_cycles;
            retransmit_ns = Nfp_sim.Cost.ns_of_cycles cost cost.retransmit_cycles;
          }
    | _ -> None
  in
  let channel_for ~name ~deliver ~reroute =
    match links with
    | None -> None
    | Some (lc : links_config) -> (
        (* Only ports the plan actually perturbs get a channel: an
           unmatched port keeps the direct call path, so arming links
           with a plan that names nothing behaves like no links at
           all, and the ARQ machinery never taxes healthy ports. *)
        match Nfp_sim.Fault.link_for lc.link_plan name with
        | None -> None
        | Some state ->
            Some
              (Channel.create ~engine ~name:("link:" ^ name) ~state
                 ?reliability:link_reliability ~deliver ~reroute ~stats:link_stats
                 ()))
  in
  (* The egress edge (merger/NF -> delivery port). The reroute of a Down
     delivery link is delivery itself — the detour models the alternate
     path to the egress NIC, and the exactly-once filter upstream keeps
     it safe. *)
  let delivery_channel =
    channel_for ~name:"delivery"
      ~deliver:(fun (v, pid, pkt) ->
        deliver_out ~version:v ~pid pkt;
        true)
      ~reroute:(fun (v, pid, pkt) -> deliver_out ~version:v ~pid pkt)
  in
  let slot_of_pid pid instances =
    Int64.to_int
      (Int64.rem
         (Int64.logand (Nfp_algo.Hashing.mix64 pid) Int64.max_int)
         (Int64.of_int (max 1 instances)))
  in
  (* Every compiled-path core registers a probe; the watchdog and the
     [health] counters below work off this list. *)
  let probes : probe list ref = ref [] in
  let register_probe :
      'a.
      ?nf:int * string ->
      ?drain:(unit -> int) ->
      ?checkpoint:(unit -> unit) ->
      ?replay:(unit -> float) ->
      'a Nfp_sim.Server.t ->
      unit =
   fun ?nf ?(drain = fun () -> 0) ?(checkpoint = fun () -> ())
       ?(replay = fun () -> 0.0) s ->
    probes :=
      {
        pr_name = Nfp_sim.Server.name s;
        pr_nf = nf;
        pr_processed = (fun () -> Nfp_sim.Server.processed s);
        pr_queue = (fun () -> Nfp_sim.Server.queue_length s);
        pr_stalled = (fun () -> Nfp_sim.Server.stalled_ns s);
        pr_busy = (fun () -> Nfp_sim.Server.is_busy s);
        pr_down = (fun () -> Nfp_sim.Server.is_down s);
        pr_paused = (fun () -> Nfp_sim.Server.is_paused s);
        pr_kill = (fun () -> Nfp_sim.Server.kill s);
        pr_revive = (fun ~flush -> Nfp_sim.Server.revive ~flush s);
        pr_drain = drain;
        pr_crashes = (fun () -> Nfp_sim.Server.crashes s);
        pr_fault_drops = (fun () -> Nfp_sim.Server.fault_drops s);
        pr_flushed = (fun () -> Nfp_sim.Server.flushed s);
        pr_rejected = (fun () -> Nfp_sim.Server.rejected s);
        pr_pressured = (fun () -> Nfp_sim.Server.pressured s);
        pr_pressure_episodes = (fun () -> Nfp_sim.Server.pressure_episodes s);
        pr_casualties =
          (fun () ->
            let jobs, emits = Nfp_sim.Server.casualty_counts s in
            jobs + emits);
        pr_checkpoint = checkpoint;
        pr_replay = replay;
      }
      :: !probes
  in
  (* Per-NF replica layout, filled in by whichever execution path
     builds the cores: (mid, entry, replica NF instances, per-replica
     processed counters). The [?replication] report reads it. *)
  let replica_layout :
      (int * Tables.nf_entry * Nfp_nf.Nf.t array * (unit -> int) array) list ref =
    ref []
  in
  let bypassed_packets = ref 0 and merge_timeouts = ref 0 in
  (* Elastic counters and hooks, bridged out of the compiled arm the
     same way the probes are: the controller (built with the cores)
     writes them, [health] and [inject] read them. *)
  let scale_outs = ref 0
  and scale_ins = ref 0
  and migrations = ref 0
  and migration_aborts = ref 0
  and migrated_packets = ref 0 in
  let migrating_gauge = ref (fun () -> 0) in
  let elastic_kick = ref (fun () -> ()) in
  (* The controller is itself a crashable party: a fault plan may
     target the pseudo-core "elastic" — while it is down, no scale
     decision runs and any commit falling due aborts. *)
  let controller_down = ref false in
  let core_state_override : (string -> string option) ref = ref (fun _ -> None) in
  (* Run a retryable emission to completion off-core: used where no
     server owns the emission (bypass reroutes, timed-out merges), with
     the same stall-poll cadence as a core's flush loop. *)
  let rec drive thunk =
    if not (thunk ()) then
      Nfp_sim.Engine.schedule engine ~delay:150.0 (fun () -> drive thunk)
  in
  let classifier, sampler =
    match path with
    | `Interpretive ->
        (* ---------------- interpretive construction ---------------- *)
        let nf_cores : (int * string, Context.t Nfp_sim.Server.t) Hashtbl.t =
          Hashtbl.create 16
        in
        let merger_cores : delivery Nfp_sim.Server.t array ref = ref [||] in
        let agent_core : delivery Nfp_sim.Server.t option ref = ref None in
        let action_cost ctx actions =
          List.fold_left
            (fun acc -> function
              | Tables.Copy { full; src_version; _ } ->
                  if full then
                    acc + cost.copy_base
                    + int_of_float
                        (cost.copy_per_byte *. float_of_int (packet_bytes ctx src_version))
                  else acc + cost.header_copy
              | Tables.Distribute { targets; _ } ->
                  acc + (cost.ring_enqueue * List.length targets))
            0 actions
        in
        (* A single send attempt; [false] = downstream full, retry later. *)
        let send_to_merge (d : delivery) () =
          match !agent_core with
          | Some agent -> Nfp_sim.Server.offer agent d
          | None ->
              Nfp_sim.Server.offer
                !merger_cores.(slot_of_pid (Context.pid d.ctx) (Array.length !merger_cores))
                d
        in
        let send_to_nf name ctx () =
          match Hashtbl.find_opt nf_cores (Context.mid ctx, name) with
          | Some core -> Nfp_sim.Server.offer core ctx
          | None -> invalid_arg (Printf.sprintf "System: FT references unknown NF %S" name)
        in
        (* Execute an action list: copies happen now; distributes become a
           retryable emission worklist. *)
        let emission_of_actions ~self ctx actions =
          let sends =
            List.concat_map
              (function
                | Tables.Copy { src_version; dst_version; full } ->
                    ignore (Context.copy ctx ~src:src_version ~dst:dst_version ~full);
                    []
                | Tables.Distribute { version; targets } ->
                    List.map
                      (fun target () ->
                        match target with
                        | Tables.To_nf n -> send_to_nf n ctx ()
                        | Tables.To_merger id ->
                            send_to_merge
                              { ctx; merge_id = id; deliverer = self; version; nil = false }
                              ()
                        | Tables.Deliver ->
                            (match Context.get ctx version with
                            | Some pkt ->
                                deliver_out ~version ~pid:(Context.pid ctx) pkt
                            | None -> ());
                            true)
                      targets)
              actions
          in
          emitter sends
        in
        (* One core per NF: the NF plus its runtime (paper §6: the runtime
           shares the CPU core with the NF). *)
        List.iter
          (fun (mid, (entry : Tables.nf_entry), (nf : Nfp_nf.Nf.t)) ->
            let service_ns ctx =
              let nf_cycles =
                match Context.get ctx entry.version with
                | Some pkt -> nf.cost_cycles pkt
                | None -> 0
              in
              Nfp_sim.Cost.ns_of_cycles cost
                (cost.ring_dequeue + cost.nf_runtime + nf_cycles
               + action_cost ctx entry.actions)
            in
            let execute ctx =
              match Context.get ctx entry.version with
              | None -> const_true
              | Some pkt -> (
                  (* A crashing NF must not take the dataplane down: the
                     packet is treated as dropped (with a nil where a merger
                     expects this branch) and the fault is logged. *)
                  let verdict =
                    try nf.process pkt
                    with exn ->
                      Log.warn (fun m ->
                          m "NF %s crashed on packet %Ld: %s" entry.nf (Context.pid ctx)
                            (Printexc.to_string exn));
                      Nfp_nf.Nf.Dropped
                  in
                  match verdict with
                  | Nfp_nf.Nf.Forward ->
                      emission_of_actions ~self:(Tables.D_nf entry.nf) ctx entry.actions
                  | Nfp_nf.Nf.Dropped -> (
                      match entry.nil_target with
                      | Some id ->
                          emitter
                            [
                              send_to_merge
                                {
                                  ctx;
                                  merge_id = id;
                                  deliverer = Tables.D_nf entry.nf;
                                  version = entry.version;
                                  nil = true;
                                };
                            ]
                      | None ->
                          incr nf_drops;
                          const_true))
            in
            let core =
              Nfp_sim.Server.create ~engine
                ~name:(Printf.sprintf "mid%d:%s" mid entry.nf)
                ~ring_capacity:config.ring_capacity ~batch ~burst_saving_ns
                ~jitter:(jitter_for ()) ~service_ns ~execute ()
            in
            replica_layout :=
              (mid, entry, [| nf |], [| (fun () -> Nfp_sim.Server.processed core) |])
              :: !replica_layout;
            Hashtbl.replace nf_cores (mid, entry.nf) core)
          nf_impls;
        (* Merger instances: shared across service graphs (paper §5.3: "a
           merger instance can merge any packet from any service graph"),
           each with a private accumulating table keyed by MID and PID. *)
        let make_merger index =
          let at : (int * int * int64, at_entry) Hashtbl.t = Hashtbl.create 1024 in
          let spec_of mid id =
            match Tables.find_merge (plan_of_mid mid) id with
            | Some s -> s
            | None -> invalid_arg "System: delivery references unknown merge point"
          in
          let branch_of spec (deliverer : Tables.deliverer) =
            List.find_opt
              (fun (e : Tables.expect) ->
                e.deliverer = deliverer
                || match deliverer with Tables.D_nf n -> List.mem n e.members | _ -> false)
              spec.Tables.expected
          in
          let service_ns (d : delivery) =
            let spec = spec_of (Context.mid d.ctx) d.merge_id in
            let branches = List.length spec.expected in
            let completion =
              (List.length spec.ops * cost.merge_op) + action_cost d.ctx spec.next
            in
            Nfp_sim.Cost.ns_of_cycles cost
              (cost.ring_dequeue + cost.merge_delivery + (completion / max 1 branches))
          in
          let execute (d : delivery) =
            let mid = Context.mid d.ctx in
            let spec = spec_of mid d.merge_id in
            let key = (mid, d.merge_id, Context.pid d.ctx) in
            let entry =
              match Hashtbl.find_opt at key with
              | Some e -> e
              | None ->
                  let e = { received = 0; nil_from = [] } in
                  Hashtbl.replace at key e;
                  e
            in
            entry.received <- entry.received + 1;
            if d.nil then entry.nil_from <- d.deliverer :: entry.nil_from;
            if entry.received < List.length spec.expected then const_true
            else begin
              Hashtbl.remove at key;
              let nil_branches =
                List.filter_map (fun del -> branch_of spec del) entry.nil_from
              in
              let dropped =
                match spec.drop_policy with
                | `Any -> nil_branches <> []
                | `Priority_to winner -> (
                    match branch_of spec winner with
                    | Some wb -> List.exists (fun (b : Tables.expect) -> b = wb) nil_branches
                    | None -> nil_branches <> [])
              in
              if dropped then begin
                (* Propagate a nil upward when an enclosing merger expects this
                   branch; otherwise the packet dies here. *)
                let nil_sends =
                  List.concat_map
                    (function
                      | Tables.Distribute { version; targets } ->
                          List.filter_map
                            (function
                              | Tables.To_merger outer ->
                                  Some
                                    (send_to_merge
                                       {
                                         ctx = d.ctx;
                                         merge_id = outer;
                                         deliverer = Tables.D_merger d.merge_id;
                                         version;
                                         nil = true;
                                       })
                              | Tables.To_nf _ | Tables.Deliver -> None)
                            targets
                      | Tables.Copy _ -> [])
                    spec.next
                in
                if nil_sends = [] then incr nf_drops;
                emitter nil_sends
              end
              else begin
                (* Versions from branches that dropped under a priority policy
                   are half-processed; their ops are skipped. *)
                let nil_versions =
                  List.map (fun (b : Tables.expect) -> b.version) nil_branches
                in
                let get v =
                  if List.mem v nil_versions && v <> spec.result_version then None
                  else Context.get d.ctx v
                in
                List.iter (fun op -> Merge_op.apply op ~get) spec.ops;
                emission_of_actions ~self:(Tables.D_merger d.merge_id) d.ctx spec.next
              end
            end
          in
          Nfp_sim.Server.create ~engine
            ~name:(Printf.sprintf "merger#%d" index)
            ~ring_capacity:config.ring_capacity ~batch ~burst_saving_ns ~jitter:(jitter_for ())
            ~service_ns ~execute ()
        in
        merger_cores := Array.init (max 1 config.mergers) make_merger;
        (* The merger agent: hash the immutable PID, steer to an instance. *)
        if config.mergers > 1 then begin
          let instances = !merger_cores in
          let service_ns _ =
            Nfp_sim.Cost.ns_of_cycles cost
              (cost.ring_dequeue + cost.merger_agent + cost.ring_enqueue)
          in
          let execute (d : delivery) =
            let i = slot_of_pid (Context.pid d.ctx) (Array.length instances) in
            emitter [ (fun () -> Nfp_sim.Server.offer instances.(i) d) ]
          in
          agent_core :=
            Some
              (Nfp_sim.Server.create ~engine ~name:"merger-agent"
                 ~ring_capacity:config.ring_capacity ~batch ~burst_saving_ns
                 ~jitter:(jitter_for ()) ~service_ns ~execute ())
        end;
        let classifier =
          let service_ns (ctx : Context.t) =
            let actions = (plan_of_mid (Context.mid ctx)).classifier_actions in
            Nfp_sim.Cost.ns_of_cycles cost (cost.classifier + action_cost ctx actions)
          in
          let execute ctx =
            emission_of_actions ~self:(Tables.D_nf "classifier") ctx
              (plan_of_mid (Context.mid ctx)).classifier_actions
          in
          Nfp_sim.Server.create ~engine ~name:"classifier"
            ~ring_capacity:config.ring_capacity ~batch ~burst_saving_ns ~jitter:(jitter_for ())
            ~service_ns ~execute ()
        in
        let sampler () =
          stats_of_server classifier
          :: (Hashtbl.fold (fun _ core acc -> stats_of_server core :: acc) nf_cores []
             |> List.sort (fun a b -> compare a.core b.core))
          @ Array.to_list (Array.map stats_of_server !merger_cores)
          @ (match !agent_core with Some a -> [ stats_of_server a ] | None -> [])
        in
        (classifier, sampler)
    | `Compiled ->
        (* ----------------- compiled construction ------------------- *)
        (* One server array per NF slot: index 0 is the historical
           single instance, further indices are RSS shards added by the
           replicas knob for strategy-eligible NFs. *)
        let nf_servers : Context.t Nfp_sim.Server.t array array ref = ref [||] in
        (* Bypass state, per slot and replica: a [true] cell routes
           around that replica — its packets skip processing but still
           execute the slot's compiled action program (kept in
           [nf_cprogs]) so downstream cores and mergers see every
           expected branch. *)
        let bypassed : bool array array ref = ref [||] in
        let nf_cprogs : cprog array ref = ref [||] in
        (* Elastic steering maps, one per slot; [None] = legacy mod-n
           sharding (the slot is not scalable, or no elastic config). *)
        let steers : steer option array ref = ref [||] in
        (* Link channels in front of each NF replica's port; [None] cells
           (and the empty array, when links are off) keep the direct
           offer path. Populated after the servers exist. *)
        let nf_channels : Context.t Channel.t option array array ref = ref [||] in
        (* RSS shard steering: the packet version each slot's NF reads,
           so the send site can hash the 5-tuple that replica will
           observe. The hash runs on its own seeded stream
           ([Hashing.rss2_int]) — never correlated with the microflow
           cache's bucket hash — and is skipped entirely for
           single-replica slots, keeping the replicas=1 hot path (and
           trace) bit-identical to the pre-replication system. Upstream
           5-tuple rewrites (NAT, LB) are flow-deterministic, so every
           packet of a flow hashes alike and lands on the same replica. *)
        let nf_version_of =
          Array.of_list
            (List.map (fun (_, (e : Tables.nf_entry), _) -> e.Tables.version) nf_impls)
        in
        let rss_hash ctx slot =
          match Context.get ctx nf_version_of.(slot) with
          | None -> 0
          | Some pkt ->
              let a =
                Nfp_algo.Hashing.pack_a_int (Packet.sip_int pkt) (Packet.sport pkt)
                  (Packet.proto pkt)
              in
              let b =
                Nfp_algo.Hashing.pack_b_int (Packet.dip_int pkt) (Packet.dport pkt)
              in
              Nfp_algo.Hashing.rss2_int a b
        in
        let shard_of ctx slot n = rss_hash ctx slot mod n in
        let merger_cores : cdelivery Nfp_sim.Server.t array ref = ref [||] in
        let agent_core : cdelivery Nfp_sim.Server.t option ref = ref None in
        (* Channels into the merger ports ("merger#i", "merger-agent");
           built with the merger cores below. A Down merger link detours
           straight into the destination ring off-core — the merge
           accumulation cannot be skipped, only the fabric can. *)
        let merger_channels : cdelivery Channel.t option array ref = ref [||] in
        let agent_channel : cdelivery Channel.t option ref = ref None in
        let offer_merger i (d : cdelivery) =
          let chans = !merger_channels in
          match if Array.length chans = 0 then None else chans.(i) with
          | Some ch -> Channel.send ch d
          | None -> Nfp_sim.Server.offer !merger_cores.(i) d
        in
        let route_merge (d : cdelivery) =
          match !agent_core with
          | Some agent -> (
              match !agent_channel with
              | Some ch -> Channel.send ch d
              | None -> Nfp_sim.Server.offer agent d)
          | None ->
              offer_merger
                (slot_of_pid (Context.pid d.d_ctx) (Array.length !merger_cores))
                d
        in
        (* NF slots: dense indices in nf_impls order. *)
        let slot_of : (int * string, int) Hashtbl.t = Hashtbl.create 16 in
        List.iteri
          (fun i (mid, (e : Tables.nf_entry), _) -> Hashtbl.replace slot_of (mid, e.nf) i)
          nf_impls;
        (* Merge specs per plan, in arrays indexed by merge id. *)
        let cmerge_table =
          Array.mapi
            (fun i (_, (plan : Tables.plan), _) ->
              let mid = i + 1 in
              let max_id =
                List.fold_left (fun a (m : Tables.merge_spec) -> max a m.id) (-1) plan.merges
              in
              let arr = Array.make (max_id + 1) None in
              List.iter
                (fun (spec : Tables.merge_spec) ->
                  let drop_any, winner =
                    match spec.drop_policy with
                    | `Any -> (true, -1)
                    | `Priority_to w ->
                        let b = branch_index spec w in
                        (b < 0, b)
                  in
                  arr.(spec.id) <-
                    Some
                      {
                        m_mid = mid;
                        m_id = spec.id;
                        m_spec = spec;
                        m_expected = List.length spec.expected;
                        m_versions =
                          Array.of_list
                            (List.map (fun (e : Tables.expect) -> e.version) spec.expected);
                        m_result_version = spec.result_version;
                        m_ops = Array.of_list spec.ops;
                        m_drop_any = drop_any;
                        m_winner = winner;
                        m_next = empty_prog;
                        m_nil_sends = [||];
                        m_completion_static = 0;
                      })
                plan.merges;
              arr)
            table
        in
        let lookup_merge mid id =
          let arr = cmerge_table.(mid - 1) in
          if id < 0 || id >= Array.length arr then
            invalid_arg "System: delivery references unknown merge point"
          else
            match arr.(id) with
            | Some m -> m
            | None -> invalid_arg "System: delivery references unknown merge point"
        in
        let compile_actions ~mid ~(self : Tables.deliverer) actions =
          let copies = ref [] and sends = ref [] in
          let static = ref 0 and full_srcs = ref [] in
          List.iter
            (function
              | Tables.Copy { src_version; dst_version; full } ->
                  copies := { c_src = src_version; c_dst = dst_version; c_full = full } :: !copies;
                  if full then begin
                    static := !static + cost.copy_base;
                    full_srcs := src_version :: !full_srcs
                  end
                  else static := !static + cost.header_copy
              | Tables.Distribute { version; targets } ->
                  static := !static + (cost.ring_enqueue * List.length targets);
                  List.iter
                    (fun target ->
                      let s =
                        match target with
                        | Tables.To_nf n -> (
                            match Hashtbl.find_opt slot_of (mid, n) with
                            | Some i -> S_nf i
                            | None ->
                                invalid_arg
                                  (Printf.sprintf "System: FT references unknown NF %S" n))
                        | Tables.To_merger id ->
                            let m = lookup_merge mid id in
                            S_merge
                              { merge = m; branch = branch_index m.m_spec self; nil = false }
                        | Tables.Deliver -> S_deliver version
                      in
                      sends := s :: !sends)
                    targets)
            actions;
          {
            p_copies = Array.of_list (List.rev !copies);
            p_sends = Array.of_list (List.rev !sends);
            p_static = !static;
            p_full_srcs = Array.of_list (List.rev !full_srcs);
          }
        in
        (* Second pass: merge continuations (may reference sibling or
           enclosing merges, which all exist now). *)
        Array.iteri
          (fun i arr ->
            let mid = i + 1 in
            Array.iter
              (function
                | None -> ()
                | Some m ->
                    let spec = m.m_spec in
                    m.m_next <- compile_actions ~mid ~self:(Tables.D_merger m.m_id) spec.next;
                    m.m_completion_static <-
                      (Array.length m.m_ops * cost.merge_op) + m.m_next.p_static;
                    m.m_nil_sends <-
                      Array.of_list
                        (List.concat_map
                           (function
                             | Tables.Distribute { version = _; targets } ->
                                 List.filter_map
                                   (function
                                     | Tables.To_merger outer ->
                                         let om = lookup_merge mid outer in
                                         Some
                                           (S_merge
                                              {
                                                merge = om;
                                                branch =
                                                  branch_index om.m_spec
                                                    (Tables.D_merger m.m_id);
                                                nil = true;
                                              })
                                     | Tables.To_nf _ | Tables.Deliver -> None)
                                   targets
                             | Tables.Copy _ -> [])
                           spec.next))
              arr)
          cmerge_table;
        (* Runtime: walk a compiled send array with a cursor; the cursor
           survives backpressure retries, so each target is offered in
           order exactly once. Sends into a bypassed NF slot run the
           NF's action program immediately instead (the failed core is
           out of the graph); [drive] absorbs any backpressure of that
           rerouted emission. *)
        let rec exec_sends sends ctx =
          let n = Array.length sends in
          if n = 0 then const_true
          else begin
            let cursor = ref 0 in
            fun () ->
              let rec go i =
                if i >= n then true
                else
                  let ok =
                    match sends.(i) with
                    | S_nf slot ->
                        let reps = !nf_servers.(slot) in
                        (* Steered slots look the bucket up in the live
                           map — per attempt, so a committed flip takes
                           effect for every not-yet-offered packet, and
                           an in-flight retry lands on the new owner. *)
                        let r =
                          if Array.length reps < 2 then 0
                          else
                            match !steers.(slot) with
                            | Some st ->
                                st.st_map.(rss_hash ctx slot
                                           mod Array.length st.st_map)
                            | None -> shard_of ctx slot (Array.length reps)
                        in
                        if Array.length !bypassed > 0 && !bypassed.(slot).(r) then begin
                          incr bypassed_packets;
                          drive (exec_prog !nf_cprogs.(slot) ctx);
                          true
                        end
                        else begin
                          let chans = !nf_channels in
                          match
                            if Array.length chans = 0 then None else chans.(slot).(r)
                          with
                          | Some ch -> Channel.send ch ctx
                          | None -> Nfp_sim.Server.offer reps.(r) ctx
                        end
                    | S_merge { merge; branch; nil } ->
                        route_merge { d_ctx = ctx; d_merge = merge; d_branch = branch; d_nil = nil }
                    | S_deliver v -> (
                        match Context.get ctx v with
                        | None -> true
                        | Some pkt -> (
                            match delivery_channel with
                            | Some ch -> Channel.send ch (v, Context.pid ctx, pkt)
                            | None ->
                                deliver_out ~version:v ~pid:(Context.pid ctx) pkt;
                                true))
                  in
                  if ok then go (i + 1)
                  else begin
                    cursor := i;
                    false
                  end
              in
              go !cursor
          end
        and exec_prog prog ctx =
          let copies = prog.p_copies in
          for i = 0 to Array.length copies - 1 do
            let c = copies.(i) in
            ignore (Context.copy ctx ~src:c.c_src ~dst:c.c_dst ~full:c.c_full)
          done;
          exec_sends prog.p_sends ctx
        in
        let dyn_cycles prog ctx =
          let srcs = prog.p_full_srcs in
          let n = Array.length srcs in
          if n = 0 then 0
          else begin
            let acc = ref 0 in
            for i = 0 to n - 1 do
              acc :=
                !acc
                + int_of_float
                    (cost.copy_per_byte *. float_of_int (packet_bytes ctx srcs.(i)))
            done;
            !acc
          end
        in
        (* NF cores, one array per entry, in nf_impls order (replica 0
           first — at replicas=1 the same PRNG split order as the
           interpretive path). Replica 0 is the caller's NF instance;
           further replicas are fresh instances from [Nf.fresh], each
           with its own state, recovery cell, fault stream and probe. *)
        let servers =
          List.mapi
            (fun slot (mid, (entry : Tables.nf_entry), (nf0 : Nfp_nf.Nf.t)) ->
              let prog = compile_actions ~mid ~self:(Tables.D_nf entry.nf) entry.actions in
              let nil_sends =
                match entry.nil_target with
                | None -> [||]
                | Some id ->
                    let m = lookup_merge mid id in
                    [|
                      S_merge
                        {
                          merge = m;
                          branch = branch_index m.m_spec (Tables.D_nf entry.nf);
                          nil = true;
                        };
                    |]
              in
              let base_replicas = replica_count mid entry.nf in
              (* Scalable = the elastic controller may add/remove
                 replicas at runtime: the plan clears the NF for
                 sharding AND its state supports live extraction
                 ([Replication.migratable]). Standby replicas up to the
                 ceiling are built now — activation is then a pure
                 steering-map change. *)
              let scalable =
                match elastic with
                | Some (ec : elastic_config) ->
                    ec.max_replicas > 1
                    && Replication.migratable nf0
                    && Replication.shardable ~plan:(plan_of_mid mid)
                         ~nf_of:(fun n ->
                           let _, _, nfs = table.(mid - 1) in
                           nfs n)
                         entry.nf
                | None -> false
              in
              let n_replicas =
                match elastic with
                | Some ec when scalable -> max base_replicas ec.max_replicas
                | _ -> base_replicas
              in
              let make_replica r (nf : Nfp_nf.Nf.t) jitter =
              (* Lossless-recovery cell, armed when checkpointing is on
                 and the NF can snapshot/restore its state: the last
                 checkpoint, plus a bounded log of pre-processing packet
                 copies appended since (each carries its MID/PID/version
                 metadata). A full log forces a checkpoint early — never
                 a silent loss. [charge] is wired to the server (created
                 below) so checkpoint time lands on the NF core. *)
              let recovery =
                if not lossless then None
                else
                  match (nf.snapshot, nf.restore) with
                  | Some snap, Some restore_state ->
                      let snapref = ref (snap ()) in
                      let log : Packet.t list ref = ref [] in
                      let log_len = ref 0 in
                      let charge = ref (fun (_ : float) -> ()) in
                      let ckpt_ns = Nfp_sim.Cost.ns_of_cycles cost cost.checkpoint_cycles in
                      let take_checkpoint ~forced () =
                        (* An empty log means no packet touched the NF
                           since the last snapshot — the state cannot
                           have changed, so re-snapshotting would buy
                           nothing and still charge the core. *)
                        if !log_len > 0 then begin
                          snapref := snap ();
                          log := [];
                          log_len := 0;
                          incr checkpoints;
                          if forced then incr forced_checkpoints;
                          !charge ckpt_ns
                        end
                      in
                      let log_packet pkt =
                        if !log_len >= log_capacity then take_checkpoint ~forced:true ();
                        log := Packet.full_copy pkt :: !log;
                        incr log_len
                      in
                      (* Restore the checkpoint and re-process the log in
                         arrival order on the logged copies: state effects
                         replay exactly, nothing is emitted (the original
                         emissions stand — output suppression), and the
                         time is returned as added downtime. *)
                      let replay () =
                        restore_state !snapref;
                        let extra = ref 0.0 in
                        List.iter
                          (fun pkt ->
                            let cycles = cost.replay_cycles + nf.cost_cycles pkt in
                            (try ignore (nf.process pkt) with _ -> ());
                            incr replayed;
                            extra := !extra +. Nfp_sim.Cost.ns_of_cycles cost cycles)
                          (List.rev !log);
                        (* The replayed state is the fresh checkpoint; the
                           log restarts empty. Uncharged: the core is down
                           and the replay is already in its downtime. *)
                        snapref := snap ();
                        log := [];
                        log_len := 0;
                        !extra
                      in
                      (* Migration commit: the replica's state just
                         changed out from under the checkpoint (entries
                         carved out at the source, folded in at the
                         destination), so the recovery cell must be
                         re-seeded — otherwise a later crash-replay
                         would resurrect migrated state at the source
                         or lose absorbed state at the destination. *)
                      let refresh () =
                        snapref := snap ();
                        log := [];
                        log_len := 0
                      in
                      Some (take_checkpoint, log_packet, replay, charge, refresh)
                  | _ -> None
              in
              let static =
                cost.ring_dequeue + cost.nf_runtime + prog.p_static
                + match recovery with Some _ -> cost.log_append | None -> 0
              in
              (* Pressure-degrade switch: while this replica's own ring
                 sits above the watermark, an NF that declares a degrade
                 mode runs its coarsened semantics at its coarsened
                 cost. The predicate reads the server created below
                 (through a cell, to break the creation cycle); within
                 one breath the ring occupancy is constant, so pricing
                 and execution always agree per breath. Without an
                 overload config (or without a declared mode) [deg] is
                 [None] and this entire path is dead code. *)
              let deg = if degrade_on then nf.Nfp_nf.Nf.degrade else None in
              let self_pressured = ref (fun () -> false) in
              let deg_active = ref false in
              let service_ns ctx =
                let nf_cycles =
                  match Context.get ctx entry.version with
                  | Some pkt -> (
                      match deg with
                      | Some d when !self_pressured () -> d.Nfp_nf.Nf.d_cost_cycles pkt
                      | _ -> nf.cost_cycles pkt)
                  | None -> 0
                in
                Nfp_sim.Cost.ns_of_cycles cost (static + nf_cycles + dyn_cycles prog ctx)
              in
              let execute ctx =
                match Context.get ctx entry.version with
                | None -> const_true
                | Some pkt -> (
                    (match recovery with
                    | Some (_, log_packet, _, _, _) -> log_packet pkt
                    | None -> ());
                    let degrade_mode =
                      match deg with
                      | None -> None
                      | Some d ->
                          let p = !self_pressured () in
                          if p <> !deg_active then begin
                            deg_active := p;
                            if p then incr degrade_switches
                          end;
                          if p then Some d else None
                    in
                    let verdict =
                      try
                        match degrade_mode with
                        | Some d ->
                            incr degraded_packets;
                            d.Nfp_nf.Nf.d_process pkt
                        | None -> nf.process pkt
                      with exn ->
                        Log.warn (fun m ->
                            m "NF %s crashed on packet %Ld: %s" entry.nf (Context.pid ctx)
                              (Printexc.to_string exn));
                        Nfp_nf.Nf.Dropped
                    in
                    match verdict with
                    | Nfp_nf.Nf.Forward -> exec_prog prog ctx
                    | Nfp_nf.Nf.Dropped ->
                        if Array.length nil_sends > 0 then exec_sends nil_sends ctx
                        else begin
                          incr nf_drops;
                          const_true
                        end)
              in
              (* Replica 0 keeps the historical core name; shards get an
                 @r suffix, so fault plans can target (and crash) each
                 replica independently. *)
              let name =
                if r = 0 then Printf.sprintf "mid%d:%s" mid entry.nf
                else Printf.sprintf "mid%d:%s@%d" mid entry.nf r
              in
              let server =
                Nfp_sim.Server.create ~engine ~name ~ring_capacity:config.ring_capacity
                  ~batch ~burst_saving_ns ~jitter ?watermarks:wm
                  ?fault:(fault_for name) ~service_ns ~execute ()
              in
              self_pressured := (fun () -> Nfp_sim.Server.pressured server);
              (match recovery with
              | Some (_, _, _, charge, _) -> charge := Nfp_sim.Server.charge server
              | None -> ());
              (* Bypass recovery: mark the replica, reroute this core's
                 casualties (the in-flight batch its kill reclaimed, and
                 any pending emissions) plus the queued backlog through
                 its action program, so every packet lands in exactly
                 one ledger bucket and no merger waits on this branch.
                 Other replicas of the slot keep processing. *)
              let drain () =
                !bypassed.(slot).(r) <- true;
                Nfp_sim.Server.set_casualty_sink server (fun jobs emits ->
                    List.iter
                      (fun ctx ->
                        incr bypassed_packets;
                        drive (exec_prog prog ctx))
                      jobs;
                    List.iter drive emits);
                let backlog = Nfp_sim.Server.drain server in
                List.iter
                  (fun ctx ->
                    incr bypassed_packets;
                    drive (exec_prog prog ctx))
                  backlog;
                List.length backlog
              in
              register_probe ~nf:(mid, entry.nf) ~drain
                ?checkpoint:
                  (match recovery with
                  | Some (take_checkpoint, _, _, _, _) ->
                      Some
                        (fun () ->
                          if not (Nfp_sim.Server.is_down server) then
                            take_checkpoint ~forced:false ())
                  | None -> None)
                ?replay:
                  (match recovery with
                  | Some (_, _, replay, _, _) -> Some replay
                  | None -> None)
                server;
              ( server,
                match recovery with
                | Some (_, _, _, _, refresh) -> refresh
                | None -> fun () -> () )
              in
              let replica_nfs =
                Array.init n_replicas (fun r ->
                    if r = 0 then nf0
                    else
                      match nf0.Nfp_nf.Nf.fresh with
                      | Some fresh -> fresh ()
                      | None -> assert false (* replica_count guarantees fresh *))
              in
              (* Build replicas in index order: each creation splits the
                 jitter PRNG, and the replicas=1 trace must keep the
                 historical split sequence. Standby replicas (index >=
                 the static count) split the independent elastic stream
                 instead, leaving the main sequence untouched. *)
              let reps = Array.make n_replicas None in
              Array.iteri
                (fun r nf ->
                  let jitter =
                    if r < base_replicas then jitter_for () else elastic_jitter_for ()
                  in
                  reps.(r) <- Some (make_replica r nf jitter))
                replica_nfs;
              let pairs = Array.map Option.get reps in
              let reps = Array.map fst pairs in
              let refreshers = Array.map snd pairs in
              replica_layout :=
                ( mid,
                  entry,
                  replica_nfs,
                  Array.map
                    (fun s () -> Nfp_sim.Server.processed s)
                    reps )
                :: !replica_layout;
              (* Steering state: flows hash into [buckets] RSS buckets,
                 buckets map to replicas. The initial identity map
                 ([b mod active]) reproduces static sharding over the
                 initially-active replicas. *)
              let steer =
                match elastic with
                | Some (ec : elastic_config) when scalable ->
                    let init = min n_replicas (max base_replicas ec.min_replicas) in
                    Some
                      {
                        st_map = Array.init ec.buckets (fun b -> b mod init);
                        st_epoch = 0;
                        st_active = init;
                        st_draining = -1;
                        st_backoff = 0.0;
                        st_last_op = neg_infinity;
                        st_mig = None;
                      }
                | _ -> None
              in
              ( reps,
                prog,
                Option.map (fun st -> (st, replica_nfs, refreshers)) steer ))
            nf_impls
        in
        let built = servers in
        let servers = List.map (fun (r, _, _) -> r) built in
        let progs = List.map (fun (_, p, _) -> p) built in
        steers :=
          Array.of_list
            (List.map (fun (_, _, e) -> Option.map (fun (st, _, _) -> st) e) built);
        nf_servers := Array.of_list servers;
        nf_cprogs := Array.of_list progs;
        bypassed :=
          Array.of_list
            (List.map (fun reps -> Array.make (Array.length reps) false) servers);
        (* Channelize the NF ports. Delivery re-resolves steering and
           bypass at release time: a packet buffered on the link while a
           migration flips its bucket, or while the watchdog bypasses
           the replica, lands where the packet would be routed *now* —
           the same rule the send site applies — so channel residency
           can never resurrect a retired owner's state. The reroute of a
           Down link runs the slot's action program off-core,
           bypass-style: downstream sees every expected branch. *)
        if links_on then
          nf_channels :=
            Array.of_list
              (List.mapi
                 (fun slot reps ->
                   Array.init (Array.length reps) (fun r ->
                       let deliver ctx =
                         let reps = !nf_servers.(slot) in
                         let r' =
                           if Array.length reps < 2 then 0
                           else
                             match !steers.(slot) with
                             | Some st ->
                                 st.st_map.(rss_hash ctx slot
                                            mod Array.length st.st_map)
                             | None -> r
                         in
                         if Array.length !bypassed > 0 && !bypassed.(slot).(r') then begin
                           incr bypassed_packets;
                           drive (exec_prog !nf_cprogs.(slot) ctx);
                           true
                         end
                         else Nfp_sim.Server.offer reps.(r') ctx
                       in
                       let reroute ctx = drive (exec_prog !nf_cprogs.(slot) ctx) in
                       channel_for
                         ~name:(Nfp_sim.Server.name reps.(r))
                         ~deliver ~reroute))
                 servers);
        (* ---------------------------------------------------------- *)
        (* Elastic controller. Ticks every [control_interval_ns]      *)
        (* while the system has work (kicked from inject, stops when  *)
        (* idle, like the watchdog); per scalable slot it retires     *)
        (* drained replicas, rebalances bucket ownership, and makes   *)
        (* cooldown-gated scale decisions from ring occupancy. At     *)
        (* most one migration is in flight per slot; its commit is an *)
        (* independently scheduled event, so a down controller never  *)
        (* wedges a frozen source — the commit fires and aborts.      *)
        (* ---------------------------------------------------------- *)
        (match elastic with
        | None -> ()
        | Some (ec : elastic_config) ->
            let eslots =
              Array.of_list
                (List.concat
                   (List.mapi
                      (fun slot (reps, _, e) ->
                        match e with
                        | Some (st, nfs, refs) -> [ (slot, reps, nfs, refs, st) ]
                        | None -> [])
                      built))
            in
            if Array.length eslots > 0 then begin
              let nb = ec.buckets in
              (* Same bytes, same hash: [Flow.t] fields are the packet
                 fields [rss_hash] reads ([sip_int] is the unsigned int
                 of the 32-bit address), so the extract predicate's
                 bucket agrees with the steering bucket of every packet
                 of the flow. *)
              let bucket_of_flow (f : Flow.t) =
                let a =
                  Nfp_algo.Hashing.pack_a_int
                    (Int32.to_int f.Flow.sip land 0xffffffff)
                    f.Flow.sport f.Flow.proto
                in
                let b =
                  Nfp_algo.Hashing.pack_b_int
                    (Int32.to_int f.Flow.dip land 0xffffffff)
                    f.Flow.dport
                in
                Nfp_algo.Hashing.rss2_int a b mod nb
              in
              let owned st r =
                Array.fold_left (fun acc o -> if o = r then acc + 1 else acc) 0 st.st_map
              in
              (* A replica behind a link the channels declared Down is
                 unreachable, dead or not: the controller must not
                 activate it, rebalance onto it, or migrate toward it
                 until the partition heals. *)
              let link_ok slot r =
                let chans = !nf_channels in
                if Array.length chans = 0 then true
                else
                  match chans.(slot).(r) with
                  | Some ch -> not (Channel.is_down ch)
                  | None -> true
              in
              let alive slot (reps : Context.t Nfp_sim.Server.t array) r =
                (not (Nfp_sim.Server.is_down reps.(r))) && link_ok slot r
              in
              (* Migration transfers get their own link family
                 ("migrate:<replica>"): moved in-flight packets cross the
                 fabric like any other edge, so a plan can perturb the
                 re-home path independently of the data path. *)
              let mig_channels : (int, Context.t Channel.t option array) Hashtbl.t =
                Hashtbl.create 8
              in
              Array.iter
                (fun (slot, (reps : Context.t Nfp_sim.Server.t array), _, _, _) ->
                  Hashtbl.replace mig_channels slot
                    (Array.map
                       (fun srv ->
                         channel_for
                           ~name:("migrate:" ^ Nfp_sim.Server.name srv)
                           ~deliver:(fun ctx -> Nfp_sim.Server.offer srv ctx)
                           ~reroute:(fun ctx ->
                             drive (fun () -> Nfp_sim.Server.offer srv ctx)))
                       reps))
                eslots;
              let mig_channel slot r =
                match Hashtbl.find_opt mig_channels slot with
                | Some arr -> arr.(r)
                | None -> None
              in
              let occ reps r =
                float_of_int (Nfp_sim.Server.queue_length reps.(r))
                /. float_of_int (max 1 config.ring_capacity)
              in
              (* Highest-numbered owned buckets first: deterministic,
                 and a draining replica hands its range back in the
                 order scale-out granted it. *)
              let pick_buckets st ~src ~count =
                let picked = ref [] and n = ref 0 in
                for b = nb - 1 downto 0 do
                  if !n < count && st.st_map.(b) = src then begin
                    picked := b :: !picked;
                    incr n
                  end
                done;
                !picked
              in
              (* Phase 2: commit or roll back. Abort leaves the old map
                 in force with the source unfrozen — nothing observable
                 changed since the freeze (the backlog only aged). The
                 commit path is one simulation event: backlog partition,
                 state carve/fold, recovery-cell refresh, map flip,
                 re-home — no packet can interleave. *)
              let rec commit ((slot, reps, nfs, refs, st) as es) () =
                match st.st_mig with
                | None -> ()
                | Some mg ->
                    let now = Nfp_sim.Engine.now engine in
                    let src = reps.(mg.mg_src) and dst = reps.(mg.mg_dst) in
                    let abort () =
                      st.st_mig <- None;
                      incr migration_aborts;
                      st.st_last_op <- now;
                      st.st_backoff <- now +. ec.cooldown_ns;
                      Nfp_sim.Server.unpause src
                    in
                    if
                      !controller_down
                      || Nfp_sim.Server.is_down src
                      || Nfp_sim.Server.is_down dst
                      || not (link_ok slot mg.mg_dst)
                    then abort ()
                    else begin
                      let backlog = Nfp_sim.Server.take_backlog src in
                      let moved, kept =
                        List.partition
                          (fun ctx -> List.mem (rss_hash ctx slot mod nb) mg.mg_buckets)
                          backlog
                      in
                      if Nfp_sim.Server.free_slots dst < List.length moved then begin
                        (* No room at the destination: put the backlog
                           back untouched and retry until the deadline,
                           then roll back. *)
                        Nfp_sim.Server.requeue src backlog;
                        if
                          (* More frozen packets than the destination
                             ring can ever hold: no amount of retrying
                             helps, and every retry keeps the source
                             frozen and its backlog growing. *)
                          List.length moved > config.ring_capacity
                          || now +. ec.commit_retry_ns > mg.mg_deadline
                        then abort ()
                        else
                          Nfp_sim.Engine.schedule engine ~delay:ec.commit_retry_ns
                            (commit es)
                      end
                      else begin
                        Nfp_sim.Server.requeue src kept;
                        (* State transfer: carve the moving flows' per-
                           flow entries out of the source instance and
                           fold them into the destination ([None] =
                           Replicated_readonly, where replicas are
                           interchangeable and nothing moves). *)
                        (match nfs.(mg.mg_src).Nfp_nf.Nf.extract with
                        | Some extract ->
                            let in_moved flow =
                              List.mem (bucket_of_flow flow) mg.mg_buckets
                            in
                            Nfp_nf.Nf.absorb nfs.(mg.mg_dst) (extract in_moved)
                        | None -> ());
                        refs.(mg.mg_src) ();
                        refs.(mg.mg_dst) ();
                        List.iter (fun b -> st.st_map.(b) <- mg.mg_dst) mg.mg_buckets;
                        st.st_epoch <- st.st_epoch + 1;
                        st.st_mig <- None;
                        incr migrations;
                        migrated_packets := !migrated_packets + List.length moved;
                        st.st_last_op <- now;
                        (* Unpause first: orphaned emissions of already-
                           executed source jobs pump now, so downstream
                           sees them before anything the destination
                           emits for the re-homed packets. *)
                        Nfp_sim.Server.unpause src;
                        (* Room was verified above and nothing ran since,
                           so these offers cannot fail; [drive] is a
                           belt-and-braces backstop, not a code path.
                           Under links the re-home crosses the migrate
                           channel — drops there retransmit like any
                           other edge. *)
                        List.iter
                          (fun ctx ->
                            match mig_channel slot mg.mg_dst with
                            | Some ch -> drive (fun () -> Channel.send ch ctx)
                            | None ->
                                drive (fun () -> Nfp_sim.Server.offer dst ctx))
                          moved
                      end
                    end
              in
              (* Phase 1: freeze the source and schedule the commit one
                 transfer window later. *)
              let start ((slot, reps, _, _, st) as es) ~src ~dst ~count =
                if
                  count > 0 && src <> dst && alive slot reps src
                  && alive slot reps dst
                  && not (Nfp_sim.Server.is_paused reps.(src))
                  && Nfp_sim.Engine.now engine >= st.st_backoff
                then begin
                  let buckets = pick_buckets st ~src ~count in
                  if buckets <> [] then begin
                    st.st_mig <-
                      Some
                        {
                          mg_src = src;
                          mg_dst = dst;
                          mg_buckets = buckets;
                          mg_deadline =
                            Nfp_sim.Engine.now engine +. ec.migration_deadline_ns;
                        };
                    Nfp_sim.Server.pause reps.(src);
                    Nfp_sim.Engine.schedule engine ~delay:ec.transfer_ns (commit es)
                  end
                end
              in
              let step ((slot, reps, _, _, st) as es) =
                if st.st_mig = None then begin
                  let now = Nfp_sim.Engine.now engine in
                  let floor_active = max 1 (min ec.min_replicas (Array.length reps)) in
                  let limit = min ec.max_replicas (Array.length reps) in
                  (* Retire a drained replica: it owns no buckets, so no
                     packet can reach it — deactivation is pure
                     bookkeeping. Its counters stay in the [health]
                     sums (cluster totals must not dip when a core
                     disappears from the active set). *)
                  if st.st_draining >= 0 && owned st st.st_draining = 0 then begin
                    st.st_active <- st.st_active - 1;
                    st.st_draining <- -1;
                    incr scale_ins;
                    st.st_last_op <- now
                  end;
                  if st.st_draining >= 0 then begin
                    (* Scale-in in progress: hand the draining replica's
                       buckets to the least-owned other active replica,
                       one batch per tick. *)
                    let dst = ref (-1) in
                    for r = 0 to st.st_active - 1 do
                      if
                        r <> st.st_draining && alive slot reps r
                        && (!dst < 0 || owned st r < owned st !dst)
                      then dst := r
                    done;
                    if !dst >= 0 then
                      start es ~src:st.st_draining ~dst:!dst
                        ~count:(min ec.migration_batch (owned st st.st_draining))
                  end
                  else begin
                    (* Rebalance toward equal ownership (this is also
                       how a just-activated replica, owning nothing,
                       fills up). *)
                    let mx = ref (-1) and mn = ref (-1) in
                    for r = 0 to st.st_active - 1 do
                      if alive slot reps r then begin
                        if !mx < 0 || owned st r > owned st !mx then mx := r;
                        if !mn < 0 || owned st r < owned st !mn then mn := r
                      end
                    done;
                    if !mx >= 0 && !mn >= 0 && owned st !mx - owned st !mn >= 2 then
                      start es ~src:!mx ~dst:!mn
                        ~count:
                          (min ec.migration_batch ((owned st !mx - owned st !mn) / 2))
                    else if now -. st.st_last_op >= ec.cooldown_ns then begin
                      let max_occ = ref 0.0 in
                      for r = 0 to st.st_active - 1 do
                        if alive slot reps r then
                          max_occ := Float.max !max_occ (occ reps r)
                      done;
                      if
                        !max_occ >= ec.scale_out_occupancy && st.st_active < limit
                        && alive slot reps st.st_active
                      then begin
                        (* Activate the next standby; rebalance moves
                           buckets onto it from the next tick on. *)
                        st.st_active <- st.st_active + 1;
                        incr scale_outs;
                        st.st_last_op <- now
                      end
                      else if
                        !max_occ <= ec.scale_in_occupancy && st.st_active > floor_active
                      then begin
                        st.st_draining <- st.st_active - 1;
                        st.st_last_op <- now
                      end
                    end
                  end
                end
              in
              let active = ref false in
              let rec tick () =
                if not !controller_down then Array.iter step eslots;
                let pending =
                  Array.exists
                    (fun (_, _, _, _, st) -> st.st_mig <> None || st.st_draining >= 0)
                    eslots
                  || List.exists
                       (fun (p : probe) -> p.pr_queue () > 0 || p.pr_busy ())
                       !probes
                in
                if pending then
                  Nfp_sim.Engine.schedule engine ~delay:ec.control_interval_ns tick
                else active := false
              in
              elastic_kick :=
                (fun () ->
                  if not !active then begin
                    active := true;
                    Nfp_sim.Engine.schedule engine ~delay:ec.control_interval_ns tick
                  end);
              migrating_gauge :=
                (fun () ->
                  Array.fold_left
                    (fun acc (_, reps, _, _, st) ->
                      match st.st_mig with
                      | Some mg -> acc + Nfp_sim.Server.queue_length reps.(mg.mg_src)
                      | None -> acc)
                    0 eslots);
              (* Health view: a paused source reports "migrating", an
                 inactive replica "standby" — operators can tell a
                 quiesced or not-yet-activated core from a dead one. *)
              let by_name :
                  (string, steer * int * Context.t Nfp_sim.Server.t) Hashtbl.t =
                Hashtbl.create 32
              in
              Array.iter
                (fun (_, reps, _, _, st) ->
                  Array.iteri
                    (fun r srv ->
                      Hashtbl.replace by_name (Nfp_sim.Server.name srv) (st, r, srv))
                    reps)
                eslots;
              core_state_override :=
                (fun name ->
                  match Hashtbl.find_opt by_name name with
                  | None -> None
                  | Some (st, r, srv) ->
                      if Nfp_sim.Server.is_paused srv then Some "migrating"
                      else if r >= st.st_active then Some "standby"
                      else None);
              (* Controller fault site: the pseudo-core "elastic". *)
              match fault with
              | None -> ()
              | Some (fc : fault_config) -> (
                  match Nfp_sim.Fault.for_core fc.plan "elastic" with
                  | None -> ()
                  | Some fcore ->
                      List.iter
                        (function
                          | Nfp_sim.Fault.Crash { at_ns } ->
                              Nfp_sim.Engine.schedule engine ~delay:at_ns (fun () ->
                                  controller_down := true;
                                  Nfp_sim.Engine.schedule engine ~delay:fc.restart_ns
                                    (fun () -> controller_down := false))
                          | Nfp_sim.Fault.Hang { at_ns; duration_ns } ->
                              Nfp_sim.Engine.schedule engine ~delay:at_ns (fun () ->
                                  controller_down := true);
                              Nfp_sim.Engine.schedule engine
                                ~delay:(at_ns +. duration_ns) (fun () ->
                                  controller_down := false)
                          | Nfp_sim.Fault.Slowdown _ | Nfp_sim.Fault.Drop _ -> ())
                        fcore.Nfp_sim.Fault.events)
            end);
        (* Merge completion, shared by the full-arrival path and the
           timeout path. [nil_mask] decides the drop policy; [skip_mask]
           marks branches whose versions must not feed the merge ops —
           nil branches (half-processed) and, on a timeout, branches
           that never arrived. With [skip_mask = nil_mask] this is
           exactly the pre-timeout completion. *)
        let complete m ctx ~nil_mask ~skip_mask =
          let dropped =
            if m.m_drop_any then nil_mask <> 0 else nil_mask land (1 lsl m.m_winner) <> 0
          in
          if dropped then
            if Array.length m.m_nil_sends = 0 then begin
              incr nf_drops;
              const_true
            end
            else exec_sends m.m_nil_sends ctx
          else begin
            (if skip_mask = 0 then
               let get v = Context.get ctx v in
               Array.iter (fun op -> Merge_op.apply op ~get) m.m_ops
             else begin
               (* Versions from branches that dropped under a priority
                  policy are half-processed; their ops are skipped. *)
               let skip_versions = ref [] in
               Array.iteri
                 (fun b v ->
                   if skip_mask land (1 lsl b) <> 0 then
                     skip_versions := v :: !skip_versions)
                 m.m_versions;
               let svs = !skip_versions in
               let get v =
                 if List.mem v svs && v <> m.m_result_version then None
                 else Context.get ctx v
               in
               Array.iter (fun op -> Merge_op.apply op ~get) m.m_ops
             end);
            exec_prog m.m_next ctx
          end
        in
        let make_merger index =
          let at : (int * int * int64, cat_entry) Hashtbl.t = Hashtbl.create 1024 in
          (* Completed-merge memory (armed runs only): a branch arriving
             after its merge already completed — a straggler emitted by
             a salvaged core after a merge timeout force-completed the
             accumulation, or a late retransmission of a branch a
             timeout already nil-substituted — is consumed silently
             instead of opening a fresh accumulation that would deliver
             a duplicate. Mergers never see the same (MID, merge, PID)
             complete twice within the bounded dedup window. *)
          let done_tbl : (int * int * int64) Dedup.t = Dedup.create dedup_capacity in
          merger_dedups := done_tbl :: !merger_dedups;
          let service_ns (d : cdelivery) =
            let m = d.d_merge in
            Nfp_sim.Cost.ns_of_cycles cost
              (cost.ring_dequeue + cost.merge_delivery
              + ((m.m_completion_static + dyn_cycles m.m_next d.d_ctx) / max 1 m.m_expected)
              )
          in
          let execute (d : cdelivery) =
            let m = d.d_merge in
            let key = (m.m_mid, m.m_id, Context.pid d.d_ctx) in
            if dedup_on && Dedup.mem done_tbl key then begin
              incr deduped;
              const_true
            end
            else begin
              let entry =
                match Hashtbl.find_opt at key with
                | Some e -> e
                | None ->
                    let e = { c_received = 0; c_nil_mask = 0; c_arrived_mask = 0 } in
                    Hashtbl.replace at key e;
                    (* Arm the straggler timeout when this accumulation
                       opens: if a failed branch never shows up, merge
                       what did arrive rather than wedge the packet (the
                       drop policy still applies to arrived nils). *)
                    if merge_timeout_ns > 0.0 then
                      Nfp_sim.Engine.schedule engine ~delay:merge_timeout_ns (fun () ->
                          match Hashtbl.find_opt at key with
                          | Some e' when e' == e ->
                              Hashtbl.remove at key;
                              if dedup_on then Dedup.add done_tbl key;
                              incr merge_timeouts;
                              let missing =
                                ((1 lsl m.m_expected) - 1) land lnot e.c_arrived_mask
                              in
                              drive
                                (complete m d.d_ctx ~nil_mask:e.c_nil_mask
                                   ~skip_mask:(e.c_nil_mask lor missing))
                          | _ -> ());
                    e
              in
              entry.c_received <- entry.c_received + 1;
              if d.d_branch >= 0 then
                entry.c_arrived_mask <- entry.c_arrived_mask lor (1 lsl d.d_branch);
              if d.d_nil && d.d_branch >= 0 then
                entry.c_nil_mask <- entry.c_nil_mask lor (1 lsl d.d_branch);
              if entry.c_received < m.m_expected then const_true
              else begin
                Hashtbl.remove at key;
                if dedup_on then Dedup.add done_tbl key;
                complete m d.d_ctx ~nil_mask:entry.c_nil_mask ~skip_mask:entry.c_nil_mask
              end
            end
          in
          let name = Printf.sprintf "merger#%d" index in
          let server =
            Nfp_sim.Server.create ~engine ~name ~ring_capacity:config.ring_capacity
              ~batch ~burst_saving_ns ~jitter:(jitter_for ()) ?watermarks:wm
              ?fault:(fault_for name) ~service_ns ~execute ()
          in
          register_probe server;
          server
        in
        merger_cores := Array.init (max 1 config.mergers) make_merger;
        if links_on then
          merger_channels :=
            Array.map
              (fun srv ->
                channel_for
                  ~name:(Nfp_sim.Server.name srv)
                  ~deliver:(fun (d : cdelivery) -> Nfp_sim.Server.offer srv d)
                  ~reroute:(fun d -> drive (fun () -> Nfp_sim.Server.offer srv d)))
              !merger_cores;
        if config.mergers > 1 then begin
          let instances = !merger_cores in
          let service_ns _ =
            Nfp_sim.Cost.ns_of_cycles cost
              (cost.ring_dequeue + cost.merger_agent + cost.ring_enqueue)
          in
          let execute (d : cdelivery) =
            let i = slot_of_pid (Context.pid d.d_ctx) (Array.length instances) in
            emitter [ (fun () -> offer_merger i d) ]
          in
          let agent =
            Nfp_sim.Server.create ~engine ~name:"merger-agent"
              ~ring_capacity:config.ring_capacity ~batch ~burst_saving_ns
              ~jitter:(jitter_for ()) ?watermarks:wm ?fault:(fault_for "merger-agent")
              ~service_ns ~execute ()
          in
          register_probe agent;
          if links_on then
            agent_channel :=
              channel_for ~name:"merger-agent"
                ~deliver:(fun (d : cdelivery) -> Nfp_sim.Server.offer agent d)
                ~reroute:(fun d -> drive (fun () -> Nfp_sim.Server.offer agent d));
          agent_core := Some agent
        end;
        let classifier_progs =
          Array.init (Array.length table) (fun i ->
              compile_actions ~mid:(i + 1) ~self:(Tables.D_nf "classifier")
                (plan_of_mid (i + 1)).classifier_actions)
        in
        let classifier =
          let service_ns (ctx : Context.t) =
            let prog = classifier_progs.(Context.mid ctx - 1) in
            Nfp_sim.Cost.ns_of_cycles cost
              (cost.classifier + prog.p_static + dyn_cycles prog ctx)
          in
          let execute ctx = exec_prog classifier_progs.(Context.mid ctx - 1) ctx in
          let clf =
            Nfp_sim.Server.create ~engine ~name:"classifier"
              ~ring_capacity:config.ring_capacity ~batch ~burst_saving_ns
              ~jitter:(jitter_for ()) ?watermarks:wm ?fault:(fault_for "classifier")
              ~service_ns ~execute ()
          in
          register_probe clf;
          clf
        in
        let sampler () =
          stats_of_server classifier
          :: (List.concat_map
                (fun reps -> Array.to_list (Array.map stats_of_server reps))
                servers
             |> List.sort (fun a b -> compare a.core b.core))
          @ Array.to_list (Array.map stats_of_server !merger_cores)
          @ (match !agent_core with Some a -> [ stats_of_server a ] | None -> [])
        in
        (classifier, sampler)
  in
  (* Classifier front end: CT match, metadata tagging, first-hop actions.
     Unmatched packets are discarded (no service graph owns them) and
     counted separately from NF drops. [`Cached] resolves the flow
     through the two-level classifier (microflow cache over the
     tuple-space matcher); [`Scan] is the linear first-match reference.
     Both charge their structural cycles (zero under the default cost
     model) as added delay ahead of the classifier core. *)
  let ct = Array.map (fun (m, _, _) -> m) table in
  let clf = Nfp_packet.Classifier.create ct in
  (* [classify_pkt] resolves the MID (0 = no rule matches) and leaves
     the structural cycle charge in [classify_cycles] (an int ref, so
     storing it never allocates). The [`Cached] arm reads the 5-tuple
     straight from packet bytes and is allocation-free on a microflow
     hit; [`Scan] is the reference path and keeps its boxed forms. *)
  let classify_cycles = ref 0 in
  let classify_pkt pkt =
    match classify with
    | `Cached ->
        let mid = Nfp_packet.Classifier.classify_packet clf pkt in
        let probed = Nfp_packet.Classifier.last_probes clf in
        classify_cycles :=
          (if probed < 0 then cost.classify_hit
           else cost.classify_hit + (cost.classify_group * probed));
        mid
    | `Scan -> (
        let result, examined = Nfp_packet.Classifier.scan ct (Packet.flow pkt) in
        classify_cycles := cost.classify_rule * examined;
        match result with Some m -> m | None -> 0)
  in
  (match stats with None -> () | Some cell -> cell := sampler);
  (* Replication report: strategy, replica fan-out and per-replica
     processed counts for every NF, plus the merged state digest. Call
     it after a run drains — the digest reads live NF state. *)
  let replication_report () =
    List.rev_map
      (fun (mid, (entry : Tables.nf_entry), nfs_arr, processed_arr) ->
        let nf0 : Nfp_nf.Nf.t = nfs_arr.(0) in
        let merged_digest =
          if Array.length nfs_arr = 1 then nf0.state_digest ()
          else
            match (nf0.merge, nf0.fresh) with
            | Some merge, Some fresh ->
                let snaps =
                  Array.to_list
                    (Array.map
                       (fun (nf : Nfp_nf.Nf.t) ->
                         match nf.snapshot with
                         | Some snap -> snap ()
                         | None -> assert false (* eligibility requires it *))
                       nfs_arr)
                in
                let scratch = fresh () in
                (match scratch.restore with
                | Some restore -> restore (merge snaps)
                | None -> assert false);
                scratch.state_digest ()
            | _ ->
                (* Replicated_readonly: replicas never diverge. *)
                nf0.state_digest ()
        in
        {
          rr_mid = mid;
          rr_nf = entry.nf;
          rr_kind = nf0.kind;
          rr_strategy = Replication.derive nf0;
          rr_replicas = Array.length nfs_arr;
          rr_processed = Array.to_list (Array.map (fun f -> f ()) processed_arr);
          rr_merged_digest = merged_digest;
        })
      !replica_layout
  in
  (match replication with None -> () | Some cell -> cell := replication_report);
  (* ---------------------------------------------------------------- *)
  (* Degrade fallback: one sequential twin chain per service graph,   *)
  (* built from the plan's provably-equivalent serial order. While a  *)
  (* graph is degraded, new packets run the chain instead of the      *)
  (* parallel deployment. Twin cores draw jitter from a PRNG stream   *)
  (* independent of the main one, so building them does not perturb   *)
  (* the fault-free trace (the differential test holds this).         *)
  (* ---------------------------------------------------------------- *)
  let twin_heads =
    match fault with
    | None -> [||]
    | Some _ ->
        let twin_prng =
          Nfp_algo.Prng.create ~seed:(Int64.logxor config.seed 0x5eed_f417L)
        in
        Array.init (Array.length table) (fun i ->
            let mid = i + 1 in
            let plan = plan_of_mid mid in
            let chain =
              List.filter_map
                (fun name ->
                  List.find_map
                    (fun (m, (e : Tables.nf_entry), nf) ->
                      if m = mid && e.nf = name then Some (name, (nf : Nfp_nf.Nf.t))
                      else None)
                    nf_impls)
                plan.serial_order
            in
            let rec build = function
              | [] -> None
              | (name, (nf : Nfp_nf.Nf.t)) :: rest ->
                  let next = build rest in
                  let service_ns ((_, pkt) : int64 * Packet.t) =
                    Nfp_sim.Cost.ns_of_cycles cost
                      (cost.ring_dequeue + cost.nf_runtime + nf.cost_cycles pkt
                     + cost.ring_enqueue)
                  in
                  let execute ((pid, pkt) as job) =
                    let verdict =
                      try nf.process pkt
                      with exn ->
                        Log.warn (fun m ->
                            m "NF %s (sequential fallback) crashed on packet %Ld: %s"
                              name pid (Printexc.to_string exn));
                        Nfp_nf.Nf.Dropped
                    in
                    match verdict with
                    | Nfp_nf.Nf.Forward -> (
                        match next with
                        | Some core -> fun () -> Nfp_sim.Server.offer core job
                        | None ->
                            deliver_out ~version:1 ~pid pkt;
                            const_true)
                    | Nfp_nf.Nf.Dropped ->
                        incr nf_drops;
                        const_true
                  in
                  let cname = Printf.sprintf "seq:mid%d:%s" mid name in
                  let core =
                    Nfp_sim.Server.create ~engine ~name:cname
                      ~ring_capacity:config.ring_capacity ~batch ~burst_saving_ns
                      ~jitter:(config.jitter, Nfp_algo.Prng.split twin_prng)
                      ?watermarks:wm ?fault:(fault_for cname) ~service_ns ~execute ()
                  in
                  register_probe core;
                  Some core
            in
            build chain)
  in
  (* ---------------------------------------------------------------- *)
  (* Watchdog: per-core progress heartbeats. A core is healthy while  *)
  (* it processes packets or at least retries a stalled emission      *)
  (* (backpressure is not failure); a core with queued work and a     *)
  (* frozen heartbeat past the deadline is declared failed and its    *)
  (* recovery policy runs. The watchdog wakes on injection and stops  *)
  (* rescheduling itself when every core is idle, so a finished       *)
  (* simulation drains.                                               *)
  (* ---------------------------------------------------------------- *)
  let probe_arr = Array.of_list (List.rev !probes) in
  let detections = ref 0 and restarts = ref 0 and bypasses = ref 0 in
  let degrades = ref 0 and recoveries = ref 0 in
  let breaker_trips = ref 0 and backoffs = ref 0 in
  let degraded = Array.make (Array.length table) false in
  let wstate = Array.make (Array.length probe_arr) `Up in
  let wd_kick =
    match fault with
    | None -> fun () -> ()
    | Some (fc : fault_config) ->
        let n = Array.length probe_arr in
        let prev_processed = Array.make n 0 in
        let prev_stalled = Array.make n 0.0 in
        let last_progress = Array.make n 0.0 in
        let active = ref false in
        let next_ckpt = ref infinity in
        let mark_progress i (p : probe) now =
          prev_processed.(i) <- p.pr_processed ();
          prev_stalled.(i) <- p.pr_stalled ();
          last_progress.(i) <- now
        in
        (* Circuit breaker: consecutive watchdog detections of each
           core since its last observed processed-packet progress. The
           n-th consecutive restart backs off exponentially; past
           [breaker_threshold] the breaker trips — an NF core falls to
           the [breaker_fallback] policy instead of restart-looping
           forever. A threshold of 0 disables both (the pre-breaker
           behavior, bit for bit). *)
        let consec = Array.make n 0 in
        let breaker_on = fc.breaker_threshold > 0 in
        let recover i (p : probe) =
          incr detections;
          consec.(i) <- consec.(i) + 1;
          let restart_delay () =
            if breaker_on && consec.(i) > 1 then begin
              incr backoffs;
              Float.min fc.backoff_max_ns
                (fc.restart_ns *. (fc.backoff_factor ** float_of_int (consec.(i) - 1)))
            end
            else fc.restart_ns
          in
          let restart_core ~on_up () =
            wstate.(i) <- `Restarting;
            p.pr_kill ();
            (* Lossless restart: restore the last checkpoint and replay
               the input log before the core comes back — the replay
               time extends the outage — then re-admit the reclaimed
               casualties instead of flushing them. *)
            let replay_ns = if lossless then p.pr_replay () else 0.0 in
            Nfp_sim.Engine.schedule engine ~delay:(restart_delay () +. replay_ns)
              (fun () ->
                if lossless then salvaged := !salvaged + p.pr_casualties ();
                ignore (p.pr_revive ~flush:(not lossless));
                incr restarts;
                wstate.(i) <- `Up;
                mark_progress i p (Nfp_sim.Engine.now engine);
                on_up ())
          in
          let bypass_core () =
            wstate.(i) <- `Bypassed;
            incr bypasses;
            p.pr_kill ();
            ignore (p.pr_drain ())
          in
          match p.pr_nf with
          | None -> restart_core ~on_up:ignore ()
          | Some (mid, nfname) ->
              if breaker_on && consec.(i) > fc.breaker_threshold then begin
                incr breaker_trips;
                match fc.breaker_fallback with
                | Restart | Bypass -> bypass_core ()
                | Degrade ->
                    (* Pin the graph to its sequential twin and remove
                       the hopeless core; no [on_up] ever clears the
                       degraded flag. *)
                    degraded.(mid - 1) <- true;
                    incr degrades;
                    bypass_core ()
              end
              else (
                match fc.recovery_of nfname with
                | Restart -> restart_core ~on_up:ignore ()
                | Bypass -> bypass_core ()
                | Degrade ->
                    degraded.(mid - 1) <- true;
                    incr degrades;
                    restart_core
                      ~on_up:(fun () ->
                        degraded.(mid - 1) <- false;
                        incr recoveries)
                      ())
        in
        let rec check () =
          let now = Nfp_sim.Engine.now engine in
          (* Periodic checkpoint tick: snapshot every live core's NF
             state and truncate its input log. Rides the watchdog's
             wake/sleep cycle, so an idle system takes no checkpoints. *)
          if lossless && now >= !next_ckpt then begin
            Array.iteri
              (fun i p -> if wstate.(i) = `Up then p.pr_checkpoint ())
              probe_arr;
            next_ckpt := now +. fc.checkpoint_interval_ns
          end;
          let pending = ref false in
          Array.iteri
            (fun i p ->
              let pc = p.pr_processed () and st = p.pr_stalled () in
              if pc > prev_processed.(i) || st > prev_stalled.(i) then begin
                (* Real processed progress (not just stall retries)
                   closes the breaker window: the core is alive again. *)
                if pc > prev_processed.(i) then consec.(i) <- 0;
                mark_progress i p now
              end
              else if p.pr_queue () = 0 then
                (* An idle core is healthy. Keeping its baseline fresh
                   makes the deadline clock start when work is queued,
                   not when it last processed — otherwise a burst
                   landing on a long-idle core (e.g. merge timeouts
                   releasing a wedge) trips an instant false kill. *)
                last_progress.(i) <- now
              else if p.pr_paused () && not (p.pr_down ()) then
                (* A quiesced migration source is healthy: the elastic
                   controller froze it deliberately and owns unfreezing
                   it (commit or abort) — declaring it dead would
                   restart a core mid-handover. The breaker window
                   stays open too: a pause is not progress. *)
                last_progress.(i) <- now
              else if p.pr_busy () && not (p.pr_down ()) then
                (* A core mid-breath is healthy: its completion event is
                   already on the calendar. With large batches a single
                   breath can legally outlast the deadline while the
                   processed counter stands still — only a *down* core
                   (crashed or hung, which [interrupt] marks) may have a
                   frozen heartbeat counted against it. *)
                last_progress.(i) <- now
              else if
                wstate.(i) = `Up
                && now -. last_progress.(i) > fc.watchdog_deadline_ns
              then recover i p;
              (match wstate.(i) with
              | `Bypassed -> ()
              | `Restarting -> pending := true
              | `Up ->
                  if
                    (if p.pr_down () then p.pr_queue () > 0
                     else p.pr_queue () > 0 || p.pr_busy ())
                  then pending := true))
            probe_arr;
          if !pending then
            Nfp_sim.Engine.schedule engine ~delay:fc.watchdog_interval_ns check
          else active := false
        in
        fun () ->
          if not !active then begin
            active := true;
            (* Reset the heartbeats on wake-up: idle time must not
               count against the deadline. The checkpoint clock restarts
               with the watchdog for the same reason. *)
            let now = Nfp_sim.Engine.now engine in
            if lossless then next_ckpt := now +. fc.checkpoint_interval_ns;
            Array.iteri (fun i p -> mark_progress i p now) probe_arr;
            Nfp_sim.Engine.schedule engine ~delay:fc.watchdog_interval_ns check
          end
  in
  (* ---------------------------------------------------------------- *)
  (* Admission controller (overload config only). An escalating shed   *)
  (* level L with per-poll hysteresis: while any core's watermark      *)
  (* latch is raised, L climbs one class per poll interval (capped at  *)
  (* the deployment's highest class, which is therefore never shed);   *)
  (* when pressure clears, L relaxes one class per poll. A classified  *)
  (* packet whose chain's admission class is below L is refused at the *)
  (* NIC boundary — except a deterministic 1-in-K trickle per class,   *)
  (* so no class ever starves outright.                                *)
  (* ---------------------------------------------------------------- *)
  let shed_level = ref 0 in
  let last_poll = ref neg_infinity in
  let trickle_seen = Array.make (max_class + 1) 0 in
  let shed_packet =
    match overload with
    | None -> fun _ -> false
    | Some (oc : overload_config) ->
        fun mid ->
          let now = Nfp_sim.Engine.now engine in
          if now -. !last_poll >= oc.pressure_poll_ns then begin
            last_poll := now;
            let pressured =
              Array.exists (fun (p : probe) -> p.pr_pressured ()) probe_arr
            in
            if pressured then begin
              if !shed_level < max_class then incr shed_level
            end
            else if !shed_level > 0 then decr shed_level
          end;
          let cls = max 0 (min max_class (plan_of_mid mid).Tables.priority) in
          if cls >= !shed_level then false
          else begin
            trickle_seen.(cls) <- trickle_seen.(cls) + 1;
            if oc.shed_trickle > 0 && trickle_seen.(cls) mod oc.shed_trickle = 0 then
              false
            else begin
              incr shed_total;
              shed_class.(cls) <- shed_class.(cls) + 1;
              true
            end
          end
  in
  let health () =
    let cores =
      Array.to_list
        (Array.mapi
           (fun i (p : probe) ->
             {
               Nfp_sim.Harness.core = p.pr_name;
               state =
                 (match wstate.(i) with
                 | `Bypassed -> "bypassed"
                 | `Restarting -> "restarting"
                 | `Up ->
                     if p.pr_down () then "down"
                     else (
                       match !core_state_override p.pr_name with
                       | Some s -> s
                       | None -> "up"));
               processed = p.pr_processed ();
               queue = p.pr_queue ();
             })
           probe_arr)
    in
    let sum f = Array.fold_left (fun acc p -> acc + f p) 0 probe_arr in
    let rejected_total = sum (fun (p : probe) -> p.pr_rejected ()) in
    {
      Nfp_sim.Harness.cores;
      detections = !detections;
      crashes = sum (fun (p : probe) -> p.pr_crashes ());
      restarts = !restarts;
      bypasses = !bypasses;
      degrades = !degrades;
      recoveries = !recoveries;
      merge_timeouts = !merge_timeouts;
      bypassed_packets = !bypassed_packets;
      fault_drops = sum (fun (p : probe) -> p.pr_fault_drops ());
      flushed = sum (fun (p : probe) -> p.pr_flushed ());
      checkpoints = !checkpoints;
      forced_checkpoints = !forced_checkpoints;
      replayed = !replayed;
      deduped = !deduped;
      salvaged = !salvaged;
      drops =
        {
          Nfp_sim.Harness.ingress_rejected = !ring_drops;
          (* [ring_drops] counts exactly the NIC-boundary offer
             refusals (the only [offer] sites outside a server are in
             [inject]); every other refusal a server ring recorded is a
             backpressure retry event, not a loss. *)
          internal_rejected = max 0 (rejected_total - !ring_drops);
          nf_dropped = !nf_drops;
          no_match = !unmatched;
          fault_dropped = sum (fun (p : probe) -> p.pr_fault_drops ());
          flush_lost = sum (fun (p : probe) -> p.pr_flushed ());
          merge_timed_out = !merge_timeouts;
          shed = !shed_total;
          shed_by_class =
            (match overload with
            | None -> []
            | Some _ -> Array.to_list (Array.mapi (fun c n -> (c, n)) shed_class));
          degraded = !degraded_packets;
        };
      pressure_episodes = sum (fun (p : probe) -> p.pr_pressure_episodes ());
      breaker_trips = !breaker_trips;
      backoffs = !backoffs;
      degrade_switches = !degrade_switches;
      scale_outs = !scale_outs;
      scale_ins = !scale_ins;
      migrations = !migrations;
      migration_aborts = !migration_aborts;
      migrated_packets = !migrated_packets;
      migrating = !migrating_gauge ();
      links =
        {
          Nfp_sim.Harness.link_drops = link_stats.Channel.link_drops;
          retransmits = link_stats.Channel.retransmits;
          duplicates_suppressed = link_stats.Channel.duplicates_suppressed;
          reordered = link_stats.Channel.reordered;
          partitions = link_stats.Channel.partitions;
          reroutes = link_stats.Channel.reroutes;
        };
      dedup_entries = (if dedup_on then dedup_entries () else 0);
    }
  in
  {
    Nfp_sim.Harness.inject =
      (fun ~pid pkt ->
        wd_kick ();
        !elastic_kick ();
        let mid = classify_pkt pkt in
        Nfp_sim.Engine.schedule engine
          ~delay:(wire_delay +. Nfp_sim.Cost.ns_of_cycles cost !classify_cycles)
          (fun () ->
            if mid = 0 then incr unmatched
            else if shed_packet mid then
              (* Refused by the admission controller: counted (total and
                 per class) and gone — deliberately, before it can cost
                 a ring slot or a core cycle. *)
              ()
            else if degraded.(mid - 1) then (
              (* Sequential fallback: tag the packet as the
                 classifier would and run the twin chain. *)
              Packet.stamp pkt ~mid ~pid ~version:1;
              match twin_heads.(mid - 1) with
              | Some head ->
                  if not (Nfp_sim.Server.offer head (pid, pkt)) then
                    incr ring_drops
              | None -> deliver_out ~version:1 ~pid pkt)
            else
              let ctx = Context.create ~pid ~mid pkt in
              if not (Nfp_sim.Server.offer classifier ctx) then incr ring_drops));
    ring_drops = (fun () -> !ring_drops);
    nf_drops = (fun () -> !nf_drops);
    unmatched = (fun () -> !unmatched);
    shed = (fun () -> !shed_total);
    classifier =
      (fun () ->
        {
          Nfp_sim.Harness.hits = Nfp_packet.Classifier.cache_hits clf;
          misses = Nfp_packet.Classifier.cache_misses clf;
          evictions = Nfp_packet.Classifier.cache_evictions clf;
        });
    health;
  }

let make ?path ?classify ?config ?batch_size ?replicas ?fault ?overload ?elastic
    ?links ?stats ?replication ~plan ~nfs engine ~output =
  make_multi ?path ?classify ?config ?batch_size ?replicas ?fault ?overload ?elastic
    ?links ?stats ?replication
    ~graphs:[ (Flow_match.any, plan, nfs) ]
    engine ~output
