(** The NFP dataplane (paper §5) on the simulator.

    Deploys a compiled plan: one core for the classifier, one per NF
    (the NF plus its runtime share the core, as in the paper), and one
    per merger instance — plus a merger-agent core when more than one
    merger instance is configured (§5.3). Packet references flow
    through bounded rings; copies, merge operations and nil packets
    follow the plan's tables. *)

open Nfp_packet

type config = {
  cost : Nfp_sim.Cost.t;
  ring_capacity : int;
  mergers : int;  (** merger instances; > 1 adds the agent core *)
  jitter : float;  (** ± fractional service jitter per core *)
  seed : int64;
  batch_size : int;
      (** breath size of every core's poll loop (jobs inhaled per
          burst); default {!Nfp_sim.Cost.default}'s [batch]. 1 restores
          per-packet (legacy) execution bit-for-bit. Output is
          batch-size invariant — only timing moves (test_batch proves
          it differentially). *)
  replicas : int;
      (** target replica count for NFs the replication analysis clears
          ({!Nfp_core.Replication.shardable}: a safe state-access
          profile and no order-sensitive NF downstream); all other NFs
          keep a single instance. Default 1 — bit-identical to the
          pre-replication deployment. *)
}

val default_config : config

val core_count : config -> Nfp_core.Tables.plan -> int
(** Cores the deployment uses: classifier + NFs + mergers (+ agent). *)

(** {2 Fault tolerance} *)

type recovery =
  | Restart
      (** bring the core back after [restart_ns]; its backlog is
          dropped (accounted in [health.flushed]) *)
  | Bypass
      (** remove the core from the graph: packets skip its processing
          but still execute its action program, so mergers never wait
          on its branch — for optional NFs (monitors, taps) *)
  | Degrade
      (** run the whole service graph in the sequential order of the
          same plan on a twin chain until the core has restarted *)

type fault_config = {
  plan : Nfp_sim.Fault.plan;  (** which cores fail, how, and when *)
  watchdog_interval_ns : float;  (** heartbeat sampling period *)
  watchdog_deadline_ns : float;
      (** a core with queued work but no progress — neither a processed
          packet nor a backpressure retry — for this long is declared
          failed; backpressure alone never trips the watchdog *)
  merge_timeout_ns : float;
      (** mergers force-complete an accumulation this old with the
          versions that did arrive; 0.0 disables the timeout *)
  restart_ns : float;  (** downtime of a Restart / Degrade recovery *)
  recovery_of : string -> recovery;  (** policy per NF instance name *)
  checkpoint_interval_ns : float;
      (** period of the per-core NF state checkpoints that arm lossless
          Restart recovery: a restarting core restores its last
          snapshot, replays its input log (extending the outage by the
          replayed packets' service time, output suppressed) and
          re-admits the work the crash reclaimed instead of flushing
          it. 0.0 disables checkpointing — Restart falls back to the
          lossy flush semantics. Only NFs providing both
          [Nf.snapshot] and [Nf.restore] participate; cores whose NF
          lacks them recover lossily either way. *)
  log_capacity : int;
      (** bound on each core's input log (packets retained since its
          last checkpoint). A full log forces an early checkpoint —
          counted in [health.forced_checkpoints] — never silent
          truncation. *)
  breaker_threshold : int;
      (** circuit breaker: after this many consecutive watchdog
          detections of the same NF core with no processed-packet
          progress in between, stop restarting it and apply
          [breaker_fallback]. 0 (the default) disables the breaker and
          the restart backoff — the recover-forever behavior, bit for
          bit. *)
  backoff_factor : float;
      (** exponential restart backoff (armed with the breaker): the
          n-th consecutive restart of a core waits
          [restart_ns * backoff_factor^(n-1)], capped at
          [backoff_max_ns]; each delayed restart is counted in
          [health.backoffs] *)
  backoff_max_ns : float;  (** ceiling on the backed-off restart delay *)
  breaker_fallback : recovery;
      (** policy for a tripped core: [Bypass] removes it from the
          graph; [Degrade] pins its graph to the sequential twin and
          removes it; [Restart] is treated as [Bypass]. Infrastructure
          cores never trip (they only back off). Trips are counted in
          [health.breaker_trips]. *)
  dedup_capacity : int;
      (** bound on each (pid, version) dedup table — the delivery
          filter and every merger's completed-merge memory. The tables
          prune generationally (two half-capacity generations; a
          rotation retires the older), so an entry survives at least
          [dedup_capacity / 2] further insertions — the window a
          replayed branch or late retransmission must land inside —
          while live entries never exceed the bound
          ([health.dedup_entries] is the gauge). *)
}

val default_fault_config : fault_config
(** An empty plan, Restart everywhere, 30/120 us watchdog
    interval/deadline, 250 us merge timeout,
    {!Nfp_sim.Cost.default}'s [restart_ns], 100 us checkpoint
    interval, a 4096-packet input log, the circuit breaker
    disabled ([breaker_threshold = 0]; factor 2.0, 2 ms delay cap and
    a Bypass fallback once enabled), and 65536-entry dedup tables. *)

(** {2 Overload control} *)

type overload_config = {
  high_watermark : int;
      (** ring occupancy at which a core's pressure latch raises; must
          satisfy [0 <= low < high <= ring_capacity] *)
  low_watermark : int;
      (** occupancy at which the latch releases — the hysteresis band
          [low..high] keeps a sawtooth queue from flapping the signal *)
  shed_trickle : int;
      (** anti-starvation: of every [shed_trickle] consecutive packets
          of a class being shed, one is admitted anyway (deterministic);
          0 sheds the class outright *)
  degrade_enabled : bool;
      (** let NFs that declare an [Nf.degrade] mode coarsen while their
          own ring sits above the watermark *)
  pressure_poll_ns : float;
      (** minimum interval between shed-level re-evaluations at
          ingress; the shed ladder moves at most one class per poll *)
}
(** Arms the overload control plane (compiled path only): every ring
    gets the high/low watermark latch, the classifier front end gains
    the priority-aware admission controller (chains with a lower
    [Tables.plan.priority] shed first; the deployment's highest class
    is never shed), and NFs with a declared degrade mode coarsen under
    their own core's occupancy pressure. A deployment built without an
    overload config is bit-identical to the pre-overload system. *)

val default_overload_config : overload_config
(** Watermarks 96/48 (3/4 and 3/8 of the default ring capacity), a
    1-in-16 trickle, degrade enabled, 2 us poll interval. *)

(** {2 Elastic scale-out} *)

type elastic_config = {
  min_replicas : int;
      (** scale-in floor; also the initially-active replica count *)
  max_replicas : int;
      (** scale-out ceiling; standby replicas up to this count are
          built at deployment and activated at runtime *)
  buckets : int;
      (** steering granularity: flows hash into this many RSS buckets,
          each owned by one replica; migrations re-home whole buckets.
          Must be [>= max_replicas]. *)
  control_interval_ns : float;  (** controller tick period *)
  scale_out_occupancy : float;
      (** scale out when any active replica's queue occupancy (fraction
          of ring capacity) reaches this *)
  scale_in_occupancy : float;
      (** scale in when every active replica sits at or below this;
          must be [< scale_out_occupancy] (hysteresis) *)
  migration_batch : int;  (** max buckets re-homed per migration *)
  transfer_ns : float;
      (** modeled state-transfer window: the source replica stays
          frozen this long between freeze and commit *)
  migration_deadline_ns : float;
      (** a migration that cannot commit by freeze + deadline
          (destination full, a party down) aborts, rolling back to the
          old steering map with nothing observable changed *)
  commit_retry_ns : float;
      (** retry period of a commit blocked on destination ring space *)
  cooldown_ns : float;
      (** minimum time between scale decisions per NF slot *)
}
(** Arms elastic scale-out with live migration (compiled path only).
    Per NF the plan clears for sharding ({!Replication.shardable}) and
    whose state supports runtime extraction
    ({!Replication.migratable}), a controller watches per-replica ring
    occupancy and scales the replica set out/in at runtime. Every
    bucket move is a two-phase migration: freeze the source (its ring
    keeps accepting — backpressure, never loss), wait out the transfer
    window, then atomically carve the moving flows' state out of the
    source NF, fold it into the destination, re-home the frozen
    packets and flip the steering map — or abort and roll back if any
    party crashed or the destination stayed full past the deadline.
    Exactly-once delivery is guaranteed by the (pid, version) dedup
    layer, which arms whenever elastic is on. A deployment built
    without an elastic config — or with one whose thresholds never
    trigger — produces a packet trace bit-identical to the pre-elastic
    system. *)

val default_elastic_config : elastic_config
(** 1..4 replicas over 64 buckets; 20 us ticks, scale out at 50%
    occupancy, in at 5%; 16-bucket batches, 30 us transfer window,
    200 us deadline, 2 us commit retry, 50 us cooldown. *)

(** {2 Lossy fabric and reliable channels} *)

type links_config = {
  link_plan : Nfp_sim.Fault.link_plan;
      (** which links misbehave, how, and when; link names are the
          destination port — the core name for NF/merger/classifier
          edges ["mid1:NAT"], ["merger#0"], the pseudo-ports
          ["delivery"] and ["migrate:<replica>"] for the egress and
          migration-transfer edges — with trailing-[*] prefix patterns
          (["mid1:*"], ["*"]) matching families *)
  reliable : bool;
      (** arm the per-link ARQ channels (sequence numbers, cumulative
          acks, NACK/RTO retransmission, bounded reorder buffer,
          receiver dedup, health probes + partition reroute); [false]
          models the raw fabric — drops are real losses (the run
          ledger's [in_flight] residual) and duplicates deliver twice *)
  link_window : int;
      (** sender window per link: max unacked sends before [send]
          refuses (backpressure — the upstream core stalls and
          retries, exactly like a full ring) *)
  ack_interval_ns : float;
      (** cumulative-ack cadence — acks ride breath completions, so
          this is the granularity at which the retransmit buffer
          prunes *)
  rto_ns : float;  (** initial head-of-line retransmit timeout *)
  rto_backoff : float;
      (** RTO multiplier per consecutive firing without ack progress
          (exponential backoff); must be [>= 1.0] *)
  rto_max_ns : float;  (** ceiling on the backed-off RTO *)
  retransmit_budget : int;
      (** retransmissions of one packet before the link is declared
          Down and its unacked traffic reroutes *)
  reorder_window : int;
      (** receiver reorder-buffer span in sequence numbers; arrivals
          beyond it are refused at the port and recovered by
          retransmission *)
  probe_interval_ns : float;
      (** link health-probe cadence while data is outstanding;
          [probe_timeout_k] consecutive probes finding the link
          partitioned declare it Down. 0 disables probing — budget
          exhaustion still detects partitions, just slower. *)
  probe_timeout_k : int;  (** consecutive probe timeouts declaring Down *)
}
(** Arms the lossy-interconnect fault domain (compiled path only):
    every inter-core edge whose destination port the plan names
    (classifier->NF, NF->NF, branch->merger, merger->delivery,
    migration transfers) becomes a modeled link with its own seeded
    fault processes — drop probability, duplication, bounded
    reordering, Gilbert–Elliott burst loss, partition/flap windows
    (see {!Nfp_sim.Fault.link_fault}) — and, when [reliable] is set,
    an ARQ channel that makes delivery exactly-once over that fabric:
    the differential suite holds a lossy reliable run to the same
    delivery multisets and NF state digests as the lossless run, and
    a partition mid-run to zero delivered-packet loss via reroute
    (test/test_links.ml). A Down link also feeds the elastic
    controller, which stops activating or migrating toward the
    unreachable replica until the partition heals. Link taxonomy
    counters surface as [health.links]
    ({!Nfp_sim.Harness.link_stats}). A deployment built without a
    links config — or with an empty plan and [reliable = false] — is
    bit-identical to the pre-links system. *)

val default_links_config : links_config
(** An empty plan; reliable, window 256 over a 256-seq reorder buffer,
    1 us ack cadence, 25 us RTO backing off 2x to 400 us, a 16-retry
    budget, 5 us probes declaring Down after 3 misses. *)

type core_stats = {
  core : string;
      (** classifier, mid<k>:<nf> (replica 0), mid<k>:<nf>@<r> (RSS
          shard r ≥ 1), merger#<i>, merger-agent *)
  busy_ns : float;
  stalled_ns : float;  (** time blocked on downstream backpressure *)
  processed : int;
  rejected : int;  (** offers refused because the core's ring was full *)
  queue : int;  (** ring occupancy when sampled *)
}

(** {2 Intra-NF replication} *)

type replica_report = {
  rr_mid : int;
  rr_nf : string;  (** plan instance name *)
  rr_kind : string;
  rr_strategy : Nfp_core.Replication.strategy;  (** derived, not configured *)
  rr_replicas : int;  (** instances actually deployed for this NF *)
  rr_processed : int list;  (** per-replica processed counts, shard order *)
  rr_merged_digest : int;
      (** the state digest a single unreplicated instance would hold:
          replica snapshots combined by [Nf.merge] and restored into a
          fresh scratch instance (Shared_nothing), or the instance
          digest directly (single replica / read-only state). Read it
          after the run drains — it reflects live NF state. *)
}
(** One entry per NF of the deployment, from the [?replication] report
    of {!make}/{!make_multi}. *)

val make :
  ?path:[ `Compiled | `Interpretive ] ->
  ?classify:[ `Cached | `Scan ] ->
  ?config:config ->
  ?batch_size:int ->
  ?replicas:int ->
  ?fault:fault_config ->
  ?overload:overload_config ->
  ?elastic:elastic_config ->
  ?links:links_config ->
  ?stats:(unit -> core_stats list) ref ->
  ?replication:(unit -> replica_report list) ref ->
  plan:Nfp_core.Tables.plan ->
  nfs:(string -> Nfp_nf.Nf.t) ->
  Nfp_sim.Engine.t ->
  output:(pid:int64 -> Packet.t -> unit) ->
  Nfp_sim.Harness.system
(** A fresh single-graph deployment as a {!Nfp_sim.Harness.system};
    [nfs] maps plan instance names to NF implementations.
    @raise Invalid_argument when an NF name has no implementation. *)

val make_multi :
  ?path:[ `Compiled | `Interpretive ] ->
  ?classify:[ `Cached | `Scan ] ->
  ?config:config ->
  ?batch_size:int ->
  ?replicas:int ->
  ?fault:fault_config ->
  ?overload:overload_config ->
  ?elastic:elastic_config ->
  ?links:links_config ->
  ?stats:(unit -> core_stats list) ref ->
  ?replication:(unit -> replica_report list) ref ->
  graphs:(Flow_match.t * Nfp_core.Tables.plan * (string -> Nfp_nf.Nf.t)) list ->
  Nfp_sim.Engine.t ->
  output:(pid:int64 -> Packet.t -> unit) ->
  Nfp_sim.Harness.system
(** A deployment hosting several service graphs behind one classifier —
    the paper's Classification Table (Fig. 4): each entry's flow match
    steers packets into its graph (MID = 1-based table position, first
    match wins). NF cores are per graph; merger instances are shared
    ("a merger instance can merge any packet from any service graph",
    §5.3). Unmatched packets are discarded and counted via the system's
    [unmatched] counter, separate from NF drops. When a [stats] ref is
    supplied it is filled with a sampler of per-core utilization
    counters.

    [classify] selects how the front end resolves a packet's 5-tuple
    against the table. [`Cached] (the default) uses the two-level
    classifier — {!Nfp_packet.Classifier}'s exact-match microflow cache
    backed by the tuple-space matcher — whose hit/miss/eviction
    counters the system exposes through
    [Nfp_sim.Harness.system.classifier]; [`Scan] is the linear
    first-match reference. Both assign identical MIDs; their structural
    cycle costs ([classify_hit]/[classify_group]/[classify_rule], zero
    in {!Nfp_sim.Cost.default}, charged in
    {!Nfp_sim.Cost.classified}) are added as delay ahead of the
    classifier core, so measured latency reflects the lookup structure
    when those terms are enabled.

    [batch_size] overrides [config.batch_size] for this deployment —
    the knob the batch bench sweeps without rebuilding configs.

    [replicas] overrides [config.replicas] (compiled path only): NFs
    the replication analysis clears ({!Nfp_core.Replication.shardable}
    — a safe state-access profile, the [fresh]/[merge] machinery, and
    no Sequential-strategy NF downstream in the graph) are deployed as
    that many RSS-sharded instances. A shard stage at
    every send site steers each flow to a fixed replica by hashing its
    packed 5-tuple on an independent seeded stream
    ({!Nfp_algo.Hashing.rss2_int} — uncorrelated with the microflow
    cache's bucket hash), so per-flow state never splits across
    replicas; commutative state recombines through [Nf.merge] (see
    {!replica_report}). Replication composes with batching, fault
    injection, checkpoints and lossless replay — each replica carries
    its own recovery cell, probe, and health/ledger counters (core
    names [mid<k>:<nf>@<r>] are independently targetable by fault
    plans). The default (1) is bit-identical to the pre-replication
    deployment. When a [replication] ref is supplied it is filled with
    a thunk producing the per-NF {!replica_report} list.

    [path] selects the execution strategy. [`Compiled] (the default)
    translates every plan once, at deployment time, into a preresolved
    program: merge specs in arrays indexed by merge id, NF and merger
    targets bound to their server slots, static per-action cycle costs
    folded into constants, and emissions as cursor-walked arrays.
    [`Interpretive] walks the plan's tables per packet; it is the
    executable reference semantics and the two paths produce
    packet-for-packet identical results.

    [fault] (compiled path only) arms the fault-tolerance subsystem:
    the plan's perturbations are installed on the named cores, a
    watchdog detects dead or wedged cores from progress heartbeats and
    applies each NF's {!recovery} policy (infrastructure cores always
    restart), mergers time out accumulations a failed branch would
    otherwise wedge, and a sequential twin chain per graph backs the
    [Degrade] policy. When [checkpoint_interval_ns] is positive, NF
    cores additionally checkpoint their state periodically and log
    post-classifier input packets, making Restart lossless: restore +
    deterministic replay + re-admission of reclaimed work, with
    duplicate emissions suppressed at the mergers and the output (the
    recovered run's merged output trace is byte-identical to the
    fault-free run — test/test_recovery.ml proves it differentially).
    Current counters are exposed through the system's [health] field.
    A [fault] config whose plan is {!Nfp_sim.Fault.empty} leaves the
    packet trace byte-identical to a system built without [fault] (the
    differential test in test/test_fastpath.ml enforces this).

    [overload] (compiled path only) arms the overload control plane:
    watermark backpressure latches on every ring, the priority-aware
    admission controller at the classifier (shed counts exposed
    through the system's [shed] counter and [health.drops]), and
    per-NF pressure-degrade modes. Without it — or with watermarks the
    workload never reaches — the deployment's output is bit-identical
    to the pre-overload system (test/test_overload.ml enforces this).

    [links] (compiled path only) arms the lossy-interconnect fault
    domain and, when its [reliable] flag is set, the per-link ARQ
    channels — see {!links_config}.
    @raise Invalid_argument on an empty table, a missing NF, invalid
    overload watermarks, or [fault], [overload], [links] or
    [replicas > 1] combined with the [`Interpretive] path. *)
