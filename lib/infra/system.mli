(** The NFP dataplane (paper §5) on the simulator.

    Deploys a compiled plan: one core for the classifier, one per NF
    (the NF plus its runtime share the core, as in the paper), and one
    per merger instance — plus a merger-agent core when more than one
    merger instance is configured (§5.3). Packet references flow
    through bounded rings; copies, merge operations and nil packets
    follow the plan's tables. *)

open Nfp_packet

type config = {
  cost : Nfp_sim.Cost.t;
  ring_capacity : int;
  mergers : int;  (** merger instances; > 1 adds the agent core *)
  jitter : float;  (** ± fractional service jitter per core *)
  seed : int64;
}

val default_config : config

val core_count : config -> Nfp_core.Tables.plan -> int
(** Cores the deployment uses: classifier + NFs + mergers (+ agent). *)

type core_stats = {
  core : string;  (** classifier, mid<k>:<nf>, merger#<i>, merger-agent *)
  busy_ns : float;
  stalled_ns : float;  (** time blocked on downstream backpressure *)
  processed : int;
  queue : int;  (** ring occupancy when sampled *)
}

val make :
  ?path:[ `Compiled | `Interpretive ] ->
  ?classify:[ `Cached | `Scan ] ->
  ?config:config ->
  ?stats:(unit -> core_stats list) ref ->
  plan:Nfp_core.Tables.plan ->
  nfs:(string -> Nfp_nf.Nf.t) ->
  Nfp_sim.Engine.t ->
  output:(pid:int64 -> Packet.t -> unit) ->
  Nfp_sim.Harness.system
(** A fresh single-graph deployment as a {!Nfp_sim.Harness.system};
    [nfs] maps plan instance names to NF implementations.
    @raise Invalid_argument when an NF name has no implementation. *)

val make_multi :
  ?path:[ `Compiled | `Interpretive ] ->
  ?classify:[ `Cached | `Scan ] ->
  ?config:config ->
  ?stats:(unit -> core_stats list) ref ->
  graphs:(Flow_match.t * Nfp_core.Tables.plan * (string -> Nfp_nf.Nf.t)) list ->
  Nfp_sim.Engine.t ->
  output:(pid:int64 -> Packet.t -> unit) ->
  Nfp_sim.Harness.system
(** A deployment hosting several service graphs behind one classifier —
    the paper's Classification Table (Fig. 4): each entry's flow match
    steers packets into its graph (MID = 1-based table position, first
    match wins). NF cores are per graph; merger instances are shared
    ("a merger instance can merge any packet from any service graph",
    §5.3). Unmatched packets are discarded and counted via the system's
    [unmatched] counter, separate from NF drops. When a [stats] ref is
    supplied it is filled with a sampler of per-core utilization
    counters.

    [classify] selects how the front end resolves a packet's 5-tuple
    against the table. [`Cached] (the default) uses the two-level
    classifier — {!Nfp_packet.Classifier}'s exact-match microflow cache
    backed by the tuple-space matcher — whose hit/miss/eviction
    counters the system exposes through
    [Nfp_sim.Harness.system.classifier]; [`Scan] is the linear
    first-match reference. Both assign identical MIDs; their structural
    cycle costs ([classify_hit]/[classify_group]/[classify_rule], zero
    in {!Nfp_sim.Cost.default}, charged in
    {!Nfp_sim.Cost.classified}) are added as delay ahead of the
    classifier core, so measured latency reflects the lookup structure
    when those terms are enabled.

    [path] selects the execution strategy. [`Compiled] (the default)
    translates every plan once, at deployment time, into a preresolved
    program: merge specs in arrays indexed by merge id, NF and merger
    targets bound to their server slots, static per-action cycle costs
    folded into constants, and emissions as cursor-walked arrays.
    [`Interpretive] walks the plan's tables per packet; it is the
    executable reference semantics and the two paths produce
    packet-for-packet identical results.
    @raise Invalid_argument on an empty table or a missing NF. *)
