(* Link channels: every inter-core edge of the deployment crosses one.

   A channel models the fabric port in front of a destination core's
   ring (so all edges landing on one core — classifier->NF, NF->NF,
   branch->merger, merger->delivery — share its link state, the way
   they share the physical port). Two modes:

   - Raw: the fabric's fault processes ([Nfp_sim.Fault.transit]) apply
     to every send and nothing protects the payload — drops vanish into
     the run ledger's in-flight residual, duplicates deliver twice,
     reordered transits arrive late. With no matching link spec a raw
     channel is a transparent function call, byte-identical to no
     channel at all.

   - Reliable: an opt-in ARQ layer over the same lossy fabric.
     Per-link sequence numbers; a bounded sender window (a full window
     refuses the send, preserving the upstream cursor-retry
     backpressure discipline); cumulative acks on a breath-completion
     cadence; NACK-driven retransmission when an out-of-order arrival
     exposes a gap, plus a head-of-line retransmit timer with
     exponential backoff and a per-packet budget; a bounded reorder
     buffer releasing strictly in sequence order (NFP's order-sensitive
     chains survive fabric reordering); receiver-side dedup by
     sequence; and link health probes that declare the link Down after
     [probe_timeout_k] consecutive timeouts inside a partition window —
     unacked packets then detour through the caller's [reroute] path
     and the link recovers (flap support) when a later send finds the
     partition over.

   Every timer self-quenches when its work drains — the simulation
   engine runs until its event heap empties, so a perpetual probe or
   ack tick would hang every run. Acks and probes are control-plane
   exchanges piggybacked on breath completions: they never traverse the
   lossy fabric themselves (the data-loss case is what the retransmit
   machinery exists for), which keeps the protocol provably
   terminating. *)

type stats = {
  mutable link_drops : int;
  mutable retransmits : int;
  mutable duplicates_suppressed : int;
  mutable reordered : int;
  mutable partitions : int;
  mutable reroutes : int;
}

let fresh_stats () =
  {
    link_drops = 0;
    retransmits = 0;
    duplicates_suppressed = 0;
    reordered = 0;
    partitions = 0;
    reroutes = 0;
  }

type reliability = {
  window : int;  (* max unacked sends; a full window refuses (backpressure) *)
  ack_interval_ns : float;  (* cumulative-ack cadence *)
  rto_ns : float;  (* initial head-of-line retransmit timeout *)
  rto_backoff : float;  (* RTO multiplier per consecutive firing *)
  rto_max_ns : float;  (* RTO ceiling *)
  retransmit_budget : int;  (* per-packet retransmissions before Down escalation *)
  reorder_window : int;  (* receiver reorder-buffer span *)
  probe_interval_ns : float;  (* health-probe cadence while data is outstanding *)
  probe_timeout_k : int;  (* consecutive probe timeouts declaring Down *)
  ack_ns : float;  (* processing cost of one cumulative ack *)
  retransmit_ns : float;  (* added transit delay of a retransmission *)
}

type 'a entry = { payload : 'a; mutable attempts : int; mutable last_tx : float }

type 'a t = {
  name : string;
  engine : Nfp_sim.Engine.t;
  state : Nfp_sim.Fault.link_state option;
  rel : reliability option;
  deliver : 'a -> bool;  (* the destination ring; [false] = full *)
  reroute : 'a -> unit;  (* detour around a Down link *)
  stats : stats;
  (* --- sender --- *)
  mutable next_seq : int;
  unacked : (int, 'a entry) Hashtbl.t;
  mutable unacked_lo : int;  (* lowest possibly-unacked seq, for O(1) head scans *)
  mutable rto_armed : bool;
  mutable rto_streak : int;  (* consecutive RTO firings without ack progress *)
  mutable ack_armed : bool;
  mutable probe_armed : bool;
  mutable probe_fails : int;
  mutable down : bool;
  (* --- receiver --- *)
  mutable expected : int;
  reorder : (int, 'a) Hashtbl.t;
  mutable release_pending : bool;  (* in-order release stalled on a full ring *)
}

let create ~engine ~name ?state ?reliability ~deliver ~reroute ~stats () =
  {
    name;
    engine;
    state;
    rel = reliability;
    deliver;
    reroute;
    stats;
    next_seq = 0;
    unacked = Hashtbl.create 16;
    unacked_lo = 0;
    rto_armed = false;
    rto_streak = 0;
    ack_armed = false;
    probe_armed = false;
    probe_fails = 0;
    down = false;
    expected = 0;
    reorder = Hashtbl.create 16;
    release_pending = false;
  }

let name ch = ch.name

let is_down ch = ch.down

let in_flight ch = Hashtbl.length ch.unacked

let now ch = Nfp_sim.Engine.now ch.engine

(* Run a refused delivery to completion off-core, at the same
   stall-poll cadence as a server's flush loop: used where the channel
   has already accepted the packet (delayed raw transits, Down-flush)
   and the only consumer left is the destination ring. *)
let rec drive_deliver ch x =
  if not (ch.deliver x) then
    Nfp_sim.Engine.schedule ch.engine ~delay:150.0 (fun () -> drive_deliver ch x)

(* ------------------------------------------------------------------ *)
(* Receiver: dedup, bounded reorder buffer, in-order release           *)
(* ------------------------------------------------------------------ *)

let rec release ch =
  if not ch.release_pending then
    match Hashtbl.find_opt ch.reorder ch.expected with
    | None -> ()
    | Some payload ->
        if ch.deliver payload then begin
          Hashtbl.remove ch.reorder ch.expected;
          ch.expected <- ch.expected + 1;
          arm_ack ch;
          release ch
        end
        else begin
          (* Destination ring full: the head (and everything behind it)
             stays buffered; retry at the stall-poll cadence. *)
          ch.release_pending <- true;
          Nfp_sim.Engine.schedule ch.engine ~delay:150.0 (fun () ->
              ch.release_pending <- false;
              release ch)
        end

(* Cumulative ack: prune every send below the receiver's [expected].
   One event per cadence interval, armed by release progress and
   re-armed only while something was pruned — an idle channel schedules
   nothing. *)
and arm_ack ch =
  match ch.rel with
  | None -> ()
  | Some rel ->
      if (not ch.ack_armed) && Hashtbl.length ch.unacked > 0 then begin
        ch.ack_armed <- true;
        Nfp_sim.Engine.schedule ch.engine ~delay:(rel.ack_interval_ns +. rel.ack_ns)
          (fun () ->
            ch.ack_armed <- false;
            let pruned = ref false in
            while ch.unacked_lo < ch.expected do
              if Hashtbl.mem ch.unacked ch.unacked_lo then begin
                Hashtbl.remove ch.unacked ch.unacked_lo;
                pruned := true
              end;
              ch.unacked_lo <- ch.unacked_lo + 1
            done;
            if !pruned then ch.rto_streak <- 0;
            (* Releases since this ack was armed may already warrant the
               next one. *)
            if Hashtbl.length ch.unacked > 0 && ch.unacked_lo < ch.expected then
              arm_ack ch)
      end

(* ------------------------------------------------------------------ *)
(* Sender: transit draws, RTO + NACK retransmission, health probes     *)
(* ------------------------------------------------------------------ *)

let rec arrive ch seq payload =
  match ch.rel with
  | None -> assert false (* raw channels never sequence *)
  | Some rel ->
      if seq < ch.expected || Hashtbl.mem ch.reorder seq then
        (* A fabric duplicate, or a retransmission of something already
           received: consumed by the sequence filter. *)
        ch.stats.duplicates_suppressed <- ch.stats.duplicates_suppressed + 1
      else if seq >= ch.expected + rel.reorder_window then
        (* Beyond the reorder buffer: the port refuses the copy; the
           retransmit machinery re-delivers once the window advances. *)
        ch.stats.link_drops <- ch.stats.link_drops + 1
      else begin
        Hashtbl.replace ch.reorder seq payload;
        if seq > ch.expected then nack ch ~upto:seq;
        release ch
      end

(* First transmission: drawn against the fabric at send time. A clean
   pass arrives synchronously — a lossless reliable channel adds no
   latency to the payload path. *)
and transmit ch seq payload =
  match ch.state with
  | None -> arrive ch seq payload
  | Some st -> (
      match Nfp_sim.Fault.transit st ~now_ns:(now ch) with
      | Nfp_sim.Fault.T_drop -> ch.stats.link_drops <- ch.stats.link_drops + 1
      | Nfp_sim.Fault.T_pass -> arrive ch seq payload
      | Nfp_sim.Fault.T_pass_dup gap ->
          arrive ch seq payload;
          Nfp_sim.Engine.schedule ch.engine ~delay:gap (fun () ->
              arrive ch seq payload)
      | Nfp_sim.Fault.T_delay d ->
          ch.stats.reordered <- ch.stats.reordered + 1;
          Nfp_sim.Engine.schedule ch.engine ~delay:d (fun () ->
              arrive ch seq payload))

(* A retransmission pays [retransmit_ns] on top of whatever the fabric
   does to it — and the fabric may well lose it again. *)
and retransmit ch seq (e : 'a entry) rel =
  ch.stats.retransmits <- ch.stats.retransmits + 1;
  e.last_tx <- now ch;
  let deliver_later extra =
    Nfp_sim.Engine.schedule ch.engine ~delay:(rel.retransmit_ns +. extra) (fun () ->
        arrive ch seq e.payload)
  in
  match ch.state with
  | None -> deliver_later 0.0
  | Some st -> (
      match Nfp_sim.Fault.transit st ~now_ns:(now ch) with
      | Nfp_sim.Fault.T_drop -> ch.stats.link_drops <- ch.stats.link_drops + 1
      | Nfp_sim.Fault.T_pass -> deliver_later 0.0
      | Nfp_sim.Fault.T_pass_dup gap ->
          deliver_later 0.0;
          deliver_later gap
      | Nfp_sim.Fault.T_delay d ->
          ch.stats.reordered <- ch.stats.reordered + 1;
          deliver_later d)

(* NACK: an out-of-order arrival at [upto] exposes every missing seq
   below it; retransmit the ones still unacked and not merely buffered,
   at most once per ack interval each (the guard stops a jumbled —
   delayed, not lost — transit from triggering a retransmission storm
   while its original is still in flight). *)
and nack ch ~upto =
  match ch.rel with
  | None -> ()
  | Some rel ->
      let t = now ch in
      for seq = ch.expected to upto - 1 do
        if not (Hashtbl.mem ch.reorder seq) then
          match Hashtbl.find_opt ch.unacked seq with
          | Some e when t -. e.last_tx >= rel.ack_interval_ns ->
              e.attempts <- e.attempts + 1;
              if e.attempts > rel.retransmit_budget then go_down ch
              else retransmit ch seq e rel
          | _ -> ()
      done

(* Head-of-line retransmit timer: armed while anything is unacked,
   backed off exponentially while acks make no progress. Budget
   exhaustion escalates to Down — the retransmit path is itself a
   partition detector for fabrics that eat every copy. *)
and arm_rto ch =
  match ch.rel with
  | None -> ()
  | Some rel ->
      if (not ch.rto_armed) && (not ch.down) && Hashtbl.length ch.unacked > 0
      then begin
        ch.rto_armed <- true;
        let delay =
          Float.min rel.rto_max_ns
            (rel.rto_ns *. (rel.rto_backoff ** float_of_int ch.rto_streak))
        in
        Nfp_sim.Engine.schedule ch.engine ~delay (fun () ->
            ch.rto_armed <- false;
            if not ch.down then begin
              (* Skip seqs the acks already pruned. *)
              while
                ch.unacked_lo < ch.next_seq
                && not (Hashtbl.mem ch.unacked ch.unacked_lo)
              do
                ch.unacked_lo <- ch.unacked_lo + 1
              done;
              match Hashtbl.find_opt ch.unacked ch.unacked_lo with
              | None -> ()  (* everything acked: quench *)
              | Some e ->
                  if
                    ch.unacked_lo < ch.expected
                    || Hashtbl.mem ch.reorder ch.unacked_lo
                  then
                    (* Received (released or buffered) but not yet
                       cumulatively acked: no data to recover, just wait
                       for the ack cadence. *)
                    arm_rto ch
                  else begin
                    e.attempts <- e.attempts + 1;
                    if e.attempts > rel.retransmit_budget then go_down ch
                    else begin
                      ch.rto_streak <- ch.rto_streak + 1;
                      retransmit ch ch.unacked_lo e rel;
                      arm_rto ch
                    end
                  end
            end)
      end

(* Down transition: flush the port in sequence order — buffered
   arrivals deliver (they made it across), unacked sends detour through
   [reroute] — then resync the receiver to the sender's next sequence
   number (an out-of-band control-plane exchange, like a migration
   commit). The link stays Down until a later send observes the
   partition window over. *)
and go_down ch =
  if not ch.down then begin
    ch.down <- true;
    ch.stats.partitions <- ch.stats.partitions + 1;
    for seq = ch.expected to ch.next_seq - 1 do
      match Hashtbl.find_opt ch.reorder seq with
      | Some payload ->
          Hashtbl.remove ch.reorder seq;
          drive_deliver ch payload
      | None -> (
          match Hashtbl.find_opt ch.unacked seq with
          | Some e ->
              ch.stats.reroutes <- ch.stats.reroutes + 1;
              ch.reroute e.payload
          | None -> ())
    done;
    Hashtbl.reset ch.unacked;
    Hashtbl.reset ch.reorder;
    ch.expected <- ch.next_seq;
    ch.unacked_lo <- ch.next_seq;
    ch.probe_fails <- 0;
    ch.rto_streak <- 0
  end

(* Health probes: while data is outstanding, sample the link every
   interval. Probes only test the partition predicate (pure in time —
   they never consume the fabric's loss draws); [probe_timeout_k]
   consecutive failures declare Down. Retransmit-budget exhaustion is
   the slower, loss-driven path to the same verdict. *)
let rec arm_probe ch =
  match ch.rel with
  | None -> ()
  | Some rel ->
      if
        rel.probe_interval_ns > 0.0 && (not ch.probe_armed) && (not ch.down)
        && Hashtbl.length ch.unacked > 0
      then begin
        ch.probe_armed <- true;
        Nfp_sim.Engine.schedule ch.engine ~delay:rel.probe_interval_ns (fun () ->
            ch.probe_armed <- false;
            if (not ch.down) && Hashtbl.length ch.unacked > 0 then begin
              let partitioned =
                match ch.state with
                | Some st -> Nfp_sim.Fault.link_partitioned st ~now_ns:(now ch)
                | None -> false
              in
              if partitioned then begin
                ch.probe_fails <- ch.probe_fails + 1;
                if ch.probe_fails >= rel.probe_timeout_k then go_down ch
                else arm_probe ch
              end
              else begin
                ch.probe_fails <- 0;
                arm_probe ch
              end
            end)
      end

(* ------------------------------------------------------------------ *)
(* Send                                                                *)
(* ------------------------------------------------------------------ *)

let send_raw ch x =
  match ch.state with
  | None -> ch.deliver x
  | Some st -> (
      match Nfp_sim.Fault.transit st ~now_ns:(now ch) with
      | Nfp_sim.Fault.T_drop ->
          (* Vanished on the wire: accepted by the fabric, never seen
             again — the ledger's in-flight residual absorbs it. *)
          ch.stats.link_drops <- ch.stats.link_drops + 1;
          true
      | Nfp_sim.Fault.T_pass -> ch.deliver x
      | Nfp_sim.Fault.T_pass_dup gap ->
          let ok = ch.deliver x in
          if ok then
            Nfp_sim.Engine.schedule ch.engine ~delay:gap (fun () ->
                drive_deliver ch x);
          ok
      | Nfp_sim.Fault.T_delay d ->
          ch.stats.reordered <- ch.stats.reordered + 1;
          Nfp_sim.Engine.schedule ch.engine ~delay:d (fun () -> drive_deliver ch x);
          true)

let rec send ch x =
  match ch.rel with
  | None -> send_raw ch x
  | Some rel ->
      if ch.down then
        if
          match ch.state with
          | Some st -> not (Nfp_sim.Fault.link_partitioned st ~now_ns:(now ch))
          | None -> true
        then begin
          (* The partition window has passed: the next probe cycle would
             see health, so the link comes back up (flap support) and
             this send takes the normal path. *)
          ch.down <- false;
          ch.probe_fails <- 0;
          send ch x
        end
        else begin
          ch.stats.reroutes <- ch.stats.reroutes + 1;
          ch.reroute x;
          true
        end
      else if Hashtbl.length ch.unacked >= rel.window then false
      else begin
        let seq = ch.next_seq in
        ch.next_seq <- seq + 1;
        Hashtbl.replace ch.unacked seq
          { payload = x; attempts = 0; last_tx = now ch };
        transmit ch seq x;
        arm_rto ch;
        arm_probe ch;
        true
      end
