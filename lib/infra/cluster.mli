(** Cross-server NF parallelism — the paper's §7 scalability design.

    When a service graph needs more cores than one server has,
    {!Nfp_core.Partition} cuts it at points where a single merged packet
    copy flows; this module deploys each segment on its own simulated
    server and wires them with an inter-server link. Each handoff
    carries exactly one packet copy (the paper's stated constraint) and
    pays the link latency plus both NICs. *)

open Nfp_packet

val make :
  ?config:System.config ->
  ?fault:System.fault_config ->
  ?overload:System.overload_config ->
  ?elastic:System.elastic_config ->
  ?links:System.links_config ->
  ?link_latency_ns:float ->
  segments:(Nfp_core.Tables.plan * (string -> Nfp_nf.Nf.t)) list ->
  Nfp_sim.Engine.t ->
  output:(pid:int64 -> Packet.t -> unit) ->
  Nfp_sim.Harness.system
(** Deploy the segments in order on one simulated server each; a packet
    leaving segment [i] traverses the link (default 2 µs, a ToR switch
    hop) and enters segment [i+1]'s NIC. Drop/loss and health counters
    aggregate across servers. [fault] applies to every segment (plans
    match cores by name, so a pattern perturbs the matching core of
    each segment that has one). [elastic] arms every segment's scale
    controller; aggregation is churn-tolerant — cores that retire
    (scale-in) or have not yet activated report as ["standby"] rather
    than vanishing from the list, and {!Nfp_sim.Harness.add_health}
    sums the migration counters and the [migrating] in-flight gauge
    across segments like any other field. [links] arms every segment's
    lossy-fabric link plan and reliable channels; the per-link
    taxonomy ({!Nfp_sim.Harness.link_stats}) aggregates across servers
    in [health.links]. The inter-server hop itself stays lossless —
    its segments' NI-boundary rings are already modeled — but a plan
    matching each segment's ingress ports perturbs the same edges. @raise Invalid_argument on
    an empty segment list. *)

val of_partition :
  ?config:System.config ->
  ?fault:System.fault_config ->
  ?overload:System.overload_config ->
  ?elastic:System.elastic_config ->
  ?links:System.links_config ->
  ?link_latency_ns:float ->
  assignments:Nfp_core.Partition.assignment list ->
  profile_of:(string -> Nfp_nf.Action.t list) ->
  nfs:(string -> Nfp_nf.Nf.t) ->
  Nfp_sim.Engine.t ->
  output:(pid:int64 -> Packet.t -> unit) ->
  (Nfp_sim.Harness.system, string) result
(** Convenience: compile each partition segment to a plan and deploy.
    All segments share the [nfs] instance lookup. *)
