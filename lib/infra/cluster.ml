let make ?config ?fault ?overload ?elastic ?links ?(link_latency_ns = 2000.0)
    ~segments
    engine ~output =
  if segments = [] then invalid_arg "Cluster.make: no segments";
  let ring_drop_fns = ref [] and nf_drop_fns = ref [] and unmatched_fns = ref [] in
  let shed_fns = ref [] and classifier_fns = ref [] and health_fns = ref [] in
  let record (system : Nfp_sim.Harness.system) =
    ring_drop_fns := system.ring_drops :: !ring_drop_fns;
    nf_drop_fns := system.nf_drops :: !nf_drop_fns;
    unmatched_fns := system.unmatched :: !unmatched_fns;
    shed_fns := system.shed :: !shed_fns;
    classifier_fns := system.classifier :: !classifier_fns;
    health_fns := system.health :: !health_fns
  in
  (* Wire back to front: each server's output crosses the link into the
     next server's NIC. [fault] applies to every segment; plans match
     cores by name, so a pattern like "mid1:*" perturbs the matching
     core of each segment that has one. [overload] likewise arms every
     segment's watermarks and admission controller. *)
  let rec build = function
    | [] -> assert false
    | [ (plan, nfs) ] ->
        let system =
          System.make ?config ?fault ?overload ?elastic ?links ~plan ~nfs engine
            ~output
        in
        record system;
        system
    | (plan, nfs) :: rest ->
        let downstream = build rest in
        let forward ~pid pkt =
          Nfp_sim.Engine.schedule engine ~delay:link_latency_ns (fun () ->
              downstream.Nfp_sim.Harness.inject ~pid pkt)
        in
        let system =
          System.make ?config ?fault ?overload ?elastic ?links ~plan ~nfs engine
            ~output:forward
        in
        record system;
        system
  in
  let first = build segments in
  let sum fns () = List.fold_left (fun acc f -> acc + f ()) 0 !fns in
  {
    Nfp_sim.Harness.inject = first.Nfp_sim.Harness.inject;
    ring_drops = sum ring_drop_fns;
    nf_drops = sum nf_drop_fns;
    unmatched = sum unmatched_fns;
    shed = sum shed_fns;
    classifier =
      (fun () ->
        List.fold_left
          (fun (acc : Nfp_sim.Harness.classifier_counters) f ->
            let (c : Nfp_sim.Harness.classifier_counters) = f () in
            {
              Nfp_sim.Harness.hits = acc.hits + c.hits;
              misses = acc.misses + c.misses;
              evictions = acc.evictions + c.evictions;
            })
          Nfp_sim.Harness.no_classifier_counters !classifier_fns);
    health =
      (fun () ->
        List.fold_left
          (fun acc f -> Nfp_sim.Harness.add_health acc (f ()))
          Nfp_sim.Harness.no_health !health_fns);
  }

let of_partition ?config ?fault ?overload ?elastic ?links ?link_latency_ns
    ~assignments
    ~profile_of ~nfs engine ~output =
  let rec plans acc = function
    | [] -> Ok (List.rev acc)
    | (a : Nfp_core.Partition.assignment) :: rest -> (
        match Nfp_core.Tables.plan ~profile_of a.segment with
        | Ok plan -> plans ((plan, nfs) :: acc) rest
        | Error e -> Error e)
  in
  match plans [] assignments with
  | Error e -> Error e
  | Ok segments ->
      Ok
        (make ?config ?fault ?overload ?elastic ?links ?link_latency_ns ~segments
           engine
           ~output)
