let make ?config ?(link_latency_ns = 2000.0) ~segments engine ~output =
  if segments = [] then invalid_arg "Cluster.make: no segments";
  let ring_drop_fns = ref [] and nf_drop_fns = ref [] and unmatched_fns = ref [] in
  let classifier_fns = ref [] in
  (* Wire back to front: each server's output crosses the link into the
     next server's NIC. *)
  let rec build = function
    | [] -> assert false
    | [ (plan, nfs) ] ->
        let system = System.make ?config ~plan ~nfs engine ~output in
        ring_drop_fns := system.Nfp_sim.Harness.ring_drops :: !ring_drop_fns;
        nf_drop_fns := system.Nfp_sim.Harness.nf_drops :: !nf_drop_fns;
        unmatched_fns := system.Nfp_sim.Harness.unmatched :: !unmatched_fns;
        classifier_fns := system.Nfp_sim.Harness.classifier :: !classifier_fns;
        system
    | (plan, nfs) :: rest ->
        let downstream = build rest in
        let forward ~pid pkt =
          Nfp_sim.Engine.schedule engine ~delay:link_latency_ns (fun () ->
              downstream.Nfp_sim.Harness.inject ~pid pkt)
        in
        let system = System.make ?config ~plan ~nfs engine ~output:forward in
        ring_drop_fns := system.Nfp_sim.Harness.ring_drops :: !ring_drop_fns;
        nf_drop_fns := system.Nfp_sim.Harness.nf_drops :: !nf_drop_fns;
        unmatched_fns := system.Nfp_sim.Harness.unmatched :: !unmatched_fns;
        classifier_fns := system.Nfp_sim.Harness.classifier :: !classifier_fns;
        system
  in
  let first = build segments in
  let sum fns () = List.fold_left (fun acc f -> acc + f ()) 0 !fns in
  {
    Nfp_sim.Harness.inject = first.Nfp_sim.Harness.inject;
    ring_drops = sum ring_drop_fns;
    nf_drops = sum nf_drop_fns;
    unmatched = sum unmatched_fns;
    classifier =
      (fun () ->
        List.fold_left
          (fun (acc : Nfp_sim.Harness.classifier_counters) f ->
            let (c : Nfp_sim.Harness.classifier_counters) = f () in
            {
              Nfp_sim.Harness.hits = acc.hits + c.hits;
              misses = acc.misses + c.misses;
              evictions = acc.evictions + c.evictions;
            })
          Nfp_sim.Harness.no_classifier_counters !classifier_fns);
  }

let of_partition ?config ?link_latency_ns ~assignments ~profile_of ~nfs engine ~output =
  let rec plans acc = function
    | [] -> Ok (List.rev acc)
    | (a : Nfp_core.Partition.assignment) :: rest -> (
        match Nfp_core.Tables.plan ~profile_of a.segment with
        | Ok plan -> plans ((plan, nfs) :: acc) rest
        | Error e -> Error e)
  in
  match plans [] assignments with
  | Error e -> Error e
  | Ok segments -> Ok (make ?config ?link_latency_ns ~segments engine ~output)
