open Nfp_packet

type payload_style = Random_bytes | Ascii | Tagged

type config = {
  flows : int;
  sizes : Size_dist.t;
  proto : int;
  payload_style : payload_style;
  seed : int64;
}

let default =
  { flows = 64; sizes = Size_dist.fixed 64; proto = 6; payload_style = Ascii; seed = 1L }

type t = config

let create config =
  if config.flows <= 0 then invalid_arg "Pktgen.create: need at least one flow";
  config

let header_bytes = 54

let prng_of t i =
  Nfp_algo.Prng.create ~seed:(Int64.add t.seed (Int64.mul 0x100000001L (Int64.of_int i)))

let flow_of_index t i =
  let f = i mod t.flows in
  (* Client side 10.0.0.0/16, server side 10.8.0.0/16; destination
     ports above 61000 stay clear of the synthetic ACL's deny bands. *)
  let sip = Int32.of_int ((10 lsl 24) lor ((f mod 200) lsl 8) lor ((f / 200) + 1)) in
  let dip = Int32.of_int ((10 lsl 24) lor (8 lsl 16) lor ((f mod 250) lsl 8) lor 10) in
  Flow.make ~sip ~dip ~sport:(10000 + (f mod 40000)) ~dport:(61000 + (f mod 4000))
    ~proto:t.proto

(* Mixed-case alphanumerics: IDS signatures are lowercase-only strings of
   length >= 6, so this alphabet cannot produce six consecutive
   lowercase letters that match. *)
let ascii_alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789abcdefghijklm"

(* The alphabet uppercased entry-for-entry: odd positions draw from this
   table, which never puts two adjacent lowercase letters while avoiding
   an uppercase_ascii call per byte. *)
let ascii_upper = String.map Char.uppercase_ascii ascii_alphabet

(* Payload synthesis is per-byte work on every generated packet, so the
   fills are explicit loops over a preallocated buffer rather than
   String.init closures. *)
let fill_ascii prng buf pos len =
  let bound = String.length ascii_alphabet in
  for j = 0 to len - 1 do
    let k = Nfp_algo.Prng.int prng ~bound in
    Bytes.unsafe_set buf (pos + j)
      (if j land 1 = 0 then String.unsafe_get ascii_alphabet k
       else String.unsafe_get ascii_upper k)
  done

let payload t prng i len =
  match t.payload_style with
  | Random_bytes ->
      let buf = Bytes.create len in
      for j = 0 to len - 1 do
        Bytes.unsafe_set buf j (Char.unsafe_chr (Nfp_algo.Prng.int prng ~bound:256))
      done;
      Bytes.unsafe_to_string buf
  | Ascii ->
      let buf = Bytes.create len in
      fill_ascii prng buf 0 len;
      Bytes.unsafe_to_string buf
  | Tagged ->
      let tag = Printf.sprintf "#%d;" i in
      let tlen = String.length tag in
      if len <= tlen then String.sub tag 0 len
      else begin
        let buf = Bytes.create len in
        Bytes.blit_string tag 0 buf 0 tlen;
        fill_ascii prng buf tlen (len - tlen);
        Bytes.unsafe_to_string buf
      end

let frame_bytes t i =
  let prng = prng_of t i in
  Size_dist.sample prng t.sizes

let packet t i =
  let prng = prng_of t i in
  let size = Size_dist.sample prng t.sizes in
  let payload_len = max 0 (size - header_bytes) in
  Packet.create ~flow:(flow_of_index t i) ~payload:(payload t prng i payload_len) ()
