type t = {
  rate_bytes_per_ns : float;
  burst : float;
  mutable tokens : float;
  mutable last_ns : int64;
}

let create ~rate_bps ~burst_bytes =
  if rate_bps <= 0.0 then invalid_arg "Token_bucket: rate must be positive";
  if burst_bytes <= 0 then invalid_arg "Token_bucket: burst must be positive";
  {
    rate_bytes_per_ns = rate_bps /. 8.0 /. 1e9;
    burst = float_of_int burst_bytes;
    tokens = float_of_int burst_bytes;
    last_ns = 0L;
  }

let refill t ~now_ns =
  let dt = Int64.to_float (Int64.sub now_ns t.last_ns) in
  if dt > 0.0 then begin
    t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate_bytes_per_ns));
    t.last_ns <- now_ns
  end

let admit t ~now_ns ~size =
  refill t ~now_ns;
  let need = float_of_int size in
  if t.tokens >= need then begin
    t.tokens <- t.tokens -. need;
    true
  end
  else false

let available t ~now_ns =
  refill t ~now_ns;
  t.tokens

let snapshot t = (t.tokens, t.last_ns)

let restore t (tokens, last_ns) =
  t.tokens <- tokens;
  t.last_ns <- last_ns
