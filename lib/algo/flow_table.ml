(* Microflow cache: an open-addressing exact-match table from 5-tuples
   to small non-negative ints. The 104-bit key packs into two native
   ints (no allocation on lookup or insert); slots are probed linearly
   inside a short window and a full window evicts — a cache, not a map,
   so collisions cost a refill instead of a resize. *)

let probe_window = 8
let empty = -1

type t = {
  ka : int array;  (* sip<<24 | sport<<8 | proto; [empty] marks a free slot *)
  kb : int array;  (* dip<<16 | dport *)
  value : int array;
  mask : int;
  mutable occupied : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let create ?(capacity = 1 lsl 16) () =
  if capacity < 1 then invalid_arg "Flow_table.create: capacity must be positive";
  let cap = pow2 (max capacity probe_window) 1 in
  {
    ka = Array.make cap empty;
    kb = Array.make cap empty;
    value = Array.make cap 0;
    mask = cap - 1;
    occupied = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* [Hashing.mix2_int] over the packed limbs is bit-identical to
   [Int64.to_int (Hashing.tuple5_64 ...)], so packed and 5-tuple entry
   points agree on slots. *)
let slot_of_packed t ~a ~b = Hashing.mix2_int a b land t.mask

(* Entries are never deleted individually, so an empty slot inside the
   probe window proves absence. [find_packed] is the allocation-free
   form (no option, no int32 re-packing) the classifier's per-packet
   hit path uses; [-1] means absent. *)
let find_packed t ~a ~b =
  let base = slot_of_packed t ~a ~b in
  let rec go i =
    if i >= probe_window then begin
      t.misses <- t.misses + 1;
      -1
    end
    else
      let s = (base + i) land t.mask in
      if t.ka.(s) = a && t.kb.(s) = b then begin
        t.hits <- t.hits + 1;
        t.value.(s)
      end
      else if t.ka.(s) = empty then begin
        t.misses <- t.misses + 1;
        -1
      end
      else go (i + 1)
  in
  go 0

let find t ~sip ~dip ~sport ~dport ~proto =
  let a = Hashing.pack_a sip sport proto and b = Hashing.pack_b dip dport in
  match find_packed t ~a ~b with -1 -> None | v -> Some v

let put_packed t ~a ~b v =
  if v < 0 then invalid_arg "Flow_table.put: negative value";
  let base = slot_of_packed t ~a ~b in
  let rec go i =
    if i >= probe_window then begin
      (* Window full: rotate the victim slot so one hot bucket does not
         always evict the same entry. *)
      let s = (base + (t.evictions land (probe_window - 1))) land t.mask in
      t.evictions <- t.evictions + 1;
      t.ka.(s) <- a;
      t.kb.(s) <- b;
      t.value.(s) <- v
    end
    else
      let s = (base + i) land t.mask in
      if t.ka.(s) = a && t.kb.(s) = b then t.value.(s) <- v
      else if t.ka.(s) = empty then begin
        t.ka.(s) <- a;
        t.kb.(s) <- b;
        t.value.(s) <- v;
        t.occupied <- t.occupied + 1
      end
      else go (i + 1)
  in
  go 0

let put t ~sip ~dip ~sport ~dport ~proto v =
  put_packed t ~a:(Hashing.pack_a sip sport proto) ~b:(Hashing.pack_b dip dport) v

let clear t =
  Array.fill t.ka 0 (Array.length t.ka) empty;
  Array.fill t.kb 0 (Array.length t.kb) empty;
  t.occupied <- 0

let length t = t.occupied
let capacity t = t.mask + 1
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
