(** Bounded FIFO ring buffer.

    Models the single-producer single-consumer receive/transmit rings that
    NFP allocates in shared huge pages: fixed capacity, reference-passing
    (no element copies), drop-on-full semantics decided by the caller. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] is an empty ring holding at most [capacity]
    elements. @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val enqueue : 'a t -> 'a -> bool
(** [enqueue t x] appends [x]; returns [false] (ring unchanged) when
    full — the caller decides whether that is a drop or backpressure. *)

val dequeue : 'a t -> 'a option

val dequeue_into : 'a t -> 'a array -> int -> int -> int
(** [dequeue_into t dst pos max] drains up to [max] elements (bounded
    by the ring's occupancy and the room left in [dst] from [pos]) into
    [dst.(pos) ..], in FIFO order, and returns how many it moved — the
    breath loop's rx burst. Equivalent to that many {!dequeue_exn}
    calls; allocates nothing. @raise Invalid_argument when [pos] is
    outside [dst]. *)

val enqueue_burst : 'a t -> 'a array -> int -> int -> int
(** [enqueue_burst t src pos len] appends [src.(pos) .. src.(pos+len-1)]
    until the ring fills, returning how many were accepted; refused
    elements count into {!rejected_total} exactly as per-element
    {!enqueue} calls would. @raise Invalid_argument when the range
    overruns [src]. *)

val dequeue_exn : 'a t -> 'a
(** Like {!dequeue} without the option box — for poll loops that
    already checked {!is_empty}. @raise Invalid_argument when empty. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val set_watermarks : 'a t -> high:int -> low:int -> unit
(** [set_watermarks t ~high ~low] arms the occupancy watermarks:
    {!pressured} latches [true] when [length t >= high] and releases
    only once [length t <= low]. The [high - low] gap is the hysteresis
    band that keeps a queue oscillating around one level from flapping
    the signal. @raise Invalid_argument unless
    [0 <= low < high <= capacity]. *)

val clear_watermarks : 'a t -> unit
(** Disarm the watermarks and release any latched pressure. *)

val pressured : 'a t -> bool
(** Whether the occupancy latch is currently on. Always [false] when
    watermarks are disarmed (the default). *)

val pressure_episodes : 'a t -> int
(** Lifetime count of pressure onsets (off-to-on transitions) — a
    flapping detector: a steady sawtooth inside the hysteresis band
    must not grow this. *)

val enqueued_total : 'a t -> int
(** Lifetime count of successful enqueues (for occupancy statistics). *)

val rejected_total : 'a t -> int
(** Lifetime count of enqueues refused because the ring was full. *)
