let fnv_offset = 0x811c9dc5
let fnv_prime = 0x01000193

let fnv1a32 s =
  let h = ref fnv_offset in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime land 0xffffffff) s;
  !h

let fnv1a32_bytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Hashing.fnv1a32_bytes: range overruns buffer";
  let h = ref fnv_offset in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.get b i)) * fnv_prime land 0xffffffff
  done;
  !h

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let combine a b = ((a * 31) + b) land max_int

(* The 104-bit 5-tuple packs exactly into two limbs; both fit a 63-bit
   native int, so packing is allocation-free. *)
let pack_a sip sport proto =
  ((Int32.to_int sip land 0xffffffff) lsl 24) lor (sport lsl 8) lor proto

let pack_b dip dport = ((Int32.to_int dip land 0xffffffff) lsl 16) lor dport

let tuple5_64 sip dip sport dport proto =
  mix64
    (Int64.logxor
       (mix64 (Int64.of_int (pack_a sip sport proto)))
       (Int64.of_int (pack_b dip dport)))

let tuple5 sip dip sport dport proto =
  Int64.to_int (tuple5_64 sip dip sport dport proto) land max_int
