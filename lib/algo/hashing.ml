let fnv_offset = 0x811c9dc5
let fnv_prime = 0x01000193

let fnv1a32 s =
  let h = ref fnv_offset in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime land 0xffffffff) s;
  !h

let fnv1a32_bytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Hashing.fnv1a32_bytes: range overruns buffer";
  let h = ref fnv_offset in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.get b i)) * fnv_prime land 0xffffffff
  done;
  !h

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let combine a b = ((a * 31) + b) land max_int

(* The 104-bit 5-tuple packs exactly into two limbs; both fit a 63-bit
   native int, so packing is allocation-free. *)
let pack_a sip sport proto =
  ((Int32.to_int sip land 0xffffffff) lsl 24) lor (sport lsl 8) lor proto

let pack_b dip dport = ((Int32.to_int dip land 0xffffffff) lsl 16) lor dport

(* Same limbs from addresses already held as unsigned native ints
   (e.g. [Packet.sip_int]) — skips the int32 detour entirely. *)
let pack_a_int sip sport proto = (sip lsl 24) lor (sport lsl 8) lor proto
let pack_b_int dip dport = (dip lsl 16) lor dport

let tuple5_64 sip dip sport dport proto =
  mix64
    (Int64.logxor
       (mix64 (Int64.of_int (pack_a sip sport proto)))
       (Int64.of_int (pack_b dip dport)))

let tuple5 sip dip sport dport proto =
  Int64.to_int (tuple5_64 sip dip sport dport proto) land max_int

(* [mix2_int a b] = [Int64.to_int (mix64 (mix64 a' ^ b'))] for the
   packed key limbs [a]/[b] — the value [tuple5_64] computes — without
   touching Int64: on a non-flambda compiler the Int64 form boxes every
   intermediate, and the microflow cache hashes on the classifier's
   per-packet hit path. Same limb technique as [Prng.step]: 64-bit
   multiplies as 16-bit half-products, cross terms mod 2^32 (sound
   because 2^32 divides native wrap-around's 2^63). *)
let mask32 = 0xffffffff

(* SplitMix64 finalizer constants, split into 32-bit halves. *)
let c1_hi = 0xbf58476d
let c1_lo = 0x1ce4e5b9
let c2_hi = 0x94d049bb
let c2_lo = 0x133111eb

let mix2_int a b =
  (* mix64 of the [a] limbs *)
  let hi = (a lsr 32) land mask32 and lo = a land mask32 in
  let zl = lo lxor ((lo lsr 30) lor ((hi lsl 2) land mask32)) in
  let zh = hi lxor (hi lsr 30) in
  let x0 = zl land 0xffff and x1 = zl lsr 16 in
  let pm = (x0 * 0x1ce4) + (x1 * 0xe5b9) in
  let tl = (x0 * 0xe5b9) + ((pm land 0xffff) lsl 16) in
  let mh =
    ((pm lsr 16) + (x1 * 0x1ce4) + (tl lsr 32) + (zl * c1_hi) + (zh * c1_lo))
    land mask32
  in
  let ml = tl land mask32 in
  let zl = ml lxor ((ml lsr 27) lor ((mh lsl 5) land mask32)) in
  let zh = mh lxor (mh lsr 27) in
  let x0 = zl land 0xffff and x1 = zl lsr 16 in
  let pm = (x0 * 0x1331) + (x1 * 0x11eb) in
  let tl = (x0 * 0x11eb) + ((pm land 0xffff) lsl 16) in
  let mh =
    ((pm lsr 16) + (x1 * 0x1331) + (tl lsr 32) + (zl * c2_hi) + (zh * c2_lo))
    land mask32
  in
  let ml = tl land mask32 in
  let hi = mh lxor (mh lsr 31) in
  let lo = ml lxor ((ml lsr 31) lor ((mh lsl 1) land mask32)) in
  (* xor in the [b] limbs, then the second mix64 *)
  let hi = hi lxor ((b lsr 32) land mask32) and lo = lo lxor (b land mask32) in
  let zl = lo lxor ((lo lsr 30) lor ((hi lsl 2) land mask32)) in
  let zh = hi lxor (hi lsr 30) in
  let x0 = zl land 0xffff and x1 = zl lsr 16 in
  let pm = (x0 * 0x1ce4) + (x1 * 0xe5b9) in
  let tl = (x0 * 0xe5b9) + ((pm land 0xffff) lsl 16) in
  let mh =
    ((pm lsr 16) + (x1 * 0x1ce4) + (tl lsr 32) + (zl * c1_hi) + (zh * c1_lo))
    land mask32
  in
  let ml = tl land mask32 in
  let zl = ml lxor ((ml lsr 27) lor ((mh lsl 5) land mask32)) in
  let zh = mh lxor (mh lsr 27) in
  let x0 = zl land 0xffff and x1 = zl lsr 16 in
  let pm = (x0 * 0x1331) + (x1 * 0x11eb) in
  let tl = (x0 * 0x11eb) + ((pm land 0xffff) lsl 16) in
  let mh =
    ((pm lsr 16) + (x1 * 0x1331) + (tl lsr 32) + (zl * c2_hi) + (zh * c2_lo))
    land mask32
  in
  let ml = tl land mask32 in
  let hi = mh lxor (mh lsr 31) in
  let lo = ml lxor ((ml lsr 31) lor ((mh lsl 1) land mask32)) in
  ((hi land 0x7fffffff) lsl 32) lor lo

(* RSS shard selection draws from its own hash stream: the key limbs
   are offset by fixed seeds before entering the SplitMix64 finaliser
   chain, so for any 5-tuple the shard hash and the microflow-cache
   bucket hash ([mix2_int] unseeded, see [Flow_table.slot_of_packed])
   are samples of two unrelated avalanche streams. Without the seeds a
   replica choice of [h mod n] and a bucket choice of [h land mask]
   would be functions of the same value — e.g. every flow in one cache
   bucket landing on the same replica. The constants are the first
   Blowfish pi digits (arbitrary, odd-ish, and 62-bit safe). *)
let rss_seed_a = 0x243f6a8885a308d3
let rss_seed_b = 0x13198a2e03707344

(* [mix2_int] keeps 63 bits, so its top bit is the OCaml int sign bit;
   mask it off — shard selection is [h mod n], which must never see a
   negative hash. *)
let rss2_int a b = mix2_int (a lxor rss_seed_a) (b lxor rss_seed_b) land max_int
