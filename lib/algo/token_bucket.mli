(** Token-bucket rate limiter.

    Substrate of the traffic-shaper NF (paper Table 2 lists "Traffic
    Shaper — Linux tc"). Time is caller-supplied in nanoseconds so the
    bucket composes with the discrete-event simulator clock. *)

type t

val create : rate_bps:float -> burst_bytes:int -> t
(** [create ~rate_bps ~burst_bytes] makes a bucket refilled at
    [rate_bps] bits per second with capacity [burst_bytes] bytes; the
    bucket starts full. @raise Invalid_argument on non-positive args. *)

val admit : t -> now_ns:int64 -> size:int -> bool
(** [admit t ~now_ns ~size] refills the bucket up to [now_ns] and, if at
    least [size] bytes of tokens are available, consumes them and
    returns [true]; otherwise leaves the bucket unchanged and returns
    [false]. [now_ns] must be monotonically non-decreasing. *)

val available : t -> now_ns:int64 -> float
(** Tokens (bytes) available at [now_ns], without consuming. *)

val snapshot : t -> float * int64
(** Current [(tokens, last_refill_ns)] pair — the bucket's whole mutable
    state, for checkpointing (the rate and burst are immutable). *)

val restore : t -> float * int64 -> unit
(** Install a pair captured by {!snapshot}. *)
