(* Slots are a raw ['a array] (allocated at first enqueue, using that
   element as the initializer) rather than ['a option array]: boxing
   every slot in [Some] costs an allocation per enqueue on the
   simulator's hottest path. Dequeued slots keep a stale reference
   until overwritten, which retains at most [capacity] elements —
   rings are small and short-lived, so that is cheaper than nulling. *)
type 'a t = {
  mutable data : 'a array;
  capacity : int;
  mutable head : int; (* next slot to dequeue *)
  mutable size : int;
  mutable enqueued : int;
  mutable rejected : int;
  (* Occupancy watermarks (0 = disabled). Pressure latches on at
     [size >= high] and releases only at [size <= low]; the gap is the
     hysteresis band that keeps a queue oscillating around one level
     from flapping the upstream backpressure signal. *)
  mutable high : int;
  mutable low : int;
  mutable pressured : bool;
  mutable episodes : int; (* lifetime count of pressure onsets *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  {
    data = [||];
    capacity;
    head = 0;
    size = 0;
    enqueued = 0;
    rejected = 0;
    high = 0;
    low = 0;
    pressured = false;
    episodes = 0;
  }

let set_watermarks t ~high ~low =
  if high <= 0 || high > t.capacity then
    invalid_arg "Ring.set_watermarks: high must be in 1..capacity";
  if low < 0 || low >= high then
    invalid_arg "Ring.set_watermarks: low must be in 0..high-1";
  t.high <- high;
  t.low <- low

let clear_watermarks t =
  t.high <- 0;
  t.low <- 0;
  t.pressured <- false

(* Re-evaluate the latch after any size change. Cheap enough for the
   hot path: one load and branch when watermarks are disabled. *)
let[@inline] update_pressure t =
  if t.high > 0 then
    if t.pressured then (if t.size <= t.low then t.pressured <- false)
    else if t.size >= t.high then begin
      t.pressured <- true;
      t.episodes <- t.episodes + 1
    end

let pressured t = t.pressured

let pressure_episodes t = t.episodes

let capacity t = t.capacity

let length t = t.size

let is_empty t = t.size = 0

let is_full t = t.size = t.capacity

let enqueue t x =
  if t.size = t.capacity then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    if Array.length t.data = 0 then t.data <- Array.make t.capacity x;
    let tail = t.head + t.size in
    let tail = if tail >= t.capacity then tail - t.capacity else tail in
    t.data.(tail) <- x;
    t.size <- t.size + 1;
    t.enqueued <- t.enqueued + 1;
    update_pressure t;
    true
  end

(* Unchecked pop for the server poll loop: pairs with [is_empty], so no
   option is allocated per job. *)
let dequeue_exn t =
  if t.size = 0 then invalid_arg "Ring.dequeue_exn: empty ring";
  let x = t.data.(t.head) in
  let head = t.head + 1 in
  t.head <- (if head = t.capacity then 0 else head);
  t.size <- t.size - 1;
  update_pressure t;
  x

let dequeue t = if t.size = 0 then None else Some (dequeue_exn t)

(* Burst dequeue for the breath loop: drain up to [max] elements into
   [dst.(0) .. dst.(n-1)] without options or per-element dispatch.
   Wrap-around is handled the same way single dequeues handle it (the
   head index wraps modulo capacity); dequeued slots keep their stale
   reference, as above. *)
let dequeue_into t dst pos max =
  if pos < 0 || pos > Array.length dst then
    invalid_arg "Ring.dequeue_into: destination position out of range";
  let n = min (min t.size max) (Array.length dst - pos) in
  let data = t.data in
  let head = ref t.head in
  for i = 0 to n - 1 do
    dst.(pos + i) <- data.(!head);
    let h = !head + 1 in
    head := if h = t.capacity then 0 else h
  done;
  t.head <- !head;
  t.size <- t.size - n;
  update_pressure t;
  n

(* Burst enqueue: append elements of [src.(pos) .. src.(pos+len-1)]
   until the ring fills; returns how many were accepted. Partial
   acceptance counts one rejection per refused element, matching a
   loop of single enqueues exactly. *)
let enqueue_burst t src pos len =
  if pos < 0 || len < 0 || pos + len > Array.length src then
    invalid_arg "Ring.enqueue_burst: range overruns source";
  let accepted = min len (t.capacity - t.size) in
  if accepted > 0 then begin
    if Array.length t.data = 0 then t.data <- Array.make t.capacity src.(pos);
    for i = 0 to accepted - 1 do
      let tail = t.head + t.size + i in
      let tail = if tail >= t.capacity then tail - t.capacity else tail in
      t.data.(tail) <- src.(pos + i)
    done;
    t.size <- t.size + accepted;
    t.enqueued <- t.enqueued + accepted;
    update_pressure t
  end;
  t.rejected <- t.rejected + (len - accepted);
  accepted

let peek t = if t.size = 0 then None else Some t.data.(t.head)

let clear t =
  t.data <- [||];
  t.head <- 0;
  t.size <- 0;
  update_pressure t

let enqueued_total t = t.enqueued

let rejected_total t = t.rejected
