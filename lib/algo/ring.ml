(* Slots are a raw ['a array] (allocated at first enqueue, using that
   element as the initializer) rather than ['a option array]: boxing
   every slot in [Some] costs an allocation per enqueue on the
   simulator's hottest path. Dequeued slots keep a stale reference
   until overwritten, which retains at most [capacity] elements —
   rings are small and short-lived, so that is cheaper than nulling. *)
type 'a t = {
  mutable data : 'a array;
  capacity : int;
  mutable head : int; (* next slot to dequeue *)
  mutable size : int;
  mutable enqueued : int;
  mutable rejected : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = [||]; capacity; head = 0; size = 0; enqueued = 0; rejected = 0 }

let capacity t = t.capacity

let length t = t.size

let is_empty t = t.size = 0

let is_full t = t.size = t.capacity

let enqueue t x =
  if t.size = t.capacity then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    if Array.length t.data = 0 then t.data <- Array.make t.capacity x;
    let tail = t.head + t.size in
    let tail = if tail >= t.capacity then tail - t.capacity else tail in
    t.data.(tail) <- x;
    t.size <- t.size + 1;
    t.enqueued <- t.enqueued + 1;
    true
  end

(* Unchecked pop for the server poll loop: pairs with [is_empty], so no
   option is allocated per job. *)
let dequeue_exn t =
  if t.size = 0 then invalid_arg "Ring.dequeue_exn: empty ring";
  let x = t.data.(t.head) in
  let head = t.head + 1 in
  t.head <- (if head = t.capacity then 0 else head);
  t.size <- t.size - 1;
  x

let dequeue t = if t.size = 0 then None else Some (dequeue_exn t)

let peek t = if t.size = 0 then None else Some t.data.(t.head)

let clear t =
  t.data <- [||];
  t.head <- 0;
  t.size <- 0

let enqueued_total t = t.enqueued

let rejected_total t = t.rejected
