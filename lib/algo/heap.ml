type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h x =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let capacity' = if capacity = 0 then 16 else capacity * 2 in
    let data' = Array.make capacity' x in
    Array.blit h.data 0 data' 0 h.size;
    h.data <- data'
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && h.cmp h.data.(left) h.data.(!smallest) < 0 then
    smallest := left;
  if right < h.size && h.cmp h.data.(right) h.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let clear h =
  h.data <- [||];
  h.size <- 0

(* Specialized (time, seq)-keyed min-heap for the event queue: keys live
   in parallel unboxed arrays so ordering never goes through a closure
   or a boxed comparison, and the hole-bubbling sifts move one element
   per level instead of swapping. *)
module Timed = struct
  type 'a t = {
    mutable times : float array;
    mutable seqs : int array;
    mutable data : 'a array;
    mutable size : int;
  }

  let create () = { times = [||]; seqs = [||]; data = [||]; size = 0 }

  let length h = h.size

  let is_empty h = h.size = 0

  let grow h x =
    let capacity = Array.length h.data in
    if h.size = capacity then begin
      let capacity' = if capacity = 0 then 16 else capacity * 2 in
      let times' = Array.make capacity' 0.0 in
      let seqs' = Array.make capacity' 0 in
      let data' = Array.make capacity' x in
      Array.blit h.times 0 times' 0 h.size;
      Array.blit h.seqs 0 seqs' 0 h.size;
      Array.blit h.data 0 data' 0 h.size;
      h.times <- times';
      h.seqs <- seqs';
      h.data <- data'
    end

  let rec sift_up h i ~time ~seq x =
    if i = 0 then begin
      h.times.(i) <- time;
      h.seqs.(i) <- seq;
      h.data.(i) <- x
    end
    else begin
      let parent = (i - 1) / 2 in
      let tp = h.times.(parent) in
      if time < tp || (time = tp && seq < h.seqs.(parent)) then begin
        h.times.(i) <- tp;
        h.seqs.(i) <- h.seqs.(parent);
        h.data.(i) <- h.data.(parent);
        sift_up h parent ~time ~seq x
      end
      else begin
        h.times.(i) <- time;
        h.seqs.(i) <- seq;
        h.data.(i) <- x
      end
    end

  let push h ~time ~seq x =
    grow h x;
    let i = h.size in
    h.size <- i + 1;
    sift_up h i ~time ~seq x

  let min_time h = if h.size = 0 then infinity else h.times.(0)

  let rec sift_down h i ~time ~seq x =
    let left = (2 * i) + 1 in
    if left >= h.size then begin
      h.times.(i) <- time;
      h.seqs.(i) <- seq;
      h.data.(i) <- x
    end
    else begin
      let right = left + 1 in
      let child =
        if right < h.size then begin
          let tl = h.times.(left) and tr = h.times.(right) in
          if tr < tl || (tr = tl && h.seqs.(right) < h.seqs.(left)) then right
          else left
        end
        else left
      in
      let tc = h.times.(child) in
      if tc < time || (tc = time && h.seqs.(child) < seq) then begin
        h.times.(i) <- tc;
        h.seqs.(i) <- h.seqs.(child);
        h.data.(i) <- h.data.(child);
        sift_down h child ~time ~seq x
      end
      else begin
        h.times.(i) <- time;
        h.seqs.(i) <- seq;
        h.data.(i) <- x
      end
    end

  (* Combined peek-and-pop; the caller checks [is_empty]/[min_time]
     first, so no option is allocated on the hot path. *)
  let pop_exn h =
    if h.size = 0 then invalid_arg "Heap.Timed.pop_exn: empty heap";
    let top = h.data.(0) in
    let last = h.size - 1 in
    h.size <- last;
    if last > 0 then begin
      let time = h.times.(last) and seq = h.seqs.(last) in
      let x = h.data.(last) in
      (* The vacated tail slot keeps referencing [x], which stays live
         in the heap, so the popped payload itself is not retained. *)
      sift_down h 0 ~time ~seq x
    end;
    top

  let clear h =
    h.times <- [||];
    h.seqs <- [||];
    h.data <- [||];
    h.size <- 0
end
