(* SplitMix64, carried in two 32-bit native-int limbs.

   The straightforward Int64 implementation boxes every intermediate on
   a non-flambda compiler (~10 heap allocations per draw), and a draw
   sits on the simulator's hottest path (service jitter, per byte of
   synthesized payload). The limb form uses only immediate ints, and
   is bit-for-bit identical to the Int64 reference: products that
   would need 64 bits are split into 16-bit half-products, and the
   cross terms only ever matter modulo 2^32, which native 63-bit
   wrap-around arithmetic preserves (2^32 divides 2^63). *)

type t = {
  mutable hi : int;  (* state, upper 32 bits *)
  mutable lo : int;  (* state, lower 32 bits *)
  mutable out_hi : int;  (* mixed output of the last step *)
  mutable out_lo : int;
}

let mask32 = 0xffffffff

(* golden = 0x9e3779b97f4a7c15, c1 = 0xbf58476d1ce4e5b9,
   c2 = 0x94d049bb133111eb — the SplitMix64 constants, split. *)
let golden_hi = 0x9e3779b9
let golden_lo = 0x7f4a7c15
let c1_hi = 0xbf58476d
let c1_lo = 0x1ce4e5b9
let c2_hi = 0x94d049bb
let c2_lo = 0x133111eb

let create ~seed =
  {
    hi = Int64.to_int (Int64.shift_right_logical seed 32) land mask32;
    lo = Int64.to_int (Int64.logand seed 0xffffffffL);
    out_hi = 0;
    out_lo = 0;
  }

(* Advance the state and mix; the result lands in out_hi/out_lo. The
   64-bit multiplies are hand-inlined (the mixer runs per jitter draw
   and per synthesized payload byte): low limb via 16-bit half-products
   x0/x1 against the constant's halves, cross terms modulo 2^32. *)
let step t =
  let sl = t.lo + golden_lo in
  let lo = sl land mask32 in
  let hi = (t.hi + golden_hi + (sl lsr 32)) land mask32 in
  t.hi <- hi;
  t.lo <- lo;
  (* z ^= z >>> 30; z *= c1   (c1_lo halves: 0x1ce4, 0xe5b9) *)
  let zl = lo lxor ((lo lsr 30) lor ((hi lsl 2) land mask32)) in
  let zh = hi lxor (hi lsr 30) in
  let x0 = zl land 0xffff and x1 = zl lsr 16 in
  let pm = (x0 * 0x1ce4) + (x1 * 0xe5b9) in
  let tl = (x0 * 0xe5b9) + ((pm land 0xffff) lsl 16) in
  let mh =
    ((pm lsr 16) + (x1 * 0x1ce4) + (tl lsr 32) + (zl * c1_hi) + (zh * c1_lo))
    land mask32
  in
  let ml = tl land mask32 in
  (* z ^= z >>> 27; z *= c2   (c2_lo halves: 0x1331, 0x11eb) *)
  let zl = ml lxor ((ml lsr 27) lor ((mh lsl 5) land mask32)) in
  let zh = mh lxor (mh lsr 27) in
  let x0 = zl land 0xffff and x1 = zl lsr 16 in
  let pm = (x0 * 0x1331) + (x1 * 0x11eb) in
  let tl = (x0 * 0x11eb) + ((pm land 0xffff) lsl 16) in
  let mh =
    ((pm lsr 16) + (x1 * 0x1331) + (tl lsr 32) + (zl * c2_hi) + (zh * c2_lo))
    land mask32
  in
  let ml = tl land mask32 in
  (* z ^= z >>> 31 *)
  t.out_hi <- mh lxor (mh lsr 31);
  t.out_lo <- ml lxor ((ml lsr 31) lor ((mh lsl 1) land mask32))

let next t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.out_hi) 32) (Int64.of_int t.out_lo)

(* 2^-53 is a power of two, so multiplying by it is the exact scaling
   dividing by 2^53 performs — same result, no division unit. *)
let inv_2_53 = 1.0 /. 9007199254740992.0

let float t =
  step t;
  (* Top 53 bits -> [0, 1); a 53-bit value fits a native int, so the
     conversion is as exact as the Int64 form's. *)
  let bits = (t.out_hi lsl 21) lor (t.out_lo lsr 11) in
  float_of_int bits *. inv_2_53

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  int_of_float (float t *. float_of_int bound)

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = float t in
  (* u = 0 would give infinity; nudge. *)
  -.mean *. log (1.0 -. (u *. 0.9999999999))

let split t = create ~seed:(next t)
