(** Microflow cache: exact-match 5-tuple table with O(1) lookup.

    The classifier's first level (OVS-style microflow cache): maps a
    recently seen 5-tuple straight to a small non-negative int (the
    dataplane stores the packet's MID, with 0 reserved for "matched no
    rule"). Open addressing over two packed native-int key limbs, a
    short linear probe window, and eviction when the window fills —
    bounded memory, no resizing, no per-operation allocation. Keys are
    hashed with {!Hashing.tuple5_64}, the dataplane's one 5-tuple
    mixing function. *)

type t

val create : ?capacity:int -> unit -> t
(** Fixed-capacity table; [capacity] (default 65536) is rounded up to a
    power of two. @raise Invalid_argument when not positive. *)

val find : t -> sip:int32 -> dip:int32 -> sport:int -> dport:int -> proto:int -> int option
(** Exact-match lookup; bumps the hit or miss counter. *)

val put : t -> sip:int32 -> dip:int32 -> sport:int -> dport:int -> proto:int -> int -> unit
(** Insert or overwrite; evicts a resident entry when the probe window
    is full. @raise Invalid_argument on a negative value. *)

val clear : t -> unit
(** Drop every entry (counters are kept): used when the rule table the
    cached results were derived from changes. *)

val length : t -> int
val capacity : t -> int

val hits : t -> int
val misses : t -> int
val evictions : t -> int
