(** Microflow cache: exact-match 5-tuple table with O(1) lookup.

    The classifier's first level (OVS-style microflow cache): maps a
    recently seen 5-tuple straight to a small non-negative int (the
    dataplane stores the packet's MID, with 0 reserved for "matched no
    rule"). Open addressing over two packed native-int key limbs, a
    short linear probe window, and eviction when the window fills —
    bounded memory, no resizing, no per-operation allocation. Keys are
    hashed with {!Hashing.tuple5_64}, the dataplane's one 5-tuple
    mixing function. *)

type t

val create : ?capacity:int -> unit -> t
(** Fixed-capacity table; [capacity] (default 65536) is rounded up to a
    power of two. @raise Invalid_argument when not positive. *)

val find : t -> sip:int32 -> dip:int32 -> sport:int -> dport:int -> proto:int -> int option
(** Exact-match lookup; bumps the hit or miss counter. *)

val put : t -> sip:int32 -> dip:int32 -> sport:int -> dport:int -> proto:int -> int -> unit
(** Insert or overwrite; evicts a resident entry when the probe window
    is full. @raise Invalid_argument on a negative value. *)

val clear : t -> unit
(** Drop every entry (counters are kept): used when the rule table the
    cached results were derived from changes. *)

val length : t -> int
val capacity : t -> int

val hits : t -> int
val misses : t -> int
val evictions : t -> int

(** {2 Packed entry points}

    The classifier's per-packet path pre-packs the 5-tuple into the two
    key limbs ({!Hashing.pack_a} / {!Hashing.pack_b}) straight from
    packet bytes; these variants take the limbs and allocate nothing —
    no option on lookup, no int32 boxing. Slots are identical to the
    5-tuple entry points', which are now wrappers over these. *)

val find_packed : t -> a:int -> b:int -> int
(** Exact-match lookup on packed limbs; [-1] when absent. Bumps the
    hit or miss counter exactly as {!find} does. *)

val put_packed : t -> a:int -> b:int -> int -> unit
(** Insert or overwrite on packed limbs; same eviction behaviour as
    {!put}. @raise Invalid_argument on a negative value. *)
