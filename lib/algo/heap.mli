(** Imperative binary min-heap keyed by a user-supplied comparison.

    Used as the event queue of the discrete-event simulator; [pop] returns
    the smallest element according to the ordering given at creation. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

(** Min-heap specialized to [(time, seq)] keys held in parallel unboxed
    arrays — the discrete-event simulator's queue. Ordering is by time,
    ties broken by the (monotonic) sequence number, with the comparison
    inlined rather than routed through a closure. *)
module Timed : sig
  type 'a t

  val create : unit -> 'a t

  val length : 'a t -> int

  val is_empty : 'a t -> bool

  val push : 'a t -> time:float -> seq:int -> 'a -> unit

  val min_time : 'a t -> float
  (** Key of the minimum element; [infinity] when empty. *)

  val pop_exn : 'a t -> 'a
  (** Remove and return the payload of the minimum element — a combined
      peek-and-pop that allocates nothing.
      @raise Invalid_argument when empty. *)

  val clear : 'a t -> unit
end
