(** Non-cryptographic hashes used across the dataplane.

    The merger agent hashes the immutable PID to pick a merger instance
    (paper §5.3); the load balancer and monitor hash 5-tuples. *)

val fnv1a32 : string -> int
(** 32-bit FNV-1a over a string; result in [0, 2^32). *)

val fnv1a32_bytes : bytes -> pos:int -> len:int -> int
(** FNV-1a over a byte range. @raise Invalid_argument on overrun. *)

val mix64 : int64 -> int64
(** SplitMix64 finaliser: avalanching 64-bit mix, used for PID hashing. *)

val combine : int -> int -> int
(** Order-dependent combination of two hash values. *)

val pack_a : int32 -> int -> int -> int
(** [pack_a sip sport proto]: first limb of the packed 104-bit 5-tuple
    (fits a 63-bit native int, so packing never allocates). *)

val pack_b : int32 -> int -> int
(** [pack_b dip dport]: second limb. *)

val pack_a_int : int -> int -> int -> int
val pack_b_int : int -> int -> int
(** The same limbs from addresses already held as unsigned 32-bit
    native ints — identical bits to {!pack_a}/{!pack_b}, no int32. *)

val tuple5_64 : int32 -> int32 -> int -> int -> int -> int64
(** [tuple5_64 sip dip sport dport proto] is the dataplane's one
    5-tuple mixing function: the 104-bit tuple packed into two native
    limbs and avalanched through {!mix64}. ECMP hashing, monitor flow
    keying and the classifier's microflow cache all key off this value
    (directly or via its {!tuple5} truncation), so a distribution
    regression shows up everywhere at once — test_algo holds it to
    avalanche and bucket-spread bounds. *)

val tuple5 : int32 -> int32 -> int -> int -> int -> int
(** [tuple5 sip dip sport dport proto] hashes a 5-tuple to a
    non-negative int, ECMP-style: {!tuple5_64} truncated to the native
    int width. *)

val mix2_int : int -> int -> int
(** [mix2_int a b] is the low 63 bits of
    [mix64 (Int64.logxor (mix64 (Int64.of_int a)) (Int64.of_int b))] —
    i.e. [Int64.to_int (tuple5_64 ...)] given the already-packed key
    limbs [a] = {!pack_a} and [b] = {!pack_b} — computed entirely in
    native ints. Bit-identical to the Int64 form (test_algo proves it
    exhaustively against {!tuple5_64}); exists because the Int64 form
    boxes every intermediate on a non-flambda compiler and the
    microflow cache hashes on the classifier's per-packet hit path. *)

val rss_seed_a : int
val rss_seed_b : int
(** Fixed seeds for the RSS shard-selection stream. *)

val rss2_int : int -> int -> int
(** [rss2_int a b] hashes the packed 5-tuple limbs on an independent
    stream: [mix2_int (a lxor rss_seed_a) (b lxor rss_seed_b)],
    truncated to the non-negative int range. The
    orchestrator's RSS shard stage steers each flow to an NF replica
    with [rss2_int a b mod replicas]; seeding the limbs decorrelates
    that choice from the microflow cache's bucket placement, which uses
    unseeded {!mix2_int} on the same limbs (test_algo checks the joint
    distribution stays uniform). *)
