(* Wire layout: Ethernet(14) | IPv4(20, no options) | [AH(16)] | TCP(20)/UDP(8) | payload.
   Invariant: Bytes.length buf = 14 + IPv4 total length. *)

(* [g_ah]/[g_proto]/[g_l4_off] cache the header geometry (AH presence,
   innermost protocol, L4 offset) that every field accessor needs, so
   accessors don't re-parse the buffer per call. The cache is refreshed
   only where the geometry can change: construction, [add_ah],
   [remove_ah], [set_inner_proto] and [set_payload].

   The NFP metadata lives flat in [m_mid]/[m_pid]/[m_version] rather
   than as a [Meta.t] field: stamping and copy-tagging happen per
   packet on the dataplane's hot path, and keeping the components
   unboxed makes both plain int stores (the pid limb shares its box
   across copies). [Meta.t] is materialized only on demand ([meta]). *)
type t = {
  mutable buf : bytes;
  mutable m_mid : int;
  mutable m_pid : int64;
  mutable m_version : int;
  mutable g_ah : bool;
  mutable g_proto : int;
  mutable g_l4_off : int;
}

type l4 = Tcp | Udp | Other of int

let eth_len = 14
let ip_len = 20
let ah_len = 16
let tcp_len = 20
let udp_len = 8
let ip_off = eth_len

let proto_tcp = 6
let proto_udp = 17
let proto_ah = 51

(* Byte-level accessors, big-endian. *)
let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))
let get_u16 b off = (get_u8 b off lsl 8) lor get_u8 b (off + 1)

let set_u16 b off v =
  set_u8 b off (v lsr 8);
  set_u8 b (off + 1) v

let get_u32 b off =
  Int32.logor
    (Int32.shift_left (Int32.of_int (get_u16 b off)) 16)
    (Int32.of_int (get_u16 b (off + 2)))

let set_u32 b off v =
  set_u16 b off (Int32.to_int (Int32.shift_right_logical v 16));
  set_u16 b (off + 2) (Int32.to_int (Int32.logand v 0xffffl))

let outer_proto t = get_u8 t.buf (ip_off + 9)

let refresh_geom t =
  let outer = outer_proto t in
  let ah = outer = proto_ah in
  t.g_ah <- ah;
  t.g_proto <- (if ah then get_u8 t.buf (ip_off + ip_len) else outer);
  t.g_l4_off <- (ip_off + ip_len + if ah then ah_len else 0)

let of_buf buf =
  let t = { buf; m_mid = 0; m_pid = 0L; m_version = 0; g_ah = false; g_proto = 0; g_l4_off = 0 } in
  refresh_geom t;
  t

let has_ah t = t.g_ah

let proto t = t.g_proto

let l4_off t = t.g_l4_off

let l4_protocol t =
  match t.g_proto with
  | 6 -> Tcp
  | 17 -> Udp
  | p -> Other p

let l4_header_len t = match l4_protocol t with Tcp -> tcp_len | Udp -> udp_len | Other _ -> 0

let payload_off t = l4_off t + l4_header_len t

let wire_length t = Bytes.length t.buf

let header_length t = payload_off t

let refresh_ip_checksum t =
  set_u16 t.buf (ip_off + 10) 0;
  set_u16 t.buf (ip_off + 10) (Nfp_algo.Checksum.compute t.buf ~pos:ip_off ~len:ip_len)

let ip_checksum_valid t = Nfp_algo.Checksum.verify t.buf ~pos:ip_off ~len:ip_len

(* Transport checksums cover a pseudo-header (addresses, protocol, L4
   length), so address rewrites must refresh them too (RFC 793/768). *)
let l4_checksum_field t =
  match l4_protocol t with
  | Tcp -> Some (l4_off t + 16)
  | Udp -> Some (l4_off t + 6)
  | Other _ -> None

let l4_segment_checksum t =
  let l4o = l4_off t in
  let seg_len = Bytes.length t.buf - l4o in
  let pseudo = Bytes.create 12 in
  Bytes.blit t.buf (ip_off + 12) pseudo 0 8;
  Bytes.set pseudo 8 '\x00';
  Bytes.set pseudo 9 (Char.chr (proto t));
  Bytes.set pseudo 10 (Char.chr ((seg_len lsr 8) land 0xff));
  Bytes.set pseudo 11 (Char.chr (seg_len land 0xff));
  let sum =
    Nfp_algo.Checksum.ones_complement_sum pseudo ~pos:0 ~len:12
    + Nfp_algo.Checksum.ones_complement_sum t.buf ~pos:l4o ~len:seg_len
  in
  let rec fold s = if s lsr 16 <> 0 then fold ((s land 0xffff) + (s lsr 16)) else s in
  fold sum

(* RFC 1624 incremental update: when one 16-bit word of the segment or
   pseudo-header changes, the checksum is patched without re-summing
   the payload — what real dataplanes do on address/port rewrites. *)
let l4_incremental_update t ~old16 ~new16 =
  match l4_checksum_field t with
  | None -> ()
  | Some field ->
      let c = get_u16 t.buf field in
      if not (l4_protocol t = Udp && c = 0) then begin
        let fold s =
          let rec go s = if s lsr 16 <> 0 then go ((s land 0xffff) + (s lsr 16)) else s in
          go s
        in
        let c' =
          lnot (fold (lnot c land 0xffff + (lnot old16 land 0xffff) + new16)) land 0xffff
        in
        let c' = if c' = 0 && l4_protocol t = Udp then 0xffff else c' in
        set_u16 t.buf field c'
      end

let refresh_l4_checksum t =
  match l4_checksum_field t with
  | None -> ()
  | Some field ->
      set_u16 t.buf field 0;
      let c = lnot (l4_segment_checksum t) land 0xffff in
      (* UDP transmits an all-zero checksum as 0xffff (RFC 768). *)
      let c = if c = 0 && l4_protocol t = Udp then 0xffff else c in
      set_u16 t.buf field c

let l4_checksum_valid t =
  match l4_checksum_field t with
  | None -> true
  | Some field ->
      (* UDP checksum 0 means "not computed". *)
      if l4_protocol t = Udp && get_u16 t.buf field = 0 then true
      else l4_segment_checksum t = 0xffff

let set_total_length t len =
  set_u16 t.buf (ip_off + 2) len;
  refresh_ip_checksum t

let default_dmac = "\x02\x00\x00\x00\x00\x02"
let default_smac = "\x02\x00\x00\x00\x00\x01"

let create ?(dmac = default_dmac) ?(smac = default_smac) ?(ttl = 64) ?(tos = 0)
    ~(flow : Flow.t) ~payload () =
  if String.length dmac <> 6 || String.length smac <> 6 then
    invalid_arg "Packet.create: MAC addresses must be 6 bytes";
  let l4 = if flow.proto = proto_tcp then tcp_len else if flow.proto = proto_udp then udp_len else 0 in
  let total = ip_len + l4 + String.length payload in
  let buf = Bytes.make (eth_len + total) '\x00' in
  Bytes.blit_string dmac 0 buf 0 6;
  Bytes.blit_string smac 0 buf 6 6;
  set_u16 buf 12 0x0800;
  set_u8 buf ip_off 0x45;
  set_u8 buf (ip_off + 1) tos;
  set_u16 buf (ip_off + 2) total;
  set_u16 buf (ip_off + 4) 0 (* identification *);
  set_u16 buf (ip_off + 6) 0x4000 (* don't fragment *);
  set_u8 buf (ip_off + 8) ttl;
  set_u8 buf (ip_off + 9) flow.proto;
  set_u32 buf (ip_off + 12) flow.sip;
  set_u32 buf (ip_off + 16) flow.dip;
  let l4o = ip_off + ip_len in
  if flow.proto = proto_tcp then begin
    set_u16 buf l4o flow.sport;
    set_u16 buf (l4o + 2) flow.dport;
    set_u8 buf (l4o + 12) 0x50 (* data offset: 5 words *);
    set_u8 buf (l4o + 13) 0x18 (* PSH|ACK *);
    set_u16 buf (l4o + 14) 0xffff (* window *)
  end
  else if flow.proto = proto_udp then begin
    set_u16 buf l4o flow.sport;
    set_u16 buf (l4o + 2) flow.dport;
    set_u16 buf (l4o + 4) (udp_len + String.length payload)
  end;
  Bytes.blit_string payload 0 buf (eth_len + ip_len + l4) (String.length payload);
  let t = of_buf buf in
  refresh_ip_checksum t;
  refresh_l4_checksum t;
  t

let of_bytes b =
  let len = Bytes.length b in
  if len < eth_len + ip_len then Error "packet too short for Ethernet + IPv4"
  else if get_u16 b 12 <> 0x0800 then Error "not an IPv4 ethertype"
  else if get_u8 b ip_off <> 0x45 then Error "unsupported IPv4 version/IHL"
  else
    let total = get_u16 b (ip_off + 2) in
    if eth_len + total <> len then Error "IPv4 total length disagrees with frame length"
    else begin
      let t = of_buf (Bytes.copy b) in
      let need = header_length t in
      if len < need then Error "frame truncates the transport header" else Ok t
    end

let to_bytes t = Bytes.copy t.buf

let meta t = Meta.make ~mid:t.m_mid ~pid:t.m_pid ~version:t.m_version

let set_meta t (m : Meta.t) =
  t.m_mid <- m.mid;
  t.m_pid <- m.pid;
  t.m_version <- m.version

let mid t = t.m_mid

let pid t = t.m_pid

let version t = t.m_version

let stamp t ~mid ~pid ~version =
  Meta.check ~mid ~pid ~version;
  t.m_mid <- mid;
  t.m_pid <- pid;
  t.m_version <- version

let set_version t version =
  Meta.check_version version;
  t.m_version <- version

(* IPv4 field getters/setters. *)
let sip t = get_u32 t.buf (ip_off + 12)

let set_u32_with_l4 t off v =
  let old_hi = get_u16 t.buf off and old_lo = get_u16 t.buf (off + 2) in
  set_u32 t.buf off v;
  let new_hi = get_u16 t.buf off and new_lo = get_u16 t.buf (off + 2) in
  l4_incremental_update t ~old16:old_hi ~new16:new_hi;
  l4_incremental_update t ~old16:old_lo ~new16:new_lo

let set_sip t v =
  set_u32_with_l4 t (ip_off + 12) v;
  refresh_ip_checksum t

let dip t = get_u32 t.buf (ip_off + 16)

let set_dip t v =
  set_u32_with_l4 t (ip_off + 16) v;
  refresh_ip_checksum t

let ttl t = get_u8 t.buf (ip_off + 8)

let set_ttl t v =
  set_u8 t.buf (ip_off + 8) v;
  refresh_ip_checksum t

let tos t = get_u8 t.buf (ip_off + 1)

let set_tos t v =
  set_u8 t.buf (ip_off + 1) v;
  refresh_ip_checksum t

let has_l4_ports t = match l4_protocol t with Tcp | Udp -> true | Other _ -> false

let sport t = if has_l4_ports t then get_u16 t.buf (l4_off t) else 0

let dport t = if has_l4_ports t then get_u16 t.buf (l4_off t + 2) else 0

let check_port p = if p < 0 || p > 0xffff then invalid_arg "Packet: port out of range"

let set_sport t p =
  check_port p;
  if has_l4_ports t then begin
    let old16 = get_u16 t.buf (l4_off t) in
    set_u16 t.buf (l4_off t) p;
    l4_incremental_update t ~old16 ~new16:p
  end

let set_dport t p =
  check_port p;
  if has_l4_ports t then begin
    let old16 = get_u16 t.buf (l4_off t + 2) in
    set_u16 t.buf (l4_off t + 2) p;
    l4_incremental_update t ~old16 ~new16:p
  end

let flow t =
  Flow.make ~sip:(sip t) ~dip:(dip t) ~sport:(sport t) ~dport:(dport t) ~proto:(proto t)

(* Unsigned native-int address reads: [sip]/[dip] box an int32 per
   call, and the classifier's microflow-cache hit path reads both per
   packet. Bit pattern matches [Int32.to_int (sip t) land 0xffffffff]. *)
let sip_int t = (get_u16 t.buf (ip_off + 12) lsl 16) lor get_u16 t.buf (ip_off + 14)

let dip_int t = (get_u16 t.buf (ip_off + 16) lsl 16) lor get_u16 t.buf (ip_off + 18)

let payload t =
  let off = payload_off t in
  Bytes.sub_string t.buf off (Bytes.length t.buf - off)

let set_payload t payload =
  let off = payload_off t in
  let buf = Bytes.make (off + String.length payload) '\x00' in
  Bytes.blit t.buf 0 buf 0 off;
  Bytes.blit_string payload 0 buf off (String.length payload);
  t.buf <- buf;
  refresh_geom t;
  set_total_length t (Bytes.length buf - eth_len);
  if l4_protocol t = Udp then set_u16 t.buf (l4_off t + 4) (udp_len + String.length payload);
  refresh_l4_checksum t

let add_ah t ~spi ~seq ~icv =
  if has_ah t then invalid_arg "Packet.add_ah: AH header already present";
  let inner = outer_proto t in
  let insert_at = ip_off + ip_len in
  let buf = Bytes.make (Bytes.length t.buf + ah_len) '\x00' in
  Bytes.blit t.buf 0 buf 0 insert_at;
  Bytes.blit t.buf insert_at buf (insert_at + ah_len) (Bytes.length t.buf - insert_at);
  t.buf <- buf;
  set_u8 t.buf insert_at inner;
  set_u8 t.buf (insert_at + 1) ((ah_len / 4) - 2) (* RFC 4302 payload length *);
  set_u32 t.buf (insert_at + 4) spi;
  set_u32 t.buf (insert_at + 8) seq;
  set_u32 t.buf (insert_at + 12) icv;
  set_u8 t.buf (ip_off + 9) proto_ah;
  refresh_geom t;
  set_total_length t (Bytes.length t.buf - eth_len)

let remove_ah t =
  if not (has_ah t) then None
  else begin
    let ah_at = ip_off + ip_len in
    let inner = get_u8 t.buf ah_at in
    let spi = get_u32 t.buf (ah_at + 4) in
    let seq = get_u32 t.buf (ah_at + 8) in
    let icv = get_u32 t.buf (ah_at + 12) in
    let buf = Bytes.make (Bytes.length t.buf - ah_len) '\x00' in
    Bytes.blit t.buf 0 buf 0 ah_at;
    Bytes.blit t.buf (ah_at + ah_len) buf ah_at (Bytes.length t.buf - ah_at - ah_len);
    t.buf <- buf;
    set_u8 t.buf (ip_off + 9) inner;
    refresh_geom t;
    set_total_length t (Bytes.length t.buf - eth_len);
    Some (spi, seq, icv)
  end

(* Canonical string encodings used by merge operations. *)
let encode_u32 v =
  String.init 4 (fun i ->
      Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v ((3 - i) * 8)) 0xffl)))

let decode_u32 s =
  if String.length s <> 4 then invalid_arg "Packet: field encoding must be 4 bytes";
  let b i = Int32.of_int (Char.code s.[i]) in
  Int32.logor
    (Int32.shift_left (b 0) 24)
    (Int32.logor (Int32.shift_left (b 1) 16) (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))

let encode_u16 v = String.init 2 (fun i -> Char.chr ((v lsr ((1 - i) * 8)) land 0xff))

let decode_u16 s =
  if String.length s <> 2 then invalid_arg "Packet: field encoding must be 2 bytes";
  (Char.code s.[0] lsl 8) lor Char.code s.[1]

let encode_u8 v = String.make 1 (Char.chr (v land 0xff))

let decode_u8 s =
  if String.length s <> 1 then invalid_arg "Packet: field encoding must be 1 byte";
  Char.code s.[0]

let get_field t = function
  | Field.Sip -> encode_u32 (sip t)
  | Field.Dip -> encode_u32 (dip t)
  | Field.Sport -> encode_u16 (sport t)
  | Field.Dport -> encode_u16 (dport t)
  | Field.Proto -> encode_u8 (proto t)
  | Field.Ttl -> encode_u8 (ttl t)
  | Field.Tos -> encode_u8 (tos t)
  | Field.Len -> encode_u16 (wire_length t - eth_len)
  | Field.Payload -> payload t

let set_inner_proto t v =
  if has_ah t then set_u8 t.buf (ip_off + ip_len) v
  else begin
    set_u8 t.buf (ip_off + 9) v;
    refresh_ip_checksum t
  end;
  (* The inner protocol decides the L4 interpretation (header length,
     checksum field), so the cached geometry must follow it. *)
  refresh_geom t

let set_field t field s =
  match field with
  | Field.Sip -> set_sip t (decode_u32 s)
  | Field.Dip -> set_dip t (decode_u32 s)
  | Field.Sport -> set_sport t (decode_u16 s)
  | Field.Dport -> set_dport t (decode_u16 s)
  | Field.Proto -> set_inner_proto t (decode_u8 s)
  | Field.Ttl -> set_ttl t (decode_u8 s)
  | Field.Tos -> set_tos t (decode_u8 s)
  | Field.Len ->
      (* Length is derived: setting it resizes the payload, truncating
         or zero-padding to reach the requested IP total length. *)
      let target = decode_u16 s in
      let header = header_length t - eth_len in
      let want = max 0 (target - header) in
      let current = payload t in
      let resized =
        if String.length current >= want then String.sub current 0 want
        else current ^ String.make (want - String.length current) '\x00'
      in
      set_payload t resized
  | Field.Payload -> set_payload t s

let full_copy t =
  {
    buf = Bytes.copy t.buf;
    m_mid = t.m_mid;
    m_pid = t.m_pid;
    m_version = t.m_version;
    g_ah = t.g_ah;
    g_proto = t.g_proto;
    g_l4_off = t.g_l4_off;
  }

let header_only_copy t ~version =
  Meta.check_version version;
  let hlen = header_length t in
  let buf = Bytes.sub t.buf 0 hlen in
  let copy =
    {
      buf;
      m_mid = t.m_mid;
      m_pid = t.m_pid;
      m_version = version;
      g_ah = t.g_ah;
      g_proto = t.g_proto;
      g_l4_off = t.g_l4_off;
    }
  in
  (* The copy must parse as a valid packet: its IP total length now
     covers only the headers (paper §4.2). *)
  set_total_length copy (hlen - eth_len);
  if l4_protocol copy = Udp then set_u16 copy.buf (l4_off copy + 4) udp_len;
  refresh_l4_checksum copy;
  copy

let equal_wire a b = Bytes.equal a.buf b.buf

let pp fmt t =
  Format.fprintf fmt "@[<h>%a len=%dB%s ttl=%d tos=%d [%a]@]" Flow.pp (flow t) (wire_length t)
    (if has_ah t then " +AH" else "")
    (ttl t) (tos t) Meta.pp (meta t)

let pp_hex fmt t =
  let b = t.buf in
  for i = 0 to Bytes.length b - 1 do
    if i > 0 && i mod 16 = 0 then Format.pp_print_newline fmt ();
    Format.fprintf fmt "%02x " (Char.code (Bytes.get b i))
  done
