(** Two-level flow classifier: microflow cache over a tuple-space
    matcher.

    Classifies a 5-tuple against an ordered {!Flow_match} rule table
    with first-match-wins priority — the paper's Classification Table
    (§5.1, Fig. 4) — in amortized O(1) per packet instead of a linear
    scan per packet:

    - level 1, an exact-match microflow cache
      ({!Nfp_algo.Flow_table}): a recently seen flow maps straight to
      its MID (or to the cached negative "no rule" result);
    - level 2, a tuple-space matcher: rules grouped by mask shape
      (prefix lengths, port-range kind, proto presence), one hash table
      per shape, so a cache miss probes one table per distinct shape
      rather than every rule. Port ranges are unmaskable and are
      verified exactly, per candidate rule, inside a group's bucket.

    Priority is preserved exactly: each group resolves to its lowest
    matching rule index and the winner is the minimum across groups
    (groups whose lowest index cannot beat the match in hand are
    skipped). [test/test_classifier.ml] holds {!classify} to
    packet-for-packet agreement with {!scan} on randomized tables. *)

type t

type outcome =
  | Hit  (** resolved by the microflow cache *)
  | Miss of int  (** resolved by the tuple space; payload = groups probed *)

val create : ?cache_capacity:int -> Flow_match.t array -> t
(** Build the tuple space for an ordered rule table (index 0 has the
    highest priority) with an empty cache of [cache_capacity] (default
    65536) flows. *)

val classify : t -> Flow.t -> int option * outcome
(** First-match lookup: [Some mid] is the 1-based rule position, [None]
    means no rule matches. Negative results are cached too. *)

val classify_packet : t -> Packet.t -> int
(** Allocation-free form of {!classify} for the per-packet front end:
    reads the 5-tuple straight from [pkt]'s bytes, and a microflow-cache
    hit allocates nothing (no Flow.t, no option, no outcome). Returns
    the resolved 1-based MID, 0 when no rule matches; identical result
    and counter movement to {!classify} on the packet's flow. The probe
    accounting {!classify} returns in its outcome is read back through
    {!last_probes}. *)

val last_probes : t -> int
(** Tuple-space groups probed by the most recent {!classify_packet}:
    [-1] for a cache hit. *)

val scan : Flow_match.t array -> Flow.t -> int option * int
(** Reference linear scan; also returns the number of rules examined
    (for cost accounting). *)

val group_count : t -> int
(** Distinct mask shapes — the tables probed on a worst-case miss. *)

val rule_count : t -> int

val cache_hits : t -> int

val cache_misses : t -> int

val cache_evictions : t -> int
