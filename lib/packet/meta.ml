type t = { mid : int; pid : int64; version : int }

let mid_bits = 20
let pid_bits = 40
let version_bits = 4

let max_mid = (1 lsl mid_bits) - 1
let max_pid = Int64.sub (Int64.shift_left 1L pid_bits) 1L
let max_version = (1 lsl version_bits) - 1

let check ~mid ~pid ~version =
  if mid < 0 || mid > max_mid then invalid_arg "Meta.make: mid out of 20-bit range";
  if Int64.compare pid 0L < 0 || Int64.compare pid max_pid > 0 then
    invalid_arg "Meta.make: pid out of 40-bit range";
  if version < 0 || version > max_version then
    invalid_arg "Meta.make: version out of 4-bit range"

let check_version version =
  if version < 0 || version > max_version then
    invalid_arg "Meta.make: version out of 4-bit range"

let make ~mid ~pid ~version =
  check ~mid ~pid ~version;
  { mid; pid; version }

let with_version t version = make ~mid:t.mid ~pid:t.pid ~version

let encode t =
  let mid = Int64.shift_left (Int64.of_int t.mid) (pid_bits + version_bits) in
  let pid = Int64.shift_left t.pid version_bits in
  Int64.logor mid (Int64.logor pid (Int64.of_int t.version))

let decode v =
  let version = Int64.to_int (Int64.logand v 0xfL) in
  let pid = Int64.logand (Int64.shift_right_logical v version_bits) max_pid in
  let mid = Int64.to_int (Int64.shift_right_logical v (pid_bits + version_bits)) land max_mid in
  { mid; pid; version }

let equal a b = a.mid = b.mid && Int64.equal a.pid b.pid && a.version = b.version

let pp fmt t = Format.fprintf fmt "mid=%d pid=%Ld v%d" t.mid t.pid t.version

let zero = { mid = 0; pid = 0L; version = 0 }
