(* Two-level flow classifier for the Classification Table (paper §5.1).

   Level 1 is an exact-match microflow cache (Nfp_algo.Flow_table):
   recently seen 5-tuples map straight to their result, including the
   negative "no rule matches" result. Level 2 is a tuple-space matcher:
   rules are grouped by mask shape — (sip prefix length, dip prefix
   length, port kind, port kind, proto presence) — and each group keeps
   one hash table from the masked key to its rules, so a cache miss
   probes one table per distinct shape instead of scanning every rule.

   First-match priority is preserved exactly: each group's bucket list
   is ascending by rule index, groups are scanned in ascending order of
   their lowest rule index, and the probe stops as soon as no remaining
   group can beat the best match found. Port ranges are not maskable,
   so range dimensions contribute nothing to a group's key and are
   verified per candidate rule inside the bucket. *)

type port_kind = Wild | Exact | Range

type entry = { e_index : int; e_match : Flow_match.t }

type group = {
  g_sip_len : int;  (* 0 = wildcard *)
  g_dip_len : int;
  g_sport : port_kind;
  g_dport : port_kind;
  g_proto : bool;
  g_min_index : int;  (* lowest rule index in the group *)
  g_table : (int * int, entry list) Hashtbl.t;
}

type t = {
  groups : group array;  (* ascending by g_min_index *)
  cache : Nfp_algo.Flow_table.t;
  rules : int;
  (* Probe count of the most recent [classify_packet]: -1 for a cache
     hit, otherwise the number of tuple-space groups probed. Out-of-band
     so the allocation-free entry point can stay int-valued. *)
  mutable last_probes : int;
}

type outcome = Hit | Miss of int

(* /0 prefixes match everything; normalize them to wildcard so they
   land in the same group shape as an absent prefix. *)
let prefix_len = function None | Some (_, 0) -> 0 | Some (_, len) -> len

let port_kind = function
  | None -> Wild
  | Some (lo, hi) -> if lo = hi then Exact else Range

let mask_of_len len = if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let masked_key g (m : Flow_match.t) =
  let ip prefix len =
    match prefix with
    | None -> 0l
    | Some (p, _) -> Int32.logand p (mask_of_len len)
  in
  let port kind range = match (kind, range) with Exact, Some (lo, _) -> lo | _ -> 0 in
  ( Nfp_algo.Hashing.pack_a (ip m.sip_prefix g.g_sip_len)
      (port g.g_sport m.sport_range)
      (match (g.g_proto, m.proto) with true, Some p -> p | _ -> 0),
    Nfp_algo.Hashing.pack_b (ip m.dip_prefix g.g_dip_len) (port g.g_dport m.dport_range) )

let flow_key g (f : Flow.t) =
  ( Nfp_algo.Hashing.pack_a
      (Int32.logand f.sip (mask_of_len g.g_sip_len))
      (match g.g_sport with Exact -> f.sport | Wild | Range -> 0)
      (if g.g_proto then f.proto else 0),
    Nfp_algo.Hashing.pack_b
      (Int32.logand f.dip (mask_of_len g.g_dip_len))
      (match g.g_dport with Exact -> f.dport | Wild | Range -> 0) )

let shape_of (m : Flow_match.t) =
  ( prefix_len m.sip_prefix,
    prefix_len m.dip_prefix,
    port_kind m.sport_range,
    port_kind m.dport_range,
    m.proto <> None )

let create ?(cache_capacity = 1 lsl 16) rules =
  let shapes = Hashtbl.create 16 in
  Array.iteri
    (fun i m ->
      let s = shape_of m in
      let g =
        match Hashtbl.find_opt shapes s with
        | Some g -> g
        | None ->
            let sip_len, dip_len, sk, dk, proto = s in
            let g =
              {
                g_sip_len = sip_len;
                g_dip_len = dip_len;
                g_sport = sk;
                g_dport = dk;
                g_proto = proto;
                g_min_index = i;
                g_table = Hashtbl.create 64;
              }
            in
            Hashtbl.replace shapes s g;
            g
      in
      let key = masked_key g m in
      let bucket = try Hashtbl.find g.g_table key with Not_found -> [] in
      (* Rules arrive in ascending index order; appending keeps each
         bucket sorted, so its first full match is the group minimum. *)
      Hashtbl.replace g.g_table key (bucket @ [ { e_index = i; e_match = m } ]))
    rules;
  let groups =
    Hashtbl.fold (fun _ g acc -> g :: acc) shapes []
    |> List.sort (fun a b -> compare a.g_min_index b.g_min_index)
    |> Array.of_list
  in
  {
    groups;
    cache = Nfp_algo.Flow_table.create ~capacity:cache_capacity ();
    rules = Array.length rules;
    last_probes = -1;
  }

(* Linear first-match scan: the executable reference the tuple space is
   held to. Returns the 1-based MID and the number of rules examined. *)
let scan rules (f : Flow.t) =
  let n = Array.length rules in
  let rec go i = if i >= n then (None, n) else if Flow_match.matches rules.(i) f then (Some (i + 1), i + 1) else go (i + 1) in
  go 0

let lookup_groups t (f : Flow.t) =
  let best = ref max_int and probed = ref 0 in
  let n = Array.length t.groups in
  (let rec go gi =
     if gi < n then begin
       let g = t.groups.(gi) in
       (* No rule in this or any later group can beat the match in
          hand: groups are ascending by their lowest index. *)
       if g.g_min_index < !best then begin
         incr probed;
         (match Hashtbl.find_opt g.g_table (flow_key g f) with
         | None -> ()
         | Some bucket -> (
             match
               List.find_opt (fun e -> Flow_match.matches e.e_match f) bucket
             with
             | Some e -> if e.e_index < !best then best := e.e_index
             | None -> ()));
         go (gi + 1)
       end
     end
   in
   go 0);
  ((if !best = max_int then None else Some (!best + 1)), !probed)

let classify t (f : Flow.t) =
  match
    Nfp_algo.Flow_table.find t.cache ~sip:f.sip ~dip:f.dip ~sport:f.sport
      ~dport:f.dport ~proto:f.proto
  with
  | Some 0 -> (None, Hit)
  | Some mid -> (Some mid, Hit)
  | None ->
      let result, probed = lookup_groups t f in
      Nfp_algo.Flow_table.put t.cache ~sip:f.sip ~dip:f.dip ~sport:f.sport
        ~dport:f.dport ~proto:f.proto
        (match result with Some mid -> mid | None -> 0);
      (result, Miss probed)

(* Allocation-free classification for the dataplane front end: a
   cache hit packs the 5-tuple straight from packet bytes into the two
   key limbs and probes the microflow cache without building a Flow.t,
   an option or an outcome — no allocation at all. Only a miss (which
   pays a tuple-space walk anyway) materializes the flow. Returns the
   resolved 1-based MID, 0 when no rule matches; probe accounting is
   read back through [last_probes]. Counters move exactly as
   [classify]'s do. *)
let classify_packet t pkt =
  let a =
    Nfp_algo.Hashing.pack_a_int (Packet.sip_int pkt) (Packet.sport pkt) (Packet.proto pkt)
  in
  let b = Nfp_algo.Hashing.pack_b_int (Packet.dip_int pkt) (Packet.dport pkt) in
  match Nfp_algo.Flow_table.find_packed t.cache ~a ~b with
  | -1 ->
      let f = Packet.flow pkt in
      let result, probed = lookup_groups t f in
      let mid = match result with Some mid -> mid | None -> 0 in
      Nfp_algo.Flow_table.put_packed t.cache ~a ~b mid;
      t.last_probes <- probed;
      mid
  | mid ->
      t.last_probes <- -1;
      mid

let last_probes t = t.last_probes

let group_count t = Array.length t.groups
let rule_count t = t.rules
let cache_hits t = Nfp_algo.Flow_table.hits t.cache
let cache_misses t = Nfp_algo.Flow_table.misses t.cache
let cache_evictions t = Nfp_algo.Flow_table.evictions t.cache
