(** Byte-level packets: Ethernet / IPv4 [/ AH] / TCP|UDP / payload.

    A packet owns its wire bytes plus the 64-bit NFP metadata the
    classifier attaches (paper Fig. 5). Field accessors keep the IPv4
    header checksum valid; header add/remove supports the VPN's IPsec AH
    encapsulation; {!header_only_copy} implements the paper's
    Header-Only Copying optimisation (§4.2), rewriting the copied IP
    total-length to cover just the headers so parallel NFs still see a
    well-formed packet. *)

type t

type l4 = Tcp | Udp | Other of int

(** {1 Construction and parsing} *)

val create :
  ?dmac:string ->
  ?smac:string ->
  ?ttl:int ->
  ?tos:int ->
  flow:Flow.t ->
  payload:string ->
  unit ->
  t
(** Build a well-formed packet for [flow] carrying [payload]. The L4
    header is TCP for proto 6, UDP for proto 17, absent otherwise.
    Checksums are computed. MAC addresses default to locally
    administered constants. @raise Invalid_argument if a MAC is not 6
    bytes. *)

val of_bytes : bytes -> (t, string) result
(** Parse wire bytes (metadata zeroed). Validates lengths and the
    ethertype; does not require valid checksums. *)

val to_bytes : t -> bytes
(** A copy of the wire bytes. *)

val wire_length : t -> int
(** Bytes on the wire, Ethernet header included. *)

(** {1 Metadata} *)

val meta : t -> Meta.t
(** Materializes a {!Meta.t} from the flat components; prefer {!mid} /
    {!pid} / {!version} on hot paths (this allocates, those do not). *)

val set_meta : t -> Meta.t -> unit

val mid : t -> int
(** The metadata Match ID, read flat (no allocation). *)

val pid : t -> int64
(** The metadata Packet ID; returns the stored box, allocating nothing. *)

val version : t -> int
(** The metadata copy version, read flat (no allocation). *)

val stamp : t -> mid:int -> pid:int64 -> version:int -> unit
(** Set all three metadata components without building a {!Meta.t} —
    what the classifier does per packet.
    @raise Invalid_argument exactly when {!Meta.make} would. *)

val set_version : t -> int -> unit
(** Retag the copy version only.
    @raise Invalid_argument outside the 4-bit range. *)

(** {1 Field access}

    Getters/setters for the fields of {!Field.t}. Setters that touch
    the IPv4 header refresh its checksum. *)

val flow : t -> Flow.t

val sip : t -> int32
val set_sip : t -> int32 -> unit

val dip : t -> int32
val set_dip : t -> int32 -> unit

val sip_int : t -> int
val dip_int : t -> int
(** Unsigned native-int forms of {!sip}/{!dip} (the int32 forms box
    their result; the classifier's per-packet cache probe uses these). *)

val sport : t -> int
(** 0 when the packet has no TCP/UDP header. *)

val set_sport : t -> int -> unit
(** No-op on packets without a transport header.
    @raise Invalid_argument if the port is out of range. *)

val dport : t -> int
val set_dport : t -> int -> unit

val ttl : t -> int
val set_ttl : t -> int -> unit

val tos : t -> int
val set_tos : t -> int -> unit

val proto : t -> int
(** The innermost protocol (looks through an AH header). *)

val l4_protocol : t -> l4

val payload : t -> string
val set_payload : t -> string -> unit
(** Replacing the payload may change packet length; IP total length and
    checksum are updated. *)

val get_field : t -> Field.t -> string
(** Canonical string encoding of a field's current value (used by the
    merger to transplant fields between versions and by tests to
    compare packets field-wise). *)

val set_field : t -> Field.t -> string -> unit
(** Inverse of {!get_field}. @raise Invalid_argument on an encoding that
    does not fit the field. *)

(** {1 IPsec AH encapsulation (VPN NF)} *)

val has_ah : t -> bool

val add_ah : t -> spi:int32 -> seq:int32 -> icv:int32 -> unit
(** Insert a 16-byte Authentication Header between IPv4 and the
    transport header (tunnel-mode-style wrap used by the paper's VPN
    NF). IPv4 protocol becomes 51; lengths/checksum updated.
    @raise Invalid_argument if the packet already has an AH header. *)

val remove_ah : t -> (int32 * int32 * int32) option
(** Strip the AH header, restoring the inner protocol; returns
    (spi, seq, icv) or [None] when absent. *)

val ip_checksum_valid : t -> bool

val l4_checksum_valid : t -> bool
(** TCP/UDP checksum over the RFC pseudo-header and segment; [true]
    for packets without a transport header and for UDP's "checksum
    disabled" zero. Field setters (including address rewrites, which
    touch the pseudo-header) keep it valid. *)

(** {1 Copies (paper §4.2, §5.2)} *)

val full_copy : t -> t
(** Deep copy, same metadata. *)

val header_only_copy : t -> version:int -> t
(** Copy Ethernet + IPv4 [+ AH] + transport headers only; the copy's IP
    total length is set to the header length so it parses as a valid,
    payload-less packet, and its metadata version becomes [version]. *)

val header_length : t -> int
(** Length in bytes that {!header_only_copy} would copy. *)

(** {1 Comparison and printing} *)

val equal_wire : t -> t -> bool
(** Byte equality of wire representations (ignores metadata). *)

val pp : Format.formatter -> t -> unit

val pp_hex : Format.formatter -> t -> unit
