(** NFP packet metadata: MID, PID and version.

    The classifier attaches 64 bits of metadata to every packet
    (paper Fig. 5): a 20-bit Match ID naming the service graph, a 40-bit
    Packet ID unique per packet of a flow, and a 4-bit version
    distinguishing copies of the same packet. *)

type t = private { mid : int; pid : int64; version : int }

val mid_bits : int
val pid_bits : int
val version_bits : int

val make : mid:int -> pid:int64 -> version:int -> t
(** @raise Invalid_argument when any component exceeds its bit width. *)

val check : mid:int -> pid:int64 -> version:int -> unit
(** {!make}'s validation alone — for callers that keep the components
    flat (e.g. {!Packet.stamp}) and must reject exactly what [make]
    rejects, without building the record.
    @raise Invalid_argument when any component exceeds its bit width. *)

val check_version : int -> unit
(** The version-width check alone ({!Packet.set_version}).
    @raise Invalid_argument outside the 4-bit range. *)

val with_version : t -> int -> t
(** Same MID/PID, different version (how [copy] tags a new copy). *)

val encode : t -> int64
(** Pack into the 64-bit wire form: MID in the top 20 bits, then PID,
    then version in the low 4 bits. *)

val decode : int64 -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val zero : t
