(** Dataplane cost model.

    All per-packet work is charged in CPU cycles on a 3.0 GHz core (the
    paper's Xeon E5-2690 v2). The constants are calibrated once against
    the paper's published measurements (Fig. 7, Table 4) and recorded in
    DESIGN.md; benches do not re-tune them. *)

type t = {
  ghz : float;  (** core clock, cycles per nanosecond *)
  ring_enqueue : int;  (** write a packet reference into a ring *)
  ring_dequeue : int;  (** read one out *)
  classifier : int;  (** CT lookup + metadata tagging *)
  classify_hit : int;  (** microflow-cache hit: one exact-match probe *)
  classify_group : int;  (** per tuple-space group probed on a cache miss *)
  classify_rule : int;
      (** per CT rule examined by the reference linear scan *)
  switch_forward : int;
      (** OpenNetVM-style centralized switch, per packet (its RX/TX
          path is the bottleneck; per-hop relaying is pipelined) *)
  switch_per_hop : int;  (** additional per relayed hop *)
  header_copy : int;  (** 64-byte header-only copy *)
  copy_base : int;  (** fixed cost of any copy *)
  copy_per_byte : float;  (** full-copy cost per payload byte *)
  merge_delivery : int;  (** merger bookkeeping per received copy *)
  merge_op : int;  (** per merge operation applied *)
  merger_agent : int;  (** load-balancing hash + forward *)
  nf_runtime : int;  (** NF runtime overhead per packet (FT lookup) *)
  rtc_call : int;  (** per-NF function-call overhead in the RTC model *)
  wire_ns : float;  (** generator + NIC round trip, nanoseconds *)
  batch : int;  (** poll-mode batch size (DPDK rx burst) *)
  burst_saving : int;
      (** per-job dispatch cycles the second and later jobs of one
          poll-loop breath do not repay (ring-dequeue synchronization +
          run-to-completion dispatch — amortized across the burst, as
          in DPDK/BESS). {!Nfp_sim.Server} deducts them from follower
          service times; breaths of one job always pay full price, so a
          batch size of 1 reproduces per-packet charging exactly. *)
  restart_ns : float;
      (** bringing a crashed NF container back: respawn + ring
          re-attachment (§7 fault model) *)
  log_append : int;
      (** appending one packet reference to a core's input log, charged
          per packet while lossless recovery is armed *)
  checkpoint_cycles : int;
      (** snapshotting an NF's state tables at a checkpoint, charged to
          the NF core ahead of its next batch *)
  replay_cycles : int;
      (** per-packet dequeue+dispatch overhead of replaying the input
          log during recovery, on top of the NF's own processing cost *)
  ack_cycles : int;
      (** assembling + processing one cumulative ack of a reliable link
          channel (piggybacked on a breath completion), modeled as
          transit delay on the channel *)
  retransmit_cycles : int;
      (** re-emitting one tx-buffered packet onto the fabric after a
          loss, modeled as added transit delay of the retransmission *)
}

val default : t
(** Containers on pinned cores with shared-memory rings (the paper's
    prototype). *)

val classified : t
(** {!default} with the classification-structure terms charged
    ([classify_hit]/[classify_group]/[classify_rule] non-zero), so
    measured latency reflects hit-vs-miss behaviour and rule-table
    size. They default to zero in {!default} because the §6
    reproduction experiments charge classification as the flat
    [classifier] constant (the seed calibration) and their results must
    not move; the classify bench opts in. *)

val vm : t
(** Virtual-machine deployment (paper §7 discussion): the same dataplane
    behind virtio-style rings — ring operations, copies and NIC paths
    cost several times more, everything else is unchanged. *)

val ns_of_cycles : t -> int -> float

val cycles_of_ns : t -> float -> int
