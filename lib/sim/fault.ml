(* Deterministic, seeded fault injection for the simulated dataplane.

   A fault plan describes, per core (by name, or by a trailing-'*'
   prefix pattern), a set of timed perturbations: a crash at time T, a
   hang over a window, a service-time slowdown from time T on, or a
   per-job transient drop probability. [Server.create ?fault] wires the
   events into a core without the NF code knowing; [Nfp_infra.System]
   resolves plans to cores by name, so any NF, merger, agent or
   classifier core can be perturbed from configuration alone.

   Determinism: every random draw a plan induces — drop decisions on a
   core, crash times of a [storm] — comes from a PRNG seeded by the
   plan seed (mixed with the core name for per-core streams), never
   from the simulation's own jitter streams. Two runs of the same plan
   are identical, and a run with [empty] is byte-identical to a run
   without any fault machinery at all (enforced by the differential
   test in test/test_fastpath.ml). *)

type event =
  | Crash of { at_ns : float }  (* the core stops; only an external revive restores it *)
  | Hang of { at_ns : float; duration_ns : float }  (* wedged for a window, then resumes *)
  | Slowdown of { at_ns : float; factor : float }  (* service times scale by [factor] from T on *)
  | Drop of { probability : float }  (* each job vanishes with probability p *)

type spec = { core : string; events : event list }

type plan = { seed : int64; specs : spec list }

let empty = { seed = 1L; specs = [] }

let is_empty p = p.specs = []

let plan ?(seed = 1L) specs = { seed; specs }

let crash ~at_ns core = { core; events = [ Crash { at_ns } ] }

let hang ~at_ns ~duration_ns core = { core; events = [ Hang { at_ns; duration_ns } ] }

let slowdown ~at_ns ~factor core = { core; events = [ Slowdown { at_ns; factor } ] }

let drop ~probability core = { core; events = [ Drop { probability } ] }

(* Exact name, or prefix followed by '*' ("mid1:*" perturbs every NF
   core of graph 1). *)
let matches ~pattern ~name =
  pattern = name
  || String.length pattern > 0
     && pattern.[String.length pattern - 1] = '*'
     &&
     let n = String.length pattern - 1 in
     String.length name >= n && String.sub name 0 n = String.sub pattern 0 n

(* Per-core PRNG stream: the plan seed folded with the core name, so
   adding a fault on one core never shifts the draws of another. *)
let seed_for p name =
  let h = ref (Nfp_algo.Hashing.mix64 p.seed) in
  String.iter
    (fun c ->
      h := Nfp_algo.Hashing.mix64 (Int64.add (Int64.mul !h 131L) (Int64.of_int (Char.code c))))
    name;
  !h

(* Everything a server needs to perturb itself: the matching events and
   a private PRNG for drop decisions. *)
type core = { events : event list; prng : Nfp_algo.Prng.t }

let for_core p name =
  if p.specs = [] then None
  else
    match
      List.concat_map
        (fun s -> if matches ~pattern:s.core ~name then s.events else [])
        p.specs
    with
    | [] -> None
    | events -> Some { events; prng = Nfp_algo.Prng.create ~seed:(seed_for p name) }

(* Crash storm: each listed core crashes at exponentially-distributed
   intervals (mean [mtbf_ns]) within [horizon_ns]. Paired with the
   system's Restart recovery this models a fleet of unreliable cores;
   the bench sweeps [mtbf_ns] to trace availability under increasing
   crash rates. Draw order is per-core, so the storm is stable under
   reordering of [cores]. *)
let storm ?(seed = 1L) ~cores ~mtbf_ns ~horizon_ns () =
  if mtbf_ns <= 0.0 then invalid_arg "Fault.storm: mtbf_ns must be positive";
  let specs =
    List.map
      (fun core ->
        let prng =
          Nfp_algo.Prng.create ~seed:(seed_for { seed; specs = [] } ("storm:" ^ core))
        in
        let rec go t acc =
          let t = t +. Nfp_algo.Prng.exponential prng ~mean:mtbf_ns in
          if t >= horizon_ns then List.rev acc else go t (Crash { at_ns = t } :: acc)
        in
        { core; events = go 0.0 [] })
      cores
  in
  { seed; specs }

let event_count p =
  List.fold_left (fun acc (s : spec) -> acc + List.length s.events) 0 p.specs

(* ------------------------------------------------------------------ *)
(* Surge plans: offered-load shapes                                    *)
(* ------------------------------------------------------------------ *)

(* Where fault specs perturb cores, surge shapes perturb the *offered
   load*: a plan evaluates to a rate multiplier over simulated time,
   and [Harness.run ~arrivals:(Surge s)] re-samples it at every
   arrival. Multipliers of overlapping shapes compose by product. *)
type surge_shape =
  | Step of { at_ns : float; factor : float }
      (* load multiplies by [factor] from [at_ns] on *)
  | Spike of { at_ns : float; duration_ns : float; factor : float }
      (* [factor] inside the window, 1.0 outside *)
  | Ramp of { from_ns : float; to_ns : float; factor : float }
      (* linear 1.0 -> [factor] across the window, [factor] after *)

type surge = { base_mpps : float; shapes : surge_shape list }

let surge ~base_mpps shapes =
  if base_mpps <= 0.0 then invalid_arg "Fault.surge: base_mpps must be positive";
  List.iter
    (function
      | Step { factor; _ } | Spike { factor; _ } | Ramp { factor; _ } ->
          if factor <= 0.0 then invalid_arg "Fault.surge: factor must be positive")
    shapes;
  { base_mpps; shapes }

let shape_factor ~now_ns = function
  | Step { at_ns; factor } -> if now_ns >= at_ns then factor else 1.0
  | Spike { at_ns; duration_ns; factor } ->
      if now_ns >= at_ns && now_ns < at_ns +. duration_ns then factor else 1.0
  | Ramp { from_ns; to_ns; factor } ->
      if now_ns <= from_ns then 1.0
      else if now_ns >= to_ns then factor
      else 1.0 +. ((factor -. 1.0) *. (now_ns -. from_ns) /. (to_ns -. from_ns))

let surge_rate s ~now_ns =
  List.fold_left (fun r sh -> r *. shape_factor ~now_ns sh) s.base_mpps s.shapes

(* ------------------------------------------------------------------ *)
(* Link fault domain: lossy interconnect edges                          *)
(* ------------------------------------------------------------------ *)

(* Where [spec]s perturb cores, link specs perturb the *fabric between*
   cores: every inter-core edge of the deployment is a named link (the
   convention in [Nfp_infra.System] is "link:<destination core>" — the
   ingress port of the ring the edge lands on — plus
   "link:migrate:<core>" for migration transfer channels), and a link
   plan assigns each a set of fault processes. Determinism mirrors the
   core plans: every draw comes from a PRNG seeded by the plan seed
   folded with the link name, so adding a fault on one link never
   shifts the draws of another, and a [no_links] plan leaves the
   simulation byte-identical to one without any link machinery. *)
type link_fault =
  | Loss of { probability : float }  (* each transit vanishes with probability p *)
  | Duplicate of { probability : float; gap_ns : float }
      (* each transit is doubled with probability p; the copy lands
         [gap_ns] later *)
  | Jumble of { probability : float; span_ns : float }
      (* each transit is delayed by a uniform draw in (0, span_ns] with
         probability p — out-of-order arrival behind its successors *)
  | Burst of { p_enter : float; p_exit : float; drop : float }
      (* Gilbert–Elliott two-state loss: a good state with no loss and a
         bad state dropping each transit with probability [drop];
         transitions good->bad with [p_enter] and bad->good with
         [p_exit] are drawn per transit *)
  | Partition of { at_ns : float; duration_ns : float }
      (* hard outage: every transit inside the window is lost *)

type link_spec = { link : string; faults : link_fault list }

type link_plan = { link_seed : int64; link_specs : link_spec list }

let no_links = { link_seed = 1L; link_specs = [] }

let links_empty p = p.link_specs = []

let link_plan ?(seed = 1L) specs = { link_seed = seed; link_specs = specs }

let loss ~probability link = { link; faults = [ Loss { probability } ] }

let duplicate ?(gap_ns = 200.0) ~probability link =
  { link; faults = [ Duplicate { probability; gap_ns } ] }

let jumble ~probability ~span_ns link =
  { link; faults = [ Jumble { probability; span_ns } ] }

let burst ~p_enter ~p_exit ~drop link =
  { link; faults = [ Burst { p_enter; p_exit; drop } ] }

let partition ~at_ns ~duration_ns link =
  { link; faults = [ Partition { at_ns; duration_ns } ] }

(* A flapping link: [cycles] partition windows of [down_ns] each,
   separated by [up_ns] of health, starting at [at_ns]. *)
let flapping ~at_ns ~down_ns ~up_ns ~cycles link =
  {
    link;
    faults =
      List.init (max 1 cycles) (fun i ->
          Partition
            {
              at_ns = at_ns +. (float_of_int i *. (down_ns +. up_ns));
              duration_ns = down_ns;
            });
  }

(* Runtime state of one link: its matching faults, a private PRNG for
   the probabilistic draws, and the mutable Gilbert–Elliott state. *)
type link_state = {
  l_name : string;
  l_faults : link_fault list;
  l_prng : Nfp_algo.Prng.t;
  mutable l_bad : bool;  (* Gilbert–Elliott: currently in the bad state *)
}

let link_for p name =
  if p.link_specs = [] then None
  else
    match
      List.concat_map
        (fun s -> if matches ~pattern:s.link ~name then s.faults else [])
        p.link_specs
    with
    | [] -> None
    | faults ->
        Some
          {
            l_name = name;
            l_faults = faults;
            l_prng =
              Nfp_algo.Prng.create
                ~seed:
                  (seed_for { seed = p.link_seed; specs = [] } ("link:" ^ name));
            l_bad = false;
          }

(* Partition windows are pure functions of time — no PRNG draw — so
   checking one (health probes do, every interval) never perturbs the
   loss/duplication streams. *)
let link_partitioned st ~now_ns =
  List.exists
    (function
      | Partition { at_ns; duration_ns } ->
          now_ns >= at_ns && now_ns < at_ns +. duration_ns
      | Loss _ | Duplicate _ | Jumble _ | Burst _ -> false)
    st.l_faults

(* What the fabric does to one transit of the link, drawn at send time.
   Fault processes are evaluated in declaration order; the first loss
   wins (a dropped transit cannot also be duplicated), duplication wins
   over reordering, and a partition short-circuits everything without a
   draw. The Gilbert–Elliott state machine advances on every
   non-partitioned transit, whatever the other faults decide. *)
type transit =
  | T_pass
  | T_pass_dup of float  (* deliver now, and again [gap_ns] later *)
  | T_drop
  | T_delay of float  (* deliver [delay_ns] late, behind its successors *)

let transit st ~now_ns =
  if link_partitioned st ~now_ns then T_drop
  else begin
    let dropped = ref false and dup = ref nan and delay = ref nan in
    List.iter
      (fun f ->
        match f with
        | Partition _ -> ()
        | Burst { p_enter; p_exit; drop } ->
            (* One transition draw per transit, then a loss draw while
               bad: the classic per-slot Gilbert–Elliott walk. *)
            let t = Nfp_algo.Prng.float st.l_prng in
            if st.l_bad then begin
              if t < p_exit then st.l_bad <- false
            end
            else if t < p_enter then st.l_bad <- true;
            if st.l_bad && Nfp_algo.Prng.float st.l_prng < drop then dropped := true
        | Loss { probability } ->
            if Nfp_algo.Prng.float st.l_prng < probability then dropped := true
        | Duplicate { probability; gap_ns } ->
            if Nfp_algo.Prng.float st.l_prng < probability then dup := gap_ns
        | Jumble { probability; span_ns } ->
            if Nfp_algo.Prng.float st.l_prng < probability then
              delay := Float.max 1.0 (Nfp_algo.Prng.float st.l_prng *. span_ns))
      st.l_faults;
    if !dropped then T_drop
    else if not (Float.is_nan !dup) then T_pass_dup !dup
    else if not (Float.is_nan !delay) then T_delay !delay
    else T_pass
  end

let link_fault_count p =
  List.fold_left (fun acc (s : link_spec) -> acc + List.length s.faults) 0 p.link_specs

(* Seeded random spike train: [spikes] spikes with exponentially
   distributed start gaps across [horizon_ns], each lasting a uniform
   fraction of the mean gap, each multiplying the load by a uniform
   draw in [1, peak_factor]. The same seed always yields the same
   offered-load curve — surge plans are as replayable as crash plans. *)
let surge_storm ?(seed = 1L) ~base_mpps ~peak_factor ~horizon_ns ?(spikes = 4) () =
  if peak_factor < 1.0 then
    invalid_arg "Fault.surge_storm: peak_factor must be >= 1";
  if horizon_ns <= 0.0 then
    invalid_arg "Fault.surge_storm: horizon_ns must be positive";
  let prng =
    Nfp_algo.Prng.create ~seed:(seed_for { seed; specs = [] } "surge-storm")
  in
  let mean_gap = horizon_ns /. float_of_int (max 1 spikes) in
  let rec go t n acc =
    if n = 0 then List.rev acc
    else
      let t = t +. Nfp_algo.Prng.exponential prng ~mean:mean_gap in
      let duration_ns = (0.2 +. (0.6 *. Nfp_algo.Prng.float prng)) *. mean_gap in
      let factor = 1.0 +. ((peak_factor -. 1.0) *. Nfp_algo.Prng.float prng) in
      if t >= horizon_ns then List.rev acc
      else go t (n - 1) (Spike { at_ns = t; duration_ns; factor } :: acc)
  in
  surge ~base_mpps (go 0.0 (max 1 spikes) [])
