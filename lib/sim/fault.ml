(* Deterministic, seeded fault injection for the simulated dataplane.

   A fault plan describes, per core (by name, or by a trailing-'*'
   prefix pattern), a set of timed perturbations: a crash at time T, a
   hang over a window, a service-time slowdown from time T on, or a
   per-job transient drop probability. [Server.create ?fault] wires the
   events into a core without the NF code knowing; [Nfp_infra.System]
   resolves plans to cores by name, so any NF, merger, agent or
   classifier core can be perturbed from configuration alone.

   Determinism: every random draw a plan induces — drop decisions on a
   core, crash times of a [storm] — comes from a PRNG seeded by the
   plan seed (mixed with the core name for per-core streams), never
   from the simulation's own jitter streams. Two runs of the same plan
   are identical, and a run with [empty] is byte-identical to a run
   without any fault machinery at all (enforced by the differential
   test in test/test_fastpath.ml). *)

type event =
  | Crash of { at_ns : float }  (* the core stops; only an external revive restores it *)
  | Hang of { at_ns : float; duration_ns : float }  (* wedged for a window, then resumes *)
  | Slowdown of { at_ns : float; factor : float }  (* service times scale by [factor] from T on *)
  | Drop of { probability : float }  (* each job vanishes with probability p *)

type spec = { core : string; events : event list }

type plan = { seed : int64; specs : spec list }

let empty = { seed = 1L; specs = [] }

let is_empty p = p.specs = []

let plan ?(seed = 1L) specs = { seed; specs }

let crash ~at_ns core = { core; events = [ Crash { at_ns } ] }

let hang ~at_ns ~duration_ns core = { core; events = [ Hang { at_ns; duration_ns } ] }

let slowdown ~at_ns ~factor core = { core; events = [ Slowdown { at_ns; factor } ] }

let drop ~probability core = { core; events = [ Drop { probability } ] }

(* Exact name, or prefix followed by '*' ("mid1:*" perturbs every NF
   core of graph 1). *)
let matches ~pattern ~name =
  pattern = name
  || String.length pattern > 0
     && pattern.[String.length pattern - 1] = '*'
     &&
     let n = String.length pattern - 1 in
     String.length name >= n && String.sub name 0 n = String.sub pattern 0 n

(* Per-core PRNG stream: the plan seed folded with the core name, so
   adding a fault on one core never shifts the draws of another. *)
let seed_for p name =
  let h = ref (Nfp_algo.Hashing.mix64 p.seed) in
  String.iter
    (fun c ->
      h := Nfp_algo.Hashing.mix64 (Int64.add (Int64.mul !h 131L) (Int64.of_int (Char.code c))))
    name;
  !h

(* Everything a server needs to perturb itself: the matching events and
   a private PRNG for drop decisions. *)
type core = { events : event list; prng : Nfp_algo.Prng.t }

let for_core p name =
  if p.specs = [] then None
  else
    match
      List.concat_map
        (fun s -> if matches ~pattern:s.core ~name then s.events else [])
        p.specs
    with
    | [] -> None
    | events -> Some { events; prng = Nfp_algo.Prng.create ~seed:(seed_for p name) }

(* Crash storm: each listed core crashes at exponentially-distributed
   intervals (mean [mtbf_ns]) within [horizon_ns]. Paired with the
   system's Restart recovery this models a fleet of unreliable cores;
   the bench sweeps [mtbf_ns] to trace availability under increasing
   crash rates. Draw order is per-core, so the storm is stable under
   reordering of [cores]. *)
let storm ?(seed = 1L) ~cores ~mtbf_ns ~horizon_ns () =
  if mtbf_ns <= 0.0 then invalid_arg "Fault.storm: mtbf_ns must be positive";
  let specs =
    List.map
      (fun core ->
        let prng =
          Nfp_algo.Prng.create ~seed:(seed_for { seed; specs = [] } ("storm:" ^ core))
        in
        let rec go t acc =
          let t = t +. Nfp_algo.Prng.exponential prng ~mean:mtbf_ns in
          if t >= horizon_ns then List.rev acc else go t (Crash { at_ns = t } :: acc)
        in
        { core; events = go 0.0 [] })
      cores
  in
  { seed; specs }

let event_count p =
  List.fold_left (fun acc (s : spec) -> acc + List.length s.events) 0 p.specs
