(** A simulated CPU core running a poll-mode packet loop.

    Jobs arrive into a bounded input ring; the core drains them in
    breaths of up to [batch] (DPDK rx-burst style), through reused
    scratch arrays — the steady-state poll loop allocates nothing per
    job. Each job is charged its service time, the breath's first job
    at the full legacy rate and followers with [burst_saving_ns]
    subtracted (the per-breath dispatch work a burst pays once); at
    breath completion the core {e executes} each job once (the
    side-effecting semantics: NF processing, table bookkeeping) and
    then {e emits} its results. Emission is retryable:
    when a downstream ring is full the emit thunk returns [false] and
    the core stalls, retrying until space frees — shared-memory NFV's
    backpressure. A stalled core's own ring fills, propagating the
    stall upstream until the system's entry point starts refusing
    packets; that is where loss happens, as on the paper's testbed. *)

type 'job t

val create :
  engine:Engine.t ->
  name:string ->
  ring_capacity:int ->
  batch:int ->
  ?burst_saving_ns:float ->
  ?jitter:float * Nfp_algo.Prng.t ->
  ?retry_ns:float ->
  ?watermarks:int * int ->
  ?fault:Fault.core ->
  service_ns:('job -> float) ->
  execute:('job -> unit -> bool) ->
  unit ->
  'job t
(** [execute job] performs the job's semantics once and returns its
    emit thunk; the thunk is called until it returns [true] (it must
    remember any targets it already delivered to). [retry_ns] is the
    stall-poll interval (default 150 ns).

    [burst_saving_ns] (default 0.0) is the batch cost model: the
    nanoseconds of per-job dispatch work that the second and later jobs
    of one breath do not repay (ring-dequeue synchronization,
    run-to-completion dispatch). Followers are charged
    [max 0 (service_ns j - burst_saving_ns)], jittered as usual; the
    first job of every breath pays full price, so a [batch] of 1 — a
    breath of one job — is bit-for-bit the legacy per-packet charging
    regardless of this value.

    [watermarks] is [(high, low)]: arm the input ring's occupancy
    watermarks ({!Nfp_algo.Ring.set_watermarks}) so {!pressured}
    reports hysteretic backpressure. Without it the ring never reports
    pressure and the server is bit-for-bit the pre-watermark server.

    [fault] installs this core's share of a {!Fault.plan}: crashes and
    hangs stop the poll loop (in-flight work is reclaimed as
    casualties, see {!revive}), slowdowns scale service times, drops
    vanish individual jobs. With no [fault] the server is bit-for-bit
    identical to one built before the fault subsystem existed. *)

val offer : 'job t -> 'job -> bool
(** [false] when the input ring is full (caller decides: entry points
    drop, upstream cores stall). *)

val has_room : 'job t -> bool

val name : 'job t -> string

val processed : 'job t -> int

val rejected : 'job t -> int

val pressured : 'job t -> bool
(** Whether the input ring's occupancy watermark latch is on (always
    [false] unless [watermarks] was given at {!create}) — the hop-local
    backpressure signal the overload control plane propagates
    upstream. *)

val pressure_episodes : 'job t -> int
(** Lifetime count of pressure onsets on the input ring. *)

val busy_ns : 'job t -> float

val stalled_ns : 'job t -> float
(** Time spent blocked on downstream backpressure. *)

(** {2 Fault control surface}

    Used by the fault events installed at {!create} and by the
    [Nfp_infra.System] watchdog's recovery policies. *)

val kill : 'job t -> unit
(** Administrative stop: the core accepts no new batches; its in-flight
    batch and pending emissions are reclaimed as casualties held for
    the recovery policy (see {!revive}); the input ring keeps accepting
    jobs — a dead consumer does not unmap the shared-memory ring. Not
    counted as a crash. *)

val drain : 'job t -> 'job list
(** Remove and return everything queued in the ring, without processing
    it (reclaimed casualties are not included; see
    {!set_casualty_sink}). *)

val set_casualty_sink : 'job t -> ('job list -> (unit -> bool) list -> unit) -> unit
(** Route this core's casualties — unexecuted jobs and pending emission
    thunks — to [sink] instead of holding them for {!revive}. Casualties
    already held are handed to [sink] immediately, so a sink installed
    after a kill still receives the batch the kill reclaimed. Used by
    the Bypass recovery to reroute work around a removed core. *)

val casualty_counts : 'job t -> int * int
(** [(unexecuted jobs, pending emissions)] currently held. *)

val charge : 'job t -> float -> unit
(** Add [ns] of management work (e.g. a state checkpoint) to this core:
    it delays the completion of the core's next batch. *)

val revive : ?flush:bool -> 'job t -> int
(** Bring a down core back and restart its poll loop. [flush] (the
    default) discards the backlog that accumulated while it was dead
    plus any reclaimed casualties — lossy Restart semantics — returning
    the number of jobs lost (also added to {!flushed}). [flush:false]
    re-admits everything in processing order — pending emissions drain
    first, then the reclaimed batch, then the ring backlog — the
    lossless recovery path. *)

val is_down : 'job t -> bool

val is_busy : 'job t -> bool

(** {2 Migration quiesce surface}

    Used by the [Nfp_infra.System] elastic controller to freeze a
    replica while its per-flow state is snapshotted and transferred.
    A paused core is healthy — not down — it just starts no new
    breaths and pumps no orphans until {!unpause}; its ring keeps
    accepting jobs (upstream sees backpressure, never loss), and
    injected faults still land on it. *)

val pause : 'job t -> unit
(** Quiesce: reclaim the in-flight breath (unexecuted jobs → limbo,
    pending emissions → orphans, exactly as a crash would) but keep
    the core up, and start no new work until {!unpause}. Idempotent. *)

val unpause : 'job t -> unit
(** Release the freeze and restart the poll loop (orphaned emissions
    first, then limbo, then the ring — processing order preserved).
    A core that crashed while paused stays down until revived. *)

val is_paused : 'job t -> bool

val take_backlog : 'job t -> 'job list
(** Remove and return every unexecuted job — reclaimed limbo first
    (older), then the ring backlog, in order — leaving orphaned
    emissions in place (those jobs already executed here). The
    migration commit partitions this list between source and
    destination replicas. *)

val requeue : 'job t -> 'job list -> unit
(** Append jobs to the limbo worklist (served before the ring, after
    any older limbo). Does not kick the poll loop — callers hold the
    core paused while redistributing work. *)

val free_slots : 'job t -> int
(** Spare capacity of the input ring — the commit-time room check
    before a backlog handover. *)

val crashes : 'job t -> int
(** Injected [Crash] events that found the core up. *)

val fault_drops : 'job t -> int
(** Jobs vanished by an injected [Drop] fault. *)

val flushed : 'job t -> int
(** Jobs lost to lossy recoveries: in-flight batches, pending emissions
    and backlogs discarded by [revive ~flush:true]. Until a revive (or
    casualty sink) decides their fate, a dead core's casualties are
    held, not counted lost. *)

val queue_length : 'job t -> int
(** Ring occupancy plus reclaimed casualties still awaiting a recovery
    decision — everything the core would eventually have to process. *)
