type t = {
  ghz : float;
  ring_enqueue : int;
  ring_dequeue : int;
  classifier : int;
  classify_hit : int;
  classify_group : int;
  classify_rule : int;
  switch_forward : int;
  switch_per_hop : int;
  header_copy : int;
  copy_base : int;
  copy_per_byte : float;
  merge_delivery : int;
  merge_op : int;
  merger_agent : int;
  nf_runtime : int;
  rtc_call : int;
  wire_ns : float;
  batch : int;
  burst_saving : int;  (* per-job dispatch cycles a breath's followers skip *)
  restart_ns : float;  (* bringing a crashed NF container back (§7 fault model) *)
  log_append : int;  (* appending one packet reference to the input log *)
  checkpoint_cycles : int;  (* snapshotting an NF's state tables *)
  replay_cycles : int;  (* per-packet dispatch overhead of log replay *)
  ack_cycles : int;  (* assembling + processing one cumulative ack of a reliable channel *)
  retransmit_cycles : int;  (* re-emitting one buffered packet onto the fabric *)
}

let default =
  {
    ghz = 3.0;
    ring_enqueue = 24;
    ring_dequeue = 24;
    classifier = 170;
    classify_hit = 0;
    classify_group = 0;
    classify_rule = 0;
    switch_forward = 300;
    switch_per_hop = 12;
    header_copy = 90;
    copy_base = 40;
    copy_per_byte = 0.15;
    merge_delivery = 107;
    merge_op = 45;
    merger_agent = 12;
    nf_runtime = 30;
    rtc_call = 30;
    wire_ns = 4000.0;
    batch = 32;
    (* Batch cost model: jobs after the first of one poll-loop breath
       skip the ring-dequeue synchronization (the burst is one
       synchronized drain) and the per-packet run-to-completion
       dispatch — ring_dequeue + rtc_call. Charged by Server as a
       deduction from follower service times, so a batch of 1 is
       bit-identical to per-packet charging. *)
    burst_saving = 54;
    (* Container respawn plus ring re-attachment: ~400us, the order of a
       process fork+exec; VM restore would be milliseconds. *)
    restart_ns = 400_000.0;
    (* Lossless-recovery terms, charged only on deployments that arm
       checkpointing: one ring-slot write per logged packet, a
       copy-on-write table snapshot per checkpoint (~4us at 3 GHz), and
       a dequeue+dispatch per replayed packet on top of the NF's own
       processing cost. *)
    log_append = 40;
    checkpoint_cycles = 12_000;
    replay_cycles = 60;
    (* Reliable-channel terms, charged only when link channels are
       armed: a cumulative ack is one counter exchange piggybacked on a
       breath completion; a retransmission re-reads the tx buffer slot
       and re-enqueues — both modeled as added transit delay on the
       channel, never as core time (the fabric port does the work). *)
    ack_cycles = 60;
    retransmit_cycles = 120;
  }

(* VM rings (virtio/vhost) pay vmexit-amortized synchronization that
   container shared-memory rings avoid; the paper's §7 argues the same
   design carries over with NetVM-style VM delivery at higher per-hop
   cost. *)
let vm =
  {
    default with
    ring_enqueue = 90;
    ring_dequeue = 90;
    classifier = 260;
    header_copy = 140;
    copy_base = 80;
    copy_per_byte = 0.25;
    wire_ns = 6000.0;
    (* vm ring ops cost more, so a burst amortizes more: ring_dequeue
       (90) + rtc_call (30). *)
    burst_saving = 120;
  }

(* CT-lookup structure made visible in simulated time: a cache hit is
   one hash probe, a miss one probe per tuple-space group (or, for the
   reference scan, one compare per rule examined). The §6 reproduction
   experiments keep these at zero — the seed calibration charges
   classification as the flat [classifier] constant on the classifier
   core, and their results must not move — so the classify bench opts
   in with this profile. *)
let classified = { default with classify_hit = 35; classify_group = 95; classify_rule = 30 }

let ns_of_cycles t c = float_of_int c /. t.ghz

let cycles_of_ns t ns = int_of_float (ns *. t.ghz)
