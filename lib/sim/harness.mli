(** Measurement harness: drives a packet system the way the paper's
    DPDK generator drives the testbed (§6: "sends and receives traffic
    to measure the latency and the maximum throughput without packet
    loss"). *)

type classifier_counters = { hits : int; misses : int; evictions : int }
(** Microflow-cache counters of a system's flow classifier: packets
    resolved by the exact-match cache, packets that fell through to the
    tuple-space matcher, and cached flows displaced by new ones. *)

val no_classifier_counters : classifier_counters
(** All-zero counters — what systems without a flow classifier (the
    baselines) report. *)

type drops = {
  ingress_rejected : int;
      (** NIC-boundary ring full: packets lost at entry — the only
          ring-full events that are true losses *)
  internal_rejected : int;
      (** in-graph ring-full rejections: backpressure retry events
          (the upstream core stalls and re-offers), {e not} losses, so
          excluded from every ledger; growth here flags a saturated
          interior hop *)
  nf_dropped : int;  (** NF verdict Drop *)
  no_match : int;  (** no classifier rule matched *)
  fault_dropped : int;  (** injected Drop faults *)
  flush_lost : int;  (** in-flight work discarded by lossy restarts *)
  merge_timed_out : int;
      (** merges force-completed without a failed branch *)
  shed : int;  (** refused by the admission controller under pressure *)
  shed_by_class : (int * int) list;
      (** per-priority-class shed counts, sorted by class *)
  degraded : int;  (** packets that took a pressure-degraded NF path *)
}
(** The unified drop taxonomy: every way a packet can fail to reach the
    output, in one record (satellite of the overload control plane —
    previously these counters lived across Server, System and merger
    internals). *)

val no_drops : drops

val add_drops : drops -> drops -> drops
(** Field-wise sum; per-class lists merge by class. [no_drops] is its
    unit. *)

type link_stats = {
  link_drops : int;
      (** transits lost by the fabric — drops, burst loss, partitions —
          including lost retransmissions. Raw link losses sit in the run
          ledger's [in_flight] residual (the packet was offered and
          vanished inside the system, like an injected fault drop); with
          reliable channels armed they are transient and re-delivered. *)
  retransmits : int;
      (** re-emissions by reliable channels, RTO- or NACK-driven *)
  duplicates_suppressed : int;
      (** receiver-side dedup hits: fabric duplicates and spurious
          retransmissions consumed by the sequence filter *)
  reordered : int;
      (** transits the fabric delivered behind their successors *)
  partitions : int;
      (** links declared Down — [probe_timeout_k] consecutive probe
          timeouts, or a packet's retransmit budget exhausted *)
  reroutes : int;  (** packets detoured around a Down link *)
}
(** The link taxonomy: what the lossy fabric and the reliable channels
    did (satellite of the lossy-interconnect fault domain). *)

val no_link_stats : link_stats

val add_link_stats : link_stats -> link_stats -> link_stats
(** Field-wise sum; [no_link_stats] is its unit. *)

type core_health = {
  core : string;
  state : string;
      (** "up" | "down" | "restarting" | "bypassed" | "migrating"
          (quiesced as a migration source) | "standby" (elastic
          replica built but not yet activated) *)
  processed : int;
  queue : int;
}
(** One core's liveness as the system's watchdog sees it. *)

type health = {
  cores : core_health list;
  detections : int;  (** watchdog heartbeat-deadline detections *)
  crashes : int;  (** injected crash events that took a core down *)
  restarts : int;  (** cores brought back by the Restart/Degrade policies *)
  bypasses : int;  (** cores removed from the graph by the Bypass policy *)
  degrades : int;  (** graphs switched to their sequential fallback *)
  recoveries : int;  (** degraded graphs switched back to parallel *)
  merge_timeouts : int;  (** merges force-completed without a failed branch *)
  bypassed_packets : int;  (** packets that skipped a bypassed NF *)
  fault_drops : int;  (** jobs vanished by injected Drop faults *)
  flushed : int;  (** in-flight jobs lost to crashes and restart flushes *)
  checkpoints : int;  (** NF state snapshots taken (periodic + forced) *)
  forced_checkpoints : int;
      (** checkpoints forced early by input-log overflow — a full log is
          never silently truncated *)
  replayed : int;
      (** packets re-processed from an input log after a restore, with
          their output suppressed (the original emissions stand) *)
  deduped : int;
      (** duplicate emissions suppressed by the (pid, version) dedup
          filters, e.g. a replayed branch reaching a merge that a
          timeout already force-completed *)
  salvaged : int;
      (** in-flight jobs of a crashed core re-admitted by a lossless
          restart instead of being flushed *)
  drops : drops;
      (** the unified drop taxonomy (see {!drops}); subsumes
          [fault_drops], [flushed] and [merge_timeouts] above, which
          remain for compatibility *)
  pressure_episodes : int;
      (** ring watermark pressure onsets summed across all cores *)
  breaker_trips : int;
      (** circuit breaker abandoned Restart on a restart-looping core *)
  backoffs : int;  (** restarts delayed by exponential backoff *)
  degrade_switches : int;
      (** NFs toggled into a pressure-degrade mode (onsets) *)
  scale_outs : int;
      (** replicas activated at runtime by the elastic controller *)
  scale_ins : int;  (** replicas drained of their buckets and retired *)
  migrations : int;  (** bucket migrations that committed *)
  migration_aborts : int;
      (** migrations rolled back — crash at a party, destination full
          past the deadline — leaving the old steering map in force *)
  migrated_packets : int;
      (** frozen in-flight packets re-homed to the destination replica
          by committed migrations (exactly-once: the dedup layer drops
          any duplicate emission) *)
  migrating : int;
      (** gauge, not a counter: packets currently frozen at quiesced
          migration sources — the ledger's in-flight bucket during a
          flip ([offered = completed + drops + shed + in_flight]) *)
  links : link_stats;
      (** the link taxonomy of the lossy fabric (see {!link_stats});
          all-zero without a links config *)
  dedup_entries : int;
      (** gauge: live entries across the bounded (pid, version) dedup
          tables (delivery filter + per-merger completed-merge memory),
          pinned below their configured capacity by generational
          pruning however long a lossy run retransmits *)
}
(** Fault/recovery counters of a whole system plus per-core liveness. *)

val no_health : health
(** What systems without fault machinery (the baselines, the
    interpretive path) report. *)

val add_health : health -> health -> health
(** Combine the health of composed systems (chained cluster segments):
    core lists concatenate, counters add. [no_health] is its unit. *)

type system = {
  inject : pid:int64 -> Nfp_packet.Packet.t -> unit;
      (** deliver one packet to the system's NIC at the current time *)
  ring_drops : unit -> int;  (** packets lost to full rings *)
  nf_drops : unit -> int;  (** packets intentionally dropped by NFs *)
  unmatched : unit -> int;
      (** packets no classification-table entry claimed — distinct from
          NF drops: an unmatched packet never entered a service graph *)
  shed : unit -> int;
      (** packets refused by the admission controller under pressure —
          deliberate, priority-ordered refusals, distinct from
          [ring_drops] (the NIC ran out of buffer) *)
  classifier : unit -> classifier_counters;
      (** current classifier cache counters (see
          {!classifier_counters}) *)
  health : unit -> health;
      (** current watchdog view and fault/recovery counters (see
          {!health}); {!no_health} when the system has no fault
          machinery *)
}

type arrivals =
  | Uniform of float  (** constant spacing at this Mpps rate *)
  | Poisson of float  (** exponential interarrivals at this mean Mpps *)
  | Burst of float * int
      (** DPDK-generator style: bursts of [k] back-to-back packets at
          this mean Mpps — the shape a tx_burst loop emits *)
  | Surge of Fault.surge
      (** time-varying offered load: the plan's rate
          ({!Fault.surge_rate}) is re-sampled at every arrival, so
          steps, spikes and ramps reshape the interarrival gaps *)

type result = {
  latency : Nfp_algo.Stats.t;  (** per-packet ns, after warmup *)
  delivered : int;
      (** output events; a copied packet delivered on several branches
          counts once per delivery *)
  completed : int;
      (** distinct offered packets that reached the output at least
          once — the numerator of availability *)
  offered : int;
  ring_drops : int;
  nf_drops : int;
  unmatched : int;
  shed : int;  (** refused by the admission controller *)
  in_flight : int;
      (** offered but unaccounted at end of run: still queued, wedged
          at a merger, or lost to injected faults. [run] enforces
          [offered = completed + ring_drops + nf_drops + unmatched +
          shed + in_flight] with [in_flight >= 0] and fails loudly
          otherwise. *)
  health : health;  (** the system's fault/recovery counters at end of run *)
  duration_ns : float;
  achieved_mpps : float;
}

val run :
  make:(Engine.t -> output:(pid:int64 -> Nfp_packet.Packet.t -> unit) -> system) ->
  gen:(int -> Nfp_packet.Packet.t) ->
  arrivals:arrivals ->
  packets:int ->
  ?warmup:int ->
  ?seed:int64 ->
  ?stop:(system -> bool) ->
  unit ->
  result
(** Build a fresh system, inject [packets] packets ([gen i] makes the
    i-th), run to completion. Latency samples exclude the first
    [warmup] packets (default 10%). When [stop] is given it is polled
    periodically; once it returns [true] the simulation is truncated
    and the result reflects only the events executed so far — event
    order is unaffected either way. *)

val default_domains : unit -> int
(** Worker count used when [?domains] is omitted: the runtime's
    recommended domain count (capped at 8), or 1 inside a
    {!parallel_runs} worker so pools never nest. *)

val parallel_runs : ?domains:int -> (unit -> 'a) list -> 'a list
(** Evaluate independent simulation thunks on a pool of [domains]
    worker domains (default {!default_domains}) and return their
    results in input order. Each {!run} invocation is fully
    self-contained and seeded, so thunks built from pure generators
    give identical results at any worker count. Thunks must not share
    mutable state. *)

val max_lossless_mpps :
  make:(Engine.t -> output:(pid:int64 -> Nfp_packet.Packet.t -> unit) -> system) ->
  gen:(int -> Nfp_packet.Packet.t) ->
  packets:int ->
  ?lo:float ->
  hi:float ->
  ?iterations:int ->
  ?domains:int ->
  unit ->
  float
(** Binary-search the highest uniform offered rate with zero ring
    drops — the paper's "maximum throughput without packet loss". With
    more than one domain the bracketing probes of the next bisection
    levels run speculatively in parallel ({!parallel_runs}); the result
    is bit-identical to the sequential search for deterministic
    generators. *)
