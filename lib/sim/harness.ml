type classifier_counters = { hits : int; misses : int; evictions : int }

let no_classifier_counters = { hits = 0; misses = 0; evictions = 0 }

(* The unified drop taxonomy: every way a packet can fail to reach the
   output, in one record, so callers stop reconciling counters spread
   over Server / System / merger internals. [internal_rejected] is the
   odd one out — in-graph ring-full rejections are backpressure retry
   events, not losses (the upstream core stalls and re-offers), so it
   is excluded from every ledger; it is surfaced because a growing
   value is the signature of a saturated interior hop. *)
type drops = {
  ingress_rejected : int;  (* NIC-boundary ring full: packets lost at entry *)
  internal_rejected : int;  (* in-graph ring-full rejections: retries, not losses *)
  nf_dropped : int;  (* NF verdict Drop *)
  no_match : int;  (* no classifier rule matched *)
  fault_dropped : int;  (* injected Drop faults *)
  flush_lost : int;  (* in-flight work discarded by lossy restarts *)
  merge_timed_out : int;  (* merges force-completed without a failed branch *)
  shed : int;  (* refused by the admission controller under pressure *)
  shed_by_class : (int * int) list;  (* (priority class, shed count) *)
  degraded : int;  (* packets that took a pressure-degraded NF path *)
}

let no_drops =
  {
    ingress_rejected = 0;
    internal_rejected = 0;
    nf_dropped = 0;
    no_match = 0;
    fault_dropped = 0;
    flush_lost = 0;
    merge_timed_out = 0;
    shed = 0;
    shed_by_class = [];
    degraded = 0;
  }

(* Merge per-class shed counts: classes union, counts add, sorted by
   class so composition is order-insensitive. *)
let add_by_class a b =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (c, n) ->
      Hashtbl.replace tbl c (n + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    (a @ b);
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let add_drops a b =
  {
    ingress_rejected = a.ingress_rejected + b.ingress_rejected;
    internal_rejected = a.internal_rejected + b.internal_rejected;
    nf_dropped = a.nf_dropped + b.nf_dropped;
    no_match = a.no_match + b.no_match;
    fault_dropped = a.fault_dropped + b.fault_dropped;
    flush_lost = a.flush_lost + b.flush_lost;
    merge_timed_out = a.merge_timed_out + b.merge_timed_out;
    shed = a.shed + b.shed;
    shed_by_class = add_by_class a.shed_by_class b.shed_by_class;
    degraded = a.degraded + b.degraded;
  }

(* The link taxonomy: what the lossy fabric and the reliable channels
   did, in one record. Raw link losses live inside the run ledger's
   [in_flight] residual (like injected fault drops: the packet was
   offered and vanished inside the system); with reliable channels
   armed they are transient — the retransmit machinery re-delivers, so
   they never show up as end-of-run losses. *)
type link_stats = {
  link_drops : int;  (* transits lost by the fabric (incl. lost retransmissions) *)
  retransmits : int;  (* re-emissions by reliable channels (RTO or NACK) *)
  duplicates_suppressed : int;  (* receiver-side dedup hits (fabric dup or spurious rtx) *)
  reordered : int;  (* transits the fabric delivered behind their successors *)
  partitions : int;  (* links declared Down (probe timeouts or budget exhaustion) *)
  reroutes : int;  (* packets detoured around a Down link *)
}

let no_link_stats =
  {
    link_drops = 0;
    retransmits = 0;
    duplicates_suppressed = 0;
    reordered = 0;
    partitions = 0;
    reroutes = 0;
  }

let add_link_stats a b =
  {
    link_drops = a.link_drops + b.link_drops;
    retransmits = a.retransmits + b.retransmits;
    duplicates_suppressed = a.duplicates_suppressed + b.duplicates_suppressed;
    reordered = a.reordered + b.reordered;
    partitions = a.partitions + b.partitions;
    reroutes = a.reroutes + b.reroutes;
  }

(* Per-core liveness as the watchdog sees it, plus the fault/recovery
   counters of the whole system. Systems without fault machinery report
   [no_health]. *)
type core_health = {
  core : string;
  state : string;
      (* "up" | "down" | "restarting" | "bypassed" | "migrating" |
         "standby" *)
  processed : int;
  queue : int;
}

type health = {
  cores : core_health list;
  detections : int;  (* watchdog heartbeat-deadline detections *)
  crashes : int;  (* injected crash events that took a core down *)
  restarts : int;  (* cores brought back by the Restart/Degrade policies *)
  bypasses : int;  (* cores removed from the graph by the Bypass policy *)
  degrades : int;  (* graphs switched to their sequential fallback *)
  recoveries : int;  (* degraded graphs switched back to parallel *)
  merge_timeouts : int;  (* merges force-completed without a failed branch *)
  bypassed_packets : int;  (* packets that skipped a bypassed NF *)
  fault_drops : int;  (* jobs vanished by injected Drop faults *)
  flushed : int;  (* in-flight jobs lost to crashes and restart flushes *)
  checkpoints : int;  (* NF state snapshots taken (periodic + forced) *)
  forced_checkpoints : int;  (* checkpoints forced by input-log overflow *)
  replayed : int;  (* packets re-processed from an input log, output-suppressed *)
  deduped : int;  (* duplicate emissions suppressed after a replay *)
  salvaged : int;  (* in-flight jobs re-admitted instead of flushed *)
  (* Overload control plane (PR 8). *)
  drops : drops;  (* the unified drop taxonomy *)
  pressure_episodes : int;  (* ring watermark onsets across all cores *)
  breaker_trips : int;  (* circuit breaker gave up on a restart-looping core *)
  backoffs : int;  (* restarts delayed by exponential backoff *)
  degrade_switches : int;  (* NFs toggled into a pressure-degrade mode *)
  (* Elastic scale-out / live migration (PR 9). *)
  scale_outs : int;  (* replicas activated by the elastic controller *)
  scale_ins : int;  (* replicas drained and retired *)
  migrations : int;  (* committed bucket migrations *)
  migration_aborts : int;  (* migrations rolled back (crash or deadline) *)
  migrated_packets : int;  (* frozen packets re-homed by committed migrations *)
  migrating : int;  (* gauge: packets currently frozen at quiesced sources *)
  (* Lossy fabric / reliable channels (PR 10). *)
  links : link_stats;  (* the link taxonomy *)
  dedup_entries : int;
      (* gauge: live entries across the bounded (pid, version) dedup
         tables — pinned below their configured capacity however long a
         lossy run retransmits *)
}

let no_health =
  {
    cores = [];
    detections = 0;
    crashes = 0;
    restarts = 0;
    bypasses = 0;
    degrades = 0;
    recoveries = 0;
    merge_timeouts = 0;
    bypassed_packets = 0;
    fault_drops = 0;
    flushed = 0;
    checkpoints = 0;
    forced_checkpoints = 0;
    replayed = 0;
    deduped = 0;
    salvaged = 0;
    drops = no_drops;
    pressure_episodes = 0;
    breaker_trips = 0;
    backoffs = 0;
    degrade_switches = 0;
    scale_outs = 0;
    scale_ins = 0;
    migrations = 0;
    migration_aborts = 0;
    migrated_packets = 0;
    migrating = 0;
    links = no_link_stats;
    dedup_entries = 0;
  }

(* Combine the health of composed systems (e.g. chained cluster
   segments): core lists concatenate, counters add. *)
let add_health a b =
  {
    cores = a.cores @ b.cores;
    detections = a.detections + b.detections;
    crashes = a.crashes + b.crashes;
    restarts = a.restarts + b.restarts;
    bypasses = a.bypasses + b.bypasses;
    degrades = a.degrades + b.degrades;
    recoveries = a.recoveries + b.recoveries;
    merge_timeouts = a.merge_timeouts + b.merge_timeouts;
    bypassed_packets = a.bypassed_packets + b.bypassed_packets;
    fault_drops = a.fault_drops + b.fault_drops;
    flushed = a.flushed + b.flushed;
    checkpoints = a.checkpoints + b.checkpoints;
    forced_checkpoints = a.forced_checkpoints + b.forced_checkpoints;
    replayed = a.replayed + b.replayed;
    deduped = a.deduped + b.deduped;
    salvaged = a.salvaged + b.salvaged;
    drops = add_drops a.drops b.drops;
    pressure_episodes = a.pressure_episodes + b.pressure_episodes;
    breaker_trips = a.breaker_trips + b.breaker_trips;
    backoffs = a.backoffs + b.backoffs;
    degrade_switches = a.degrade_switches + b.degrade_switches;
    scale_outs = a.scale_outs + b.scale_outs;
    scale_ins = a.scale_ins + b.scale_ins;
    migrations = a.migrations + b.migrations;
    migration_aborts = a.migration_aborts + b.migration_aborts;
    migrated_packets = a.migrated_packets + b.migrated_packets;
    migrating = a.migrating + b.migrating;
    links = add_link_stats a.links b.links;
    dedup_entries = a.dedup_entries + b.dedup_entries;
  }

type system = {
  inject : pid:int64 -> Nfp_packet.Packet.t -> unit;
  ring_drops : unit -> int;
  nf_drops : unit -> int;
  unmatched : unit -> int;
  shed : unit -> int;
  classifier : unit -> classifier_counters;
  health : unit -> health;
}

type arrivals =
  | Uniform of float
  | Poisson of float
  | Burst of float * int
  | Surge of Fault.surge

type result = {
  latency : Nfp_algo.Stats.t;
  delivered : int;  (* output events; counts duplicate deliveries of copies *)
  completed : int;  (* distinct packets that reached the output at least once *)
  offered : int;
  ring_drops : int;
  nf_drops : int;
  unmatched : int;
  shed : int;  (* refused by the admission controller *)
  in_flight : int;  (* offered but unaccounted at end of run: still queued,
                       wedged at a merger, or lost to injected faults *)
  health : health;
  duration_ns : float;
  achieved_mpps : float;
}

let run ~make ~gen ~arrivals ~packets ?warmup ?(seed = 42L) ?stop () =
  let warmup = match warmup with Some w -> w | None -> packets / 10 in
  let engine = Engine.create () in
  let latency = Nfp_algo.Stats.create () in
  (* Injection timestamps indexed by pid (pids here are 0..packets-1);
     NaN marks "no sample pending" so duplicate deliveries of a copied
     packet count as delivered but sample latency only once. *)
  let ingress = Array.make (max packets 1) Float.nan in
  let delivered = ref 0 and completed = ref 0 in
  let output ~pid _pkt =
    incr delivered;
    let i = Int64.to_int pid in
    if i >= 0 && i < packets && not (Float.is_nan ingress.(i)) then begin
      incr completed;
      if i >= warmup then Nfp_algo.Stats.add latency (Engine.now engine -. ingress.(i));
      ingress.(i) <- Float.nan
    end
  in
  let system = make engine ~output in
  let prng = Nfp_algo.Prng.create ~seed in
  let interval_ns i =
    match arrivals with
    | Uniform mpps ->
        ignore i;
        1000.0 /. mpps
    | Poisson mpps -> Nfp_algo.Prng.exponential prng ~mean:(1000.0 /. mpps)
    | Burst (mpps, k) ->
        (* k packets back to back, then a gap keeping the mean rate. *)
        if (i + 1) mod k = 0 then float_of_int k *. 1000.0 /. mpps else 0.0
    | Surge s ->
        ignore i;
        (* The plan's rate is re-sampled at every arrival, so steps,
           spikes and ramps reshape the interarrival gaps as simulated
           time advances. *)
        1000.0 /. Fault.surge_rate s ~now_ns:(Engine.now engine)
  in
  let rec arrive i =
    if i < packets then begin
      let pid = Int64.of_int i in
      ingress.(i) <- Engine.now engine;
      system.inject ~pid (gen i);
      Engine.schedule engine ~delay:(interval_ns i) (fun () -> arrive (i + 1))
    end
  in
  Engine.schedule engine ~delay:0.0 (fun () -> arrive 0);
  (match stop with
  | None -> Engine.run engine
  | Some f ->
      (* Slicing changes nothing about event order, so a run that is not
         stopped is identical to an unsliced one; a stopped run simply
         truncates — callers that only test a predicate (e.g. "did any
         ring drop?") skip the rest of the simulation. *)
      let rec slices () =
        Engine.run engine ~max_events:4096;
        if Engine.pending engine > 0 && not (f system) then slices ()
      in
      slices ());
  let duration = Engine.now engine in
  let ring_drops = system.ring_drops () in
  let nf_drops = system.nf_drops () in
  let unmatched = system.unmatched () in
  let shed = system.shed () in
  (* Accounting must close: every offered packet is either completed
     (first delivery), counted by exactly one drop counter, shed by the
     admission controller, or still in the system / lost to faults
     (in_flight). A negative residual means a packet was double-counted
     — a dataplane bug, so fail loudly. *)
  let in_flight = packets - !completed - ring_drops - nf_drops - unmatched - shed in
  if in_flight < 0 then
    failwith
      (Printf.sprintf
         "Harness.run: accounting does not close: offered %d < completed %d + \
          ring_drops %d + nf_drops %d + unmatched %d + shed %d"
         packets !completed ring_drops nf_drops unmatched shed);
  {
    latency;
    delivered = !delivered;
    completed = !completed;
    offered = packets;
    ring_drops;
    nf_drops;
    unmatched;
    shed;
    in_flight;
    health = system.health ();
    duration_ns = duration;
    achieved_mpps =
      (if duration > 0.0 then float_of_int !delivered /. duration *. 1000.0 else 0.0);
  }

(* ------------------------------------------------------------------ *)
(* Domain pool: independent simulations in parallel                    *)
(* ------------------------------------------------------------------ *)

(* Workers of a pool must not spawn nested pools of their own (that
   would oversubscribe the machine), so pool membership is recorded in
   domain-local storage and consulted by [default_domains]. *)
let in_pool : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_domains () =
  if Domain.DLS.get in_pool then 1
  else max 1 (min 8 (Domain.recommended_domain_count ()))

let parallel_runs ?domains thunks =
  let jobs = Array.of_list thunks in
  let n = Array.length jobs in
  let workers =
    let d = match domains with Some d -> max 1 d | None -> default_domains () in
    min d n
  in
  if workers <= 1 then List.map (fun f -> f ()) thunks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (jobs.(i) ());
        drain ()
      end
    in
    let worker () =
      let saved = Domain.DLS.get in_pool in
      Domain.DLS.set in_pool true;
      Fun.protect ~finally:(fun () -> Domain.DLS.set in_pool saved) drain
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    Fun.protect ~finally:(fun () -> List.iter Domain.join spawned) worker;
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> failwith "Harness.parallel_runs: worker died before its job")
         results)
  end

let max_lossless_mpps ~make ~gen ~packets ?(lo = 0.01) ~hi ?(iterations = 12) ?domains
    () =
  let lossless rate =
    (* Only the existence of a drop matters, so the probe aborts at the
       first one instead of simulating the remaining packets. *)
    let r =
      run ~make ~gen ~arrivals:(Uniform rate) ~packets ~warmup:0
        ~stop:(fun s -> s.ring_drops () > 0)
        ()
    in
    r.ring_drops = 0
  in
  let workers = match domains with Some d -> max 1 d | None -> default_domains () in
  if workers <= 1 then begin
    if lossless hi then hi
    else begin
      let lo = ref lo and hi = ref hi in
      for _ = 1 to iterations do
        let mid = (!lo +. !hi) /. 2.0 in
        if lossless mid then lo := mid else hi := mid
      done;
      !lo
    end
  end
  else begin
    (* Speculative bisection: probe every candidate midpoint of the next
       [depth] bisection levels in one parallel batch, then replay the
       sequential decision walk against the probed table. Midpoints are
       recomputed with the identical float expression, so the result is
       bit-identical to the sequential search at any worker count. *)
    let levels = if workers >= 7 then 3 else if workers >= 3 then 2 else 1 in
    let rec candidates lo hi depth acc =
      if depth = 0 then acc
      else
        let mid = (lo +. hi) /. 2.0 in
        candidates mid hi (depth - 1) (candidates lo mid (depth - 1) (mid :: acc))
    in
    let probe rates =
      parallel_runs ~domains:workers (List.map (fun r () -> (r, lossless r)) rates)
    in
    let walk table lo hi depth =
      let rec go lo hi k =
        if k = 0 then (lo, hi)
        else
          let mid = (lo +. hi) /. 2.0 in
          if List.assoc mid table then go mid hi (k - 1) else go lo mid (k - 1)
      in
      go lo hi depth
    in
    let rec rounds lo hi remaining =
      if remaining <= 0 then lo
      else begin
        let depth = min levels remaining in
        let table = probe (candidates lo hi depth []) in
        let lo, hi = walk table lo hi depth in
        rounds lo hi (remaining - depth)
      end
    in
    (* The bracketing [hi] probe rides along with the first batch. *)
    let depth0 = min levels iterations in
    let table0 = probe (hi :: candidates lo hi depth0 []) in
    if List.assoc hi table0 then hi
    else if iterations <= 0 then lo
    else begin
      let lo, hi = walk table0 lo hi depth0 in
      rounds lo hi (iterations - depth0)
    end
  end
