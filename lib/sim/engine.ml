(* The clock lives in a single-field all-float record: OCaml stores
   such records flat, so advancing time is a plain store. As a mutable
   float field of the mixed record below it would box a fresh float on
   every event — the simulator's single hottest write. *)
type clock = { mutable ns : float }

type t = {
  queue : (unit -> unit) Nfp_algo.Heap.Timed.t;
  clock : clock;
  mutable next_seq : int;
}

let create () = { queue = Nfp_algo.Heap.Timed.create (); clock = { ns = 0.0 }; next_seq = 0 }

let now t = t.clock.ns

let schedule_at t time action =
  if time < t.clock.ns then invalid_arg "Engine.schedule_at: time is in the past";
  Nfp_algo.Heap.Timed.push t.queue ~time ~seq:t.next_seq action;
  t.next_seq <- t.next_seq + 1

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.clock.ns +. delay) action

let run ?until ?(max_events = max_int) t =
  let deadline = match until with Some u -> u | None -> infinity in
  let queue = t.queue in
  let clock = t.clock in
  let rec go remaining =
    if remaining > 0 && not (Nfp_algo.Heap.Timed.is_empty queue) then begin
      let time = Nfp_algo.Heap.Timed.min_time queue in
      if time > deadline then clock.ns <- deadline
      else begin
        let action = Nfp_algo.Heap.Timed.pop_exn queue in
        clock.ns <- time;
        action ();
        go (remaining - 1)
      end
    end
  in
  go max_events

let pending t = Nfp_algo.Heap.Timed.length t.queue
