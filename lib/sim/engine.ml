type t = {
  queue : (unit -> unit) Nfp_algo.Heap.Timed.t;
  mutable clock : float;
  mutable next_seq : int;
}

let create () = { queue = Nfp_algo.Heap.Timed.create (); clock = 0.0; next_seq = 0 }

let now t = t.clock

let schedule_at t time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  Nfp_algo.Heap.Timed.push t.queue ~time ~seq:t.next_seq action;
  t.next_seq <- t.next_seq + 1

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.clock +. delay) action

let run ?until ?(max_events = max_int) t =
  let deadline = match until with Some u -> u | None -> infinity in
  let queue = t.queue in
  let rec go remaining =
    if remaining > 0 && not (Nfp_algo.Heap.Timed.is_empty queue) then begin
      let time = Nfp_algo.Heap.Timed.min_time queue in
      if time > deadline then t.clock <- deadline
      else begin
        let action = Nfp_algo.Heap.Timed.pop_exn queue in
        t.clock <- time;
        action ();
        go (remaining - 1)
      end
    end
  in
  go max_events

let pending t = Nfp_algo.Heap.Timed.length t.queue
