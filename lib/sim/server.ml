type 'job t = {
  engine : Engine.t;
  name : string;
  ring : 'job Nfp_algo.Ring.t;
  batch : int;
  jitter : (float * Nfp_algo.Prng.t) option;
  retry_ns : float;
  service_ns : 'job -> float;
  execute : 'job -> unit -> bool;
  mutable busy : bool;
  mutable processed : int;
  mutable busy_ns : float;
  mutable stalled_ns : float;
  (* Fault state (Fault.core). The defaults are exact identities —
     [down] never set, [slow] of 1.0, no drop PRNG — so an unfaulted
     server behaves bit-for-bit as before the fault subsystem existed. *)
  mutable down : bool;
  mutable slow : float;
  mutable drop_p : float;
  mutable fault_prng : Nfp_algo.Prng.t option;
  (* [epoch] invalidates in-flight batches: a crash or hang bumps it,
     and a batch-completion event whose captured epoch no longer
     matches abandons its jobs (counted in [flushed]) instead of
     executing them on a core that has since died. *)
  mutable epoch : int;
  mutable crashes : int;
  mutable fault_drops : int;
  mutable flushed : int;
}

let jittered t base =
  let base =
    match t.jitter with
    | None -> base
    | Some (frac, prng) ->
        let f = 1.0 +. (frac *. ((2.0 *. Nfp_algo.Prng.float prng) -. 1.0)) in
        base *. f
  in
  (* *. 1.0 is bitwise identity, so the multiply is free of behavioral
     change when no slowdown fault is installed. *)
  base *. t.slow

let always () = true

(* A drop fault makes the job vanish between dequeue and execution (a
   corrupted ring slot); the server still "processes" it — progress
   heartbeats keep beating, only the work is lost. *)
let run_job t job =
  match t.fault_prng with
  | Some prng when t.drop_p > 0.0 && Nfp_algo.Prng.float prng < t.drop_p ->
      t.fault_drops <- t.fault_drops + 1;
      always
  | _ -> t.execute job

(* Emit the batch's thunks in order; stall and retry on backpressure. *)
let rec flush t = function
  | [] ->
      t.busy <- false;
      run_batch t
  | thunk :: rest ->
      if thunk () then begin
        t.processed <- t.processed + 1;
        flush t rest
      end
      else begin
        t.stalled_ns <- t.stalled_ns +. t.retry_ns;
        let epoch = t.epoch in
        Engine.schedule t.engine ~delay:t.retry_ns (fun () ->
            if t.epoch <> epoch then t.flushed <- t.flushed + List.length (thunk :: rest)
            else flush t (thunk :: rest))
      end

(* Pull up to [batch] jobs, work through them back to back, execute and
   flush at batch completion — the rx_burst/tx_burst pattern of a DPDK
   poll loop. *)
and run_batch t =
  if (not t.busy) && (not t.down) && not (Nfp_algo.Ring.is_empty t.ring) then begin
    t.busy <- true;
    let epoch = t.epoch in
    let j0 = Nfp_algo.Ring.dequeue_exn t.ring in
    if t.batch = 1 || Nfp_algo.Ring.is_empty t.ring then begin
      (* Single-job burst — the common case under non-saturating load;
         skips the list churn of the general path. *)
      let finish = jittered t (t.service_ns j0) in
      t.busy_ns <- t.busy_ns +. finish;
      Engine.schedule t.engine ~delay:finish (fun () ->
          if t.epoch <> epoch then t.flushed <- t.flushed + 1
          else flush t [ run_job t j0 ])
    end
    else begin
      let rec take acc n =
        if n = 0 || Nfp_algo.Ring.is_empty t.ring then List.rev acc
        else take (Nfp_algo.Ring.dequeue_exn t.ring :: acc) (n - 1)
      in
      let jobs = j0 :: take [] (t.batch - 1) in
      let finish =
        List.fold_left
          (fun offset job -> offset +. jittered t (t.service_ns job))
          0.0 jobs
      in
      t.busy_ns <- t.busy_ns +. finish;
      Engine.schedule t.engine ~delay:finish (fun () ->
          if t.epoch <> epoch then t.flushed <- t.flushed + List.length jobs
          else
            let thunks = List.map (run_job t) jobs in
            flush t thunks)
    end
  end

(* The core stops: no new batches, and the in-flight batch (if any) is
   lost when its completion event fires against a stale epoch. *)
let interrupt t =
  if not t.down then begin
    t.down <- true;
    t.epoch <- t.epoch + 1
  end

let resume t =
  if t.down then begin
    t.down <- false;
    t.busy <- false;
    run_batch t
  end

let create ~engine ~name ~ring_capacity ~batch ?jitter ?(retry_ns = 150.0) ?fault
    ~service_ns ~execute () =
  let t =
    {
      engine;
      name;
      ring = Nfp_algo.Ring.create ~capacity:ring_capacity;
      batch = max 1 batch;
      jitter;
      retry_ns;
      service_ns;
      execute;
      busy = false;
      processed = 0;
      busy_ns = 0.0;
      stalled_ns = 0.0;
      down = false;
      slow = 1.0;
      drop_p = 0.0;
      fault_prng = None;
      epoch = 0;
      crashes = 0;
      fault_drops = 0;
      flushed = 0;
    }
  in
  (match fault with
  | None -> ()
  | Some (f : Fault.core) ->
      t.fault_prng <- Some f.prng;
      List.iter
        (function
          | Fault.Crash { at_ns } ->
              Engine.schedule engine ~delay:at_ns (fun () ->
                  if not t.down then begin
                    t.crashes <- t.crashes + 1;
                    interrupt t
                  end)
          | Fault.Hang { at_ns; duration_ns } ->
              Engine.schedule engine ~delay:at_ns (fun () -> interrupt t);
              Engine.schedule engine ~delay:(at_ns +. duration_ns) (fun () -> resume t)
          | Fault.Slowdown { at_ns; factor } ->
              Engine.schedule engine ~delay:at_ns (fun () -> t.slow <- t.slow *. factor)
          | Fault.Drop { probability } -> t.drop_p <- min 1.0 (t.drop_p +. probability))
        f.events);
  t

let offer t job =
  if Nfp_algo.Ring.enqueue t.ring job then begin
    if not t.busy then run_batch t;
    true
  end
  else false

let has_room t = not (Nfp_algo.Ring.is_full t.ring)

(* ------------------------------------------------------------------ *)
(* Fault control surface (used by the System watchdog)                 *)
(* ------------------------------------------------------------------ *)

(* Administrative stop: same mechanics as a crash, but not counted as
   one (used when the watchdog bypasses a core out of the graph). *)
let kill t = interrupt t

(* Remove and return everything queued, without processing it. *)
let drain t =
  let rec go acc =
    if Nfp_algo.Ring.is_empty t.ring then List.rev acc
    else go (Nfp_algo.Ring.dequeue_exn t.ring :: acc)
  in
  go []

(* Bring a down core back. [flush] discards the ring contents that
   accumulated while it was dead (counted in [flushed], returned), the
   Restart recovery semantics; [flush:false] resumes with the backlog
   intact (a hang that was externally cleared). *)
let revive ?(flush = true) t =
  let lost =
    if flush then begin
      let n = Nfp_algo.Ring.length t.ring in
      ignore (drain t);
      t.flushed <- t.flushed + n;
      n
    end
    else 0
  in
  resume t;
  lost

let name t = t.name

let processed t = t.processed

let rejected t = Nfp_algo.Ring.rejected_total t.ring

let busy_ns t = t.busy_ns

let stalled_ns t = t.stalled_ns

let queue_length t = Nfp_algo.Ring.length t.ring

let is_down t = t.down

let is_busy t = t.busy

let crashes t = t.crashes

let fault_drops t = t.fault_drops

let flushed t = t.flushed
