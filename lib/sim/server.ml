type 'job t = {
  engine : Engine.t;
  name : string;
  ring : 'job Nfp_algo.Ring.t;
  batch : int;
  jitter : (float * Nfp_algo.Prng.t) option;
  retry_ns : float;
  service_ns : 'job -> float;
  execute : 'job -> unit -> bool;
  mutable busy : bool;
  mutable processed : int;
  mutable busy_ns : float;
  mutable stalled_ns : float;
  (* Fault state (Fault.core). The defaults are exact identities —
     [down] never set, [slow] of 1.0, no drop PRNG — so an unfaulted
     server behaves bit-for-bit as before the fault subsystem existed. *)
  mutable down : bool;
  mutable slow : float;
  mutable drop_p : float;
  mutable fault_prng : Nfp_algo.Prng.t option;
  (* [epoch] invalidates in-flight batches: a crash or hang bumps it,
     and a batch-completion or flush-retry event whose captured epoch no
     longer matches becomes a no-op — [interrupt] has already reclaimed
     the casualties synchronously (see below). *)
  mutable epoch : int;
  mutable crashes : int;
  mutable fault_drops : int;
  mutable flushed : int;
  (* Casualty bookkeeping. [inflight] mirrors the batch the core is
     currently serving; [pending_emits] mirrors the emission thunks a
     flush loop still owes downstream. [interrupt] moves the former into
     [limbo] (jobs dequeued but never executed) and the latter into
     [orphans] (jobs executed whose emissions are pending). The ring,
     [limbo] and [orphans] model state that survives the crash of the
     core's NF process — they live in the runtime's shared memory — so
     a recovery policy chooses what to do with them: [revive ~flush:true]
     discards the lot into [flushed] (lossy Restart), [revive
     ~flush:false] re-admits everything in order (lossless recovery),
     and a [casualty_sink] reroutes them as they fall (Bypass). *)
  mutable inflight : 'job list;
  mutable pending_emits : (unit -> bool) list;
  mutable limbo : 'job list;
  mutable orphans : (unit -> bool) list;
  mutable casualty_sink : ('job list -> (unit -> bool) list -> unit) option;
  mutable pump_armed : bool;
  (* Management work (e.g. a state checkpoint) charged to this core: the
     accumulated time is added to the next batch's completion, then
     reset. 0.0 is a bitwise identity on the service-time sums. *)
  mutable extra_ns : float;
}

let jittered t base =
  let base =
    match t.jitter with
    | None -> base
    | Some (frac, prng) ->
        let f = 1.0 +. (frac *. ((2.0 *. Nfp_algo.Prng.float prng) -. 1.0)) in
        base *. f
  in
  (* *. 1.0 is bitwise identity, so the multiply is free of behavioral
     change when no slowdown fault is installed. *)
  base *. t.slow

let always () = true

(* A drop fault makes the job vanish between dequeue and execution (a
   corrupted ring slot); the server still "processes" it — progress
   heartbeats keep beating, only the work is lost. *)
let run_job t job =
  match t.fault_prng with
  | Some prng when t.drop_p > 0.0 && Nfp_algo.Prng.float prng < t.drop_p ->
      t.fault_drops <- t.fault_drops + 1;
      always
  | _ -> t.execute job

let stash t jobs emits =
  if jobs <> [] || emits <> [] then
    match t.casualty_sink with
    | Some sink -> sink jobs emits
    | None ->
        t.limbo <- t.limbo @ jobs;
        t.orphans <- t.orphans @ emits

(* Take a job for the next batch: reclaimed limbo first (those were
   dequeued before anything now in the ring), then the ring. *)
let next_job t =
  match t.limbo with
  | j :: rest ->
      t.limbo <- rest;
      Some j
  | [] ->
      if Nfp_algo.Ring.is_empty t.ring then None
      else Some (Nfp_algo.Ring.dequeue_exn t.ring)

let has_work t = t.limbo <> [] || not (Nfp_algo.Ring.is_empty t.ring)

(* Emit the batch's thunks in order; stall and retry on backpressure.
   [pending_emits] shadows the worklist so an interrupt can reclaim it. *)
let rec flush t thunks =
  match thunks with
  | [] ->
      t.pending_emits <- [];
      t.busy <- false;
      run_batch t
  | thunk :: rest ->
      t.pending_emits <- thunks;
      if thunk () then begin
        t.processed <- t.processed + 1;
        flush t rest
      end
      else begin
        t.stalled_ns <- t.stalled_ns +. t.retry_ns;
        let epoch = t.epoch in
        Engine.schedule t.engine ~delay:t.retry_ns (fun () ->
            if t.epoch = epoch then flush t thunks)
      end

(* Work reclaimed as orphans is emitted before any new batch runs, so
   downstream still sees this core's packets in processing order. *)
and pump_orphans t =
  if not t.down then begin
    match t.orphans with
    | [] -> run_batch t
    | thunk :: rest ->
        if thunk () then begin
          t.processed <- t.processed + 1;
          t.orphans <- rest;
          pump_orphans t
        end
        else begin
          t.stalled_ns <- t.stalled_ns +. t.retry_ns;
          if not t.pump_armed then begin
            t.pump_armed <- true;
            Engine.schedule t.engine ~delay:t.retry_ns (fun () ->
                t.pump_armed <- false;
                pump_orphans t)
          end
        end
  end

(* Pull up to [batch] jobs, work through them back to back, execute and
   flush at batch completion — the rx_burst/tx_burst pattern of a DPDK
   poll loop. *)
and run_batch t =
  if (not t.busy) && (not t.down) && t.orphans = [] && has_work t then begin
    t.busy <- true;
    let epoch = t.epoch in
    let extra = t.extra_ns in
    t.extra_ns <- 0.0;
    let j0 = match next_job t with Some j -> j | None -> assert false in
    if t.batch = 1 || not (has_work t) then begin
      (* Single-job burst — the common case under non-saturating load;
         skips the list churn of the general path. *)
      t.inflight <- [ j0 ];
      let finish = extra +. jittered t (t.service_ns j0) in
      t.busy_ns <- t.busy_ns +. finish;
      Engine.schedule t.engine ~delay:finish (fun () ->
          if t.epoch = epoch then begin
            t.inflight <- [];
            flush t [ run_job t j0 ]
          end)
    end
    else begin
      let rec take acc n =
        if n = 0 then List.rev acc
        else
          match next_job t with
          | None -> List.rev acc
          | Some j -> take (j :: acc) (n - 1)
      in
      let jobs = j0 :: take [] (t.batch - 1) in
      t.inflight <- jobs;
      let finish =
        List.fold_left
          (fun offset job -> offset +. jittered t (t.service_ns job))
          extra jobs
      in
      t.busy_ns <- t.busy_ns +. finish;
      Engine.schedule t.engine ~delay:finish (fun () ->
          if t.epoch = epoch then begin
            t.inflight <- [];
            let thunks = List.map (run_job t) jobs in
            flush t thunks
          end)
    end
  end

(* The core stops. The in-flight batch and any pending emissions are
   reclaimed synchronously — their completion events, fired against a
   stale epoch, become no-ops — so no work is silently dropped between
   the crash and whatever recovery policy runs later. *)
let interrupt t =
  if not t.down then begin
    t.down <- true;
    t.epoch <- t.epoch + 1;
    let jobs = t.inflight and emits = t.pending_emits in
    t.inflight <- [];
    t.pending_emits <- [];
    stash t jobs emits
  end

let resume t =
  if t.down then begin
    t.down <- false;
    t.busy <- false;
    pump_orphans t
  end

let create ~engine ~name ~ring_capacity ~batch ?jitter ?(retry_ns = 150.0) ?fault
    ~service_ns ~execute () =
  let t =
    {
      engine;
      name;
      ring = Nfp_algo.Ring.create ~capacity:ring_capacity;
      batch = max 1 batch;
      jitter;
      retry_ns;
      service_ns;
      execute;
      busy = false;
      processed = 0;
      busy_ns = 0.0;
      stalled_ns = 0.0;
      down = false;
      slow = 1.0;
      drop_p = 0.0;
      fault_prng = None;
      epoch = 0;
      crashes = 0;
      fault_drops = 0;
      flushed = 0;
      inflight = [];
      pending_emits = [];
      limbo = [];
      orphans = [];
      casualty_sink = None;
      pump_armed = false;
      extra_ns = 0.0;
    }
  in
  (match fault with
  | None -> ()
  | Some (f : Fault.core) ->
      t.fault_prng <- Some f.prng;
      List.iter
        (function
          | Fault.Crash { at_ns } ->
              Engine.schedule engine ~delay:at_ns (fun () ->
                  if not t.down then begin
                    t.crashes <- t.crashes + 1;
                    interrupt t
                  end)
          | Fault.Hang { at_ns; duration_ns } ->
              Engine.schedule engine ~delay:at_ns (fun () -> interrupt t);
              Engine.schedule engine ~delay:(at_ns +. duration_ns) (fun () -> resume t)
          | Fault.Slowdown { at_ns; factor } ->
              Engine.schedule engine ~delay:at_ns (fun () -> t.slow <- t.slow *. factor)
          | Fault.Drop { probability } -> t.drop_p <- min 1.0 (t.drop_p +. probability))
        f.events);
  t

let offer t job =
  if Nfp_algo.Ring.enqueue t.ring job then begin
    if not t.busy then run_batch t;
    true
  end
  else false

let has_room t = not (Nfp_algo.Ring.is_full t.ring)

(* ------------------------------------------------------------------ *)
(* Fault control surface (used by the System watchdog)                 *)
(* ------------------------------------------------------------------ *)

(* Administrative stop: same mechanics as a crash, but not counted as
   one (used when the watchdog bypasses a core out of the graph). *)
let kill t = interrupt t

(* Remove and return everything queued, without processing it. *)
let drain t =
  let rec go acc =
    if Nfp_algo.Ring.is_empty t.ring then List.rev acc
    else go (Nfp_algo.Ring.dequeue_exn t.ring :: acc)
  in
  go []

(* Route casualties to [sink] instead of stashing them — and hand over
   whatever already stashed, so a sink installed after the kill still
   sees the in-flight batch the kill reclaimed. *)
let set_casualty_sink t sink =
  t.casualty_sink <- Some sink;
  let jobs = t.limbo and emits = t.orphans in
  t.limbo <- [];
  t.orphans <- [];
  if jobs <> [] || emits <> [] then sink jobs emits

let casualty_counts t = (List.length t.limbo, List.length t.orphans)

let charge t ns = t.extra_ns <- t.extra_ns +. ns

(* Bring a down core back. [flush] discards everything the crash left
   behind — the backlog that accumulated in the ring plus the reclaimed
   in-flight jobs and pending emissions (counted in [flushed],
   returned): lossy Restart semantics. [flush:false] re-admits all of
   it in order — orphaned emissions drain first, then the reclaimed
   batch, then the ring backlog — the lossless recovery path. *)
let revive ?(flush = true) t =
  let lost =
    if flush then begin
      let n =
        Nfp_algo.Ring.length t.ring + List.length t.limbo + List.length t.orphans
      in
      ignore (drain t);
      t.limbo <- [];
      t.orphans <- [];
      t.flushed <- t.flushed + n;
      n
    end
    else 0
  in
  resume t;
  lost

let name t = t.name

let processed t = t.processed

let rejected t = Nfp_algo.Ring.rejected_total t.ring

let busy_ns t = t.busy_ns

let stalled_ns t = t.stalled_ns

let queue_length t =
  Nfp_algo.Ring.length t.ring + List.length t.limbo + List.length t.orphans

let is_down t = t.down

let is_busy t = t.busy

let crashes t = t.crashes

let fault_drops t = t.fault_drops

let flushed t = t.flushed
