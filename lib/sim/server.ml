(* Mutable floats of a mixed record box a fresh float on every store,
   so the per-breath counters live in their own all-float record (OCaml
   stores those flat): busy/stall accounting and the fault scalings are
   written on the hottest path. *)
type fstate = {
  mutable busy_ns : float;
  mutable stalled_ns : float;
  (* Management work (e.g. a state checkpoint) charged to this core:
     the accumulated time is added to the next breath's completion,
     then reset. 0.0 is a bitwise identity on the service-time sums. *)
  mutable extra_ns : float;
  (* Fault scalings (Fault.core). The defaults are exact identities —
     [slow] of 1.0, drop probability 0.0 — so an unfaulted server
     behaves bit-for-bit as before the fault subsystem existed. *)
  mutable slow : float;
  mutable drop_p : float;
}

type 'job t = {
  engine : Engine.t;
  name : string;
  ring : 'job Nfp_algo.Ring.t;
  batch : int;
  (* Per-breath dispatch cycles the second and later jobs of one breath
     do not pay again (dequeue synchronization, run-to-completion
     dispatch): the breath's first job is charged its full legacy
     service time, followers are charged [service_ns j - burst_saving_ns]
     (floored at zero) before jitter. 0.0 — and any breath of one job,
     hence any [batch] of 1 — is bit-for-bit the legacy per-packet
     charging. *)
  burst_saving_ns : float;
  jitter : (float * Nfp_algo.Prng.t) option;
  retry_ns : float;
  service_ns : 'job -> float;
  execute : 'job -> unit -> bool;
  f : fstate;
  mutable busy : bool;
  mutable processed : int;
  mutable down : bool;
  (* [paused] is the migration quiesce state: the core is healthy but
     administratively frozen — no new breaths start and no orphans pump
     while it holds, yet the ring keeps accepting jobs (backpressure,
     not loss) and injected faults still land ([down] and [paused] are
     independent). Distinct from [down] so the watchdog can tell a
     quiesced core from a dead one. *)
  mutable paused : bool;
  mutable fault_prng : Nfp_algo.Prng.t option;
  (* [epoch] invalidates in-flight breaths: a crash or hang bumps it,
     and a breath-completion or flush-retry event whose captured epoch
     no longer matches becomes a no-op — [interrupt] has already
     reclaimed the casualties synchronously (see below). *)
  mutable epoch : int;
  mutable crashes : int;
  mutable fault_drops : int;
  mutable flushed : int;
  (* Breath scratch, reused across breaths so the steady state
     allocates nothing per packet. [jobs.(0 .. n_inflight-1)] mirrors
     the burst the core is currently serving (allocated lazily at the
     first breath, Ring-style, because ['job] has no default value);
     [emits.(emit_cursor .. n_emits-1)] mirrors the emission thunks a
     flush still owes downstream. Consumed slots keep a stale reference
     until the next breath overwrites them — bounded by [batch], same
     retention policy as the flat [Ring]. *)
  mutable jobs : 'job array;
  mutable n_inflight : int;
  emits : (unit -> bool) array;
  mutable n_emits : int;
  mutable emit_cursor : int;
  (* Casualty bookkeeping (cold path, plain lists). [interrupt] moves
     the in-flight breath into [limbo] (jobs dequeued but never
     executed) and the pending emissions into [orphans] (jobs executed
     whose emissions are pending). The ring, [limbo] and [orphans]
     model state that survives the crash of the core's NF process —
     they live in the runtime's shared memory — so a recovery policy
     chooses what to do with them: [revive ~flush:true] discards the
     lot into [flushed] (lossy Restart), [revive ~flush:false]
     re-admits everything in order (lossless recovery), and a
     [casualty_sink] reroutes them as they fall (Bypass). *)
  mutable limbo : 'job list;
  mutable orphans : (unit -> bool) list;
  mutable casualty_sink : ('job list -> (unit -> bool) list -> unit) option;
  mutable pump_armed : bool;
}

let jittered t base =
  let base =
    match t.jitter with
    | None -> base
    | Some (frac, prng) ->
        let f = 1.0 +. (frac *. ((2.0 *. Nfp_algo.Prng.float prng) -. 1.0)) in
        base *. f
  in
  (* *. 1.0 is bitwise identity, so the multiply is free of behavioral
     change when no slowdown fault is installed. *)
  base *. t.f.slow

let always () = true

(* A drop fault makes the job vanish between dequeue and execution (a
   corrupted ring slot); the server still "processes" it — progress
   heartbeats keep beating, only the work is lost. *)
let run_job t job =
  match t.fault_prng with
  | Some prng when t.f.drop_p > 0.0 && Nfp_algo.Prng.float prng < t.f.drop_p ->
      t.fault_drops <- t.fault_drops + 1;
      always
  | _ -> t.execute job

let stash t jobs emits =
  if jobs <> [] || emits <> [] then
    match t.casualty_sink with
    | Some sink -> sink jobs emits
    | None ->
        (* The reclaimed breath was inhaled from the front of the work
           order, so it is older than anything still in limbo — prepend
           to keep per-flow processing order across a pause/interrupt. *)
        t.limbo <- jobs @ t.limbo;
        t.orphans <- t.orphans @ emits

let has_work t = t.limbo <> [] || not (Nfp_algo.Ring.is_empty t.ring)

(* Emit the breath's thunks in order; stall and retry on backpressure.
   [emits.(emit_cursor ..)] shadows the worklist so an interrupt can
   reclaim it. *)
let rec flush t =
  if t.emit_cursor >= t.n_emits then begin
    t.n_emits <- 0;
    t.emit_cursor <- 0;
    t.busy <- false;
    run_batch t
  end
  else if t.emits.(t.emit_cursor) () then begin
    (* Scrub the consumed slot so the closure (and whatever packet
       context it captured) is not retained until the next breath. *)
    t.emits.(t.emit_cursor) <- always;
    t.emit_cursor <- t.emit_cursor + 1;
    t.processed <- t.processed + 1;
    flush t
  end
  else begin
    t.f.stalled_ns <- t.f.stalled_ns +. t.retry_ns;
    let epoch = t.epoch in
    Engine.schedule t.engine ~delay:t.retry_ns (fun () ->
        if t.epoch = epoch then flush t)
  end

(* Work reclaimed as orphans is emitted before any new breath runs, so
   downstream still sees this core's packets in processing order. *)
and pump_orphans t =
  if (not t.down) && not t.paused then begin
    match t.orphans with
    | [] -> run_batch t
    | thunk :: rest ->
        if thunk () then begin
          t.processed <- t.processed + 1;
          t.orphans <- rest;
          pump_orphans t
        end
        else begin
          t.f.stalled_ns <- t.f.stalled_ns +. t.retry_ns;
          if not t.pump_armed then begin
            t.pump_armed <- true;
            Engine.schedule t.engine ~delay:t.retry_ns (fun () ->
                t.pump_armed <- false;
                pump_orphans t)
          end
        end
  end

(* One breath: inhale up to [batch] jobs (reclaimed limbo first — those
   were dequeued before anything now in the ring — then an rx burst
   from the ring), charge their service back to back, execute and
   exhale at completion — the rx_burst/tx_burst pattern of a DPDK poll
   loop, with all per-breath state in reused scratch arrays. *)
and run_batch t =
  if (not t.busy) && (not t.down) && (not t.paused) && t.orphans = [] && has_work t
  then begin
    t.busy <- true;
    let epoch = t.epoch in
    let extra = t.f.extra_ns in
    t.f.extra_ns <- 0.0;
    let j0 =
      match t.limbo with
      | j :: rest ->
          t.limbo <- rest;
          j
      | [] -> Nfp_algo.Ring.dequeue_exn t.ring
    in
    if Array.length t.jobs = 0 then t.jobs <- Array.make t.batch j0
    else t.jobs.(0) <- j0;
    let n = ref 1 in
    let rec take_limbo () =
      if !n < t.batch then
        match t.limbo with
        | j :: rest ->
            t.limbo <- rest;
            t.jobs.(!n) <- j;
            incr n;
            take_limbo ()
        | [] -> ()
    in
    take_limbo ();
    if !n < t.batch then
      n := !n + Nfp_algo.Ring.dequeue_into t.ring t.jobs !n (t.batch - !n);
    let n = !n in
    t.n_inflight <- n;
    let finish = ref (extra +. jittered t (t.service_ns t.jobs.(0))) in
    for i = 1 to n - 1 do
      finish :=
        !finish
        +. jittered t (Float.max 0.0 (t.service_ns t.jobs.(i) -. t.burst_saving_ns))
    done;
    let finish = !finish in
    t.f.busy_ns <- t.f.busy_ns +. finish;
    Engine.schedule t.engine ~delay:finish (fun () ->
        if t.epoch = epoch then begin
          let n = t.n_inflight in
          t.n_inflight <- 0;
          for i = 0 to n - 1 do
            t.emits.(i) <- run_job t t.jobs.(i)
          done;
          t.n_emits <- n;
          t.emit_cursor <- 0;
          flush t
        end)
  end

(* The casualties of an interrupt, as lists (cold path): the in-flight
   breath's unexecuted jobs and the pending emission thunks. *)
let reclaim_inflight t =
  let jobs = ref [] in
  for i = t.n_inflight - 1 downto 0 do
    jobs := t.jobs.(i) :: !jobs
  done;
  t.n_inflight <- 0;
  !jobs

let reclaim_emits t =
  let emits = ref [] in
  for i = t.n_emits - 1 downto t.emit_cursor do
    emits := t.emits.(i) :: !emits;
    t.emits.(i) <- always
  done;
  t.n_emits <- 0;
  t.emit_cursor <- 0;
  !emits

(* The core stops. The in-flight breath and any pending emissions are
   reclaimed synchronously — their completion events, fired against a
   stale epoch, become no-ops — so no work is silently dropped between
   the crash and whatever recovery policy runs later. *)
let interrupt t =
  if not t.down then begin
    t.down <- true;
    t.epoch <- t.epoch + 1;
    let jobs = reclaim_inflight t and emits = reclaim_emits t in
    stash t jobs emits
  end

let resume t =
  if t.down then begin
    t.down <- false;
    t.busy <- false;
    pump_orphans t
  end

let create ~engine ~name ~ring_capacity ~batch ?(burst_saving_ns = 0.0) ?jitter
    ?(retry_ns = 150.0) ?watermarks ?fault ~service_ns ~execute () =
  let batch = max 1 batch in
  let ring = Nfp_algo.Ring.create ~capacity:ring_capacity in
  (match watermarks with
  | None -> ()
  | Some (high, low) -> Nfp_algo.Ring.set_watermarks ring ~high ~low);
  let t =
    {
      engine;
      name;
      ring;
      batch;
      burst_saving_ns;
      jitter;
      retry_ns;
      service_ns;
      execute;
      f = { busy_ns = 0.0; stalled_ns = 0.0; extra_ns = 0.0; slow = 1.0; drop_p = 0.0 };
      busy = false;
      processed = 0;
      down = false;
      paused = false;
      fault_prng = None;
      epoch = 0;
      crashes = 0;
      fault_drops = 0;
      flushed = 0;
      jobs = [||];
      n_inflight = 0;
      emits = Array.make batch always;
      n_emits = 0;
      emit_cursor = 0;
      limbo = [];
      orphans = [];
      casualty_sink = None;
      pump_armed = false;
    }
  in
  (match fault with
  | None -> ()
  | Some (f : Fault.core) ->
      t.fault_prng <- Some f.prng;
      List.iter
        (function
          | Fault.Crash { at_ns } ->
              Engine.schedule engine ~delay:at_ns (fun () ->
                  if not t.down then begin
                    t.crashes <- t.crashes + 1;
                    interrupt t
                  end)
          | Fault.Hang { at_ns; duration_ns } ->
              Engine.schedule engine ~delay:at_ns (fun () -> interrupt t);
              Engine.schedule engine ~delay:(at_ns +. duration_ns) (fun () -> resume t)
          | Fault.Slowdown { at_ns; factor } ->
              Engine.schedule engine ~delay:at_ns (fun () -> t.f.slow <- t.f.slow *. factor)
          | Fault.Drop { probability } -> t.f.drop_p <- min 1.0 (t.f.drop_p +. probability))
        f.events);
  t

let offer t job =
  if Nfp_algo.Ring.enqueue t.ring job then begin
    if not t.busy then run_batch t;
    true
  end
  else false

let has_room t = not (Nfp_algo.Ring.is_full t.ring)

(* ------------------------------------------------------------------ *)
(* Fault control surface (used by the System watchdog)                 *)
(* ------------------------------------------------------------------ *)

(* Administrative stop: same mechanics as a crash, but not counted as
   one (used when the watchdog bypasses a core out of the graph). *)
let kill t = interrupt t

(* Remove and return everything queued, without processing it. *)
let drain t =
  let rec go acc =
    if Nfp_algo.Ring.is_empty t.ring then List.rev acc
    else go (Nfp_algo.Ring.dequeue_exn t.ring :: acc)
  in
  go []

(* Route casualties to [sink] instead of stashing them — and hand over
   whatever already stashed, so a sink installed after the kill still
   sees the in-flight batch the kill reclaimed. *)
let set_casualty_sink t sink =
  t.casualty_sink <- Some sink;
  let jobs = t.limbo and emits = t.orphans in
  t.limbo <- [];
  t.orphans <- [];
  if jobs <> [] || emits <> [] then sink jobs emits

let casualty_counts t = (List.length t.limbo, List.length t.orphans)

let charge t ns = t.f.extra_ns <- t.f.extra_ns +. ns

(* Bring a down core back. [flush] discards everything the crash left
   behind — the backlog that accumulated in the ring plus the reclaimed
   in-flight jobs and pending emissions (counted in [flushed],
   returned): lossy Restart semantics. [flush:false] re-admits all of
   it in order — orphaned emissions drain first, then the reclaimed
   batch, then the ring backlog — the lossless recovery path. *)
let revive ?(flush = true) t =
  let lost =
    if flush then begin
      let n =
        Nfp_algo.Ring.length t.ring + List.length t.limbo + List.length t.orphans
      in
      ignore (drain t);
      t.limbo <- [];
      t.orphans <- [];
      t.flushed <- t.flushed + n;
      n
    end
    else 0
  in
  resume t;
  lost

(* ------------------------------------------------------------------ *)
(* Migration quiesce surface (used by the System elastic controller)   *)
(* ------------------------------------------------------------------ *)

(* Freeze the core for a state snapshot: the in-flight breath (if any)
   is reclaimed exactly as an interrupt would — unexecuted jobs to
   limbo, pending emissions to orphans — but the core stays [up]; it
   simply starts no new work until [unpause]. The ring keeps accepting
   offers, so upstream sees backpressure, never loss. *)
let pause t =
  if not t.paused then begin
    t.paused <- true;
    if t.busy then begin
      t.epoch <- t.epoch + 1;
      t.busy <- false;
      let jobs = reclaim_inflight t and emits = reclaim_emits t in
      stash t jobs emits
    end
  end

let unpause t =
  if t.paused then begin
    t.paused <- false;
    if not t.down then pump_orphans t
  end

let is_paused t = t.paused

(* Hand the unexecuted backlog — reclaimed limbo first (older), then the
   ring contents — to the caller, clearing both. Orphaned emissions stay:
   those jobs already executed here and must emit from here. *)
let take_backlog t =
  let jobs = t.limbo @ drain t in
  t.limbo <- [];
  jobs

(* Put jobs back at the head of the work order (behind any older limbo):
   the migration commit returns the non-migrating share of a taken
   backlog this way. Does not kick the poll loop — callers hold the
   core paused while they shuffle work. *)
let requeue t jobs = t.limbo <- t.limbo @ jobs

let free_slots t = Nfp_algo.Ring.capacity t.ring - Nfp_algo.Ring.length t.ring

let name t = t.name

let processed t = t.processed

let rejected t = Nfp_algo.Ring.rejected_total t.ring

let pressured t = Nfp_algo.Ring.pressured t.ring

let pressure_episodes t = Nfp_algo.Ring.pressure_episodes t.ring

let busy_ns t = t.f.busy_ns

let stalled_ns t = t.f.stalled_ns

let queue_length t =
  Nfp_algo.Ring.length t.ring + List.length t.limbo + List.length t.orphans

let is_down t = t.down

let is_busy t = t.busy

let crashes t = t.crashes

let fault_drops t = t.fault_drops

let flushed t = t.flushed
