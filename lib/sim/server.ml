type 'job t = {
  engine : Engine.t;
  name : string;
  ring : 'job Nfp_algo.Ring.t;
  batch : int;
  jitter : (float * Nfp_algo.Prng.t) option;
  retry_ns : float;
  service_ns : 'job -> float;
  execute : 'job -> unit -> bool;
  mutable busy : bool;
  mutable processed : int;
  mutable busy_ns : float;
  mutable stalled_ns : float;
}

let create ~engine ~name ~ring_capacity ~batch ?jitter ?(retry_ns = 150.0) ~service_ns
    ~execute () =
  {
    engine;
    name;
    ring = Nfp_algo.Ring.create ~capacity:ring_capacity;
    batch = max 1 batch;
    jitter;
    retry_ns;
    service_ns;
    execute;
    busy = false;
    processed = 0;
    busy_ns = 0.0;
    stalled_ns = 0.0;
  }

let jittered t base =
  match t.jitter with
  | None -> base
  | Some (frac, prng) ->
      let f = 1.0 +. (frac *. ((2.0 *. Nfp_algo.Prng.float prng) -. 1.0)) in
      base *. f

(* Emit the batch's thunks in order; stall and retry on backpressure. *)
let rec flush t = function
  | [] ->
      t.busy <- false;
      run_batch t
  | thunk :: rest ->
      if thunk () then begin
        t.processed <- t.processed + 1;
        flush t rest
      end
      else begin
        t.stalled_ns <- t.stalled_ns +. t.retry_ns;
        Engine.schedule t.engine ~delay:t.retry_ns (fun () -> flush t (thunk :: rest))
      end

(* Pull up to [batch] jobs, work through them back to back, execute and
   flush at batch completion — the rx_burst/tx_burst pattern of a DPDK
   poll loop. *)
and run_batch t =
  if (not t.busy) && not (Nfp_algo.Ring.is_empty t.ring) then begin
    t.busy <- true;
    let j0 = Nfp_algo.Ring.dequeue_exn t.ring in
    if t.batch = 1 || Nfp_algo.Ring.is_empty t.ring then begin
      (* Single-job burst — the common case under non-saturating load;
         skips the list churn of the general path. *)
      let finish = jittered t (t.service_ns j0) in
      t.busy_ns <- t.busy_ns +. finish;
      Engine.schedule t.engine ~delay:finish (fun () -> flush t [ t.execute j0 ])
    end
    else begin
      let rec take acc n =
        if n = 0 || Nfp_algo.Ring.is_empty t.ring then List.rev acc
        else take (Nfp_algo.Ring.dequeue_exn t.ring :: acc) (n - 1)
      in
      let jobs = j0 :: take [] (t.batch - 1) in
      let finish =
        List.fold_left
          (fun offset job -> offset +. jittered t (t.service_ns job))
          0.0 jobs
      in
      t.busy_ns <- t.busy_ns +. finish;
      Engine.schedule t.engine ~delay:finish (fun () ->
          let thunks = List.map t.execute jobs in
          flush t thunks)
    end
  end

let offer t job =
  if Nfp_algo.Ring.enqueue t.ring job then begin
    if not t.busy then run_batch t;
    true
  end
  else false

let has_room t = not (Nfp_algo.Ring.is_full t.ring)

let name t = t.name

let processed t = t.processed

let rejected t = Nfp_algo.Ring.rejected_total t.ring

let busy_ns t = t.busy_ns

let stalled_ns t = t.stalled_ns

let queue_length t = Nfp_algo.Ring.length t.ring
