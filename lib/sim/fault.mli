(** Deterministic, seeded fault injection for the simulated dataplane.

    A plan maps core names to timed perturbations; {!Server.create}
    wires a core's share of a plan into its poll loop, and
    [Nfp_infra.System] resolves plans to cores by name. All randomness
    (drop decisions, storm crash times) derives from the plan seed
    folded with the core name — never from the simulation's jitter
    streams — so two runs of one plan are identical and an {!empty}
    plan leaves the simulation byte-identical to one without any fault
    machinery (enforced differentially in test/test_fastpath.ml). *)

type event =
  | Crash of { at_ns : float }
      (** the core stops; only an external revive restores it *)
  | Hang of { at_ns : float; duration_ns : float }
      (** wedged for a window, then resumes *)
  | Slowdown of { at_ns : float; factor : float }
      (** service times scale by [factor] from T on *)
  | Drop of { probability : float }  (** each job vanishes with probability p *)

type spec = { core : string; events : event list }
(** [core] is an exact name or a trailing-['*'] prefix pattern
    (["mid1:*"] perturbs every NF core of graph 1). *)

type plan = { seed : int64; specs : spec list }

val empty : plan

val is_empty : plan -> bool

val plan : ?seed:int64 -> spec list -> plan

val crash : at_ns:float -> string -> spec

val hang : at_ns:float -> duration_ns:float -> string -> spec

val slowdown : at_ns:float -> factor:float -> string -> spec

val drop : probability:float -> string -> spec

val matches : pattern:string -> name:string -> bool

type core = { events : event list; prng : Nfp_algo.Prng.t }
(** A core's share of a plan: its matching events plus a private PRNG
    stream for drop decisions. *)

val for_core : plan -> string -> core option
(** [None] when no spec matches the name — the server is then built
    with no fault machinery at all. *)

val storm :
  ?seed:int64 -> cores:string list -> mtbf_ns:float -> horizon_ns:float -> unit -> plan
(** Each listed core crashes at exponentially-distributed intervals
    (mean [mtbf_ns]) within [horizon_ns]; draw order is per-core, so
    the storm is stable under reordering of [cores].
    @raise Invalid_argument when [mtbf_ns <= 0]. *)

val event_count : plan -> int

(** {2 Surge plans}

    Where fault specs perturb cores, surge shapes perturb the {e offered
    load}: a surge evaluates to a rate multiplier over simulated time
    and [Harness.run ~arrivals:(Surge s)] re-samples it at every
    arrival. Multipliers of overlapping shapes compose by product;
    a surge with no shapes is exactly [Uniform base_mpps]. *)

type surge_shape =
  | Step of { at_ns : float; factor : float }
      (** load multiplies by [factor] from [at_ns] on *)
  | Spike of { at_ns : float; duration_ns : float; factor : float }
      (** [factor] inside the window, 1.0 outside *)
  | Ramp of { from_ns : float; to_ns : float; factor : float }
      (** linear 1.0 -> [factor] across the window, [factor] after *)

type surge = { base_mpps : float; shapes : surge_shape list }

val surge : base_mpps:float -> surge_shape list -> surge
(** @raise Invalid_argument when [base_mpps <= 0] or any factor
    [<= 0]. *)

val surge_rate : surge -> now_ns:float -> float
(** The offered load (Mpps) the plan prescribes at [now_ns]. *)

val surge_storm :
  ?seed:int64 ->
  base_mpps:float ->
  peak_factor:float ->
  horizon_ns:float ->
  ?spikes:int ->
  unit ->
  surge
(** A seeded random spike train: up to [spikes] spikes across
    [horizon_ns], each multiplying the load by a draw in
    [1, peak_factor]. Deterministic in [seed] — surge plans are as
    replayable as crash plans.
    @raise Invalid_argument when [peak_factor < 1] or
    [horizon_ns <= 0]. *)
