(** Deterministic, seeded fault injection for the simulated dataplane.

    A plan maps core names to timed perturbations; {!Server.create}
    wires a core's share of a plan into its poll loop, and
    [Nfp_infra.System] resolves plans to cores by name. All randomness
    (drop decisions, storm crash times) derives from the plan seed
    folded with the core name — never from the simulation's jitter
    streams — so two runs of one plan are identical and an {!empty}
    plan leaves the simulation byte-identical to one without any fault
    machinery (enforced differentially in test/test_fastpath.ml). *)

type event =
  | Crash of { at_ns : float }
      (** the core stops; only an external revive restores it *)
  | Hang of { at_ns : float; duration_ns : float }
      (** wedged for a window, then resumes *)
  | Slowdown of { at_ns : float; factor : float }
      (** service times scale by [factor] from T on *)
  | Drop of { probability : float }  (** each job vanishes with probability p *)

type spec = { core : string; events : event list }
(** [core] is an exact name or a trailing-['*'] prefix pattern
    (["mid1:*"] perturbs every NF core of graph 1). *)

type plan = { seed : int64; specs : spec list }

val empty : plan

val is_empty : plan -> bool

val plan : ?seed:int64 -> spec list -> plan

val crash : at_ns:float -> string -> spec

val hang : at_ns:float -> duration_ns:float -> string -> spec

val slowdown : at_ns:float -> factor:float -> string -> spec

val drop : probability:float -> string -> spec

val matches : pattern:string -> name:string -> bool

type core = { events : event list; prng : Nfp_algo.Prng.t }
(** A core's share of a plan: its matching events plus a private PRNG
    stream for drop decisions. *)

val for_core : plan -> string -> core option
(** [None] when no spec matches the name — the server is then built
    with no fault machinery at all. *)

val storm :
  ?seed:int64 -> cores:string list -> mtbf_ns:float -> horizon_ns:float -> unit -> plan
(** Each listed core crashes at exponentially-distributed intervals
    (mean [mtbf_ns]) within [horizon_ns]; draw order is per-core, so
    the storm is stable under reordering of [cores].
    @raise Invalid_argument when [mtbf_ns <= 0]. *)

val event_count : plan -> int

(** {2 Link fault domain}

    Where specs perturb cores, link specs perturb the {e fabric
    between} cores: every inter-core edge is a named link (the
    [Nfp_infra.System] convention is ["link:<destination core>"] — the
    ingress port the edge lands on — plus ["link:migrate:<core>"] for
    migration transfer channels), and a link plan assigns each a set of
    fault processes: i.i.d. loss, duplication, bounded reordering,
    Gilbert–Elliott two-state burst loss, and hard partition windows.
    All randomness derives from the plan seed folded with the link
    name; {!no_links} leaves the simulation byte-identical to one
    without any link machinery. *)

type link_fault =
  | Loss of { probability : float }
      (** each transit vanishes with probability p *)
  | Duplicate of { probability : float; gap_ns : float }
      (** each transit is doubled with probability p; the copy lands
          [gap_ns] later *)
  | Jumble of { probability : float; span_ns : float }
      (** each transit is delayed by a uniform draw in (0, span_ns]
          with probability p — it arrives behind its successors *)
  | Burst of { p_enter : float; p_exit : float; drop : float }
      (** Gilbert–Elliott two-state burst loss: good/bad transitions
          drawn per transit ([p_enter], [p_exit]); the bad state drops
          each transit with probability [drop] *)
  | Partition of { at_ns : float; duration_ns : float }
      (** hard outage: every transit inside the window is lost *)

type link_spec = { link : string; faults : link_fault list }
(** [link] is an exact name or a trailing-['*'] prefix pattern
    (["link:mid1:*"] perturbs every edge into graph 1's NF cores). *)

type link_plan = { link_seed : int64; link_specs : link_spec list }

val no_links : link_plan

val links_empty : link_plan -> bool

val link_plan : ?seed:int64 -> link_spec list -> link_plan

val loss : probability:float -> string -> link_spec

val duplicate : ?gap_ns:float -> probability:float -> string -> link_spec

val jumble : probability:float -> span_ns:float -> string -> link_spec

val burst : p_enter:float -> p_exit:float -> drop:float -> string -> link_spec

val partition : at_ns:float -> duration_ns:float -> string -> link_spec

val flapping :
  at_ns:float -> down_ns:float -> up_ns:float -> cycles:int -> string -> link_spec
(** [cycles] partition windows of [down_ns] each, separated by [up_ns]
    of health, starting at [at_ns]. *)

type link_state = {
  l_name : string;
  l_faults : link_fault list;
  l_prng : Nfp_algo.Prng.t;
  mutable l_bad : bool;  (** Gilbert–Elliott: currently in the bad state *)
}
(** One link's share of a plan: its matching faults, a private seeded
    PRNG stream, and the mutable burst-loss state. *)

val link_for : link_plan -> string -> link_state option
(** [None] when no spec matches the name — the channel then carries a
    perfect fabric. *)

val link_partitioned : link_state -> now_ns:float -> bool
(** Whether any partition window covers [now_ns]. Pure in time — no
    PRNG draw — so health probes never perturb the loss streams. *)

type transit =
  | T_pass
  | T_pass_dup of float  (** deliver now, and again [gap_ns] later *)
  | T_drop
  | T_delay of float  (** deliver this many ns late, behind successors *)

val transit : link_state -> now_ns:float -> transit
(** Draw what the fabric does to one transit of the link. A partition
    short-circuits to {!T_drop} without a draw; otherwise every fault
    process draws (the Gilbert–Elliott chain advances on every
    transit), loss wins over duplication wins over reordering. *)

val link_fault_count : link_plan -> int

(** {2 Surge plans}

    Where fault specs perturb cores, surge shapes perturb the {e offered
    load}: a surge evaluates to a rate multiplier over simulated time
    and [Harness.run ~arrivals:(Surge s)] re-samples it at every
    arrival. Multipliers of overlapping shapes compose by product;
    a surge with no shapes is exactly [Uniform base_mpps]. *)

type surge_shape =
  | Step of { at_ns : float; factor : float }
      (** load multiplies by [factor] from [at_ns] on *)
  | Spike of { at_ns : float; duration_ns : float; factor : float }
      (** [factor] inside the window, 1.0 outside *)
  | Ramp of { from_ns : float; to_ns : float; factor : float }
      (** linear 1.0 -> [factor] across the window, [factor] after *)

type surge = { base_mpps : float; shapes : surge_shape list }

val surge : base_mpps:float -> surge_shape list -> surge
(** @raise Invalid_argument when [base_mpps <= 0] or any factor
    [<= 0]. *)

val surge_rate : surge -> now_ns:float -> float
(** The offered load (Mpps) the plan prescribes at [now_ns]. *)

val surge_storm :
  ?seed:int64 ->
  base_mpps:float ->
  peak_factor:float ->
  horizon_ns:float ->
  ?spikes:int ->
  unit ->
  surge
(** A seeded random spike train: up to [spikes] spikes across
    [horizon_ns], each multiplying the load by a draw in
    [1, peak_factor]. Deterministic in [seed] — surge plans are as
    replayable as crash plans.
    @raise Invalid_argument when [peak_factor < 1] or
    [horizon_ns <= 0]. *)
