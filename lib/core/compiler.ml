open Nfp_policy

type output = {
  graph : Graph.t;
  ir : Ir.t;
  micrographs : Micrograph.t list;
  priority_pairs : (string * string) list;
  admit_class : int;
  warnings : string list;
}

let union_profile (ir : Ir.t) members =
  Nfp_nf.Action.normalize (List.concat_map ir.profile_of members)

let compile ?field_sensitive_write_read policy =
  match Validate.check policy with
  | _ :: _ as conflicts ->
      Error
        (List.map
           (fun c ->
             Format.asprintf "%a (hint: %s)" Validate.pp_conflict c (Validate.suggest c))
           conflicts)
  | [] -> (
      match Ir.transform ?field_sensitive_write_read policy with
      | Error e -> Error [ e ]
      | Ok ir ->
          let micrographs, mg_warnings = Micrograph.build ?field_sensitive_write_read ir in
          let firsts =
            List.filter_map
              (fun (p : Ir.position) -> if p.place = Rule.First then Some p.nf else None)
              ir.positions
          in
          let lasts =
            List.filter_map
              (fun (p : Ir.position) -> if p.place = Rule.Last then Some p.nf else None)
              ir.positions
          in
          (* Middle items: micrographs plus free NFs wrapped as single-NF
             micrographs, staged by pairwise dependency of their union
             profiles (paper §4.4.3). *)
          let middle_items : (string * Graph.t * Nfp_nf.Action.t list) list =
            List.map
              (fun (m : Micrograph.t) ->
                (List.hd m.members, m.term, union_profile ir m.members))
              micrographs
            @ List.map (fun n -> (n, Graph.nf n, ir.profile_of n)) ir.free
          in
          let middle, merge_warnings =
            match middle_items with
            | [] -> ([], [])
            | [ (_, term, _) ] -> ([ term ], [])
            | items ->
                let names = List.map (fun (n, _, _) -> n) items in
                let profile_of n =
                  match List.find_opt (fun (x, _, _) -> x = n) items with
                  | Some (_, _, p) -> p
                  | None -> raise Not_found
                in
                let staged =
                  Micrograph.order_items ?field_sensitive_write_read ~items:names
                    ~profile_of ~ordered:[] ~forced_parallel:[] ()
                in
                let term_of n =
                  match List.find_opt (fun (x, _, _) -> x = n) items with
                  | Some (_, t, _) -> t
                  | None -> assert false
                in
                ( List.map
                    (fun stage -> Graph.par (List.map term_of stage))
                    staged.stages,
                  staged.warnings )
          in
          let pieces = List.map Graph.nf firsts @ middle @ List.map Graph.nf lasts in
          if pieces = [] then Error [ "policy describes no NFs" ]
          else
            let graph = Graph.seq pieces in
            let priority_pairs =
              List.filter_map
                (fun (p : Ir.pair) ->
                  if p.source = `Priority then Some (p.later, p.earlier) else None)
                ir.pairs
            in
            let warnings =
              mg_warnings
              @ List.concat_map (fun (m : Micrograph.t) -> m.warnings) micrographs
              @ merge_warnings
            in
            let admit_class =
              Option.value ~default:0 (Rule.admit_class policy.rules)
            in
            Ok { graph; ir; micrographs; priority_pairs; admit_class; warnings })

let explain (output : output) =
  let buf = Buffer.create 512 in
  let addf fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (p : Ir.position) ->
      addf "%s is pinned %s by a Position rule.\n" p.nf
        (match p.place with Nfp_policy.Rule.First -> "first" | Nfp_policy.Rule.Last -> "last"))
    output.ir.positions;
  List.iter
    (fun (p : Ir.pair) ->
      match p.source with
      | `Priority ->
          addf "%s and %s run in parallel by operator Priority (%s wins conflicts)%s.\n"
            p.earlier p.later p.later
            (if p.conflicting_actions = [] then ""
             else
               Format.asprintf "; copies needed for%a"
                 (Format.pp_print_list (fun f (a, b) ->
                      Format.fprintf f " %a/%a" Nfp_nf.Action.pp a Nfp_nf.Action.pp b))
                 p.conflicting_actions)
      | `Order ->
          let r =
            Parallelism.analyze (output.ir.profile_of p.earlier) (output.ir.profile_of p.later)
          in
          if not r.Parallelism.parallelizable then
            match r.Parallelism.blocking with
            | Some (a, b) ->
                addf "%s stays before %s: %a of %s cannot reorder with %a of %s.\n" p.earlier
                  p.later Nfp_nf.Action.pp a p.earlier Nfp_nf.Action.pp b p.later
            | None -> addf "%s stays before %s (not parallelizable).\n" p.earlier p.later
          else if r.Parallelism.conflicting_actions = [] then
            addf "%s and %s parallelize without copies (no conflicting actions).\n" p.earlier
              p.later
          else
            addf "%s and %s parallelize with a packet copy (conflicts:%s).\n" p.earlier p.later
              (String.concat ","
                 (List.map
                    (fun (a, b) ->
                      Format.asprintf " %a/%a" Nfp_nf.Action.pp a Nfp_nf.Action.pp b)
                    r.Parallelism.conflicting_actions)))
    output.ir.pairs;
  List.iter
    (fun n -> addf "%s is unconstrained and joins the parallel stage where possible.\n" n)
    output.ir.free;
  List.iter (fun w -> addf "warning: %s\n" w) output.warnings;
  addf "final graph: %s (equivalent length %d of %d NFs)\n" (Graph.to_string output.graph)
    (Graph.equivalent_length output.graph)
    (Graph.nf_count output.graph);
  Buffer.contents buf

let compile_text ?field_sensitive_write_read text =
  match Parser.parse text with
  | Error e -> Error [ e ]
  | Ok policy -> compile ?field_sensitive_write_read policy

let sequential_graph policy =
  match Ir.transform policy with
  | Error e -> Error e
  | Ok ir ->
      let firsts =
        List.filter_map
          (fun (p : Ir.position) -> if p.place = Rule.First then Some p.nf else None)
          ir.positions
      in
      let lasts =
        List.filter_map
          (fun (p : Ir.position) -> if p.place = Rule.Last then Some p.nf else None)
          ir.positions
      in
      let edges =
        List.map (fun (p : Ir.pair) -> (p.earlier, p.later)) ir.pairs
      in
      let mentioned = Rule.nfs_of_rules policy.rules in
      let middle =
        List.filter (fun n -> not (List.mem n firsts || List.mem n lasts)) mentioned
        @ ir.free
      in
      (* Kahn's topological sort, stable on first appearance. *)
      let rec topo acc remaining =
        match remaining with
        | [] -> Ok (List.rev acc)
        | _ -> (
            let ready =
              List.filter
                (fun n ->
                  not
                    (List.exists
                       (fun (a, b) -> b = n && List.mem a remaining)
                       edges))
                remaining
            in
            match ready with
            | [] -> Error "order rules are cyclic"
            | n :: _ -> topo (n :: acc) (List.filter (fun x -> x <> n) remaining))
      in
      (match topo [] middle with
      | Error e -> Error e
      | Ok ordered ->
          let names = firsts @ ordered @ lasts in
          if names = [] then Error "policy describes no NFs"
          else Ok (Graph.seq (List.map Graph.nf names)))
