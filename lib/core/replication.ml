open Nfp_nf

type strategy = Shared_nothing | Replicated_readonly | Sequential

let to_string = function
  | Shared_nothing -> "shared-nothing"
  | Replicated_readonly -> "replicated-readonly"
  | Sequential -> "sequential"

let pp fmt s = Format.pp_print_string fmt (to_string s)

(* The safety argument, component by component:
   - a Global General write can observe (and be observed by) every
     other flow's packets, so any partitioning reorders it → Sequential;
   - a Per_flow General write is confined to its flow's partition, and
     the RSS stage pins each flow to one replica → shardable;
   - Commutative writes merge regardless of scope (the NF never reads
     them into packet-visible behaviour, and the writes sum);
   - all-Read_only state needs no merging at all: each replica carries
     an identical copy. *)
let of_profile (comps : State_access.t) =
  let open State_access in
  if List.exists (fun c -> c.scope = Global && c.mode = General) comps then
    Sequential
  else if List.exists (fun c -> c.mode <> Read_only) comps then Shared_nothing
  else Replicated_readonly

let derive (nf : Nf.t) =
  match nf.state_access with None -> Sequential | Some comps -> of_profile comps

let eligible (nf : Nf.t) =
  match derive nf with
  | Sequential -> false
  | Replicated_readonly -> nf.fresh <> None
  | Shared_nothing ->
      nf.fresh <> None && nf.merge <> None && nf.snapshot <> None
      && nf.restore <> None

(* Live migration needs one more half than static sharding: a way to
   carve the moving flows' state out of the source (extract) on top of
   the absorb side's merge machinery. Replicated_readonly replicas are
   interchangeable — nothing moves, a fresh copy suffices. *)
let migratable (nf : Nf.t) =
  match derive nf with
  | Sequential -> false
  | Replicated_readonly -> nf.fresh <> None
  | Shared_nothing -> eligible nf && nf.extract <> None

(* Direct NF successors of an NF in a compiled plan: the To_nf hops of
   its forwarding-table actions, with merger hops resolved through the
   merge table (a merged packet continues into the merger's [next]
   actions, possibly through further mergers). The nil-target merger
   counts too — a dropping NF's nil still completes that merge and
   releases its continuation. *)
let successors (plan : Tables.plan) =
  let merges = Hashtbl.create 8 in
  List.iter
    (fun (m : Tables.merge_spec) -> Hashtbl.replace merges m.id m)
    plan.merges;
  fun name ->
    match List.find_opt (fun (e : Tables.nf_entry) -> e.nf = name) plan.nf_entries with
    | None -> []
    | Some e ->
        let seen_mergers = Hashtbl.create 4 in
        let acc = ref [] in
        let rec hop = function
          | Tables.To_nf n -> acc := n :: !acc
          | Tables.Deliver -> ()
          | Tables.To_merger id ->
              if not (Hashtbl.mem seen_mergers id) then begin
                Hashtbl.add seen_mergers id ();
                match Hashtbl.find_opt merges id with
                | Some (m : Tables.merge_spec) -> actions m.next
                | None -> ()
              end
        and actions l =
          List.iter
            (function
              | Tables.Copy _ -> ()
              | Tables.Distribute { targets; _ } -> List.iter hop targets)
            l
        in
        actions e.actions;
        (match e.nil_target with Some id -> hop (Tables.To_merger id) | None -> ());
        !acc

(* Sharding preserves per-flow order but not the cross-flow
   interleaving, so every core downstream of a sharded NF observes a
   different global arrival order. Shared_nothing and
   Replicated_readonly consumers are insensitive to that by declaration
   (per-flow, commutative or immutable state); a Sequential NF is not —
   a FIFO cache evicts different keys, a sequence counter stamps
   different nonces, a token bucket polices different packets. An NF
   may therefore only shard when no Sequential-strategy NF is reachable
   downstream of it in its service graph. *)
let shardable ~(plan : Tables.plan) ~nf_of name =
  eligible (nf_of name)
  &&
  let succ = successors plan in
  let seen = Hashtbl.create 8 in
  let ok = ref true in
  let rec go n =
    List.iter
      (fun m ->
        if !ok && not (Hashtbl.mem seen m) then begin
          Hashtbl.add seen m ();
          if derive (nf_of m) = Sequential then ok := false else go m
        end)
      (succ n)
  in
  go name;
  !ok
