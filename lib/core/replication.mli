(** Replication-strategy analysis over state-access profiles.

    Maestro (Pereira et al., "Automatic Parallelization of Software
    Network Functions") showed that classifying an NF's state accesses
    is enough to pick a safe intra-NF parallelization strategy
    automatically. This pass does the same over the declared
    {!Nfp_nf.State_access} profiles: the orchestrator asks it whether a
    bottleneck NF may be RSS-sharded across cores, and the differential
    suite (test_parallel_nf) holds the result to Khalid & Akella's
    correctness bar — a replicated run must stay trace-equivalent
    (delivery multisets + merged state digests) to the unreplicated
    one. *)

type strategy =
  | Shared_nothing
      (** replicate; an RSS stage pins each flow to one replica, and
          replica states recombine through {!Nfp_nf.Nf.t.merge} *)
  | Replicated_readonly
      (** replicate freely; state (if any) is immutable, so replicas
          are interchangeable and nothing needs merging *)
  | Sequential  (** unsafe to replicate; keep the single instance *)

val of_profile : Nfp_nf.State_access.t -> strategy
(** Strategy for a declared profile: any [Global]+[General] component
    forces [Sequential]; otherwise any written component (commutative
    anywhere, or general writes confined to per-flow scope) yields
    [Shared_nothing]; all-read-only yields [Replicated_readonly]. *)

val derive : Nfp_nf.Nf.t -> strategy
(** {!of_profile} of the NF's declared profile; an NF that declares no
    profile ([state_access = None]) is [Sequential] — silence is not
    evidence of safety. *)

val eligible : Nfp_nf.Nf.t -> bool
(** Whether the orchestrator may actually instantiate extra replicas:
    the derived strategy must allow it {e and} the NF must supply the
    machinery — [fresh] for both replicating strategies, plus
    [merge]/[snapshot]/[restore] for [Shared_nothing]. *)

val migratable : Nfp_nf.Nf.t -> bool
(** Whether a replica's per-flow state can be moved to a peer at
    runtime: {!eligible} plus an [extract] half ([Shared_nothing]), or
    just [fresh] ([Replicated_readonly], where replicas are
    interchangeable and nothing needs to move). [Sequential] NFs never
    migrate. Gates the elastic controller: an NF may only scale
    out/in live when it is both [shardable] in its plan and
    [migratable]. *)

val shardable :
  plan:Tables.plan -> nf_of:(string -> Nfp_nf.Nf.t) -> string -> bool
(** The deployment-time verdict for one NF of a compiled plan:
    {!eligible}, {e and} no [Sequential]-strategy NF is reachable
    downstream of it (through NF hops and merger continuations).
    Sharding keeps per-flow order but changes the cross-flow
    interleaving every downstream core observes — invisible to
    shardable consumers, behaviour-changing for order-sensitive ones
    (FIFO caches, sequence counters, token buckets), so an
    order-sensitive consumer pins its whole upstream cone. *)

val to_string : strategy -> string
val pp : Format.formatter -> strategy -> unit
