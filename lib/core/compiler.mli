(** Policy-to-service-graph compilation — paper §4.4.

    The full pipeline: validate the policy, transform it into IRs, build
    micrographs, and merge them into the final service graph with
    [Position]-pinned NFs at the head/tail and independent micrographs
    (and free NFs) in parallel. *)

type output = {
  graph : Graph.t;
  ir : Ir.t;
  micrographs : Micrograph.t list;
  priority_pairs : (string * string) list;
      (** (hi, lo) pairs from Priority rules — the dataplane resolves
          drop conflicts in favour of hi *)
  admit_class : int;
      (** the chain's admission priority class from its Admit rule
          (0 — best effort — when the policy has none): under overload
          the admission controller sheds lower classes first *)
  warnings : string list;
}

val compile :
  ?field_sensitive_write_read:bool ->
  Nfp_policy.Rule.policy ->
  (output, string list) result
(** [Error conflicts] when validation rejects the policy; conflict
    strings come from {!Nfp_policy.Validate}. *)

val compile_text :
  ?field_sensitive_write_read:bool -> string -> (output, string list) result
(** Parse then compile. *)

val explain : output -> string
(** A human-readable account of the compilation: the verdict and
    reasoning for every rule pair (which action pair blocks
    parallelism, which conflicts force copies), plus positions, free
    NFs and the resulting graph. *)

val sequential_graph : Nfp_policy.Rule.policy -> (Graph.t, string) result
(** The unoptimized baseline: NFs chained in the policy's sequential
    order (Position first, then Order-derived topological order, free
    NFs last) — what a traditional orchestrator would deploy, used as
    the comparison chain in the evaluation. *)
