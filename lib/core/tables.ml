open Nfp_nf
open Nfp_packet

type hop = To_nf of string | To_merger of int | Deliver

type action =
  | Copy of { src_version : int; dst_version : int; full : bool }
  | Distribute of { version : int; targets : hop list }

type deliverer = D_nf of string | D_merger of int

type expect = { deliverer : deliverer; version : int; members : string list }

type merge_spec = {
  id : int;
  result_version : int;
  expected : expect list;
  ops : Merge_op.t list;
  drop_policy : [ `Any | `Priority_to of deliverer ];
  next : action list;
}

type nf_entry = {
  nf : string;
  version : int;
  actions : action list;
  nil_target : int option;
}

type plan = {
  graph : Graph.t;
  classifier_actions : action list;
  nf_entries : nf_entry list;
  merges : merge_spec list;
  version_count : int;
  header_copies : int;
  full_copies : int;
  serial_order : string list;
  priority : int;
}

exception Plan_error of string

(* Merge adjacent Distribute actions on the same version so FT rows read
   like the paper's "Distribute(v1, [4, 6])". Copies stay in place and
   ahead of the distributes that reference their destination. *)
let simplify actions =
  let copies = List.filter (function Copy _ -> true | Distribute _ -> false) actions in
  let dist =
    List.filter_map
      (function Distribute { version; targets } -> Some (version, targets) | Copy _ -> None)
      actions
  in
  let merged =
    List.fold_left
      (fun acc (version, targets) ->
        match List.assoc_opt version acc with
        | Some prev -> (version, prev @ targets) :: List.remove_assoc version acc
        | None -> acc @ [ (version, targets) ])
      [] dist
  in
  copies @ List.map (fun (version, targets) -> Distribute { version; targets }) merged

type branch_info = {
  term : Graph.t;
  reads : Field.t list;
  writes : Field.t list;
  add_rm : bool;
  uses_payload : bool;
}

let branch_info profile_of term =
  let profile =
    Action.normalize (List.concat_map profile_of (Graph.nfs term))
  in
  let reads = Action.reads profile and writes = Action.writes profile in
  {
    term;
    reads;
    writes;
    add_rm = Action.adds_or_removes_headers profile;
    (* Length readers need the true length, which a header-only copy
       destroys, so they count as payload users for copy sizing. *)
    uses_payload =
      List.exists (fun f -> f = Field.Payload || f = Field.Len) (reads @ writes);
  }

let intersects a b = List.exists (fun x -> List.mem x b) a

let branch_needs_copy ~copy_mode index infos info =
  match copy_mode with
  | `Copy_all -> index > 0
  | `Share_all -> false
  | `Auto ->
      info.add_rm
      || List.exists
           (fun (j, other) ->
             j <> index && intersects info.writes (other.reads @ other.writes))
           (List.mapi (fun j o -> (j, o)) infos)

let plan ?(copy_mode = `Auto) ?(priority_pairs = []) ?(priority = 0) ~profile_of graph =
  match Graph.well_formed graph with
  | Error e -> Error e
  | Ok () -> (
      try
        (* Profiles must resolve for every NF up front. *)
        List.iter
          (fun n ->
            match profile_of n with
            | _ -> ()
            | exception Not_found -> raise (Plan_error (Printf.sprintf "no profile for NF %S" n)))
          (Graph.nfs graph);
        let entries : (string, nf_entry) Hashtbl.t = Hashtbl.create 16 in
        let merges = ref [] in
        let next_version = ref 1 in
        let next_merge = ref 0 in
        let header_copies = ref 0 and full_copies = ref 0 in
        let fresh_version () =
          incr next_version;
          if !next_version > 16 then
            raise (Plan_error "graph needs more than 16 packet versions (4-bit limit)");
          !next_version
        in
        (* Returns the actions that inject a packet into [term] and the
           identity of whoever finally hands the packet onward. *)
        let rec build term ~version ~enclosing ~next : action list * deliverer * string list =
          match term with
          | Graph.Nf name ->
              Hashtbl.replace entries name
                { nf = name; version; actions = simplify next; nil_target = enclosing };
              ([ Distribute { version; targets = [ To_nf name ] } ], D_nf name, [ name ])
          | Graph.Seq ts ->
              (* Wire back to front: each element's FT points at the next
                 element's entry actions; the Seq's deliverer is the last
                 element's. *)
              let rec wire = function
                | [] -> raise (Plan_error "empty Seq")
                | [ last ] -> build last ~version ~enclosing ~next
                | t :: rest ->
                    let rest_entry, last_deliverer, rest_serial = wire rest in
                    let entry, _, serial = build t ~version ~enclosing ~next:rest_entry in
                    (entry, last_deliverer, serial @ rest_serial)
              in
              wire ts
          | Graph.Par branches ->
              let id = !next_merge in
              incr next_merge;
              let infos = List.map (branch_info profile_of) branches in
              let assigned =
                List.mapi
                  (fun i info ->
                    if branch_needs_copy ~copy_mode i infos info then begin
                      let v = fresh_version () in
                      if info.uses_payload then incr full_copies else incr header_copies;
                      (info, v, true)
                    end
                    else (info, version, false))
                  infos
              in
              let copy_actions =
                List.filter_map
                  (fun (info, v, copied) ->
                    if copied then
                      Some (Copy { src_version = version; dst_version = v; full = info.uses_payload })
                    else None)
                  assigned
              in
              let ops =
                List.concat_map
                  (fun (info, v, copied) ->
                    if not copied then []
                    else
                      List.map
                        (fun f -> Merge_op.Modify { dst = version; src = v; field = f })
                        (* Length is restored by the payload transplant;
                           no merge op of its own. *)
                        (List.sort Field.compare
                           (List.filter (fun f -> f <> Field.Len) info.writes))
                      @ if info.add_rm then [ Merge_op.Align_headers { dst = version; src = v } ] else [])
                  assigned
              in
              let built =
                List.map
                  (fun (info, v, copied) ->
                    let entry, deliverer, serial =
                      build info.term ~version:v ~enclosing:(Some id)
                        ~next:[ Distribute { version = v; targets = [ To_merger id ] } ]
                    in
                    (entry, deliverer, v, info, copied, serial))
                  assigned
              in
              let expected =
                List.map
                  (fun (_, d, v, info, _, _) ->
                    { deliverer = d; version = v; members = Graph.nfs info.term })
                  built
              in
              let drop_policy =
                let branch_of nf_name =
                  List.find_map
                    (fun (_, d, _, info, _, _) ->
                      if Graph.contains info.term nf_name then Some d else None)
                    built
                in
                let winners =
                  List.filter_map
                    (fun (hi, lo) ->
                      match (branch_of hi, branch_of lo) with
                      | Some bhi, Some blo when bhi <> blo -> Some bhi
                      | _ -> None)
                    priority_pairs
                in
                (* The winning branch is one that never loses a pair. *)
                let losers =
                  List.filter_map
                    (fun (hi, lo) ->
                      match (branch_of hi, branch_of lo) with
                      | Some bhi, Some blo when bhi <> blo -> Some blo
                      | _ -> None)
                    priority_pairs
                in
                match List.filter (fun w -> not (List.mem w losers)) winners with
                | w :: _ -> `Priority_to w
                | [] -> `Any
              in
              merges :=
                {
                  id;
                  result_version = version;
                  expected;
                  ops;
                  drop_policy;
                  next = simplify next;
                }
                :: !merges;
              let entry =
                simplify
                  (copy_actions @ List.concat_map (fun (e, _, _, _, _, _) -> e) built)
              in
              (* The serialization this parallel block is equivalent to:
                 buffer-sharing branches first (they observe the pristine
                 primary copy), then copy branches in merge-op order —
                 and dropping branches last of all, because a nil packet
                 only discards the merge result: every sibling branch
                 still processes the packet, exactly as if the dropper
                 had run at the end. *)
              let branch_drops (info : branch_info) =
                List.exists
                  (fun n -> Action.may_drop (profile_of n))
                  (Graph.nfs info.term)
              in
              let ordered =
                List.stable_sort
                  (fun (_, _, v1, i1, c1, _) (_, _, v2, i2, c2, _) ->
                    compare (branch_drops i1, c1, v1) (branch_drops i2, c2, v2))
                  built
              in
              let serial = List.concat_map (fun (_, _, _, _, _, s) -> s) ordered in
              (entry, D_merger id, serial)
        in
        let classifier_actions, _, serial_order =
          build graph ~version:1 ~enclosing:None
            ~next:[ Distribute { version = 1; targets = [ Deliver ] } ]
        in
        Ok
          {
            graph;
            classifier_actions = simplify classifier_actions;
            nf_entries = Hashtbl.fold (fun _ e acc -> e :: acc) entries [];
            merges = List.rev !merges;
            version_count = !next_version;
            header_copies = !header_copies;
            full_copies = !full_copies;
            serial_order;
            priority;
          }
      with Plan_error e -> Error e)

let of_output ?copy_mode (output : Compiler.output) =
  plan ?copy_mode ~priority_pairs:output.priority_pairs
    ~priority:output.admit_class ~profile_of:output.ir.Ir.profile_of output.graph

let find_nf plan name = List.find_opt (fun e -> e.nf = name) plan.nf_entries

let find_merge plan id = List.find_opt (fun m -> m.id = id) plan.merges

let copies_bytes_per_packet plan ~packet_bytes ~header_bytes =
  (plan.header_copies * header_bytes) + (plan.full_copies * packet_bytes)

let pp_hop fmt = function
  | To_nf n -> Format.pp_print_string fmt n
  | To_merger i -> Format.fprintf fmt "merger#%d" i
  | Deliver -> Format.pp_print_string fmt "output"

let pp_action fmt = function
  | Copy { src_version; dst_version; full } ->
      Format.fprintf fmt "copy(v%d, v%d%s)" src_version dst_version
        (if full then ", full" else "")
  | Distribute { version; targets } ->
      Format.fprintf fmt "distribute(v%d, [%a])" version
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_hop)
        targets

let pp_deliverer fmt = function
  | D_nf n -> Format.pp_print_string fmt n
  | D_merger i -> Format.fprintf fmt "merger#%d" i

let pp fmt plan =
  Format.fprintf fmt "@[<v>graph: %a@," Graph.pp plan.graph;
  Format.fprintf fmt "classifier: @[<h>%a@]@,"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp_action)
    plan.classifier_actions;
  List.iter
    (fun e ->
      Format.fprintf fmt "FT %s (v%d): @[<h>%a@]%s@," e.nf e.version
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp_action)
        e.actions
        (match e.nil_target with
        | Some m -> Printf.sprintf "  [nil -> merger#%d]" m
        | None -> ""))
    (List.sort (fun a b -> compare a.nf b.nf) plan.nf_entries);
  List.iter
    (fun m ->
      Format.fprintf fmt "merger#%d: expects %d {%a} -> v%d; ops [%a]; next @[<h>%a@]@," m.id
        (List.length m.expected)
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
           (fun f e -> Format.fprintf f "%a:v%d" pp_deliverer e.deliverer e.version))
        m.expected m.result_version
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") Merge_op.pp)
        m.ops
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp_action)
        m.next)
    plan.merges;
  Format.fprintf fmt "versions: %d, header copies: %d, full copies: %d@," plan.version_count
    plan.header_copies plan.full_copies;
  Format.fprintf fmt "equivalent to sequential order: %s@]"
    (String.concat " -> " plan.serial_order)
