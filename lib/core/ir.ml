open Nfp_nf
open Nfp_policy

type position = { nf : string; place : Rule.place }

type pair = {
  earlier : string;
  later : string;
  source : [ `Order | `Priority ];
  parallelizable : bool;
  conflicting_actions : (Action.t * Action.t) list;
}

type t = {
  positions : position list;
  pairs : pair list;
  free : string list;
  profile_of : string -> Action.t list;
}

(* Orange conflicts even when a gray pair exists: Priority rules force
   parallelism, so copying requirements must still be collected. *)
let forced_conflicts ?field_sensitive_write_read p1 p2 =
  let conflicts = ref [] in
  List.iter
    (fun a1 ->
      List.iter
        (fun a2 ->
          match Dependency.action_pair ?field_sensitive_write_read a1 a2 with
          | Dependency.Parallel_with_copy -> conflicts := (a1, a2) :: !conflicts
          | Dependency.Parallel_no_copy | Dependency.Not_parallelizable -> ())
        p2)
    p1;
  List.rev !conflicts

let transform ?field_sensitive_write_read (policy : Rule.policy) =
  let resolve name =
    let kind =
      match List.assoc_opt name policy.bindings with Some k -> Some k | None -> Some name
    in
    match kind with
    | Some k -> ( match Registry.find k with Some e -> Some e.profile | None -> None)
    | None -> None
  in
  let missing =
    List.filter (fun n -> resolve n = None) (Rule.nfs_of_rules policy.rules)
  in
  match missing with
  | n :: _ -> Error (Printf.sprintf "NF %S resolves to no registered profile" n)
  | [] ->
      let profile_of name =
        match resolve name with Some p -> p | None -> raise Not_found
      in
      let positions =
        List.filter_map
          (function Rule.Position (nf, place) -> Some { nf; place } | _ -> None)
          policy.rules
      in
      let pairs =
        List.filter_map
          (function
            | Rule.Order (a, b) ->
                let r =
                  Parallelism.analyze ?field_sensitive_write_read (profile_of a)
                    (profile_of b)
                in
                Some
                  {
                    earlier = a;
                    later = b;
                    source = `Order;
                    parallelizable = r.Parallelism.parallelizable;
                    conflicting_actions = r.Parallelism.conflicting_actions;
                  }
            | Rule.Priority (hi, lo) ->
                Some
                  {
                    earlier = lo;
                    later = hi;
                    source = `Priority;
                    parallelizable = true;
                    conflicting_actions =
                      forced_conflicts ?field_sensitive_write_read (profile_of lo)
                        (profile_of hi);
                  }
            | Rule.Position _ | Rule.Admit _ -> None)
          policy.rules
      in
      let mentioned = Rule.nfs_of_rules policy.rules in
      let free =
        List.filter_map
          (fun (name, _) -> if List.mem name mentioned then None else Some name)
          policy.bindings
      in
      Ok { positions; pairs; free; profile_of }

let pp_pair fmt p =
  Format.fprintf fmt "%s %s %s [%s%s]" p.earlier
    (match p.source with `Order -> "before" | `Priority -> "<prio")
    p.later
    (if p.parallelizable then "parallel" else "sequential")
    (if p.conflicting_actions <> [] then ", copy" else "")

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun { nf; place } ->
      Format.fprintf fmt "position %s %s@," nf
        (match place with Rule.First -> "first" | Rule.Last -> "last"))
    t.positions;
  List.iter (fun p -> Format.fprintf fmt "%a@," pp_pair p) t.pairs;
  List.iter (fun n -> Format.fprintf fmt "free %s@," n) t.free;
  Format.fprintf fmt "@]"
