(** Dataplane table generation — paper §4.4.3 and Fig. 4.

    Compiles a service graph into the artifacts the infrastructure
    executes: classifier actions (the CT row for a flow), per-NF
    forwarding-table entries (FT), and merge specifications (AT totals
    plus merge operations). Versions are 1-based; version 1 is the
    primary copy that threads the graph and becomes the output.

    Copy placement implements the paper's resource optimizations:
    branches whose writes conflict with no sibling share the primary
    buffer (Dirty Memory Reusing); branches that need a copy get a
    header-only copy unless they read or write the payload
    (Header-Only Copying). The evaluation's rig setups (Fig. 10) are
    expressible through [copy_mode]: [`Copy_all] forces a copy for every
    non-first branch, [`Share_all] forces reference sharing with no
    copies at all (a performance rig, not a semantics-preserving
    deployment), and the default [`Auto] applies the dependency
    analysis. *)

open Nfp_nf

type hop =
  | To_nf of string
  | To_merger of int
  | Deliver  (** transmit out of the graph *)

type action =
  | Copy of { src_version : int; dst_version : int; full : bool }
      (** header-only unless [full] *)
  | Distribute of { version : int; targets : hop list }

type deliverer = D_nf of string | D_merger of int

type expect = {
  deliverer : deliverer;  (** the branch's terminal: who hands the copy over *)
  version : int;  (** version that branch processes *)
  members : string list;  (** every NF inside the branch (nil attribution) *)
}

type merge_spec = {
  id : int;
  result_version : int;  (** the version that continues after merging *)
  expected : expect list;  (** one entry per parallel branch *)
  ops : Merge_op.t list;  (** applied in order; later = higher priority *)
  drop_policy : [ `Any | `Priority_to of deliverer ];
      (** [`Any]: any nil drops the packet (sequential semantics);
          [`Priority_to d]: [d]'s verdict wins (Priority rules) *)
  next : action list;  (** executed on the merged packet *)
}

type nf_entry = {
  nf : string;
  version : int;  (** version this NF processes *)
  actions : action list;  (** the NF runtime's FT row *)
  nil_target : int option;
      (** merger to send a nil packet to when the NF drops *)
}

type plan = {
  graph : Graph.t;
  classifier_actions : action list;
  nf_entries : nf_entry list;
  merges : merge_spec list;
  version_count : int;  (** versions in use, including version 1 *)
  header_copies : int;  (** header-only copies made per packet *)
  full_copies : int;
  serial_order : string list;
      (** the sequential NF order this plan's parallel execution is
          equivalent to: within a parallel block, buffer-sharing
          branches act before copy-carrying branches (whose merge
          operations apply last and therefore win). The result
          correctness principle is stated against this serialization. *)
  priority : int;
      (** the chain's admission priority class (from the policy's Admit
          rule; 0 = best effort): under overload the admission
          controller sheds lower classes first *)
}

val plan :
  ?copy_mode:[ `Auto | `Copy_all | `Share_all ] ->
  ?priority_pairs:(string * string) list ->
  ?priority:int ->
  profile_of:(string -> Action.t list) ->
  Graph.t ->
  (plan, string) result
(** [priority_pairs] are (hi, lo) instance names from Priority rules;
    [priority] (default 0) is the chain's admission class.
    Errors: malformed graph, unknown NF profile, more than 16 versions
    (the 4-bit metadata limit, paper Fig. 5). *)

val of_output :
  ?copy_mode:[ `Auto | `Copy_all | `Share_all ] -> Compiler.output -> (plan, string) result
(** Plan for a compiler result, carrying its priority pairs and
    admission class. *)

val find_nf : plan -> string -> nf_entry option

val find_merge : plan -> int -> merge_spec option

val copies_bytes_per_packet : plan -> packet_bytes:int -> header_bytes:int -> int
(** Extra bytes materialized per packet by copies — the numerator of
    the paper's resource-overhead ratio (§6.3.1). *)

val pp : Format.formatter -> plan -> unit
