(** Policy sanity checking and conflict detection.

    The paper (§3) notes that hand-written rules may conflict — e.g.
    opposite [Order] rules, or one NF assigned both [first] and [last]
    — and leaves detection to future work. This module implements it:
    structural validation against the NF registry plus detection of
    contradictory rules. *)

(** Conflicts name both the NFs involved and the 1-based index of the
    offending rule in [policy.rules] — the operator-facing rendering
    ({!pp_conflict}, {!suggest}) points at the line to edit. Binding
    problems carry the binding's instance name instead of an index. *)
type conflict =
  | Unknown_nf of { name : string; rule : int }
      (** [rule] is the first rule mentioning the unbound name *)
  | Unknown_kind of string * string  (** binding uses an unregistered NF type *)
  | Duplicate_binding of string
  | Order_cycle of { names : string list; rules : int list }
      (** NF names forming a precedence cycle, with every rule whose
          edge lies inside the cycle *)
  | Priority_both_ways of { a : string; b : string; rules : int * int }
  | Position_conflict of { name : string; rules : int * int }
      (** same NF pinned first and last, by the two given rules *)
  | Position_order_conflict of { pinned : string; other : string; rule : int }
      (** order rule [rule] contradicts first/last pinning, e.g.
          [Position(a, last)] with [Order(a, before, b)] *)
  | Self_rule of { name : string; rule : int }  (** rule relates an NF to itself *)
  | Admission_conflict of { classes : int * int; rules : int * int }
      (** two [Admit] rules declare different admission classes *)
  | Admission_negative of { cls : int; rule : int }
      (** an [Admit] rule declares a negative class *)

val pp_conflict : Format.formatter -> conflict -> unit

val check : Rule.policy -> conflict list
(** All detected conflicts; the empty list means the policy is
    compilable. Order cycles are reported once per strongly connected
    component. Priority edges participate in cycle detection with
    their [hi] NF treated as logically later (the paper converts a
    parallelizable [Order(a, before, b)] into [Priority(b > a)]). *)

val is_valid : Rule.policy -> bool

val suggest : conflict -> string
(** A remediation hint for the operator — the paper defers conflict
    resolution to future work; this offers the obvious fixes. *)
