type place = First | Last

type t =
  | Order of string * string
  | Priority of string * string
  | Position of string * place
  | Admit of int

type policy = { bindings : (string * string) list; rules : t list }

let nfs_of_rule = function
  | Order (a, b) | Priority (a, b) -> [ a; b ]
  | Position (a, _) -> [ a ]
  | Admit _ -> []

(* The policy's admission class under overload: the first Admit rule
   wins (Validate flags disagreeing duplicates). None means the chain
   never declared an SLO — class 0, best effort. *)
let admit_class rules =
  List.find_map (function Admit c -> Some c | _ -> None) rules

let nfs_of_rules rules =
  let seen = Hashtbl.create 16 in
  List.concat_map nfs_of_rule rules
  |> List.filter (fun n ->
         if Hashtbl.mem seen n then false
         else begin
           Hashtbl.add seen n ();
           true
         end)

let of_chain names =
  let rec pairs = function
    | a :: (b :: _ as rest) -> Order (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  pairs names

let equal = ( = )

let pp fmt = function
  | Order (a, b) -> Format.fprintf fmt "Order(%s, before, %s)" a b
  | Priority (a, b) -> Format.fprintf fmt "Priority(%s > %s)" a b
  | Position (a, First) -> Format.fprintf fmt "Position(%s, first)" a
  | Position (a, Last) -> Format.fprintf fmt "Position(%s, last)" a
  | Admit c -> Format.fprintf fmt "Admit(%d)" c

let pp_policy fmt p =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (name, kind) -> Format.fprintf fmt "NF(%s, %s)@," name kind) p.bindings;
  List.iter (fun r -> Format.fprintf fmt "%a@," pp r) p.rules;
  Format.fprintf fmt "@]"
