(** NFP policy rules (paper §3).

    A policy is a list of rules over NF instance names plus a binding of
    each name to its NF type (whose action profile lives in the
    registry). The three rule forms are exactly the paper's:

    - [Order (a, b)] — "Order(a, before, b)": desired execution order;
      the orchestrator may still parallelize the pair if the dependency
      analysis allows (§4.1).
    - [Priority (hi, lo)] — "Priority(hi > lo)": run in parallel,
      resolving action conflicts in favour of [hi].
    - [Position (nf, place)] — pin an NF to the head or tail of the
      graph.

    One rule form extends the paper for the overload control plane:

    - [Admit cls] — the chain's admission priority class (an SLO
      intent): under pressure the admission controller sheds lower
      classes first. 0 (the default when no Admit rule is present) is
      best-effort; higher is more important. The policy file syntax
      also accepts the aliases [bronze]/[silver]/[gold] for 0/1/2. *)

type place = First | Last

type t =
  | Order of string * string
  | Priority of string * string
  | Position of string * place
  | Admit of int

type policy = {
  bindings : (string * string) list;  (** instance name → NF type *)
  rules : t list;
}

val nfs_of_rules : t list -> string list
(** Every NF name mentioned, in first-appearance order, deduplicated. *)

val admit_class : t list -> int option
(** The first [Admit] rule's class, if any ({!Validate} flags
    disagreeing duplicates). [None] means best-effort (class 0). *)

val of_chain : string list -> t list
(** Translate a traditional sequential chain [n1; n2; …] into Order
    rules for neighbouring NFs (paper §3: sequential descriptions are
    converted automatically, then parallelism is explored). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val pp_policy : Format.formatter -> policy -> unit
