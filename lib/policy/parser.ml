let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = '-'

let is_ident s = s <> "" && String.for_all is_ident_char s

(* Split "Keyword(arg, arg, ...)" into (keyword, args). *)
let split_call line =
  match String.index_opt line '(' with
  | None -> Error "expected 'Keyword(...)'"
  | Some lparen ->
      let keyword = String.trim (String.sub line 0 lparen) in
      let rest = String.sub line (lparen + 1) (String.length line - lparen - 1) in
      let rest = String.trim rest in
      if String.length rest = 0 || rest.[String.length rest - 1] <> ')' then
        Error "missing closing parenthesis"
      else
        let inner = String.sub rest 0 (String.length rest - 1) in
        let args = String.split_on_char ',' inner |> List.map String.trim in
        Ok (String.lowercase_ascii keyword, args)

let parse_priority_args args =
  (* Priority takes "a > b" either as one argument or via commas. *)
  match args with
  | [ one ] -> (
      match String.index_opt one '>' with
      | Some i ->
          let a = String.trim (String.sub one 0 i) in
          let b = String.trim (String.sub one (i + 1) (String.length one - i - 1)) in
          Ok (a, b)
      | None -> Error "Priority expects 'Priority(a > b)'")
  | [ a; b ] -> Ok (a, b)
  | _ -> Error "Priority expects two NFs"

let check_ident name =
  if is_ident name then Ok name
  else Error (Printf.sprintf "invalid NF name %S" name)

let ( let* ) = Result.bind

let parse_rule line =
  let* keyword, args = split_call (String.trim line) in
  let args =
    match (keyword, args) with
    | "order", [ a; kw; b ] when String.lowercase_ascii kw = "before" -> [ a; b ]
    | _ -> args
  in
  match (keyword, args) with
  | "order", [ a; b ] ->
      let* a = check_ident a in
      let* b = check_ident b in
      Ok (Rule.Order (a, b))
  | "order", _ -> Error "Order expects 'Order(a, before, b)'"
  | "priority", args ->
      let* a, b = parse_priority_args args in
      let* a = check_ident a in
      let* b = check_ident b in
      Ok (Rule.Priority (a, b))
  | "position", [ a; place ] -> (
      let* a = check_ident a in
      match String.lowercase_ascii place with
      | "first" -> Ok (Rule.Position (a, Rule.First))
      | "last" -> Ok (Rule.Position (a, Rule.Last))
      | _ -> Error "Position expects 'first' or 'last'")
  | "position", _ -> Error "Position expects 'Position(nf, first|last)'"
  | "admit", [ cls ] -> (
      (* SLO aliases map onto the numeric ladder; arbitrary non-negative
         classes are allowed for policies with more than three tiers. *)
      match String.lowercase_ascii cls with
      | "bronze" -> Ok (Rule.Admit 0)
      | "silver" -> Ok (Rule.Admit 1)
      | "gold" -> Ok (Rule.Admit 2)
      | s -> (
          match int_of_string_opt s with
          | Some c when c >= 0 -> Ok (Rule.Admit c)
          | _ -> Error "Admit expects 'Admit(bronze|silver|gold|<class>)'"))
  | "admit", _ -> Error "Admit expects 'Admit(bronze|silver|gold|<class>)'"
  | kw, _ -> Error (Printf.sprintf "unknown rule %S" kw)

type line_item =
  | L_binding of string * string
  | L_rules of Rule.t list

let parse_line line =
  let* keyword, args = split_call line in
  match (keyword, args) with
  | "nf", [ name; kind ] ->
      let* name = check_ident name in
      let* kind = check_ident kind in
      Ok (L_binding (name, kind))
  | "nf", _ -> Error "NF expects 'NF(name, Type)'"
  | "chain", names ->
      let* names =
        List.fold_left
          (fun acc n ->
            let* acc = acc in
            let* n = check_ident n in
            Ok (n :: acc))
          (Ok []) names
      in
      let names = List.rev names in
      if List.length names < 2 then Error "Chain expects at least two NFs"
      else Ok (L_rules (Rule.of_chain names))
  | _ ->
      let* rule = parse_rule line in
      Ok (L_rules [ rule ])

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno bindings rules = function
    | [] -> Ok { Rule.bindings = List.rev bindings; rules = List.rev rules }
    | line :: rest -> (
        let line = String.trim (strip_comment line) in
        if line = "" then go (lineno + 1) bindings rules rest
        else
          match parse_line line with
          | Ok (L_binding (name, kind)) -> go (lineno + 1) ((name, kind) :: bindings) rules rest
          | Ok (L_rules rs) -> go (lineno + 1) bindings (List.rev_append rs rules) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go 1 [] [] lines

let to_string policy = Format.asprintf "%a" Rule.pp_policy policy
