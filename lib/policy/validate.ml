(* Conflicts carry the offending NF names AND the 1-based index of the
   rule (in [policy.rules] order) that triggered them, so an operator
   editing a policy file can jump straight to the bad line. Binding
   problems name the binding instead — NF(...) lines are keyed by
   instance name, not position. *)

type conflict =
  | Unknown_nf of { name : string; rule : int }
  | Unknown_kind of string * string
  | Duplicate_binding of string
  | Order_cycle of { names : string list; rules : int list }
  | Priority_both_ways of { a : string; b : string; rules : int * int }
  | Position_conflict of { name : string; rules : int * int }
  | Position_order_conflict of { pinned : string; other : string; rule : int }
  | Self_rule of { name : string; rule : int }
  | Admission_conflict of { classes : int * int; rules : int * int }
  | Admission_negative of { cls : int; rule : int }

let pp_conflict fmt = function
  | Unknown_nf { name; rule } ->
      Format.fprintf fmt "rule #%d references unknown NF %S" rule name
  | Unknown_kind (n, k) -> Format.fprintf fmt "NF %S has unregistered type %S" n k
  | Duplicate_binding n -> Format.fprintf fmt "NF %S bound more than once" n
  | Order_cycle { names; rules } ->
      Format.fprintf fmt "precedence cycle: %s (rules %s)"
        (String.concat " -> " (names @ [ List.hd names ]))
        (String.concat ", " (List.map (Printf.sprintf "#%d") rules))
  | Priority_both_ways { a; b; rules = i, j } ->
      Format.fprintf fmt "rules #%d and #%d set conflicting priorities between %S and %S" i
        j a b
  | Position_conflict { name; rules = i, j } ->
      Format.fprintf fmt "rules #%d and #%d pin NF %S both first and last" i j name
  | Position_order_conflict { pinned; other; rule } ->
      Format.fprintf fmt "rule #%d orders %S against %S, contradicting its pinned position"
        rule other pinned
  | Self_rule { name; rule } ->
      Format.fprintf fmt "rule #%d relates NF %S to itself" rule name
  | Admission_conflict { classes = a, b; rules = i, j } ->
      Format.fprintf fmt
        "rules #%d and #%d declare conflicting admission classes (%d vs %d)" i j a b
  | Admission_negative { cls; rule } ->
      Format.fprintf fmt "rule #%d declares a negative admission class (%d)" rule cls

(* Tarjan's strongly-connected components over the precedence digraph. *)
let sccs nodes edges =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let successors n = List.filter_map (fun (a, b) -> if a = n then Some b else None) edges in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec popped acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if w = v then w :: acc else popped (w :: acc)
      in
      result := popped [] :: !result
    end
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strongconnect n) nodes;
  !result

let check (policy : Rule.policy) =
  let conflicts = ref [] in
  let add c = conflicts := c :: !conflicts in
  (* 1-based rule indexes, matching the order an operator reads them in. *)
  let irules = List.mapi (fun i r -> (i + 1, r)) policy.rules in
  (* Bindings: duplicates and unknown registry types. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, kind) ->
      if Hashtbl.mem seen name then add (Duplicate_binding name) else Hashtbl.add seen name ();
      if Nfp_nf.Registry.find kind = None then add (Unknown_kind (name, kind)))
    policy.bindings;
  (* Name resolution: a name is known if bound, or if it is itself a
     registered NF type (the paper writes Order(VPN, before, Monitor)
     directly over type names). Report each unknown name once, at the
     first rule that mentions it. *)
  let known name =
    List.mem_assoc name policy.bindings || Nfp_nf.Registry.find name <> None
  in
  let reported = Hashtbl.create 16 in
  List.iter
    (fun (i, r) ->
      let mentioned =
        match r with
        | Rule.Order (a, b) | Rule.Priority (a, b) -> [ a; b ]
        | Rule.Position (n, _) -> [ n ]
        | Rule.Admit _ -> []
      in
      List.iter
        (fun n ->
          if (not (known n)) && not (Hashtbl.mem reported n) then begin
            Hashtbl.add reported n ();
            add (Unknown_nf { name = n; rule = i })
          end)
        mentioned)
    irules;
  (* Self rules. *)
  List.iter
    (fun (i, r) ->
      match r with
      | Rule.Order (a, b) | Rule.Priority (a, b) ->
          if a = b then add (Self_rule { name = a; rule = i })
      | Rule.Position _ | Rule.Admit _ -> ())
    irules;
  (* Admission classes: negative classes are malformed; two Admit rules
     with different classes contradict (the first one wins downstream,
     so the operator must pick). *)
  let admits =
    List.filter_map
      (fun (i, r) -> match r with Rule.Admit c -> Some (i, c) | _ -> None)
      irules
  in
  List.iter
    (fun (i, c) -> if c < 0 then add (Admission_negative { cls = c; rule = i }))
    admits;
  (match admits with
  | (i, c) :: rest -> (
      match List.find_opt (fun (_, c') -> c' <> c) rest with
      | Some (j, c') -> add (Admission_conflict { classes = (c, c'); rules = (i, j) })
      | None -> ())
  | [] -> ());
  (* Priority in both directions. *)
  let prios =
    List.filter_map
      (fun (i, r) -> match r with Rule.Priority (a, b) -> Some (i, (a, b)) | _ -> None)
      irules
  in
  List.iter
    (fun (i, (a, b)) ->
      if a < b then
        match List.find_opt (fun (_, p) -> p = (b, a)) prios with
        | Some (j, _) when List.exists (fun (_, p) -> p = (a, b)) prios ->
            add (Priority_both_ways { a; b; rules = (i, j) })
        | _ -> ())
    prios;
  (* Position conflicts. *)
  let positions =
    List.filter_map
      (fun (i, r) -> match r with Rule.Position (n, p) -> Some (i, (n, p)) | _ -> None)
      irules
  in
  List.iter
    (fun (i, (n, p)) ->
      if p = Rule.First then
        match List.find_opt (fun (_, q) -> q = (n, Rule.Last)) positions with
        | Some (j, _) -> add (Position_conflict { name = n; rules = (i, j) })
        | None -> ())
    positions;
  (* Order rules contradicting pinned positions. *)
  let pinned_at n p = List.exists (fun (_, q) -> q = (n, p)) positions in
  List.iter
    (fun (i, r) ->
      match r with
      | Rule.Order (a, b) when a <> b ->
          if pinned_at a Rule.Last then
            add (Position_order_conflict { pinned = a; other = b; rule = i });
          if pinned_at b Rule.First then
            add (Position_order_conflict { pinned = b; other = a; rule = i })
      | _ -> ())
    irules;
  (* Precedence cycles: Order(a,b) is a->b; Priority(hi,lo) makes lo
     logically earlier, lo->hi. Each cycle reports every rule whose
     edge stays inside the component. *)
  let iedges =
    List.filter_map
      (fun (i, r) ->
        match r with
        | Rule.Order (a, b) when a <> b -> Some (i, (a, b))
        | Rule.Priority (hi, lo) when hi <> lo -> Some (i, (lo, hi))
        | _ -> None)
      irules
  in
  let edges = List.map snd iedges in
  let names = Rule.nfs_of_rules policy.rules in
  let self_loop n = List.mem (n, n) edges in
  let cycle ns =
    let inside =
      List.filter_map
        (fun (i, (a, b)) -> if List.mem a ns && List.mem b ns then Some i else None)
        iedges
    in
    add (Order_cycle { names = ns; rules = List.sort_uniq compare inside })
  in
  List.iter
    (fun component ->
      match component with
      | [ n ] -> if self_loop n then cycle [ n ]
      | [] -> ()
      | ns -> cycle ns)
    (sccs names edges);
  List.rev !conflicts

let is_valid policy = check policy = []

let suggest = function
  | Unknown_nf { name; rule } ->
      Printf.sprintf "bind %S with an NF(%s, <Type>) line or fix rule #%d to use a registered type name"
        name name rule
  | Unknown_kind (_, k) ->
      Printf.sprintf
        "register %S first (Registry.register, optionally with an inspector-derived profile)" k
  | Duplicate_binding n -> Printf.sprintf "remove one of the NF(%s, ...) lines" n
  | Order_cycle { names; rules } ->
      Printf.sprintf "drop one of rules %s to break the cycle among %s"
        (String.concat ", " (List.map (Printf.sprintf "#%d") rules))
        (String.concat ", " names)
  | Priority_both_ways { a; b; rules = i, j } ->
      Printf.sprintf "keep a single Priority direction between %s and %s (rule #%d or #%d)" a
        b i j
  | Position_conflict { name; rules = i, j } ->
      Printf.sprintf "pin %s either first or last, not both (drop rule #%d or #%d)" name i j
  | Position_order_conflict { pinned; other; rule } ->
      Printf.sprintf "either unpin %s or remove rule #%d relating it to %s" pinned rule other
  | Self_rule { name; rule } ->
      Printf.sprintf "remove rule #%d relating %s to itself" rule name
  | Admission_conflict { classes = _, _; rules = i, j } ->
      Printf.sprintf "keep a single Admit class for the chain (drop rule #%d or #%d)" i j
  | Admission_negative { cls = _; rule } ->
      Printf.sprintf "use a class >= 0 in rule #%d (0 = best effort, higher = more important)"
        rule
