open Nfp_packet

type config = {
  cost : Nfp_sim.Cost.t;
  ring_capacity : int;
  jitter : float;
  seed : int64;
}

let default_config =
  { cost = Nfp_sim.Cost.default; ring_capacity = 128; jitter = 0.05; seed = 11L }

let core_count ~nfs = List.length nfs + 1

type job = { pid : int64; pkt : Packet.t; next_stage : int }

(* Retry-until-delivered emission to one ring. The server retries a
   thunk only until it first returns [true], so no delivered-flag is
   needed. *)
let emit_to core job () = Nfp_sim.Server.offer core job

let make ?(config = default_config) ~nfs engine ~output =
  let cost = config.cost in
  let n = List.length nfs in
  let nf_arr = Array.of_list nfs in
  let ring_drops = ref 0 and nf_drops = ref 0 in
  let prng = Nfp_algo.Prng.create ~seed:config.seed in
  let jitter_for () = (config.jitter, Nfp_algo.Prng.split prng) in
  let nf_cores : job Nfp_sim.Server.t option array = Array.make n None in
  let wire_delay = cost.wire_ns /. 2.0 in
  (* The ONVM manager runs an RX thread (NIC ingress: descriptor
     handling, flow-table lookup) and a TX thread (relaying references
     between NF rings and NIC egress). NIC-facing RX bounds throughput;
     relays are cheap pointer moves, but every hop is an extra queueing
     stop that NFP's distributed runtime avoids. *)
  let tx =
    let service_ns (_ : job) =
      Nfp_sim.Cost.ns_of_cycles cost
        (cost.ring_dequeue + cost.switch_per_hop + cost.ring_enqueue)
    in
    let execute (job : job) =
      if job.next_stage >= n then begin
        Nfp_sim.Engine.schedule engine ~delay:wire_delay (fun () ->
            output ~pid:job.pid job.pkt);
        fun () -> true
      end
      else
        match nf_cores.(job.next_stage) with
        | Some core -> emit_to core job
        | None -> assert false
    in
    Nfp_sim.Server.create ~engine ~name:"switch-tx" ~ring_capacity:config.ring_capacity
      ~batch:cost.batch ~jitter:(jitter_for ()) ~service_ns ~execute ()
  in
  let rx =
    let service_ns (_ : job) =
      Nfp_sim.Cost.ns_of_cycles cost (cost.switch_forward + cost.ring_enqueue)
    in
    let execute (job : job) =
      match nf_cores.(0) with
      | Some core -> emit_to core job
      | None -> emit_to tx job (* zero-length chain: straight to egress *)
    in
    Nfp_sim.Server.create ~engine ~name:"switch-rx" ~ring_capacity:config.ring_capacity
      ~batch:cost.batch ~jitter:(jitter_for ()) ~service_ns ~execute ()
  in
  Array.iteri
    (fun i (nf : Nfp_nf.Nf.t) ->
      let service_ns (job : job) =
        Nfp_sim.Cost.ns_of_cycles cost
          (cost.ring_dequeue + nf.cost_cycles job.pkt + cost.ring_enqueue)
      in
      let execute (job : job) =
        match nf.process job.pkt with
        | Nfp_nf.Nf.Forward -> emit_to tx { job with next_stage = i + 1 }
        | Nfp_nf.Nf.Dropped ->
            incr nf_drops;
            fun () -> true
      in
      nf_cores.(i) <-
        Some
          (Nfp_sim.Server.create ~engine ~name:nf.name ~ring_capacity:config.ring_capacity
             ~batch:cost.batch ~jitter:(jitter_for ()) ~service_ns ~execute ()))
    nf_arr;
  {
    Nfp_sim.Harness.inject =
      (fun ~pid pkt ->
        Nfp_sim.Engine.schedule engine ~delay:wire_delay (fun () ->
            if not (Nfp_sim.Server.offer rx { pid; pkt; next_stage = 0 }) then
              incr ring_drops));
    ring_drops = (fun () -> !ring_drops);
    nf_drops = (fun () -> !nf_drops);
    unmatched = (fun () -> 0);
    shed = (fun () -> 0);
    classifier = (fun () -> Nfp_sim.Harness.no_classifier_counters);
    health =
      (fun () ->
        {
          Nfp_sim.Harness.no_health with
          drops =
            {
              Nfp_sim.Harness.no_drops with
              ingress_rejected = !ring_drops;
              nf_dropped = !nf_drops;
            };
        });
  }
