open Nfp_packet

type config = {
  cost : Nfp_sim.Cost.t;
  ring_capacity : int;
  jitter : float;
  seed : int64;
}

let default_config =
  { cost = Nfp_sim.Cost.default; ring_capacity = 192; jitter = 0.05; seed = 13L }

type job = { pid : int64; pkt : Packet.t }

let make ?(config = default_config) ~cores ~chain engine ~output =
  if cores < 1 then invalid_arg "Bess.make: need at least one core";
  let cost = config.cost in
  let ring_drops = ref 0 and nf_drops = ref 0 in
  let prng = Nfp_algo.Prng.create ~seed:config.seed in
  let wire_delay = cost.wire_ns /. 2.0 in
  let make_core i =
    ignore i;
    let nfs = chain () in
    let service_ns (job : job) =
      let cycles =
        List.fold_left
          (fun acc (nf : Nfp_nf.Nf.t) -> acc + cost.rtc_call + nf.cost_cycles job.pkt)
          cost.ring_dequeue nfs
      in
      Nfp_sim.Cost.ns_of_cycles cost cycles
    in
    let execute (job : job) =
      let rec go = function
        | [] ->
            Nfp_sim.Engine.schedule engine ~delay:wire_delay (fun () ->
                output ~pid:job.pid job.pkt)
        | (nf : Nfp_nf.Nf.t) :: rest -> (
            match nf.process job.pkt with
            | Nfp_nf.Nf.Forward -> go rest
            | Nfp_nf.Nf.Dropped -> incr nf_drops)
      in
      go nfs;
      fun () -> true
    in
    Nfp_sim.Server.create ~engine
      ~name:(Printf.sprintf "rtc#%d" i)
      ~ring_capacity:config.ring_capacity ~batch:cost.batch
      ~jitter:(config.jitter, Nfp_algo.Prng.split prng)
      ~service_ns ~execute ()
  in
  let replicas = Array.init cores make_core in
  {
    Nfp_sim.Harness.inject =
      (fun ~pid pkt ->
        Nfp_sim.Engine.schedule engine ~delay:wire_delay (fun () ->
            (* NIC RSS: hash steers the packet to a replica. *)
            let i =
              Int64.to_int
                (Int64.rem
                   (Int64.logand (Nfp_algo.Hashing.mix64 pid) Int64.max_int)
                   (Int64.of_int cores))
            in
            if not (Nfp_sim.Server.offer replicas.(i) { pid; pkt }) then incr ring_drops));
    ring_drops = (fun () -> !ring_drops);
    nf_drops = (fun () -> !nf_drops);
    unmatched = (fun () -> 0);
    shed = (fun () -> 0);
    classifier = (fun () -> Nfp_sim.Harness.no_classifier_counters);
    health =
      (fun () ->
        {
          Nfp_sim.Harness.no_health with
          drops =
            {
              Nfp_sim.Harness.no_drops with
              ingress_rejected = !ring_drops;
              nf_dropped = !nf_drops;
            };
        });
  }
