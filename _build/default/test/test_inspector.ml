(* Tests for nfp_inspector: behavioural derivation of NF action
   profiles (paper §5.4). *)

open Nfp_nf
open Nfp_packet

let check = Alcotest.check

let factory kind () = Option.get (Registry.instantiate kind ~name:"probe")

let observed kind = Nfp_inspector.Inspector.derive_profile (factory kind)

let has a profile = List.mem a profile

let inspector_tests =
  [
    Alcotest.test_case "load balancer writes detected exactly" `Quick (fun () ->
        let p = observed "LoadBalancer" in
        check Alcotest.bool "writes sip" true (has (Action.Write Field.Sip) p);
        check Alcotest.bool "writes dip" true (has (Action.Write Field.Dip) p);
        check Alcotest.bool "no payload write" false (has (Action.Write Field.Payload) p);
        check Alcotest.bool "no drop" false (has Action.Drop p));
    Alcotest.test_case "load balancer reads detected via behaviour" `Quick (fun () ->
        let p = observed "LoadBalancer" in
        (* Backend choice hashes all five tuple fields. *)
        check Alcotest.bool "reads sport" true (has (Action.Read Field.Sport) p);
        check Alcotest.bool "reads dport" true (has (Action.Read Field.Dport) p));
    Alcotest.test_case "monitor reads surface through its state digest" `Quick (fun () ->
        let p = observed "Monitor" in
        check Alcotest.bool "reads sip" true (has (Action.Read Field.Sip) p);
        check Alcotest.bool "reads dport" true (has (Action.Read Field.Dport) p);
        check Alcotest.bool "writes nothing" true (Action.writes p = []));
    Alcotest.test_case "firewall drop and reads detected" `Quick (fun () ->
        let p = observed "Firewall" in
        check Alcotest.bool "drop" true (has Action.Drop p);
        check Alcotest.bool "reads dport" true (has (Action.Read Field.Dport) p);
        check Alcotest.bool "writes nothing" true (Action.writes p = []));
    Alcotest.test_case "VPN header addition and payload write detected" `Quick (fun () ->
        let p = observed "VPN" in
        check Alcotest.bool "add/rm" true (has Action.Add_rm_header p);
        check Alcotest.bool "writes payload" true (has (Action.Write Field.Payload) p));
    Alcotest.test_case "IPS payload read and drop detected" `Quick (fun () ->
        let p = observed "IPS" in
        check Alcotest.bool "drop" true (has Action.Drop p);
        check Alcotest.bool "reads payload" true (has (Action.Read Field.Payload) p));
    Alcotest.test_case "NAT rewrites detected" `Quick (fun () ->
        let p = observed "NAT" in
        check Alcotest.bool "writes sip" true (has (Action.Write Field.Sip) p);
        check Alcotest.bool "writes sport" true (has (Action.Write Field.Sport) p));
    Alcotest.test_case "proxy payload write detected" `Quick (fun () ->
        let p = observed "Proxy" in
        check Alcotest.bool "writes payload" true (has (Action.Write Field.Payload) p);
        check Alcotest.bool "writes dip" true (has (Action.Write Field.Dip) p));
    Alcotest.test_case "forwarder observed as read-only" `Quick (fun () ->
        let p = observed "Forwarder" in
        check Alcotest.bool "no writes" true (Action.writes p = []);
        check Alcotest.bool "no drop" false (has Action.Drop p);
        check Alcotest.bool "no headers" false (has Action.Add_rm_header p));
    Alcotest.test_case "observed profiles never exceed declared writes" `Quick (fun () ->
        (* Soundness: a detected write/drop/header action must be
           declared (reads may be under-approximated, never invented
           for NFs that ignore the field entirely). *)
        List.iter
          (fun kind ->
            let declared = Registry.profile_of kind in
            let obs = observed kind in
            List.iter
              (fun a ->
                match a with
                | Action.Write _ | Action.Add_rm_header | Action.Drop ->
                    if not (List.mem a declared) then
                      Alcotest.failf "%s: observed %s not declared" kind
                        (Format.asprintf "%a" Action.pp a)
                | Action.Read _ -> ())
              obs)
          [ "Firewall"; "LoadBalancer"; "VPN"; "Monitor"; "NAT"; "Proxy"; "Forwarder" ]);
    Alcotest.test_case "compare_profiles partitions correctly" `Quick (fun () ->
        let declared = Action.[ Read Field.Sip; Write Field.Dip; Drop ] in
        let obs = Action.[ Read Field.Sip; Write Field.Dip; Read Field.Tos ] in
        let c = Nfp_inspector.Inspector.compare_profiles ~declared ~observed:obs in
        check Alcotest.int "matching" 2 (List.length c.matching);
        check Alcotest.bool "undeclared tos" true (c.undeclared = [ Action.Read Field.Tos ]);
        check Alcotest.bool "unobserved drop" true (c.unobserved = [ Action.Drop ]));
    Alcotest.test_case "inspect_registered ties it together" `Quick (fun () ->
        match Nfp_inspector.Inspector.inspect_registered "LoadBalancer" with
        | Some (obs, comparison) ->
            check Alcotest.bool "observed non-empty" true (obs <> []);
            check Alcotest.bool "no undeclared writes" true
              (List.for_all
                 (fun a -> match a with Action.Write _ -> false | _ -> true)
                 comparison.undeclared)
        | None -> Alcotest.fail "LoadBalancer should be inspectable");
    Alcotest.test_case "inspect_registered on unknown type" `Quick (fun () ->
        check Alcotest.bool "none" true
          (Nfp_inspector.Inspector.inspect_registered "Imaginary" = None));
    Alcotest.test_case "derivation is deterministic" `Quick (fun () ->
        check Alcotest.bool "stable" true (observed "Firewall" = observed "Firewall"));
    Alcotest.test_case "custom NF derives as implemented" `Quick (fun () ->
        (* A TTL decrementer: reads and writes TTL only. *)
        let make_nf () =
          Nf.make ~name:"ttl" ~kind:"TtlDec"
            ~profile:Action.[ Read Field.Ttl; Write Field.Ttl ]
            ~cost_cycles:(fun _ -> 50)
            (fun pkt ->
              let ttl = Packet.ttl pkt in
              if ttl = 0 then Nf.Dropped
              else begin
                Packet.set_ttl pkt (ttl - 1);
                Nf.Forward
              end)
        in
        let p = Nfp_inspector.Inspector.derive_profile make_nf in
        check Alcotest.bool "writes ttl" true (has (Action.Write Field.Ttl) p);
        check Alcotest.bool "reads ttl" true (has (Action.Read Field.Ttl) p);
        check Alcotest.bool "does not write tos" false (has (Action.Write Field.Tos) p));
  ]

let () = Alcotest.run "nfp_inspector" [ ("inspector", inspector_tests) ]
