(* Tests for nfp_core: the dependency table (Table 3), Algorithm 1,
   service graphs, the compiler pipeline, table generation, the §4
   statistics, the overhead model and cross-server partitioning. *)

open Nfp_core
open Nfp_nf

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let verdict_t =
  Alcotest.testable Dependency.pp_verdict (fun a b -> a = b)

let field = Nfp_packet.Field.Sip
let field2 = Nfp_packet.Field.Dport

(* ------------------------------------------------------------------ *)
(* Dependency (Table 3)                                                *)
(* ------------------------------------------------------------------ *)

let dependency_tests =
  [
    Alcotest.test_case "Table 3 cells (kind level)" `Quick (fun () ->
        let open Action in
        let t = Dependency.kind_pair in
        check verdict_t "R-R" Dependency.Parallel_no_copy (t K_read K_read);
        check verdict_t "R-W (diff fields)" Dependency.Parallel_no_copy (t K_read K_write);
        check verdict_t "R-A" Dependency.Parallel_with_copy (t K_read K_add_rm);
        check verdict_t "R-D" Dependency.Parallel_no_copy (t K_read K_drop);
        check verdict_t "W-R" Dependency.Not_parallelizable (t K_write K_read);
        check verdict_t "W-W (diff fields)" Dependency.Parallel_no_copy (t K_write K_write);
        check verdict_t "W-A" Dependency.Parallel_with_copy (t K_write K_add_rm);
        check verdict_t "W-D" Dependency.Parallel_no_copy (t K_write K_drop);
        check verdict_t "A-R" Dependency.Not_parallelizable (t K_add_rm K_read);
        check verdict_t "A-W" Dependency.Not_parallelizable (t K_add_rm K_write);
        check verdict_t "A-A" Dependency.Not_parallelizable (t K_add_rm K_add_rm);
        check verdict_t "A-D" Dependency.Parallel_no_copy (t K_add_rm K_drop);
        check verdict_t "D-R" Dependency.Not_parallelizable (t K_drop K_read);
        check verdict_t "D-W" Dependency.Not_parallelizable (t K_drop K_write);
        check verdict_t "D-A" Dependency.Not_parallelizable (t K_drop K_add_rm);
        check verdict_t "D-D" Dependency.Parallel_no_copy (t K_drop K_drop));
    Alcotest.test_case "read-write same field needs a copy" `Quick (fun () ->
        check verdict_t "same" Dependency.Parallel_with_copy
          (Dependency.action_pair (Action.Read field) (Action.Write field));
        check verdict_t "different" Dependency.Parallel_no_copy
          (Dependency.action_pair (Action.Read field) (Action.Write field2)));
    Alcotest.test_case "write-write same field needs a copy" `Quick (fun () ->
        check verdict_t "same" Dependency.Parallel_with_copy
          (Dependency.action_pair (Action.Write field) (Action.Write field));
        check verdict_t "different" Dependency.Parallel_no_copy
          (Dependency.action_pair (Action.Write field) (Action.Write field2)));
    Alcotest.test_case "write-read is sequential regardless of field" `Quick (fun () ->
        check verdict_t "same" Dependency.Not_parallelizable
          (Dependency.action_pair (Action.Write field) (Action.Read field));
        check verdict_t "different (paper-strict)" Dependency.Not_parallelizable
          (Dependency.action_pair (Action.Write field) (Action.Read field2)));
    Alcotest.test_case "field-sensitive write-read ablation" `Quick (fun () ->
        check verdict_t "same still gray" Dependency.Not_parallelizable
          (Dependency.action_pair ~field_sensitive_write_read:true (Action.Write field)
             (Action.Read field));
        check verdict_t "different now parallel" Dependency.Parallel_no_copy
          (Dependency.action_pair ~field_sensitive_write_read:true (Action.Write field)
             (Action.Read field2)));
    Alcotest.test_case "table rows cover all four kinds" `Quick (fun () ->
        check Alcotest.int "rows" 4 (List.length (Dependency.table_rows ()));
        List.iter
          (fun (_, cells) -> check Alcotest.int "cols" 4 (List.length cells))
          (Dependency.table_rows ()));
    Alcotest.test_case "pp_table renders" `Quick (fun () ->
        check Alcotest.bool "non-empty" true
          (String.length (Format.asprintf "%a" Dependency.pp_table ()) > 50));
  ]

(* ------------------------------------------------------------------ *)
(* Parallelism (Algorithm 1) over registry profiles                    *)
(* ------------------------------------------------------------------ *)

let analyze a b = Parallelism.verdict (Parallelism.analyze_kinds a b)

let parallelism_tests =
  [
    Alcotest.test_case "Monitor before Firewall: parallel, no copy" `Quick (fun () ->
        (* The paper's flagship example (Fig. 1). *)
        check verdict_t "verdict" Dependency.Parallel_no_copy (analyze "Monitor" "Firewall"));
    Alcotest.test_case "Monitor before LoadBalancer: parallel with copy" `Quick (fun () ->
        (* The west-east chain's 8.8%-overhead pair. *)
        check verdict_t "verdict" Dependency.Parallel_with_copy (analyze "Monitor" "LoadBalancer"));
    Alcotest.test_case "Firewall before anything stateful: sequential" `Quick (fun () ->
        (* A dropper must precede NFs whose state would see dead packets. *)
        check verdict_t "monitor" Dependency.Not_parallelizable (analyze "Firewall" "Monitor");
        check verdict_t "lb" Dependency.Not_parallelizable (analyze "Firewall" "LoadBalancer"));
    Alcotest.test_case "VPN before anything: sequential (header add)" `Quick (fun () ->
        check verdict_t "monitor" Dependency.Not_parallelizable (analyze "VPN" "Monitor"));
    Alcotest.test_case "anything before VPN: copy needed" `Quick (fun () ->
        check verdict_t "ids" Dependency.Parallel_with_copy (analyze "IDS" "VPN");
        check verdict_t "gateway" Dependency.Parallel_with_copy (analyze "Gateway" "VPN"));
    Alcotest.test_case "NAT before LoadBalancer: sequential (write-read)" `Quick (fun () ->
        check verdict_t "verdict" Dependency.Not_parallelizable (analyze "NAT" "LoadBalancer"));
    Alcotest.test_case "two read-only NFs parallelize freely" `Quick (fun () ->
        check verdict_t "ids-gw" Dependency.Parallel_no_copy (analyze "IDS" "Gateway");
        check verdict_t "gw-ids" Dependency.Parallel_no_copy (analyze "Gateway" "IDS");
        check verdict_t "mon-mon" Dependency.Parallel_no_copy (analyze "Monitor" "Monitor"));
    Alcotest.test_case "two load balancers cannot parallelize" `Quick (fun () ->
        (* R/W vs R/W on the same field contains a write-read pair. *)
        check verdict_t "lb-lb" Dependency.Not_parallelizable (analyze "LoadBalancer" "LoadBalancer"));
    Alcotest.test_case "proxy and compression conflict on payload" `Quick (fun () ->
        check verdict_t "proxy-comp" Dependency.Not_parallelizable (analyze "Proxy" "Compression"));
    Alcotest.test_case "conflicting actions reported for copy pairs" `Quick (fun () ->
        let r = Parallelism.analyze_kinds "Monitor" "LoadBalancer" in
        check Alcotest.bool "needs copy" true (Parallelism.needs_copy r);
        (* Monitor reads sip/dip; LB writes them. *)
        check Alcotest.bool "sip conflict" true
          (List.exists
             (fun (a, b) ->
               a = Action.Read Nfp_packet.Field.Sip && b = Action.Write Nfp_packet.Field.Sip)
             r.conflicting_actions));
    Alcotest.test_case "no conflicts for green pairs" `Quick (fun () ->
        let r = Parallelism.analyze_kinds "Monitor" "Firewall" in
        check Alcotest.bool "no copy" false (Parallelism.needs_copy r);
        check Alcotest.bool "empty" true (r.conflicting_actions = []));
    Alcotest.test_case "gray verdict clears conflict list" `Quick (fun () ->
        let r = Parallelism.analyze_kinds "Firewall" "Monitor" in
        check Alcotest.bool "not parallelizable" false r.parallelizable;
        check Alcotest.bool "no conflicts" true (r.conflicting_actions = []));
    qtest "analyze is deterministic"
      QCheck.(pair (oneofl [ "Firewall"; "Monitor"; "VPN"; "IDS" ])
                (oneofl [ "Firewall"; "Monitor"; "VPN"; "IDS" ]))
      (fun (a, b) -> analyze a b = analyze a b);
  ]

(* ------------------------------------------------------------------ *)
(* Analysis (§4 statistics)                                            *)
(* ------------------------------------------------------------------ *)

let analysis_tests =
  [
    Alcotest.test_case "reproduces the paper's headline numbers" `Quick (fun () ->
        (* Paper: 53.8% parallelizable, 41.5% without copy. Our Table 2
           encoding lands within two points of both. *)
        let s = Analysis.run () in
        if abs_float (s.parallelizable_pct -. 53.8) > 2.5 then
          Alcotest.failf "parallelizable %.1f%% too far from 53.8%%" s.parallelizable_pct;
        if abs_float (s.no_copy_pct -. 41.5) > 3.0 then
          Alcotest.failf "no-copy %.1f%% too far from 41.5%%" s.no_copy_pct);
    Alcotest.test_case "percentages are consistent" `Quick (fun () ->
        let s = Analysis.run () in
        check (Alcotest.float 1e-6) "sum" s.parallelizable_pct
          (s.no_copy_pct +. s.with_copy_pct);
        check Alcotest.bool "bounded" true
          (s.parallelizable_pct >= 0.0 && s.parallelizable_pct <= 100.0));
    Alcotest.test_case "pair weights sum to one" `Quick (fun () ->
        let s = Analysis.run () in
        let total = List.fold_left (fun acc p -> acc +. p.Analysis.weight) 0.0 s.pairs in
        check (Alcotest.float 1e-6) "weights" 1.0 total);
    Alcotest.test_case "pair count is the square of the population" `Quick (fun () ->
        let n = List.length (Registry.weighted_kinds ()) in
        let s = Analysis.run () in
        check Alcotest.int "pairs" (n * n) (List.length s.pairs));
    Alcotest.test_case "custom population" `Quick (fun () ->
        let s = Analysis.run_kinds [ ("Monitor", 1.0); ("Gateway", 1.0) ] in
        (* All four ordered pairs of two read-only NFs parallelize. *)
        check (Alcotest.float 1e-6) "all parallel" 100.0 s.parallelizable_pct;
        check (Alcotest.float 1e-6) "no copies" 100.0 s.no_copy_pct);
    Alcotest.test_case "field-sensitive ablation can only help" `Quick (fun () ->
        let strict = Analysis.run () in
        let relaxed = Analysis.run ~field_sensitive_write_read:true () in
        check Alcotest.bool "monotone" true
          (relaxed.parallelizable_pct >= strict.parallelizable_pct -. 1e-9));
    Alcotest.test_case "empty population rejected" `Quick (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Analysis.run_kinds: weights must sum to a positive value")
          (fun () -> ignore (Analysis.run_kinds [])));
  ]

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let graph_tests =
  [
    Alcotest.test_case "equivalent lengths of the six Fig. 14 shapes" `Quick (fun () ->
        let n i = Graph.nf (Printf.sprintf "nf%d" i) in
        let shapes =
          [
            (Graph.seq [ n 1; n 2; n 3; n 4 ], 4) (* (1) sequential *);
            (Graph.par [ n 1; n 2; n 3; n 4 ], 1) (* (2) all parallel *);
            (Graph.seq [ n 1; Graph.par [ n 2; n 3; n 4 ] ], 2) (* (3) 1 then 3 *);
            ( Graph.par [ n 1; Graph.seq [ n 2; n 3 ]; n 4 ],
              2 (* (4) 1 + chain2 + 1 in parallel *) );
            (Graph.par [ n 1; Graph.seq [ n 2; n 3; n 4 ] ], 3) (* (5) 1 + chain3 *);
            (Graph.par [ Graph.seq [ n 1; n 2 ]; Graph.seq [ n 3; n 4 ] ], 2) (* (6) 2+2 *);
          ]
        in
        List.iteri
          (fun i (g, expected) ->
            check Alcotest.int (Printf.sprintf "shape %d" (i + 1)) expected
              (Graph.equivalent_length g))
          shapes);
    Alcotest.test_case "smart constructors flatten" `Quick (fun () ->
        let g = Graph.seq [ Graph.seq [ Graph.nf "a"; Graph.nf "b" ]; Graph.nf "c" ] in
        check Alcotest.bool "flat" true
          (g = Graph.Seq [ Graph.Nf "a"; Graph.Nf "b"; Graph.Nf "c" ]));
    Alcotest.test_case "singletons collapse" `Quick (fun () ->
        check Alcotest.bool "seq" true (Graph.seq [ Graph.nf "a" ] = Graph.Nf "a");
        check Alcotest.bool "par" true (Graph.par [ Graph.nf "a" ] = Graph.Nf "a"));
    Alcotest.test_case "empty compositions rejected" `Quick (fun () ->
        Alcotest.check_raises "seq" (Invalid_argument "Graph.seq: empty composition")
          (fun () -> ignore (Graph.seq []));
        Alcotest.check_raises "par" (Invalid_argument "Graph.par: empty composition")
          (fun () -> ignore (Graph.par [])));
    Alcotest.test_case "nfs in appearance order" `Quick (fun () ->
        let g = Graph.seq [ Graph.nf "x"; Graph.par [ Graph.nf "y"; Graph.nf "z" ] ] in
        check Alcotest.(list string) "order" [ "x"; "y"; "z" ] (Graph.nfs g));
    Alcotest.test_case "well_formed rejects duplicates" `Quick (fun () ->
        let g = Graph.seq [ Graph.nf "a"; Graph.nf "a" ] in
        check Alcotest.bool "dup" true (Result.is_error (Graph.well_formed g)));
    Alcotest.test_case "pp renders the paper style" `Quick (fun () ->
        let g = Graph.seq [ Graph.nf "vpn"; Graph.par [ Graph.nf "mon"; Graph.nf "fw" ]; Graph.nf "lb" ] in
        check Alcotest.string "render" "vpn -> (mon | fw) -> lb" (Graph.to_string g));
    Alcotest.test_case "to_dot emits every NF and a merge diamond" `Quick (fun () ->
        let g = Graph.seq [ Graph.nf "vpn"; Graph.par [ Graph.nf "mon"; Graph.nf "fw" ]; Graph.nf "lb" ] in
        let dot = Graph.to_dot g in
        let has needle =
          let n = String.length needle and h = String.length dot in
          let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
          go 0
        in
        List.iter
          (fun needle -> check Alcotest.bool needle true (has needle))
          [ "digraph"; "ingress -> vpn"; "vpn -> mon"; "vpn -> fw"; "mon -> merge1";
            "fw -> merge1"; "merge1 -> lb"; "lb -> egress"; "shape=diamond" ]);
    Alcotest.test_case "to_dot handles nested structures" `Quick (fun () ->
        let g =
          Graph.par
            [ Graph.seq [ Graph.nf "a"; Graph.par [ Graph.nf "b"; Graph.nf "c" ] ]; Graph.nf "d" ]
        in
        let dot = Graph.to_dot g in
        check Alcotest.bool "two merges" true
          (let count = ref 0 in
           String.iteri (fun i ch -> if ch = 'd' && i + 7 <= String.length dot && String.sub dot i 7 = "diamond" then incr count) dot;
           !count = 2));
  ]

(* ------------------------------------------------------------------ *)
(* Compiler                                                            *)
(* ------------------------------------------------------------------ *)

let compile_ok text =
  match Compiler.compile_text text with
  | Ok o -> o
  | Error es -> Alcotest.failf "compile failed: %s" (String.concat "; " es)

let north_south =
  "NF(vpn, VPN)\nNF(mon, Monitor)\nNF(fw, Firewall)\nNF(lb, LoadBalancer)\n\
   Chain(vpn, mon, fw, lb)"

let west_east = "NF(ids, IPS)\nNF(mon, Monitor)\nNF(lb, LoadBalancer)\nChain(ids, mon, lb)"

let compiler_tests =
  [
    Alcotest.test_case "north-south compiles to the paper's graph" `Quick (fun () ->
        let o = compile_ok north_south in
        check Alcotest.string "graph" "vpn -> (mon | fw) -> lb" (Graph.to_string o.graph);
        check Alcotest.int "equivalent length" 3 (Graph.equivalent_length o.graph));
    Alcotest.test_case "west-east compiles to the paper's graph" `Quick (fun () ->
        let o = compile_ok west_east in
        check Alcotest.string "graph" "ids -> (mon | lb)" (Graph.to_string o.graph));
    Alcotest.test_case "all-read-only chain fully parallelizes" `Quick (fun () ->
        let o = compile_ok "Chain(Monitor, Gateway, Caching)" in
        check Alcotest.int "equivalent length" 1 (Graph.equivalent_length o.graph));
    Alcotest.test_case "position rules pin head and tail" `Quick (fun () ->
        let o =
          compile_ok
            "NF(vpn, VPN)\nNF(mon, Monitor)\nNF(gw, Gateway)\nNF(lb, LoadBalancer)\n\
             Position(vpn, first)\nPosition(lb, last)\nOrder(mon, before, gw)"
        in
        check Alcotest.string "graph" "vpn -> (mon | gw) -> lb" (Graph.to_string o.graph));
    Alcotest.test_case "free NFs join the parallel stage" `Quick (fun () ->
        let o =
          compile_ok
            "NF(mon, Monitor)\nNF(gw, Gateway)\nNF(cache, Caching)\nOrder(mon, before, gw)"
        in
        (* cache is bound but unmentioned; read-only so it parallelizes. *)
        check Alcotest.bool "cache present" true (Graph.contains o.graph "cache");
        check Alcotest.int "eq length" 1 (Graph.equivalent_length o.graph));
    Alcotest.test_case "priority rules force parallelism" `Quick (fun () ->
        let o = compile_ok "NF(ips, IPS)\nNF(fw, Firewall)\nPriority(ips > fw)" in
        check Alcotest.int "parallel" 1 (Graph.equivalent_length o.graph);
        check Alcotest.int "both NFs" 2 (Graph.nf_count o.graph);
        check Alcotest.bool "priority recorded" true
          (List.mem ("ips", "fw") o.priority_pairs));
    Alcotest.test_case "independent micrographs run in parallel" `Quick (fun () ->
        let o =
          compile_ok
            "NF(mon1, Monitor)\nNF(gw1, Gateway)\nNF(mon2, Monitor)\nNF(cache2, Caching)\n\
             Order(mon1, before, gw1)\nOrder(mon2, before, cache2)"
        in
        check Alcotest.int "eq length" 1 (Graph.equivalent_length o.graph);
        check Alcotest.int "all four NFs" 4 (Graph.nf_count o.graph));
    Alcotest.test_case "dependent micrographs are sequenced with a warning" `Quick
      (fun () ->
        let o =
          compile_ok
            "NF(nat, NAT)\nNF(mon, Monitor)\nNF(lb, LoadBalancer)\nNF(gw, Gateway)\n\
             Order(nat, before, mon)\nOrder(lb, before, gw)"
        in
        (* Both micrographs write sip: they cannot be parallel. *)
        check Alcotest.bool "warning emitted" true (o.warnings <> []);
        check Alcotest.bool "still well formed" true
          (Result.is_ok (Graph.well_formed o.graph)));
    Alcotest.test_case "validation failures become errors" `Quick (fun () ->
        match Compiler.compile_text "Order(Firewall, before, Firewall)" with
        | Ok _ -> Alcotest.fail "accepted a self-order"
        | Error es -> check Alcotest.bool "message" true (es <> []));
    Alcotest.test_case "cyclic order rejected" `Quick (fun () ->
        match
          Compiler.compile_text "Order(Monitor, before, Gateway)\nOrder(Gateway, before, Monitor)"
        with
        | Ok _ -> Alcotest.fail "accepted a cycle"
        | Error _ -> ());
    Alcotest.test_case "empty policy rejected" `Quick (fun () ->
        match Compiler.compile_text "# nothing" with
        | Ok _ -> Alcotest.fail "accepted empty policy"
        | Error _ -> ());
    Alcotest.test_case "sequential_graph preserves the policy order" `Quick (fun () ->
        match Nfp_policy.Parser.parse north_south with
        | Error e -> Alcotest.fail e
        | Ok policy -> (
            match Compiler.sequential_graph policy with
            | Ok g -> check Alcotest.string "chain" "vpn -> mon -> fw -> lb" (Graph.to_string g)
            | Error e -> Alcotest.fail e));
    Alcotest.test_case "sequential_graph respects positions" `Quick (fun () ->
        match
          Nfp_policy.Parser.parse
            "NF(a, Monitor)\nNF(b, Gateway)\nPosition(b, first)\nPosition(a, last)"
        with
        | Error e -> Alcotest.fail e
        | Ok policy -> (
            match Compiler.sequential_graph policy with
            | Ok g -> check Alcotest.string "order" "b -> a" (Graph.to_string g)
            | Error e -> Alcotest.fail e));
    Alcotest.test_case "transitive gray pairs stay ordered" `Quick (fun () ->
        (* VPN before mon (gray), mon before fw (green): fw must still
           come after VPN via transitivity. *)
        let o = compile_ok north_south in
        match o.graph with
        | Graph.Seq (Graph.Nf "vpn" :: _) -> ()
        | g -> Alcotest.failf "vpn not first: %s" (Graph.to_string g));
    Alcotest.test_case "explain narrates the compilation" `Quick (fun () ->
        let o = compile_ok north_south in
        let text = Compiler.explain o in
        let has needle =
          let n = String.length needle and h = String.length text in
          let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
          go 0
        in
        List.iter
          (fun needle -> check Alcotest.bool needle true (has needle))
          [
            "vpn stays before mon";
            "Add/Rm of vpn";
            "mon and fw parallelize without copies";
            "fw stays before lb";
            "final graph: vpn -> (mon | fw) -> lb";
          ]);
    Alcotest.test_case "explain reports copy conflicts" `Quick (fun () ->
        let o = compile_ok west_east in
        let text = Compiler.explain o in
        let has needle =
          let n = String.length needle and h = String.length text in
          let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "copy conflict named" true
          (has "mon and lb parallelize with a packet copy"));
    Alcotest.test_case "blocking pair is reported by Algorithm 1" `Quick (fun () ->
        let r = Parallelism.analyze_kinds "Firewall" "Monitor" in
        (match r.Parallelism.blocking with
        | Some (Action.Drop, Action.Read _) -> ()
        | _ -> Alcotest.fail "expected Drop/Read blocking pair");
        let ok = Parallelism.analyze_kinds "Monitor" "Firewall" in
        check Alcotest.bool "green pair has no blocker" true (ok.Parallelism.blocking = None));
    Alcotest.test_case "field-sensitive ablation changes compilation" `Quick (fun () ->
        (* Compression writes payload+length; Gateway reads only
           addresses. The strict table's W-R cell blocks; the
           field-sensitive ablation parallelizes. *)
        let strict = compile_ok "Chain(Compression, Gateway)" in
        check Alcotest.int "strict sequential" 2 (Graph.equivalent_length strict.graph);
        (match Compiler.compile_text ~field_sensitive_write_read:true "Chain(Compression, Gateway)" with
        | Ok relaxed -> check Alcotest.int "relaxed parallel" 1 (Graph.equivalent_length relaxed.graph)
        | Error es -> Alcotest.failf "ablation failed: %s" (String.concat ";" es));
        (* A Monitor counts bytes, so even the ablation keeps it behind
           a payload-resizing NF. *)
        match Compiler.compile_text ~field_sensitive_write_read:true "Chain(Compression, Monitor)" with
        | Ok still_seq ->
            check Alcotest.int "length conflict stays sequential" 2
              (Graph.equivalent_length still_seq.graph)
        | Error es -> Alcotest.failf "ablation failed: %s" (String.concat ";" es));
  ]

(* ------------------------------------------------------------------ *)
(* Micrograph staging                                                  *)
(* ------------------------------------------------------------------ *)

let micrograph_tests =
  [
    Alcotest.test_case "explicit order with parallelizable pair stages together" `Quick
      (fun () ->
        let profile_of n =
          Registry.profile_of (if n = "v" then "VPN" else if n = "m" then "Monitor" else "Firewall")
        in
        let staged =
          Micrograph.order_items ~items:[ "v"; "m"; "f" ] ~profile_of
            ~ordered:[ ("v", "m"); ("m", "f") ]
            ~forced_parallel:[] ()
        in
        check Alcotest.(list (list string)) "stages" [ [ "v" ]; [ "m"; "f" ] ] staged.stages);
    Alcotest.test_case "forced parallel overrides a gray pair" `Quick (fun () ->
        (* Firewall/Monitor is gray in the firewall-first direction;
           Priority forces them into one stage anyway. *)
        let profile_of n = Registry.profile_of (if n = "f" then "Firewall" else "Monitor") in
        let staged =
          Micrograph.order_items ~items:[ "f"; "m" ] ~profile_of ~ordered:[]
            ~forced_parallel:[ ("f", "m") ] ()
        in
        check Alcotest.(list (list string)) "one stage" [ [ "f"; "m" ] ] staged.stages);
    Alcotest.test_case "unordered pair that is gray both ways gets sequenced with a warning"
      `Quick (fun () ->
        let profile_of n = Registry.profile_of (if n = "p" then "Proxy" else "Compression") in
        let staged =
          Micrograph.order_items ~items:[ "p"; "c" ] ~profile_of ~ordered:[]
            ~forced_parallel:[] ()
        in
        check Alcotest.(list (list string)) "appearance order" [ [ "p" ]; [ "c" ] ]
          staged.stages;
        check Alcotest.bool "warned" true (staged.warnings <> []));
    Alcotest.test_case "unordered pair parallel in the reverse direction still parallelizes"
      `Quick (fun () ->
        (* Gateway reads; LB writes the same fields. gw-before-lb is
           copy-parallelizable, so no edge is imposed. *)
        let profile_of n = Registry.profile_of (if n = "g" then "Gateway" else "LoadBalancer") in
        let staged =
          Micrograph.order_items ~items:[ "lb"; "g" ]
            ~profile_of:(fun n -> profile_of (if n = "g" then "g" else "lb"))
            ~ordered:[] ~forced_parallel:[] ()
        in
        check Alcotest.int "single stage" 1 (List.length staged.stages));
    Alcotest.test_case "transitive order constraints are honoured" `Quick (fun () ->
        (* v before m, m before f: v-f is gray transitively, so f cannot
           share v's stage even though v-f has no explicit rule. *)
        let profile_of n =
          Registry.profile_of (if n = "v" then "VPN" else if n = "m" then "Monitor" else "Caching")
        in
        let staged =
          Micrograph.order_items ~items:[ "v"; "m"; "f" ] ~profile_of
            ~ordered:[ ("v", "m"); ("m", "f") ]
            ~forced_parallel:[] ()
        in
        (match staged.stages with
        | [ "v" ] :: _ -> ()
        | s -> Alcotest.failf "vpn not alone first: %d stages" (List.length s)));
  ]

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let plan_of text =
  let o = compile_ok text in
  match Tables.of_output o with
  | Ok p -> p
  | Error e -> Alcotest.failf "plan failed: %s" e

let tables_tests =
  [
    Alcotest.test_case "north-south plan needs no copies" `Quick (fun () ->
        let p = plan_of north_south in
        check Alcotest.int "header copies" 0 p.header_copies;
        check Alcotest.int "full copies" 0 p.full_copies;
        check Alcotest.int "one merge point" 1 (List.length p.merges);
        check Alcotest.int "one version" 1 p.version_count);
    Alcotest.test_case "north-south merger expects mon and fw" `Quick (fun () ->
        let p = plan_of north_south in
        match p.merges with
        | [ m ] ->
            check Alcotest.int "two branches" 2 (List.length m.expected);
            check Alcotest.bool "no ops" true (m.ops = []);
            check Alcotest.bool "any-drop" true (m.drop_policy = `Any)
        | _ -> Alcotest.fail "expected one merge spec");
    Alcotest.test_case "west-east plan copies headers for the LB" `Quick (fun () ->
        let p = plan_of west_east in
        check Alcotest.int "one header copy" 1 p.header_copies;
        check Alcotest.int "no full copies" 0 p.full_copies;
        match p.merges with
        | [ m ] ->
            (* modify(v1.sip, v2.sip) and modify(v1.dip, v2.dip). *)
            check Alcotest.int "two ops" 2 (List.length m.ops)
        | _ -> Alcotest.fail "expected one merge spec");
    Alcotest.test_case "payload writers get full copies" `Quick (fun () ->
        let p = plan_of "Chain(Caching, VPN)" in
        check Alcotest.int "full" 1 p.full_copies;
        check Alcotest.int "header" 0 p.header_copies);
    Alcotest.test_case "nil targets point at the innermost merger" `Quick (fun () ->
        let p = plan_of north_south in
        let entry name = Option.get (Tables.find_nf p name) in
        check Alcotest.(option int) "fw" (Some 0) (entry "fw").Tables.nil_target;
        check Alcotest.(option int) "mon" (Some 0) (entry "mon").Tables.nil_target;
        check Alcotest.(option int) "vpn has none" None (entry "vpn").Tables.nil_target;
        check Alcotest.(option int) "lb has none" None (entry "lb").Tables.nil_target);
    Alcotest.test_case "Copy_all copies every non-first branch" `Quick (fun () ->
        let graph = Graph.par [ Graph.nf "a"; Graph.nf "b"; Graph.nf "c" ] in
        let profile_of _ = Registry.profile_of "Firewall" in
        match Tables.plan ~copy_mode:`Copy_all ~profile_of graph with
        | Ok p -> check Alcotest.int "two copies" 2 (p.header_copies + p.full_copies)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "auto mode shares buffers for readers" `Quick (fun () ->
        let graph = Graph.par [ Graph.nf "a"; Graph.nf "b"; Graph.nf "c" ] in
        let profile_of _ = Registry.profile_of "Monitor" in
        match Tables.plan ~profile_of graph with
        | Ok p ->
            check Alcotest.int "no copies" 0 (p.header_copies + p.full_copies);
            check Alcotest.int "one version" 1 p.version_count
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "dirty memory reuse: disjoint writers share" `Quick (fun () ->
        Registry.register ~kind:"TosWriter" ~profile:[ Action.Write Nfp_packet.Field.Tos ] ();
        Registry.register ~kind:"TtlWriter" ~profile:[ Action.Write Nfp_packet.Field.Ttl ] ();
        let graph = Graph.par [ Graph.nf "a"; Graph.nf "b" ] in
        let profile_of n = Registry.profile_of (if n = "a" then "TosWriter" else "TtlWriter") in
        match Tables.plan ~profile_of graph with
        | Ok p -> check Alcotest.int "no copies" 0 (p.header_copies + p.full_copies)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "same-field writers both copy" `Quick (fun () ->
        Registry.register ~kind:"TosWriter" ~profile:[ Action.Write Nfp_packet.Field.Tos ] ();
        let graph = Graph.par [ Graph.nf "a"; Graph.nf "b" ] in
        let profile_of _ = Registry.profile_of "TosWriter" in
        match Tables.plan ~profile_of graph with
        | Ok p ->
            check Alcotest.int "two copies" 2 p.header_copies;
            (* Merge order: later branch's op last, so its write wins. *)
            (match Tables.find_merge p 0 with
            | Some m -> check Alcotest.int "two ops" 2 (List.length m.ops)
            | None -> Alcotest.fail "merge missing")
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "version limit enforced" `Quick (fun () ->
        Registry.register ~kind:"TosWriter" ~profile:[ Action.Write Nfp_packet.Field.Tos ] ();
        let graph = Graph.par (List.init 17 (fun i -> Graph.nf (Printf.sprintf "w%d" i))) in
        let profile_of _ = Registry.profile_of "TosWriter" in
        match Tables.plan ~profile_of graph with
        | Ok _ -> Alcotest.fail "accepted more than 16 versions"
        | Error e -> check Alcotest.bool "message" true (String.length e > 0));
    Alcotest.test_case "nested parallelism wires inner merger to outer" `Quick (fun () ->
        let graph =
          Graph.par
            [ Graph.seq [ Graph.nf "a"; Graph.par [ Graph.nf "b"; Graph.nf "c" ] ]; Graph.nf "d" ]
        in
        let profile_of _ = Registry.profile_of "Monitor" in
        match Tables.plan ~profile_of graph with
        | Ok p ->
            check Alcotest.int "two merge points" 2 (List.length p.merges);
            let outer =
              List.find
                (fun (m : Tables.merge_spec) ->
                  List.exists
                    (fun (e : Tables.expect) ->
                      match e.deliverer with Tables.D_merger _ -> true | _ -> false)
                    m.expected)
                p.merges
            in
            check Alcotest.int "outer expects two" 2 (List.length outer.expected)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "priority pair sets the drop policy" `Quick (fun () ->
        let o = compile_ok "NF(ips, IPS)\nNF(fw, Firewall)\nPriority(ips > fw)" in
        match Tables.of_output o with
        | Ok p -> (
            match p.merges with
            | [ m ] -> (
                match m.drop_policy with
                | `Priority_to (Tables.D_nf "ips") -> ()
                | _ -> Alcotest.fail "expected priority to ips")
            | _ -> Alcotest.fail "expected one merge spec")
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "sequential plans have no merges" `Quick (fun () ->
        let p = plan_of "Chain(NAT, LoadBalancer)" in
        check Alcotest.int "no merges" 0 (List.length p.merges);
        check Alcotest.int "no copies" 0 (p.header_copies + p.full_copies));
    Alcotest.test_case "classifier action reaches the first NF" `Quick (fun () ->
        let p = plan_of north_south in
        match p.classifier_actions with
        | [ Tables.Distribute { version = 1; targets = [ Tables.To_nf "vpn" ] } ] -> ()
        | _ -> Alcotest.fail "unexpected classifier actions");
    Alcotest.test_case "copies_bytes accounts header and full copies" `Quick (fun () ->
        let p = plan_of west_east in
        check Alcotest.int "64 bytes"
          64
          (Tables.copies_bytes_per_packet p ~packet_bytes:1500 ~header_bytes:64));
    Alcotest.test_case "unknown profile is an error" `Quick (fun () ->
        let graph = Graph.nf "mystery" in
        match Tables.plan ~profile_of:(fun _ -> raise Not_found) graph with
        | Ok _ -> Alcotest.fail "accepted unknown NF"
        | Error _ -> ());
    Alcotest.test_case "plan pp renders, including the serialization" `Quick (fun () ->
        let p = plan_of north_south in
        let text = Format.asprintf "%a" Tables.pp p in
        check Alcotest.bool "non-empty" true (String.length text > 100);
        let has needle =
          let n = String.length needle and h = String.length text in
          let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "serial order shown" true
          (has "equivalent to sequential order: vpn -> mon -> fw -> lb"));
    Alcotest.test_case "serialization puts droppers after readers" `Quick (fun () ->
        (* mon || fw: monitor (reader) serializes before the dropping
           firewall, matching nil-packet semantics. *)
        let p = plan_of "NF(mon, Monitor)\nNF(fw, Firewall)\nOrder(mon, before, fw)" in
        check Alcotest.(list string) "order" [ "mon"; "fw" ] p.serial_order);
    Alcotest.test_case "serialization puts copy branches last" `Quick (fun () ->
        let p = plan_of west_east in
        (* lb carries the copy, so it serializes after mon. *)
        check Alcotest.(list string) "order" [ "ids"; "mon"; "lb" ] p.serial_order);
  ]

(* ------------------------------------------------------------------ *)
(* Merge ops                                                           *)
(* ------------------------------------------------------------------ *)

let mk_packet payload =
  let flow =
    Nfp_packet.Flow.make
      ~sip:(Option.get (Nfp_packet.Flow.ip_of_string "10.0.0.1"))
      ~dip:(Option.get (Nfp_packet.Flow.ip_of_string "10.0.0.2"))
      ~sport:1 ~dport:2 ~proto:6
  in
  Nfp_packet.Packet.create ~flow ~payload ()

let merge_op_tests =
  [
    Alcotest.test_case "modify transplants a field" `Quick (fun () ->
        let v1 = mk_packet "aa" and v2 = mk_packet "aa" in
        Nfp_packet.Packet.set_sip v2 99l;
        let get = function 1 -> Some v1 | 2 -> Some v2 | _ -> None in
        Merge_op.apply (Merge_op.Modify { dst = 1; src = 2; field = Nfp_packet.Field.Sip }) ~get;
        check Alcotest.int32 "transplanted" 99l (Nfp_packet.Packet.sip v1));
    Alcotest.test_case "align_headers adds the AH the source gained" `Quick (fun () ->
        let v1 = mk_packet "xx" and v2 = mk_packet "xx" in
        Nfp_packet.Packet.add_ah v2 ~spi:5l ~seq:6l ~icv:7l;
        let get = function 1 -> Some v1 | 2 -> Some v2 | _ -> None in
        Merge_op.apply (Merge_op.Align_headers { dst = 1; src = 2 }) ~get;
        check Alcotest.bool "AH added" true (Nfp_packet.Packet.has_ah v1);
        match Nfp_packet.Packet.remove_ah v1 with
        | Some (spi, seq, icv) ->
            check Alcotest.int32 "spi" 5l spi;
            check Alcotest.int32 "seq" 6l seq;
            check Alcotest.int32 "icv" 7l icv
        | None -> Alcotest.fail "AH missing");
    Alcotest.test_case "align_headers removes an AH the source lost" `Quick (fun () ->
        let v1 = mk_packet "xx" and v2 = mk_packet "xx" in
        Nfp_packet.Packet.add_ah v1 ~spi:1l ~seq:1l ~icv:1l;
        let get = function 1 -> Some v1 | 2 -> Some v2 | _ -> None in
        Merge_op.apply (Merge_op.Align_headers { dst = 1; src = 2 }) ~get;
        check Alcotest.bool "AH removed" false (Nfp_packet.Packet.has_ah v1));
    Alcotest.test_case "missing versions are a no-op" `Quick (fun () ->
        let v1 = mk_packet "xx" in
        let before = Nfp_packet.Packet.to_bytes v1 in
        let get = function 1 -> Some v1 | _ -> None in
        Merge_op.apply (Merge_op.Modify { dst = 1; src = 2; field = Nfp_packet.Field.Sip }) ~get;
        check Alcotest.bool "unchanged" true (Bytes.equal before (Nfp_packet.Packet.to_bytes v1)));
    Alcotest.test_case "pp uses the paper's notation" `Quick (fun () ->
        check Alcotest.string "modify" "modify(v1.sip, v2.sip)"
          (Format.asprintf "%a" Merge_op.pp
             (Merge_op.Modify { dst = 1; src = 2; field = Nfp_packet.Field.Sip })));
  ]

(* ------------------------------------------------------------------ *)
(* Overhead (§6.3.1)                                                   *)
(* ------------------------------------------------------------------ *)

let overhead_tests =
  [
    Alcotest.test_case "ro = 64(d-1)/s" `Quick (fun () ->
        check (Alcotest.float 1e-9) "64B degree 2" 1.0
          (Overhead.ratio ~packet_bytes:64 ~degree:2);
        check (Alcotest.float 1e-9) "1500B degree 2" (64.0 /. 1500.0)
          (Overhead.ratio ~packet_bytes:1500 ~degree:2);
        check (Alcotest.float 1e-9) "degree 1 free" 0.0
          (Overhead.ratio ~packet_bytes:64 ~degree:1));
    Alcotest.test_case "datacenter constant 0.088(d-1)" `Quick (fun () ->
        check (Alcotest.float 1e-9) "degree 2" 0.088 (Overhead.datacenter_ratio ~degree:2);
        check (Alcotest.float 1e-9) "degree 5" (0.088 *. 4.0)
          (Overhead.datacenter_ratio ~degree:5));
    Alcotest.test_case "distribution averaging matches the paper's mean" `Quick (fun () ->
        (* The IMC distribution should land near ro = 0.088 at degree 2. *)
        let ro =
          Overhead.ratio_distribution ~sizes:Nfp_traffic.Size_dist.datacenter ~degree:2
        in
        if abs_float (ro -. 0.088) > 0.01 then
          Alcotest.failf "ro %.3f too far from the paper's 0.088" ro);
    Alcotest.test_case "plan overhead for west-east" `Quick (fun () ->
        let p = plan_of west_east in
        check (Alcotest.float 1e-9) "8.8%" (64.0 /. 724.0)
          (Overhead.plan_overhead p ~packet_bytes:724));
    Alcotest.test_case "invalid arguments" `Quick (fun () ->
        Alcotest.check_raises "degree"
          (Invalid_argument "Overhead.ratio: degree must be at least 1") (fun () ->
            ignore (Overhead.ratio ~packet_bytes:64 ~degree:0)));
  ]

(* ------------------------------------------------------------------ *)
(* Partition (§7)                                                      *)
(* ------------------------------------------------------------------ *)

let partition_tests =
  [
    Alcotest.test_case "cores_needed counts NFs, classifier, mergers" `Quick (fun () ->
        let g = Graph.seq [ Graph.nf "a"; Graph.par [ Graph.nf "b"; Graph.nf "c" ] ] in
        check Alcotest.int "cores" (3 + 1 + 1) (Partition.cores_needed g));
    Alcotest.test_case "fits on one server when possible" `Quick (fun () ->
        let g = Graph.seq [ Graph.nf "a"; Graph.nf "b" ] in
        match Partition.partition ~cores_per_server:8 g with
        | Ok [ a ] -> check Alcotest.int "server 0" 0 a.Partition.server
        | Ok l -> Alcotest.failf "expected 1 server, got %d" (List.length l)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "splits a long chain" `Quick (fun () ->
        let g = Graph.seq (List.init 6 (fun i -> Graph.nf (Printf.sprintf "n%d" i))) in
        match Partition.partition ~cores_per_server:4 g with
        | Ok assignments ->
            check Alcotest.int "two servers" 2 (List.length assignments);
            check Alcotest.int "one handoff" 1 (Partition.inter_server_hops assignments);
            let all = List.concat_map (fun a -> Graph.nfs a.Partition.segment) assignments in
            check Alcotest.int "all NFs placed" 6 (List.length all)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "parallel blocks are never split" `Quick (fun () ->
        let g =
          Graph.seq
            [ Graph.nf "pre"; Graph.par [ Graph.nf "a"; Graph.nf "b"; Graph.nf "c" ]; Graph.nf "post" ]
        in
        match Partition.partition ~cores_per_server:6 g with
        | Ok assignments ->
            let holds_par a = List.mem "a" (Graph.nfs a.Partition.segment) in
            let holder = List.find holds_par assignments in
            check Alcotest.bool "b with a" true (List.mem "b" (Graph.nfs holder.segment));
            check Alcotest.bool "c with a" true (List.mem "c" (Graph.nfs holder.segment))
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "oversized parallel block is an error" `Quick (fun () ->
        let g = Graph.par (List.init 8 (fun i -> Graph.nf (Printf.sprintf "n%d" i))) in
        match Partition.partition ~cores_per_server:4 g with
        | Ok _ -> Alcotest.fail "accepted an unsplittable block"
        | Error _ -> ());
    Alcotest.test_case "tiny budget rejected" `Quick (fun () ->
        match Partition.partition ~cores_per_server:1 (Graph.nf "a") with
        | Ok _ -> Alcotest.fail "accepted one core"
        | Error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Plan invariants over random series-parallel graphs                  *)
(* ------------------------------------------------------------------ *)

let kind_pool =
  [| "Monitor"; "Gateway"; "Caching"; "Firewall"; "IDS"; "LoadBalancer"; "VPN";
     "Forwarder"; "NAT"; "Proxy" |]

(* A random series-parallel term over n distinctly-named NFs with
   random registry kinds. *)
let random_graph_gen =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let* kinds = array_size (return n) (int_range 0 (Array.length kind_pool - 1)) in
    let* shape_bits = array_size (return (2 * n)) bool in
    return (n, kinds, shape_bits))

let build_random_graph (n, kinds, shape_bits) =
  let name i = Printf.sprintf "g%d" i in
  let profile_of nm =
    let i = int_of_string (String.sub nm 1 (String.length nm - 1)) in
    Registry.profile_of kind_pool.(kinds.(i))
  in
  (* Fold NFs into a term, branching on shape bits. *)
  let rec build i =
    if i >= n then (Graph.nf (name (n - 1)), n)
    else if i = n - 1 then (Graph.nf (name i), i + 1)
    else if shape_bits.(2 * i) then
      let sub, next = build (i + 1) in
      ((if shape_bits.((2 * i) + 1) then Graph.seq [ Graph.nf (name i); sub ]
        else Graph.par [ Graph.nf (name i); sub ]),
        next)
    else (Graph.nf (name i), i + 1)
  in
  let rec collect i acc =
    if i >= n then List.rev acc
    else
      let term, next = build i in
      collect next (term :: acc)
  in
  let pieces = collect 0 [] in
  (Graph.seq pieces, profile_of)

let random_graph_arbitrary =
  QCheck.make
    ~print:(fun spec -> Graph.to_string (fst (build_random_graph spec)))
    random_graph_gen

let plan_invariant_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200 ~name:"plans satisfy structural invariants"
         random_graph_arbitrary
         (fun spec ->
           let graph, profile_of = build_random_graph spec in
           match Tables.plan ~profile_of graph with
           | Error _ -> QCheck.assume_fail ()
           | Ok plan ->
               let nfs = Graph.nfs graph in
               (* Every NF has exactly one FT entry. *)
               List.length plan.nf_entries = List.length nfs
               && List.for_all (fun n -> Tables.find_nf plan n <> None) nfs
               (* serial_order is a permutation of the graph's NFs. *)
               && List.sort compare plan.serial_order = List.sort compare nfs
               (* Every To_nf target exists; every To_merger target has a
                  spec; every merge expects at least two branches. *)
               &&
               let targets_ok actions =
                 List.for_all
                   (function
                     | Tables.Distribute { targets; _ } ->
                         List.for_all
                           (function
                             | Tables.To_nf n -> Tables.find_nf plan n <> None
                             | Tables.To_merger m -> Tables.find_merge plan m <> None
                             | Tables.Deliver -> true)
                           targets
                     | Tables.Copy _ -> true)
                   actions
               in
               targets_ok plan.classifier_actions
               && List.for_all (fun (e : Tables.nf_entry) -> targets_ok e.actions)
                    plan.nf_entries
               && List.for_all
                    (fun (m : Tables.merge_spec) ->
                      List.length m.expected >= 2 && targets_ok m.next)
                    plan.merges
               (* Version accounting: copies = versions beyond v1. *)
               && plan.header_copies + plan.full_copies = plan.version_count - 1));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200 ~name:"exactly one Deliver per plan"
         random_graph_arbitrary
         (fun spec ->
           let graph, profile_of = build_random_graph spec in
           match Tables.plan ~profile_of graph with
           | Error _ -> QCheck.assume_fail ()
           | Ok plan ->
               let count_actions actions =
                 List.fold_left
                   (fun acc -> function
                     | Tables.Distribute { targets; _ } ->
                         acc
                         + List.length
                             (List.filter (fun t -> t = Tables.Deliver) targets)
                     | Tables.Copy _ -> acc)
                   0 actions
               in
               count_actions plan.classifier_actions
               + List.fold_left
                   (fun acc (e : Tables.nf_entry) -> acc + count_actions e.actions)
                   0 plan.nf_entries
               + List.fold_left
                   (fun acc (m : Tables.merge_spec) -> acc + count_actions m.next)
                   0 plan.merges
               = 1));
  ]

let () =
  Alcotest.run "nfp_core"
    [
      ("dependency", dependency_tests);
      ("parallelism", parallelism_tests);
      ("analysis", analysis_tests);
      ("graph", graph_tests);
      ("micrograph", micrograph_tests);
      ("compiler", compiler_tests);
      ("tables", tables_tests);
      ("merge_op", merge_op_tests);
      ("overhead", overhead_tests);
      ("partition", partition_tests);
      ("plan_invariants", plan_invariant_tests);
    ]
