(* Tests for nfp_openbox: building blocks, OpenBox graph merging, and
   block-level NFP parallelism (paper §7, Fig. 15). *)

open Nfp_openbox
open Nfp_packet

let check = Alcotest.check

let ip s = Option.get (Flow.ip_of_string s)

let pkt ?(payload = "HELLO-BLOCKS") ?(dport = 61080) () =
  Packet.create
    ~flow:(Flow.make ~sip:(ip "10.0.1.1") ~dip:(ip "10.8.2.10") ~sport:12000 ~dport ~proto:6)
    ~payload ()

let signature = List.hd (Nfp_nf.Ids.default_signatures 1)

let names stages = List.map (List.map (fun (b : Block.t) -> b.name)) stages

let block_tests =
  [
    Alcotest.test_case "header classifier drops on a deny rule" `Quick (fun () ->
        let deny =
          { (Nfp_nf.Firewall.any_rule ~permit:false) with Nfp_nf.Firewall.dport_range = (80, 80) }
        in
        let hc = Block.header_classifier ~name:"hc" ~acl:[ deny ] in
        check Alcotest.bool "dropped" true (hc.process (pkt ~dport:80 ()) = Block.Dropped);
        check Alcotest.bool "passed" true (hc.process (pkt ~dport:81 ()) = Block.Continue));
    Alcotest.test_case "dpi drops on a signature" `Quick (fun () ->
        let dpi = Block.dpi ~name:"dpi" ~signatures:[ signature ] in
        check Alcotest.bool "dropped" true
          (dpi.process (pkt ~payload:("x" ^ signature) ()) = Block.Dropped);
        check Alcotest.bool "passed" true (dpi.process (pkt ()) = Block.Continue));
    Alcotest.test_case "alert block tags its source" `Quick (fun () ->
        let a = Block.alert ~name:"a" ~source:"firewall" in
        check Alcotest.bool "alert" true (a.process (pkt ()) = Block.Alerted "firewall"));
    Alcotest.test_case "same_work compares kind and configuration" `Quick (fun () ->
        let acl = Nfp_nf.Firewall.default_acl 10 in
        let h1 = Block.header_classifier ~name:"x" ~acl in
        let h2 = Block.header_classifier ~name:"y" ~acl in
        let h3 = Block.header_classifier ~name:"z" ~acl:(Nfp_nf.Firewall.default_acl 5) in
        check Alcotest.bool "same config shares" true (Block.same_work h1 h2);
        check Alcotest.bool "different config does not" false (Block.same_work h1 h3);
        check Alcotest.bool "different kinds do not" false
          (Block.same_work h1 (Block.read_packets ())));
  ]

let pipeline_tests =
  [
    Alcotest.test_case "merge shares the common prefix" `Quick (fun () ->
        let merged = Pipeline.merge (Pipeline.firewall ()) (Pipeline.ips ()) in
        check Alcotest.int "two shared blocks" 2 (List.length merged.shared);
        check Alcotest.(list string) "shared names" [ "read"; "hc" ]
          (List.map (fun (b : Block.t) -> b.name) merged.shared));
    Alcotest.test_case "different ACLs prevent sharing the classifier" `Quick (fun () ->
        let fw = Pipeline.firewall ~acl:(Nfp_nf.Firewall.default_acl 10) () in
        let ips = Pipeline.ips ~acl:(Nfp_nf.Firewall.default_acl 20) () in
        let merged = Pipeline.merge fw ips in
        check Alcotest.int "only read shared" 1 (List.length merged.shared));
    Alcotest.test_case "stages reproduce Fig. 15" `Quick (fun () ->
        let merged = Pipeline.merge (Pipeline.firewall ()) (Pipeline.ips ()) in
        let stages = Pipeline.stages merged in
        check
          Alcotest.(list (list string))
          "structure"
          [ [ "read" ]; [ "hc" ]; [ "alert_fw"; "dpi" ]; [ "alert_ips" ]; [ "output" ] ]
          (names stages));
    Alcotest.test_case "staged critical path is cheaper than two chains" `Quick (fun () ->
        let fw = Pipeline.firewall () and ips = Pipeline.ips () in
        let stages = Pipeline.stages (Pipeline.merge fw ips) in
        check Alcotest.bool "saved" true
          (Pipeline.staged_cycles stages
          < Pipeline.total_cycles fw + Pipeline.total_cycles ips));
    Alcotest.test_case "execute forwards clean traffic with both alerts" `Quick (fun () ->
        let stages = Pipeline.stages (Pipeline.merge (Pipeline.firewall ()) (Pipeline.ips ())) in
        let outcomes = Pipeline.execute stages (pkt ()) in
        check Alcotest.bool "no drop" false (List.mem Block.Dropped outcomes);
        check Alcotest.bool "firewall alert" true (List.mem (Block.Alerted "firewall") outcomes);
        check Alcotest.bool "ips alert" true (List.mem (Block.Alerted "ips") outcomes));
    Alcotest.test_case "execute stops at a DPI drop" `Quick (fun () ->
        let stages = Pipeline.stages (Pipeline.merge (Pipeline.firewall ()) (Pipeline.ips ())) in
        let outcomes = Pipeline.execute stages (pkt ~payload:("zz" ^ signature) ()) in
        check Alcotest.bool "dropped" true (List.mem Block.Dropped outcomes);
        check Alcotest.bool "ips alert never fires" false
          (List.mem (Block.Alerted "ips") outcomes));
    Alcotest.test_case "merging with itself shares everything" `Quick (fun () ->
        let fw = Pipeline.firewall () in
        let merged = Pipeline.merge fw (Pipeline.firewall ()) in
        check Alcotest.int "full prefix shared" 4 (List.length merged.shared);
        check Alcotest.bool "no leftover body" true
          (List.for_all (fun (b : Block.t) -> b.kind = "Output") merged.tail));
    Alcotest.test_case "pp_stages renders parallel groups" `Quick (fun () ->
        let stages = Pipeline.stages (Pipeline.merge (Pipeline.firewall ()) (Pipeline.ips ())) in
        let s = Format.asprintf "%a" Pipeline.pp_stages stages in
        check Alcotest.bool "has parallel group" true
          (String.length s > 0
          &&
          let rec contains i =
            i + 2 < String.length s && (String.sub s i 3 = " | " || contains (i + 1))
          in
          contains 0));
  ]

let deployment_tests =
  [
    Alcotest.test_case "staged pipeline lowers onto the dataplane" `Quick (fun () ->
        let stages = Pipeline.stages (Pipeline.merge (Pipeline.firewall ()) (Pipeline.ips ())) in
        let graph, nfs = Pipeline.to_deployment stages in
        check Alcotest.int "one NF per block" 6 (Nfp_core.Graph.nf_count graph);
        let plan =
          match
            Nfp_core.Tables.plan
              ~profile_of:(fun n -> (nfs n).Nfp_nf.Nf.profile)
              graph
          with
          | Ok p -> p
          | Error e -> Alcotest.fail e
        in
        (* Clean packet forwards through the deployed blocks. *)
        (match Nfp_infra.Reference.run_plan ~plan ~nfs (pkt ()) with
        | Some _ -> ()
        | None -> Alcotest.fail "clean packet dropped");
        (* A signature packet is dropped by the deployed DPI block. *)
        match Nfp_infra.Reference.run_plan ~plan ~nfs (pkt ~payload:("x" ^ signature) ()) with
        | None -> ()
        | Some _ -> Alcotest.fail "malicious packet survived");
    Alcotest.test_case "deployed execution matches direct execution" `Quick (fun () ->
        let stages = Pipeline.stages (Pipeline.merge (Pipeline.firewall ()) (Pipeline.ips ())) in
        let graph, nfs = Pipeline.to_deployment stages in
        let plan =
          match
            Nfp_core.Tables.plan ~profile_of:(fun n -> (nfs n).Nfp_nf.Nf.profile) graph
          with
          | Ok p -> p
          | Error e -> Alcotest.fail e
        in
        List.iter
          (fun p ->
            let direct =
              not (List.mem Block.Dropped (Pipeline.execute stages (Packet.full_copy p)))
            in
            let deployed =
              Nfp_infra.Reference.run_plan ~plan ~nfs (Packet.full_copy p) <> None
            in
            check Alcotest.bool "verdicts agree" direct deployed)
          [ pkt (); pkt ~payload:("zz" ^ signature) (); pkt ~dport:61099 () ]);
  ]

let () =
  Alcotest.run "nfp_openbox"
    [ ("block", block_tests); ("pipeline", pipeline_tests); ("deployment", deployment_tests) ]
