(* Tests for nfp_baseline: the OpenNetVM-style pipeline and the
   BESS-style run-to-completion model. *)

open Nfp_packet

let check = Alcotest.check

let ip s = Option.get (Flow.ip_of_string s)

let gen i =
  Packet.create
    ~flow:
      (Flow.make ~sip:(ip "10.0.1.1") ~dip:(ip "10.8.2.10")
         ~sport:(10000 + (i mod 1000))
         ~dport:61080 ~proto:6)
    ~payload:"PAYLOAD-XY" ()

let run ~make ~arrivals ~packets =
  Nfp_sim.Harness.run ~make ~gen ~arrivals ~packets ()

let fw_chain n () =
  List.init n (fun i -> fst (Nfp_nf.Firewall.create ~name:(Printf.sprintf "fw%d" i) ()))

let onvm_tests =
  [
    Alcotest.test_case "delivers everything below capacity" `Quick (fun () ->
        let make engine ~output =
          Nfp_baseline.Opennetvm.make ~nfs:(fw_chain 3 ()) engine ~output
        in
        let r = run ~make ~arrivals:(Nfp_sim.Harness.Uniform 1.0) ~packets:1000 in
        check Alcotest.int "delivered" 1000 r.delivered;
        check Alcotest.int "no loss" 0 r.ring_drops);
    Alcotest.test_case "NF drops are counted, not lost" `Quick (fun () ->
        let deny_all () = [ fst (Nfp_nf.Firewall.create ~acl:[ Nfp_nf.Firewall.any_rule ~permit:false ] ()) ] in
        let make engine ~output = Nfp_baseline.Opennetvm.make ~nfs:(deny_all ()) engine ~output in
        let r = run ~make ~arrivals:(Nfp_sim.Harness.Uniform 1.0) ~packets:200 in
        check Alcotest.int "all dropped by the NF" 200 r.nf_drops;
        check Alcotest.int "none delivered" 0 r.delivered);
    Alcotest.test_case "overload drops at the manager's RX" `Quick (fun () ->
        let make engine ~output =
          Nfp_baseline.Opennetvm.make ~nfs:(fw_chain 1 ()) engine ~output
        in
        let r = run ~make ~arrivals:(Nfp_sim.Harness.Uniform 14.0) ~packets:5000 in
        check Alcotest.bool "drops" true (r.ring_drops > 0);
        check Alcotest.int "conserved" 5000 (r.delivered + r.ring_drops + r.nf_drops));
    Alcotest.test_case "throughput is switch-bound and flat in chain length" `Quick
      (fun () ->
        (* Table 4: OpenNetVM holds ~9.4 Mpps for 1-3 firewall NFs. *)
        let max_rate n =
          Nfp_sim.Harness.max_lossless_mpps
            ~make:(fun engine ~output ->
              Nfp_baseline.Opennetvm.make ~nfs:(fw_chain n ()) engine ~output)
            ~gen ~packets:8000 ~hi:14.88 ~iterations:8 ()
        in
        let r1 = max_rate 1 and r3 = max_rate 3 in
        if r1 < 8.0 || r1 > 11.0 then Alcotest.failf "1-NF rate %.2f off Table 4" r1;
        if abs_float (r1 -. r3) /. r1 > 0.15 then
          Alcotest.failf "rates not flat: %.2f vs %.2f" r1 r3);
    Alcotest.test_case "latency grows with chain length" `Quick (fun () ->
        let latency n =
          let make engine ~output =
            Nfp_baseline.Opennetvm.make ~nfs:(fw_chain n ()) engine ~output
          in
          let r = run ~make ~arrivals:(Nfp_sim.Harness.Burst (5.0, 32)) ~packets:6000 in
          Nfp_algo.Stats.mean r.latency
        in
        let l1 = latency 1 and l4 = latency 4 in
        if l4 <= l1 then Alcotest.failf "latency did not grow: %.0f vs %.0f" l1 l4);
    Alcotest.test_case "core accounting includes the switch" `Quick (fun () ->
        check Alcotest.int "cores" 4 (Nfp_baseline.Opennetvm.core_count ~nfs:(fw_chain 3 ())));
  ]

let bess_tests =
  [
    Alcotest.test_case "processes the whole chain per packet" `Quick (fun () ->
        let monitors = ref [] in
        let chain () =
          let mon, stats = Nfp_nf.Monitor.create () in
          monitors := stats :: !monitors;
          [ mon ]
        in
        let make engine ~output = Nfp_baseline.Bess.make ~cores:2 ~chain engine ~output in
        let r = run ~make ~arrivals:(Nfp_sim.Harness.Uniform 1.0) ~packets:400 in
        check Alcotest.int "delivered" 400 r.delivered;
        let total =
          List.fold_left (fun acc s -> acc + s.Nfp_nf.Monitor.total_packets ()) 0 !monitors
        in
        check Alcotest.int "replicas saw everything once" 400 total;
        check Alcotest.int "one chain per core" 2 (List.length !monitors));
    Alcotest.test_case "RSS spreads flows across replicas" `Quick (fun () ->
        let counts = ref [] in
        let chain () =
          let mon, stats = Nfp_nf.Monitor.create () in
          counts := stats :: !counts;
          [ mon ]
        in
        let make engine ~output = Nfp_baseline.Bess.make ~cores:4 ~chain engine ~output in
        ignore (run ~make ~arrivals:(Nfp_sim.Harness.Uniform 1.0) ~packets:2000);
        let used =
          List.filter (fun s -> s.Nfp_nf.Monitor.total_packets () > 0) !counts
        in
        check Alcotest.bool "several replicas used" true (List.length used >= 3));
    Alcotest.test_case "reaches line rate with enough cores (Table 4)" `Quick (fun () ->
        let make engine ~output =
          Nfp_baseline.Bess.make ~cores:5 ~chain:(fw_chain 3) engine ~output
        in
        let rate =
          Nfp_sim.Harness.max_lossless_mpps ~make ~gen ~packets:8000 ~hi:14.88
            ~iterations:6 ()
        in
        if rate < 14.0 then Alcotest.failf "BESS rate %.2f below line rate" rate);
    Alcotest.test_case "dropping NFs stop the run-to-completion chain" `Quick (fun () ->
        let chain () =
          [
            fst (Nfp_nf.Firewall.create ~acl:[ Nfp_nf.Firewall.any_rule ~permit:false ] ());
            fst (Nfp_nf.Monitor.create ());
          ]
        in
        let make engine ~output = Nfp_baseline.Bess.make ~cores:1 ~chain engine ~output in
        let r = run ~make ~arrivals:(Nfp_sim.Harness.Uniform 0.5) ~packets:100 in
        check Alcotest.int "all dropped" 100 r.nf_drops);
    Alcotest.test_case "throughput scales with replica cores" `Quick (fun () ->
        (* An IDS-heavy chain: one core saturates well below line rate,
           three cores roughly triple it (Table 4's RTC scaling). *)
        let chain () = [ fst (Nfp_nf.Ids.create ()) ] in
        let rate cores =
          Nfp_sim.Harness.max_lossless_mpps
            ~make:(fun engine ~output -> Nfp_baseline.Bess.make ~cores ~chain engine ~output)
            ~gen ~packets:8000 ~hi:14.88 ~iterations:7 ()
        in
        let r1 = rate 1 and r3 = rate 3 in
        let ratio = r3 /. r1 in
        if ratio < 2.2 || ratio > 3.5 then
          Alcotest.failf "scaling ratio %.2f outside [2.2, 3.5]" ratio);
    Alcotest.test_case "zero cores rejected" `Quick (fun () ->
        let engine = Nfp_sim.Engine.create () in
        Alcotest.check_raises "cores" (Invalid_argument "Bess.make: need at least one core")
          (fun () ->
            ignore
              (Nfp_baseline.Bess.make ~cores:0 ~chain:(fw_chain 1) engine
                 ~output:(fun ~pid:_ _ -> ()))));
  ]

let comparison_tests =
  [
    Alcotest.test_case "Table 4 ordering: BESS > NFP > OpenNetVM throughput" `Quick
      (fun () ->
        let gen64 = gen in
        let onvm =
          Nfp_sim.Harness.max_lossless_mpps
            ~make:(fun engine ~output ->
              Nfp_baseline.Opennetvm.make ~nfs:(fw_chain 2 ()) engine ~output)
            ~gen:gen64 ~packets:8000 ~hi:14.88 ~iterations:7 ()
        in
        let bess =
          Nfp_sim.Harness.max_lossless_mpps
            ~make:(fun engine ~output ->
              Nfp_baseline.Bess.make ~cores:4 ~chain:(fw_chain 2) engine ~output)
            ~gen:gen64 ~packets:8000 ~hi:14.88 ~iterations:7 ()
        in
        let nfp =
          let graph =
            Nfp_core.Graph.seq [ Nfp_core.Graph.nf "fw0"; Nfp_core.Graph.nf "fw1" ]
          in
          let profile_of _ = Nfp_nf.Registry.profile_of "Firewall" in
          let plan =
            match Nfp_core.Tables.plan ~profile_of graph with
            | Ok p -> p
            | Error e -> Alcotest.fail e
          in
          Nfp_sim.Harness.max_lossless_mpps
            ~make:(fun engine ~output ->
              let lookup =
                let l = fw_chain 2 () in
                fun n -> List.find (fun (x : Nfp_nf.Nf.t) -> x.name = n) l
              in
              Nfp_infra.System.make ~plan ~nfs:lookup engine ~output)
            ~gen:gen64 ~packets:8000 ~hi:14.88 ~iterations:7 ()
        in
        if not (bess > nfp && nfp > onvm) then
          Alcotest.failf "ordering violated: bess %.2f nfp %.2f onvm %.2f" bess nfp onvm);
  ]

let () =
  Alcotest.run "nfp_baseline"
    [ ("opennetvm", onvm_tests); ("bess", bess_tests); ("comparison", comparison_tests) ]
