test/test_nf.mli:
