test/test_sim.ml: Alcotest Cost Engine Harness List Nfp_algo Nfp_packet Nfp_sim Nic Option Server
