test/test_policy.ml: Alcotest Format List Nfp_core Nfp_policy Parser Rule String Validate
