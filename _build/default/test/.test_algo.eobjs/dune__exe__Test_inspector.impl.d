test/test_inspector.ml: Action Alcotest Field Format List Nf Nfp_inspector Nfp_nf Nfp_packet Option Packet Registry
