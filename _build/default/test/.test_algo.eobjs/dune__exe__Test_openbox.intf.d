test/test_openbox.mli:
