test/test_traffic.ml: Alcotest Filename Fun Hashtbl Int64 List Nfp_algo Nfp_core Nfp_infra Nfp_nf Nfp_packet Nfp_sim Nfp_traffic Option Pcap Pktgen QCheck QCheck_alcotest Replay Size_dist String Sys
