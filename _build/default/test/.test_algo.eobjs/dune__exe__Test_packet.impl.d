test/test_packet.ml: Alcotest Bytes Char Field Flow Flow_match Gen Int32 Int64 List Meta Nfp_packet Option Packet QCheck QCheck_alcotest String
