test/test_openbox.ml: Alcotest Block Flow Format List Nfp_core Nfp_infra Nfp_nf Nfp_openbox Nfp_packet Option Packet Pipeline String
