test/test_algo.ml: Aes Aho_corasick Alcotest Bytes Char Checksum Gen Hashing Heap Int32 Int64 List Lpm Lz77 Nfp_algo Option Printf Prng QCheck QCheck_alcotest Queue Ring Stats String Token_bucket
