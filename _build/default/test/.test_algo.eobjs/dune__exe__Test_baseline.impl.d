test/test_baseline.ml: Alcotest Flow List Nfp_algo Nfp_baseline Nfp_core Nfp_infra Nfp_nf Nfp_packet Nfp_sim Option Packet Printf
