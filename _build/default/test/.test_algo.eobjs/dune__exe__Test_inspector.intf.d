test/test_inspector.mli:
