(* Tests for nfp_traffic: size distributions, the packet generator, and
   the §6.4 replay harness. *)

open Nfp_traffic

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Size_dist                                                           *)
(* ------------------------------------------------------------------ *)

let size_tests =
  [
    Alcotest.test_case "datacenter mean matches the paper's 724B" `Quick (fun () ->
        let m = Size_dist.mean Size_dist.datacenter in
        if abs_float (m -. 724.0) > 15.0 then Alcotest.failf "mean %.1f too far from 724" m);
    Alcotest.test_case "fixed distribution is degenerate" `Quick (fun () ->
        check (Alcotest.float 1e-9) "mean" 64.0 (Size_dist.mean (Size_dist.fixed 64));
        let prng = Nfp_algo.Prng.create ~seed:1L in
        for _ = 1 to 50 do
          check Alcotest.int "sample" 64 (Size_dist.sample prng (Size_dist.fixed 64))
        done);
    Alcotest.test_case "samples come from the support" `Quick (fun () ->
        let prng = Nfp_algo.Prng.create ~seed:2L in
        let support = List.map fst Size_dist.datacenter in
        for _ = 1 to 500 do
          let s = Size_dist.sample prng Size_dist.datacenter in
          if not (List.mem s support) then Alcotest.failf "sample %d outside support" s
        done);
    Alcotest.test_case "empirical mix approximates the weights" `Quick (fun () ->
        let prng = Nfp_algo.Prng.create ~seed:3L in
        let n = 20000 in
        let count64 = ref 0 in
        for _ = 1 to n do
          if Size_dist.sample prng Size_dist.datacenter = 64 then incr count64
        done;
        let share = float_of_int !count64 /. float_of_int n in
        if abs_float (share -. 0.30) > 0.03 then
          Alcotest.failf "64B share %.3f too far from 0.30" share);
    Alcotest.test_case "common sizes list" `Quick (fun () ->
        check Alcotest.(list int) "sweep" [ 64; 128; 256; 512; 1024; 1500 ]
          Size_dist.common_sizes);
    Alcotest.test_case "empty distribution rejected" `Quick (fun () ->
        Alcotest.check_raises "mean" (Invalid_argument "Size_dist.mean: empty distribution")
          (fun () -> ignore (Size_dist.mean [])));
  ]

(* ------------------------------------------------------------------ *)
(* Pktgen                                                              *)
(* ------------------------------------------------------------------ *)

let pktgen_tests =
  [
    Alcotest.test_case "deterministic per index" `Quick (fun () ->
        let g = Pktgen.create Pktgen.default in
        let a = Pktgen.packet g 7 and b = Pktgen.packet g 7 in
        check Alcotest.bool "identical" true (Nfp_packet.Packet.equal_wire a b));
    Alcotest.test_case "distinct indices give distinct flows within the cycle" `Quick
      (fun () ->
        let g = Pktgen.create { Pktgen.default with flows = 16 } in
        check Alcotest.bool "0 vs 1" false
          (Nfp_packet.Flow.equal (Pktgen.flow_of_index g 0) (Pktgen.flow_of_index g 1));
        check Alcotest.bool "cycles at 16" true
          (Nfp_packet.Flow.equal (Pktgen.flow_of_index g 0) (Pktgen.flow_of_index g 16)));
    Alcotest.test_case "frame size honours the distribution" `Quick (fun () ->
        let g = Pktgen.create { Pktgen.default with sizes = Size_dist.fixed 256 } in
        check Alcotest.int "wire bytes" 256 (Nfp_packet.Packet.wire_length (Pktgen.packet g 3));
        check Alcotest.int "predicted" 256 (Pktgen.frame_bytes g 3));
    Alcotest.test_case "64-byte frames carry 10-byte payloads" `Quick (fun () ->
        let g = Pktgen.create Pktgen.default in
        check Alcotest.int "payload" 10
          (String.length (Nfp_packet.Packet.payload (Pktgen.packet g 0))));
    Alcotest.test_case "tagged payloads embed the index" `Quick (fun () ->
        let g =
          Pktgen.create
            { Pktgen.default with payload_style = Pktgen.Tagged; sizes = Size_dist.fixed 128 }
        in
        let payload = Nfp_packet.Packet.payload (Pktgen.packet g 42) in
        check Alcotest.bool "prefix" true
          (String.length payload >= 4 && String.sub payload 0 4 = "#42;"));
    Alcotest.test_case "ascii payloads never match default IDS signatures" `Quick
      (fun () ->
        let g =
          Pktgen.create
            { Pktgen.default with payload_style = Pktgen.Ascii; sizes = Size_dist.fixed 1500 }
        in
        let auto = Nfp_algo.Aho_corasick.build (Nfp_nf.Ids.default_signatures 100) in
        for i = 0 to 50 do
          if Nfp_algo.Aho_corasick.matches auto (Nfp_packet.Packet.payload (Pktgen.packet g i))
          then Alcotest.failf "payload %d matched a signature" i
        done);
    Alcotest.test_case "default traffic passes the default firewall ACL" `Quick (fun () ->
        let g = Pktgen.create Pktgen.default in
        let fw, stats = Nfp_nf.Firewall.create () in
        for i = 0 to 199 do
          ignore (fw.Nfp_nf.Nf.process (Pktgen.packet g i))
        done;
        check Alcotest.int "no drops" 0 (stats.dropped ()));
    Alcotest.test_case "zero flows rejected" `Quick (fun () ->
        Alcotest.check_raises "flows"
          (Invalid_argument "Pktgen.create: need at least one flow") (fun () ->
            ignore (Pktgen.create { Pktgen.default with flows = 0 })));
    qtest "packets always parse"
      QCheck.(int_range 0 5000)
      (fun i ->
        let g =
          Pktgen.create { Pktgen.default with sizes = Size_dist.datacenter; seed = 11L }
        in
        match Nfp_packet.Packet.of_bytes (Nfp_packet.Packet.to_bytes (Pktgen.packet g i)) with
        | Ok _ -> true
        | Error _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let deployment_of text bindings =
  match Nfp_core.Compiler.compile_text text with
  | Error es -> Alcotest.failf "compile: %s" (String.concat ";" es)
  | Ok o -> (
      match Nfp_core.Tables.of_output o with
      | Error e -> Alcotest.failf "plan: %s" e
      | Ok plan ->
          let table = Hashtbl.create 8 in
          List.iter
            (fun (name, kind) ->
              Hashtbl.replace table name
                (Option.get (Nfp_nf.Registry.instantiate kind ~name)))
            bindings;
          (plan, Hashtbl.find table))

let chain_of bindings order () =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (name, kind) ->
      Hashtbl.replace table name (Option.get (Nfp_nf.Registry.instantiate kind ~name)))
    bindings;
  List.map (Hashtbl.find table) order

let replay_tests =
  [
    Alcotest.test_case "north-south replay agrees (paper §6.4)" `Quick (fun () ->
        let bindings =
          [ ("vpn", "VPN"); ("mon", "Monitor"); ("fw", "Firewall"); ("lb", "LoadBalancer") ]
        in
        let text =
          "NF(vpn, VPN)\nNF(mon, Monitor)\nNF(fw, Firewall)\nNF(lb, LoadBalancer)\n\
           Chain(vpn, mon, fw, lb)"
        in
        let gen =
          Pktgen.create
            { Pktgen.default with payload_style = Pktgen.Tagged; sizes = Size_dist.datacenter }
        in
        let o =
          Replay.run
            ~chain:(chain_of bindings [ "vpn"; "mon"; "fw"; "lb" ])
            ~deployment:(fun () -> deployment_of text bindings)
            ~gen:(Pktgen.packet gen) ~packets:300
        in
        check Alcotest.bool "agrees" true (Replay.agrees o);
        check Alcotest.int "total" 300 o.total;
        check Alcotest.int "agreements" 300 o.agreements);
    Alcotest.test_case "west-east replay agrees including drops" `Quick (fun () ->
        let bindings = [ ("ids", "IPS"); ("mon", "Monitor"); ("lb", "LoadBalancer") ] in
        let text = "NF(ids, IPS)\nNF(mon, Monitor)\nNF(lb, LoadBalancer)\nChain(ids, mon, lb)" in
        (* Random payloads occasionally hit IDS signatures -> drops on
           both sides must agree. *)
        let gen =
          Pktgen.create
            {
              Pktgen.default with
              payload_style = Pktgen.Random_bytes;
              sizes = Size_dist.fixed 512;
            }
        in
        let o =
          Replay.run
            ~chain:(chain_of bindings [ "ids"; "mon"; "lb" ])
            ~deployment:(fun () -> deployment_of text bindings)
            ~gen:(Pktgen.packet gen) ~packets:300
        in
        check Alcotest.bool "agrees" true (Replay.agrees o));
    Alcotest.test_case "a broken deployment is detected" `Quick (fun () ->
        (* Deliberately deploy a different backend set in the parallel
           side: replay must flag disagreements. *)
        let bindings = [ ("mon", "Monitor"); ("lb", "LoadBalancer") ] in
        let text = "NF(mon, Monitor)\nNF(lb, LoadBalancer)\nChain(mon, lb)" in
        let plan, _ = deployment_of text bindings in
        let broken_lookup =
          let t = Hashtbl.create 4 in
          Hashtbl.replace t "mon" (Option.get (Nfp_nf.Registry.instantiate "Monitor" ~name:"mon"));
          Hashtbl.replace t "lb"
            (fst
               (Nfp_nf.Load_balancer.create ~name:"lb"
                  ~backends:[| Option.get (Nfp_packet.Flow.ip_of_string "9.9.9.9") |] ()));
          Hashtbl.find t
        in
        let gen = Pktgen.create Pktgen.default in
        let o =
          Replay.run
            ~chain:(chain_of bindings [ "mon"; "lb" ])
            ~deployment:(fun () -> (plan, broken_lookup))
            ~gen:(Pktgen.packet gen) ~packets:50
        in
        check Alcotest.bool "disagrees" false (Replay.agrees o);
        check Alcotest.int "all flagged" 50 (List.length o.disagreements));
  ]

(* ------------------------------------------------------------------ *)
(* Pcap                                                                *)
(* ------------------------------------------------------------------ *)

let pcap_tests =
  [
    Alcotest.test_case "write/read roundtrip" `Quick (fun () ->
        let g = Pktgen.create { Pktgen.default with sizes = Size_dist.datacenter } in
        let records =
          List.init 20 (fun i ->
              { Pcap.ts_ns = float_of_int i *. 1234.0 *. 1000.0; pkt = Pktgen.packet g i })
        in
        let path = Filename.temp_file "nfp" ".pcap" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Pcap.write_file path records;
            match Pcap.read_file path with
            | Error e -> Alcotest.fail e
            | Ok back ->
                check Alcotest.int "count" 20 (List.length back);
                List.iter2
                  (fun a b ->
                    check Alcotest.bool "bytes" true
                      (Nfp_packet.Packet.equal_wire a.Pcap.pkt b.Pcap.pkt);
                    (* Classic pcap keeps microseconds. *)
                    check (Alcotest.float 1000.0) "timestamp" a.Pcap.ts_ns b.Pcap.ts_ns)
                  records back));
    Alcotest.test_case "rejects foreign files" `Quick (fun () ->
        let path = Filename.temp_file "nfp" ".pcap" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "this is not a capture file at all.....";
            close_out oc;
            match Pcap.read_file path with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "accepted junk"));
    Alcotest.test_case "capture taps a deployment's output" `Quick (fun () ->
        let text = "NF(mon, Monitor)\nPosition(mon, first)" in
        let plan, lookup = deployment_of text [ ("mon", "Monitor") ] in
        let tap, bind, dump = Pcap.capture () in
        let engine = Nfp_sim.Engine.create () in
        bind engine;
        let system = Nfp_infra.System.make ~plan ~nfs:lookup engine ~output:tap in
        let g = Pktgen.create Pktgen.default in
        for i = 0 to 4 do
          system.Nfp_sim.Harness.inject ~pid:(Int64.of_int i) (Pktgen.packet g i)
        done;
        Nfp_sim.Engine.run engine;
        let records = dump () in
        check Alcotest.int "five packets" 5 (List.length records);
        check Alcotest.bool "timestamps advance" true
          (List.for_all (fun r -> r.Pcap.ts_ns > 0.0) records));
  ]

let () =
  Alcotest.run "nfp_traffic"
    [
      ("size_dist", size_tests);
      ("pktgen", pktgen_tests);
      ("replay", replay_tests);
      ("pcap", pcap_tests);
    ]
