(* Tests for nfp_nf: each NF implementation and the registry (Table 2). *)

open Nfp_packet
open Nfp_nf

let check = Alcotest.check

let ip s = Option.get (Flow.ip_of_string s)

let flow ?(sip = "10.0.1.1") ?(dip = "10.8.2.10") ?(sport = 12000) ?(dport = 61080)
    ?(proto = 6) () =
  Flow.make ~sip:(ip sip) ~dip:(ip dip) ~sport ~dport ~proto

let pkt ?(payload = "PAYLOAD-0123") ?flow:(f = flow ()) () =
  Packet.create ~flow:f ~payload ()

let is_forward = function Nf.Forward -> true | Nf.Dropped -> false

(* ------------------------------------------------------------------ *)
(* Firewall                                                            *)
(* ------------------------------------------------------------------ *)

let firewall_tests =
  [
    Alcotest.test_case "permits traffic missing the ACL" `Quick (fun () ->
        let fw, stats = Firewall.create () in
        check Alcotest.bool "forward" true (is_forward (fw.process (pkt ())));
        check Alcotest.int "passed" 1 (stats.passed ());
        check Alcotest.int "dropped" 0 (stats.dropped ()));
    Alcotest.test_case "denies a matching rule" `Quick (fun () ->
        let deny =
          { (Firewall.any_rule ~permit:false) with Firewall.dport_range = (80, 80) }
        in
        let fw, stats = Firewall.create ~acl:[ deny ] () in
        let p = pkt ~flow:(flow ~dport:80 ()) () in
        check Alcotest.bool "dropped" false (is_forward (fw.process p));
        check Alcotest.int "dropped count" 1 (stats.dropped ()));
    Alcotest.test_case "first matching rule wins" `Quick (fun () ->
        let permit =
          { (Firewall.any_rule ~permit:true) with Firewall.dport_range = (80, 80) }
        in
        let deny = Firewall.any_rule ~permit:false in
        let fw, _ = Firewall.create ~acl:[ permit; deny ] () in
        check Alcotest.bool "permit wins" true
          (is_forward (fw.process (pkt ~flow:(flow ~dport:80 ()) ())));
        check Alcotest.bool "deny catches rest" false
          (is_forward (fw.process (pkt ~flow:(flow ~dport:81 ()) ()))));
    Alcotest.test_case "prefix matching on source" `Quick (fun () ->
        let deny =
          {
            (Firewall.any_rule ~permit:false) with
            Firewall.sip_prefix = (ip "10.7.0.0", 16);
          }
        in
        let fw, _ = Firewall.create ~acl:[ deny ] () in
        check Alcotest.bool "inside prefix" false
          (is_forward (fw.process (pkt ~flow:(flow ~sip:"10.7.3.4" ()) ())));
        check Alcotest.bool "outside prefix" true
          (is_forward (fw.process (pkt ~flow:(flow ~sip:"10.8.3.4" ()) ()))));
    Alcotest.test_case "proto-specific rule" `Quick (fun () ->
        let deny = { (Firewall.any_rule ~permit:false) with Firewall.proto = Some 17 } in
        let fw, _ = Firewall.create ~acl:[ deny ] () in
        check Alcotest.bool "udp denied" false
          (is_forward (fw.process (pkt ~flow:(flow ~proto:17 ()) ())));
        check Alcotest.bool "tcp passes" true (is_forward (fw.process (pkt ()))));
    Alcotest.test_case "default ACL has the requested size" `Quick (fun () ->
        check Alcotest.int "100 rules" 100 (List.length (Firewall.default_acl 100)));
    Alcotest.test_case "extra cycles raise the cost" `Quick (fun () ->
        let fw0, _ = Firewall.create () in
        let fw1, _ = Firewall.create ~extra_cycles:500 () in
        let p = pkt () in
        check Alcotest.int "cost delta" 500 (fw1.cost_cycles p - fw0.cost_cycles p));
    Alcotest.test_case "profile matches Table 2" `Quick (fun () ->
        let fw, _ = Firewall.create () in
        check Alcotest.bool "drop" true (Action.may_drop fw.profile);
        check Alcotest.bool "no writes" true (Action.writes fw.profile = []);
        check Alcotest.int "4 reads" 4 (List.length (Action.reads fw.profile)));
    Alcotest.test_case "does not modify the packet" `Quick (fun () ->
        let fw, _ = Firewall.create () in
        let p = pkt () in
        let before = Packet.to_bytes p in
        ignore (fw.process p);
        check Alcotest.bool "unmodified" true (Bytes.equal before (Packet.to_bytes p)));
  ]

(* ------------------------------------------------------------------ *)
(* L3 forwarder / Load balancer                                        *)
(* ------------------------------------------------------------------ *)

let forwarder_tests =
  [
    Alcotest.test_case "forwards everything" `Quick (fun () ->
        let fwd, stats = L3_forwarder.create () in
        for i = 0 to 9 do
          let f = flow ~dport:(61000 + i) () in
          check Alcotest.bool "forward" true (is_forward (fwd.process (pkt ~flow:f ())))
        done;
        check Alcotest.int "count" 10 (stats.forwarded ()));
    Alcotest.test_case "same destination, same next hop" `Quick (fun () ->
        let fwd, stats = L3_forwarder.create () in
        ignore (fwd.process (pkt ()));
        let first = stats.last_next_hop () in
        ignore (fwd.process (pkt ()));
        check Alcotest.(option int) "stable" first (stats.last_next_hop ()));
    Alcotest.test_case "reads only dip" `Quick (fun () ->
        let fwd, _ = L3_forwarder.create () in
        check Alcotest.bool "profile" true (fwd.profile = [ Action.Read Field.Dip ]));
  ]

let lb_tests =
  [
    Alcotest.test_case "rewrites dip to a backend and sip to the vip" `Quick (fun () ->
        let backends = [| ip "172.16.0.1"; ip "172.16.0.2" |] in
        let vip = ip "192.168.0.1" in
        let lb, _ = Load_balancer.create ~vip ~backends () in
        let p = pkt () in
        ignore (lb.process p);
        check Alcotest.int32 "sip = vip" vip (Packet.sip p);
        check Alcotest.bool "dip is a backend" true
          (Array.exists (fun b -> Int32.equal b (Packet.dip p)) backends));
    Alcotest.test_case "flow stickiness" `Quick (fun () ->
        let lb, _ = Load_balancer.create () in
        let p1 = pkt () and p2 = pkt () in
        ignore (lb.process p1);
        ignore (lb.process p2);
        check Alcotest.int32 "same backend" (Packet.dip p1) (Packet.dip p2));
    Alcotest.test_case "spreads distinct flows" `Quick (fun () ->
        let lb, stats = Load_balancer.create () in
        for i = 0 to 63 do
          ignore (lb.process (pkt ~flow:(flow ~sport:(10000 + i) ()) ()))
        done;
        let used = Array.to_list (stats.per_backend ()) |> List.filter (fun c -> c > 0) in
        check Alcotest.bool "several backends used" true (List.length used > 2);
        check Alcotest.int "totals" 64 (List.fold_left ( + ) 0 used));
    Alcotest.test_case "keeps both checksums valid" `Quick (fun () ->
        let lb, _ = Load_balancer.create () in
        let p = pkt () in
        ignore (lb.process p);
        check Alcotest.bool "ip checksum" true (Packet.ip_checksum_valid p);
        check Alcotest.bool "tcp checksum" true (Packet.l4_checksum_valid p));
    Alcotest.test_case "single backend gets all flows" `Quick (fun () ->
        let only = ip "172.16.9.9" in
        let lb, stats = Load_balancer.create ~backends:[| only |] () in
        for i = 0 to 9 do
          let p = pkt ~flow:(flow ~sport:(30000 + i) ()) () in
          ignore (lb.process p);
          check Alcotest.int32 "backend" only (Packet.dip p)
        done;
        check Alcotest.int "count" 10 (stats.per_backend ()).(0));
    Alcotest.test_case "no backends rejected" `Quick (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Load_balancer.create: no backends") (fun () ->
            ignore (Load_balancer.create ~backends:[||] ())));
  ]

(* ------------------------------------------------------------------ *)
(* IDS / VPN                                                           *)
(* ------------------------------------------------------------------ *)

let ids_tests =
  [
    Alcotest.test_case "detect mode alerts without dropping" `Quick (fun () ->
        let signature = List.hd (Ids.default_signatures 1) in
        let ids, stats = Ids.create ~mode:`Detect () in
        let p = pkt ~payload:("xx" ^ signature) () in
        check Alcotest.bool "forwarded" true (is_forward (ids.process p));
        check Alcotest.int "alert" 1 (stats.alerts ()));
    Alcotest.test_case "prevent mode drops on match" `Quick (fun () ->
        let signature = List.hd (Ids.default_signatures 1) in
        let ids, _ = Ids.create ~mode:`Prevent () in
        check Alcotest.bool "dropped" false
          (is_forward (ids.process (pkt ~payload:signature ()))));
    Alcotest.test_case "clean payload passes silently" `Quick (fun () ->
        let ids, stats = Ids.create ~mode:`Prevent () in
        check Alcotest.bool "pass" true
          (is_forward (ids.process (pkt ~payload:"CLEAN-DATA-123" ())));
        check Alcotest.int "no alert" 0 (stats.alerts ()));
    Alcotest.test_case "profiles differ by mode" `Quick (fun () ->
        let det, _ = Ids.create ~mode:`Detect () in
        let prev, _ = Ids.create ~mode:`Prevent () in
        check Alcotest.bool "detect no drop" false (Action.may_drop det.profile);
        check Alcotest.bool "prevent drops" true (Action.may_drop prev.profile);
        check Alcotest.string "kinds" "IDS" det.kind;
        check Alcotest.string "kinds" "IPS" prev.kind);
    Alcotest.test_case "cost grows with payload" `Quick (fun () ->
        let ids, _ = Ids.create () in
        let small = pkt ~payload:"x" () and big = pkt ~payload:(String.make 1000 'x') () in
        check Alcotest.bool "monotone" true (ids.cost_cycles big > ids.cost_cycles small));
  ]

let vpn_tests =
  [
    Alcotest.test_case "encrypts and encapsulates" `Quick (fun () ->
        let vpn, stats = Vpn.create () in
        let p = pkt ~payload:"secret message here" () in
        ignore (vpn.process p);
        check Alcotest.bool "AH added" true (Packet.has_ah p);
        check Alcotest.bool "payload changed" true
          (Packet.payload p <> "secret message here");
        check Alcotest.int "counted" 1 (stats.encrypted ());
        check Alcotest.int32 "sequence" 1l (stats.sequence ()));
    Alcotest.test_case "decrypt restores the original payload" `Quick (fun () ->
        let key = "test-key-16bytes" in
        let vpn, _ = Vpn.create ~key () in
        let p = pkt ~payload:"round trip payload" () in
        ignore (vpn.process p);
        check Alcotest.bool "decrypt ok" true (Vpn.decrypt ~key p);
        check Alcotest.bool "AH removed" false (Packet.has_ah p);
        check Alcotest.string "payload" "round trip payload" (Packet.payload p));
    Alcotest.test_case "sequence numbers increment per packet" `Quick (fun () ->
        let vpn, stats = Vpn.create () in
        ignore (vpn.process (pkt ()));
        ignore (vpn.process (pkt ()));
        check Alcotest.int32 "two" 2l (stats.sequence ()));
    Alcotest.test_case "distinct packets get distinct keystreams" `Quick (fun () ->
        let vpn, _ = Vpn.create () in
        let p1 = pkt ~payload:"same payload" () and p2 = pkt ~payload:"same payload" () in
        ignore (vpn.process p1);
        ignore (vpn.process p2);
        check Alcotest.bool "ciphertexts differ" true
          (Packet.payload p1 <> Packet.payload p2));
    Alcotest.test_case "decrypt refuses a packet without AH" `Quick (fun () ->
        check Alcotest.bool "false" false (Vpn.decrypt ~key:"nfp-vpn-aes-key!" (pkt ())));
    Alcotest.test_case "rejects short keys" `Quick (fun () ->
        Alcotest.check_raises "key"
          (Invalid_argument "Aes.expand_key: key must be 16 bytes") (fun () ->
            ignore (Vpn.create ~key:"short" ())));
    Alcotest.test_case "profile matches Table 2 row" `Quick (fun () ->
        let vpn, _ = Vpn.create () in
        check Alcotest.bool "add/rm" true (Action.adds_or_removes_headers vpn.profile);
        check Alcotest.bool "writes payload" true
          (List.mem Field.Payload (Action.writes vpn.profile)));
  ]

(* ------------------------------------------------------------------ *)
(* Monitor / NAT / Proxy / Caching / Compression / Shaper / Gateway    *)
(* ------------------------------------------------------------------ *)

let monitor_tests =
  [
    Alcotest.test_case "counts per flow" `Quick (fun () ->
        let mon, stats = Monitor.create () in
        let f1 = flow () and f2 = flow ~sport:9999 () in
        ignore (mon.process (pkt ~flow:f1 ()));
        ignore (mon.process (pkt ~flow:f1 ()));
        ignore (mon.process (pkt ~flow:f2 ()));
        check Alcotest.int "flows" 2 (stats.flows ());
        (match stats.lookup f1 with
        | Some c -> check Alcotest.int "f1 packets" 2 c.Monitor.packets
        | None -> Alcotest.fail "flow missing");
        check Alcotest.int "total" 3 (stats.total_packets ()));
    Alcotest.test_case "byte counters track wire length" `Quick (fun () ->
        let mon, stats = Monitor.create () in
        let p = pkt () in
        let len = Packet.wire_length p in
        ignore (mon.process p);
        match stats.lookup (Packet.flow p) with
        | Some c -> check Alcotest.int "bytes" len c.Monitor.bytes
        | None -> Alcotest.fail "flow missing");
    Alcotest.test_case "read-only" `Quick (fun () ->
        let mon, _ = Monitor.create () in
        let p = pkt () in
        let before = Packet.to_bytes p in
        ignore (mon.process p);
        check Alcotest.bool "unchanged" true (Bytes.equal before (Packet.to_bytes p)));
  ]

let nat_tests =
  [
    Alcotest.test_case "rewrites source address and port" `Quick (fun () ->
        let public_ip = ip "203.0.113.7" in
        let nat, _ = Nat.create ~public_ip ~port_base:20000 () in
        let p = pkt () in
        ignore (nat.process p);
        check Alcotest.int32 "sip" public_ip (Packet.sip p);
        check Alcotest.int "sport" 20000 (Packet.sport p));
    Alcotest.test_case "binding is stable per flow" `Quick (fun () ->
        let nat, stats = Nat.create () in
        let p1 = pkt () and p2 = pkt () in
        ignore (nat.process p1);
        ignore (nat.process p2);
        check Alcotest.int "same port" (Packet.sport p1) (Packet.sport p2);
        check Alcotest.int "one binding" 1 (stats.active_bindings ()));
    Alcotest.test_case "distinct flows get distinct ports" `Quick (fun () ->
        let nat, _ = Nat.create () in
        let p1 = pkt () and p2 = pkt ~flow:(flow ~sport:777 ()) () in
        ignore (nat.process p1);
        ignore (nat.process p2);
        check Alcotest.bool "different" true (Packet.sport p1 <> Packet.sport p2));
    Alcotest.test_case "pool exhaustion drops" `Quick (fun () ->
        let nat, stats = Nat.create ~port_count:1 () in
        ignore (nat.process (pkt ()));
        let verdict = nat.process (pkt ~flow:(flow ~sport:555 ()) ()) in
        check Alcotest.bool "dropped" false (is_forward verdict);
        check Alcotest.int "exhausted" 1 (stats.exhausted ()));
    Alcotest.test_case "translated packets keep valid checksums" `Quick (fun () ->
        let nat, _ = Nat.create () in
        let p = pkt () in
        ignore (nat.process p);
        check Alcotest.bool "ip checksum" true (Packet.ip_checksum_valid p);
        check Alcotest.bool "tcp checksum" true (Packet.l4_checksum_valid p));
  ]

let proxy_tests =
  [
    Alcotest.test_case "redirects and stamps Via" `Quick (fun () ->
        let origin = ip "198.51.100.10" in
        let proxy, stats = Proxy.create ~origin ~via:"Via:test " () in
        let p = pkt ~payload:"GET /" () in
        ignore (proxy.process p);
        check Alcotest.int32 "dip" origin (Packet.dip p);
        check Alcotest.string "payload" "Via:test GET /" (Packet.payload p);
        check Alcotest.int "count" 1 (stats.redirected ()));
    Alcotest.test_case "rewritten packet is still well-formed" `Quick (fun () ->
        let proxy, _ = Proxy.create () in
        let p = pkt ~payload:"GET /path HTTP/1.1" () in
        ignore (proxy.process p);
        check Alcotest.bool "checksum" true (Packet.ip_checksum_valid p);
        match Packet.of_bytes (Packet.to_bytes p) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "declares its length write" `Quick (fun () ->
        let proxy, _ = Proxy.create () in
        check Alcotest.bool "writes len" true
          (List.mem Field.Len (Action.writes proxy.profile)));
  ]

let caching_tests =
  [
    Alcotest.test_case "miss then hit" `Quick (fun () ->
        let cache, stats = Caching.create () in
        ignore (cache.process (pkt ~payload:"GET /index" ()));
        ignore (cache.process (pkt ~payload:"GET /index" ()));
        check Alcotest.int "misses" 1 (stats.misses ());
        check Alcotest.int "hits" 1 (stats.hits ()));
    Alcotest.test_case "different destinations are different keys" `Quick (fun () ->
        let cache, stats = Caching.create () in
        ignore (cache.process (pkt ~payload:"GET /x" ()));
        ignore (cache.process (pkt ~flow:(flow ~dip:"10.8.2.11" ()) ~payload:"GET /x" ()));
        check Alcotest.int "two misses" 2 (stats.misses ()));
    Alcotest.test_case "eviction beyond capacity" `Quick (fun () ->
        let cache, stats = Caching.create ~capacity:2 () in
        List.iter (fun s -> ignore (cache.process (pkt ~payload:s ()))) [ "a"; "b"; "c" ];
        check Alcotest.int "capped" 2 (stats.entries ()));
  ]

let compression_tests =
  [
    Alcotest.test_case "compresses repetitive payloads losslessly" `Quick (fun () ->
        let comp, stats = Compression.create () in
        let original = String.concat "" (List.init 30 (fun _ -> "repeat-me ")) in
        let p = pkt ~payload:original () in
        ignore (comp.process p);
        check Alcotest.bool "smaller" true
          (String.length (Packet.payload p) < String.length original);
        check Alcotest.string "lossless" original
          (Nfp_algo.Lz77.decompress (Packet.payload p));
        check Alcotest.int "counted" 1 (stats.compressed ());
        check Alcotest.bool "savings recorded" true (stats.bytes_saved () > 0));
    Alcotest.test_case "leaves incompressible payloads alone" `Quick (fun () ->
        let comp, stats = Compression.create () in
        let p = pkt ~payload:"ab" () in
        ignore (comp.process p);
        check Alcotest.string "unchanged" "ab" (Packet.payload p);
        check Alcotest.int "skipped" 1 (stats.skipped ()));
    Alcotest.test_case "compressed packet stays parseable at every size" `Quick (fun () ->
        let comp, _ = Compression.create () in
        List.iter
          (fun n ->
            let payload = String.concat "" (List.init n (fun i -> Printf.sprintf "tok%d " (i mod 5))) in
            let p = pkt ~payload () in
            ignore (comp.process p);
            check Alcotest.bool "checksum" true (Packet.ip_checksum_valid p);
            match Packet.of_bytes (Packet.to_bytes p) with
            | Ok _ -> ()
            | Error e -> Alcotest.fail e)
          [ 5; 50; 250 ]);
  ]

let shaper_tests =
  [
    Alcotest.test_case "polices above the burst" `Quick (fun () ->
        let shaper, stats, clock =
          Traffic_shaper.create ~rate_bps:1000.0 ~burst_bytes:100 ()
        in
        clock 0L;
        check Alcotest.bool "first ok" true
          (is_forward (shaper.process (pkt ~payload:"" ())));
        check Alcotest.bool "second policed" false
          (is_forward (shaper.process (pkt ~payload:"" ())));
        check Alcotest.int "policed" 1 (stats.policed ()));
    Alcotest.test_case "recovers after the clock advances" `Quick (fun () ->
        let shaper, stats, clock = Traffic_shaper.create ~rate_bps:8e9 ~burst_bytes:64 () in
        clock 0L;
        ignore (shaper.process (pkt ~payload:"" ()));
        clock 0L;
        check Alcotest.bool "empty" false (is_forward (shaper.process (pkt ~payload:"" ())));
        clock 1000L;
        check Alcotest.bool "refilled" true (is_forward (shaper.process (pkt ~payload:"" ())));
        check Alcotest.int "conformed" 2 (stats.conformed ()));
  ]

let gateway_tests =
  [
    Alcotest.test_case "counts sessions by address pair" `Quick (fun () ->
        let gw, stats = Gateway.create () in
        ignore (gw.process (pkt ()));
        ignore (gw.process (pkt ()));
        ignore (gw.process (pkt ~flow:(flow ~sip:"10.0.9.9" ()) ()));
        check Alcotest.int "sessions" 2 (stats.sessions ());
        check Alcotest.int "packets" 3 (stats.packets ()));
  ]

(* ------------------------------------------------------------------ *)
(* Registry (Table 2)                                                  *)
(* ------------------------------------------------------------------ *)

let registry_tests =
  [
    Alcotest.test_case "lookup is case-insensitive" `Quick (fun () ->
        check Alcotest.bool "firewall" true (Registry.find "fIrEwAll" <> None));
    Alcotest.test_case "profile_of raises on unknown kinds" `Quick (fun () ->
        Alcotest.check_raises "unknown" Not_found (fun () ->
            ignore (Registry.profile_of "NoSuchNF")));
    Alcotest.test_case "paper Table 2 percentages present" `Quick (fun () ->
        let pct k =
          match Registry.find k with
          | Some { Registry.deployment_pct = Some p; _ } -> p
          | _ -> Alcotest.failf "missing %s" k
        in
        check (Alcotest.float 0.01) "firewall" 26.0 (pct "Firewall");
        check (Alcotest.float 0.01) "ids" 20.0 (pct "IDS");
        check (Alcotest.float 0.01) "gateway" 19.0 (pct "Gateway");
        check (Alcotest.float 0.01) "lb" 10.0 (pct "LoadBalancer");
        check (Alcotest.float 0.01) "caching" 10.0 (pct "Caching");
        check (Alcotest.float 0.01) "vpn" 7.0 (pct "VPN"));
    Alcotest.test_case "weighted kinds normalize to 1" `Quick (fun () ->
        let total =
          List.fold_left (fun acc (_, p) -> acc +. p) 0.0 (Registry.weighted_kinds ())
        in
        check (Alcotest.float 1e-9) "sum" 1.0 total);
    Alcotest.test_case "weighted kinds exclude unquantified rows" `Quick (fun () ->
        check Alcotest.bool "no NAT" true
          (not (List.mem_assoc "NAT" (Registry.weighted_kinds ()))));
    Alcotest.test_case "register adds a new NF type" `Quick (fun () ->
        Registry.register ~kind:"TestOnlyNf" ~profile:[ Action.Read Field.Ttl ] ();
        check Alcotest.bool "registered" true
          (Registry.profile_of "TestOnlyNf" = [ Action.Read Field.Ttl ]));
    Alcotest.test_case "register overwrites an existing profile" `Quick (fun () ->
        Registry.register ~kind:"TestOnlyNf2" ~profile:[ Action.Drop ] ();
        Registry.register ~kind:"TestOnlyNf2" ~profile:[ Action.Read Field.Tos ] ();
        check Alcotest.bool "overwritten" true
          (Registry.profile_of "TestOnlyNf2" = [ Action.Read Field.Tos ]));
    Alcotest.test_case "instantiate covers every built-in type" `Quick (fun () ->
        List.iter
          (fun kind ->
            match Registry.instantiate kind ~name:"x" with
            | Some nf -> check Alcotest.string kind kind nf.Nf.kind
            | None -> Alcotest.failf "no implementation for %s" kind)
          [
            "Firewall"; "IDS"; "IPS"; "Gateway"; "LoadBalancer"; "Caching"; "VPN";
            "NAT"; "Proxy"; "Compression"; "TrafficShaper"; "Monitor"; "Forwarder";
          ]);
    Alcotest.test_case "instantiated profiles match registry rows" `Quick (fun () ->
        List.iter
          (fun kind ->
            match Registry.instantiate kind ~name:"x" with
            | Some nf ->
                check Alcotest.bool kind true
                  (Action.normalize nf.Nf.profile = Registry.profile_of kind)
            | None -> Alcotest.failf "no implementation for %s" kind)
          [ "Firewall"; "IDS"; "IPS"; "LoadBalancer"; "VPN"; "Monitor"; "Forwarder" ]);
    Alcotest.test_case "instantiate unknown type" `Quick (fun () ->
        check Alcotest.bool "none" true (Registry.instantiate "Nope" ~name:"x" = None));
  ]

(* ------------------------------------------------------------------ *)
(* Action helpers                                                      *)
(* ------------------------------------------------------------------ *)

let action_tests =
  [
    Alcotest.test_case "kinds" `Quick (fun () ->
        check Alcotest.bool "read" true (Action.kind (Action.Read Field.Sip) = Action.K_read);
        check Alcotest.bool "write" true
          (Action.kind (Action.Write Field.Sip) = Action.K_write);
        check Alcotest.bool "addrm" true (Action.kind Action.Add_rm_header = Action.K_add_rm);
        check Alcotest.bool "drop" true (Action.kind Action.Drop = Action.K_drop));
    Alcotest.test_case "field extraction" `Quick (fun () ->
        check Alcotest.bool "read field" true
          (Action.field (Action.Read Field.Tos) = Some Field.Tos);
        check Alcotest.bool "drop field" true (Action.field Action.Drop = None));
    Alcotest.test_case "normalize sorts and dedups" `Quick (fun () ->
        let p = Action.[ Drop; Read Field.Sip; Drop; Read Field.Sip ] in
        check Alcotest.int "dedup" 2 (List.length (Action.normalize p)));
    Alcotest.test_case "read_write expands" `Quick (fun () ->
        check Alcotest.bool "rw" true
          (Action.read_write Field.Sip = Action.[ Read Field.Sip; Write Field.Sip ]));
    Alcotest.test_case "profile predicates" `Quick (fun () ->
        let p = Action.[ Read Field.Sip; Write Field.Dip; Add_rm_header ] in
        check Alcotest.bool "reads" true (Action.reads p = [ Field.Sip ]);
        check Alcotest.bool "writes" true (Action.writes p = [ Field.Dip ]);
        check Alcotest.bool "addrm" true (Action.adds_or_removes_headers p);
        check Alcotest.bool "no drop" false (Action.may_drop p));
  ]

let () =
  Alcotest.run "nfp_nf"
    [
      ("action", action_tests);
      ("firewall", firewall_tests);
      ("forwarder", forwarder_tests);
      ("load_balancer", lb_tests);
      ("ids", ids_tests);
      ("vpn", vpn_tests);
      ("monitor", monitor_tests);
      ("nat", nat_tests);
      ("proxy", proxy_tests);
      ("caching", caching_tests);
      ("compression", compression_tests);
      ("traffic_shaper", shaper_tests);
      ("gateway", gateway_tests);
      ("registry", registry_tests);
    ]
