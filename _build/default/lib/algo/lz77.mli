(** Byte-oriented LZ77 compression.

    Substrate of the compression NF (paper Table 2: "Compression — Cisco
    IOS", action R/W on payload). The format is self-contained: a token
    stream of literals and (distance, length) back-references; decompress
    inverts compress exactly. *)

val compress : string -> string

val decompress : string -> string
(** @raise Invalid_argument on a malformed token stream. *)
