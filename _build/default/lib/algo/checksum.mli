(** RFC 1071 Internet checksum.

    Used by the IPv4 codec: NFs that rewrite addresses (NAT, load
    balancer) must leave packets with a valid header checksum, and the
    merger recomputes it after applying merge operations. *)

val ones_complement_sum : bytes -> pos:int -> len:int -> int
(** 16-bit one's-complement sum of the byte range (before final
    complement). Odd trailing byte is padded with zero per RFC 1071. *)

val compute : bytes -> pos:int -> len:int -> int
(** Checksum of the range: complement of the sum, in [0, 0xffff]. *)

val verify : bytes -> pos:int -> len:int -> bool
(** [verify] is [true] when the range (checksum field included) sums to
    0xffff, i.e. the embedded checksum is consistent. *)
