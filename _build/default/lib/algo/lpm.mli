(** Longest-prefix-match table over IPv4 addresses.

    A binary trie keyed by prefix bits; lookup returns the value bound to
    the longest matching prefix. This is the routing substrate of the L3
    forwarder NF (paper §6.1: "longest prefix matching table with 1000
    entries"). *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> prefix:int32 -> len:int -> 'a -> unit
(** [add t ~prefix ~len v] binds value [v] to the [len]-bit prefix of
    [prefix]. A later [add] of the same prefix overwrites the binding.
    @raise Invalid_argument if [len] is outside [0, 32]. *)

val lookup : 'a t -> int32 -> 'a option
(** [lookup t addr] is the value of the longest prefix matching [addr]. *)

val remove : 'a t -> prefix:int32 -> len:int -> unit
(** Remove the binding for exactly that prefix, if present. *)

val entries : 'a t -> int
(** Number of bound prefixes. *)
