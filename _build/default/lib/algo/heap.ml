type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h x =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let capacity' = if capacity = 0 then 16 else capacity * 2 in
    let data' = Array.make capacity' x in
    Array.blit h.data 0 data' 0 h.size;
    h.data <- data'
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && h.cmp h.data.(left) h.data.(!smallest) < 0 then
    smallest := left;
  if right < h.size && h.cmp h.data.(right) h.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let clear h =
  h.data <- [||];
  h.size <- 0
