(** Aho–Corasick multi-pattern string matching.

    The signature-matching substrate of the IDS NF (paper §6.1: "similar
    to the core signature matching component of Snort with 100 signature
    inspection rules"). Patterns are compiled once into an automaton;
    scanning a payload is a single pass. *)

type t

val build : string list -> t
(** [build patterns] compiles the automaton. Empty patterns are ignored.
    Pattern indices in match results refer to positions in [patterns]. *)

val pattern_count : t -> int

val scan : t -> string -> (int * int) list
(** [scan t text] is the list of matches [(pattern_index, end_position)]
    in order of occurrence; [end_position] is the offset just past the
    match. Overlapping and duplicate-pattern matches are all reported. *)

val matches : t -> string -> bool
(** [matches t text] is [true] iff any pattern occurs in [text]; stops at
    the first hit. *)
