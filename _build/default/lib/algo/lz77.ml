(* Token format:
   0x00 l          -> literal run of (l+1) bytes following
   0x01 d1 d0 len  -> back-reference: distance 1..65535 (big-endian),
                      length (len+4) bytes (4..259)
   Window 4096 bytes, greedy longest-match via a 3-byte hash chain. *)

let window = 4096
let min_match = 4
let max_match = 259

let hash3 s i =
  (Char.code s.[i] lor (Char.code s.[i + 1] lsl 8) lor (Char.code s.[i + 2] lsl 16)) * 0x9e3779b1
  lsr 8
  land 0xffff

let compress input =
  let n = String.length input in
  let out = Buffer.create (n / 2) in
  let literals = Buffer.create 64 in
  let flush_literals () =
    let s = Buffer.contents literals in
    Buffer.clear literals;
    let len = String.length s in
    let i = ref 0 in
    while !i < len do
      let chunk = min 256 (len - !i) in
      Buffer.add_char out '\x00';
      Buffer.add_char out (Char.chr (chunk - 1));
      Buffer.add_substring out s !i chunk;
      i := !i + chunk
    done
  in
  let heads = Array.make 0x10000 (-1) in
  let prev = Array.make (max n 1) (-1) in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_dist = ref 0 in
    if !i + min_match <= n && !i + 2 < n then begin
      let h = hash3 input !i in
      let cand = ref heads.(h) in
      let tries = ref 32 in
      while !cand >= 0 && !i - !cand <= window && !tries > 0 do
        let j = !cand in
        let maxl = min max_match (n - !i) in
        let l = ref 0 in
        while !l < maxl && input.[j + !l] = input.[!i + !l] do
          incr l
        done;
        if !l > !best_len then begin
          best_len := !l;
          best_dist := !i - j
        end;
        cand := prev.(j);
        decr tries
      done;
      prev.(!i) <- heads.(h);
      heads.(h) <- !i
    end;
    if !best_len >= min_match then begin
      flush_literals ();
      Buffer.add_char out '\x01';
      Buffer.add_char out (Char.chr ((!best_dist lsr 8) land 0xff));
      Buffer.add_char out (Char.chr (!best_dist land 0xff));
      Buffer.add_char out (Char.chr (!best_len - min_match));
      (* Index the skipped positions so later matches can reference them. *)
      for k = !i + 1 to min (!i + !best_len - 1) (n - 3) do
        let h = hash3 input k in
        prev.(k) <- heads.(h);
        heads.(h) <- k
      done;
      i := !i + !best_len
    end
    else begin
      Buffer.add_char literals input.[!i];
      incr i
    end
  done;
  flush_literals ();
  Buffer.contents out

let decompress input =
  let n = String.length input in
  let out = Buffer.create (n * 2) in
  let malformed () = invalid_arg "Lz77.decompress: malformed stream" in
  let i = ref 0 in
  while !i < n do
    match input.[!i] with
    | '\x00' ->
        if !i + 1 >= n then malformed ();
        let len = Char.code input.[!i + 1] + 1 in
        if !i + 2 + len > n then malformed ();
        Buffer.add_substring out input (!i + 2) len;
        i := !i + 2 + len
    | '\x01' ->
        if !i + 3 >= n then malformed ();
        let dist = (Char.code input.[!i + 1] lsl 8) lor Char.code input.[!i + 2] in
        let len = Char.code input.[!i + 3] + min_match in
        let start = Buffer.length out - dist in
        if dist = 0 || start < 0 then malformed ();
        (* Byte-at-a-time so overlapping references self-extend. *)
        for k = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + k))
        done;
        i := !i + 4
    | _ -> malformed ()
  done;
  Buffer.contents out
