(** Non-cryptographic hashes used across the dataplane.

    The merger agent hashes the immutable PID to pick a merger instance
    (paper §5.3); the load balancer and monitor hash 5-tuples. *)

val fnv1a32 : string -> int
(** 32-bit FNV-1a over a string; result in [0, 2^32). *)

val fnv1a32_bytes : bytes -> pos:int -> len:int -> int
(** FNV-1a over a byte range. @raise Invalid_argument on overrun. *)

val mix64 : int64 -> int64
(** SplitMix64 finaliser: avalanching 64-bit mix, used for PID hashing. *)

val combine : int -> int -> int
(** Order-dependent combination of two hash values. *)

val tuple5 : int32 -> int32 -> int -> int -> int -> int
(** [tuple5 sip dip sport dport proto] hashes a 5-tuple to a
    non-negative int, ECMP-style. *)
