(** Imperative binary min-heap keyed by a user-supplied comparison.

    Used as the event queue of the discrete-event simulator; [pop] returns
    the smallest element according to the ordering given at creation. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit
