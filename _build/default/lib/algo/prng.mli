(** Deterministic pseudo-random number generator (SplitMix64).

    The simulator must be reproducible run-to-run, so all randomness
    (arrival processes, service jitter, workload synthesis) flows
    through explicitly seeded instances of this generator. *)

type t

val create : seed:int64 -> t

val next : t -> int64
(** Next 64-bit value. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> bound:int -> int
(** Uniform in [0, bound). @raise Invalid_argument if [bound <= 0]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (> 0). *)

val split : t -> t
(** An independent generator derived from this one's stream. *)
