type t = { mutable state : int64 }

let golden = 0x9e3779b97f4a7c15L

let create ~seed = { state = seed }

let next t =
  t.state <- Int64.add t.state golden;
  Hashing.mix64 t.state

let float t =
  (* Top 53 bits -> [0, 1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  int_of_float (float t *. float_of_int bound)

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = float t in
  (* u = 0 would give infinity; nudge. *)
  -.mean *. log (1.0 -. (u *. 0.9999999999))

let split t = create ~seed:(next t)
