(** AES-128 block cipher with CTR-mode encryption.

    Cryptographic substrate of the VPN NF (paper §6.1: "encrypts a packet
    based on the AES algorithm and wraps it with an AH header"). Pure
    OCaml, table-based; implements FIPS-197 encryption/decryption on
    16-byte blocks plus a CTR keystream mode so arbitrary-length payloads
    encrypt and decrypt symmetrically. Not intended to be constant-time —
    it exists to give the simulated VPN a realistic per-byte work
    profile and verifiable semantics. *)

type key

val expand_key : string -> key
(** [expand_key k] expands a 16-byte key string.
    @raise Invalid_argument if [String.length k <> 16]. *)

val encrypt_block : key -> bytes -> pos:int -> unit
(** Encrypt the 16-byte block at [pos] in place.
    @raise Invalid_argument if the block overruns the buffer. *)

val decrypt_block : key -> bytes -> pos:int -> unit
(** Inverse of {!encrypt_block}. *)

val ctr_transform : key -> nonce:int64 -> bytes -> pos:int -> len:int -> unit
(** [ctr_transform key ~nonce buf ~pos ~len] XORs the CTR keystream for
    [nonce] over [len] bytes starting at [pos]. Applying it twice with
    the same nonce restores the original bytes. *)

val selftest : unit -> bool
(** FIPS-197 appendix C.1 known-answer test. *)
