let fnv_offset = 0x811c9dc5
let fnv_prime = 0x01000193

let fnv1a32 s =
  let h = ref fnv_offset in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime land 0xffffffff) s;
  !h

let fnv1a32_bytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Hashing.fnv1a32_bytes: range overruns buffer";
  let h = ref fnv_offset in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.get b i)) * fnv_prime land 0xffffffff
  done;
  !h

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let combine a b = ((a * 31) + b) land max_int

let tuple5 sip dip sport dport proto =
  let h = fnv_offset in
  let step h v = (h lxor (v land 0xff)) * fnv_prime land 0xffffffff in
  let word h v32 =
    let v = Int32.to_int (Int32.logand v32 0xffffffffl) in
    let h = step h v in
    let h = step h (v lsr 8) in
    let h = step h (v lsr 16) in
    step h (v lsr 24)
  in
  let h = word h sip in
  let h = word h dip in
  let h = step h sport in
  let h = step h (sport lsr 8) in
  let h = step h dport in
  let h = step h (dport lsr 8) in
  let h = step h proto in
  h land max_int
