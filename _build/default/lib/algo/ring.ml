type 'a t = {
  data : 'a option array;
  mutable head : int; (* next slot to dequeue *)
  mutable size : int;
  mutable enqueued : int;
  mutable rejected : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity None; head = 0; size = 0; enqueued = 0; rejected = 0 }

let capacity t = Array.length t.data

let length t = t.size

let is_empty t = t.size = 0

let is_full t = t.size = Array.length t.data

let enqueue t x =
  if is_full t then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    let tail = (t.head + t.size) mod Array.length t.data in
    t.data.(tail) <- Some x;
    t.size <- t.size + 1;
    t.enqueued <- t.enqueued + 1;
    true
  end

let dequeue t =
  if t.size = 0 then None
  else begin
    let x = t.data.(t.head) in
    t.data.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.data;
    t.size <- t.size - 1;
    x
  end

let peek t = if t.size = 0 then None else t.data.(t.head)

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.head <- 0;
  t.size <- 0

let enqueued_total t = t.enqueued

let rejected_total t = t.rejected
