let ones_complement_sum buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum: range overruns buffer";
  let sum = ref 0 in
  let i = ref pos in
  let stop = pos + len in
  while !i + 1 < stop do
    sum := !sum + (Char.code (Bytes.get buf !i) lsl 8) + Char.code (Bytes.get buf (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  (* Fold carries. *)
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  !sum

let compute buf ~pos ~len = lnot (ones_complement_sum buf ~pos ~len) land 0xffff

let verify buf ~pos ~len = ones_complement_sum buf ~pos ~len = 0xffff
