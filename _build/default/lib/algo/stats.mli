(** Streaming measurement accumulators.

    Collects per-packet latencies and rates during simulation runs and
    reports the summary statistics the paper plots (mean and tail
    latency, processing rate). *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0. when empty. *)

val min_value : t -> float
(** @raise Invalid_argument when empty. *)

val max_value : t -> float
(** @raise Invalid_argument when empty. *)

val stddev : t -> float
(** Population standard deviation; 0. with fewer than 2 samples. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0,100], nearest-rank on sorted samples.
    @raise Invalid_argument when empty or [p] out of range. *)

val merge : t -> t -> t
(** Combined accumulator over both sample sets. *)
