type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { root : 'a node; mutable count : int }

let make_node () = { value = None; zero = None; one = None }

let create () = { root = make_node (); count = 0 }

(* Bit [i] of an address, counting from the most significant bit. *)
let bit addr i = Int32.logand (Int32.shift_right_logical addr (31 - i)) 1l = 1l

let check_len len =
  if len < 0 || len > 32 then invalid_arg "Lpm: prefix length must be in [0, 32]"

let add t ~prefix ~len v =
  check_len len;
  let rec go node i =
    if i = len then begin
      if node.value = None then t.count <- t.count + 1;
      node.value <- Some v
    end
    else if bit prefix i then begin
      (match node.one with
      | None -> node.one <- Some (make_node ())
      | Some _ -> ());
      match node.one with
      | Some child -> go child (i + 1)
      | None -> assert false
    end
    else begin
      (match node.zero with
      | None -> node.zero <- Some (make_node ())
      | Some _ -> ());
      match node.zero with
      | Some child -> go child (i + 1)
      | None -> assert false
    end
  in
  go t.root 0

let lookup t addr =
  let rec go node i best =
    let best = match node.value with Some _ as v -> v | None -> best in
    if i = 32 then best
    else
      let child = if bit addr i then node.one else node.zero in
      match child with None -> best | Some c -> go c (i + 1) best
  in
  go t.root 0 None

let remove t ~prefix ~len =
  check_len len;
  let rec go node i =
    if i = len then begin
      if node.value <> None then t.count <- t.count - 1;
      node.value <- None
    end
    else
      let child = if bit prefix i then node.one else node.zero in
      match child with None -> () | Some c -> go c (i + 1)
  in
  go t.root 0

let entries t = t.count
