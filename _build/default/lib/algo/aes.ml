(* FIPS-197 AES-128. S-boxes are generated at module initialisation from
   the GF(2^8) inverse rather than pasted as literal tables; round keys
   are int arrays of bytes. *)

let xtime b = if b land 0x80 <> 0 then ((b lsl 1) lxor 0x1b) land 0xff else (b lsl 1) land 0xff

(* GF(2^8) multiplication. *)
let gmul a b =
  let rec go a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      go (xtime a) (b lsr 1) acc
  in
  go a b 0

let sbox = Array.make 256 0
let inv_sbox = Array.make 256 0

(* Precomputed GF(2^8) multiplication tables for the MixColumns
   coefficients; gmul bit-loops per byte would dominate the cipher. *)
let mul2 = Array.make 256 0
let mul3 = Array.make 256 0
let mul9 = Array.make 256 0
let mul11 = Array.make 256 0
let mul13 = Array.make 256 0
let mul14 = Array.make 256 0

let () =
  for x = 0 to 255 do
    mul2.(x) <- gmul x 2;
    mul3.(x) <- gmul x 3;
    mul9.(x) <- gmul x 9;
    mul11.(x) <- gmul x 11;
    mul13.(x) <- gmul x 13;
    mul14.(x) <- gmul x 14
  done

let () =
  (* Build the S-box from multiplicative inverses and the affine map. *)
  let inv = Array.make 256 0 in
  for x = 1 to 255 do
    for y = 1 to 255 do
      if gmul x y = 1 then inv.(x) <- y
    done
  done;
  for x = 0 to 255 do
    let b = inv.(x) in
    let rot b n = ((b lsl n) lor (b lsr (8 - n))) land 0xff in
    let s = b lxor rot b 1 lxor rot b 2 lxor rot b 3 lxor rot b 4 lxor 0x63 in
    sbox.(x) <- s;
    inv_sbox.(s) <- x
  done

type key = { rk : int array (* 176 bytes: 11 round keys *) }

let expand_key k =
  if String.length k <> 16 then invalid_arg "Aes.expand_key: key must be 16 bytes";
  let rk = Array.make 176 0 in
  for i = 0 to 15 do
    rk.(i) <- Char.code k.[i]
  done;
  let rcon = ref 1 in
  for i = 4 to 43 do
    let base = i * 4 in
    let prev = base - 4 in
    let t = Array.make 4 0 in
    for j = 0 to 3 do
      t.(j) <- rk.(prev + j)
    done;
    if i mod 4 = 0 then begin
      (* RotWord + SubWord + Rcon *)
      let tmp = t.(0) in
      t.(0) <- sbox.(t.(1)) lxor !rcon;
      t.(1) <- sbox.(t.(2));
      t.(2) <- sbox.(t.(3));
      t.(3) <- sbox.(tmp);
      rcon := xtime !rcon
    end;
    for j = 0 to 3 do
      rk.(base + j) <- rk.(base - 16 + j) lxor t.(j)
    done
  done;
  { rk }

let add_round_key st rk round =
  for i = 0 to 15 do
    st.(i) <- st.(i) lxor rk.((round * 16) + i)
  done

let sub_bytes st =
  for i = 0 to 15 do
    st.(i) <- sbox.(st.(i))
  done

let inv_sub_bytes st =
  for i = 0 to 15 do
    st.(i) <- inv_sbox.(st.(i))
  done

(* State is column-major: st.(4*c + r) is row r, column c. *)
let shift_rows st =
  let copy = Array.copy st in
  for c = 0 to 3 do
    for r = 0 to 3 do
      st.((4 * c) + r) <- copy.((4 * ((c + r) mod 4)) + r)
    done
  done

let inv_shift_rows st =
  let copy = Array.copy st in
  for c = 0 to 3 do
    for r = 0 to 3 do
      st.((4 * ((c + r) mod 4)) + r) <- copy.((4 * c) + r)
    done
  done

let mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c) and a1 = st.((4 * c) + 1) and a2 = st.((4 * c) + 2) and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- mul2.(a0) lxor mul3.(a1) lxor a2 lxor a3;
    st.((4 * c) + 1) <- a0 lxor mul2.(a1) lxor mul3.(a2) lxor a3;
    st.((4 * c) + 2) <- a0 lxor a1 lxor mul2.(a2) lxor mul3.(a3);
    st.((4 * c) + 3) <- mul3.(a0) lxor a1 lxor a2 lxor mul2.(a3)
  done

let inv_mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c) and a1 = st.((4 * c) + 1) and a2 = st.((4 * c) + 2) and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- mul14.(a0) lxor mul11.(a1) lxor mul13.(a2) lxor mul9.(a3);
    st.((4 * c) + 1) <- mul9.(a0) lxor mul14.(a1) lxor mul11.(a2) lxor mul13.(a3);
    st.((4 * c) + 2) <- mul13.(a0) lxor mul9.(a1) lxor mul14.(a2) lxor mul11.(a3);
    st.((4 * c) + 3) <- mul11.(a0) lxor mul13.(a1) lxor mul9.(a2) lxor mul14.(a3)
  done

let check_block buf pos =
  if pos < 0 || pos + 16 > Bytes.length buf then
    invalid_arg "Aes: block overruns buffer"

let load buf pos st =
  for i = 0 to 15 do
    st.(i) <- Char.code (Bytes.get buf (pos + i))
  done

let store buf pos st =
  for i = 0 to 15 do
    Bytes.set buf (pos + i) (Char.chr st.(i))
  done

let encrypt_state k st =
  add_round_key st k.rk 0;
  for round = 1 to 9 do
    sub_bytes st;
    shift_rows st;
    mix_columns st;
    add_round_key st k.rk round
  done;
  sub_bytes st;
  shift_rows st;
  add_round_key st k.rk 10

let encrypt_block k buf ~pos =
  check_block buf pos;
  let st = Array.make 16 0 in
  load buf pos st;
  encrypt_state k st;
  store buf pos st

let decrypt_block k buf ~pos =
  check_block buf pos;
  let st = Array.make 16 0 in
  load buf pos st;
  add_round_key st k.rk 10;
  for round = 9 downto 1 do
    inv_shift_rows st;
    inv_sub_bytes st;
    add_round_key st k.rk round;
    inv_mix_columns st
  done;
  inv_shift_rows st;
  inv_sub_bytes st;
  add_round_key st k.rk 0;
  store buf pos st

let ctr_transform k ~nonce buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Aes.ctr_transform: range overruns buffer";
  let block = Array.make 16 0 in
  let counter = ref 0 in
  let off = ref 0 in
  while !off < len do
    (* Counter block: 8-byte nonce ++ 8-byte counter, big-endian. *)
    for i = 0 to 7 do
      block.(i) <- Int64.to_int (Int64.logand (Int64.shift_right_logical nonce ((7 - i) * 8)) 0xffL)
    done;
    for i = 0 to 7 do
      block.(8 + i) <- (!counter lsr ((7 - i) * 8)) land 0xff
    done;
    encrypt_state k block;
    let chunk = min 16 (len - !off) in
    for i = 0 to chunk - 1 do
      let j = pos + !off + i in
      Bytes.set buf j (Char.chr (Char.code (Bytes.get buf j) lxor block.(i)))
    done;
    off := !off + chunk;
    incr counter
  done

let selftest () =
  (* FIPS-197 C.1: key 000102...0f, plaintext 00112233...ff. *)
  let key = String.init 16 Char.chr in
  let plain = Bytes.init 16 (fun i -> Char.chr ((i * 0x11) land 0xff)) in
  let expected = "\x69\xc4\xe0\xd8\x6a\x7b\x04\x30\xd8\xcd\xb7\x80\x70\xb4\xc5\x5a" in
  let k = expand_key key in
  let buf = Bytes.copy plain in
  encrypt_block k buf ~pos:0;
  let enc_ok = Bytes.to_string buf = expected in
  decrypt_block k buf ~pos:0;
  enc_ok && Bytes.equal buf plain
