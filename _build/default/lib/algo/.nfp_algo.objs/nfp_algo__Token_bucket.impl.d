lib/algo/token_bucket.ml: Float Int64
