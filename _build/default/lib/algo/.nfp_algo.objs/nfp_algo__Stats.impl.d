lib/algo/stats.ml: Array
