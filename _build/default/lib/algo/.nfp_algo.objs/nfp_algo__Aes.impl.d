lib/algo/aes.ml: Array Bytes Char Int64 String
