lib/algo/checksum.mli:
