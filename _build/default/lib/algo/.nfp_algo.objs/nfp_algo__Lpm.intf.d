lib/algo/lpm.mli:
