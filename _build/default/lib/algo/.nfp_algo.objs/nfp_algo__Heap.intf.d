lib/algo/heap.mli:
