lib/algo/stats.mli:
