lib/algo/hashing.ml: Bytes Char Int32 Int64 String
