lib/algo/ring.mli:
