lib/algo/lz77.ml: Array Buffer Char String
