lib/algo/prng.ml: Hashing Int64
