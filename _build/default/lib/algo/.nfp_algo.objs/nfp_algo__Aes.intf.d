lib/algo/aes.mli:
