lib/algo/aho_corasick.ml: Array Char List Queue String
