lib/algo/hashing.mli:
