lib/algo/ring.ml: Array
