lib/algo/aho_corasick.mli:
