lib/algo/token_bucket.mli:
