lib/algo/checksum.ml: Bytes Char
