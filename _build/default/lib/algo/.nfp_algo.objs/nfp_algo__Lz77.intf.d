lib/algo/lz77.mli:
