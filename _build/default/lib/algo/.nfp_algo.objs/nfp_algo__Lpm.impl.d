lib/algo/lpm.ml: Int32
