lib/algo/heap.ml: Array
