lib/algo/prng.mli:
