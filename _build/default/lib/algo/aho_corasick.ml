(* Classic Aho–Corasick: a goto trie over bytes, failure links computed by
   BFS, and output lists merged along failure links. States are arrays
   indexed densely; transitions are full 256-entry arrays for O(1) steps,
   which is the same trade-off DPI engines make. *)

type state = {
  next : int array; (* goto function, -1 = undefined before completion *)
  mutable fail : int;
  mutable out : int list; (* indices of patterns ending here *)
}

type t = { states : state array; npatterns : int }

let new_state () = { next = Array.make 256 (-1); fail = 0; out = [] }

let build patterns =
  let patterns = List.filter (fun p -> String.length p > 0) patterns in
  let arr = ref (Array.make 16 (new_state ())) in
  !arr.(0) <- new_state ();
  let nstates = ref 1 in
  let ensure i =
    if i >= Array.length !arr then begin
      let bigger = Array.make (2 * Array.length !arr) (new_state ()) in
      Array.blit !arr 0 bigger 0 (Array.length !arr);
      arr := bigger
    end
  in
  List.iteri
    (fun pat_idx pattern ->
      let s = ref 0 in
      String.iter
        (fun c ->
          let b = Char.code c in
          if !arr.(!s).next.(b) = -1 then begin
            ensure !nstates;
            !arr.(!nstates) <- new_state ();
            !arr.(!s).next.(b) <- !nstates;
            incr nstates
          end;
          s := !arr.(!s).next.(b))
        pattern;
      !arr.(!s).out <- pat_idx :: !arr.(!s).out)
    patterns;
  (* Failure links by BFS; missing root transitions loop to the root. *)
  let queue = Queue.create () in
  for b = 0 to 255 do
    let t = !arr.(0).next.(b) in
    if t = -1 then !arr.(0).next.(b) <- 0
    else begin
      !arr.(t).fail <- 0;
      Queue.add t queue
    end
  done;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    for b = 0 to 255 do
      let t = !arr.(s).next.(b) in
      if t <> -1 then begin
        let f = !arr.(!arr.(s).fail).next.(b) in
        !arr.(t).fail <- f;
        !arr.(t).out <- !arr.(t).out @ !arr.(f).out;
        Queue.add t queue
      end
      else !arr.(s).next.(b) <- !arr.(!arr.(s).fail).next.(b)
    done
  done;
  { states = Array.sub !arr 0 !nstates; npatterns = List.length patterns }

let pattern_count t = t.npatterns

let scan t text =
  let acc = ref [] in
  let s = ref 0 in
  String.iteri
    (fun i c ->
      s := t.states.(!s).next.(Char.code c);
      List.iter (fun pat -> acc := (pat, i + 1) :: !acc) t.states.(!s).out)
    text;
  List.rev !acc

let matches t text =
  let n = String.length text in
  let rec go s i =
    if i >= n then false
    else
      let s = t.states.(s).next.(Char.code text.[i]) in
      if t.states.(s).out <> [] then true else go s (i + 1)
  in
  go 0 0
