type t = {
  mutable samples : float array;
  mutable size : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable sorted : bool;
}

let create () = { samples = [||]; size = 0; sum = 0.0; sumsq = 0.0; sorted = true }

let add t x =
  if t.size = Array.length t.samples then begin
    let capacity = max 64 (2 * Array.length t.samples) in
    let bigger = Array.make capacity 0.0 in
    Array.blit t.samples 0 bigger 0 t.size;
    t.samples <- bigger
  end;
  t.samples.(t.size) <- x;
  t.size <- t.size + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  t.sorted <- false

let count t = t.size

let mean t = if t.size = 0 then 0.0 else t.sum /. float_of_int t.size

let require_nonempty t name = if t.size = 0 then invalid_arg ("Stats." ^ name ^ ": empty")

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.size in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.size;
    t.sorted <- true
  end

let min_value t =
  require_nonempty t "min_value";
  ensure_sorted t;
  t.samples.(0)

let max_value t =
  require_nonempty t "max_value";
  ensure_sorted t;
  t.samples.(t.size - 1)

let stddev t =
  if t.size < 2 then 0.0
  else
    let n = float_of_int t.size in
    let m = t.sum /. n in
    let v = (t.sumsq /. n) -. (m *. m) in
    if v <= 0.0 then 0.0 else sqrt v

let percentile t p =
  require_nonempty t "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
  ensure_sorted t;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.size)) in
  let idx = if rank <= 0 then 0 else min (t.size - 1) (rank - 1) in
  t.samples.(idx)

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.size - 1 do
    add t b.samples.(i)
  done;
  t
