lib/baseline/bess.ml: Array Int64 List Nfp_algo Nfp_nf Nfp_packet Nfp_sim Packet Printf
