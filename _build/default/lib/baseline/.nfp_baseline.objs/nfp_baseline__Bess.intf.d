lib/baseline/bess.mli: Nfp_nf Nfp_packet Nfp_sim Packet
