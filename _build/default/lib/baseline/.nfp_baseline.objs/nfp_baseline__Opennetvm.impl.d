lib/baseline/opennetvm.ml: Array List Nfp_algo Nfp_nf Nfp_packet Nfp_sim Packet
