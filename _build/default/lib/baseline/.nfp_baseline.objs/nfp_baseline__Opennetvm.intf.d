lib/baseline/opennetvm.mli: Nfp_nf Nfp_packet Nfp_sim Packet
