(** BESS-style run-to-completion baseline (paper §7, Table 4).

    The whole service chain is consolidated into a native run on one
    core — no virtualization hops, no rings between NFs — and the chain
    is replicated across [cores] cores with NIC RSS hashing packets to
    replicas. Each replica owns private NF state (the paper's noted
    RTC drawback: scaling replicates or splits state). *)

open Nfp_packet

type config = {
  cost : Nfp_sim.Cost.t;
  ring_capacity : int;
  jitter : float;
  seed : int64;
}

val default_config : config

val make :
  ?config:config ->
  cores:int ->
  chain:(unit -> Nfp_nf.Nf.t list) ->
  Nfp_sim.Engine.t ->
  output:(pid:int64 -> Packet.t -> unit) ->
  Nfp_sim.Harness.system
(** [chain ()] builds a fresh chain instance per core. *)
