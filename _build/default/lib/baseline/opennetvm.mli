(** OpenNetVM-style sequential chaining baseline.

    The comparison system of the paper's evaluation: NFs run on their
    own cores, but every hop — NIC to first NF, NF to NF, last NF to
    NIC — is relayed by a centralized virtual-switch manager core. The
    switch's packet-RX/TX work bounds throughput regardless of chain
    length (Table 4 measures it flat at ≈9.4 Mpps), while each relayed
    hop adds a small queueing stop that NFP's distributed runtime
    avoids. *)

open Nfp_packet

type config = {
  cost : Nfp_sim.Cost.t;
  ring_capacity : int;
  jitter : float;
  seed : int64;
}

val default_config : config

val core_count : nfs:Nfp_nf.Nf.t list -> int
(** NF cores plus the dedicated switch core. *)

val make :
  ?config:config ->
  nfs:Nfp_nf.Nf.t list ->
  Nfp_sim.Engine.t ->
  output:(pid:int64 -> Packet.t -> unit) ->
  Nfp_sim.Harness.system
