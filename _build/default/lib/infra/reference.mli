(** Reference executors for the result-correctness check (paper §6.4).

    The paper validates NFP by replaying tagged packets through both
    the sequential chain and the optimized service graph and comparing
    outputs. [run_sequential] is the ground truth; [run_plan] executes
    a compiled plan through the full dataplane (classifier, runtimes,
    copies, mergers) on a throwaway engine, ignoring timing. *)

open Nfp_packet

val run_sequential : nfs:Nfp_nf.Nf.t list -> Packet.t -> Packet.t option
(** Process through the chain in order; [None] when an NF drops. The
    input packet is mutated. *)

val run_plan :
  ?mergers:int ->
  plan:Nfp_core.Tables.plan ->
  nfs:(string -> Nfp_nf.Nf.t) ->
  Packet.t ->
  Packet.t option
(** One packet through the deployed plan; [None] when dropped. *)
