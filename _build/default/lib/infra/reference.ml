let run_sequential ~nfs pkt =
  let rec go = function
    | [] -> Some pkt
    | (nf : Nfp_nf.Nf.t) :: rest -> (
        match nf.process pkt with
        | Nfp_nf.Nf.Forward -> go rest
        | Nfp_nf.Nf.Dropped -> None)
  in
  go nfs

let run_plan ?(mergers = 1) ~plan ~nfs pkt =
  let engine = Nfp_sim.Engine.create () in
  let result = ref None in
  let config = { System.default_config with mergers; jitter = 0.0 } in
  let system =
    System.make ~config ~plan ~nfs engine ~output:(fun ~pid:_ out -> result := Some out)
  in
  system.Nfp_sim.Harness.inject ~pid:1L pkt;
  Nfp_sim.Engine.run engine;
  !result
