(** Per-packet shared-memory context.

    Stands in for the huge-page shared memory region of the paper's
    infrastructure (§5): all versions of one packet live here, and NFs,
    runtimes and mergers pass references to this context through rings
    rather than copying buffers. *)

open Nfp_packet

type t

val create : pid:int64 -> mid:int -> Packet.t -> t
(** Store the original packet as version 1 and stamp its metadata
    (MID/PID, version 1) the way the classifier does. *)

val pid : t -> int64

val mid : t -> int
(** The service graph (Match ID) this packet was classified into. *)

val get : t -> int -> Packet.t option
(** Version lookup (1-based). Out-of-range versions are [None]. *)

val set : t -> int -> Packet.t -> unit
(** @raise Invalid_argument outside [1, 16]. *)

val copy : t -> src:int -> dst:int -> full:bool -> int
(** Materialize version [dst] from [src] (header-only unless [full]),
    tagging its metadata version; returns the number of bytes copied.
    @raise Invalid_argument when [src] does not exist. *)

val versions : t -> (int * Packet.t) list
(** Extant versions in ascending order. *)
