open Nfp_packet
open Nfp_core

let log_src = Logs.Src.create "nfp.system" ~doc:"NFP dataplane"

module Log = (val Logs.src_log log_src)

type config = {
  cost : Nfp_sim.Cost.t;
  ring_capacity : int;
  mergers : int;
  jitter : float;
  seed : int64;
}

let default_config =
  { cost = Nfp_sim.Cost.default; ring_capacity = 128; mergers = 1; jitter = 0.05; seed = 7L }

let core_count config (plan : Tables.plan) =
  1
  + List.length plan.Tables.nf_entries
  + config.mergers
  + if config.mergers > 1 then 1 else 0

type delivery = {
  ctx : Context.t;
  merge_id : int;
  deliverer : Tables.deliverer;
  version : int;
  nil : bool;
}

type at_entry = { mutable received : int; mutable nil_from : Tables.deliverer list }

(* A retryable emission: a mutable worklist of sends; each call pushes
   as many as fit downstream and reports whether everything left. *)
let emitter sends =
  let remaining = ref sends in
  fun () ->
    let rec go () =
      match !remaining with
      | [] -> true
      | send :: rest ->
          if send () then begin
            remaining := rest;
            go ()
          end
          else false
    in
    go ()

type core_stats = {
  core : string;
  busy_ns : float;
  stalled_ns : float;
  processed : int;
  queue : int;
}

let stats_of_server (type a) (s : a Nfp_sim.Server.t) =
  {
    core = Nfp_sim.Server.name s;
    busy_ns = Nfp_sim.Server.busy_ns s;
    stalled_ns = Nfp_sim.Server.stalled_ns s;
    processed = Nfp_sim.Server.processed s;
    queue = Nfp_sim.Server.queue_length s;
  }

let make_multi ?(config = default_config) ?stats ~graphs engine ~output =
  if graphs = [] then invalid_arg "System.make_multi: no service graphs";
  let cost = config.cost in
  (* MIDs are 1-based positions in the classification table. *)
  let table = Array.of_list graphs in
  let plan_of_mid mid : Tables.plan =
    let _, p, _ = table.(mid - 1) in
    p
  in
  (* Resolve every plan's NF implementations up front. *)
  let nf_impls =
    List.concat
      (List.mapi
         (fun i (_, (plan : Tables.plan), nfs) ->
           List.map
             (fun (e : Tables.nf_entry) ->
               match nfs e.nf with
               | nf -> (i + 1, e, nf)
               | exception _ ->
                   invalid_arg (Printf.sprintf "System.make: no NF named %S" e.nf))
             plan.nf_entries)
         graphs)
  in
  let ring_drops = ref 0 and nf_drops = ref 0 in
  let nf_cores : (int * string, Context.t Nfp_sim.Server.t) Hashtbl.t = Hashtbl.create 16 in
  let merger_cores : delivery Nfp_sim.Server.t array ref = ref [||] in
  let agent_core : delivery Nfp_sim.Server.t option ref = ref None in
  let prng = Nfp_algo.Prng.create ~seed:config.seed in
  let jitter_for () = (config.jitter, Nfp_algo.Prng.split prng) in
  let packet_bytes ctx version =
    match Context.get ctx version with Some p -> Packet.wire_length p | None -> 1500
  in
  let action_cost ctx actions =
    List.fold_left
      (fun acc -> function
        | Tables.Copy { full; src_version; _ } ->
            if full then
              acc + cost.copy_base
              + int_of_float (cost.copy_per_byte *. float_of_int (packet_bytes ctx src_version))
            else acc + cost.header_copy
        | Tables.Distribute { targets; _ } ->
            acc + (cost.ring_enqueue * List.length targets))
      0 actions
  in
  let wire_delay = cost.wire_ns /. 2.0 in
  let deliver_out ~pid pkt =
    Nfp_sim.Engine.schedule engine ~delay:wire_delay (fun () -> output ~pid pkt)
  in
  let merger_slot ctx =
    Int64.to_int
      (Int64.rem
         (Int64.logand (Nfp_algo.Hashing.mix64 (Context.pid ctx)) Int64.max_int)
         (Int64.of_int (max 1 (Array.length !merger_cores))))
  in
  (* A single send attempt; [false] = downstream full, retry later. *)
  let send_to_merge (d : delivery) () =
    match !agent_core with
    | Some agent -> Nfp_sim.Server.offer agent d
    | None -> Nfp_sim.Server.offer !merger_cores.(merger_slot d.ctx) d
  in
  let send_to_nf name ctx () =
    match Hashtbl.find_opt nf_cores (Context.mid ctx, name) with
    | Some core -> Nfp_sim.Server.offer core ctx
    | None -> invalid_arg (Printf.sprintf "System: FT references unknown NF %S" name)
  in
  (* Execute an action list: copies happen now; distributes become a
     retryable emission worklist. *)
  let emission_of_actions ~self ctx actions =
    let sends =
      List.concat_map
        (function
          | Tables.Copy { src_version; dst_version; full } ->
              ignore (Context.copy ctx ~src:src_version ~dst:dst_version ~full);
              []
          | Tables.Distribute { version; targets } ->
              List.map
                (fun target () ->
                  match target with
                  | Tables.To_nf n -> send_to_nf n ctx ()
                  | Tables.To_merger id ->
                      send_to_merge
                        { ctx; merge_id = id; deliverer = self; version; nil = false }
                        ()
                  | Tables.Deliver ->
                      (match Context.get ctx version with
                      | Some pkt -> deliver_out ~pid:(Context.pid ctx) pkt
                      | None -> ());
                      true)
                targets)
        actions
    in
    emitter sends
  in
  (* One core per NF: the NF plus its runtime (paper §6: the runtime
     shares the CPU core with the NF). *)
  List.iter
    (fun (mid, (entry : Tables.nf_entry), (nf : Nfp_nf.Nf.t)) ->
      let service_ns ctx =
        let nf_cycles =
          match Context.get ctx entry.version with
          | Some pkt -> nf.cost_cycles pkt
          | None -> 0
        in
        Nfp_sim.Cost.ns_of_cycles cost
          (cost.ring_dequeue + cost.nf_runtime + nf_cycles + action_cost ctx entry.actions)
      in
      let execute ctx =
        match Context.get ctx entry.version with
        | None -> fun () -> true
        | Some pkt -> (
            (* A crashing NF must not take the dataplane down: the
               packet is treated as dropped (with a nil where a merger
               expects this branch) and the fault is logged. *)
            let verdict =
              try nf.process pkt
              with exn ->
                Log.warn (fun m ->
                    m "NF %s crashed on packet %Ld: %s" entry.nf (Context.pid ctx)
                      (Printexc.to_string exn));
                Nfp_nf.Nf.Dropped
            in
            match verdict with
            | Nfp_nf.Nf.Forward ->
                emission_of_actions ~self:(Tables.D_nf entry.nf) ctx entry.actions
            | Nfp_nf.Nf.Dropped -> (
                match entry.nil_target with
                | Some id ->
                    emitter
                      [
                        send_to_merge
                          {
                            ctx;
                            merge_id = id;
                            deliverer = Tables.D_nf entry.nf;
                            version = entry.version;
                            nil = true;
                          };
                      ]
                | None ->
                    incr nf_drops;
                    fun () -> true))
      in
      let core =
        Nfp_sim.Server.create ~engine
          ~name:(Printf.sprintf "mid%d:%s" mid entry.nf)
          ~ring_capacity:config.ring_capacity ~batch:cost.batch ~jitter:(jitter_for ())
          ~service_ns ~execute ()
      in
      Hashtbl.replace nf_cores (mid, entry.nf) core)
    nf_impls;
  (* Merger instances: shared across service graphs (paper §5.3: "a
     merger instance can merge any packet from any service graph"),
     each with a private accumulating table keyed by MID and PID. *)
  let make_merger index =
    let at : (int * int * int64, at_entry) Hashtbl.t = Hashtbl.create 1024 in
    let spec_of mid id =
      match Tables.find_merge (plan_of_mid mid) id with
      | Some s -> s
      | None -> invalid_arg "System: delivery references unknown merge point"
    in
    let branch_of spec (deliverer : Tables.deliverer) =
      List.find_opt
        (fun (e : Tables.expect) ->
          e.deliverer = deliverer
          || match deliverer with Tables.D_nf n -> List.mem n e.members | _ -> false)
        spec.Tables.expected
    in
    let service_ns (d : delivery) =
      let spec = spec_of (Context.mid d.ctx) d.merge_id in
      let branches = List.length spec.expected in
      let completion =
        (List.length spec.ops * cost.merge_op) + action_cost d.ctx spec.next
      in
      Nfp_sim.Cost.ns_of_cycles cost
        (cost.ring_dequeue + cost.merge_delivery + (completion / max 1 branches))
    in
    let execute (d : delivery) =
      let mid = Context.mid d.ctx in
      let spec = spec_of mid d.merge_id in
      let key = (mid, d.merge_id, Context.pid d.ctx) in
      let entry =
        match Hashtbl.find_opt at key with
        | Some e -> e
        | None ->
            let e = { received = 0; nil_from = [] } in
            Hashtbl.replace at key e;
            e
      in
      entry.received <- entry.received + 1;
      if d.nil then entry.nil_from <- d.deliverer :: entry.nil_from;
      if entry.received < List.length spec.expected then fun () -> true
      else begin
        Hashtbl.remove at key;
        let nil_branches =
          List.filter_map (fun del -> branch_of spec del) entry.nil_from
        in
        let dropped =
          match spec.drop_policy with
          | `Any -> nil_branches <> []
          | `Priority_to winner -> (
              match branch_of spec winner with
              | Some wb -> List.exists (fun (b : Tables.expect) -> b = wb) nil_branches
              | None -> nil_branches <> [])
        in
        if dropped then begin
          (* Propagate a nil upward when an enclosing merger expects this
             branch; otherwise the packet dies here. *)
          let nil_sends =
            List.concat_map
              (function
                | Tables.Distribute { version; targets } ->
                    List.filter_map
                      (function
                        | Tables.To_merger outer ->
                            Some
                              (send_to_merge
                                 {
                                   ctx = d.ctx;
                                   merge_id = outer;
                                   deliverer = Tables.D_merger d.merge_id;
                                   version;
                                   nil = true;
                                 })
                        | Tables.To_nf _ | Tables.Deliver -> None)
                      targets
                | Tables.Copy _ -> [])
              spec.next
          in
          if nil_sends = [] then incr nf_drops;
          emitter nil_sends
        end
        else begin
          (* Versions from branches that dropped under a priority policy
             are half-processed; their ops are skipped. *)
          let nil_versions =
            List.map (fun (b : Tables.expect) -> b.version) nil_branches
          in
          let get v =
            if List.mem v nil_versions && v <> spec.result_version then None
            else Context.get d.ctx v
          in
          List.iter (fun op -> Merge_op.apply op ~get) spec.ops;
          emission_of_actions ~self:(Tables.D_merger d.merge_id) d.ctx spec.next
        end
      end
    in
    Nfp_sim.Server.create ~engine
      ~name:(Printf.sprintf "merger#%d" index)
      ~ring_capacity:config.ring_capacity ~batch:cost.batch ~jitter:(jitter_for ())
      ~service_ns ~execute ()
  in
  merger_cores := Array.init (max 1 config.mergers) make_merger;
  (* The merger agent: hash the immutable PID, steer to an instance. *)
  if config.mergers > 1 then begin
    let instances = !merger_cores in
    let service_ns _ =
      Nfp_sim.Cost.ns_of_cycles cost
        (cost.ring_dequeue + cost.merger_agent + cost.ring_enqueue)
    in
    let execute (d : delivery) =
      let i =
        Int64.to_int
          (Int64.rem
             (Int64.logand (Nfp_algo.Hashing.mix64 (Context.pid d.ctx)) Int64.max_int)
             (Int64.of_int (Array.length instances)))
      in
      emitter [ (fun () -> Nfp_sim.Server.offer instances.(i) d) ]
    in
    agent_core :=
      Some
        (Nfp_sim.Server.create ~engine ~name:"merger-agent"
           ~ring_capacity:config.ring_capacity ~batch:cost.batch ~jitter:(jitter_for ())
           ~service_ns ~execute ())
  end;
  (* Classifier core: CT match, metadata tagging, first-hop actions.
     Unmatched packets are discarded (no service graph owns them). *)
  let classify pkt =
    let flow = Packet.flow pkt in
    let rec go i =
      if i >= Array.length table then None
      else
        let m, _, _ = table.(i) in
        if Flow_match.matches m flow then Some (i + 1) else go (i + 1)
    in
    go 0
  in
  let classifier =
    let service_ns (ctx : Context.t) =
      let actions = (plan_of_mid (Context.mid ctx)).classifier_actions in
      Nfp_sim.Cost.ns_of_cycles cost (cost.classifier + action_cost ctx actions)
    in
    let execute ctx =
      emission_of_actions ~self:(Tables.D_nf "classifier") ctx
        (plan_of_mid (Context.mid ctx)).classifier_actions
    in
    Nfp_sim.Server.create ~engine ~name:"classifier" ~ring_capacity:config.ring_capacity
      ~batch:cost.batch ~jitter:(jitter_for ()) ~service_ns ~execute ()
  in
  (match stats with
  | None -> ()
  | Some cell ->
      cell :=
        fun () ->
          stats_of_server classifier
          :: (Hashtbl.fold (fun _ core acc -> stats_of_server core :: acc) nf_cores []
             |> List.sort (fun a b -> compare a.core b.core))
          @ Array.to_list (Array.map stats_of_server !merger_cores)
          @ (match !agent_core with Some a -> [ stats_of_server a ] | None -> []));
  {
    Nfp_sim.Harness.inject =
      (fun ~pid pkt ->
        Nfp_sim.Engine.schedule engine ~delay:wire_delay (fun () ->
            match classify pkt with
            | None -> incr nf_drops
            | Some mid ->
                let ctx = Context.create ~pid ~mid pkt in
                if not (Nfp_sim.Server.offer classifier ctx) then incr ring_drops));
    ring_drops = (fun () -> !ring_drops);
    nf_drops = (fun () -> !nf_drops);
  }

let make ?config ?stats ~plan ~nfs engine ~output =
  make_multi ?config ?stats ~graphs:[ (Flow_match.any, plan, nfs) ] engine ~output
