open Nfp_packet

type t = { pid : int64; mid : int; slots : Packet.t option array }

let max_versions = 16

let create ~pid ~mid pkt =
  let slots = Array.make (max_versions + 1) None in
  Packet.set_meta pkt (Meta.make ~mid ~pid ~version:1);
  slots.(1) <- Some pkt;
  { pid; mid; slots }

let pid t = t.pid

let mid t = t.mid

let get t v = if v < 1 || v > max_versions then None else t.slots.(v)

let set t v pkt =
  if v < 1 || v > max_versions then invalid_arg "Context.set: version out of range";
  t.slots.(v) <- Some pkt

let copy t ~src ~dst ~full =
  match get t src with
  | None -> invalid_arg "Context.copy: source version missing"
  | Some pkt ->
      let copy =
        if full then begin
          let c = Packet.full_copy pkt in
          Packet.set_meta c (Meta.with_version (Packet.meta pkt) dst);
          c
        end
        else Packet.header_only_copy pkt ~version:dst
      in
      set t dst copy;
      Packet.wire_length copy

let versions t =
  let acc = ref [] in
  for v = max_versions downto 1 do
    match t.slots.(v) with Some p -> acc := (v, p) :: !acc | None -> ()
  done;
  !acc
