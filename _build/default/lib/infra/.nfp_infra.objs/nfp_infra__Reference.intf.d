lib/infra/reference.mli: Nfp_core Nfp_nf Nfp_packet Packet
