lib/infra/context.ml: Array Meta Nfp_packet Packet
