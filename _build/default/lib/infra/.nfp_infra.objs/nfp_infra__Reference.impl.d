lib/infra/reference.ml: Nfp_nf Nfp_sim System
