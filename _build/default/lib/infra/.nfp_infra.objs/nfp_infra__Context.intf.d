lib/infra/context.mli: Nfp_packet Packet
