lib/infra/cluster.mli: Nfp_core Nfp_nf Nfp_packet Nfp_sim Packet System
