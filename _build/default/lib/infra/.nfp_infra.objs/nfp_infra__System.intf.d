lib/infra/system.mli: Flow_match Nfp_core Nfp_nf Nfp_packet Nfp_sim Packet
