lib/infra/system.ml: Array Context Flow_match Hashtbl Int64 List Logs Merge_op Nfp_algo Nfp_core Nfp_nf Nfp_packet Nfp_sim Packet Printexc Printf Tables
