lib/infra/cluster.ml: List Nfp_core Nfp_sim System
