(** Flow match specifications — the Match column of the paper's
    Classification Table (Fig. 4).

    The classifier matches each incoming packet's 5-tuple against an
    ordered list of these specs to pick the service graph (MID) the
    packet belongs to. Prefixes, port ranges and protocol are all
    optional; an empty spec matches everything. *)

type t = {
  sip_prefix : (int32 * int) option;  (** prefix, length 0-32 *)
  dip_prefix : (int32 * int) option;
  sport_range : (int * int) option;  (** inclusive *)
  dport_range : (int * int) option;
  proto : int option;
}

val any : t
(** Matches every packet. *)

val make :
  ?sip_prefix:int32 * int ->
  ?dip_prefix:int32 * int ->
  ?sport_range:int * int ->
  ?dport_range:int * int ->
  ?proto:int ->
  unit ->
  t
(** @raise Invalid_argument on prefix lengths outside [0, 32], ports
    outside [0, 65535], or inverted ranges. *)

val of_flow : Flow.t -> t
(** Exact match on one 5-tuple. *)

val matches : t -> Flow.t -> bool

val matches_packet : t -> Packet.t -> bool

val is_any : t -> bool

val pp : Format.formatter -> t -> unit
