type t = { sip : int32; dip : int32; sport : int; dport : int; proto : int }

let make ~sip ~dip ~sport ~dport ~proto =
  let port_ok p = p >= 0 && p <= 0xffff in
  if not (port_ok sport && port_ok dport) then invalid_arg "Flow.make: port out of range";
  if proto < 0 || proto > 0xff then invalid_arg "Flow.make: protocol out of range";
  { sip; dip; sport; dport; proto }

let equal a b =
  Int32.equal a.sip b.sip && Int32.equal a.dip b.dip && a.sport = b.sport && a.dport = b.dport
  && a.proto = b.proto

let compare = Stdlib.compare

let hash t = Nfp_algo.Hashing.tuple5 t.sip t.dip t.sport t.dport t.proto

let reverse t = { t with sip = t.dip; dip = t.sip; sport = t.dport; dport = t.sport }

let ip_to_string ip =
  let b n = Int32.to_int (Int32.logand (Int32.shift_right_logical ip n) 0xffl) in
  Printf.sprintf "%d.%d.%d.%d" (b 24) (b 16) (b 8) (b 0)

let ip_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
      with
      | Some a, Some b, Some c, Some d
        when a >= 0 && a < 256 && b >= 0 && b < 256 && c >= 0 && c < 256 && d >= 0 && d < 256 ->
          Some
            (Int32.logor
               (Int32.shift_left (Int32.of_int a) 24)
               (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d)))
      | _ -> None)
  | _ -> None

let pp fmt t =
  Format.fprintf fmt "%s:%d -> %s:%d (proto %d)" (ip_to_string t.sip) t.sport
    (ip_to_string t.dip) t.dport t.proto
