type t = Sip | Dip | Sport | Dport | Proto | Ttl | Tos | Len | Payload

let all = [ Sip; Dip; Sport; Dport; Proto; Ttl; Tos; Len; Payload ]

let equal = ( = )

let compare = Stdlib.compare

let to_string = function
  | Sip -> "sip"
  | Dip -> "dip"
  | Sport -> "sport"
  | Dport -> "dport"
  | Proto -> "proto"
  | Ttl -> "ttl"
  | Tos -> "tos"
  | Len -> "len"
  | Payload -> "payload"

let of_string s =
  match String.lowercase_ascii s with
  | "sip" -> Some Sip
  | "dip" -> Some Dip
  | "sport" -> Some Sport
  | "dport" -> Some Dport
  | "proto" -> Some Proto
  | "ttl" -> Some Ttl
  | "tos" -> Some Tos
  | "len" -> Some Len
  | "payload" -> Some Payload
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)

let is_header = function Payload | Len -> false | Sip | Dip | Sport | Dport | Proto | Ttl | Tos -> true
