(** Transport 5-tuples.

    The classifier matches on the 5-tuple (paper Fig. 4), the load
    balancer ECMP-hashes it, and the monitor keys its counters on it. *)

type t = {
  sip : int32;
  dip : int32;
  sport : int;
  dport : int;
  proto : int;
}

val make : sip:int32 -> dip:int32 -> sport:int -> dport:int -> proto:int -> t
(** @raise Invalid_argument if a port is outside [0, 65535] or the
    protocol outside [0, 255]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int
(** ECMP-style 5-tuple hash, non-negative. *)

val reverse : t -> t
(** Swap source and destination (the return path of the flow). *)

val pp : Format.formatter -> t -> unit

val ip_to_string : int32 -> string

val ip_of_string : string -> int32 option
(** Dotted-quad parse; [None] on malformed input. *)
