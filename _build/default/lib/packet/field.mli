(** Packet fields that NF action profiles talk about.

    These are the columns of paper Table 2: the orchestrator reasons
    about which fields an NF reads or writes, and merge operations name
    the field they transplant between packet versions. *)

type t =
  | Sip  (** IPv4 source address *)
  | Dip  (** IPv4 destination address *)
  | Sport  (** transport source port *)
  | Dport  (** transport destination port *)
  | Proto  (** IPv4 protocol number *)
  | Ttl  (** IPv4 time-to-live *)
  | Tos  (** IPv4 type-of-service / DSCP *)
  | Len
      (** total packet length — read by byte counters and policers,
          written implicitly by every NF that resizes the payload. Not
          preserved by header-only copies (the copy's length is
          rewritten to the header size), so length readers force full
          copies. An extension over the paper's Table 2 field set,
          needed for exact internal-state equivalence. *)
  | Payload  (** everything past the transport header *)

val all : t list

val equal : t -> t -> bool

val compare : t -> t -> int

val to_string : t -> string

val of_string : string -> t option
(** Case-insensitive; accepts the names printed by {!to_string}. *)

val pp : Format.formatter -> t -> unit

val is_header : t -> bool
(** [true] for the fields a header-only copy preserves — everything
    except [Payload] and [Len] (paper §4.2, Header-Only Copying). *)
