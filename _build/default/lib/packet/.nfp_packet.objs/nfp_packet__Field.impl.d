lib/packet/field.ml: Format Stdlib String
