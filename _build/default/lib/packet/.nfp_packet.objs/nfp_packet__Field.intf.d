lib/packet/field.mli: Format
