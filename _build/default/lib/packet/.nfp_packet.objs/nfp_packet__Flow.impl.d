lib/packet/flow.ml: Format Int32 Nfp_algo Printf Stdlib String
