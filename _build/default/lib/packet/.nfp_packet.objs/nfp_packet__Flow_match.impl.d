lib/packet/flow_match.ml: Flow Format Int32 Packet Printf
