lib/packet/packet.ml: Bytes Char Field Flow Format Int32 Meta Nfp_algo String
