lib/packet/meta.mli: Format
