lib/packet/flow.mli: Format
