lib/packet/meta.ml: Format Int64
