lib/packet/flow_match.mli: Flow Format Packet
