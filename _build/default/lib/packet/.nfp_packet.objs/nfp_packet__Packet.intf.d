lib/packet/packet.mli: Field Flow Format Meta
