type t = {
  sip_prefix : (int32 * int) option;
  dip_prefix : (int32 * int) option;
  sport_range : (int * int) option;
  dport_range : (int * int) option;
  proto : int option;
}

let any =
  { sip_prefix = None; dip_prefix = None; sport_range = None; dport_range = None; proto = None }

let check_prefix = function
  | Some (_, len) when len < 0 || len > 32 ->
      invalid_arg "Flow_match: prefix length must be in [0, 32]"
  | _ -> ()

let check_range name = function
  | Some (lo, hi) when lo < 0 || hi > 0xffff || lo > hi ->
      invalid_arg (Printf.sprintf "Flow_match: invalid %s range" name)
  | _ -> ()

let make ?sip_prefix ?dip_prefix ?sport_range ?dport_range ?proto () =
  check_prefix sip_prefix;
  check_prefix dip_prefix;
  check_range "sport" sport_range;
  check_range "dport" dport_range;
  (match proto with
  | Some p when p < 0 || p > 0xff -> invalid_arg "Flow_match: invalid protocol"
  | _ -> ());
  { sip_prefix; dip_prefix; sport_range; dport_range; proto }

let of_flow (f : Flow.t) =
  {
    sip_prefix = Some (f.sip, 32);
    dip_prefix = Some (f.dip, 32);
    sport_range = Some (f.sport, f.sport);
    dport_range = Some (f.dport, f.dport);
    proto = Some f.proto;
  }

let prefix_matches prefix addr =
  match prefix with
  | None -> true
  | Some (_, 0) -> true
  | Some (p, len) ->
      let mask = Int32.shift_left (-1l) (32 - len) in
      Int32.equal (Int32.logand addr mask) (Int32.logand p mask)

let range_matches range v =
  match range with None -> true | Some (lo, hi) -> v >= lo && v <= hi

let matches t (f : Flow.t) =
  prefix_matches t.sip_prefix f.sip
  && prefix_matches t.dip_prefix f.dip
  && range_matches t.sport_range f.sport
  && range_matches t.dport_range f.dport
  && match t.proto with None -> true | Some p -> p = f.proto

let matches_packet t pkt = matches t (Packet.flow pkt)

let is_any t = t = any

let pp fmt t =
  if is_any t then Format.pp_print_string fmt "*"
  else begin
    let part name p = Format.fprintf fmt "%s=%s " name p in
    (match t.sip_prefix with
    | Some (p, len) -> part "sip" (Printf.sprintf "%s/%d" (Flow.ip_to_string p) len)
    | None -> ());
    (match t.dip_prefix with
    | Some (p, len) -> part "dip" (Printf.sprintf "%s/%d" (Flow.ip_to_string p) len)
    | None -> ());
    (match t.sport_range with
    | Some (lo, hi) -> part "sport" (Printf.sprintf "%d-%d" lo hi)
    | None -> ());
    (match t.dport_range with
    | Some (lo, hi) -> part "dport" (Printf.sprintf "%d-%d" lo hi)
    | None -> ());
    match t.proto with Some p -> part "proto" (string_of_int p) | None -> ()
  end
