(** Block pipelines, OpenBox graph merging, and block-level NFP
    parallelism (paper §7, Fig. 15).

    A modular NF is a pipeline of blocks. OpenBox merges two pipelines
    by sharing their common prefix; NFP then stages the remaining
    blocks with the same dependency analysis it applies to whole NFs,
    parallelizing independent blocks (Fig. 15 parallelizes the
    firewall's Alert with the IPS's DPI). *)

type t = Block.t list

val firewall : ?acl:Nfp_nf.Firewall.rule list -> unit -> t
(** Fig. 15's firewall: ReadPackets → HeaderClassifier → Alert →
    Output. *)

val ips : ?acl:Nfp_nf.Firewall.rule list -> ?signatures:string list -> unit -> t
(** Fig. 15's IPS: ReadPackets → HeaderClassifier → DPI → Alert →
    Output. *)

type merged = {
  shared : Block.t list;  (** common prefix, executed once *)
  tail : Block.t list;  (** remaining blocks of both pipelines *)
}

val merge : t -> t -> merged
(** OpenBox graph merging: share the longest common prefix of blocks
    performing identical work; concatenate the rest (left pipeline's
    leftovers first). Terminal Output blocks are shared too. *)

val stages : merged -> Block.t list list
(** NFP block-level parallelism over the merged tail: stage the blocks
    with Algorithm 1 on their profiles (shared prefix stays first). *)

val total_cycles : t -> int

val staged_cycles : Block.t list list -> int
(** Critical-path cost: sum over stages of the max block cost — the
    latency the parallelized graph pays. *)

val execute : Block.t list list -> Nfp_packet.Packet.t -> Block.outcome list
(** Run a staged pipeline (stages in order, blocks within a stage in
    listed order); stops at the first [Dropped]. Returns the outcomes
    observed. *)

val pp_stages : Format.formatter -> Block.t list list -> unit

val to_deployment :
  Block.t list list -> Nfp_core.Graph.t * (string -> Nfp_nf.Nf.t)
(** Lower a staged block pipeline onto the NFP dataplane: each block
    becomes an NF instance (alerts count in its state digest, DPI and
    classifier drops become NF drops), each stage a parallel group — so
    block-level parallelism can be measured end to end with
    {!Nfp_infra.System} like any service graph. *)
