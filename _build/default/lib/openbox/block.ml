open Nfp_packet
open Nfp_nf

type outcome = Continue | Dropped | Alerted of string

type t = {
  name : string;
  kind : string;
  config_key : int;
  profile : Action.t list;
  cost_cycles : int;
  process : Packet.t -> outcome;
}

let read_packets () =
  {
    name = "read";
    kind = "ReadPackets";
    config_key = 0;
    profile = [];
    cost_cycles = 40;
    process = (fun _ -> Continue);
  }

(* Hashtbl.hash only inspects a bounded prefix of a structure, which
   would make distinct ACLs collide; fold over every rule instead. *)
let acl_key acl =
  List.fold_left
    (fun acc rule -> Nfp_algo.Hashing.combine acc (Hashtbl.hash rule))
    (List.length acl) acl

let signatures_key signatures =
  List.fold_left
    (fun acc s -> Nfp_algo.Hashing.combine acc (Nfp_algo.Hashing.fnv1a32 s))
    (List.length signatures) signatures

let header_classifier ~name ~acl =
  {
    name;
    kind = "HeaderClassifier";
    config_key = acl_key acl;
    profile =
      Action.
        [ Read Field.Sip; Read Field.Dip; Read Field.Sport; Read Field.Dport; Drop ];
    cost_cycles = 150;
    process =
      (fun pkt ->
        match List.find_opt (fun r -> Firewall.matches r pkt) acl with
        | Some r when not r.Firewall.permit -> Dropped
        | Some _ | None -> Continue);
  }

let dpi ~name ~signatures =
  let automaton = Nfp_algo.Aho_corasick.build signatures in
  {
    name;
    kind = "DPI";
    config_key = signatures_key signatures;
    profile = Action.[ Read Field.Payload; Drop ];
    cost_cycles = 2200;
    process =
      (fun pkt ->
        if Nfp_algo.Aho_corasick.matches automaton (Packet.payload pkt) then Dropped
        else Continue);
  }

let alert ~name ~source =
  {
    name;
    kind = "Alert";
    config_key = Hashtbl.hash source;
    profile = Action.[ Read Field.Sip; Read Field.Dip ];
    cost_cycles = 120;
    process = (fun _ -> Alerted source);
  }

let output () =
  {
    name = "output";
    kind = "Output";
    config_key = 0;
    profile = [];
    cost_cycles = 40;
    process = (fun _ -> Continue);
  }

let same_work a b = a.kind = b.kind && a.config_key = b.config_key

let pp fmt t = Format.fprintf fmt "%s[%s]" t.name t.kind
