(** OpenBox-style NF building blocks (paper §7, Fig. 15).

    Modular NFs decompose into blocks — packet readers, header
    classifiers, DPI engines, alert emitters — each with its own action
    profile, so NFP's dependency analysis applies at block granularity
    ("NF parallelism can be implemented in the granularity of building
    blocks"). *)

open Nfp_packet
open Nfp_nf

type outcome =
  | Continue  (** pass the packet to the next block *)
  | Dropped  (** classifier/DPI verdict: discard *)
  | Alerted of string  (** emit an alert and keep going *)

type t = {
  name : string;  (** unique within a pipeline, e.g. "dpi" *)
  kind : string;  (** block type for prefix sharing, e.g. "HeaderClassifier" *)
  config_key : int;  (** two blocks share work only if kind+config match *)
  profile : Action.t list;
  cost_cycles : int;
  process : Packet.t -> outcome;
}

val read_packets : unit -> t
(** NIC read block; no packet actions. *)

val header_classifier : name:string -> acl:Firewall.rule list -> t
(** Match 5-tuples against an ACL; drops on a deny rule. *)

val dpi : name:string -> signatures:string list -> t
(** Payload signature matching; drops on a match (IPS semantics). *)

val alert : name:string -> source:string -> t
(** Emit an alert tagged with its source NF; counts as payload-free
    read-only work. *)

val output : unit -> t
(** Terminal TX block. *)

val same_work : t -> t -> bool
(** Two blocks perform identical work (kind and configuration) — the
    sharing test OpenBox graph merging uses. *)

val pp : Format.formatter -> t -> unit
