lib/openbox/block.mli: Action Firewall Format Nfp_nf Nfp_packet Packet
