lib/openbox/pipeline.mli: Block Format Nfp_core Nfp_nf Nfp_packet
