lib/openbox/block.ml: Action Field Firewall Format Hashtbl List Nfp_algo Nfp_nf Nfp_packet Packet
