lib/openbox/pipeline.ml: Block Format Hashtbl List Nfp_core Nfp_nf
