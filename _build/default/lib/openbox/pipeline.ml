type t = Block.t list

let default_acl () = Nfp_nf.Firewall.default_acl 100

let firewall ?acl () =
  let acl = match acl with Some a -> a | None -> default_acl () in
  [
    Block.read_packets ();
    Block.header_classifier ~name:"hc" ~acl;
    Block.alert ~name:"alert_fw" ~source:"firewall";
    Block.output ();
  ]

let ips ?acl ?signatures () =
  let acl = match acl with Some a -> a | None -> default_acl () in
  let signatures =
    match signatures with Some s -> s | None -> Nfp_nf.Ids.default_signatures 100
  in
  [
    Block.read_packets ();
    Block.header_classifier ~name:"hc" ~acl;
    Block.dpi ~name:"dpi" ~signatures;
    Block.alert ~name:"alert_ips" ~source:"ips";
    Block.output ();
  ]

type merged = { shared : Block.t list; tail : Block.t list }

let is_output (b : Block.t) = b.kind = "Output"

let merge a b =
  let rec common acc = function
    | x :: xs, y :: ys when Block.same_work x y -> common (x :: acc) (xs, ys)
    | rest -> (List.rev acc, rest)
  in
  let shared, (rest_a, rest_b) = common [] (a, b) in
  (* A single shared Output terminates the merged graph. *)
  let strip l = List.filter (fun b -> not (is_output b)) l in
  let outputs = List.exists is_output (rest_a @ rest_b) in
  let tail = strip rest_a @ strip rest_b @ if outputs then [ Block.output () ] else [] in
  { shared; tail }

let stages merged =
  (* The terminal Output block is pinned last (Position semantics). *)
  let body = List.filter (fun b -> not (is_output b)) merged.tail in
  let outputs = List.filter is_output merged.tail in
  let merged = { merged with tail = body } in
  let items = List.map (fun (b : Block.t) -> b.name) merged.tail in
  let profile_of name =
    match List.find_opt (fun (b : Block.t) -> b.name = name) merged.tail with
    | Some b -> b.profile
    | None -> raise Not_found
  in
  (* The tail keeps its pipeline order as the intended sequential
     order; independent blocks land in the same stage. *)
  let ordered =
    let rec pairs = function
      | x :: (y :: _ as rest) -> (x, y) :: pairs rest
      | [ _ ] | [] -> []
    in
    pairs items
  in
  let staged =
    Nfp_core.Micrograph.order_items ~items ~profile_of ~ordered ~forced_parallel:[] ()
  in
  let block name =
    match List.find_opt (fun (b : Block.t) -> b.name = name) merged.tail with
    | Some b -> b
    | None -> assert false
  in
  List.map (fun b -> [ b ]) merged.shared
  @ List.map (fun stage -> List.map block stage) staged.stages
  @ match outputs with [] -> [] | os -> [ os ]

let total_cycles t = List.fold_left (fun acc (b : Block.t) -> acc + b.cost_cycles) 0 t

let staged_cycles stages =
  List.fold_left
    (fun acc stage ->
      acc + List.fold_left (fun m (b : Block.t) -> max m b.cost_cycles) 0 stage)
    0 stages

let execute stages pkt =
  let outcomes = ref [] in
  (try
     List.iter
       (fun stage ->
         List.iter
           (fun (b : Block.t) ->
             let o = b.process pkt in
             outcomes := o :: !outcomes;
             match o with Block.Dropped -> raise Exit | Block.Continue | Block.Alerted _ -> ())
           stage)
       stages
   with Exit -> ());
  List.rev !outcomes

let pp_stages fmt stages =
  Format.fprintf fmt "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f " -> ")
       (fun f stage ->
         match stage with
         | [ b ] -> Block.pp f b
         | bs ->
             Format.pp_print_string f "(";
             Format.pp_print_list
               ~pp_sep:(fun f () -> Format.pp_print_string f " | ")
               Block.pp f bs;
             Format.pp_print_string f ")"))
    stages

(* Blocks as NFs: the dataplane then treats a block pipeline exactly
   like a service graph of micro-NFs (paper §7: "NF parallelism can be
   implemented in the granularity of building blocks"). *)
let block_nf (b : Block.t) =
  let alerts = ref 0 in
  Nfp_nf.Nf.make ~name:b.name ~kind:("block:" ^ b.kind) ~profile:b.profile
    ~cost_cycles:(fun _ -> b.cost_cycles)
    ~state_digest:(fun () -> !alerts)
    (fun pkt ->
      match b.process pkt with
      | Block.Continue -> Nfp_nf.Nf.Forward
      | Block.Dropped -> Nfp_nf.Nf.Dropped
      | Block.Alerted _ ->
          incr alerts;
          Nfp_nf.Nf.Forward)

let to_deployment stages =
  let graph =
    Nfp_core.Graph.seq
      (List.map
         (fun stage ->
           Nfp_core.Graph.par
             (List.map (fun (b : Block.t) -> Nfp_core.Graph.nf b.name) stage))
         stages)
  in
  let table = Hashtbl.create 16 in
  List.iter
    (fun stage -> List.iter (fun b -> Hashtbl.replace table b.Block.name (block_nf b)) stage)
    stages;
  (graph, Hashtbl.find table)
