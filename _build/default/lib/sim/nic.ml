let line_rate_bps = 10e9

let framing_overhead_bytes = 20

let max_pps ~frame_bytes =
  if frame_bytes <= 0 then invalid_arg "Nic.max_pps: frame size must be positive";
  line_rate_bps /. (float_of_int (frame_bytes + framing_overhead_bytes) *. 8.0)

let max_mpps ~frame_bytes = max_pps ~frame_bytes /. 1e6

let ns_per_packet ~frame_bytes = 1e9 /. max_pps ~frame_bytes
