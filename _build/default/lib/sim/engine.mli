(** Discrete-event simulation engine.

    A single priority queue of timestamped callbacks. Time is in
    nanoseconds of simulated wall clock; events at equal times fire in
    scheduling order (a monotonic sequence number breaks ties), so runs
    are fully deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in nanoseconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] fires [f] at [now t +. delay]. Negative
    delays raise [Invalid_argument]. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** Absolute-time variant; times in the past raise [Invalid_argument]. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the queue, advancing time. [until] stops the clock at a
    deadline (remaining events stay queued); [max_events] bounds work
    as a runaway guard. *)

val pending : t -> int
