(** 10 GbE line-rate model.

    Ethernet framing adds 20 bytes per packet on the wire (preamble,
    start delimiter, inter-frame gap), so a 64-byte frame peaks at
    14.88 Mpps on a 10 Gbit/s link — the line-speed curve of the
    paper's Fig. 7(b). *)

val line_rate_bps : float
(** 10e9. *)

val framing_overhead_bytes : int
(** 20. *)

val max_pps : frame_bytes:int -> float
(** Packets per second at line rate for a given frame size. *)

val max_mpps : frame_bytes:int -> float

val ns_per_packet : frame_bytes:int -> float
(** Wire time of one frame. *)
