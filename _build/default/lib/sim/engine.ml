type event = { time : float; seq : int; action : unit -> unit }

type t = {
  queue : event Nfp_algo.Heap.t;
  mutable clock : float;
  mutable next_seq : int;
}

let compare_events a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create () =
  { queue = Nfp_algo.Heap.create ~cmp:compare_events; clock = 0.0; next_seq = 0 }

let now t = t.clock

let schedule_at t time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  Nfp_algo.Heap.push t.queue { time; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.clock +. delay) action

let run ?until ?(max_events = max_int) t =
  let deadline = match until with Some u -> u | None -> infinity in
  let rec go remaining =
    if remaining > 0 then
      match Nfp_algo.Heap.peek t.queue with
      | None -> ()
      | Some ev when ev.time > deadline -> t.clock <- deadline
      | Some _ -> (
          match Nfp_algo.Heap.pop t.queue with
          | None -> ()
          | Some ev ->
              t.clock <- ev.time;
              ev.action ();
              go (remaining - 1))
  in
  go max_events

let pending t = Nfp_algo.Heap.length t.queue
