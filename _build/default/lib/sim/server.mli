(** A simulated CPU core running a poll-mode packet loop.

    Jobs arrive into a bounded input ring; the core drains them in
    batches of up to [batch] (DPDK rx-burst style). Each job is charged
    its service time; at batch completion the core {e executes} each
    job once (the side-effecting semantics: NF processing, table
    bookkeeping) and then {e emits} its results. Emission is retryable:
    when a downstream ring is full the emit thunk returns [false] and
    the core stalls, retrying until space frees — shared-memory NFV's
    backpressure. A stalled core's own ring fills, propagating the
    stall upstream until the system's entry point starts refusing
    packets; that is where loss happens, as on the paper's testbed. *)

type 'job t

val create :
  engine:Engine.t ->
  name:string ->
  ring_capacity:int ->
  batch:int ->
  ?jitter:float * Nfp_algo.Prng.t ->
  ?retry_ns:float ->
  service_ns:('job -> float) ->
  execute:('job -> unit -> bool) ->
  unit ->
  'job t
(** [execute job] performs the job's semantics once and returns its
    emit thunk; the thunk is called until it returns [true] (it must
    remember any targets it already delivered to). [retry_ns] is the
    stall-poll interval (default 150 ns). *)

val offer : 'job t -> 'job -> bool
(** [false] when the input ring is full (caller decides: entry points
    drop, upstream cores stall). *)

val has_room : 'job t -> bool

val name : 'job t -> string

val processed : 'job t -> int

val rejected : 'job t -> int

val busy_ns : 'job t -> float

val stalled_ns : 'job t -> float
(** Time spent blocked on downstream backpressure. *)

val queue_length : 'job t -> int
