type system = {
  inject : pid:int64 -> Nfp_packet.Packet.t -> unit;
  ring_drops : unit -> int;
  nf_drops : unit -> int;
}

type arrivals = Uniform of float | Poisson of float | Burst of float * int

type result = {
  latency : Nfp_algo.Stats.t;
  delivered : int;
  offered : int;
  ring_drops : int;
  nf_drops : int;
  duration_ns : float;
  achieved_mpps : float;
}

let run ~make ~gen ~arrivals ~packets ?warmup ?(seed = 42L) () =
  let warmup = match warmup with Some w -> w | None -> packets / 10 in
  let engine = Engine.create () in
  let latency = Nfp_algo.Stats.create () in
  let ingress : (int64, float) Hashtbl.t = Hashtbl.create (packets * 2) in
  let delivered = ref 0 in
  let output ~pid _pkt =
    incr delivered;
    match Hashtbl.find_opt ingress pid with
    | Some t0 ->
        if Int64.to_int pid >= warmup then
          Nfp_algo.Stats.add latency (Engine.now engine -. t0);
        Hashtbl.remove ingress pid
    | None -> ()
  in
  let system = make engine ~output in
  let prng = Nfp_algo.Prng.create ~seed in
  let interval_ns i =
    match arrivals with
    | Uniform mpps ->
        ignore i;
        1000.0 /. mpps
    | Poisson mpps -> Nfp_algo.Prng.exponential prng ~mean:(1000.0 /. mpps)
    | Burst (mpps, k) ->
        (* k packets back to back, then a gap keeping the mean rate. *)
        if (i + 1) mod k = 0 then float_of_int k *. 1000.0 /. mpps else 0.0
  in
  let rec arrive i =
    if i < packets then begin
      let pid = Int64.of_int i in
      Hashtbl.replace ingress pid (Engine.now engine);
      system.inject ~pid (gen i);
      Engine.schedule engine ~delay:(interval_ns i) (fun () -> arrive (i + 1))
    end
  in
  Engine.schedule engine ~delay:0.0 (fun () -> arrive 0);
  Engine.run engine;
  let duration = Engine.now engine in
  {
    latency;
    delivered = !delivered;
    offered = packets;
    ring_drops = system.ring_drops ();
    nf_drops = system.nf_drops ();
    duration_ns = duration;
    achieved_mpps =
      (if duration > 0.0 then float_of_int !delivered /. duration *. 1000.0 else 0.0);
  }

let max_lossless_mpps ~make ~gen ~packets ?(lo = 0.01) ~hi ?(iterations = 12) () =
  let lossless rate =
    let r = run ~make ~gen ~arrivals:(Uniform rate) ~packets ~warmup:0 () in
    r.ring_drops = 0
  in
  if lossless hi then hi
  else begin
    let lo = ref lo and hi = ref hi in
    for _ = 1 to iterations do
      let mid = (!lo +. !hi) /. 2.0 in
      if lossless mid then lo := mid else hi := mid
    done;
    !lo
  end
