lib/sim/harness.ml: Engine Hashtbl Int64 Nfp_algo Nfp_packet
