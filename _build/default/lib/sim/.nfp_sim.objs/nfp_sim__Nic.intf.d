lib/sim/nic.mli:
