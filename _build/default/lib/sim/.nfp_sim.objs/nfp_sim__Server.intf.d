lib/sim/server.mli: Engine Nfp_algo
