lib/sim/nic.ml:
