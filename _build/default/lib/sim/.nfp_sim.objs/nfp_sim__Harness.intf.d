lib/sim/harness.mli: Engine Nfp_algo Nfp_packet
