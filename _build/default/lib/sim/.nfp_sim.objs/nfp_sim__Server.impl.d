lib/sim/server.ml: Engine List Nfp_algo
