lib/sim/cost.mli:
