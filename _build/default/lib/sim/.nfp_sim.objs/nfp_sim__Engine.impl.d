lib/sim/engine.ml: Nfp_algo
