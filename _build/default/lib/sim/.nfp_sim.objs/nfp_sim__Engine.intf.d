lib/sim/engine.mli:
