lib/sim/cost.ml:
