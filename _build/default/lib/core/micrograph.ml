type staged = { stages : string list list; warnings : string list }

let pair_mem pairs a b = List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) pairs

(* Transitive closure of the explicit order relation, restricted to items. *)
let closure items ordered =
  let reaches = Hashtbl.create 16 in
  List.iter (fun (a, b) -> Hashtbl.replace reaches (a, b) true) ordered;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if a <> b && not (Hashtbl.mem reaches (a, b)) then
              if
                List.exists
                  (fun c -> Hashtbl.mem reaches (a, c) && Hashtbl.mem reaches (c, b))
                  items
              then begin
                Hashtbl.replace reaches (a, b) true;
                changed := true
              end)
          items)
      items
  done;
  fun a b -> Hashtbl.mem reaches (a, b)

let index_of items x =
  let rec go i = function
    | [] -> invalid_arg "order_items: unknown item"
    | y :: _ when y = x -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 items

let order_items ?field_sensitive_write_read ~items ~profile_of ~ordered ~forced_parallel () =
  let warnings = ref [] in
  let warn fmt = Format.kasprintf (fun s -> warnings := s :: !warnings) fmt in
  let reaches = closure items ordered in
  let analyze a b =
    Parallelism.analyze ?field_sensitive_write_read (profile_of a) (profile_of b)
  in
  let seq_edges = ref [] in
  let add_edge a b = if not (List.mem (a, b) !seq_edges) then seq_edges := (a, b) :: !seq_edges in
  (* Every ordered (transitive) pair that does not parallelize becomes a
     sequential edge; forced-parallel pairs never do. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b && reaches a b && not (pair_mem forced_parallel a b) then
            if not (analyze a b).Parallelism.parallelizable then add_edge a b)
        items)
    items;
  (* Unordered pairs: parallel if either direction allows it, otherwise
     impose appearance order and warn. *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j && (not (reaches a b)) && (not (reaches b a))
             && not (pair_mem forced_parallel a b)
          then
            if
              (not (analyze a b).Parallelism.parallelizable)
              && not (analyze b a).Parallelism.parallelizable
            then begin
              add_edge a b;
              warn
                "%s and %s are unordered by the policy but cannot run in parallel; \
                 sequenced as %s -> %s"
                a b a b
            end)
        items)
    items;
  (* Longest-path depth over the sequential edges. The edge relation is
     acyclic when the explicit order is (validated upstream); if a cycle
     sneaks in via imposed edges, fall back to the appearance order. *)
  let depth = Hashtbl.create 16 in
  let rec depth_of seen x =
    match Hashtbl.find_opt depth x with
    | Some d -> d
    | None ->
        if List.mem x seen then raise Exit
        else begin
          let preds = List.filter_map (fun (a, b) -> if b = x then Some a else None) !seq_edges in
          let d =
            List.fold_left (fun acc p -> max acc (1 + depth_of (x :: seen) p)) 0 preds
          in
          Hashtbl.replace depth x d;
          d
        end
  in
  let stages =
    match List.map (fun x -> (x, depth_of [] x)) items with
    | exception Exit ->
        warn "sequential constraints are cyclic; falling back to the policy order";
        List.map (fun x -> [ x ]) items
    | depths ->
        let max_depth = List.fold_left (fun acc (_, d) -> max acc d) 0 depths in
        List.init (max_depth + 1) (fun level ->
            List.filter_map (fun (x, d) -> if d = level then Some x else None) depths)
        |> List.filter (fun stage -> stage <> [])
        |> List.map (fun stage -> List.sort (fun a b -> compare (index_of items a) (index_of items b)) stage)
  in
  { stages; warnings = List.rev !warnings }

type t = { members : string list; term : Graph.t; warnings : string list }

(* Union-find over NF names. *)
let components pairs nfs =
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some "" -> x
    | Some p ->
        let root = find p in
        Hashtbl.replace parent x root;
        root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter (fun (a, b) -> union a b) pairs;
  let groups = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let root = find n in
      let existing = match Hashtbl.find_opt groups root with Some l -> l | None -> [] in
      Hashtbl.replace groups root (n :: existing))
    (List.rev nfs);
  Hashtbl.fold (fun _ members acc -> members :: acc) groups []
  (* Order components by first appearance of any member. *)
  |> List.sort
       (fun a b ->
         let pos x = index_of nfs (List.hd x) in
         compare (pos a) (pos b))

let build ?field_sensitive_write_read (ir : Ir.t) =
  let warnings = ref [] in
  let warn fmt = Format.kasprintf (fun s -> warnings := s :: !warnings) fmt in
  let positioned = List.map (fun p -> p.Ir.nf) ir.positions in
  let place_of n =
    List.find_map (fun p -> if p.Ir.nf = n then Some p.Ir.place else None) ir.positions
  in
  (* Pairs touching positioned NFs are consumed by the placement: keep
     them only when consistent with the pin, warn otherwise. *)
  let usable_pairs =
    List.filter
      (fun (p : Ir.pair) ->
        let pe = place_of p.earlier and pl = place_of p.later in
        match (pe, pl) with
        | None, None -> true
        | Some Nfp_policy.Rule.First, _ | _, Some Nfp_policy.Rule.Last -> false
        | Some Nfp_policy.Rule.Last, _ ->
            warn "rule between %s and %s contradicts Position(%s, last); ignored" p.earlier
              p.later p.earlier;
            false
        | _, Some Nfp_policy.Rule.First ->
            warn "rule between %s and %s contradicts Position(%s, first); ignored" p.earlier
              p.later p.later;
            false)
      ir.pairs
  in
  let pair_names = List.map (fun (p : Ir.pair) -> (p.earlier, p.later)) usable_pairs in
  let member_names =
    List.concat_map (fun (a, b) -> [ a; b ]) pair_names
    |> List.fold_left
         (fun acc n -> if List.mem n acc || List.mem n positioned then acc else acc @ [ n ])
         []
  in
  let comps = components pair_names member_names in
  let micrographs =
    List.map
      (fun members ->
        let in_comp (a, b) = List.mem a members && List.mem b members in
        let ordered =
          List.filter_map
            (fun (p : Ir.pair) ->
              if p.source = `Order && in_comp (p.earlier, p.later) then
                Some (p.earlier, p.later)
              else None)
            usable_pairs
        in
        let forced_parallel =
          List.filter_map
            (fun (p : Ir.pair) ->
              if p.source = `Priority && in_comp (p.earlier, p.later) then
                Some (p.earlier, p.later)
              else None)
            usable_pairs
        in
        let staged =
          order_items ?field_sensitive_write_read ~items:members ~profile_of:ir.profile_of
            ~ordered ~forced_parallel ()
        in
        let term =
          Graph.seq
            (List.map
               (fun stage -> Graph.par (List.map Graph.nf stage))
               staged.stages)
        in
        { members; term; warnings = staged.warnings })
      comps
  in
  (micrographs, List.rev !warnings)
