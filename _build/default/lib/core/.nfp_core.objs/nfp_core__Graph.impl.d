lib/core/graph.ml: Buffer Format List Printf
