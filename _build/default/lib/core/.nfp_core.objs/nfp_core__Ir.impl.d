lib/core/ir.ml: Action Dependency Format List Nfp_nf Nfp_policy Parallelism Printf Registry Rule
