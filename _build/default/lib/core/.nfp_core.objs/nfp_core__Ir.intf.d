lib/core/ir.mli: Action Format Nfp_nf Nfp_policy
