lib/core/partition.mli: Format Graph
