lib/core/tables.mli: Action Compiler Format Graph Merge_op Nfp_nf
