lib/core/compiler.ml: Buffer Format Graph Ir List Micrograph Nfp_nf Nfp_policy Parallelism Parser Rule String Validate
