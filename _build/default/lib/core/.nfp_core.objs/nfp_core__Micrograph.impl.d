lib/core/micrograph.ml: Format Graph Hashtbl Ir List Nfp_policy Parallelism
