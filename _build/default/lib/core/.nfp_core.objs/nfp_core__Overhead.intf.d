lib/core/overhead.mli: Tables
