lib/core/dependency.ml: Action Format List Nfp_nf Nfp_packet
