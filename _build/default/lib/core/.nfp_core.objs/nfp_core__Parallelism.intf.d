lib/core/parallelism.mli: Dependency Format Nfp_nf
