lib/core/overhead.ml: List Tables
