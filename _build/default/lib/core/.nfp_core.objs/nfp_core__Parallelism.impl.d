lib/core/parallelism.ml: Dependency Format List Nfp_nf
