lib/core/analysis.ml: Dependency Format List Nfp_nf Parallelism
