lib/core/merge_op.ml: Field Format Nfp_packet Packet
