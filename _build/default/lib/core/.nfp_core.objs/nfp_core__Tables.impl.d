lib/core/tables.ml: Action Compiler Field Format Graph Hashtbl Ir List Merge_op Nfp_nf Nfp_packet Printf String
