lib/core/merge_op.mli: Field Format Nfp_packet Packet
