lib/core/graph.mli: Format
