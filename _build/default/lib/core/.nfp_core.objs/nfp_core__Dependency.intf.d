lib/core/dependency.mli: Format Nfp_nf
