lib/core/compiler.mli: Graph Ir Micrograph Nfp_policy
