lib/core/partition.ml: Format Graph List Printf
