lib/core/micrograph.mli: Graph Ir Nfp_nf
