lib/core/analysis.mli: Dependency Format
