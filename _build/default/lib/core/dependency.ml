open Nfp_nf

type verdict = Parallel_no_copy | Parallel_with_copy | Not_parallelizable

let verdict_to_string = function
  | Parallel_no_copy -> "parallelizable, no copy"
  | Parallel_with_copy -> "parallelizable, copy"
  | Not_parallelizable -> "not parallelizable"

let pp_verdict fmt v = Format.pp_print_string fmt (verdict_to_string v)

(* Paper Table 3, NF1's action on rows, NF2's on columns. The
   read-write and write-write cells are the green/orange mixed blocks;
   this function reports their different-field (no copy) verdict and
   action_pair refines same-field pairs to copies. *)
let kind_pair a1 a2 =
  let open Action in
  match (a1, a2) with
  | K_read, K_read -> Parallel_no_copy
  | K_read, K_write -> Parallel_no_copy
  | K_read, K_add_rm -> Parallel_with_copy
  | K_read, K_drop -> Parallel_no_copy
  | K_write, K_read -> Not_parallelizable
  | K_write, K_write -> Parallel_no_copy
  | K_write, K_add_rm -> Parallel_with_copy
  | K_write, K_drop -> Parallel_no_copy
  | K_add_rm, (K_read | K_write | K_add_rm) -> Not_parallelizable
  | K_add_rm, K_drop -> Parallel_no_copy
  | K_drop, (K_read | K_write | K_add_rm) -> Not_parallelizable
  | K_drop, K_drop -> Parallel_no_copy

let same_field a1 a2 =
  match (Action.field a1, Action.field a2) with
  | Some f1, Some f2 -> Nfp_packet.Field.equal f1 f2
  | _ -> false

let action_pair ?(field_sensitive_write_read = false) a1 a2 =
  let open Action in
  match (kind a1, kind a2) with
  | K_read, K_write | K_write, K_write ->
      if same_field a1 a2 then Parallel_with_copy else Parallel_no_copy
  | K_write, K_read when field_sensitive_write_read ->
      if same_field a1 a2 then Not_parallelizable else Parallel_no_copy
  | k1, k2 -> kind_pair k1 k2

let kinds = Action.[ K_read; K_write; K_add_rm; K_drop ]

(* For printing, field-sensitive cells show the same-field (stricter)
   verdict, matching the paper's orange shading of those blocks. *)
let display_cell k1 k2 =
  let open Action in
  match (k1, k2) with
  | K_read, K_write | K_write, K_write -> Parallel_with_copy
  | _ -> kind_pair k1 k2

let table_rows () = List.map (fun k1 -> (k1, List.map (fun k2 -> (k2, display_cell k1 k2)) kinds)) kinds

let kind_name =
  let open Action in
  function K_read -> "Read" | K_write -> "Write" | K_add_rm -> "Add/Rm" | K_drop -> "Drop"

let cell_mark = function
  | Parallel_no_copy -> "par"
  | Parallel_with_copy -> "copy"
  | Not_parallelizable -> "-"

let pp_table fmt () =
  Format.fprintf fmt "%-8s" "NF1\\NF2";
  List.iter (fun k -> Format.fprintf fmt "%-8s" (kind_name k)) kinds;
  Format.pp_print_newline fmt ();
  List.iter
    (fun (k1, cells) ->
      Format.fprintf fmt "%-8s" (kind_name k1);
      List.iter (fun (_, v) -> Format.fprintf fmt "%-8s" (cell_mark v)) cells;
      Format.pp_print_newline fmt ())
    (table_rows ())
