(** NF-pair parallelizability statistics — paper §4.3.

    Feeds every ordered pair of registry NF types through Algorithm 1
    and weights the outcomes by deployment probability (the product of
    the two NFs' normalized deployment percentages, self-pairs
    included). The paper reports 53.8 % of pairs parallelizable, 41.5 %
    without extra resource overhead. *)

type pair_stat = {
  nf1 : string;
  nf2 : string;
  weight : float;
  verdict : Dependency.verdict;
}

type summary = {
  pairs : pair_stat list;
  parallelizable_pct : float;  (** paper: 53.8 % *)
  no_copy_pct : float;  (** paper: 41.5 % *)
  with_copy_pct : float;  (** paper: 12.3 % *)
}

val run : ?field_sensitive_write_read:bool -> unit -> summary
(** Over the weighted NF types of {!Nfp_nf.Registry.weighted_kinds}. *)

val run_kinds :
  ?field_sensitive_write_read:bool -> (string * float) list -> summary
(** Over an explicit (kind, probability) population. Probabilities are
    normalized. @raise Not_found for unregistered kinds. *)

val pp : Format.formatter -> summary -> unit
