(** Resource-overhead model — paper §6.3.1.

    With Header-Only Copying, parallelizing at degree [d] materializes
    [d - 1] extra 64-byte header copies per packet, so the overhead
    ratio for an [s]-byte packet is [ro = 64 (d - 1) / s]. Averaged over
    the data-center packet-size distribution of the IMC'10 study the
    paper cites, this is 0.088 (d - 1) — 8.8 % at degree 2. *)

val header_copy_bytes : int
(** 64: Ethernet + IPv4 + TCP headers. *)

val ratio : packet_bytes:int -> degree:int -> float
(** [ro = 64 (d-1) / s]. @raise Invalid_argument on degree < 1 or
    non-positive size. *)

val ratio_distribution : sizes:(int * float) list -> degree:int -> float
(** Byte-weighted overhead over a (size, probability) distribution:
    copied bytes relative to total traffic bytes, [64 (d-1) / E[s]]. *)

val datacenter_ratio : degree:int -> float
(** {!ratio_distribution} over {!Nfp_traffic}'s IMC distribution is
    computed in the bench harness; this constant-based variant uses the
    paper's mean result: [0.088 * (degree - 1)]. *)

val plan_overhead :
  Tables.plan -> packet_bytes:int -> float
(** Measured overhead of a concrete plan: copied bytes (header-only
    and full) relative to the packet size. *)
