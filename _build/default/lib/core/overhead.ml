let header_copy_bytes = 64

let ratio ~packet_bytes ~degree =
  if degree < 1 then invalid_arg "Overhead.ratio: degree must be at least 1";
  if packet_bytes <= 0 then invalid_arg "Overhead.ratio: packet size must be positive";
  float_of_int (header_copy_bytes * (degree - 1)) /. float_of_int packet_bytes

(* Byte-weighted: total copied memory over total packet memory across
   the traffic mix, i.e. 64 (d-1) / E[s] — the calculation behind the
   paper's 0.088 (d-1). *)
let ratio_distribution ~sizes ~degree =
  if degree < 1 then invalid_arg "Overhead.ratio_distribution: degree must be at least 1";
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 sizes in
  if total <= 0.0 then invalid_arg "Overhead.ratio_distribution: empty distribution";
  let mean_bytes =
    List.fold_left (fun acc (s, p) -> acc +. (float_of_int s *. p)) 0.0 sizes /. total
  in
  float_of_int (header_copy_bytes * (degree - 1)) /. mean_bytes

let datacenter_ratio ~degree =
  if degree < 1 then invalid_arg "Overhead.datacenter_ratio: degree must be at least 1";
  0.088 *. float_of_int (degree - 1)

let plan_overhead (plan : Tables.plan) ~packet_bytes =
  let copied =
    Tables.copies_bytes_per_packet plan ~packet_bytes ~header_bytes:header_copy_bytes
  in
  float_of_int copied /. float_of_int packet_bytes
