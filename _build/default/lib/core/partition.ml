type assignment = { server : int; segment : Graph.t; cores : int }

let rec merger_count = function
  | Graph.Nf _ -> 0
  | Graph.Seq ts -> List.fold_left (fun acc t -> acc + merger_count t) 0 ts
  | Graph.Par ts -> 1 + List.fold_left (fun acc t -> acc + merger_count t) 0 ts

let cores_needed g = Graph.nf_count g + 1 + merger_count g

let partition ~cores_per_server g =
  if cores_per_server < 2 then Error "need at least two cores per server"
  else
    let elements = match g with Graph.Seq ts -> ts | t -> [ t ] in
    let element_cost t = Graph.nf_count t + merger_count t in
    let budget = cores_per_server - 1 (* classifier/ingress core *) in
    let rec fill current current_cost acc = function
      | [] ->
          let acc = if current = [] then acc else List.rev current :: acc in
          Ok (List.rev acc)
      | t :: rest ->
          let c = element_cost t in
          if c > budget then
            Error
              (Printf.sprintf
                 "element %s needs %d cores; it cannot be split across servers \
                  without shipping multiple packet copies"
                 (Graph.to_string t) (c + 1))
          else if current <> [] && current_cost + c > budget then
            fill [ t ] c (List.rev current :: acc) rest
          else fill (t :: current) (current_cost + c) acc rest
    in
    match fill [] 0 [] elements with
    | Error e -> Error e
    | Ok segments ->
        Ok
          (List.mapi
             (fun i seg ->
               let segment = Graph.seq seg in
               { server = i; segment; cores = cores_needed segment })
             segments)

let inter_server_hops assignments = max 0 (List.length assignments - 1)

let pp fmt assignments =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun a ->
      Format.fprintf fmt "server %d (%d cores): %a@," a.server a.cores Graph.pp a.segment)
    assignments;
  Format.fprintf fmt "inter-server hops: %d@]" (inter_server_hops assignments)
