(** Service graphs: series–parallel composition of NF instances.

    The orchestrator compiles policies into these terms; the
    infrastructure turns them into classifier/forwarding/merging tables.
    Every shape in the paper's Fig. 14 is expressible: sequential
    chains, plain parallelism, trees (an NF followed by a parallel
    stage), and parallel branches that are themselves chains. *)

type t =
  | Nf of string  (** a single NF instance *)
  | Seq of t list  (** sequential composition *)
  | Par of t list  (** parallel branches, merged when all complete *)

val nf : string -> t
val seq : t list -> t
val par : t list -> t
(** Smart constructors: flatten nested [Seq]/[Par] and collapse
    singletons. @raise Invalid_argument on empty composition. *)

val nfs : t -> string list
(** NF names in left-to-right (sequential-order) appearance. *)

val nf_count : t -> int

val equivalent_length : t -> int
(** The paper's "equivalent chain length": [Seq] sums, [Par] takes the
    max, a single NF counts 1. Mergers are not counted (the paper does
    not count them either when quoting equivalent lengths). *)

val contains : t -> string -> bool

val well_formed : t -> (unit, string) result
(** No duplicate NF names, no empty compositions. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Inline rendering, e.g. [vpn -> (mon | fw) -> lb]. *)

val to_string : t -> string

val to_dot : ?name:string -> t -> string
(** Graphviz rendering of the service graph: NFs as boxes, parallel
    blocks fanning out of a fork point and back into a merger node
    (diamond), matching the paper's service-graph drawings. *)
