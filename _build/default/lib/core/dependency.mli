(** The action dependency table — paper Table 3.

    For an [Order(NF1, before, NF2)] pair, each pair of actions
    (a1 from NF1, a2 from NF2) is classified as parallelizable without
    copying (green), parallelizable with packet copying (orange), or not
    parallelizable (gray). The classification follows the paper's result
    correctness principle: parallel execution must yield the same packet
    and NF internal state as sequential execution.

    Field sensitivity: read–write and write–write pairs compare the
    fields they touch — different fields need no copy (the paper's Dirty
    Memory Reusing, OP#1). Write–read is unconditionally sequential (the
    operator intends the write to be observed); the optional
    [field_sensitive_write_read] mode relaxes that for disjoint fields
    and is benchmarked as an ablation. *)

type verdict =
  | Parallel_no_copy
  | Parallel_with_copy
  | Not_parallelizable

val verdict_to_string : verdict -> string

val pp_verdict : Format.formatter -> verdict -> unit

val kind_pair : Nfp_nf.Action.kind -> Nfp_nf.Action.kind -> verdict
(** The raw Table 3 cell for two action classes. Read–write and
    write–write cells answer [Parallel_no_copy]; the same-field copy
    refinement happens in {!action_pair}. *)

val action_pair :
  ?field_sensitive_write_read:bool ->
  Nfp_nf.Action.t ->
  Nfp_nf.Action.t ->
  verdict
(** Classify a concrete action pair, applying the same-field test to
    read–write and write–write combinations (and, when
    [field_sensitive_write_read] is set, to write–read). *)

val table_rows : unit -> (Nfp_nf.Action.kind * (Nfp_nf.Action.kind * verdict) list) list
(** The full 4×4 table for printing (field-sensitive cells are reported
    with their same-field verdict, as the paper's orange/green split). *)

val pp_table : Format.formatter -> unit -> unit
(** Render Table 3 as ASCII. *)
