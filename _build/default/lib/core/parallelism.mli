(** NF parallelism identification — paper Algorithm 1.

    Given two action profiles in their intended order, decide whether
    the NFs can run in parallel and which conflicting action pairs make
    packet copying necessary. *)

type result = {
  parallelizable : bool;
  conflicting_actions : (Nfp_nf.Action.t * Nfp_nf.Action.t) list;
      (** non-empty iff parallel execution needs a packet copy *)
  blocking : (Nfp_nf.Action.t * Nfp_nf.Action.t) option;
      (** the first action pair that forbids parallelism, when any *)
}

val needs_copy : result -> bool

val analyze :
  ?field_sensitive_write_read:bool ->
  Nfp_nf.Action.t list ->
  Nfp_nf.Action.t list ->
  result
(** [analyze p1 p2] runs Algorithm 1 on [Order(NF1, before, NF2)] where
    [p1]/[p2] are the NFs' profiles (fetched from the registry — "AT" —
    by the callers). Exhaustively classifies every action pair against
    the dependency table; a single [Not_parallelizable] pair makes the
    whole pair sequential. *)

val analyze_kinds :
  ?field_sensitive_write_read:bool -> string -> string -> result
(** Convenience over registry profiles.
    @raise Not_found for unregistered NF types. *)

val verdict : result -> Dependency.verdict
(** Collapse to the three-way classification of Table 3. *)

val pp : Format.formatter -> result -> unit
