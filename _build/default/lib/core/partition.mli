(** Cross-server graph partitioning — the paper's §7 scalability
    sketch, implemented.

    When a service graph needs more cores than one server offers, NFP
    proposes partitioning it such that "each server sends only one copy
    of a packet to the next server" — i.e. cuts happen only at points
    where a single (merged) packet version flows: between the top-level
    sequential elements of the graph. A parallel block is never split
    across servers, because that would ship multiple copies over the
    network. *)

type assignment = {
  server : int;  (** 0-based server index *)
  segment : Graph.t;  (** sub-graph deployed on this server *)
  cores : int;  (** cores the segment needs (NFs + classifier + mergers) *)
}

val cores_needed : Graph.t -> int
(** One core per NF, one classifier/ingress core, one merger core per
    parallel block. *)

val partition :
  cores_per_server:int -> Graph.t -> (assignment list, string) result
(** Greedy first-fit over the top-level sequence. Errors when an
    unsplittable element (a parallel block and its merger) alone
    exceeds the per-server budget. *)

val inter_server_hops : assignment list -> int
(** Number of server-to-server packet handoffs (each carries exactly
    one packet copy). *)

val pp : Format.formatter -> assignment list -> unit
