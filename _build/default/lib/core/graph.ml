type t = Nf of string | Seq of t list | Par of t list

let nf name = Nf name

let flatten_seq = function Seq xs -> xs | t -> [ t ]

let flatten_par = function Par xs -> xs | t -> [ t ]

let seq = function
  | [] -> invalid_arg "Graph.seq: empty composition"
  | [ t ] -> t
  | ts -> Seq (List.concat_map flatten_seq ts)

let par = function
  | [] -> invalid_arg "Graph.par: empty composition"
  | [ t ] -> t
  | ts -> Par (List.concat_map flatten_par ts)

let rec nfs = function
  | Nf n -> [ n ]
  | Seq ts | Par ts -> List.concat_map nfs ts

let nf_count t = List.length (nfs t)

let rec equivalent_length = function
  | Nf _ -> 1
  | Seq ts -> List.fold_left (fun acc t -> acc + equivalent_length t) 0 ts
  | Par ts -> List.fold_left (fun acc t -> max acc (equivalent_length t)) 0 ts

let contains t name = List.mem name (nfs t)

let well_formed t =
  let rec no_empty = function
    | Nf _ -> true
    | Seq [] | Par [] -> false
    | Seq ts | Par ts -> List.for_all no_empty ts
  in
  if not (no_empty t) then Error "graph contains an empty composition"
  else
    let names = nfs t in
    let sorted = List.sort compare names in
    let rec dup = function
      | a :: b :: _ when a = b -> Some a
      | _ :: rest -> dup rest
      | [] -> None
    in
    match dup sorted with
    | Some n -> Error (Printf.sprintf "NF %S appears more than once" n)
    | None -> Ok ()

let equal = ( = )

let rec pp fmt = function
  | Nf n -> Format.pp_print_string fmt n
  | Seq ts ->
      Format.pp_print_list
        ~pp_sep:(fun f () -> Format.pp_print_string f " -> ")
        pp_atom fmt ts
  | Par ts ->
      Format.pp_print_string fmt "(";
      Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " | ") pp fmt ts;
      Format.pp_print_string fmt ")"

and pp_atom fmt = function
  | Seq ts ->
      Format.pp_print_string fmt "(";
      pp fmt (Seq ts);
      Format.pp_print_string fmt ")"
  | t -> pp fmt t

let to_string t = Format.asprintf "%a" pp t

(* Graphviz export: each Par introduces a fork point (the preceding
   node or the ingress) and a merger diamond; Seq chains link tails to
   heads. Returns the DOT text; node ids are stable across calls. *)
let to_dot ?(name = "nfp") t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  Buffer.add_string buf "  node [shape=box, style=rounded];\n";
  Buffer.add_string buf "  ingress [shape=circle, label=\"in\"];\n";
  Buffer.add_string buf "  egress [shape=circle, label=\"out\"];\n";
  let merge_count = ref 0 in
  (* Emit [t] with [heads] as its predecessors; return its tail nodes. *)
  let rec emit t heads =
    match t with
    | Nf n ->
        List.iter (fun h -> Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" h n)) heads;
        [ n ]
    | Seq ts -> List.fold_left (fun hs sub -> emit sub hs) heads ts
    | Par ts ->
        let tails = List.concat_map (fun sub -> emit sub heads) ts in
        incr merge_count;
        let m = Printf.sprintf "merge%d" !merge_count in
        Buffer.add_string buf
          (Printf.sprintf "  %s [shape=diamond, label=\"merge\"];\n" m);
        List.iter
          (fun tail -> Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" tail m))
          tails;
        [ m ]
  in
  let tails = emit t [ "ingress" ] in
  List.iter
    (fun tail -> Buffer.add_string buf (Printf.sprintf "  %s -> egress;\n" tail))
    tails;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
