type pair_stat = {
  nf1 : string;
  nf2 : string;
  weight : float;
  verdict : Dependency.verdict;
}

type summary = {
  pairs : pair_stat list;
  parallelizable_pct : float;
  no_copy_pct : float;
  with_copy_pct : float;
}

let run_kinds ?field_sensitive_write_read population =
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 population in
  if total <= 0.0 then invalid_arg "Analysis.run_kinds: weights must sum to a positive value";
  let population = List.map (fun (k, p) -> (k, p /. total)) population in
  let pairs =
    List.concat_map
      (fun (k1, p1) ->
        List.map
          (fun (k2, p2) ->
            let r = Parallelism.analyze_kinds ?field_sensitive_write_read k1 k2 in
            { nf1 = k1; nf2 = k2; weight = p1 *. p2; verdict = Parallelism.verdict r })
          population)
      population
  in
  let pct want =
    100.0
    *. List.fold_left
         (fun acc p -> if List.mem p.verdict want then acc +. p.weight else acc)
         0.0 pairs
  in
  {
    pairs;
    parallelizable_pct = pct [ Dependency.Parallel_no_copy; Dependency.Parallel_with_copy ];
    no_copy_pct = pct [ Dependency.Parallel_no_copy ];
    with_copy_pct = pct [ Dependency.Parallel_with_copy ];
  }

let run ?field_sensitive_write_read () =
  run_kinds ?field_sensitive_write_read (Nfp_nf.Registry.weighted_kinds ())

let pp fmt s =
  Format.fprintf fmt
    "@[<v>NF pairs parallelizable: %.1f%% (no copy: %.1f%%, with copy: %.1f%%)@,"
    s.parallelizable_pct s.no_copy_pct s.with_copy_pct;
  List.iter
    (fun p ->
      Format.fprintf fmt "  %-14s before %-14s %5.2f%%  %a@," p.nf1 p.nf2 (100.0 *. p.weight)
        Dependency.pp_verdict p.verdict)
    s.pairs;
  Format.fprintf fmt "@]"
