open Nfp_packet

type t =
  | Modify of { dst : int; src : int; field : Field.t }
  | Align_headers of { dst : int; src : int }

let apply op ~get =
  match op with
  | Modify { dst; src; field } -> (
      match (get dst, get src) with
      | Some d, Some s -> Packet.set_field d field (Packet.get_field s field)
      | _ -> ())
  | Align_headers { dst; src } -> (
      match (get dst, get src) with
      | Some d, Some s -> (
          match (Packet.has_ah s, Packet.has_ah d) with
          | true, false ->
              (* Transplant the AH header the source version gained. *)
              let tmp = Packet.full_copy s in
              let spi, seq, icv =
                match Packet.remove_ah tmp with
                | Some v -> v
                | None -> assert false
              in
              Packet.add_ah d ~spi ~seq ~icv
          | false, true -> ignore (Packet.remove_ah d)
          | true, true | false, false -> ())
      | _ -> ())

let equal = ( = )

let pp fmt = function
  | Modify { dst; src; field } ->
      Format.fprintf fmt "modify(v%d.%a, v%d.%a)" dst Field.pp field src Field.pp field
  | Align_headers { dst; src } -> Format.fprintf fmt "align_headers(v%d, v%d)" dst src
