(** Intermediate representations — paper §4.4.1.

    Policies are transformed into two IR forms before graph
    construction: a placement block per [Position] rule, and a
    relationship block per [Order]/[Priority] rule carrying the
    Algorithm-1 analysis (parallelizability and conflicting actions).
    NFs bound in the policy but mentioned by no rule are "free". *)

open Nfp_nf

type position = { nf : string; place : Nfp_policy.Rule.place }

type pair = {
  earlier : string;  (** lower priority: earlier in the intended order *)
  later : string;  (** higher priority: its result wins conflicts *)
  source : [ `Order | `Priority ];
  parallelizable : bool;
  conflicting_actions : (Action.t * Action.t) list;
}

type t = {
  positions : position list;
  pairs : pair list;
  free : string list;
  profile_of : string -> Action.t list;
      (** resolved binding: instance name to its registry profile *)
}

val transform :
  ?field_sensitive_write_read:bool -> Nfp_policy.Rule.policy -> (t, string) result
(** Resolve names (explicit bindings first, then registry type names),
    run Algorithm 1 on every [Order] pair, and collect conflicting
    actions for every [Priority] pair (which the operator forces
    parallel regardless of gray verdicts — paper §3). Fails on names
    that resolve to no registered profile. *)

val pp_pair : Format.formatter -> pair -> unit

val pp : Format.formatter -> t -> unit
