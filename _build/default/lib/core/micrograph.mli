(** Micrograph construction — paper §4.4.2.

    Intermediate representations with overlapping NFs are concatenated
    into independent micrographs (Single NF, Tree, or Plain Parallelism
    shapes). Within a micrograph, unparallelizable pairs impose
    sequential edges; everything the dependency analysis allows runs in
    parallel. Pairs left unordered by the policy are checked
    exhaustively in both directions; if neither order parallelizes, a
    deterministic order is imposed and a warning recorded (the paper
    asks the operator to regulate priority in that case). *)

type staged = { stages : string list list; warnings : string list }

val order_items :
  ?field_sensitive_write_read:bool ->
  items:string list ->
  profile_of:(string -> Nfp_nf.Action.t list) ->
  ordered:(string * string) list ->
  forced_parallel:(string * string) list ->
  unit ->
  staged
(** Generic staging: [items] in appearance order, [ordered] the
    explicit precedence pairs, [forced_parallel] pairs that must share
    a stage (Priority rules). Returns parallel stages in execution
    order. Used both within micrographs and to merge micrographs into
    the final graph. *)

type t = { members : string list; term : Graph.t; warnings : string list }

val build : ?field_sensitive_write_read:bool -> Ir.t -> t list * string list
(** Micrographs for the connected components of the IR pair relation
    (positioned NFs excluded — they are placed by the final merge
    step), plus global warnings (e.g. rules contradicting positions). *)
