type result = {
  parallelizable : bool;
  conflicting_actions : (Nfp_nf.Action.t * Nfp_nf.Action.t) list;
  blocking : (Nfp_nf.Action.t * Nfp_nf.Action.t) option;
}

let needs_copy r = r.parallelizable && r.conflicting_actions <> []

(* Algorithm 1: iterate over every action pair; a gray pair ends the
   analysis, orange pairs accumulate as conflicting actions. *)
let analyze ?field_sensitive_write_read p1 p2 =
  let conflicts = ref [] in
  let gray = ref None in
  List.iter
    (fun a1 ->
      List.iter
        (fun a2 ->
          if !gray = None then
            match Dependency.action_pair ?field_sensitive_write_read a1 a2 with
            | Dependency.Not_parallelizable -> gray := Some (a1, a2)
            | Dependency.Parallel_with_copy -> conflicts := (a1, a2) :: !conflicts
            | Dependency.Parallel_no_copy -> ())
        p2)
    p1;
  match !gray with
  | Some _ as blocking -> { parallelizable = false; conflicting_actions = []; blocking }
  | None ->
      { parallelizable = true; conflicting_actions = List.rev !conflicts; blocking = None }

let analyze_kinds ?field_sensitive_write_read k1 k2 =
  analyze ?field_sensitive_write_read
    (Nfp_nf.Registry.profile_of k1)
    (Nfp_nf.Registry.profile_of k2)

let verdict r =
  if not r.parallelizable then Dependency.Not_parallelizable
  else if r.conflicting_actions = [] then Dependency.Parallel_no_copy
  else Dependency.Parallel_with_copy

let pp fmt r =
  Format.fprintf fmt "%a" Dependency.pp_verdict (verdict r);
  if r.conflicting_actions <> [] then begin
    Format.fprintf fmt " (conflicts:";
    List.iter
      (fun (a1, a2) ->
        Format.fprintf fmt " %a/%a" Nfp_nf.Action.pp a1 Nfp_nf.Action.pp a2)
      r.conflicting_actions;
    Format.fprintf fmt ")"
  end
