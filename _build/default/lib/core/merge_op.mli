(** Merging operations — paper §5.3.

    A merge operation transplants a field (or header structure) from one
    packet version into another. The orchestrator generates a per-graph
    MO list; the merger applies it, in order, once all copies of a
    packet arrive. Versions are 1-based; version 1 is the original copy
    the final output is built from.

    [Modify] is the paper's [modify(v_dst.F, v_src.F)]. [Align_headers]
    realises both [add(v_src.AH, after, v_dst.IP)] and
    [remove(v_dst.AH)]: it makes [dst]'s header structure match
    [src]'s, which is what merging an Add/Rm NF's version requires
    without knowing statically whether the NF added or removed. *)

open Nfp_packet

type t =
  | Modify of { dst : int; src : int; field : Field.t }
  | Align_headers of { dst : int; src : int }

val apply : t -> get:(int -> Packet.t option) -> unit
(** [apply op ~get] executes [op] over the version store [get]. Missing
    versions (e.g. a branch that dropped under a priority policy) make
    the op a no-op. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
