(** Stateless ACL firewall (paper §6.1: "similar to the Click IPFilter
    element… passes or drops packets according to an ACL containing 100
    rules").

    Profile: reads SIP/DIP/SPORT/DPORT, may drop (paper Table 2). *)

open Nfp_packet

type rule = {
  sip_prefix : int32 * int;  (** prefix, length; length 0 matches all *)
  dip_prefix : int32 * int;
  sport_range : int * int;  (** inclusive *)
  dport_range : int * int;
  proto : int option;
  permit : bool;
}

val any_rule : permit:bool -> rule
(** Wildcard rule. *)

val default_acl : int -> rule list
(** [default_acl n] is a deterministic ACL of [n] deny rules over a
    synthetic address plan, followed by an implicit permit — the
    evaluation workload's "ACL containing 100 rules". *)

type stats = { passed : unit -> int; dropped : unit -> int }

val create :
  ?name:string -> ?extra_cycles:int -> ?acl:rule list -> unit -> Nf.t * stats
(** [extra_cycles] makes the firewall busy-loop after processing — the
    paper's NF-complexity knob for Fig. 9. The ACL defaults to
    [default_acl 100]. First matching rule wins; no match permits. *)

val matches : rule -> Packet.t -> bool
