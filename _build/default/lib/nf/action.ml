open Nfp_packet

type t = Read of Field.t | Write of Field.t | Add_rm_header | Drop

type kind = K_read | K_write | K_add_rm | K_drop

let kind = function
  | Read _ -> K_read
  | Write _ -> K_write
  | Add_rm_header -> K_add_rm
  | Drop -> K_drop

let field = function
  | Read f | Write f -> Some f
  | Add_rm_header | Drop -> None

let equal = ( = )

let compare = Stdlib.compare

let pp fmt = function
  | Read f -> Format.fprintf fmt "R(%a)" Field.pp f
  | Write f -> Format.fprintf fmt "W(%a)" Field.pp f
  | Add_rm_header -> Format.pp_print_string fmt "Add/Rm"
  | Drop -> Format.pp_print_string fmt "Drop"

let pp_profile fmt actions =
  Format.fprintf fmt "@[<h>{%a}@]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp)
    actions

let reads p = List.filter_map (function Read f -> Some f | _ -> None) p

let writes p = List.filter_map (function Write f -> Some f | _ -> None) p

let may_drop p = List.mem Drop p

let adds_or_removes_headers p = List.mem Add_rm_header p

let read_write f = [ Read f; Write f ]

let normalize p = List.sort_uniq compare p
