lib/nf/nat.mli: Nf
