lib/nf/monitor.mli: Nf Nfp_packet
