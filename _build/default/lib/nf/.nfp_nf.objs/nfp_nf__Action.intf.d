lib/nf/action.mli: Field Format Nfp_packet
