lib/nf/vpn.ml: Action Bytes Field Int32 Int64 Nf Nfp_algo Nfp_packet Packet String
