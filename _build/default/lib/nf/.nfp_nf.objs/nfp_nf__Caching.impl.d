lib/nf/caching.ml: Action Field Hashtbl Int32 Nf Nfp_algo Nfp_packet Packet Queue
