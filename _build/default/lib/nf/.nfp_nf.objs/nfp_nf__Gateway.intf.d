lib/nf/gateway.mli: Nf
