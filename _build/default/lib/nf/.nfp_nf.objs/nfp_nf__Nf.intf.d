lib/nf/nf.mli: Action Format Nfp_packet Packet
