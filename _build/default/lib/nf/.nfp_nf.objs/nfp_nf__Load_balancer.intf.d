lib/nf/load_balancer.mli: Nf
