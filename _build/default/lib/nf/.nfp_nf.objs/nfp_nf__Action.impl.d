lib/nf/action.ml: Field Format List Nfp_packet Stdlib
