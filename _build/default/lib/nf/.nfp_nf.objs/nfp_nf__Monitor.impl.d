lib/nf/monitor.ml: Action Field Flow Hashtbl Nf Nfp_algo Nfp_packet Packet
