lib/nf/load_balancer.ml: Action Array Field Flow Int32 Nf Nfp_algo Nfp_packet Packet
