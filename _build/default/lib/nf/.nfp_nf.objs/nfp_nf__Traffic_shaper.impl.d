lib/nf/traffic_shaper.ml: Action Field Nf Nfp_algo Nfp_packet Packet
