lib/nf/caching.mli: Nf
