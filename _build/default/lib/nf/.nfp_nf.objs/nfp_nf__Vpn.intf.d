lib/nf/vpn.mli: Nf Nfp_packet
