lib/nf/nat.ml: Action Field Flow Hashtbl Int32 Nf Nfp_algo Nfp_packet Packet
