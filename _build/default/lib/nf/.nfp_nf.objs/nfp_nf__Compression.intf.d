lib/nf/compression.mli: Nf
