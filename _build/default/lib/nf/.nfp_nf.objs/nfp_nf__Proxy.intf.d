lib/nf/proxy.mli: Nf
