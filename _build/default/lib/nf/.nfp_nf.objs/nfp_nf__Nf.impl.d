lib/nf/nf.ml: Action Format Nfp_packet Packet
