lib/nf/compression.ml: Action Field Nf Nfp_algo Nfp_packet Packet String
