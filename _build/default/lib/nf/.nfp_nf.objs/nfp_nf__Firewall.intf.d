lib/nf/firewall.mli: Nf Nfp_packet Packet
