lib/nf/proxy.ml: Action Field Int32 Nf Nfp_packet Packet
