lib/nf/ids.mli: Nf
