lib/nf/registry.mli: Action Nf
