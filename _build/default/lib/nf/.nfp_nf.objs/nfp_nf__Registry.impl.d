lib/nf/registry.ml: Action Caching Compression Field Firewall Gateway Hashtbl Ids L3_forwarder List Load_balancer Monitor Nat Nfp_packet Proxy String Traffic_shaper Vpn
