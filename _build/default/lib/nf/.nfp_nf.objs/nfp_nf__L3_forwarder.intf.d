lib/nf/l3_forwarder.mli: Nf
