lib/nf/ids.ml: Action Char Field List Nf Nfp_algo Nfp_packet Packet String
