lib/nf/traffic_shaper.mli: Nf
