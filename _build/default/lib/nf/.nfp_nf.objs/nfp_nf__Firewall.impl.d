lib/nf/firewall.ml: Action Field Int32 List Nf Nfp_algo Nfp_packet Packet
