lib/nf/l3_forwarder.ml: Action Field Int32 Nf Nfp_algo Nfp_packet Packet
