(** L3 forwarder (paper §6.1: "obtains the matching entry from a longest
    prefix matching table with 1000 entries to find out the next hop").

    Profile: reads DIP only — the cheapest NF in the evaluation. *)

type stats = {
  forwarded : unit -> int;
  no_route : unit -> int;
  last_next_hop : unit -> int option;
}

val create : ?name:string -> ?routes:int -> unit -> Nf.t * stats
(** [routes] (default 1000) synthetic prefixes are installed
    deterministically. Packets with no matching route still forward on
    a default next hop, mirroring the paper's always-forwarding NF. *)
