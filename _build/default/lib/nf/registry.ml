open Nfp_packet

type entry = { kind : string; profile : Action.t list; deployment_pct : float option }

(* Paper Table 2, row by row. "R/W" cells expand to [Read; Write]. The
   NIDS row has no Drop (detection only); the separately registered IPS
   type is the dropping variant used in §3's Priority example. *)
let paper_rows =
  let open Action in
  let r f = Read f and w f = Write f in
  [
    {
      kind = "Firewall";
      profile = [ r Field.Sip; r Field.Dip; r Field.Sport; r Field.Dport; Drop ];
      deployment_pct = Some 26.0;
    };
    {
      kind = "IDS";
      profile = [ r Field.Sip; r Field.Dip; r Field.Sport; r Field.Dport; r Field.Payload ];
      deployment_pct = Some 20.0;
    };
    { kind = "Gateway"; profile = [ r Field.Sip; r Field.Dip ]; deployment_pct = Some 19.0 };
    {
      kind = "LoadBalancer";
      profile =
        [ r Field.Sip; w Field.Sip; r Field.Dip; w Field.Dip; r Field.Sport; r Field.Dport ];
      deployment_pct = Some 10.0;
    };
    {
      kind = "Caching";
      profile = [ r Field.Sip; r Field.Dip; r Field.Payload ];
      deployment_pct = Some 10.0;
    };
    {
      kind = "VPN";
      profile = [ r Field.Sip; r Field.Dip; r Field.Payload; w Field.Payload; Add_rm_header ];
      deployment_pct = Some 7.0;
    };
    {
      kind = "NAT";
      profile =
        [
          r Field.Sip; w Field.Sip; r Field.Dip; w Field.Dip;
          r Field.Sport; w Field.Sport; r Field.Dport; w Field.Dport; Drop;
        ];
      deployment_pct = None;
    };
    {
      kind = "Proxy";
      profile =
        [ r Field.Dip; w Field.Dip; r Field.Payload; w Field.Payload; w Field.Len ];
      deployment_pct = None;
    };
    {
      kind = "Compression";
      profile = [ r Field.Payload; w Field.Payload; w Field.Len ];
      deployment_pct = None;
    };
    { kind = "TrafficShaper"; profile = [ r Field.Len; Drop ]; deployment_pct = None };
    {
      kind = "Monitor";
      profile =
        [ r Field.Sip; r Field.Dip; r Field.Sport; r Field.Dport; r Field.Len ];
      deployment_pct = None;
    };
    (* Implemented variants beyond the paper table. *)
    {
      kind = "IPS";
      profile =
        [ r Field.Sip; r Field.Dip; r Field.Sport; r Field.Dport; r Field.Payload; Drop ];
      deployment_pct = None;
    };
    { kind = "Forwarder"; profile = [ r Field.Dip ]; deployment_pct = None };
  ]

let entries : (string, entry) Hashtbl.t = Hashtbl.create 32

let order : string list ref = ref []

let key k = String.lowercase_ascii k

let put e =
  if not (Hashtbl.mem entries (key e.kind)) then order := !order @ [ key e.kind ];
  Hashtbl.replace entries (key e.kind) { e with profile = Action.normalize e.profile }

let () = List.iter put paper_rows

let table () = List.filter_map (Hashtbl.find_opt entries) !order

let find kind = Hashtbl.find_opt entries (key kind)

let profile_of kind =
  match find kind with Some e -> e.profile | None -> raise Not_found

let register ~kind ~profile ?deployment_pct () = put { kind; profile; deployment_pct }

let weighted_kinds () =
  let weighted =
    List.filter_map
      (fun e -> match e.deployment_pct with Some p -> Some (e.kind, p) | None -> None)
      (table ())
  in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 weighted in
  List.map (fun (k, p) -> (k, p /. total)) weighted

let instantiate kind ~name =
  match key kind with
  | "firewall" -> Some (fst (Firewall.create ~name ()))
  | "ids" -> Some (fst (Ids.create ~name ~mode:`Detect ()))
  | "ips" -> Some (fst (Ids.create ~name ~mode:`Prevent ()))
  | "gateway" -> Some (fst (Gateway.create ~name ()))
  | "loadbalancer" -> Some (fst (Load_balancer.create ~name ()))
  | "caching" -> Some (fst (Caching.create ~name ()))
  | "vpn" -> Some (fst (Vpn.create ~name ()))
  | "nat" -> Some (fst (Nat.create ~name ()))
  | "proxy" -> Some (fst (Proxy.create ~name ()))
  | "compression" -> Some (fst (Compression.create ~name ()))
  | "trafficshaper" ->
      let nf, _, _ = Traffic_shaper.create ~name () in
      Some nf
  | "monitor" -> Some (fst (Monitor.create ~name ()))
  | "forwarder" -> Some (fst (L3_forwarder.create ~name ()))
  | _ -> None
