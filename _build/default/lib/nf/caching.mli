(** Content cache (paper Table 2: Nginx — reads SIP, DIP and payload).

    Read-only: records request keys (payload hashes per destination)
    and counts hits/misses, standing in for an Nginx-style cache whose
    packet-visible behaviour is pure observation. *)

type stats = { hits : unit -> int; misses : unit -> int; entries : unit -> int }

val create : ?name:string -> ?capacity:int -> unit -> Nf.t * stats
(** FIFO eviction beyond [capacity] (default 4096) keys. *)
