(** The NF action table — paper Table 2.

    Maps each commonly deployed NF type to its action profile and its
    deployment percentage in enterprise networks. The orchestrator
    consults this table ("AT" in Algorithm 1) to fetch the actions of
    the NFs named in a policy, and the §4 statistics weight NF pairs by
    these percentages. New NFs are accommodated by {!register}
    (typically with a profile derived by the {!Nfp_inspector}). *)

type entry = {
  kind : string;
  profile : Action.t list;
  deployment_pct : float option;
      (** share of enterprise deployments (paper Table 2 "%" column);
          [None] for rows the paper leaves unquantified *)
}

val table : unit -> entry list
(** Current contents, paper rows first. *)

val find : string -> entry option
(** Case-insensitive lookup by NF type name. *)

val profile_of : string -> Action.t list
(** @raise Not_found for unregistered types. *)

val register : kind:string -> profile:Action.t list -> ?deployment_pct:float -> unit -> unit
(** Register or overwrite an NF type (paper §4.3: "operators could
    generate an action profile… and register it"). *)

val weighted_kinds : unit -> (string * float) list
(** NF types carrying a deployment percentage, normalized to sum 1 —
    the population the §4 pair statistics are computed over. *)

val instantiate : string -> name:string -> Nf.t option
(** Build a fresh default-configured instance of a built-in NF type
    ([None] for types without an implementation, e.g. custom rows). *)
