open Nfp_packet

type stats = { conformed : unit -> int; policed : unit -> int }

let create ?(name = "shaper") ?(rate_bps = 1e9) ?(burst_bytes = 65536) () =
  let bucket = Nfp_algo.Token_bucket.create ~rate_bps ~burst_bytes in
  let now = ref 0L in
  let conformed = ref 0 and policed = ref 0 in
  let process pkt =
    if Nfp_algo.Token_bucket.admit bucket ~now_ns:!now ~size:(Packet.wire_length pkt) then begin
      incr conformed;
      Nf.Forward
    end
    else begin
      incr policed;
      Nf.Dropped
    end
  in
  ( Nf.make ~name ~kind:"TrafficShaper"
      ~profile:[ Action.Read Field.Len; Action.Drop ]
      ~cost_cycles:(fun _ -> 130)
      ~state_digest:(fun () -> Nfp_algo.Hashing.combine !conformed !policed)
      process,
    { conformed = (fun () -> !conformed); policed = (fun () -> !policed) },
    fun t -> now := t )
