(** Per-flow traffic monitor (paper §6.1: "maintains per-flow counters…
    The counter table uses the hash value of the 5-tuple as the key").

    Read-only on the 5-tuple fields (Table 2's NetFlow row), the
    canonical parallelizable NF of the paper's running example. *)

type counter = { packets : int; bytes : int }

type stats = {
  flows : unit -> int;
  lookup : Nfp_packet.Flow.t -> counter option;
  total_packets : unit -> int;
}

val create : ?name:string -> unit -> Nf.t * stats
