(** The network-function abstraction.

    An NF is a named packet processor with a declared action profile and
    a cycle-cost model. Instances carry their own internal state
    (counters, tables, crypto contexts); construct one instance per
    deployed NF. The simulator charges [cost_cycles] per packet; the
    semantics come from [process]. *)

open Nfp_packet

type verdict =
  | Forward  (** packet (possibly modified in place) continues *)
  | Dropped  (** NF decided to drop; the runtime emits a nil packet *)

type t = {
  name : string;  (** instance name, unique within a deployment *)
  kind : string;  (** NF type, e.g. "Firewall" — keys into the registry *)
  profile : Action.t list;  (** declared action profile (paper Table 2) *)
  cost_cycles : Packet.t -> int;
      (** per-packet processing cost charged by the simulator *)
  process : Packet.t -> verdict;  (** the packet-processing semantics *)
  state_digest : unit -> int;
      (** hash of internal state; the action inspector uses it to detect
          reads that have no packet-visible effect (e.g. counters) *)
}

val make :
  name:string ->
  kind:string ->
  profile:Action.t list ->
  cost_cycles:(Packet.t -> int) ->
  ?state_digest:(unit -> int) ->
  (Packet.t -> verdict) ->
  t
(** Profile is normalized. [state_digest] defaults to a constant. *)

val rename : t -> string -> t
(** Same NF type/state sharing the underlying closures under a new
    instance name (used to deploy several instances of one NF). *)

val pp : Format.formatter -> t -> unit
