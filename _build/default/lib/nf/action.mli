(** NF actions on packets.

    An NF's *action profile* is the set of actions it may perform on a
    packet: reading or writing specific fields, adding/removing headers,
    or dropping (paper Table 2). The orchestrator's dependency analysis
    (Table 3, Algorithm 1) works entirely on these profiles. *)

open Nfp_packet

type t =
  | Read of Field.t
  | Write of Field.t
  | Add_rm_header  (** adds headers to or removes headers from packets *)
  | Drop  (** may drop the packet *)

(** The four action classes of the paper's Table 3 rows/columns. *)
type kind = K_read | K_write | K_add_rm | K_drop

val kind : t -> kind

val field : t -> Field.t option
(** The field a [Read]/[Write] touches; [None] for header/drop actions. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val pp_profile : Format.formatter -> t list -> unit

(** {1 Profile helpers} *)

val reads : t list -> Field.t list

val writes : t list -> Field.t list

val may_drop : t list -> bool

val adds_or_removes_headers : t list -> bool

val read_write : Field.t -> t list
(** [read_write f] is [[Read f; Write f]] — the "R/W" cells of Table 2. *)

val normalize : t list -> t list
(** Sorted, deduplicated profile. *)
