(** ECMP load balancer (paper §6.1: "the commonly used ECMP mechanism in
    data centers that hashed the 5-tuple of the packet").

    Rewrites DIP to the chosen backend and SIP to the virtual IP
    (paper Table 2: R/W on SIP and DIP, R on ports). The hash is on the
    original 5-tuple, so the same flow always picks the same backend. *)

type stats = { per_backend : unit -> int array }

val create :
  ?name:string -> ?vip:int32 -> ?backends:int32 array -> unit -> Nf.t * stats
(** Defaults: vip 192.168.0.1 and 8 synthetic backends. *)
