open Nfp_packet

type stats = { hits : unit -> int; misses : unit -> int; entries : unit -> int }

let profile = Action.[ Read Field.Sip; Read Field.Dip; Read Field.Payload ]

let create ?(name = "cache") ?(capacity = 4096) () =
  let table : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let order = Queue.create () in
  let hits = ref 0 and misses = ref 0 in
  let process pkt =
    let key =
      Nfp_algo.Hashing.combine
        (Int32.to_int (Packet.dip pkt))
        (Nfp_algo.Hashing.fnv1a32 (Packet.payload pkt))
    in
    if Hashtbl.mem table key then incr hits
    else begin
      incr misses;
      Hashtbl.add table key ();
      Queue.add key order;
      if Hashtbl.length table > capacity then
        match Queue.take_opt order with
        | Some old -> Hashtbl.remove table old
        | None -> ()
    end;
    Nf.Forward
  in
  ( Nf.make ~name ~kind:"Caching" ~profile
      ~cost_cycles:(fun _ -> 260)
      ~state_digest:(fun () ->
        Nfp_algo.Hashing.combine !hits (Nfp_algo.Hashing.combine !misses (Hashtbl.length table)))
      process,
    {
      hits = (fun () -> !hits);
      misses = (fun () -> !misses);
      entries = (fun () -> Hashtbl.length table);
    } )
