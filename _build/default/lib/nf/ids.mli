(** Signature-matching intrusion detection (paper §6.1: "similar to the
    core signature matching component of Snort with 100 signature
    inspection rules").

    [`Detect] mode only raises alerts (Table 2's NIDS profile —
    no Drop); [`Prevent] mode drops matching packets, the IPS behaviour
    the paper's Priority example and the west–east service chain rely
    on. *)

type mode = [ `Detect | `Prevent ]

type stats = { alerts : unit -> int; scanned : unit -> int }

val default_signatures : int -> string list
(** [default_signatures n] is a deterministic set of [n] payload
    signatures. *)

val create :
  ?name:string -> ?mode:mode -> ?signatures:string list -> unit -> Nf.t * stats
(** Defaults: [`Detect], 100 signatures. *)
