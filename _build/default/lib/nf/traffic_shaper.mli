(** Traffic policer (paper Table 2: Linux tc).

    Token-bucket policing: packets above the configured rate are
    dropped. The bucket is driven by an externally supplied clock so the
    simulator controls time; [set_now_ns] is called by the runtime
    before each packet. *)

type stats = { conformed : unit -> int; policed : unit -> int }

val create :
  ?name:string -> ?rate_bps:float -> ?burst_bytes:int -> unit -> Nf.t * stats * (int64 -> unit)
(** Returns the NF, its stats, and the clock-advance function. Defaults:
    1 Gbit/s, 64 KiB burst. *)
