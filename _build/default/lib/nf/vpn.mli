(** IPsec AH-style VPN (paper §6.1: "implements the tunnel mode of IPsec
    Authentication Header protocol. It encrypts a packet based on the
    AES algorithm and wraps it with an AH header").

    Encrypts the payload with AES-128-CTR (the flow hash and sequence
    number form the nonce) and inserts an AH header carrying SPI,
    sequence number, and a payload ICV. Profile per Table 2: reads
    SIP/DIP, reads+writes the payload, adds/removes headers. *)

type stats = { encrypted : unit -> int; sequence : unit -> int32 }

val create : ?name:string -> ?key:string -> ?spi:int32 -> unit -> Nf.t * stats
(** @raise Invalid_argument if [key] is not 16 bytes. *)

val decrypt : key:string -> Nfp_packet.Packet.t -> bool
(** Companion tunnel-exit used by tests: strips the AH header and
    decrypts the payload; [false] when the packet carries no AH. *)
