(** Payload compression (paper Table 2: Cisco IOS compression — R/W on
    payload).

    LZ77-compresses the payload in place. Payloads that do not shrink
    are left unchanged (flagged in the stats), as WAN optimizers do. *)

type stats = {
  compressed : unit -> int;
  skipped : unit -> int;
  bytes_saved : unit -> int;
}

val create : ?name:string -> unit -> Nf.t * stats
