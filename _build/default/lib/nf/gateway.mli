(** Conference/voice/media gateway (paper Table 2: Cisco MGX — reads SIP
    and DIP only).

    Classifies packets into media sessions by address pair and counts
    them; read-only, like the paper's gateway row. *)

type stats = { sessions : unit -> int; packets : unit -> int }

val create : ?name:string -> unit -> Nf.t * stats
