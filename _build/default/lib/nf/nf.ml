open Nfp_packet

type verdict = Forward | Dropped

type t = {
  name : string;
  kind : string;
  profile : Action.t list;
  cost_cycles : Packet.t -> int;
  process : Packet.t -> verdict;
  state_digest : unit -> int;
}

let make ~name ~kind ~profile ~cost_cycles ?(state_digest = fun () -> 0) process =
  { name; kind; profile = Action.normalize profile; cost_cycles; process; state_digest }

let rename t name = { t with name }

let pp fmt t = Format.fprintf fmt "%s:%s %a" t.name t.kind Action.pp_profile t.profile
