(** Forward proxy (paper Table 2: Squid — R/W on DIP and payload).

    Redirects matching destinations to an origin server and stamps a
    Via token into the payload, the observable payload rewrite the
    dependency analysis must account for. *)

type stats = { redirected : unit -> int }

val create : ?name:string -> ?origin:int32 -> ?via:string -> unit -> Nf.t * stats
