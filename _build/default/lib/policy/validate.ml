type conflict =
  | Unknown_nf of string
  | Unknown_kind of string * string
  | Duplicate_binding of string
  | Order_cycle of string list
  | Priority_both_ways of string * string
  | Position_conflict of string
  | Position_order_conflict of string * string
  | Self_rule of string

let pp_conflict fmt = function
  | Unknown_nf n -> Format.fprintf fmt "rule references unknown NF %S" n
  | Unknown_kind (n, k) -> Format.fprintf fmt "NF %S has unregistered type %S" n k
  | Duplicate_binding n -> Format.fprintf fmt "NF %S bound more than once" n
  | Order_cycle ns ->
      Format.fprintf fmt "precedence cycle: %s" (String.concat " -> " (ns @ [ List.hd ns ]))
  | Priority_both_ways (a, b) ->
      Format.fprintf fmt "conflicting priorities between %S and %S" a b
  | Position_conflict n -> Format.fprintf fmt "NF %S pinned both first and last" n
  | Position_order_conflict (n, other) ->
      Format.fprintf fmt "order rule with %S contradicts the pinned position of %S" other n
  | Self_rule n -> Format.fprintf fmt "rule relates NF %S to itself" n

(* Tarjan's strongly-connected components over the precedence digraph. *)
let sccs nodes edges =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let successors n = List.filter_map (fun (a, b) -> if a = n then Some b else None) edges in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec popped acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if w = v then w :: acc else popped (w :: acc)
      in
      result := popped [] :: !result
    end
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strongconnect n) nodes;
  !result

let check (policy : Rule.policy) =
  let conflicts = ref [] in
  let add c = conflicts := c :: !conflicts in
  (* Bindings: duplicates and unknown registry types. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, kind) ->
      if Hashtbl.mem seen name then add (Duplicate_binding name) else Hashtbl.add seen name ();
      if Nfp_nf.Registry.find kind = None then add (Unknown_kind (name, kind)))
    policy.bindings;
  (* Name resolution: a name is known if bound, or if it is itself a
     registered NF type (the paper writes Order(VPN, before, Monitor)
     directly over type names). *)
  let known name =
    List.mem_assoc name policy.bindings || Nfp_nf.Registry.find name <> None
  in
  let names = Rule.nfs_of_rules policy.rules in
  List.iter (fun n -> if not (known n) then add (Unknown_nf n)) names;
  (* Self rules. *)
  List.iter
    (function
      | Rule.Order (a, b) | Rule.Priority (a, b) -> if a = b then add (Self_rule a)
      | Rule.Position _ -> ())
    policy.rules;
  (* Priority in both directions. *)
  let prios =
    List.filter_map (function Rule.Priority (a, b) -> Some (a, b) | _ -> None) policy.rules
  in
  List.iter
    (fun (a, b) -> if a < b && List.mem (b, a) prios && List.mem (a, b) prios then add (Priority_both_ways (a, b)))
    prios;
  (* Position conflicts. *)
  let positions =
    List.filter_map (function Rule.Position (n, p) -> Some (n, p) | _ -> None) policy.rules
  in
  List.iter
    (fun (n, p) ->
      if p = Rule.First && List.mem (n, Rule.Last) positions then add (Position_conflict n))
    positions;
  (* Order rules contradicting pinned positions. *)
  List.iter
    (function
      | Rule.Order (a, b) when a <> b ->
          if List.mem (a, Rule.Last) positions then add (Position_order_conflict (a, b));
          if List.mem (b, Rule.First) positions then add (Position_order_conflict (b, a))
      | _ -> ())
    policy.rules;
  (* Precedence cycles: Order(a,b) is a->b; Priority(hi,lo) makes lo
     logically earlier, lo->hi. *)
  let edges =
    List.filter_map
      (function
        | Rule.Order (a, b) when a <> b -> Some (a, b)
        | Rule.Priority (hi, lo) when hi <> lo -> Some (lo, hi)
        | _ -> None)
      policy.rules
  in
  let self_loop n = List.mem (n, n) edges in
  List.iter
    (fun component ->
      match component with
      | [ n ] -> if self_loop n then add (Order_cycle [ n ])
      | [] -> ()
      | ns -> add (Order_cycle ns))
    (sccs names edges);
  List.rev !conflicts

let is_valid policy = check policy = []

let suggest = function
  | Unknown_nf n ->
      Printf.sprintf "bind %S with an NF(%s, <Type>) line or use a registered type name" n n
  | Unknown_kind (_, k) ->
      Printf.sprintf
        "register %S first (Registry.register, optionally with an inspector-derived profile)" k
  | Duplicate_binding n -> Printf.sprintf "remove one of the NF(%s, ...) lines" n
  | Order_cycle ns ->
      Printf.sprintf "drop one Order rule among %s to break the cycle"
        (String.concat ", " ns)
  | Priority_both_ways (a, b) ->
      Printf.sprintf "keep a single Priority direction between %s and %s" a b
  | Position_conflict n ->
      Printf.sprintf "pin %s either first or last, not both" n
  | Position_order_conflict (n, other) ->
      Printf.sprintf
        "either unpin %s or remove the Order rule relating it to %s" n other
  | Self_rule n -> Printf.sprintf "remove the rule relating %s to itself" n
