lib/policy/parser.mli: Rule
