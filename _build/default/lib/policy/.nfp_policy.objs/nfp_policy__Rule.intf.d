lib/policy/rule.mli: Format
