lib/policy/parser.ml: Format List Printf Result Rule String
