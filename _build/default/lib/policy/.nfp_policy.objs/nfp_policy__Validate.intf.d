lib/policy/validate.mli: Format Rule
