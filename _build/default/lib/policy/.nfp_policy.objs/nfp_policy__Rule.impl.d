lib/policy/rule.ml: Format Hashtbl List
