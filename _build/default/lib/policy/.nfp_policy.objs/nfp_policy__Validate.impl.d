lib/policy/validate.ml: Format Hashtbl List Nfp_nf Printf Rule String
