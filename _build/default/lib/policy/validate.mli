(** Policy sanity checking and conflict detection.

    The paper (§3) notes that hand-written rules may conflict — e.g.
    opposite [Order] rules, or one NF assigned both [first] and [last]
    — and leaves detection to future work. This module implements it:
    structural validation against the NF registry plus detection of
    contradictory rules. *)

type conflict =
  | Unknown_nf of string  (** rule references an unbound NF name *)
  | Unknown_kind of string * string  (** binding uses an unregistered NF type *)
  | Duplicate_binding of string
  | Order_cycle of string list  (** NF names forming a precedence cycle *)
  | Priority_both_ways of string * string
  | Position_conflict of string  (** same NF pinned first and last *)
  | Position_order_conflict of string * string
      (** order rule contradicts first/last pinning, e.g.
          [Position(a, last)] with [Order(a, before, b)] *)
  | Self_rule of string  (** rule relates an NF to itself *)

val pp_conflict : Format.formatter -> conflict -> unit

val check : Rule.policy -> conflict list
(** All detected conflicts; the empty list means the policy is
    compilable. Order cycles are reported once per strongly connected
    component. Priority edges participate in cycle detection with
    their [hi] NF treated as logically later (the paper converts a
    parallelizable [Order(a, before, b)] into [Priority(b > a)]). *)

val is_valid : Rule.policy -> bool

val suggest : conflict -> string
(** A remediation hint for the operator — the paper defers conflict
    resolution to future work; this offers the obvious fixes. *)
