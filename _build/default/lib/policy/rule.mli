(** NFP policy rules (paper §3).

    A policy is a list of rules over NF instance names plus a binding of
    each name to its NF type (whose action profile lives in the
    registry). The three rule forms are exactly the paper's:

    - [Order (a, b)] — "Order(a, before, b)": desired execution order;
      the orchestrator may still parallelize the pair if the dependency
      analysis allows (§4.1).
    - [Priority (hi, lo)] — "Priority(hi > lo)": run in parallel,
      resolving action conflicts in favour of [hi].
    - [Position (nf, place)] — pin an NF to the head or tail of the
      graph. *)

type place = First | Last

type t =
  | Order of string * string
  | Priority of string * string
  | Position of string * place

type policy = {
  bindings : (string * string) list;  (** instance name → NF type *)
  rules : t list;
}

val nfs_of_rules : t list -> string list
(** Every NF name mentioned, in first-appearance order, deduplicated. *)

val of_chain : string list -> t list
(** Translate a traditional sequential chain [n1; n2; …] into Order
    rules for neighbouring NFs (paper §3: sequential descriptions are
    converted automatically, then parallelism is explored). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val pp_policy : Format.formatter -> policy -> unit
