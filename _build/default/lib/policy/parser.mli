(** Textual policy language, the paper's rule syntax plus NF bindings.

    {[
      # comments run to end of line
      NF(vpn, VPN)              # bind instance name -> registry type
      NF(fw, Firewall)
      Position(vpn, first)
      Order(fw, before, lb)
      Priority(ips > fw)
      Chain(vpn, mon, fw, lb)   # sugar: Order rules between neighbours
    ]}

    Keywords and type names are case-insensitive; instance names are
    case-sensitive identifiers. *)

val parse : string -> (Rule.policy, string) result
(** Parse a whole policy text; the error string carries a line number. *)

val parse_rule : string -> (Rule.t, string) result
(** Parse a single rule (no bindings, no comments). *)

val to_string : Rule.policy -> string
(** Render back to parseable text. *)
