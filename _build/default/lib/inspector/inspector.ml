open Nfp_packet
open Nfp_nf

(* A probe's observable outcome: verdict, wire bytes (or None when
   dropped), and the NF's internal-state digest after processing. *)
type fingerprint = { forwarded : bool; wire : bytes option; digest : int }

let run_once factory pkt =
  let nf : Nf.t = factory () in
  match nf.process pkt with
  | Nf.Forward ->
      { forwarded = true; wire = Some (Packet.to_bytes pkt); digest = nf.state_digest () }
  | Nf.Dropped -> { forwarded = false; wire = None; digest = nf.state_digest () }

(* Canonicalize a field so the trivial echo of a mutated input field
   does not count as a behavioural difference. *)
let normalize field pkt =
  let canonical = function
    | Field.Sip | Field.Dip -> "\x00\x00\x00\x00"
    | Field.Sport | Field.Dport -> "\x00\x00"
    | Field.Proto | Field.Ttl | Field.Tos -> "\x00"
    | Field.Payload -> String.make (String.length (Packet.get_field pkt Field.Payload)) '\x00'
    | Field.Len ->
        (* Canonical length = headers only: strips the payload, so the
           two sides compare on equal footing. *)
        let b = Packet.get_field pkt Field.Len in
        ignore b;
        String.init 2 (fun i ->
            let v = Packet.header_length pkt - 14 in
            Char.chr ((v lsr ((1 - i) * 8)) land 0xff))
  in
  Packet.set_field pkt field (canonical field)

(* Compare two outcomes, discounting the trivial echo of the mutated
   field: when the NF merely passed the field through (output value =
   its own input value), the field is blanked on both sides. When the
   NF visibly rewrote the field, the outputs are compared as is — a
   value difference then proves the write depended on the input. *)
let fingerprints_equal_modulo field (in1, a) (in2, b) =
  a.forwarded = b.forwarded && a.digest = b.digest
  &&
  match (a.wire, b.wire) with
  | None, None -> true
  | Some wa, Some wb -> (
      match (Packet.of_bytes wa, Packet.of_bytes wb) with
      | Ok pa, Ok pb ->
          let echoed out input = Packet.get_field out field = Packet.get_field input field in
          if echoed pa in1 && echoed pb in2 then begin
            normalize field pa;
            normalize field pb
          end;
          Packet.equal_wire pa pb
      | _ -> Bytes.equal wa wb)
  | None, Some _ | Some _, None -> false

let mutate field pkt =
  let flip_at i s =
    let b = Bytes.of_string s in
    if Bytes.length b > 0 then
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x55));
    Bytes.to_string b
  in
  let v = Packet.get_field pkt field in
  let mutated =
    match field with
    (* Signatures sit at the front of the probes' payloads; flipping the
       first byte toggles DPI matches. *)
    | Field.Payload -> flip_at 0 v
    | Field.Len ->
        (* Resize by one byte (grow when the payload is empty). *)
        let current = (Char.code v.[0] lsl 8) lor Char.code v.[1] in
        let header = Packet.header_length pkt - 14 in
        let target = if current > header then current - 1 else current + 1 in
        String.init 2 (fun i -> Char.chr ((target lsr ((1 - i) * 8)) land 0xff))
    | _ -> flip_at (String.length v - 1) v
  in
  Packet.set_field pkt field mutated

(* Probe packets exercise diverse flows, sizes, ACL deny bands (low
   destination ports) and IDS signatures so read-dependent behaviour
   has a chance to surface. *)
let probe_packet ~seed i =
  let prng = Nfp_algo.Prng.create ~seed:(Int64.add seed (Int64.of_int (i * 7919))) in
  let sip, dport =
    if i mod 5 = 1 then
      (* Target the synthetic ACL's first deny rule (10.0.0.0/24,
         destination ports 0-50) so dropping NFs reveal themselves. *)
      (Int32.of_int ((10 lsl 24) lor (i mod 250)), i mod 50)
    else
      ( Int32.of_int
          ((10 lsl 24) lor (Nfp_algo.Prng.int prng ~bound:200 lsl 8) lor (i mod 250)),
        61000 + (i mod 4000) )
  in
  let dip = Int32.of_int ((10 lsl 24) lor (8 lsl 16) lor Nfp_algo.Prng.int prng ~bound:65536) in
  let flow =
    Flow.make ~sip ~dip
      ~sport:(1024 + Nfp_algo.Prng.int prng ~bound:60000)
      ~dport ~proto:6
  in
  let len = [| 10; 46; 202; 970; 1446 |].(i mod 5) in
  let payload =
    if i mod 4 = 0 then
      (* Embed a known IDS signature. *)
      match Nfp_nf.Ids.default_signatures 100 with
      | s :: _ ->
          let pad = max 0 (len - String.length s) in
          s ^ String.make pad 'X'
      | [] -> String.make len 'X'
    else String.init len (fun j -> if j mod 2 = 0 then 'Q' else Char.chr (48 + (j mod 10)))
  in
  Packet.create ~flow ~payload ()

let mutable_fields = Field.all

let derive_profile ?(probes = 64) ?(seed = 97L) factory =
  let actions = ref [] in
  let add a = if not (List.mem a !actions) then actions := a :: !actions in
  for i = 0 to probes - 1 do
    let base = probe_packet ~seed i in
    let before = Packet.full_copy base in
    let fp = run_once factory base in
    (* base has been processed in place. *)
    (match fp.wire with
    | None -> add Action.Drop
    | Some _ ->
        let header_changed = Packet.has_ah base <> Packet.has_ah before in
        List.iter
          (fun f ->
            (* A length change explained by header addition/removal is
               the Add/Rm action, not a Len write. *)
            if f = Field.Len && header_changed then ()
            else if Packet.get_field before f <> Packet.get_field base f then
              add (Action.Write f))
          Field.all;
        if header_changed then add Action.Add_rm_header);
    (* Read detection: flip one field, compare outcomes. *)
    List.iter
      (fun f ->
        let p1 = Packet.full_copy before in
        let p2 = Packet.full_copy before in
        mutate f p2;
        let in1 = Packet.full_copy p1 and in2 = Packet.full_copy p2 in
        let f1 = run_once factory p1 in
        let f2 = run_once factory p2 in
        if not (fingerprints_equal_modulo f (in1, f1) (in2, f2)) then add (Action.Read f))
      mutable_fields
  done;
  Action.normalize !actions

type comparison = {
  matching : Action.t list;
  undeclared : Action.t list;
  unobserved : Action.t list;
}

let compare_profiles ~declared ~observed =
  let declared = Action.normalize declared and observed = Action.normalize observed in
  {
    matching = List.filter (fun a -> List.mem a declared) observed;
    undeclared = List.filter (fun a -> not (List.mem a declared)) observed;
    unobserved = List.filter (fun a -> not (List.mem a observed)) declared;
  }

let inspect_registered ?probes kind =
  match Registry.find kind with
  | None -> None
  | Some entry -> (
      match Registry.instantiate kind ~name:"probe" with
      | None -> None
      | Some _ ->
          let factory () =
            match Registry.instantiate kind ~name:"probe" with
            | Some nf -> nf
            | None -> assert false
          in
          let observed = derive_profile ?probes factory in
          Some (observed, compare_profiles ~declared:entry.profile ~observed))

let pp_comparison fmt c =
  Format.fprintf fmt "@[<v>matching: %a@,undeclared: %a@,unobserved: %a@]"
    Action.pp_profile c.matching Action.pp_profile c.undeclared Action.pp_profile
    c.unobserved
