(** The NF action inspector — paper §5.4.

    The paper inspects NF source for calls into the packet-access
    interfaces. Source inspection is not available to a library that
    receives compiled closures, so this inspector derives the profile
    *behaviourally*: it runs fresh NF instances over probe packets and

    - detects {b writes} by diffing each field before/after processing,
    - detects {b header changes} by watching AH presence and length,
    - detects {b drops} from returned verdicts,
    - detects {b reads} by flipping one field at a time and comparing
      the NF's outputs and its internal-state digest ([Nf.state_digest])
      across the pair of runs — a field whose value changes behaviour
      was read.

    Read detection is a lower bound (an NF that reads a field but never
    acts on it in any probe is undetectable), so {!compare_profiles}
    reports declared-but-unobserved actions separately from undeclared
    ones. *)

open Nfp_nf

val derive_profile :
  ?probes:int -> ?seed:int64 -> (unit -> Nf.t) -> Action.t list
(** [derive_profile factory] builds fresh instances via [factory] and
    probes them. Default 64 probe packets. *)

type comparison = {
  matching : Action.t list;  (** declared and observed *)
  undeclared : Action.t list;  (** observed but missing from the profile *)
  unobserved : Action.t list;  (** declared but never seen in any probe *)
}

val compare_profiles : declared:Action.t list -> observed:Action.t list -> comparison

val inspect_registered :
  ?probes:int -> string -> (Action.t list * comparison) option
(** Probe a built-in NF type via {!Nfp_nf.Registry.instantiate} and
    compare against its registered profile. [None] for types without an
    implementation. *)

val pp_comparison : Format.formatter -> comparison -> unit
