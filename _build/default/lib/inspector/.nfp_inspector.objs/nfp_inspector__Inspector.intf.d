lib/inspector/inspector.mli: Action Format Nf Nfp_nf
