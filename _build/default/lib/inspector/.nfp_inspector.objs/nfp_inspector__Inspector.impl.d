lib/inspector/inspector.ml: Action Array Bytes Char Field Flow Format Int32 Int64 List Nf Nfp_algo Nfp_nf Nfp_packet Packet Registry String
