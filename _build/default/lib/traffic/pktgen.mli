(** Deterministic packet generator — the stand-in for the paper's
    DPDK packet-generator server.

    [packet t i] always builds the same packet for the same index, so
    runs are reproducible and the replay check can feed identical
    streams to two systems. The default traffic avoids the synthetic
    firewall ACL's deny bands and the IDS signature alphabet, so no NF
    drops packets unless an experiment asks for it. *)

open Nfp_packet

type payload_style =
  | Random_bytes  (** uniform bytes *)
  | Ascii  (** mixed-case alphanumeric (never matches IDS signatures) *)
  | Tagged  (** Ascii prefixed with "#<index>;" for replay tracking *)

type config = {
  flows : int;  (** distinct 5-tuples cycled through *)
  sizes : Size_dist.t;  (** frame-size distribution *)
  proto : int;  (** transport protocol, default TCP *)
  payload_style : payload_style;
  seed : int64;
}

val default : config
(** 64 flows, 64-byte frames, TCP, Ascii payloads. *)

type t

val create : config -> t

val packet : t -> int -> Packet.t
(** The [i]-th packet (freshly allocated each call). *)

val flow_of_index : t -> int -> Flow.t

val frame_bytes : t -> int -> int
(** Size the [i]-th packet will have. *)

val header_bytes : int
(** Ethernet + IPv4 + TCP: 54 bytes. *)
