lib/traffic/pktgen.mli: Flow Nfp_packet Packet Size_dist
