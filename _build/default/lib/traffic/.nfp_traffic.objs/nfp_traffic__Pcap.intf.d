lib/traffic/pcap.mli: Nfp_packet Nfp_sim Packet
