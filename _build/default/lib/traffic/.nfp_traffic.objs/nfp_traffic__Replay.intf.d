lib/traffic/replay.mli: Nfp_core Nfp_nf Nfp_packet
