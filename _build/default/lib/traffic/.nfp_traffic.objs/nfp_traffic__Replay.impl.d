lib/traffic/replay.ml: List Nfp_infra Nfp_packet
