lib/traffic/pktgen.ml: Char Flow Int32 Int64 Nfp_algo Nfp_packet Packet Printf Size_dist String
