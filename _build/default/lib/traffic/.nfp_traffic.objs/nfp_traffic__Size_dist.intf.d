lib/traffic/size_dist.mli: Nfp_algo
