lib/traffic/size_dist.ml: List Nfp_algo
