lib/traffic/pcap.ml: Buffer Bytes Char Fun List Nfp_packet Nfp_sim Packet Printf String
