type outcome = { total : int; agreements : int; disagreements : int list }

let run ~chain ~deployment ~gen ~packets =
  let nfs_seq = chain () in
  let plan, nfs_par = deployment () in
  let disagreements = ref [] in
  for i = 0 to packets - 1 do
    let reference = Nfp_infra.Reference.run_sequential ~nfs:nfs_seq (gen i) in
    let parallel = Nfp_infra.Reference.run_plan ~plan ~nfs:nfs_par (gen i) in
    let same =
      match (reference, parallel) with
      | None, None -> true
      | Some a, Some b -> Nfp_packet.Packet.equal_wire a b
      | None, Some _ | Some _, None -> false
    in
    if not same then disagreements := i :: !disagreements
  done;
  {
    total = packets;
    agreements = packets - List.length !disagreements;
    disagreements = List.rev !disagreements;
  }

let agrees o = o.disagreements = []
