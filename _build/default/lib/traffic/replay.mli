(** Result-correctness replay — paper §6.4.

    "We generate a series of packets…, tag each packet with a unique
    packet ID in the payload, and replay them to the sequential service
    chain and the optimized NFP service graph. We compare the processed
    packets and find that NFP provides the same execution results."

    Both sides get fresh NF instances (stateful NFs must start from the
    same state) and identical packet streams; outputs are compared
    byte-for-byte on the wire, treating a drop as a distinct outcome. *)

type outcome = {
  total : int;
  agreements : int;
  disagreements : int list;  (** indices whose outputs differed *)
}

val run :
  chain:(unit -> Nfp_nf.Nf.t list) ->
  deployment:(unit -> Nfp_core.Tables.plan * (string -> Nfp_nf.Nf.t)) ->
  gen:(int -> Nfp_packet.Packet.t) ->
  packets:int ->
  outcome
(** [chain ()] builds the reference sequential chain; [deployment ()]
    the compiled plan plus its NF instances. Streams must be generated
    deterministically ([gen] is called twice per index). *)

val agrees : outcome -> bool
