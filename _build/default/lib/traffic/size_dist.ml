type t = (int * float) list

(* Bimodal data-center mix (Benson et al., IMC'10): ~40% tiny control
   packets, a thin middle, and ~40% near-MTU bulk. Mean 724 B matches
   the average the paper quotes from [4]. *)
let datacenter =
  [
    (64, 0.300); (128, 0.100); (256, 0.050); (512, 0.050); (724, 0.048);
    (1024, 0.100); (1500, 0.352);
  ]

let fixed s = [ (s, 1.0) ]

let total dist = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 dist

let mean dist =
  let t = total dist in
  if t <= 0.0 then invalid_arg "Size_dist.mean: empty distribution";
  List.fold_left (fun acc (s, p) -> acc +. (float_of_int s *. p)) 0.0 dist /. t

let sample prng dist =
  let t = total dist in
  if t <= 0.0 then invalid_arg "Size_dist.sample: empty distribution";
  let u = Nfp_algo.Prng.float prng *. t in
  let rec go acc = function
    | [] -> invalid_arg "Size_dist.sample: empty distribution"
    | [ (s, _) ] -> s
    | (s, p) :: rest -> if acc +. p >= u then s else go (acc +. p) rest
  in
  go 0.0 dist

let common_sizes = [ 64; 128; 256; 512; 1024; 1500 ]
