open Nfp_packet

type record = { ts_ns : float; pkt : Packet.t }

let magic = 0xa1b2c3d4

(* Little-endian writers. *)
let w32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let w16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let write_file path records =
  let buf = Buffer.create 4096 in
  w32 buf magic;
  w16 buf 2;
  w16 buf 4;
  w32 buf 0 (* thiszone *);
  w32 buf 0 (* sigfigs *);
  w32 buf 65535 (* snaplen *);
  w32 buf 1 (* LINKTYPE_ETHERNET *);
  List.iter
    (fun { ts_ns; pkt } ->
      let bytes = Packet.to_bytes pkt in
      let us = int_of_float (ts_ns /. 1000.0) in
      w32 buf (us / 1_000_000);
      w32 buf (us mod 1_000_000);
      w32 buf (Bytes.length bytes);
      w32 buf (Bytes.length bytes);
      Buffer.add_bytes buf bytes)
    records;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf)

let read_file path =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let r32 off =
    Char.code contents.[off]
    lor (Char.code contents.[off + 1] lsl 8)
    lor (Char.code contents.[off + 2] lsl 16)
    lor (Char.code contents.[off + 3] lsl 24)
  in
  let len = String.length contents in
  if len < 24 then Error "truncated pcap header"
  else if r32 0 <> magic then Error "not a little-endian classic pcap"
  else if r32 20 <> 1 then Error "not an Ethernet capture"
  else begin
    let rec go off acc =
      if off = len then Ok (List.rev acc)
      else if off + 16 > len then Error "truncated record header"
      else begin
        let sec = r32 off and usec = r32 (off + 4) and incl = r32 (off + 8) in
        if off + 16 + incl > len then Error "truncated record body"
        else
          match
            Packet.of_bytes (Bytes.of_string (String.sub contents (off + 16) incl))
          with
          | Ok pkt ->
              let ts_ns = (float_of_int sec *. 1e9) +. (float_of_int usec *. 1e3) in
              go (off + 16 + incl) ({ ts_ns; pkt } :: acc)
          | Error e -> Error (Printf.sprintf "record at offset %d: %s" off e)
      end
    in
    go 24 []
  end

let capture () =
  let records = ref [] in
  let engine = ref None in
  let tap ~pid:_ pkt =
    let ts_ns = match !engine with Some e -> Nfp_sim.Engine.now e | None -> 0.0 in
    records := { ts_ns; pkt = Packet.full_copy pkt } :: !records
  in
  let bind e = engine := Some e in
  let dump () = List.rev !records in
  (tap, bind, dump)
