(** Minimal pcap (libpcap classic format) writer and reader.

    Lets simulated traffic — generator output, packets captured at any
    point of a deployment — be dumped to disk and opened in standard
    tools, and replayed back into the simulator. Timestamps are the
    simulator's nanosecond clock (stored with microsecond resolution,
    the classic format's limit). *)

open Nfp_packet

type record = { ts_ns : float; pkt : Packet.t }

val write_file : string -> record list -> unit
(** Write an Ethernet-linktype capture. Overwrites the file. *)

val read_file : string -> (record list, string) result
(** Read a classic little-endian pcap file; packets that fail to parse
    as Ethernet/IPv4 are an error (this reader is for files this module
    wrote). *)

val capture :
  unit -> (pid:int64 -> Packet.t -> unit) * (Nfp_sim.Engine.t -> unit) * (unit -> record list)
(** [capture ()] is [(tap, bind, dump)]: pass [tap] anywhere a
    [~output] callback is expected after [bind engine] (for
    timestamps); [dump ()] returns what flowed through, in order. *)
