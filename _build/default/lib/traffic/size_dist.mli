(** Packet-size distributions.

    The paper sizes its resource-overhead analysis (§6.3.1) and the
    real-world-chain workload (§6.4) on the data-center packet-size
    distribution measured by Benson et al. (IMC'10, the paper's [4]):
    bimodal — a large mass of small packets and a cluster at the MTU —
    with a mean around 724 bytes. *)

type t = (int * float) list
(** (frame bytes, probability); probabilities need not be normalized. *)

val datacenter : t
(** IMC'10-shaped distribution, mean ≈ 724 B. *)

val fixed : int -> t

val mean : t -> float

val sample : Nfp_algo.Prng.t -> t -> int
(** Draw a frame size. *)

val common_sizes : int list
(** The evaluation's sweep: 64, 128, 256, 512, 1024, 1500. *)
