open Nfp_packet

type payload_style = Random_bytes | Ascii | Tagged

type config = {
  flows : int;
  sizes : Size_dist.t;
  proto : int;
  payload_style : payload_style;
  seed : int64;
}

let default =
  { flows = 64; sizes = Size_dist.fixed 64; proto = 6; payload_style = Ascii; seed = 1L }

type t = config

let create config =
  if config.flows <= 0 then invalid_arg "Pktgen.create: need at least one flow";
  config

let header_bytes = 54

let prng_of t i =
  Nfp_algo.Prng.create ~seed:(Int64.add t.seed (Int64.mul 0x100000001L (Int64.of_int i)))

let flow_of_index t i =
  let f = i mod t.flows in
  (* Client side 10.0.0.0/16, server side 10.8.0.0/16; destination
     ports above 61000 stay clear of the synthetic ACL's deny bands. *)
  let sip = Int32.of_int ((10 lsl 24) lor ((f mod 200) lsl 8) lor ((f / 200) + 1)) in
  let dip = Int32.of_int ((10 lsl 24) lor (8 lsl 16) lor ((f mod 250) lsl 8) lor 10) in
  Flow.make ~sip ~dip ~sport:(10000 + (f mod 40000)) ~dport:(61000 + (f mod 4000))
    ~proto:t.proto

(* Mixed-case alphanumerics: IDS signatures are lowercase-only strings of
   length >= 6, so this alphabet cannot produce six consecutive
   lowercase letters that match. *)
let ascii_alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789abcdefghijklm"

let payload t prng i len =
  match t.payload_style with
  | Random_bytes -> String.init len (fun _ -> Char.chr (Nfp_algo.Prng.int prng ~bound:256))
  | Ascii ->
      String.init len (fun j ->
          let c = ascii_alphabet.[Nfp_algo.Prng.int prng ~bound:String.(length ascii_alphabet)] in
          (* Never two adjacent lowercase letters. *)
          if j mod 2 = 0 then c else Char.uppercase_ascii c)
  | Tagged ->
      let tag = Printf.sprintf "#%d;" i in
      if len <= String.length tag then String.sub tag 0 len
      else
        tag
        ^ String.init
            (len - String.length tag)
            (fun j ->
              let c =
                ascii_alphabet.[Nfp_algo.Prng.int prng ~bound:(String.length ascii_alphabet)]
              in
              if j mod 2 = 0 then c else Char.uppercase_ascii c)

let frame_bytes t i =
  let prng = prng_of t i in
  Size_dist.sample prng t.sizes

let packet t i =
  let prng = prng_of t i in
  let size = Size_dist.sample prng t.sizes in
  let payload_len = max 0 (size - header_bytes) in
  Packet.create ~flow:(flow_of_index t i) ~payload:(payload t prng i payload_len) ()
