examples/datacenter_chains.mli:
