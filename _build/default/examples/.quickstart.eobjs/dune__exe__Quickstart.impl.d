examples/quickstart.ml: Compiler Format Graph Hashtbl List Nfp_algo Nfp_baseline Nfp_core Nfp_infra Nfp_nf Nfp_sim Nfp_traffic String Tables
