examples/openbox_blocks.ml: Block Flow Format List Nfp_nf Nfp_openbox Nfp_packet Option Packet Pipeline String
