examples/multi_tenant.ml: Compiler Flow Flow_match Format Graph Int64 Nfp_core Nfp_infra Nfp_nf Nfp_packet Nfp_sim Option Packet String Tables
