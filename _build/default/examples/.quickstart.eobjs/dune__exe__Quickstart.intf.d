examples/quickstart.mli:
