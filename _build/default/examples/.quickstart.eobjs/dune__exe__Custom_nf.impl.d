examples/custom_nf.ml: Action Field Firewall Flow Format Hashtbl Monitor Nf Nfp_core Nfp_infra Nfp_inspector Nfp_nf Nfp_packet Option Packet Registry String
