examples/datacenter_chains.ml: Compiler Format Graph Hashtbl List Nfp_algo Nfp_baseline Nfp_core Nfp_infra Nfp_nf Nfp_policy Nfp_sim Nfp_traffic Overhead String Tables
