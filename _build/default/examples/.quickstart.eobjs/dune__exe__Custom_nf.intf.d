examples/custom_nf.mli:
