examples/openbox_blocks.mli:
