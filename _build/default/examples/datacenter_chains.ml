(* The paper's real-world data-center service chains (Fig. 13):

   - north-south: VPN -> Monitor -> Firewall -> Load Balancer
     (NFP parallelizes Monitor and Firewall; no packet copies)
   - west-east:   IDS -> Monitor -> Load Balancer
     (NFP parallelizes Monitor and the Load Balancer with one
      header-only copy; the dropping NIDS-cluster IDS stays first)

   Traffic follows the IMC'10 data-center packet-size distribution.

   Run with: dune exec examples/datacenter_chains.exe *)

open Nfp_core

type chain_spec = {
  label : string;
  bindings : (string * string) list;
  order : string list;
}

let north_south =
  {
    label = "north-south";
    bindings =
      [ ("vpn", "VPN"); ("mon", "Monitor"); ("fw", "Firewall"); ("lb", "LoadBalancer") ];
    order = [ "vpn"; "mon"; "fw"; "lb" ];
  }

let west_east =
  {
    label = "west-east";
    bindings = [ ("ids", "IPS"); ("mon", "Monitor"); ("lb", "LoadBalancer") ];
    order = [ "ids"; "mon"; "lb" ];
  }

let instances spec () =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (name, kind) ->
      match Nfp_nf.Registry.instantiate kind ~name with
      | Some nf -> Hashtbl.replace table name nf
      | None -> assert false)
    spec.bindings;
  fun name -> Hashtbl.find table name

let run spec =
  let policy =
    { Nfp_policy.Rule.bindings = spec.bindings; rules = Nfp_policy.Rule.of_chain spec.order }
  in
  let out =
    match Compiler.compile policy with
    | Ok o -> o
    | Error es -> failwith (String.concat "; " es)
  in
  let plan = match Tables.of_output out with Ok p -> p | Error e -> failwith e in
  Format.printf "== %s ==@." spec.label;
  Format.printf "chain : %s@." (String.concat " -> " spec.order);
  Format.printf "graph : %a@." Graph.pp out.graph;
  let gen =
    Nfp_traffic.Pktgen.create
      { Nfp_traffic.Pktgen.default with sizes = Nfp_traffic.Size_dist.datacenter; flows = 256 }
  in
  let pkt i = Nfp_traffic.Pktgen.packet gen i in
  let measure make =
    let mx = Nfp_sim.Harness.max_lossless_mpps ~make ~gen:pkt ~packets:15000 ~hi:10.0 () in
    let r =
      Nfp_sim.Harness.run ~make ~gen:pkt
        ~arrivals:(Nfp_sim.Harness.Burst (0.9 *. mx, 32))
        ~packets:30000 ()
    in
    Nfp_algo.Stats.mean r.latency
  in
  (* Cost-faithful NFs: the heavyweight VPN/IDS stage dominates, so
     parallelizing the light NFs moves the total little (EXPERIMENTS.md
     discusses how this interacts with the paper's own numbers). A
     cost-uniform variant shows the mechanism's effect directly. *)
  let uniform nf = { nf with Nfp_nf.Nf.cost_cycles = (fun _ -> 1200) } in
  let l_seq =
    measure (fun engine ~output ->
        let lookup = instances spec () in
        Nfp_baseline.Opennetvm.make ~nfs:(List.map lookup spec.order) engine ~output)
  in
  let l_nfp =
    measure (fun engine ~output ->
        Nfp_infra.System.make ~plan ~nfs:(instances spec ()) engine ~output)
  in
  let lu_seq =
    measure (fun engine ~output ->
        let lookup = instances spec () in
        Nfp_baseline.Opennetvm.make
          ~nfs:(List.map (fun n -> uniform (lookup n)) spec.order)
          engine ~output)
  in
  let lu_nfp =
    measure (fun engine ~output ->
        let lookup = instances spec () in
        Nfp_infra.System.make ~plan ~nfs:(fun n -> uniform (lookup n)) engine ~output)
  in
  let mean_size = Nfp_traffic.Size_dist.mean Nfp_traffic.Size_dist.datacenter in
  let overhead = Overhead.plan_overhead plan ~packet_bytes:(int_of_float mean_size) in
  Format.printf "latency (cost-faithful): OpenNetVM %.0f us -> NFP %.0f us  (%.1f%% reduction)@."
    (l_seq /. 1000.) (l_nfp /. 1000.)
    (100. *. (l_seq -. l_nfp) /. l_seq);
  Format.printf "latency (cost-uniform) : OpenNetVM %.0f us -> NFP %.0f us  (%.1f%% reduction)@."
    (lu_seq /. 1000.) (lu_nfp /. 1000.)
    (100. *. (lu_seq -. lu_nfp) /. lu_seq);
  Format.printf "resource overhead: %.1f%% of packet memory@.@." (100. *. overhead)

let () =
  run north_south;
  run west_east
