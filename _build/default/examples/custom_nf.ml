(* Integrating a new NF into NFP (paper §5.4):

   1. implement the NF against the packet API,
   2. derive its action profile with the inspector,
   3. register the profile in the NF action table,
   4. write policies that name it — the orchestrator now reasons about
      its parallelism like any built-in NF.

   The custom NF here is a DSCP marker: it classifies flows by
   destination port and rewrites the IPv4 TOS byte.

   Run with: dune exec examples/custom_nf.exe *)

open Nfp_packet
open Nfp_nf

let make_dscp_marker ?(name = "dscp") () =
  let marked = ref 0 in
  let process pkt =
    let dscp =
      match Packet.dport pkt with
      | p when p < 1024 -> 0x2e (* expedited forwarding for well-known services *)
      | p when p < 32768 -> 0x0a (* AF11 *)
      | _ -> 0x00
    in
    Packet.set_tos pkt dscp;
    incr marked;
    Nf.Forward
  in
  Nf.make ~name ~kind:"DscpMarker"
    ~profile:Action.[ Read Field.Dport; Write Field.Tos ]
    ~cost_cycles:(fun _ -> 90)
    ~state_digest:(fun () -> !marked)
    process

let () =
  (* Derive the profile behaviourally, then compare with what we
     declared — the inspector is the paper's "analysis tool provided by
     NFP" (§5.4). *)
  let observed =
    Nfp_inspector.Inspector.derive_profile (fun () -> make_dscp_marker ())
  in
  Format.printf "inspector-derived profile: %a@." Action.pp_profile observed;

  (* Register the NF type so the orchestrator can fetch its actions. *)
  Registry.register ~kind:"DscpMarker" ~profile:observed ();

  (* The marker writes TOS, which nothing else in this chain reads or
     writes, so Dirty Memory Reusing lets it share the packet buffer
     with the monitor — parallel, no copies. *)
  let policy_text =
    {|
NF(mark, DscpMarker)
NF(mon, Monitor)
NF(fw, Firewall)
Chain(fw, mark, mon)
|}
  in
  match Nfp_core.Compiler.compile_text policy_text with
  | Error es -> failwith (String.concat "; " es)
  | Ok out ->
      Format.printf "graph: %a@." Nfp_core.Graph.pp out.graph;
      let plan =
        match Nfp_core.Tables.of_output out with Ok p -> p | Error e -> failwith e
      in
      Format.printf "copies per packet: %d (Dirty Memory Reusing at work)@."
        (plan.header_copies + plan.full_copies);
      (* Execute one packet through the deployed plan. *)
      let table = Hashtbl.create 4 in
      Hashtbl.replace table "mark" (make_dscp_marker ~name:"mark" ());
      Hashtbl.replace table "mon" (fst (Monitor.create ~name:"mon" ()));
      Hashtbl.replace table "fw" (fst (Firewall.create ~name:"fw" ()));
      let flow =
        Flow.make
          ~sip:(Option.get (Flow.ip_of_string "10.0.0.1"))
          ~dip:(Option.get (Flow.ip_of_string "10.8.0.1"))
          ~sport:12345 ~dport:443 ~proto:6
      in
      let pkt = Packet.create ~flow ~payload:"GET / HTTP/1.1" () in
      (match
         Nfp_infra.Reference.run_plan ~plan ~nfs:(Hashtbl.find table) pkt
       with
      | Some out_pkt ->
          Format.printf "packet out: %a (tos=0x%02x)@." Packet.pp out_pkt
            (Packet.tos out_pkt)
      | None -> Format.printf "packet dropped@.")
