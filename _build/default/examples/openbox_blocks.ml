(* Combining parallelism and modularity (paper §7, Fig. 15).

   A firewall and an IPS decompose into OpenBox-style building blocks;
   graph merging shares their common prefix (packet read + header
   classification), and NFP's dependency analysis then parallelizes the
   independent leftover blocks — the firewall's Alert runs alongside
   the IPS's DPI.

   Run with: dune exec examples/openbox_blocks.exe *)

open Nfp_openbox

let () =
  let fw = Pipeline.firewall () in
  let ips = Pipeline.ips () in
  Format.printf "firewall blocks : %a@."
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " -> ") Block.pp)
    fw;
  Format.printf "ips blocks      : %a@."
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " -> ") Block.pp)
    ips;

  let merged = Pipeline.merge fw ips in
  Format.printf "shared prefix   : %d blocks@." (List.length merged.shared);
  let stages = Pipeline.stages merged in
  Format.printf "OpenBox+NFP     : %a@." Pipeline.pp_stages stages;

  let seq_cost = Pipeline.total_cycles fw + Pipeline.total_cycles ips in
  let staged_cost = Pipeline.staged_cycles stages in
  Format.printf
    "critical path   : %d cycles vs %d sequential (%.1f%% saved by sharing + block \
     parallelism)@."
    staged_cost seq_cost
    (100. *. float_of_int (seq_cost - staged_cost) /. float_of_int seq_cost);

  (* Execute a benign and a malicious packet through the staged graph. *)
  let open Nfp_packet in
  let flow =
    Flow.make
      ~sip:(Option.get (Flow.ip_of_string "192.168.1.5"))
      ~dip:(Option.get (Flow.ip_of_string "10.8.3.10"))
      ~sport:41000 ~dport:61080 ~proto:6
  in
  let benign = Packet.create ~flow ~payload:"HELLO-WORLD-0123" () in
  let signature = List.hd (Nfp_nf.Ids.default_signatures 1) in
  let malicious = Packet.create ~flow ~payload:("xx" ^ signature ^ "yy") () in
  let describe label pkt =
    let outcomes = Pipeline.execute stages pkt in
    let dropped = List.exists (fun o -> o = Block.Dropped) outcomes in
    let alerts =
      List.filter_map (function Block.Alerted s -> Some s | _ -> None) outcomes
    in
    Format.printf "%-9s -> %s (alerts: %s)@." label
      (if dropped then "dropped" else "forwarded")
      (match alerts with [] -> "none" | l -> String.concat ", " l)
  in
  describe "benign" benign;
  describe "malicious" malicious
