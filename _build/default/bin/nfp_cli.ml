(* nfp — command-line front end to the NFP framework.

   Subcommands mirror the paper's workflow: compile policies into
   service graphs (§4), print the dependency analysis (§4.1), inspect
   NF action profiles (§5.4), partition graphs across servers (§7),
   verify result correctness by replay (§6.4), and simulate deployments
   to measure latency/throughput (§6). *)

open Cmdliner
open Nfp_core

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_policy path =
  match Nfp_policy.Parser.parse (read_file path) with
  | Ok p -> Ok p
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let compile_policy ?field_sensitive_write_read policy =
  match Compiler.compile ?field_sensitive_write_read policy with
  | Ok o -> Ok o
  | Error es -> Error (String.concat "\n" es)

let instances_of_policy (policy : Nfp_policy.Rule.policy) graph =
  (* Instantiate each NF named in the graph from its binding (or its
     own name when it is itself a registered type). *)
  let table = Hashtbl.create 16 in
  List.iter
    (fun name ->
      let kind =
        match List.assoc_opt name policy.bindings with Some k -> k | None -> name
      in
      match Nfp_nf.Registry.instantiate kind ~name with
      | Some nf -> Hashtbl.replace table name nf
      | None -> failwith (Printf.sprintf "NF type %S has no implementation" kind))
    (Graph.nfs graph);
  fun name -> Hashtbl.find table name

let or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline e;
      exit 1

(* --- compile ----------------------------------------------------------- *)

let policy_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY" ~doc:"Policy file.")

let tables_flag =
  Arg.(value & flag & info [ "tables" ] ~doc:"Also print the generated dataplane tables.")

let explain_flag =
  Arg.(value & flag & info [ "explain" ] ~doc:"Explain each pair's parallelism verdict.")

let dot_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Write a Graphviz rendering of the service graph.")

let fswr_flag =
  Arg.(
    value & flag
    & info [ "field-sensitive-write-read" ]
        ~doc:
          "Ablation: treat write-before-read pairs on different fields as parallelizable \
           (the paper's Table 3 keeps them sequential).")

let compile_cmd =
  let run path tables fswr dot explain =
    let policy = or_die (load_policy path) in
    let out = or_die (compile_policy ~field_sensitive_write_read:fswr policy) in
    Format.printf "service graph : %a@." Graph.pp out.graph;
    Format.printf "equivalent len: %d (of %d NFs)@."
      (Graph.equivalent_length out.graph)
      (Graph.nf_count out.graph);
    (match Compiler.sequential_graph policy with
    | Ok seq -> Format.printf "sequential    : %a@." Graph.pp seq
    | Error _ -> ());
    List.iter (fun w -> Format.printf "warning: %s@." w) out.warnings;
    let plan = or_die (Tables.of_output out) in
    Format.printf "copies/packet : %d header-only, %d full@." plan.header_copies
      plan.full_copies;
    if tables then Format.printf "%a@." Tables.pp plan;
    if explain then print_string (Compiler.explain out);
    match dot with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Graph.to_dot out.graph);
        close_out oc;
        Format.printf "wrote %s@." file
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a policy into a service graph (paper §4).")
    Term.(const run $ policy_arg $ tables_flag $ fswr_flag $ dot_flag $ explain_flag)

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let run fswr =
    Format.printf "Action dependency table (paper Table 3):@.%a@." Dependency.pp_table ();
    let s = Analysis.run ~field_sensitive_write_read:fswr () in
    Format.printf "%a@." Analysis.pp s
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Print the dependency table and NF-pair statistics (paper §4).")
    Term.(const run $ fswr_flag)

(* --- inspect ----------------------------------------------------------- *)

let inspect_cmd =
  let kind_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NF_TYPE" ~doc:"Registered NF type.")
  in
  let probes_arg =
    Arg.(value & opt int 64 & info [ "probes" ] ~doc:"Probe packets per field.")
  in
  let run kind probes =
    match Nfp_inspector.Inspector.inspect_registered ~probes kind with
    | None ->
        prerr_endline "unknown NF type or no built-in implementation";
        exit 1
    | Some (observed, comparison) ->
        Format.printf "declared: %a@." Nfp_nf.Action.pp_profile
          (Nfp_nf.Registry.profile_of kind);
        Format.printf "observed: %a@." Nfp_nf.Action.pp_profile observed;
        Format.printf "%a@." Nfp_inspector.Inspector.pp_comparison comparison
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Derive an NF action profile by behavioural probing (paper §5.4).")
    Term.(const run $ kind_arg $ probes_arg)

(* --- partition --------------------------------------------------------- *)

let partition_cmd =
  let cores_arg =
    Arg.(value & opt int 8 & info [ "cores" ] ~doc:"CPU cores per server.")
  in
  let run path cores =
    let policy = or_die (load_policy path) in
    let out = or_die (compile_policy policy) in
    match Partition.partition ~cores_per_server:cores out.graph with
    | Ok assignments -> Format.printf "%a@." Partition.pp assignments
    | Error e ->
        prerr_endline e;
        exit 1
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Partition a service graph across servers (paper §7 scalability).")
    Term.(const run $ policy_arg $ cores_arg)

(* --- replay ------------------------------------------------------------ *)

let packets_arg ~default =
  Arg.(value & opt int default & info [ "packets" ] ~doc:"Packets to send.")

let replay_cmd =
  let run path packets =
    let policy = or_die (load_policy path) in
    let out = or_die (compile_policy policy) in
    let seq_graph = or_die (Result.map_error (fun e -> e) (Compiler.sequential_graph policy)) in
    let chain () =
      let lookup = instances_of_policy policy seq_graph in
      List.map lookup (Graph.nfs seq_graph)
    in
    let deployment () =
      let plan = or_die (Tables.of_output out) in
      (plan, instances_of_policy policy out.graph)
    in
    let gen =
      Nfp_traffic.Pktgen.create
        {
          Nfp_traffic.Pktgen.default with
          payload_style = Nfp_traffic.Pktgen.Tagged;
          sizes = Nfp_traffic.Size_dist.datacenter;
        }
    in
    let o =
      Nfp_traffic.Replay.run ~chain ~deployment ~gen:(Nfp_traffic.Pktgen.packet gen)
        ~packets
    in
    Format.printf "replayed %d packets: %d agree, %d disagree@." o.total o.agreements
      (List.length o.disagreements);
    if not (Nfp_traffic.Replay.agrees o) then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Verify the optimized graph matches sequential execution (paper §6.4).")
    Term.(const run $ policy_arg $ packets_arg ~default:1000)

(* --- simulate ---------------------------------------------------------- *)

let simulate_cmd =
  let size_arg =
    Arg.(value & opt int 64 & info [ "size" ] ~doc:"Frame size in bytes.")
  in
  let mergers_arg =
    Arg.(value & opt int 1 & info [ "mergers" ] ~doc:"Merger instances.")
  in
  let pcap_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pcap" ] ~docv:"FILE" ~doc:"Capture the NFP deployment's output to a pcap file.")
  in
  let run path packets size mergers pcap =
    let policy = or_die (load_policy path) in
    let out = or_die (compile_policy policy) in
    let plan = or_die (Tables.of_output out) in
    let gen =
      Nfp_traffic.Pktgen.create
        { Nfp_traffic.Pktgen.default with sizes = Nfp_traffic.Size_dist.fixed size }
    in
    let pkt i = Nfp_traffic.Pktgen.packet gen i in
    let measure label make =
      let hi = Nfp_sim.Nic.max_mpps ~frame_bytes:size in
      let mx = Nfp_sim.Harness.max_lossless_mpps ~make ~gen:pkt ~packets:(packets / 2) ~hi () in
      let r =
        Nfp_sim.Harness.run ~make ~gen:pkt
          ~arrivals:(Nfp_sim.Harness.Burst (0.9 *. mx, 32))
          ~packets ()
      in
      Format.printf "%-14s max %.2f Mpps, mean latency %.1f us (p99 %.1f)@." label mx
        (Nfp_algo.Stats.mean r.latency /. 1000.)
        (Nfp_algo.Stats.percentile r.latency 99. /. 1000.)
    in
    let stats_cell = ref (fun () -> []) in
    let nfp_make engine ~output =
      Nfp_infra.System.make
        ~config:{ Nfp_infra.System.default_config with mergers }
        ~stats:stats_cell ~plan
        ~nfs:(instances_of_policy policy out.graph)
        engine ~output
    in
    Format.printf "graph: %a@." Graph.pp out.graph;
    measure "NFP" nfp_make;
    (* The last measured run's samplers survive; print utilization. *)
    let cores = !stats_cell () in
    if cores <> [] then begin
      Format.printf "per-core utilization of the last run:@.";
      let total_busy =
        List.fold_left (fun acc c -> max acc c.Nfp_infra.System.busy_ns) 1.0 cores
      in
      List.iter
        (fun (c : Nfp_infra.System.core_stats) ->
          Format.printf "  %-18s %10d pkts  busy %6.1f%%  stalled %5.1f%%@." c.core
            c.processed
            (100.0 *. c.busy_ns /. total_busy)
            (100.0 *. c.stalled_ns /. total_busy))
        cores
    end;
    (match pcap with
    | None -> ()
    | Some file ->
        let tap, bind, dump = Nfp_traffic.Pcap.capture () in
        let engine = Nfp_sim.Engine.create () in
        bind engine;
        let system = nfp_make engine ~output:tap in
        for i = 0 to min 999 (packets - 1) do
          Nfp_sim.Engine.schedule engine
            ~delay:(float_of_int i *. 1000.0)
            (fun () -> system.Nfp_sim.Harness.inject ~pid:(Int64.of_int i) (pkt i))
        done;
        Nfp_sim.Engine.run engine;
        Nfp_traffic.Pcap.write_file file (dump ());
        Format.printf "captured %d packets to %s@." (List.length (dump ())) file);
    match Compiler.sequential_graph policy with
    | Error _ -> ()
    | Ok seq ->
        let chain () =
          let lookup = instances_of_policy policy seq in
          List.map lookup (Graph.nfs seq)
        in
        let onvm_make engine ~output =
          Nfp_baseline.Opennetvm.make ~nfs:(chain ()) engine ~output
        in
        measure "OpenNetVM" onvm_make
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Measure a policy's latency and throughput on the simulated dataplane (paper §6).")
    Term.(
      const run $ policy_arg $ packets_arg ~default:30000 $ size_arg $ mergers_arg
      $ pcap_arg)

(* --- pcap-replay -------------------------------------------------------- *)

let pcap_replay_cmd =
  let in_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"IN.pcap" ~doc:"Input capture.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT.pcap" ~doc:"Write surviving packets here.")
  in
  let run path input output_file =
    let policy = or_die (load_policy path) in
    let out = or_die (compile_policy policy) in
    let plan = or_die (Tables.of_output out) in
    let nfs = instances_of_policy policy out.graph in
    match Nfp_traffic.Pcap.read_file input with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok records ->
        let survivors = ref [] in
        let dropped = ref 0 in
        List.iter
          (fun (r : Nfp_traffic.Pcap.record) ->
            match Nfp_infra.Reference.run_plan ~plan ~nfs r.pkt with
            | Some pkt -> survivors := { r with Nfp_traffic.Pcap.pkt } :: !survivors
            | None -> incr dropped)
          records;
        let survivors = List.rev !survivors in
        Format.printf "graph: %a@." Graph.pp out.graph;
        Format.printf "%d packets in, %d out, %d dropped@." (List.length records)
          (List.length survivors) !dropped;
        match output_file with
        | None -> ()
        | Some f ->
            Nfp_traffic.Pcap.write_file f survivors;
            Format.printf "wrote %s@." f
  in
  Cmd.v
    (Cmd.info "pcap-replay"
       ~doc:"Run a pcap capture through a policy's deployed service graph.")
    Term.(const run $ policy_arg $ in_arg $ out_arg)

let main =
  Cmd.group
    (Cmd.info "nfp" ~version:"1.0.0"
       ~doc:"NFP: network function parallelism framework (SIGCOMM'17 reproduction).")
    [
      compile_cmd; analyze_cmd; inspect_cmd; partition_cmd; replay_cmd; simulate_cmd;
      pcap_replay_cmd;
    ]

let () = exit (Cmd.eval main)
