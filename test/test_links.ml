(* Lossy interconnect fault domain + reliable channel layer: every
   inter-core edge can be promoted to a modeled link with seeded fault
   processes (loss, duplication, bounded reordering, Gilbert-Elliott
   burst loss, partition windows), and an opt-in ARQ channel layer
   (seq/ack, NACK/RTO retransmit with backoff and budget, bounded
   reorder buffer, receiver dedup, health probes + partition reroute)
   must make delivery over that fabric indistinguishable from a
   lossless run: same delivery multiset, same bytes, same NF state
   digests. A partition mid-run must cost zero delivered packets —
   unacked traffic detours around the Down link. *)

open Nfp_packet
open Nfp_core
module Sys = Nfp_infra.System
module F = Nfp_sim.Fault

let check = Alcotest.check

let plan_of text =
  match Compiler.compile_text text with
  | Error es -> Alcotest.failf "compile: %s" (String.concat "; " es)
  | Ok o -> (
      match Tables.of_output o with Ok p -> p | Error e -> Alcotest.failf "plan: %s" e)

let default_nf kind ~name = Nfp_nf.Registry.instantiate kind ~name

let instances ~make_nf bindings =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (name, kind) ->
      match make_nf kind ~name with
      | Some nf -> Hashtbl.replace table name nf
      | None -> Alcotest.failf "no implementation for %s" kind)
    bindings;
  Hashtbl.find table

let traffic () =
  let g =
    Nfp_traffic.Pktgen.create
      { Nfp_traffic.Pktgen.default with sizes = Nfp_traffic.Size_dist.fixed 128; flows = 64 }
  in
  Nfp_traffic.Pktgen.packet g

(* Rings deep enough that nothing is refused at entry: the equivalence
   claims cover every offered packet. *)
let roomy = { Sys.default_config with ring_capacity = 8192 }

let lossless_fault plan =
  { Sys.default_fault_config with plan; merge_timeout_ns = 0.0 }

let links specs = { Sys.default_links_config with link_plan = F.link_plan specs }

(* ------------------------------------------------------------------ *)
(* FlowTag: a test-local NF whose per-flow state is output-critical    *)
(* ------------------------------------------------------------------ *)

(* Stamps each packet's ToS with the flow's 1-based sequence number, so
   a link fault the channel failed to mask is visible in the delivered
   bytes themselves: a dropped packet leaves a hole in the sequence, a
   duplicate repeats one, a reordered pair swaps two stamps. *)
type Nfp_nf.Nf.state += Tag of (Flow.t, int) Hashtbl.t

let tag_profile =
  Nfp_nf.Action.
    [
      Read Field.Sip; Read Field.Dip; Read Field.Sport; Read Field.Dport;
      Write Field.Tos;
    ]

let tag_access = Nfp_nf.State_access.[ per_flow General "flow-seq" ]

let tag_merge states =
  let table = Hashtbl.create 256 in
  List.iter
    (function
      | Tag t ->
          Hashtbl.iter
            (fun flow n ->
              let prev = Option.value (Hashtbl.find_opt table flow) ~default:0 in
              Hashtbl.replace table flow (prev + n))
            t
      | _ -> invalid_arg "FlowTag.merge: foreign state")
    states;
  Tag table

let rec flow_tag ?(name = "tag") () =
  let table : (Flow.t, int) Hashtbl.t ref = ref (Hashtbl.create 256) in
  let process pkt =
    let flow = Packet.flow pkt in
    let seq = Option.value (Hashtbl.find_opt !table flow) ~default:0 + 1 in
    Hashtbl.replace !table flow seq;
    Packet.set_tos pkt (seq land 0xff);
    Nfp_nf.Nf.Forward
  in
  let state_digest () =
    Hashtbl.fold
      (fun flow n acc -> (acc + Nfp_algo.Hashing.combine (Flow.hash flow) n) land max_int)
      !table 0
  in
  let extract pred =
    let moved = Hashtbl.create 64 in
    Hashtbl.iter (fun flow n -> if pred flow then Hashtbl.replace moved flow n) !table;
    Hashtbl.iter (fun flow _ -> Hashtbl.remove !table flow) moved;
    Tag moved
  in
  Nfp_nf.Nf.make ~name ~kind:"NAT" ~profile:tag_profile
    ~cost_cycles:(fun _ -> 260)
    ~state_digest
    ~snapshot:(fun () -> Tag (Hashtbl.copy !table))
    ~restore:(function
      | Tag t -> table := Hashtbl.copy t
      | _ -> invalid_arg "FlowTag.restore: foreign state")
    ~state_access:tag_access
    ~fresh:(fun () -> flow_tag ~name ())
    ~merge:tag_merge ~extract process

let tag_text = "NF(tag, NAT)\nNF(mon, Monitor)\nChain(tag, mon)"
let tag_bindings = [ ("tag", "NAT"); ("mon", "Monitor") ]

let tag_make_nf kind ~name =
  if name = "tag" then Some (flow_tag ~name ()) else default_nf kind ~name

(* A parallel plan whose branches meet at merger#0 — the merger links
   and the (pid, version) dedup layer are only exercised with a merge
   in the graph. *)
let par_text = "NF(mon, Monitor)\nNF(fw, Firewall)\nOrder(mon, before, fw)"
let par_bindings = [ ("mon", "Monitor"); ("fw", "Firewall") ]

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

type observation = {
  outs : (int64 * string) list;
  completed : int;
  nf_drops : int;
  digests : (string * int) list;  (** per NF, merged across replicas *)
}

let observe ?fault ?overload ?elastic ?links ?replicas ?(config = roomy)
    ?(make_nf = default_nf) ?stop ~plan ~bindings ~arrivals ~packets () =
  let lookup = instances ~make_nf bindings in
  let outs = ref [] in
  let replication = ref (fun () -> []) in
  let make engine ~output =
    Sys.make ?fault ?overload ?elastic ?links ?replicas ~replication ~config ~plan
      ~nfs:lookup engine
      ~output:(fun ~pid pkt ->
        outs := (pid, Bytes.to_string (Packet.to_bytes pkt)) :: !outs;
        output ~pid pkt)
  in
  let r =
    Nfp_sim.Harness.run ~make ~gen:(traffic ()) ~arrivals ~packets ?stop ()
  in
  let obs =
    {
      outs = List.sort compare !outs;
      completed = r.completed;
      nf_drops = r.nf_drops;
      digests =
        List.sort compare
          (List.map
             (fun (rr : Sys.replica_report) -> (rr.rr_nf, rr.rr_merged_digest))
             (!replication ()));
    }
  in
  (obs, r)

let check_equivalent baseline lossy =
  check Alcotest.int "completed" baseline.completed lossy.completed;
  check Alcotest.int "nf drops" baseline.nf_drops lossy.nf_drops;
  check Alcotest.int "delivery count" (List.length baseline.outs)
    (List.length lossy.outs);
  List.iter2
    (fun (pid_a, bytes_a) (pid_b, bytes_b) ->
      check Alcotest.int64 "delivered pid" pid_a pid_b;
      check Alcotest.string "delivered bytes" bytes_a bytes_b)
    baseline.outs lossy.outs;
  List.iter2
    (fun (name_a, d_a) (name_b, d_b) ->
      check Alcotest.string "digest NF" name_a name_b;
      check Alcotest.int (Printf.sprintf "merged digest of %s" name_a) d_a d_b)
    baseline.digests lossy.digests

let steady = Nfp_sim.Harness.Uniform 0.5

(* Run the linked deployment against the link-free baseline and hand
   back the linked run's ledger. Both runs must admit everything — the
   equivalence claims cover every offered packet. *)
let equivalence ?fault ?replicas ~links:lc ?(text = tag_text)
    ?(bindings = tag_bindings) ?(make_nf = tag_make_nf) ?(arrivals = steady)
    ?(packets = 2000) () =
  let plan = plan_of text in
  let baseline, rb = observe ?replicas ~make_nf ~plan ~bindings ~arrivals ~packets () in
  let lossy, rr =
    observe ?fault ?replicas ~links:lc ~make_nf ~plan ~bindings ~arrivals ~packets ()
  in
  check Alcotest.int "baseline admits everything" 0 rb.ring_drops;
  check Alcotest.int "lossy run admits everything" 0 rr.ring_drops;
  check Alcotest.int "nothing left in flight" 0 rr.in_flight;
  check_equivalent baseline lossy;
  rr

let link_taxonomy (r : Nfp_sim.Harness.result) = r.health.links

(* ------------------------------------------------------------------ *)
(* Unit: the fault-domain primitives                                   *)
(* ------------------------------------------------------------------ *)

let unit_tests =
  [
    Alcotest.test_case "link_for resolves exact names, prefixes and the wildcard"
      `Quick (fun () ->
        let plan =
          F.link_plan
            [
              F.loss ~probability:0.5 "mid1:tag";
              F.jumble ~probability:0.1 ~span_ns:500.0 "mid1:*";
              F.duplicate ~probability:0.1 "*";
            ]
        in
        let faults name =
          match F.link_for plan name with
          | None -> 0
          | Some st -> List.length st.F.l_faults
        in
        (* exact + prefix + wildcard stack up *)
        check Alcotest.int "mid1:tag collects all three" 3 (faults "mid1:tag");
        check Alcotest.int "mid1:mon matches prefix + wildcard" 2 (faults "mid1:mon");
        check Alcotest.int "merger#0 matches only the wildcard" 1 (faults "merger#0");
        let narrow = F.link_plan [ F.loss ~probability:0.5 "mid1:tag" ] in
        check Alcotest.bool "unmatched port carries a perfect fabric" true
          (F.link_for narrow "mid2:tag" = None);
        check Alcotest.int "fault count sums the plan" 3 (F.link_fault_count plan);
        check Alcotest.bool "no_links is empty" true (F.links_empty F.no_links));
    Alcotest.test_case "transit extremes: certain loss drops, no faults pass" `Quick
      (fun () ->
        let sure = F.link_plan [ F.loss ~probability:1.0 "a" ] in
        let st = Option.get (F.link_for sure "a") in
        for i = 0 to 99 do
          check Alcotest.bool "p=1 loss always drops" true
            (F.transit st ~now_ns:(float_of_int i) = F.T_drop)
        done;
        let off = F.link_plan [ F.loss ~probability:0.0 "a" ] in
        let st = Option.get (F.link_for off "a") in
        for i = 0 to 99 do
          check Alcotest.bool "p=0 loss always passes" true
            (F.transit st ~now_ns:(float_of_int i) = F.T_pass)
        done);
    Alcotest.test_case "partition windows are pure in time" `Quick (fun () ->
        let plan =
          F.link_plan
            [ F.flapping ~at_ns:100.0 ~down_ns:50.0 ~up_ns:50.0 ~cycles:2 "a" ]
        in
        let st = Option.get (F.link_for plan "a") in
        let down t = F.link_partitioned st ~now_ns:t in
        check Alcotest.bool "before the first window" false (down 50.0);
        check Alcotest.bool "inside the first window" true (down 120.0);
        check Alcotest.bool "healed between cycles" false (down 170.0);
        check Alcotest.bool "inside the second window" true (down 220.0);
        check Alcotest.bool "after the last cycle" false (down 280.0);
        (* probing the window must not perturb the loss stream: the
           partition check draws nothing *)
        check Alcotest.bool "a partition transit drops" true
          (F.transit st ~now_ns:120.0 = F.T_drop));
    Alcotest.test_case "invalid links configs are rejected" `Quick (fun () ->
        let plan = plan_of tag_text in
        let lookup = instances ~make_nf:tag_make_nf tag_bindings in
        let rejects msg lc =
          Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
              let engine = Nfp_sim.Engine.create () in
              ignore
                (Sys.make ~links:lc ~plan ~nfs:lookup engine
                   ~output:(fun ~pid:_ _ -> ())))
        in
        let lossy = links [ F.loss ~probability:0.01 "*" ] in
        rejects "System.make_multi: links link_window must be >= 1"
          { lossy with link_window = 0 };
        rejects "System.make_multi: links reorder_window must be >= 1"
          { lossy with reorder_window = 0 };
        rejects "System.make_multi: links retransmit_budget must be >= 1"
          { lossy with retransmit_budget = 0 };
        rejects "System.make_multi: links rto_backoff must be >= 1.0"
          { lossy with rto_backoff = 0.5 };
        rejects "System.make_multi: links probe_timeout_k must be >= 1"
          { lossy with probe_timeout_k = 0 });
    Alcotest.test_case "interpretive path refuses the links knob" `Quick (fun () ->
        let plan = plan_of tag_text in
        let lookup = instances ~make_nf:tag_make_nf tag_bindings in
        Alcotest.check_raises "invalid_arg"
          (Invalid_argument
             "System.make_multi: link channels require the `Compiled path")
          (fun () ->
            ignore
              (Nfp_sim.Harness.run
                 ~make:(fun engine ~output ->
                   Sys.make ~path:`Interpretive
                     ~links:(links [ F.loss ~probability:0.01 "*" ])
                     ~plan ~nfs:lookup engine ~output)
                 ~gen:(traffic ())
                 ~arrivals:steady ~packets:10 ())));
  ]

(* ------------------------------------------------------------------ *)
(* Differential: lossy reliable runs match the link-free run           *)
(* ------------------------------------------------------------------ *)

let differential_tests =
  [
    Alcotest.test_case "links=None and a normalized empty config are bit-identical"
      `Quick (fun () ->
        let plan = plan_of tag_text in
        let plain, _ =
          observe ~make_nf:tag_make_nf ~plan ~bindings:tag_bindings ~arrivals:steady
            ~packets:1500 ()
        in
        (* an empty plan with reliable=false normalizes away entirely *)
        let a, ra =
          observe
            ~links:{ Sys.default_links_config with reliable = false }
            ~make_nf:tag_make_nf ~plan ~bindings:tag_bindings ~arrivals:steady
            ~packets:1500 ()
        in
        (* a plan matching no port of this deployment builds no channel *)
        let b, _ =
          observe
            ~links:(links [ F.loss ~probability:0.9 "nosuch:*" ])
            ~make_nf:tag_make_nf ~plan ~bindings:tag_bindings ~arrivals:steady
            ~packets:1500 ()
        in
        check Alcotest.bool "normalized empty config: identical observation" true
          (plain = a);
        check Alcotest.bool "unmatched plan: identical observation" true (plain = b);
        check Alcotest.int "no taxonomy events"
          0
          (let l = link_taxonomy ra in
           l.link_drops + l.retransmits + l.duplicates_suppressed + l.reordered
           + l.partitions + l.reroutes));
    Alcotest.test_case "2% loss on every link: retransmission hides every drop"
      `Quick (fun () ->
        let rr = equivalence ~links:(links [ F.loss ~probability:0.02 "*" ]) () in
        let l = link_taxonomy rr in
        check Alcotest.bool "the fabric dropped transits" true (l.link_drops >= 1);
        check Alcotest.bool "the channels retransmitted" true (l.retransmits >= 1);
        check Alcotest.int "no partitions declared" 0 l.partitions);
    Alcotest.test_case "fabric duplicates are suppressed by the sequence filter"
      `Quick (fun () ->
        let rr =
          equivalence ~links:(links [ F.duplicate ~probability:0.05 "*" ]) ()
        in
        check Alcotest.bool "duplicates were consumed" true
          ((link_taxonomy rr).duplicates_suppressed >= 1));
    Alcotest.test_case "reordered transits are released in sequence order" `Quick
      (fun () ->
        let rr =
          equivalence
            ~links:(links [ F.jumble ~probability:0.1 ~span_ns:2_000.0 "*" ])
            ()
        in
        check Alcotest.bool "the fabric reordered transits" true
          ((link_taxonomy rr).reordered >= 1));
    Alcotest.test_case "Gilbert-Elliott burst loss is recovered" `Quick (fun () ->
        let rr =
          equivalence
            ~links:(links [ F.burst ~p_enter:0.02 ~p_exit:0.2 ~drop:0.7 "*" ])
            ()
        in
        check Alcotest.bool "bursts dropped transits" true
          ((link_taxonomy rr).link_drops >= 1));
    Alcotest.test_case "all fault processes at once, on a merging graph" `Quick
      (fun () ->
        let lc =
          links
            [
              F.loss ~probability:0.02 "*";
              F.duplicate ~probability:0.02 "*";
              F.jumble ~probability:0.05 ~span_ns:1_500.0 "*";
              F.burst ~p_enter:0.01 ~p_exit:0.3 ~drop:0.5 "merger#0";
            ]
        in
        let rr =
          equivalence ~links:lc ~text:par_text ~bindings:par_bindings
            ~make_nf:default_nf ()
        in
        let l = link_taxonomy rr in
        check Alcotest.bool "drops happened" true (l.link_drops >= 1);
        check Alcotest.bool "recovery happened" true (l.retransmits >= 1));
    Alcotest.test_case "a sub-detection partition heals by retransmission alone"
      `Quick (fun () ->
        (* 8 us outage: shorter than the 3-probe detection horizon, so
           the link is never declared Down and even the digests match —
           the outage is indistinguishable from a loss burst. *)
        let rr =
          equivalence
            ~links:
              (links [ F.partition ~at_ns:1_000_000.0 ~duration_ns:8_000.0 "mid1:tag" ])
            ()
        in
        let l = link_taxonomy rr in
        check Alcotest.int "never declared Down" 0 l.partitions;
        check Alcotest.int "nothing rerouted" 0 l.reroutes;
        check Alcotest.bool "the outage dropped transits" true (l.link_drops >= 1));
    Alcotest.test_case "a long partition reroutes with zero delivered loss" `Quick
      (fun () ->
        (* 300 us outage on the tag core's ingress: probes declare the
           link Down, unacked and subsequent traffic detours around the
           NF, and when the window closes a later send re-opens the
           link. No byte/digest claim — the detour skips the NF — but
           not one offered packet may be lost. *)
        let plan = plan_of tag_text in
        let _, rr =
          observe
            ~links:
              (links
                 [ F.partition ~at_ns:1_000_000.0 ~duration_ns:300_000.0 "mid1:tag" ])
            ~make_nf:tag_make_nf ~plan ~bindings:tag_bindings ~arrivals:steady
            ~packets:3000 ()
        in
        let l = link_taxonomy rr in
        check Alcotest.bool "the link was declared Down" true (l.partitions >= 1);
        check Alcotest.bool "traffic detoured around it" true (l.reroutes >= 1);
        check Alcotest.int "zero delivered-packet loss" rr.offered rr.completed;
        check Alcotest.int "nothing left in flight" 0 rr.in_flight;
        check Alcotest.bool "the link recovered after the window" true
          (rr.completed > l.reroutes));
    Alcotest.test_case "raw fabric: drops are real losses, in the ledger residual"
      `Quick (fun () ->
        let plan = plan_of tag_text in
        let lc =
          { (links [ F.loss ~probability:0.05 "*" ]) with reliable = false }
        in
        let _, rr =
          observe ~links:lc ~make_nf:tag_make_nf ~plan ~bindings:tag_bindings
            ~arrivals:steady ~packets:2000 ()
        in
        let l = link_taxonomy rr in
        check Alcotest.bool "the fabric dropped transits" true (l.link_drops >= 1);
        check Alcotest.int "no ARQ in raw mode" 0 (l.retransmits + l.reroutes);
        check Alcotest.bool "losses are real" true (rr.completed < rr.offered);
        (* the harness has already enforced the ledger; the raw losses
           sit in the in_flight residual *)
        check Alcotest.int "losses live in the residual" rr.in_flight
          (rr.offered - rr.completed - rr.ring_drops - rr.nf_drops - rr.unmatched
         - rr.shed);
        check Alcotest.bool "residual is exactly the loss count" true
          (rr.in_flight >= 1));
    Alcotest.test_case "a partitioned replica feeds the elastic controller" `Quick
      (fun () ->
        (* Scale-out wants to steer toward replica 1 while its ingress
           and transfer links are partitioned: the controller must stop
           migrating toward the unreachable replica (alive() consults
           the channel) and still lose nothing. *)
        let eager =
          {
            Sys.default_elastic_config with
            min_replicas = 1;
            max_replicas = 3;
            buckets = 24;
            control_interval_ns = 5_000.0;
            scale_out_occupancy = 0.002;
            scale_in_occupancy = 0.0002;
            migration_batch = 6;
            transfer_ns = 10_000.0;
            cooldown_ns = 20_000.0;
          }
        in
        let spiky =
          Nfp_sim.Harness.Surge
            (F.surge ~base_mpps:0.4
               [ F.Spike { at_ns = 0.0; duration_ns = 120_000.0; factor = 50.0 } ])
        in
        let lc =
          links
            [
              F.partition ~at_ns:20_000.0 ~duration_ns:400_000.0 "mid1:tag@1";
              F.partition ~at_ns:20_000.0 ~duration_ns:400_000.0 "migrate:mid1:tag@1";
            ]
        in
        let plan = plan_of tag_text in
        let _, rr =
          observe ~links:lc ~elastic:eager ~make_nf:tag_make_nf ~plan
            ~bindings:tag_bindings ~arrivals:spiky ~packets:3000 ()
        in
        check Alcotest.int "zero delivered-packet loss" rr.offered rr.completed;
        check Alcotest.int "nothing left in flight" 0 rr.in_flight;
        check Alcotest.int "nothing flushed" 0 rr.health.flushed);
  ]

(* ------------------------------------------------------------------ *)
(* Regressions: the satellite interactions                             *)
(* ------------------------------------------------------------------ *)

let regression_tests =
  [
    Alcotest.test_case "dedup tables stay bounded through a lossy merging run"
      `Quick (fun () ->
        (* Capacity 64 against thousands of completions: without
           generational pruning the delivery filter and the merger's
           completed-merge memory grow with the run. Equivalence must
           survive the pruning — retransmissions land well inside the
           capacity/2 survival window. *)
        let fault =
          { Sys.default_fault_config with dedup_capacity = 64; merge_timeout_ns = 0.0 }
        in
        let lc =
          links
            [ F.loss ~probability:0.02 "*"; F.duplicate ~probability:0.02 "*" ]
        in
        let rr =
          equivalence ~fault ~links:lc ~text:par_text ~bindings:par_bindings
            ~make_nf:default_nf ~packets:3000 ()
        in
        check Alcotest.bool "dedup gauge pinned by the bound" true
          (rr.health.dedup_entries <= 2 * 64);
        check Alcotest.bool "the tables were exercised" true
          (rr.health.dedup_entries > 0));
    Alcotest.test_case "overload sheds and raw link drops land in disjoint buckets"
      `Quick (fun () ->
        (* Overload shedding (deliberate, priority-ordered, at
           admission) and raw fabric loss (accidental, in flight) must
           never be conflated: sheds in [shed], link losses in the
           in_flight residual, and the ledger balances with both at
           once. Two chains of different admission class — only the
           lower one is sheddable. *)
        let graphs =
          List.map
            (fun cls ->
              let name = Printf.sprintf "fw%d" cls in
              let graph = Graph.nf name in
              let profile_of _ = Nfp_nf.Registry.profile_of "Firewall" in
              let plan =
                match Tables.plan ~profile_of ~priority:cls graph with
                | Ok p -> p
                | Error e -> Alcotest.failf "plan: %s" e
              in
              let nf = fst (Nfp_nf.Firewall.create ~name ~extra_cycles:800 ()) in
              ( Flow_match.make ~dport_range:(1000 + cls, 1000 + cls) (),
                plan,
                fun _ -> nf ))
            [ 0; 1 ]
        in
        let gen =
          let flows =
            Array.init 2 (fun cls ->
                Flow.make
                  ~sip:(Option.get (Flow.ip_of_string "10.0.0.1"))
                  ~dip:(Option.get (Flow.ip_of_string "10.0.0.2"))
                  ~sport:(5000 + cls) ~dport:(1000 + cls) ~proto:6)
          in
          fun i ->
            Packet.create ~flow:flows.(i mod 2) ~payload:(String.make 18 'x') ()
        in
        let lc =
          { (links [ F.loss ~probability:0.04 "*" ]) with reliable = false }
        in
        let tight =
          {
            Sys.default_overload_config with
            high_watermark = 32;
            low_watermark = 8;
            degrade_enabled = false;
          }
        in
        let make engine ~output =
          Sys.make_multi ~links:lc ~overload:tight ~graphs engine ~output
        in
        let rr =
          Nfp_sim.Harness.run ~make ~gen
            ~arrivals:(Nfp_sim.Harness.Uniform 20.0) ~packets:6000 ()
        in
        check Alcotest.bool "the controller shed under overload" true (rr.shed >= 1);
        check Alcotest.bool "the raw fabric dropped transits" true
          ((link_taxonomy rr).link_drops >= 1);
        check Alcotest.bool "losses are in the residual, not the shed bucket" true
          (rr.in_flight >= 1);
        check Alcotest.int "every offered packet accounted" rr.offered
          (rr.completed + rr.ring_drops + rr.nf_drops + rr.unmatched + rr.shed
         + rr.in_flight));
    Alcotest.test_case "a late retransmission loses the race with merge_timeout"
      `Quick (fun () ->
        (* A branch lost on the merger link, a 10 us merge timeout and
           a >= 50 us recovery horizon: the merger nil-substitutes and
           completes first, so when the retransmitted branch finally
           lands it must be consumed by the completed-merge memory —
           never merged twice, never delivered twice. *)
        let lc =
          {
            (links [ F.loss ~probability:0.3 "merger#0" ]) with
            ack_interval_ns = 50_000.0;
            rto_ns = 50_000.0;
          }
        in
        let fault = { Sys.default_fault_config with merge_timeout_ns = 10_000.0 } in
        let plan = plan_of par_text in
        let obs, rr =
          observe ~links:lc ~fault ~plan ~bindings:par_bindings ~arrivals:steady
            ~packets:1500 ()
        in
        check Alcotest.bool "merges timed out" true (rr.health.merge_timeouts >= 1);
        check Alcotest.bool "late retransmissions were deduped" true
          (rr.health.deduped >= 1);
        check Alcotest.int "every packet completed exactly once" rr.offered
          rr.completed;
        check Alcotest.int "nothing left in flight" 0 rr.in_flight;
        (* one delivery per pid: the dedup layer kept the race off the
           output *)
        let pids = List.sort compare (List.map fst obs.outs) in
        check Alcotest.bool "delivered pids are unique" true
          (List.sort_uniq compare pids = pids));
  ]

(* ------------------------------------------------------------------ *)
(* Property: random link plans x crash plans x replicas converge       *)
(* ------------------------------------------------------------------ *)

let random_case_gen =
  QCheck.Gen.(
    let* loss_p = float_range 0.0 0.04 in
    let* dup_p = float_range 0.0 0.02 in
    let* jumble_p = float_range 0.0 0.08 in
    let* span = float_range 300.0 3_000.0 in
    let* bursty = bool in
    let* replicas = int_range 1 2 in
    let* crash = option (float_range 200_000.0 800_000.0) in
    return (loss_p, dup_p, jumble_p, span, bursty, replicas, crash))

let random_case_arbitrary =
  QCheck.make
    ~print:(fun (loss_p, dup_p, jumble_p, span, bursty, replicas, crash) ->
      Printf.sprintf "loss %.3f; dup %.3f; jumble %.3f/%.0fns; burst %b; x%d; %s"
        loss_p dup_p jumble_p span bursty replicas
        (match crash with None -> "no crash" | Some t -> Printf.sprintf "crash@%.0f" t))
    random_case_gen

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:8
         ~name:"lossy reliable runs converge with the link-free run"
         random_case_arbitrary
         (fun (loss_p, dup_p, jumble_p, span, bursty, replicas, crash) ->
           let specs =
             [
               F.loss ~probability:loss_p "*";
               F.duplicate ~probability:dup_p "*";
               F.jumble ~probability:jumble_p ~span_ns:span "*";
             ]
             @
             if bursty then
               [ F.burst ~p_enter:0.01 ~p_exit:0.3 ~drop:0.5 "*" ]
             else []
           in
           let fault =
             match crash with
             | None -> None
             | Some at_ns ->
                 Some (lossless_fault (F.plan [ F.crash ~at_ns "mid1:tag" ]))
           in
           let plan = plan_of tag_text in
           let baseline, rb =
             observe ~replicas ~make_nf:tag_make_nf ~plan ~bindings:tag_bindings
               ~arrivals:steady ~packets:2000 ()
           in
           let lossy, rr =
             observe ?fault ~replicas ~links:(links specs) ~make_nf:tag_make_nf
               ~plan ~bindings:tag_bindings ~arrivals:steady ~packets:2000 ()
           in
           rb.ring_drops = 0 && rr.ring_drops = 0
           && rr.health.flushed = 0
           && rr.in_flight = 0
           && baseline = lossy));
  ]

let () =
  Alcotest.run "nfp_links"
    [
      ("unit", unit_tests);
      ("differential", differential_tests);
      ("regression", regression_tests);
      ("property", property_tests);
    ]
