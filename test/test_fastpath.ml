(* Differential tests for the compiled dataplane fast path: a
   [`Compiled] deployment must be observationally identical to the
   [`Interpretive] reference — same packets in the same order with the
   same bytes, same drop counters, same simulated clock — and the
   domain-parallel harness must return bit-identical results at any
   worker count. *)

open Nfp_packet
open Nfp_core

let check = Alcotest.check

(* Exact float equality: the two paths share every arithmetic
   expression, so even the simulated timestamps must match bitwise. *)
let exact_float = Alcotest.float 0.0

let instances bindings =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (name, kind) ->
      match Nfp_nf.Registry.instantiate kind ~name with
      | Some nf -> Hashtbl.replace table name nf
      | None -> Alcotest.failf "no implementation for %s" kind)
    bindings;
  Hashtbl.find table

let plan_of text =
  match Compiler.compile_text text with
  | Error es -> Alcotest.failf "compile: %s" (String.concat "; " es)
  | Ok o -> (
      match Tables.of_output o with Ok p -> p | Error e -> Alcotest.failf "plan: %s" e)

(* Everything observable about one harness run, outputs included. *)
type trace = {
  outs : (int64 * string) list;  (* delivery order: pid, wire bytes *)
  delivered : int;
  ring_drops : int;
  nf_drops : int;
  unmatched : int;
  duration_ns : float;
  mean_ns : float;
}

let trace ~path ~make ~gen ~arrivals ~packets =
  let outs = ref [] in
  let wrapped engine ~output =
    make ~path engine ~output:(fun ~pid pkt ->
        outs := (pid, Bytes.to_string (Packet.to_bytes pkt)) :: !outs;
        output ~pid pkt)
  in
  let r = Nfp_sim.Harness.run ~make:wrapped ~gen ~arrivals ~packets () in
  {
    outs = List.rev !outs;
    delivered = r.delivered;
    ring_drops = r.ring_drops;
    nf_drops = r.nf_drops;
    unmatched = r.unmatched;
    duration_ns = r.duration_ns;
    (* NaN (no latency samples) would defeat both [=] and float checks;
       normalize it to a sentinel so empty-stats runs still compare. *)
    mean_ns =
      (let m = Nfp_algo.Stats.mean r.latency in
       if Float.is_nan m then -1.0 else m);
  }

let check_traces ?(duration = true) a b =
  check Alcotest.int "delivered" a.delivered b.delivered;
  check Alcotest.int "ring drops" a.ring_drops b.ring_drops;
  check Alcotest.int "nf drops" a.nf_drops b.nf_drops;
  check Alcotest.int "unmatched" a.unmatched b.unmatched;
  if duration then check exact_float "duration" a.duration_ns b.duration_ns;
  check exact_float "mean latency" a.mean_ns b.mean_ns;
  check Alcotest.int "output count" (List.length a.outs) (List.length b.outs);
  List.iter2
    (fun (pid_a, bytes_a) (pid_b, bytes_b) ->
      check Alcotest.int64 "output pid" pid_a pid_b;
      check Alcotest.string "output bytes" bytes_a bytes_b)
    a.outs b.outs

let differential ~make ~gen ~arrivals ~packets =
  check_traces
    (trace ~path:`Interpretive ~make ~gen ~arrivals ~packets)
    (trace ~path:`Compiled ~make ~gen ~arrivals ~packets)

let traffic ?(sizes = Nfp_traffic.Size_dist.fixed 128) () =
  let g =
    Nfp_traffic.Pktgen.create
      { Nfp_traffic.Pktgen.default with sizes; flows = 64 }
  in
  Nfp_traffic.Pktgen.packet g

let single_make text bindings =
  let plan = plan_of text in
  fun ~path engine ~output ->
    Nfp_infra.System.make ~path ~plan ~nfs:(instances bindings) engine ~output

let ns_text =
  "NF(vpn, VPN)\nNF(mon, Monitor)\nNF(fw, Firewall)\nNF(lb, LoadBalancer)\n\
   Chain(vpn, mon, fw, lb)"

let ns_bindings =
  [ ("vpn", "VPN"); ("mon", "Monitor"); ("fw", "Firewall"); ("lb", "LoadBalancer") ]

let we_text = "NF(ids, IPS)\nNF(mon, Monitor)\nNF(lb, LoadBalancer)\nChain(ids, mon, lb)"

let we_bindings = [ ("ids", "IPS"); ("mon", "Monitor"); ("lb", "LoadBalancer") ]

let differential_tests =
  [
    Alcotest.test_case "north-south chain at moderate load" `Quick (fun () ->
        differential
          ~make:(single_make ns_text ns_bindings)
          ~gen:(traffic ())
          ~arrivals:(Nfp_sim.Harness.Uniform 0.5) ~packets:800);
    Alcotest.test_case "west-east graph with packet copies" `Quick (fun () ->
        differential
          ~make:(single_make we_text we_bindings)
          ~gen:(traffic ())
          ~arrivals:(Nfp_sim.Harness.Burst (1.0, 32))
          ~packets:800);
    Alcotest.test_case "drop-merging parallel graph" `Quick (fun () ->
        differential
          ~make:
            (single_make "NF(mon, Monitor)\nNF(fw, Firewall)\nOrder(mon, before, fw)"
               [ ("mon", "Monitor"); ("fw", "Firewall") ])
          ~gen:(traffic ())
          ~arrivals:(Nfp_sim.Harness.Uniform 1.0) ~packets:800);
    Alcotest.test_case "overload: backpressure and ring drops agree" `Quick (fun () ->
        differential
          ~make:(single_make ns_text ns_bindings)
          ~gen:(traffic ())
          ~arrivals:(Nfp_sim.Harness.Uniform 20.0) ~packets:2000);
    Alcotest.test_case "large frames (dynamic copy cost) agree" `Quick (fun () ->
        differential
          ~make:(single_make we_text we_bindings)
          ~gen:(traffic ~sizes:(Nfp_traffic.Size_dist.fixed 1500) ())
          ~arrivals:(Nfp_sim.Harness.Uniform 0.4) ~packets:400);
    Alcotest.test_case "multiple merger instances agree" `Quick (fun () ->
        let plan = plan_of we_text in
        let make ~path engine ~output =
          Nfp_infra.System.make ~path
            ~config:{ Nfp_infra.System.default_config with mergers = 3 }
            ~plan ~nfs:(instances we_bindings) engine ~output
        in
        differential ~make ~gen:(traffic ())
          ~arrivals:(Nfp_sim.Harness.Uniform 0.8) ~packets:800);
    Alcotest.test_case "multi-graph classifier with unmatched traffic" `Quick (fun () ->
        (* Graph 1 takes UDP, graph 2 takes TCP dport 61080; other TCP
           traffic is unmatched and must count identically. *)
        let p1 = plan_of "NF(m1, Monitor)\nPosition(m1, first)" in
        let p2 = plan_of ns_text in
        let make ~path engine ~output =
          Nfp_infra.System.make_multi ~path
            ~graphs:
              [
                (Flow_match.make ~proto:17 (), p1, instances [ ("m1", "Monitor") ]);
                (Flow_match.make ~dport_range:(61080, 61080) (), p2, instances ns_bindings);
              ]
            engine ~output
        in
        let tr =
          trace ~path:`Compiled ~make ~gen:(traffic ())
            ~arrivals:(Nfp_sim.Harness.Uniform 0.5) ~packets:600
        in
        check Alcotest.bool "some packets unmatched" true (tr.unmatched > 0);
        differential ~make ~gen:(traffic ())
          ~arrivals:(Nfp_sim.Harness.Uniform 0.5) ~packets:600);
  ]

(* ------------------------------------------------------------------ *)
(* Randomized policies: any compilable policy, both paths identical    *)
(* ------------------------------------------------------------------ *)

let kind_pool =
  [| "Monitor"; "Gateway"; "Caching"; "Firewall"; "IDS"; "IPS"; "LoadBalancer";
     "VPN"; "NAT"; "Proxy"; "Compression"; "Forwarder" |]

let random_policy_gen =
  QCheck.Gen.(
    let* n = int_range 2 5 in
    let* kinds = array_size (return n) (int_range 0 (Array.length kind_pool - 1)) in
    let* edge_bits = array_size (return (n * n)) bool in
    return (kinds, edge_bits))

let random_policy_arbitrary =
  QCheck.make
    ~print:(fun (kinds, _) ->
      String.concat "," (Array.to_list (Array.map (fun i -> kind_pool.(i)) kinds)))
    random_policy_gen

let build_policy (kinds, edge_bits) =
  let n = Array.length kinds in
  let name i = Printf.sprintf "n%d" i in
  let bindings = List.init n (fun i -> (name i, kind_pool.(kinds.(i)))) in
  let rules =
    List.concat
      (List.init n (fun i ->
           List.filter_map
             (fun j ->
               if j > i && edge_bits.((i * n) + j) then
                 Some (Nfp_policy.Rule.Order (name i, name j))
               else None)
             (List.init n Fun.id)))
  in
  let rules =
    if rules = [] then Nfp_policy.Rule.of_chain (List.init n name) else rules
  in
  { Nfp_policy.Rule.bindings; rules }

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:25
         ~name:"compiled path matches interpretive path on any policy"
         random_policy_arbitrary
         (fun spec ->
           let policy = build_policy spec in
           match Compiler.compile policy with
           | Error _ -> QCheck.assume_fail ()
           | Ok out -> (
               match Tables.of_output out with
               | Error _ -> false
               | Ok plan ->
                   let make ~path engine ~output =
                     Nfp_infra.System.make ~path ~plan
                       ~nfs:(instances policy.bindings) engine ~output
                   in
                   let t path =
                     trace ~path ~make ~gen:(traffic ())
                       ~arrivals:(Nfp_sim.Harness.Uniform 1.5) ~packets:300
                   in
                   t `Interpretive = t `Compiled)));
  ]

(* ------------------------------------------------------------------ *)
(* Fault machinery disarmed: a system built with a fault config whose  *)
(* plan is empty must produce a byte-identical packet trace to one     *)
(* built without fault machinery at all. The watchdog's idle ticks and *)
(* the disarmed merge timeouts advance the empty tail of the event     *)
(* heap, so only the final clock reading may differ — every delivery,  *)
(* byte, counter and latency sample must match exactly.                *)
(* ------------------------------------------------------------------ *)

(* Generous timeout: it must never fire at test loads, only sit armed. *)
let disarmed_fault =
  { Nfp_infra.System.default_fault_config with merge_timeout_ns = 10_000_000.0 }

let fault_differential ~plan ~bindings ~arrivals ~packets =
  (* Fresh NF instances per run: stateful NFs (VPN sequence numbers,
     monitor counters) must not leak state from one run to the next. *)
  let make ?fault () ~path engine ~output =
    Nfp_infra.System.make ~path ?fault ~plan ~nfs:(instances bindings) engine ~output
  in
  let t mk = trace ~path:`Compiled ~make:mk ~gen:(traffic ()) ~arrivals ~packets in
  check_traces ~duration:false
    (t (make ()))
    (t (make ~fault:disarmed_fault ()))

let fault_differential_tests =
  [
    Alcotest.test_case "disarmed faults: north-south chain identical" `Quick (fun () ->
        fault_differential ~plan:(plan_of ns_text) ~bindings:ns_bindings
          ~arrivals:(Nfp_sim.Harness.Uniform 0.5) ~packets:800);
    Alcotest.test_case "disarmed faults: parallel graph with merges identical" `Quick
      (fun () ->
        fault_differential ~plan:(plan_of we_text) ~bindings:we_bindings
          ~arrivals:(Nfp_sim.Harness.Burst (1.0, 32))
          ~packets:800);
    Alcotest.test_case "disarmed faults: overload backpressure identical" `Quick
      (fun () ->
        fault_differential ~plan:(plan_of ns_text) ~bindings:ns_bindings
          ~arrivals:(Nfp_sim.Harness.Uniform 20.0) ~packets:2000);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:25
         ~name:"disarmed faults identical on any compilable policy"
         random_policy_arbitrary
         (fun spec ->
           let policy = build_policy spec in
           match Compiler.compile policy with
           | Error _ -> QCheck.assume_fail ()
           | Ok out -> (
               match Tables.of_output out with
               | Error _ -> false
               | Ok plan ->
                   let make ?fault () ~path engine ~output =
                     Nfp_infra.System.make ~path ?fault ~plan
                       ~nfs:(instances policy.bindings) engine ~output
                   in
                   let t mk =
                     trace ~path:`Compiled ~make:mk ~gen:(traffic ())
                       ~arrivals:(Nfp_sim.Harness.Uniform 1.5) ~packets:300
                   in
                   let a = t (make ()) and b = t (make ~fault:disarmed_fault ()) in
                   { a with duration_ns = 0.0 } = { b with duration_ns = 0.0 })));
  ]

(* ------------------------------------------------------------------ *)
(* Domain-parallel harness determinism                                 *)
(* ------------------------------------------------------------------ *)

let bench_make engine ~output =
  Nfp_infra.System.make ~plan:(plan_of ns_text) ~nfs:(instances ns_bindings) engine
    ~output

let determinism_tests =
  [
    Alcotest.test_case "parallel_runs is order-preserving and deterministic" `Quick
      (fun () ->
        let thunks () =
          List.init 6 (fun i () ->
              let r =
                Nfp_sim.Harness.run ~make:bench_make ~gen:(traffic ())
                  ~arrivals:(Nfp_sim.Harness.Uniform (0.3 +. (0.2 *. float_of_int i)))
                  ~packets:400 ()
              in
              (i, r.delivered, r.ring_drops, Nfp_algo.Stats.mean r.latency))
        in
        let seq = Nfp_sim.Harness.parallel_runs ~domains:1 (thunks ()) in
        let par = Nfp_sim.Harness.parallel_runs ~domains:4 (thunks ()) in
        check Alcotest.int "length" (List.length seq) (List.length par);
        List.iter2
          (fun (i1, d1, rd1, m1) (i2, d2, rd2, m2) ->
            check Alcotest.int "order" i1 i2;
            check Alcotest.int "delivered" d1 d2;
            check Alcotest.int "ring drops" rd1 rd2;
            check exact_float "mean" m1 m2)
          seq par);
    Alcotest.test_case "speculative bisection matches sequential search" `Quick
      (fun () ->
        let search domains =
          Nfp_sim.Harness.max_lossless_mpps ~make:bench_make ~gen:(traffic ())
            ~packets:2000 ~hi:14.88 ~iterations:6 ~domains ()
        in
        let s1 = search 1 in
        check exact_float "3 domains" s1 (search 3);
        check exact_float "8 domains" s1 (search 8));
    Alcotest.test_case "nested pools degrade to sequential, same results" `Quick
      (fun () ->
        (* A thunk that itself calls parallel_runs must not spawn a
           nested pool; results stay identical either way. *)
        let inner () =
          Nfp_sim.Harness.parallel_runs
            (List.init 3 (fun i () -> i * i))
        in
        let outer =
          Nfp_sim.Harness.parallel_runs ~domains:2
            (List.init 2 (fun _ () -> inner ()))
        in
        List.iter
          (fun squares -> check Alcotest.(list int) "squares" [ 0; 1; 4 ] squares)
          outer);
  ]

let () =
  Alcotest.run "nfp_fastpath"
    [
      ("differential", differential_tests);
      ("property", property_tests);
      ("fault-differential", fault_differential_tests);
      ("determinism", determinism_tests);
    ]
