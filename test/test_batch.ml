(* Batched-breath differential suite: the batch "breath" engine is a
   cost/allocation optimization, never a semantic one. For any batch
   size the merged output trace (as a (pid, bytes) multiset), every
   NF's final state digest, and the accounting ledger must be identical
   to the per-packet (batch = 1) run — with and without injected
   faults, where a crash mid-breath must salvage the unexecuted tail of
   the batch exactly as the legacy path salvaged its in-flight list.

   Timing is explicitly NOT part of the claim: followers in a breath
   are cheaper by the burst saving, so latencies and completion times
   legitimately differ across batch sizes. Everything observable about
   *what* the dataplane did — not *when* — is quantified over here. *)

open Nfp_packet
open Nfp_core

let check = Alcotest.check

let sizes = [ 2; 8; 32; 256 ]

let plan_of text =
  match Compiler.compile_text text with
  | Error es -> Alcotest.failf "compile: %s" (String.concat "; " es)
  | Ok o -> (
      match Tables.of_output o with Ok p -> p | Error e -> Alcotest.failf "plan: %s" e)

let instances bindings =
  let table = Hashtbl.create 8 in
  let nfs =
    List.map
      (fun (name, kind) ->
        match Nfp_nf.Registry.instantiate kind ~name with
        | Some nf ->
            Hashtbl.replace table name nf;
            (name, nf)
        | None -> Alcotest.failf "no implementation for %s" kind)
      bindings
  in
  (Hashtbl.find table, nfs)

let traffic () =
  let g =
    Nfp_traffic.Pktgen.create
      { Nfp_traffic.Pktgen.default with sizes = Nfp_traffic.Size_dist.fixed 128; flows = 64 }
  in
  Nfp_traffic.Pktgen.packet g

(* Deep rings: every offered packet is admitted, so the ledger is not
   perturbed by admission refusals that depend on queue timing. *)
let roomy = { Nfp_infra.System.default_config with ring_capacity = 8192 }

let lossless_fault plan =
  {
    Nfp_infra.System.default_fault_config with
    plan;
    merge_timeout_ns = 0.0;
    checkpoint_interval_ns = 100_000.0;
    log_capacity = 4096;
  }

(* Everything the batch-size equivalence quantifies over: deliveries as
   a sorted multiset, final NF state digests, and the ledger buckets of
   the run's accounting invariant. *)
type observation = {
  outs : (int64 * string) list;
  completed : int;
  nf_drops : int;
  unmatched : int;
  ring_drops : int;
  crashes : int;
  digests : (string * int) list;
}

let observe ?(path = `Compiled) ?fault ~batch_size ~plan ~bindings ~arrivals ~packets
    () =
  let lookup, nfs = instances bindings in
  let outs = ref [] in
  let make engine ~output =
    Nfp_infra.System.make ~path ?fault ~config:roomy ~batch_size ~plan ~nfs:lookup
      engine
      ~output:(fun ~pid pkt ->
        outs := (pid, Bytes.to_string (Packet.to_bytes pkt)) :: !outs;
        output ~pid pkt)
  in
  let r = Nfp_sim.Harness.run ~make ~gen:(traffic ()) ~arrivals ~packets () in
  {
    outs = List.sort compare !outs;
    completed = r.completed;
    nf_drops = r.nf_drops;
    unmatched = r.unmatched;
    ring_drops = r.ring_drops;
    crashes = r.health.crashes;
    digests =
      List.map (fun (name, (nf : Nfp_nf.Nf.t)) -> (name, nf.state_digest ())) nfs;
  }

let check_equivalent ~batch reference batched =
  let ctx fmt = Printf.ksprintf (fun s -> Printf.sprintf "batch %d: %s" batch s) fmt in
  check Alcotest.int (ctx "completed") reference.completed batched.completed;
  check Alcotest.int (ctx "nf drops") reference.nf_drops batched.nf_drops;
  check Alcotest.int (ctx "unmatched") reference.unmatched batched.unmatched;
  check Alcotest.int (ctx "ring drops") reference.ring_drops batched.ring_drops;
  check Alcotest.int (ctx "crashes") reference.crashes batched.crashes;
  check Alcotest.int (ctx "delivery count") (List.length reference.outs)
    (List.length batched.outs);
  List.iter2
    (fun (pid_a, bytes_a) (pid_b, bytes_b) ->
      check Alcotest.int64 (ctx "delivered pid") pid_a pid_b;
      check Alcotest.string (ctx "delivered bytes") bytes_a bytes_b)
    reference.outs batched.outs;
  List.iter2
    (fun (name_a, d_a) (name_b, d_b) ->
      check Alcotest.string (ctx "digest NF") name_a name_b;
      check Alcotest.int (ctx "state digest of %s" name_a) d_a d_b)
    reference.digests batched.digests

(* Run batch = 1 (bitwise-legacy per-packet semantics) as the
   reference, then every swept size against it. *)
let sweep ?path ?fault ~text ~bindings ~arrivals ?(packets = 2000) () =
  let plan = plan_of text in
  let reference =
    observe ?path ?fault ~batch_size:1 ~plan ~bindings ~arrivals ~packets ()
  in
  List.iter
    (fun batch ->
      let batched =
        observe ?path ?fault ~batch_size:batch ~plan ~bindings ~arrivals ~packets ()
      in
      check_equivalent ~batch reference batched)
    sizes;
  reference

let ns_text =
  "NF(vpn, VPN)\nNF(mon, Monitor)\nNF(fw, Firewall)\nNF(lb, LoadBalancer)\n\
   Chain(vpn, mon, fw, lb)"

let ns_bindings =
  [ ("vpn", "VPN"); ("mon", "Monitor"); ("fw", "Firewall"); ("lb", "LoadBalancer") ]

let we_text = "NF(ids, IPS)\nNF(mon, Monitor)\nNF(lb, LoadBalancer)\nChain(ids, mon, lb)"
let we_bindings = [ ("ids", "IPS"); ("mon", "Monitor"); ("lb", "LoadBalancer") ]

let par_text = "NF(mon, Monitor)\nNF(fw, Firewall)\nOrder(mon, before, fw)"
let par_bindings = [ ("mon", "Monitor"); ("fw", "Firewall") ]

(* Bursty arrivals queue several jobs per ring, so breaths genuinely
   run multi-job — a uniform trickle would leave every breath at one
   job and prove nothing. *)
let bursty = Nfp_sim.Harness.Burst (1.0, 32)

let fault_free_tests =
  [
    Alcotest.test_case "stateful chain, bursty arrivals" `Quick (fun () ->
        let r = sweep ~text:ns_text ~bindings:ns_bindings ~arrivals:bursty () in
        check Alcotest.int "no losses anywhere" 0 (r.nf_drops + r.ring_drops));
    Alcotest.test_case "stateful chain, uniform overload" `Quick (fun () ->
        ignore
          (sweep ~text:ns_text ~bindings:ns_bindings
             ~arrivals:(Nfp_sim.Harness.Uniform 20.0) ~packets:2000 ()));
    Alcotest.test_case "parallel branches with merges" `Quick (fun () ->
        ignore (sweep ~text:par_text ~bindings:par_bindings ~arrivals:bursty ()));
    Alcotest.test_case "chain into merge (write-effect graph)" `Quick (fun () ->
        ignore (sweep ~text:we_text ~bindings:we_bindings ~arrivals:bursty ()));
    Alcotest.test_case "interpretive path agrees across batch sizes" `Quick
      (fun () ->
        ignore
          (sweep ~path:`Interpretive ~text:ns_text ~bindings:ns_bindings
             ~arrivals:bursty ~packets:1200 ()));
  ]

let fault_tests =
  [
    Alcotest.test_case "single crash with lossless recovery" `Quick (fun () ->
        let fault =
          lossless_fault
            (Nfp_sim.Fault.plan [ Nfp_sim.Fault.crash ~at_ns:500_000.0 "mid1:vpn" ])
        in
        let r =
          sweep ~fault ~text:ns_text ~bindings:ns_bindings ~arrivals:bursty ()
        in
        check Alcotest.int "crash took effect" 1 r.crashes);
    Alcotest.test_case "two crashes on distinct cores" `Quick (fun () ->
        let fault =
          lossless_fault
            (Nfp_sim.Fault.plan
               [
                 Nfp_sim.Fault.crash ~at_ns:500_000.0 "mid1:vpn";
                 Nfp_sim.Fault.crash ~at_ns:1_800_000.0 "mid1:fw";
               ])
        in
        let r =
          sweep ~fault ~text:ns_text ~bindings:ns_bindings ~arrivals:bursty ()
        in
        check Alcotest.int "both crashes took effect" 2 r.crashes);
    Alcotest.test_case "crash storm, chain" `Quick (fun () ->
        (* Bursty overload keeps every ring deep, so storm crashes land
           mid-breath and the unexecuted tail of the interrupted batch
           must be salvaged — the partial-batch path. *)
        let fault =
          lossless_fault
            (Nfp_sim.Fault.storm ~seed:11L
               ~cores:[ "mid1:vpn"; "mid1:mon"; "mid1:fw"; "mid1:lb" ]
               ~mtbf_ns:2_000_000.0 ~horizon_ns:3_000_000.0 ())
        in
        let r =
          sweep ~fault ~text:ns_text ~bindings:ns_bindings ~arrivals:bursty ()
        in
        check Alcotest.bool "storm produced crashes" true (r.crashes > 0));
    Alcotest.test_case "crash storm, parallel branches" `Quick (fun () ->
        let fault =
          lossless_fault
            (Nfp_sim.Fault.storm ~seed:7L
               ~cores:[ "mid1:mon"; "mid1:fw" ]
               ~mtbf_ns:1_500_000.0 ~horizon_ns:3_000_000.0 ())
        in
        ignore (sweep ~fault ~text:par_text ~bindings:par_bindings ~arrivals:bursty ()));
  ]

(* Property form: any batch size, arrival shape, and load agrees with
   the per-packet reference on the same traffic. *)
let property_tests =
  let gen =
    QCheck.Gen.(
      let* batch = 2 -- 300 in
      let* burst = 1 -- 48 in
      let* rate10 = 3 -- 30 in
      let* packets = 300 -- 900 in
      return (batch, burst, float_of_int rate10 /. 10.0, packets))
  in
  let arb =
    QCheck.make
      ~print:(fun (b, k, r, p) ->
        Printf.sprintf "batch=%d burst=%d rate=%.1f packets=%d" b k r p)
      gen
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:12 ~name:"random batch size matches per-packet run" arb
         (fun (batch, burst, rate, packets) ->
           let plan = plan_of ns_text in
           let arrivals = Nfp_sim.Harness.Burst (rate, burst) in
           let reference =
             observe ~batch_size:1 ~plan ~bindings:ns_bindings ~arrivals ~packets ()
           in
           let batched =
             observe ~batch_size:batch ~plan ~bindings:ns_bindings ~arrivals ~packets
               ()
           in
           check_equivalent ~batch reference batched;
           true));
  ]

(* ------------------------------------------------------------------ *)
(* Allocation regression: the breath hot path has a pinned GC budget   *)
(* ------------------------------------------------------------------ *)

(* Minor-heap words per packet over a compiled fig7-style run: the
   probe the breath engine's zero-alloc claim is verified with. Two
   budgets, both measured and pinned with ~25% headroom for toolchain
   variation — never for new per-packet allocations:

   - the pure forwarder chain isolates the engine itself (pktgen
     buffer, context, breath dispatch, classifier hit, emission
     closures, merger presentation, delivery, harness accounting);
     measured ~630 words/packet at batch 32, pinned at 800.
   - the stateful NS chain adds the NF internals (VPN encapsulation
     copies, Monitor flow state); measured ~1730, pinned at 2200.

   A regression that reintroduces boxing to the hot path — a float
   field in a mixed record, an option on a dequeue, an Int64 hash —
   costs several words on every packet-hop and blows the pinned
   budget. *)
let fwd_text =
  "NF(f0, Forwarder)\nNF(f1, Forwarder)\nNF(f2, Forwarder)\nNF(f3, Forwarder)\n\
   NF(f4, Forwarder)\nChain(f0, f1, f2, f3, f4)"

let fwd_bindings = List.init 5 (fun i -> (Printf.sprintf "f%d" i, "Forwarder"))

let words_per_packet ~text ~bindings ~batch_size ~packets =
  let plan = plan_of text in
  let lookup, _ = instances bindings in
  let gen = traffic () in
  let make engine ~output =
    Nfp_infra.System.make ~config:roomy ~batch_size ~plan ~nfs:lookup engine ~output
  in
  let run () =
    ignore
      (Nfp_sim.Harness.run ~make ~gen ~arrivals:(Nfp_sim.Harness.Burst (1.0, 32))
         ~packets ())
  in
  run ();
  (* warm: module state, memo tables, first-breath scratch *)
  let before = Gc.minor_words () in
  run ();
  (Gc.minor_words () -. before) /. float_of_int packets

let allocation_tests =
  [
    Alcotest.test_case "engine hot path stays under budget (forwarder chain)"
      `Quick (fun () ->
        let w =
          words_per_packet ~text:fwd_text ~bindings:fwd_bindings ~batch_size:32
            ~packets:4000
        in
        if w > 800.0 then
          Alcotest.failf
            "allocation regression: %.1f minor words/packet (budget 800)" w);
    Alcotest.test_case "stateful chain stays under budget" `Quick (fun () ->
        let w =
          words_per_packet ~text:ns_text ~bindings:ns_bindings ~batch_size:32
            ~packets:4000
        in
        if w > 2200.0 then
          Alcotest.failf
            "allocation regression: %.1f minor words/packet (budget 2200)" w);
    Alcotest.test_case "batching does not allocate more than per-packet" `Quick
      (fun () ->
        let batched =
          words_per_packet ~text:ns_text ~bindings:ns_bindings ~batch_size:32
            ~packets:4000
        in
        let legacy =
          words_per_packet ~text:ns_text ~bindings:ns_bindings ~batch_size:1
            ~packets:4000
        in
        if batched > legacy +. 16.0 then
          Alcotest.failf "batched path allocates more: %.1f vs %.1f words/packet"
            batched legacy);
  ]

let () =
  Alcotest.run "batch"
    [
      ("fault-free equivalence", fault_free_tests);
      ("fault equivalence", fault_tests);
      ("properties", property_tests);
      ("allocation budget", allocation_tests);
    ]
