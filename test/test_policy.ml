(* Tests for nfp_policy: rule types, the DSL parser, and conflict
   detection (paper §3). *)

open Nfp_policy

let check = Alcotest.check

let parse_ok text =
  match Parser.parse text with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %s" e

let parse_err text =
  match Parser.parse text with
  | Ok _ -> Alcotest.failf "parse unexpectedly succeeded: %s" text
  | Error e -> e

(* ------------------------------------------------------------------ *)
(* Rule                                                                *)
(* ------------------------------------------------------------------ *)

let rule_tests =
  [
    Alcotest.test_case "of_chain builds neighbouring orders" `Quick (fun () ->
        check Alcotest.bool "three rules" true
          (Rule.of_chain [ "a"; "b"; "c"; "d" ]
          = [ Rule.Order ("a", "b"); Rule.Order ("b", "c"); Rule.Order ("c", "d") ]));
    Alcotest.test_case "of_chain of one NF is empty" `Quick (fun () ->
        check Alcotest.bool "empty" true (Rule.of_chain [ "a" ] = []));
    Alcotest.test_case "nfs_of_rules dedups in appearance order" `Quick (fun () ->
        let rules =
          [ Rule.Order ("b", "a"); Rule.Priority ("a", "c"); Rule.Position ("b", Rule.Last) ]
        in
        check Alcotest.(list string) "order" [ "b"; "a"; "c" ] (Rule.nfs_of_rules rules));
    Alcotest.test_case "pp matches the paper syntax" `Quick (fun () ->
        check Alcotest.string "order" "Order(vpn, before, mon)"
          (Format.asprintf "%a" Rule.pp (Rule.Order ("vpn", "mon")));
        check Alcotest.string "priority" "Priority(ips > fw)"
          (Format.asprintf "%a" Rule.pp (Rule.Priority ("ips", "fw")));
        check Alcotest.string "position" "Position(vpn, first)"
          (Format.asprintf "%a" Rule.pp (Rule.Position ("vpn", Rule.First))));
  ]

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parser_tests =
  [
    Alcotest.test_case "order rule with 'before'" `Quick (fun () ->
        let p = parse_ok "Order(a, before, b)" in
        check Alcotest.bool "rule" true (p.rules = [ Rule.Order ("a", "b") ]));
    Alcotest.test_case "order rule without 'before'" `Quick (fun () ->
        let p = parse_ok "Order(a, b)" in
        check Alcotest.bool "rule" true (p.rules = [ Rule.Order ("a", "b") ]));
    Alcotest.test_case "priority with > syntax" `Quick (fun () ->
        let p = parse_ok "Priority(ips > fw)" in
        check Alcotest.bool "rule" true (p.rules = [ Rule.Priority ("ips", "fw") ]));
    Alcotest.test_case "priority with comma syntax" `Quick (fun () ->
        let p = parse_ok "Priority(ips, fw)" in
        check Alcotest.bool "rule" true (p.rules = [ Rule.Priority ("ips", "fw") ]));
    Alcotest.test_case "position first and last" `Quick (fun () ->
        let p = parse_ok "Position(vpn, first)\nPosition(lb, LAST)" in
        check Alcotest.bool "rules" true
          (p.rules = [ Rule.Position ("vpn", Rule.First); Rule.Position ("lb", Rule.Last) ]));
    Alcotest.test_case "keywords are case-insensitive" `Quick (fun () ->
        let p = parse_ok "ORDER(a, BEFORE, b)" in
        check Alcotest.bool "rule" true (p.rules = [ Rule.Order ("a", "b") ]));
    Alcotest.test_case "NF bindings collected" `Quick (fun () ->
        let p = parse_ok "NF(fw, Firewall)\nNF(mon, Monitor)" in
        check
          Alcotest.(list (pair string string))
          "bindings"
          [ ("fw", "Firewall"); ("mon", "Monitor") ]
          p.bindings);
    Alcotest.test_case "chain sugar expands to orders" `Quick (fun () ->
        let p = parse_ok "Chain(a, b, c)" in
        check Alcotest.bool "rules" true
          (p.rules = [ Rule.Order ("a", "b"); Rule.Order ("b", "c") ]));
    Alcotest.test_case "comments and blank lines ignored" `Quick (fun () ->
        let p = parse_ok "# header\n\nOrder(a, b) # trailing\n\n# footer" in
        check Alcotest.int "one rule" 1 (List.length p.rules));
    Alcotest.test_case "whitespace tolerated" `Quick (fun () ->
        let p = parse_ok "  Order (  a ,   before ,  b )  " in
        check Alcotest.bool "rule" true (p.rules = [ Rule.Order ("a", "b") ]));
    Alcotest.test_case "errors carry line numbers" `Quick (fun () ->
        let e = parse_err "Order(a, b)\nBogus(x)" in
        check Alcotest.bool "line 2" true
          (String.length e >= 7 && String.sub e 0 7 = "line 2:"));
    Alcotest.test_case "unknown keyword rejected" `Quick (fun () ->
        ignore (parse_err "Sequence(a, b)"));
    Alcotest.test_case "missing parenthesis rejected" `Quick (fun () ->
        ignore (parse_err "Order(a, b"));
    Alcotest.test_case "bad position rejected" `Quick (fun () ->
        ignore (parse_err "Position(a, middle)"));
    Alcotest.test_case "chain of one rejected" `Quick (fun () ->
        ignore (parse_err "Chain(a)"));
    Alcotest.test_case "invalid NF names rejected" `Quick (fun () ->
        ignore (parse_err "Order(a b, c)"));
    Alcotest.test_case "order arity rejected" `Quick (fun () ->
        ignore (parse_err "Order(a, b, c, d)"));
    Alcotest.test_case "to_string output reparses" `Quick (fun () ->
        let p =
          parse_ok
            "NF(fw, Firewall)\nNF(mon, Monitor)\nPosition(fw, first)\nOrder(fw, mon)\n\
             Priority(fw > mon)"
        in
        let p2 = parse_ok (Parser.to_string p) in
        check Alcotest.bool "bindings" true (p.bindings = p2.bindings);
        check Alcotest.bool "rules" true (p.rules = p2.rules));
    Alcotest.test_case "parse_rule single" `Quick (fun () ->
        match Parser.parse_rule "Order(x, before, y)" with
        | Ok r -> check Alcotest.bool "rule" true (r = Rule.Order ("x", "y"))
        | Error e -> Alcotest.fail e);
  ]

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)
(* ------------------------------------------------------------------ *)

let has_conflict policy pred = List.exists pred (Validate.check policy)

let mk ?(bindings = []) rules = { Rule.bindings; rules }

let validate_tests =
  [
    Alcotest.test_case "clean policy has no conflicts" `Quick (fun () ->
        let p =
          mk
            ~bindings:[ ("fw", "Firewall"); ("mon", "Monitor") ]
            [ Rule.Order ("fw", "mon") ]
        in
        check Alcotest.bool "valid" true (Validate.is_valid p));
    Alcotest.test_case "type names usable without bindings" `Quick (fun () ->
        let p = mk [ Rule.Order ("VPN", "Monitor") ] in
        check Alcotest.bool "valid" true (Validate.is_valid p));
    Alcotest.test_case "unknown NF reported" `Quick (fun () ->
        let p = mk [ Rule.Order ("nothere", "Monitor") ] in
        check Alcotest.bool "conflict" true
          (has_conflict p (function Validate.Unknown_nf { name = "nothere"; rule = 1 } -> true | _ -> false)));
    Alcotest.test_case "unknown registry type reported" `Quick (fun () ->
        let p = mk ~bindings:[ ("x", "Imaginary") ] [ Rule.Position ("x", Rule.First) ] in
        check Alcotest.bool "conflict" true
          (has_conflict p (function Validate.Unknown_kind ("x", _) -> true | _ -> false)));
    Alcotest.test_case "duplicate binding reported" `Quick (fun () ->
        let p =
          mk ~bindings:[ ("x", "Firewall"); ("x", "Monitor") ] [ Rule.Position ("x", Rule.First) ]
        in
        check Alcotest.bool "conflict" true
          (has_conflict p (function Validate.Duplicate_binding "x" -> true | _ -> false)));
    Alcotest.test_case "two-rule order cycle" `Quick (fun () ->
        let p = mk [ Rule.Order ("Firewall", "Monitor"); Rule.Order ("Monitor", "Firewall") ] in
        check Alcotest.bool "cycle" true
          (has_conflict p (function Validate.Order_cycle _ -> true | _ -> false)));
    Alcotest.test_case "three-rule order cycle" `Quick (fun () ->
        let p =
          mk
            [
              Rule.Order ("Firewall", "Monitor");
              Rule.Order ("Monitor", "VPN");
              Rule.Order ("VPN", "Firewall");
            ]
        in
        check Alcotest.bool "cycle" true
          (has_conflict p (function Validate.Order_cycle { names; rules } -> List.length names = 3 && rules = [ 1; 2; 3 ] | _ -> false)));
    Alcotest.test_case "cycle through a priority edge" `Quick (fun () ->
        (* Priority(hi > lo) places lo before hi; Order(hi, lo) contradicts. *)
        let p = mk [ Rule.Priority ("Firewall", "Monitor"); Rule.Order ("Firewall", "Monitor") ] in
        check Alcotest.bool "cycle" true
          (has_conflict p (function Validate.Order_cycle _ -> true | _ -> false)));
    Alcotest.test_case "acyclic order chain passes" `Quick (fun () ->
        let p =
          mk [ Rule.Order ("VPN", "Monitor"); Rule.Order ("Monitor", "Firewall") ]
        in
        check Alcotest.bool "valid" true (Validate.is_valid p));
    Alcotest.test_case "priority both ways" `Quick (fun () ->
        let p = mk [ Rule.Priority ("Firewall", "Monitor"); Rule.Priority ("Monitor", "Firewall") ] in
        check Alcotest.bool "conflict" true
          (has_conflict p (function
            | Validate.Priority_both_ways _ -> true
            | Validate.Order_cycle _ -> true
            | _ -> false)));
    Alcotest.test_case "NF pinned first and last" `Quick (fun () ->
        let p =
          mk [ Rule.Position ("Firewall", Rule.First); Rule.Position ("Firewall", Rule.Last) ]
        in
        check Alcotest.bool "conflict" true
          (has_conflict p (function Validate.Position_conflict { name = "Firewall"; rules = (1, 2) } -> true | _ -> false)));
    Alcotest.test_case "order into a first-pinned NF" `Quick (fun () ->
        let p =
          mk [ Rule.Position ("VPN", Rule.First); Rule.Order ("Monitor", "VPN") ]
        in
        check Alcotest.bool "conflict" true
          (has_conflict p (function Validate.Position_order_conflict _ -> true | _ -> false)));
    Alcotest.test_case "order out of a last-pinned NF" `Quick (fun () ->
        let p = mk [ Rule.Position ("VPN", Rule.Last); Rule.Order ("VPN", "Monitor") ] in
        check Alcotest.bool "conflict" true
          (has_conflict p (function Validate.Position_order_conflict _ -> true | _ -> false)));
    Alcotest.test_case "consistent position plus order passes" `Quick (fun () ->
        let p = mk [ Rule.Position ("VPN", Rule.First); Rule.Order ("VPN", "Monitor") ] in
        check Alcotest.bool "valid" true (Validate.is_valid p));
    Alcotest.test_case "self-order reported" `Quick (fun () ->
        let p = mk [ Rule.Order ("Firewall", "Firewall") ] in
        check Alcotest.bool "conflict" true
          (has_conflict p (function Validate.Self_rule { name = "Firewall"; rule = 1 } -> true | _ -> false)));
    Alcotest.test_case "conflicts name the offending rule index" `Quick (fun () ->
        (* Rule #1 is fine; #2 mentions the unknown name, #3 is a self
           rule — the reports must carry those positions. *)
        let p =
          mk
            [
              Rule.Order ("VPN", "Monitor");
              Rule.Order ("nothere", "Monitor");
              Rule.Priority ("Firewall", "Firewall");
            ]
        in
        check Alcotest.bool "unknown at #2" true
          (has_conflict p (function
            | Validate.Unknown_nf { name = "nothere"; rule = 2 } -> true
            | _ -> false));
        check Alcotest.bool "self rule at #3" true
          (has_conflict p (function
            | Validate.Self_rule { name = "Firewall"; rule = 3 } -> true
            | _ -> false));
        let rendered =
          String.concat "\n"
            (List.map (Format.asprintf "%a" Validate.pp_conflict) (Validate.check p))
        in
        let contains s =
          let n = String.length s in
          let rec go i =
            i + n <= String.length rendered && (String.sub rendered i n = s || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool "renders #2" true (contains "#2");
        check Alcotest.bool "renders #3" true (contains "#3"));
    Alcotest.test_case "conflicts render as text" `Quick (fun () ->
        let p = mk [ Rule.Order ("Firewall", "Firewall") ] in
        List.iter
          (fun c ->
            check Alcotest.bool "non-empty" true
              (String.length (Format.asprintf "%a" Validate.pp_conflict c) > 0))
          (Validate.check p));
  ]

let suggest_tests =
  [
    Alcotest.test_case "every conflict gets a non-empty suggestion" `Quick (fun () ->
        List.iter
          (fun c ->
            check Alcotest.bool "non-empty" true (String.length (Validate.suggest c) > 10))
          [
            Validate.Unknown_nf { name = "x"; rule = 1 };
            Validate.Unknown_kind ("x", "Y");
            Validate.Duplicate_binding "x";
            Validate.Order_cycle { names = [ "a"; "b" ]; rules = [ 1; 2 ] };
            Validate.Priority_both_ways { a = "a"; b = "b"; rules = (1, 2) };
            Validate.Position_conflict { name = "a"; rules = (1, 2) };
            Validate.Position_order_conflict { pinned = "a"; other = "b"; rule = 2 };
            Validate.Self_rule { name = "a"; rule = 1 };
          ]);
    Alcotest.test_case "compiler errors carry the hint" `Quick (fun () ->
        match Nfp_core.Compiler.compile_text "Order(Firewall, before, Firewall)" with
        | Ok _ -> Alcotest.fail "accepted"
        | Error es ->
            check Alcotest.bool "hint present" true
              (List.exists
                 (fun e ->
                   let rec has i =
                     i + 5 <= String.length e && (String.sub e i 5 = "hint:" || has (i + 1))
                   in
                   has 0)
                 es));
  ]

let () =
  Alcotest.run "nfp_policy"
    [
      ("rule", rule_tests);
      ("parser", parser_tests);
      ("validate", validate_tests);
      ("suggest", suggest_tests);
    ]
